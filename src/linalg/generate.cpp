#include "linalg/generate.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace rcs::linalg {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double lo, double hi) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(lo, hi);
  return m;
}

Matrix diagonally_dominant(std::size_t n, std::uint64_t seed) {
  Matrix m = random_matrix(n, n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) row_sum += std::fabs(m(i, j));
    m(i, i) = row_sum + 1.0;  // strictly dominant
  }
  return m;
}

}  // namespace rcs::linalg
