#include "linalg/blas.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/gemm_kernel.hpp"
#include "linalg/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcs::linalg {

namespace {
void check_gemm_shapes(Span2D<const double> a, Span2D<const double> b,
                       Span2D<double> c) {
  RCS_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm shape mismatch: A " << a.rows() << "x" << a.cols()
                                          << ", B " << b.rows() << "x"
                                          << b.cols() << ", C " << c.rows()
                                          << "x" << c.cols());
}
}  // namespace

void gemm_naive(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = c(i, j);
      for (std::size_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
}

void gemm_tiled(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  // i-k-j loop order with small tiles: streams B rows and C rows, which is
  // far friendlier to the cache than the naive i-j-k order. Accumulation
  // order per C entry matches gemm_naive (l ascending), so results are
  // bit-identical between the two (required by tests that cross-check the
  // FPGA kernel against both).
  constexpr std::size_t TI = 64, TK = 64, TJ = 256;
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += TI) {
    const std::size_t i1 = std::min(i0 + TI, m);
    for (std::size_t k0 = 0; k0 < k; k0 += TK) {
      const std::size_t k1 = std::min(k0 + TK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += TJ) {
        const std::size_t j1 = std::min(j0 + TJ, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = c.row(i);
          for (std::size_t l = k0; l < k1; ++l) {
            const double av = a(i, l);
            const double* brow = b.row(l);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Packed register-blocked engine in the BLIS mold, shared by gemm, gemm_nt,
// and the FPGA MatMulArray emulation (see gemm_kernel.hpp for the layouts).
//
// Bit-exactness: every C entry is updated as acc += a * b with the inner
// index l strictly ascending — within a microkernel call because the l loop
// is the outer loop, and across k-chunks because each i-tile task visits
// them in ascending order and C is reloaded/stored per chunk. No
// reassociation, no FMA (-ffp-contract=off; the explicit-ISA kernels in
// simd.cpp use separate mul/add instructions), so the result equals
// gemm_naive bit-for-bit at any thread count on every dispatch path.
//
// Parallel structure (per NC-column slab):
//   stage 1 — the B micropanels of EVERY k-chunk are packed cooperatively
//             on the pool (one parallel region over (k-chunk, j-panel)
//             units) instead of serially on the calling thread;
//   stage 2 — one fused parallel region over MC-row i-tiles; each task
//             sweeps k-chunks in ascending order, packing its A strip into
//             per-thread scratch and running the dispatched microkernel.
// This replaces the old per-(j0, k0) fork/join — 2 regions per slab instead
// of ceil(k/KC) + serial packing on the caller between every join.

namespace detail {

namespace {
constexpr std::size_t MR = simd::kMR;
constexpr std::size_t NR = simd::kNR;

inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Per-thread pack scratch, reused across calls to avoid allocator churn
/// inside the parallel region. bpack belongs to the calling thread (workers
/// write into it through the captured reference during cooperative packing,
/// which is safe: parallel_for completion orders those writes before every
/// later read); apack belongs to whichever pool thread runs the i-tile.
thread_local std::vector<double> tls_apack;
thread_local std::vector<double> tls_bpack;
}  // namespace

void pack_b_micropanel(Span2D<const double> b, bool transposed,
                       std::size_t k0, std::size_t kc, std::size_t j,
                       std::size_t w, double* panel) {
  if (!transposed) {
    for (std::size_t l = 0; l < kc; ++l) {
      const double* brow = b.row(k0 + l) + j;
      double* prow = panel + l * NR;
      for (std::size_t jr = 0; jr < w; ++jr) prow[jr] = brow[jr];
      for (std::size_t jr = w; jr < NR; ++jr) prow[jr] = 0.0;
    }
  } else {
    std::fill(panel, panel + kc * NR, 0.0);
    for (std::size_t jr = 0; jr < w; ++jr) {
      const double* brow = b.row(j + jr) + k0;
      for (std::size_t l = 0; l < kc; ++l) panel[l * NR + jr] = brow[l];
    }
  }
}

void pack_a_tile(Span2D<const double> a, std::size_t i0, std::size_t mc,
                 std::size_t k0, std::size_t kc, std::vector<double>& ap) {
  const std::size_t nstrips = ceil_div(mc, MR);
  ap.assign(nstrips * kc * MR, 0.0);
  for (std::size_t ip = 0; ip < nstrips; ++ip) {
    double* strip = ap.data() + ip * kc * MR;
    const std::size_t i = i0 + ip * MR;
    const std::size_t h = std::min(MR, i0 + mc - i);
    for (std::size_t ir = 0; ir < h; ++ir) {
      const double* arow = a.row(i + ir) + k0;
      for (std::size_t l = 0; l < kc; ++l) strip[l * MR + ir] = arow[l];
    }
  }
}

void micro_tile(simd::MicroKernelFn kern, std::size_t kc, const double* ap,
                const double* bp, Span2D<double> c, std::size_t i0,
                std::size_t j0, std::size_t mr, std::size_t nr) {
  double acc[MR * NR];
  if (mr == MR && nr == NR) {
    for (std::size_t ir = 0; ir < MR; ++ir) {
      std::memcpy(acc + ir * NR, c.row(i0 + ir) + j0, NR * sizeof(double));
    }
    kern(kc, ap, bp, acc);
    for (std::size_t ir = 0; ir < MR; ++ir) {
      std::memcpy(c.row(i0 + ir) + j0, acc + ir * NR, NR * sizeof(double));
    }
    return;
  }
  std::fill(acc, acc + MR * NR, 0.0);
  for (std::size_t ir = 0; ir < mr; ++ir) {
    for (std::size_t jr = 0; jr < nr; ++jr) acc[ir * NR + jr] = c(i0 + ir, j0 + jr);
  }
  kern(kc, ap, bp, acc);
  for (std::size_t ir = 0; ir < mr; ++ir) {
    for (std::size_t jr = 0; jr < nr; ++jr) c(i0 + ir, j0 + jr) = acc[ir * NR + jr];
  }
}

void gemm_packed_engine(Span2D<const double> a, Span2D<const double> b,
                        Span2D<double> c, bool b_transposed) {
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  if (m == 0 || n == 0 || k == 0) return;
  const simd::MicroKernelFn kern = simd::active_micro_kernel();
  const std::size_t nkc = ceil_div(k, kKC);
  // Uniform panel stride (kKC*NR even for the ragged last chunk) keeps the
  // cooperative-pack index arithmetic trivial; the tail beyond kc*NR of a
  // ragged chunk's panels is simply never read.
  const std::size_t panel_stride = kKC * NR;

  for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
    const std::size_t nc = std::min(kNC, n - j0);
    const std::size_t npanels = ceil_div(nc, NR);

    // Stage 1: pack the whole (all-k x column-slab) set of B micropanels
    // cooperatively. Units write disjoint panel regions; the parallel_for
    // completion barrier orders them before the compute stage's reads.
    std::vector<double>& bpack = tls_bpack;
    bpack.resize(nkc * npanels * panel_stride);
    double* const bbase = bpack.data();
    const std::size_t pack_units = nkc * npanels;
    // ~kc*NR*8 bytes copied per unit at ~0.5 ns/byte.
    const std::size_t pack_grain = common::grain_for_cost(
        static_cast<double>(std::min<std::size_t>(kKC, k)) * NR * 8.0 * 0.5);
    common::parallel_for(
        0, pack_units, pack_grain, [&](std::size_t u0, std::size_t u1) {
          for (std::size_t u = u0; u < u1; ++u) {
            const std::size_t kb = u / npanels;
            const std::size_t jp = u % npanels;
            const std::size_t k0 = kb * kKC;
            const std::size_t kc = std::min(kKC, k - k0);
            const std::size_t j = j0 + jp * NR;
            const std::size_t w = std::min(NR, j0 + nc - j);
            pack_b_micropanel(b, b_transposed, k0, kc, j, w,
                              bbase + u * panel_stride);
          }
        });

    // Stage 2: one fused region over i-tiles; each task owns disjoint C
    // rows and applies k-chunks in ascending order (bit-identity).
    const std::size_t ntiles = ceil_div(m, kMC);
    const std::size_t tile_grain = common::grain_for_flops(
        2.0 * static_cast<double>(std::min<std::size_t>(kMC, m)) *
        static_cast<double>(nc) * static_cast<double>(k));
    common::parallel_for(
        0, ntiles, tile_grain, [&](std::size_t t0, std::size_t t1) {
          std::vector<double>& apack = tls_apack;
          for (std::size_t t = t0; t < t1; ++t) {
            const std::size_t i0 = t * kMC;
            const std::size_t mc = std::min(kMC, m - i0);
            for (std::size_t kb = 0; kb < nkc; ++kb) {
              const std::size_t k0 = kb * kKC;
              const std::size_t kc = std::min(kKC, k - k0);
              pack_a_tile(a, i0, mc, k0, kc, apack);
              const double* slab = bbase + kb * npanels * panel_stride;
              for (std::size_t jp = 0; jp < npanels; ++jp) {
                const double* bp = slab + jp * panel_stride;
                const std::size_t j = j0 + jp * NR;
                const std::size_t w = std::min(NR, j0 + nc - j);
                for (std::size_t ip = 0; ip * MR < mc; ++ip) {
                  const double* ap = apack.data() + ip * kc * MR;
                  const std::size_t i = i0 + ip * MR;
                  const std::size_t h = std::min(MR, i0 + mc - i);
                  micro_tile(kern, kc, ap, bp, c, i, j, h, w);
                }
              }
            }
          }
        });
  }
}

}  // namespace detail

void gemm(Span2D<const double> a, Span2D<const double> b, Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  if (m == 0 || n == 0 || k == 0) return;
  // Telemetry: one relaxed add per *call* (never per element), so the
  // instrumented kernel's wall time is indistinguishable from the bare one.
  const bool metrics = obs::metrics_enabled();
  if (metrics) {
    static obs::Counter& calls = obs::Registry::global().counter("gemm.calls");
    static obs::Counter& flops = obs::Registry::global().counter("gemm.flops");
    calls.add(1);
    flops.add(static_cast<std::uint64_t>(2) * m * n * k);
  }
  obs::ScopedTimer span("gemm", "linalg");
  // Small products: packing overhead dominates; the tiled loop is equally
  // bit-identical to gemm_naive, so falling back changes nothing but speed.
  if (m * n * k <= 48 * 48 * 48) {
    gemm_tiled(a, b, c);
    return;
  }
  detail::gemm_packed_engine(a, b, c, /*b_transposed=*/false);
  if (metrics) {
    // B micropanel bytes plus the A micropanels every i-tile packs.
    static obs::Counter& packed =
        obs::Registry::global().counter("gemm.pack_bytes");
    const std::size_t kpad = (k + detail::kKC - 1) / detail::kKC * detail::kKC;
    packed.add(((n + simd::kNR - 1) / simd::kNR * kpad * simd::kNR +
                (m + simd::kMR - 1) / simd::kMR * k * simd::kMR) *
               sizeof(double));
  }
}

void gemm_overwrite(Span2D<const double> a, Span2D<const double> b,
                    Span2D<double> c) {
  for (std::size_t i = 0; i < c.rows(); ++i) {
    double* row = c.row(i);
    std::fill(row, row + c.cols(), 0.0);
  }
  gemm(a, b, c);
}

void trsm_left_lower_unit(Span2D<const double> l, Span2D<double> b) {
  RCS_CHECK_MSG(l.rows() == l.cols(), "trsm: L must be square");
  RCS_CHECK_MSG(l.rows() == b.rows(), "trsm: L/B shape mismatch");
  const std::size_t n = l.rows();
  const std::size_t m = b.cols();
  if (n == 0 || m == 0) return;
  // Forward substitution: X[i] = B[i] - sum_{j<i} L[i,j] X[j]. Columns of B
  // are independent systems, so the solve parallelizes over disjoint column
  // strips with the per-column (i, j) order — and therefore every output
  // bit — unchanged at any thread count. The grain heuristic keeps small
  // right-hand sides (the LU opL panels are often narrow) serial: one
  // column costs ~n^2 flops of work.
  const std::size_t grain = common::grain_for_flops(
      static_cast<double>(n) * static_cast<double>(n));
  common::parallel_for(0, m, grain, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t i = 0; i < n; ++i) {
      double* bi = b.row(i);
      for (std::size_t j = 0; j < i; ++j) {
        const double lij = l(i, j);
        if (lij == 0.0) continue;
        const double* bj = b.row(j);
        for (std::size_t col = c0; col < c1; ++col) bi[col] -= lij * bj[col];
      }
      // Unit diagonal: no divide.
    }
  });
}

void trsm_right_upper(Span2D<const double> u, Span2D<double> b) {
  RCS_CHECK_MSG(u.rows() == u.cols(), "trsm: U must be square");
  RCS_CHECK_MSG(u.cols() == b.cols(), "trsm: U/B shape mismatch");
  const std::size_t n = u.rows();
  // Solve X U = B row-wise: for each row x of B,
  //   x[j] = (b[j] - sum_{i<j} x[i] U[i,j]) * (1 / U[j,j]).
  // The reciprocal-multiply matches getrf_panel's Gaussian elimination
  // bit-for-bit, so L10 blocks computed via this trsm (the distributed
  // design's opL) equal the ones a monolithic panel factorization produces.
  std::vector<double> inv(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double d = u(j, j);
    RCS_CHECK_MSG(d != 0.0, "trsm: singular U (zero diagonal at " << j << ")");
    inv[j] = 1.0 / d;
  }
  for (std::size_t r = 0; r < b.rows(); ++r) {
    double* x = b.row(r);
    for (std::size_t j = 0; j < n; ++j) {
      double acc = x[j];
      for (std::size_t i = 0; i < j; ++i) acc -= x[i] * u(i, j);
      x[j] = acc * inv[j];
    }
  }
}

void matrix_sub(Span2D<double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "matrix_sub shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* ar = a.row(r);
    const double* br = b.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] -= br[c];
  }
}

void matrix_add(Span2D<double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "matrix_add shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* ar = a.row(r);
    const double* br = b.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] += br[c];
  }
}

}  // namespace rcs::linalg
