#include "linalg/blas.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace rcs::linalg {

namespace {
void check_gemm_shapes(Span2D<const double> a, Span2D<const double> b,
                       Span2D<double> c) {
  RCS_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm shape mismatch: A " << a.rows() << "x" << a.cols()
                                          << ", B " << b.rows() << "x"
                                          << b.cols() << ", C " << c.rows()
                                          << "x" << c.cols());
}
}  // namespace

void gemm_naive(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = c(i, j);
      for (std::size_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
}

void gemm(Span2D<const double> a, Span2D<const double> b, Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  // i-k-j loop order with small tiles: streams B rows and C rows, which is
  // far friendlier to the cache than the naive i-j-k order. Accumulation
  // order per C entry matches gemm_naive (l ascending), so results are
  // bit-identical between the two (required by tests that cross-check the
  // FPGA kernel against both).
  constexpr std::size_t TI = 64, TK = 64, TJ = 256;
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += TI) {
    const std::size_t i1 = std::min(i0 + TI, m);
    for (std::size_t k0 = 0; k0 < k; k0 += TK) {
      const std::size_t k1 = std::min(k0 + TK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += TJ) {
        const std::size_t j1 = std::min(j0 + TJ, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = c.row(i);
          for (std::size_t l = k0; l < k1; ++l) {
            const double av = a(i, l);
            const double* brow = b.row(l);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm_overwrite(Span2D<const double> a, Span2D<const double> b,
                    Span2D<double> c) {
  for (std::size_t i = 0; i < c.rows(); ++i) {
    double* row = c.row(i);
    std::fill(row, row + c.cols(), 0.0);
  }
  gemm(a, b, c);
}

void trsm_left_lower_unit(Span2D<const double> l, Span2D<double> b) {
  RCS_CHECK_MSG(l.rows() == l.cols(), "trsm: L must be square");
  RCS_CHECK_MSG(l.rows() == b.rows(), "trsm: L/B shape mismatch");
  const std::size_t n = l.rows();
  const std::size_t m = b.cols();
  // Forward substitution, row at a time: X[i] = B[i] - sum_{j<i} L[i,j] X[j].
  for (std::size_t i = 0; i < n; ++i) {
    double* bi = b.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = l(i, j);
      if (lij == 0.0) continue;
      const double* bj = b.row(j);
      for (std::size_t col = 0; col < m; ++col) bi[col] -= lij * bj[col];
    }
    // Unit diagonal: no divide.
  }
}

void trsm_right_upper(Span2D<const double> u, Span2D<double> b) {
  RCS_CHECK_MSG(u.rows() == u.cols(), "trsm: U must be square");
  RCS_CHECK_MSG(u.cols() == b.cols(), "trsm: U/B shape mismatch");
  const std::size_t n = u.rows();
  // Solve X U = B row-wise: for each row x of B,
  //   x[j] = (b[j] - sum_{i<j} x[i] U[i,j]) * (1 / U[j,j]).
  // The reciprocal-multiply matches getrf_panel's Gaussian elimination
  // bit-for-bit, so L10 blocks computed via this trsm (the distributed
  // design's opL) equal the ones a monolithic panel factorization produces.
  std::vector<double> inv(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double d = u(j, j);
    RCS_CHECK_MSG(d != 0.0, "trsm: singular U (zero diagonal at " << j << ")");
    inv[j] = 1.0 / d;
  }
  for (std::size_t r = 0; r < b.rows(); ++r) {
    double* x = b.row(r);
    for (std::size_t j = 0; j < n; ++j) {
      double acc = x[j];
      for (std::size_t i = 0; i < j; ++i) acc -= x[i] * u(i, j);
      x[j] = acc * inv[j];
    }
  }
}

void matrix_sub(Span2D<double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "matrix_sub shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* ar = a.row(r);
    const double* br = b.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] -= br[c];
  }
}

void matrix_add(Span2D<double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "matrix_add shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* ar = a.row(r);
    const double* br = b.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] += br[c];
  }
}

}  // namespace rcs::linalg
