#include "linalg/blas.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcs::linalg {

namespace {
void check_gemm_shapes(Span2D<const double> a, Span2D<const double> b,
                       Span2D<double> c) {
  RCS_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm shape mismatch: A " << a.rows() << "x" << a.cols()
                                          << ", B " << b.rows() << "x"
                                          << b.cols() << ", C " << c.rows()
                                          << "x" << c.cols());
}
}  // namespace

void gemm_naive(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = c(i, j);
      for (std::size_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
}

void gemm_tiled(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  // i-k-j loop order with small tiles: streams B rows and C rows, which is
  // far friendlier to the cache than the naive i-j-k order. Accumulation
  // order per C entry matches gemm_naive (l ascending), so results are
  // bit-identical between the two (required by tests that cross-check the
  // FPGA kernel against both).
  constexpr std::size_t TI = 64, TK = 64, TJ = 256;
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += TI) {
    const std::size_t i1 = std::min(i0 + TI, m);
    for (std::size_t k0 = 0; k0 < k; k0 += TK) {
      const std::size_t k1 = std::min(k0 + TK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += TJ) {
        const std::size_t j1 = std::min(j0 + TJ, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = c.row(i);
          for (std::size_t l = k0; l < k1; ++l) {
            const double av = a(i, l);
            const double* brow = b.row(l);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

namespace {

// Packed register-blocked gemm in the BLIS mold: B is packed once per
// (column panel, k panel) into NR-wide micropanels, each row tile packs its
// A strip into MR-tall micropanels, and an MR x NR block of C accumulates in
// registers while one column of A and one row of B stream past per inner
// step.
//
// Bit-exactness: every C entry is updated as acc += a * b with the inner
// index l strictly ascending — within a microkernel call because the l loop
// is the outer loop, and across k panels because panels are visited in
// ascending order and C is reloaded/stored per panel. No reassociation, no
// FMA (-ffp-contract=off), so the result equals gemm_naive bit-for-bit at
// any thread count.
constexpr std::size_t MR = 8;    // rows of C per microkernel call
constexpr std::size_t NR = 8;    // cols of C per microkernel call
constexpr std::size_t KC = 256;  // k extent of a packed panel
constexpr std::size_t NC = 512;  // column extent of a packed B panel
constexpr std::size_t MC = 64;   // rows per parallel i-tile

#if defined(__GNUC__) || defined(__clang__)
#define RCS_GEMM_VECTOR_EXT 1
/// One full C-microtile row: NR = 8 doubles. On AVX-512 this is one zmm; on
/// narrower ISAs the compiler synthesizes it from smaller registers, and on
/// compilers without the extension we fall back to the scalar loop below.
typedef double v8df __attribute__((vector_size(8 * sizeof(double))));
#endif

/// acc[ir][jr] += sum over l of ap[l, ir] * bp[l, jr], l ascending.
/// Vector lanes are per-entry IEEE mul/add (no FMA: -ffp-contract=off), so
/// the vector and scalar paths — and gemm_naive — agree bit-for-bit.
inline void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                         double* acc) {
#ifdef RCS_GEMM_VECTOR_EXT
  v8df r[MR];
  for (std::size_t ir = 0; ir < MR; ++ir) {
    std::memcpy(&r[ir], acc + ir * NR, sizeof(v8df));
  }
  for (std::size_t l = 0; l < kc; ++l) {
    v8df bv;
    std::memcpy(&bv, bp + l * NR, sizeof(v8df));
    const double* arow = ap + l * MR;
    for (std::size_t ir = 0; ir < MR; ++ir) {
      const double a = arow[ir];
      const v8df av = {a, a, a, a, a, a, a, a};
      r[ir] += av * bv;
    }
  }
  for (std::size_t ir = 0; ir < MR; ++ir) {
    std::memcpy(acc + ir * NR, &r[ir], sizeof(v8df));
  }
#else
  for (std::size_t l = 0; l < kc; ++l) {
    const double* arow = ap + l * MR;
    const double* brow = bp + l * NR;
    for (std::size_t ir = 0; ir < MR; ++ir) {
      const double av = arow[ir];
      double* row = acc + ir * NR;
      for (std::size_t jr = 0; jr < NR; ++jr) row[jr] += av * brow[jr];
    }
  }
#endif
}

/// Run the microkernel against the (possibly ragged) mr x nr corner of C at
/// (i0, j0): load the live entries, accumulate, store them back.
void micro_tile(std::size_t kc, const double* ap, const double* bp,
                Span2D<double> c, std::size_t i0, std::size_t j0,
                std::size_t mr, std::size_t nr) {
  double acc[MR * NR];
  if (mr == MR && nr == NR) {
    for (std::size_t ir = 0; ir < MR; ++ir) {
      std::memcpy(acc + ir * NR, c.row(i0 + ir) + j0, NR * sizeof(double));
    }
    micro_kernel(kc, ap, bp, acc);
    for (std::size_t ir = 0; ir < MR; ++ir) {
      std::memcpy(c.row(i0 + ir) + j0, acc + ir * NR, NR * sizeof(double));
    }
    return;
  }
  std::fill(acc, acc + MR * NR, 0.0);
  for (std::size_t ir = 0; ir < mr; ++ir) {
    for (std::size_t jr = 0; jr < nr; ++jr) acc[ir * NR + jr] = c(i0 + ir, j0 + jr);
  }
  micro_kernel(kc, ap, bp, acc);
  for (std::size_t ir = 0; ir < mr; ++ir) {
    for (std::size_t jr = 0; jr < nr; ++jr) c(i0 + ir, j0 + jr) = acc[ir * NR + jr];
  }
}

/// Pack b.block(k0.., j0..) into NR-wide micropanels, zero-padding the
/// ragged last panel so the microkernel always reads NR values per step.
void pack_b_panel(Span2D<const double> b, std::size_t k0, std::size_t kc,
                  std::size_t j0, std::size_t nc, std::vector<double>& bp) {
  const std::size_t npanels = (nc + NR - 1) / NR;
  bp.assign(npanels * kc * NR, 0.0);
  for (std::size_t jp = 0; jp < npanels; ++jp) {
    double* panel = bp.data() + jp * kc * NR;
    const std::size_t j = j0 + jp * NR;
    const std::size_t w = std::min(NR, j0 + nc - j);
    for (std::size_t l = 0; l < kc; ++l) {
      const double* brow = b.row(k0 + l) + j;
      for (std::size_t jr = 0; jr < w; ++jr) panel[l * NR + jr] = brow[jr];
    }
  }
}

/// Pack a.block(i0.., k0..) into MR-tall micropanels (column-major inside a
/// strip so the microkernel broadcasts MR contiguous values per step).
void pack_a_tile(Span2D<const double> a, std::size_t i0, std::size_t mc,
                 std::size_t k0, std::size_t kc, std::vector<double>& ap) {
  const std::size_t nstrips = (mc + MR - 1) / MR;
  ap.assign(nstrips * kc * MR, 0.0);
  for (std::size_t ip = 0; ip < nstrips; ++ip) {
    double* strip = ap.data() + ip * kc * MR;
    const std::size_t i = i0 + ip * MR;
    const std::size_t h = std::min(MR, i0 + mc - i);
    for (std::size_t ir = 0; ir < h; ++ir) {
      const double* arow = a.row(i + ir) + k0;
      for (std::size_t l = 0; l < kc; ++l) strip[l * MR + ir] = arow[l];
    }
  }
}

/// Per-thread A-pack scratch: reused across calls to avoid allocator churn
/// inside the parallel region.
thread_local std::vector<double> tls_apack;

}  // namespace

void gemm(Span2D<const double> a, Span2D<const double> b, Span2D<double> c) {
  check_gemm_shapes(a, b, c);
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  if (m == 0 || n == 0 || k == 0) return;
  // Telemetry: one relaxed add per *call* (never per element), so the
  // instrumented kernel's wall time is indistinguishable from the bare one.
  const bool metrics = obs::metrics_enabled();
  if (metrics) {
    static obs::Counter& calls = obs::Registry::global().counter("gemm.calls");
    static obs::Counter& flops = obs::Registry::global().counter("gemm.flops");
    calls.add(1);
    flops.add(static_cast<std::uint64_t>(2) * m * n * k);
  }
  obs::ScopedTimer span("gemm", "linalg");
  // Small products: packing overhead dominates; the tiled loop is equally
  // bit-identical to gemm_naive, so falling back changes nothing but speed.
  if (m * n * k <= 48 * 48 * 48) {
    gemm_tiled(a, b, c);
    return;
  }
  std::size_t pack_bytes = 0;
  std::vector<double> bpack;
  for (std::size_t j0 = 0; j0 < n; j0 += NC) {
    const std::size_t nc = std::min(NC, n - j0);
    const std::size_t npanels = (nc + NR - 1) / NR;
    for (std::size_t k0 = 0; k0 < k; k0 += KC) {
      const std::size_t kc = std::min(KC, k - k0);
      pack_b_panel(b, k0, kc, j0, nc, bpack);
      if (metrics) {
        // B panel bytes plus the A micropanels every i-tile will pack.
        pack_bytes += (npanels * kc * NR +
                       (m + MR - 1) / MR * kc * MR) * sizeof(double);
      }
      // Parallel over MC-row i-tiles: tiles write disjoint row ranges of C,
      // so the shared global pool can split them freely.
      const std::size_t ntiles = (m + MC - 1) / MC;
      common::parallel_for(0, ntiles, 1, [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t i0 = t * MC;
          const std::size_t mc = std::min(MC, m - i0);
          std::vector<double>& apack = tls_apack;
          pack_a_tile(a, i0, mc, k0, kc, apack);
          for (std::size_t jp = 0; jp < npanels; ++jp) {
            const double* bp = bpack.data() + jp * kc * NR;
            const std::size_t j = j0 + jp * NR;
            const std::size_t w = std::min(NR, j0 + nc - j);
            for (std::size_t ip = 0; ip * MR < mc; ++ip) {
              const double* ap = apack.data() + ip * kc * MR;
              const std::size_t i = i0 + ip * MR;
              const std::size_t h = std::min(MR, i0 + mc - i);
              micro_tile(kc, ap, bp, c, i, j, h, w);
            }
          }
        }
      });
    }
  }
  if (metrics) {
    static obs::Counter& packed =
        obs::Registry::global().counter("gemm.pack_bytes");
    packed.add(pack_bytes);
  }
}

void gemm_overwrite(Span2D<const double> a, Span2D<const double> b,
                    Span2D<double> c) {
  for (std::size_t i = 0; i < c.rows(); ++i) {
    double* row = c.row(i);
    std::fill(row, row + c.cols(), 0.0);
  }
  gemm(a, b, c);
}

void trsm_left_lower_unit(Span2D<const double> l, Span2D<double> b) {
  RCS_CHECK_MSG(l.rows() == l.cols(), "trsm: L must be square");
  RCS_CHECK_MSG(l.rows() == b.rows(), "trsm: L/B shape mismatch");
  const std::size_t n = l.rows();
  const std::size_t m = b.cols();
  // Forward substitution, row at a time: X[i] = B[i] - sum_{j<i} L[i,j] X[j].
  for (std::size_t i = 0; i < n; ++i) {
    double* bi = b.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = l(i, j);
      if (lij == 0.0) continue;
      const double* bj = b.row(j);
      for (std::size_t col = 0; col < m; ++col) bi[col] -= lij * bj[col];
    }
    // Unit diagonal: no divide.
  }
}

void trsm_right_upper(Span2D<const double> u, Span2D<double> b) {
  RCS_CHECK_MSG(u.rows() == u.cols(), "trsm: U must be square");
  RCS_CHECK_MSG(u.cols() == b.cols(), "trsm: U/B shape mismatch");
  const std::size_t n = u.rows();
  // Solve X U = B row-wise: for each row x of B,
  //   x[j] = (b[j] - sum_{i<j} x[i] U[i,j]) * (1 / U[j,j]).
  // The reciprocal-multiply matches getrf_panel's Gaussian elimination
  // bit-for-bit, so L10 blocks computed via this trsm (the distributed
  // design's opL) equal the ones a monolithic panel factorization produces.
  std::vector<double> inv(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double d = u(j, j);
    RCS_CHECK_MSG(d != 0.0, "trsm: singular U (zero diagonal at " << j << ")");
    inv[j] = 1.0 / d;
  }
  for (std::size_t r = 0; r < b.rows(); ++r) {
    double* x = b.row(r);
    for (std::size_t j = 0; j < n; ++j) {
      double acc = x[j];
      for (std::size_t i = 0; i < j; ++i) acc -= x[i] * u(i, j);
      x[j] = acc * inv[j];
    }
  }
}

void matrix_sub(Span2D<double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "matrix_sub shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* ar = a.row(r);
    const double* br = b.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] -= br[c];
  }
}

void matrix_add(Span2D<double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "matrix_add shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* ar = a.row(r);
    const double* br = b.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) ar[c] += br[c];
  }
}

}  // namespace rcs::linalg
