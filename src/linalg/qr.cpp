#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace rcs::linalg {

void geqrf_unblocked(Span2D<double> a, std::vector<double>& tau) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RCS_CHECK_MSG(m >= n, "geqrf: matrix must have at least as many rows as "
                        "columns");
  tau.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    // Householder vector for column j (LAPACK dlarfg).
    double sigma = 0.0;
    for (std::size_t i = j + 1; i < m; ++i) sigma += a(i, j) * a(i, j);
    const double alpha = a(j, j);
    if (sigma == 0.0) {
      tau[j] = 0.0;  // column already upper-triangular
      continue;
    }
    const double mu = std::sqrt(alpha * alpha + sigma);
    const double beta = alpha <= 0.0 ? mu : -mu;
    tau[j] = (beta - alpha) / beta;
    const double scale = 1.0 / (alpha - beta);
    for (std::size_t i = j + 1; i < m; ++i) a(i, j) *= scale;
    a(j, j) = beta;
    // Apply (I - tau v v^T) to the trailing columns; v_j = 1 implied.
    for (std::size_t c = j + 1; c < n; ++c) {
      double w = a(j, c);
      for (std::size_t i = j + 1; i < m; ++i) w += a(i, j) * a(i, c);
      const double tw = tau[j] * w;
      a(j, c) -= tw;
      for (std::size_t i = j + 1; i < m; ++i) a(i, c) -= tw * a(i, j);
    }
  }
}

Matrix larft(Span2D<const double> v, const std::vector<double>& tau) {
  const std::size_t m = v.rows();
  const std::size_t k = v.cols();
  RCS_CHECK_MSG(tau.size() == k, "larft: tau size mismatch");
  Matrix t(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0) continue;
    // z = V(:, 0:i)^T v_i  with the unit-lower-trapezoidal convention.
    std::vector<double> z(i, 0.0);
    for (std::size_t col = 0; col < i; ++col) {
      double acc = v(i, col);  // v_col has a 1 at row col; v_i at row i
      for (std::size_t r = i + 1; r < m; ++r) acc += v(r, col) * v(r, i);
      z[col] = acc;
    }
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * z.
    for (std::size_t r = 0; r < i; ++r) {
      double acc = 0.0;
      for (std::size_t c = r; c < i; ++c) acc += t(r, c) * z[c];
      t(r, i) = -tau[i] * acc;
    }
  }
  return t;
}

namespace {

/// C := (I - V T^T V^T) C for unit-lower-trapezoidal V (m x k): the
/// compact-WY left update (larfb 'Left','Transpose' for Q^T C with
/// Q = H_1...H_k).
void larfb_left(Span2D<const double> v, const Matrix& t, Span2D<double> c) {
  const std::size_t m = v.rows();
  const std::size_t k = v.cols();
  const std::size_t n = c.cols();
  RCS_CHECK_MSG(c.rows() == m, "larfb shape mismatch");
  // W = V^T C (k x n), honouring the implicit unit diagonal of V.
  Matrix w(k, n);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t col = 0; col < n; ++col) {
      double acc = c(r, col);  // unit element of v_r
      for (std::size_t i = r + 1; i < m; ++i) acc += v(i, r) * c(i, col);
      w(r, col) = acc;
    }
  }
  // W := T^T W (T upper triangular -> T^T lower triangular).
  Matrix w2(k, n);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t col = 0; col < n; ++col) {
      double acc = 0.0;
      for (std::size_t i = 0; i <= r; ++i) acc += t(i, r) * w(i, col);
      w2(r, col) = acc;
    }
  }
  // C := C - V W2.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t col = 0; col < n; ++col) {
      double acc = 0.0;
      const std::size_t kmax = std::min(i + 1, k);
      for (std::size_t r = 0; r < kmax; ++r) {
        const double vir = r == i ? 1.0 : v(i, r);
        acc += vir * w2(r, col);
      }
      c(i, col) -= acc;
    }
  }
}

}  // namespace

void geqrf_blocked(Span2D<double> a, std::size_t bs,
                   std::vector<double>& tau) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RCS_CHECK_MSG(m >= n, "geqrf: matrix must have at least as many rows as "
                        "columns");
  RCS_CHECK_MSG(bs > 0, "geqrf: block size must be positive");
  tau.assign(n, 0.0);
  for (std::size_t t0 = 0; t0 < n; t0 += bs) {
    const std::size_t tb = std::min(bs, n - t0);
    std::vector<double> panel_tau;
    auto panel = a.block(t0, t0, m - t0, tb);
    geqrf_unblocked(panel, panel_tau);
    std::copy(panel_tau.begin(), panel_tau.end(), tau.begin() + t0);
    if (t0 + tb >= n) break;
    const Matrix t = larft(panel, panel_tau);
    larfb_left(panel, t, a.block(t0, t0 + tb, m - t0, n - t0 - tb));
  }
}

Matrix form_q(Span2D<const double> factored, const std::vector<double>& tau) {
  const std::size_t m = factored.rows();
  const std::size_t n = factored.cols();
  RCS_CHECK_MSG(tau.size() == n, "form_q: tau size mismatch");
  Matrix q = Matrix::identity(m);
  // Q = H_1 ... H_k applied to I: apply H_j from the left in reverse order.
  for (std::size_t j = n; j-- > 0;) {
    if (tau[j] == 0.0) continue;
    for (std::size_t c = 0; c < m; ++c) {
      double w = q(j, c);
      for (std::size_t i = j + 1; i < m; ++i) w += factored(i, j) * q(i, c);
      const double tw = tau[j] * w;
      q(j, c) -= tw;
      for (std::size_t i = j + 1; i < m; ++i)
        q(i, c) -= tw * factored(i, j);
    }
  }
  return q;
}

Matrix extract_r(Span2D<const double> factored) {
  const std::size_t n = factored.cols();
  Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) r(i, j) = factored(i, j);
  return r;
}

double qr_residual(Span2D<const double> original,
                   Span2D<const double> factored,
                   const std::vector<double>& tau) {
  const std::size_t m = original.rows();
  const std::size_t n = original.cols();
  const Matrix q = form_q(factored, tau);
  const Matrix r = extract_r(factored);
  Matrix qr(m, n);
  gemm_overwrite(q.block(0, 0, m, n), r.view(), qr.view());
  double num = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double d = original(i, j) - qr(i, j);
      num += d * d;
    }
  const double den = frobenius_norm(original);
  RCS_CHECK_MSG(den > 0.0, "qr_residual: zero matrix");
  return std::sqrt(num) / den;
}

}  // namespace rcs::linalg
