#pragma once
// Internal packing + blocked-engine API of the packed GEMM (implemented in
// blas.cpp). Not part of the public BLAS surface: the FPGA MatMulArray
// emulation streams its tiles through the same machinery so the host and
// "hardware" kernels share one microkernel, one packing layout, and one
// bit-identity argument.
//
// Packed layouts (extents from simd::kMR / simd::kNR):
//   A micropanel strip: strip[l*MR + ir] = a(i0 + ip*MR + ir, k0 + l)
//   B micropanel:       panel[l*NR + jr] = b(k0 + l, j + jr)          (NN)
//                       panel[l*NR + jr] = b(j + jr, k0 + l)          (NT)
// Ragged edges are zero-padded so the microkernel always reads full MR/NR
// lanes; the padded lanes never reach C.

#include <cstddef>
#include <vector>

#include "common/span2d.hpp"
#include "linalg/simd.hpp"

namespace rcs::linalg::detail {

/// Cache-blocking extents of the packed engine.
inline constexpr std::size_t kKC = 256;  // k extent of a packed panel
inline constexpr std::size_t kNC = 512;  // column extent of a packed B slab
inline constexpr std::size_t kMC = 64;   // rows per parallel i-tile

/// Pack one kc x w B micropanel (w <= NR live columns, rest zero-padded)
/// into `panel` (kc * NR doubles, fully overwritten). `transposed` reads
/// b(j + jr, k0 + l) instead of b(k0 + l, j + jr) — the NT product's
/// second operand.
void pack_b_micropanel(Span2D<const double> b, bool transposed,
                       std::size_t k0, std::size_t kc, std::size_t j,
                       std::size_t w, double* panel);

/// Pack a.block(i0.., k0..) into MR-tall micropanels (column-major inside a
/// strip so the microkernel broadcasts MR contiguous values per step).
void pack_a_tile(Span2D<const double> a, std::size_t i0, std::size_t mc,
                 std::size_t k0, std::size_t kc, std::vector<double>& ap);

/// Run `kern` against the (possibly ragged) mr x nr corner of C at
/// (i0, j0): load the live entries, accumulate, store them back.
void micro_tile(simd::MicroKernelFn kern, std::size_t kc, const double* ap,
                const double* bp, Span2D<double> c, std::size_t i0,
                std::size_t j0, std::size_t mr, std::size_t nr);

/// C += A * B (or A * B^T with `b_transposed`) through the packed engine:
/// per NC-column slab, the B micropanels for every k-chunk are packed
/// cooperatively on the shared pool, then one fused parallel region sweeps
/// the (i-tile, k-chunk, j-panel) space — each i-tile task visits k-chunks
/// in ascending order with per-thread A-pack scratch, so every C entry
/// accumulates in ascending inner-index order (bit-identical to gemm_naive
/// at any thread count and on every SIMD dispatch path). Shapes are NOT
/// validated here; callers check first.
void gemm_packed_engine(Span2D<const double> a, Span2D<const double> b,
                        Span2D<double> c, bool b_transposed);

}  // namespace rcs::linalg::detail
