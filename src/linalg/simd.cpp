#include "linalg/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "obs/provenance.hpp"

// Explicit-ISA kernels are compiled with per-function target attributes so
// this translation unit builds with the project's baseline flags (no
// -march=native) and the binary stays runnable on machines without the wide
// ISAs — the unsupported paths are simply never dispatched to.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RCS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rcs::linalg::simd {

namespace {

using std::size_t;

/// Portable reference path. The compiler may vectorize the jr loop, but
/// each lane is still one IEEE mul feeding one IEEE add (-ffp-contract=off
/// forbids fusing them), so the bits match the explicit-ISA kernels.
void micro_kernel_scalar(size_t kc, const double* ap, const double* bp,
                         double* acc) {
  for (size_t l = 0; l < kc; ++l) {
    const double* arow = ap + l * kMR;
    const double* brow = bp + l * kNR;
    for (size_t ir = 0; ir < kMR; ++ir) {
      const double av = arow[ir];
      double* row = acc + ir * kNR;
      for (size_t jr = 0; jr < kNR; ++jr) row[jr] += av * brow[jr];
    }
  }
}

#ifdef RCS_SIMD_X86

/// AVX2: one C-microtile row is two ymm registers. Processing the 8 rows in
/// two halves of 4 keeps the live set at 8 accumulators + 2 B vectors + 1
/// broadcast — comfortably inside the 16 ymm registers; the B panel is
/// re-read for the second half but is L1-resident (kc*NR*8 <= 16 KB).
/// _mm256_mul_pd + _mm256_add_pd are separate instructions by construction:
/// no FMA, bit-identical to the scalar loop.
__attribute__((target("avx2"))) void micro_kernel_avx2(size_t kc,
                                                       const double* ap,
                                                       const double* bp,
                                                       double* acc) {
  for (size_t half = 0; half < 2; ++half) {
    const size_t r0 = half * 4;
    __m256d r[4][2];
    for (size_t i = 0; i < 4; ++i) {
      r[i][0] = _mm256_loadu_pd(acc + (r0 + i) * kNR);
      r[i][1] = _mm256_loadu_pd(acc + (r0 + i) * kNR + 4);
    }
    for (size_t l = 0; l < kc; ++l) {
      const __m256d b0 = _mm256_loadu_pd(bp + l * kNR);
      const __m256d b1 = _mm256_loadu_pd(bp + l * kNR + 4);
      const double* arow = ap + l * kMR + r0;
      for (size_t i = 0; i < 4; ++i) {
        const __m256d av = _mm256_set1_pd(arow[i]);
        r[i][0] = _mm256_add_pd(r[i][0], _mm256_mul_pd(av, b0));
        r[i][1] = _mm256_add_pd(r[i][1], _mm256_mul_pd(av, b1));
      }
    }
    for (size_t i = 0; i < 4; ++i) {
      _mm256_storeu_pd(acc + (r0 + i) * kNR, r[i][0]);
      _mm256_storeu_pd(acc + (r0 + i) * kNR + 4, r[i][1]);
    }
  }
}

/// AVX-512F: one zmm per C-microtile row; 8 accumulators + 1 B vector + 1
/// broadcast live. Separate vmulpd/vaddpd — no FMA, bit-identical.
__attribute__((target("avx512f"))) void micro_kernel_avx512(size_t kc,
                                                            const double* ap,
                                                            const double* bp,
                                                            double* acc) {
  __m512d r[kMR];
  for (size_t i = 0; i < kMR; ++i) r[i] = _mm512_loadu_pd(acc + i * kNR);
  for (size_t l = 0; l < kc; ++l) {
    const __m512d b = _mm512_loadu_pd(bp + l * kNR);
    const double* arow = ap + l * kMR;
    for (size_t i = 0; i < kMR; ++i) {
      const __m512d av = _mm512_set1_pd(arow[i]);
      r[i] = _mm512_add_pd(r[i], _mm512_mul_pd(av, b));
    }
  }
  for (size_t i = 0; i < kMR; ++i) _mm512_storeu_pd(acc + i * kNR, r[i]);
}

#endif  // RCS_SIMD_X86

Level detect_best() {
#ifdef RCS_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return Level::Avx512;
  if (__builtin_cpu_supports("avx2")) return Level::Avx2;
#endif
  return Level::Scalar;
}

/// Publish the chosen path into the obs provenance so benchmark artifacts
/// record which kernel produced their numbers.
void publish(Level level) { obs::set_simd_path(level_name(level)); }

Level resolve_initial() {
  const Level best = detect_best();
  Level chosen = best;
  if (const char* env = std::getenv("RCS_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = Level::Scalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      chosen = Level::Avx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      chosen = Level::Avx512;
    } else if (*env != '\0') {
      std::fprintf(stderr,
                   "rcs: unknown RCS_SIMD value '%s' "
                   "(expected scalar|avx2|avx512); using %s\n",
                   env, level_name(best));
    }
    if (!level_supported(chosen)) {
      std::fprintf(stderr,
                   "rcs: RCS_SIMD=%s not supported on this CPU; "
                   "falling back to %s\n",
                   level_name(chosen), level_name(best));
      chosen = best;
    }
  }
  publish(chosen);
  return chosen;
}

std::atomic<Level>& level_slot() {
  static std::atomic<Level> slot{resolve_initial()};
  return slot;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::Scalar:
      return "scalar";
    case Level::Avx2:
      return "avx2";
    case Level::Avx512:
      return "avx512";
  }
  return "unknown";
}

bool level_supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(detect_best());
}

Level max_supported_level() { return detect_best(); }

Level active_level() {
  return level_slot().load(std::memory_order_relaxed);
}

void set_level(Level level) {
  RCS_CHECK_MSG(level_supported(level),
                "SIMD level " << level_name(level)
                              << " is not supported on this CPU (max "
                              << level_name(detect_best()) << ")");
  level_slot().store(level, std::memory_order_relaxed);
  publish(level);
}

MicroKernelFn micro_kernel(Level level) {
  RCS_CHECK_MSG(level_supported(level),
                "SIMD level " << level_name(level)
                              << " is not supported on this CPU");
  switch (level) {
    case Level::Scalar:
      return micro_kernel_scalar;
#ifdef RCS_SIMD_X86
    case Level::Avx2:
      return micro_kernel_avx2;
    case Level::Avx512:
      return micro_kernel_avx512;
#else
    default:
      break;
#endif
  }
  return micro_kernel_scalar;
}

MicroKernelFn active_micro_kernel() { return micro_kernel(active_level()); }

}  // namespace rcs::linalg::simd
