#pragma once
// Runtime-dispatched SIMD microkernels for the packed GEMM engine.
//
// The microkernel computes an MR x NR (8x8) block of C against packed A/B
// micropanels:
//
//   acc[ir][jr] += sum over l in [0, kc) of ap[l*MR + ir] * bp[l*NR + jr]
//
// with l strictly ascending and every lane updated as an unfused IEEE
// multiply followed by an IEEE add (no FMA contraction — the repo builds
// with -ffp-contract=off and the vector paths use separate mul/add
// instructions). Every implementation therefore produces bits identical to
// the scalar loop, and to gemm_naive, on any IEEE-754 machine.
//
// The implementation is chosen once at startup from cpuid (best available
// of AVX-512F > AVX2 > scalar), overridable with the environment variable
// RCS_SIMD=scalar|avx2|avx512 (requests above what the CPU supports clamp
// down with a warning) or programmatically with set_level() (tests sweep
// every supported path). The resolved path is reported into the obs build
// provenance so BENCH_perf.json rows say which kernel produced them.

#include <cstddef>

namespace rcs::linalg::simd {

/// Microkernel register-block extents. The packed GEMM engine, the packing
/// routines, and every microkernel agree on these.
inline constexpr std::size_t kMR = 8;  // rows of C per microkernel call
inline constexpr std::size_t kNR = 8;  // cols of C per microkernel call

enum class Level { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// acc[MR*NR] += ap[kc*MR] x bp[kc*NR] in ascending-l order (see above).
/// All pointers may be unaligned; acc is row-major MR x NR.
using MicroKernelFn = void (*)(std::size_t kc, const double* ap,
                               const double* bp, double* acc);

/// Human-readable name ("scalar", "avx2", "avx512").
const char* level_name(Level level);

/// True when this CPU (and compiler) can execute `level`.
bool level_supported(Level level);

/// Best level this CPU supports.
Level max_supported_level();

/// The level in effect: resolved once from RCS_SIMD / cpuid on first use,
/// then stable until set_level() changes it.
Level active_level();

/// Force a dispatch path (tests/benches sweep paths). Throws rcs::Error if
/// the CPU cannot execute it. Not safe to call while kernels are in flight.
void set_level(Level level);

/// The microkernel for a specific level (throws if unsupported) — benches
/// A/B raw kernels without flipping global state.
MicroKernelFn micro_kernel(Level level);

/// The microkernel for active_level().
MicroKernelFn active_micro_kernel();

}  // namespace rcs::linalg::simd
