#include "linalg/io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace rcs::linalg {

namespace {

/// strtod without std::stod's exception on subnormals (glibc flags ERANGE
/// for values below DBL_MIN even though they are representable).
double parse_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  RCS_CHECK_MSG(end != s.c_str(), "bad numeric value: '" << s << "'");
  return v;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Next non-comment, non-empty line; false at EOF.
bool next_data_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_matrix_market(std::ostream& os, Span2D<const double> m) {
  os << "%%MatrixMarket matrix array real general\n";
  os << "% written by rcs-codesign\n";
  os << m.rows() << " " << m.cols() << "\n";
  os.precision(17);
  // Array format is column-major.
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      os << m(r, c) << "\n";
    }
  }
}

void save_matrix_market(const std::string& path, Span2D<const double> m) {
  std::ofstream os(path);
  RCS_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_matrix_market(os, m);
  RCS_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

Matrix read_matrix_market(std::istream& is, double missing) {
  std::string banner;
  RCS_CHECK_MSG(std::getline(is, banner) &&
                    lower(banner).rfind("%%matrixmarket", 0) == 0,
                "not a MatrixMarket stream (missing %%MatrixMarket banner)");
  std::istringstream hdr(lower(banner));
  std::string tag, object, format, field, symmetry;
  hdr >> tag >> object >> format >> field >> symmetry;
  RCS_CHECK_MSG(object == "matrix", "unsupported object '" << object << "'");
  RCS_CHECK_MSG(format == "array" || format == "coordinate",
                "unsupported format '" << format << "'");
  RCS_CHECK_MSG(field == "real" || field == "integer",
                "unsupported field '" << field << "'");
  RCS_CHECK_MSG(symmetry == "general" || symmetry == "symmetric",
                "unsupported symmetry '" << symmetry << "'");

  std::string line;
  RCS_CHECK_MSG(next_data_line(is, line), "missing size line");
  std::istringstream size_line(line);

  if (format == "array") {
    std::size_t rows = 0, cols = 0;
    size_line >> rows >> cols;
    RCS_CHECK_MSG(rows > 0 && cols > 0, "bad array size line: " << line);
    RCS_CHECK_MSG(symmetry == "general" || rows == cols,
                  "symmetric array must be square");
    Matrix m(rows, cols);
    // Column-major stream of values. Symmetric files store the lower
    // triangle only.
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t r0 = symmetry == "symmetric" ? c : 0;
      for (std::size_t r = r0; r < rows; ++r) {
        RCS_CHECK_MSG(next_data_line(is, line),
                      "array data ends early at (" << r << "," << c << ")");
        m(r, c) = parse_double(line);
        if (symmetry == "symmetric") m(c, r) = m(r, c);
      }
    }
    return m;
  }

  // Coordinate format.
  std::size_t rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  RCS_CHECK_MSG(rows > 0 && cols > 0, "bad coordinate size line: " << line);
  Matrix m(rows, cols, missing);
  for (std::size_t e = 0; e < entries; ++e) {
    RCS_CHECK_MSG(next_data_line(is, line),
                  "coordinate data ends early at entry " << e);
    std::istringstream entry(line);
    std::size_t r = 0, c = 0;
    double v = 0.0;
    entry >> r >> c >> v;
    RCS_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                  "coordinate out of range: " << line);
    m(r - 1, c - 1) = v;
    if (symmetry == "symmetric") m(c - 1, r - 1) = v;
  }
  return m;
}

Matrix load_matrix_market(const std::string& path, double missing) {
  std::ifstream is(path);
  RCS_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_matrix_market(is, missing);
}

}  // namespace rcs::linalg
