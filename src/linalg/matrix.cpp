#include "linalg/matrix.hpp"

#include <cmath>
#include <cstring>
#include <ostream>

namespace rcs::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_view(Span2D<const double> v) {
  Matrix m(v.rows(), v.cols());
  copy(v, m.view());
  return m;
}

void copy(Span2D<const double> src, Span2D<double> dst) {
  RCS_CHECK_MSG(src.rows() == dst.rows() && src.cols() == dst.cols(),
                "copy shape mismatch: " << src.rows() << "x" << src.cols()
                                        << " vs " << dst.rows() << "x"
                                        << dst.cols());
  for (std::size_t r = 0; r < src.rows(); ++r) {
    std::memcpy(dst.row(r), src.row(r), src.cols() * sizeof(double));
  }
}

double frobenius_norm(Span2D<const double> a) {
  double acc = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) acc += row[c] * row[c];
  }
  return std::sqrt(acc);
}

double max_abs(Span2D<const double> a) {
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::fabs(row[c]));
  }
  return m;
}

double max_abs_diff(Span2D<const double> a, Span2D<const double> b) {
  RCS_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "diff shape mismatch");
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::fabs(a(r, c) - b(r, c)));
  }
  return m;
}

bool bit_equal(Span2D<const double> a, Span2D<const double> b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.row(r), b.row(r), a.cols() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]\n");
  }
  return os;
}

}  // namespace rcs::linalg
