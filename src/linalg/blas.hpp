#pragma once
// Dense BLAS-subset kernels used by the host ("software") side of the hybrid
// designs — the stand-in for the ACML routines the paper calls (dgemm, dtrsm)
// and for the elementwise update opMS.
//
// All kernels operate on (possibly strided) Span2D views so they compose with
// the blocked algorithms without copies.

#include "common/span2d.hpp"

namespace rcs::linalg {

/// C += A * B (naive triple loop; reference implementation for tests).
void gemm_naive(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c);

/// C += A * B, cache-blocked i-k-j loop (the previous production kernel,
/// kept as the single-threaded baseline the perf harness regresses against).
void gemm_tiled(Span2D<const double> a, Span2D<const double> b,
                Span2D<double> c);

/// C += A * B, packed register-blocked engine (the production host dgemm
/// substitute): B micropanels are packed cooperatively on the shared
/// common::ThreadPool, then one fused parallel region per column slab
/// sweeps the i-tile x k-chunk space with the runtime-dispatched SIMD
/// microkernel (simd::active_level(); override with RCS_SIMD=scalar|avx2|
/// avx512). Per-entry accumulation order is ascending inner index with no
/// FMA on every path, so the result is bit-identical to gemm_naive at any
/// thread count and on every dispatch path.
void gemm(Span2D<const double> a, Span2D<const double> b, Span2D<double> c);

/// C = A * B (zeroes C first, then gemm).
void gemm_overwrite(Span2D<const double> a, Span2D<const double> b,
                    Span2D<double> c);

/// Solve L * X = B in place of B, with L lower-triangular and unit-diagonal
/// (dtrsm side=Left, uplo=Lower, diag=Unit). Used by opU: U01 = L00^-1 A01.
/// Parallelized over disjoint column strips of B (columns are independent
/// systems); per-column operation order is unchanged, so the result is
/// bit-identical to the serial solve at any thread count.
void trsm_left_lower_unit(Span2D<const double> l, Span2D<double> b);

/// Solve X * U = B in place of B, with U upper-triangular (non-unit diagonal)
/// (dtrsm side=Right, uplo=Upper, diag=NonUnit). Used by opL:
/// L10 = A10 U00^-1.
void trsm_right_upper(Span2D<const double> u, Span2D<double> b);

/// A -= B elementwise — the paper's opMS task (Θ(b²), kept on the processor).
void matrix_sub(Span2D<double> a, Span2D<const double> b);

/// A += B elementwise.
void matrix_add(Span2D<double> a, Span2D<const double> b);

/// Number of floating-point operations counted for an m x k by k x n gemm
/// (one multiply + one add per inner step, matching the paper's accounting).
inline long long gemm_flops(long long m, long long k, long long n) {
  return 2LL * m * k * n;
}

/// Flop count for a triangular solve with an n x n triangle and m right-hand
/// side rows/columns.
inline long long trsm_flops(long long n, long long m) { return 1LL * n * n * m; }

/// Flop count for LU factorization of an n x n matrix (2/3 n^3 leading term).
inline long long getrf_flops(long long n) { return 2LL * n * n * n / 3; }

}  // namespace rcs::linalg
