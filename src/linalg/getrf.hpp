#pragma once
// LU decomposition without pivoting (the paper assumes a nonsingular matrix
// for which no pivoting is needed, as customary in hardware matrix
// factorization). Both the unblocked reference and the right-looking blocked
// algorithm of Choi et al. (ScaLAPACK, reference [10]) are provided.

#include <cstddef>

#include "common/span2d.hpp"
#include "linalg/matrix.hpp"

namespace rcs::linalg {

/// In-place unblocked LU without pivoting: on return the strictly-lower part
/// of `a` holds L (unit diagonal implied) and the upper part holds U.
/// Throws rcs::Error on a zero pivot. This is the paper's opLU task (the
/// dgetrf stand-in) when applied to an n x b panel's top square, and the
/// small-matrix algorithm of CLRS [3].
void getrf_unblocked(Span2D<double> a);

/// In-place LU of a tall n x b panel: factors the top b x b square and
/// updates the rows below it (Gaussian elimination on the full panel —
/// step 1 of the paper's block algorithm, producing L00, U00 and L10).
void getrf_panel(Span2D<double> a);

/// In-place blocked right-looking LU without pivoting with block size `b`
/// (reference [10]); numerically equivalent to getrf_unblocked.
void getrf_blocked(Span2D<double> a, std::size_t b);

/// In-place LU with partial (row) pivoting: P A = L U. On return `a` holds
/// the factors and `piv[k]` records the row swapped into position k at
/// step k (LAPACK-style ipiv, 0-based). The paper's designs assume no
/// pivoting (§5.1); this variant is the library-completeness fallback for
/// matrices where that assumption fails.
void getrf_pivoted(Span2D<double> a, std::vector<std::size_t>& piv);

/// Apply the row exchanges recorded by getrf_pivoted to a right-hand side
/// (forward order), i.e. compute P b.
void apply_pivots(Span2D<double> b, const std::vector<std::size_t>& piv);

/// Extract L (unit lower) and U (upper) from a factored matrix.
void split_lu(Span2D<const double> factored, Matrix& l, Matrix& u);

/// Relative residual ||A - L*U||_F / ||A||_F given the original matrix and
/// the in-place factorization. Small (≈ n * eps) for a healthy factorization.
double lu_residual(Span2D<const double> original,
                   Span2D<const double> factored);

}  // namespace rcs::linalg
