#include "linalg/sparse.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rcs::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> ptr,
                     std::vector<std::size_t> idx, std::vector<double> val)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(ptr)),
      col_idx_(std::move(idx)),
      values_(std::move(val)) {
  RCS_CHECK_MSG(row_ptr_.size() == rows_ + 1, "bad row_ptr size");
  RCS_CHECK_MSG(col_idx_.size() == values_.size(), "idx/val size mismatch");
  RCS_CHECK_MSG(row_ptr_.front() == 0 && row_ptr_.back() == values_.size(),
                "row_ptr does not bracket the value array");
  for (std::size_t r = 0; r < rows_; ++r) {
    RCS_CHECK_MSG(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr not monotone");
  }
  for (std::size_t c : col_idx_) {
    RCS_CHECK_MSG(c < cols_, "column index out of range: " << c);
  }
}

void CsrMatrix::spmv(const double* x, double* y) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      acc += values_[e] * x[col_idx_[e]];
    }
    y[r] = acc;
  }
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      m(r, col_idx_[e]) += values_[e];
    }
  }
  return m;
}

CsrMatrix CsrMatrix::from_dense(const Matrix& a, double threshold) {
  std::vector<std::size_t> ptr{0};
  std::vector<std::size_t> idx;
  std::vector<double> val;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::fabs(a(r, c)) > threshold) {
        idx.push_back(c);
        val.push_back(a(r, c));
      }
    }
    ptr.push_back(val.size());
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(ptr), std::move(idx),
                   std::move(val));
}

CsrMatrix CsrMatrix::laplacian_2d(std::size_t r, std::size_t c,
                                  double shift) {
  RCS_CHECK_MSG(r > 0 && c > 0, "empty grid");
  const std::size_t n = r * c;
  std::vector<std::size_t> ptr{0};
  std::vector<std::size_t> idx;
  std::vector<double> val;
  auto id = [c](std::size_t i, std::size_t j) { return i * c + j; };
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      // Row in ascending column order: N, W, center, E, S neighbours.
      double degree = 0.0;
      if (i > 0) degree += 1.0;
      if (j > 0) degree += 1.0;
      if (j + 1 < c) degree += 1.0;
      if (i + 1 < r) degree += 1.0;
      if (i > 0) {
        idx.push_back(id(i - 1, j));
        val.push_back(-1.0);
      }
      if (j > 0) {
        idx.push_back(id(i, j - 1));
        val.push_back(-1.0);
      }
      idx.push_back(id(i, j));
      val.push_back(degree + shift);
      if (j + 1 < c) {
        idx.push_back(id(i, j + 1));
        val.push_back(-1.0);
      }
      if (i + 1 < r) {
        idx.push_back(id(i + 1, j));
        val.push_back(-1.0);
      }
      ptr.push_back(val.size());
    }
  }
  return CsrMatrix(n, n, std::move(ptr), std::move(idx), std::move(val));
}

}  // namespace rcs::linalg
