#pragma once
// Compressed-sparse-row matrices and SpMV — the substrate for the sparse
// conjugate-gradient workload of reference [9] (hybrid CG on an
// FPGA-augmented reconfigurable computer), where the matrix-vector product
// streams CSR data through deeply pipelined dot-product units.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace rcs::linalg {

/// Compressed sparse row matrix of doubles.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets of one row at a time via the factories below.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> ptr,
            std::vector<std::size_t> idx, std::vector<double> val);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A x (y is overwritten). Accumulation per row is in column order.
  void spmv(const double* x, double* y) const;

  /// Dense copy.
  Matrix to_dense() const;

  /// Bytes one SpMV streams from memory (value + column index per nonzero,
  /// plus the row pointers) — the quantity the FPGA streaming model charges.
  std::uint64_t stream_bytes() const {
    return nnz() * (sizeof(double) + sizeof(std::uint32_t)) +
           (rows_ + 1) * sizeof(std::uint32_t);
  }

  /// Sparsify a dense matrix: entries with |a_ij| > threshold are kept.
  static CsrMatrix from_dense(const Matrix& a, double threshold = 0.0);

  /// The 5-point-stencil Laplacian of an r x c grid plus `shift` on the
  /// diagonal: symmetric positive definite for shift > 0 — the canonical
  /// sparse CG system. Vertex (i, j) has index i*c + j.
  static CsrMatrix laplacian_2d(std::size_t r, std::size_t c,
                                double shift = 1e-3);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace rcs::linalg
