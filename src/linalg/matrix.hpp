#pragma once
// Owning dense double-precision matrix (row-major) plus norms and comparison
// helpers. The substrate standing in for the host-side BLAS storage that the
// paper's C program keeps in node DRAM.

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/error.hpp"
#include "common/span2d.hpp"

namespace rcs::linalg {

/// Row-major dense matrix of doubles. Owns its storage; cheap to move.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    RCS_DASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    RCS_DASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Mutable view of the whole matrix.
  Span2D<double> view() { return {data_.data(), rows_, cols_, cols_}; }
  /// Const view of the whole matrix.
  Span2D<const double> view() const {
    return {data_.data(), rows_, cols_, cols_};
  }
  /// Mutable view of the block [r0, r0+nr) x [c0, c0+nc).
  Span2D<double> block(std::size_t r0, std::size_t c0, std::size_t nr,
                       std::size_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  Span2D<const double> block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const {
    return view().block(r0, c0, nr, nc);
  }

  /// Set all entries to `value`.
  void fill(double value) { data_.assign(data_.size(), value); }

  bool operator==(const Matrix& other) const = default;

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Copy the contents of a (possibly strided) view into a fresh matrix.
  static Matrix from_view(Span2D<const double> v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Copy src into dst; shapes must match. Views may be strided.
void copy(Span2D<const double> src, Span2D<double> dst);

/// Frobenius norm of a view.
double frobenius_norm(Span2D<const double> a);

/// Max-abs-entry norm of a view.
double max_abs(Span2D<const double> a);

/// Max-abs entry of (a - b); shapes must match.
double max_abs_diff(Span2D<const double> a, Span2D<const double> b);

/// True when every entry of a and b is bitwise identical (incl. -0 vs +0).
bool bit_equal(Span2D<const double> a, Span2D<const double> b);

/// Pretty-print (small matrices only; meant for debugging and examples).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace rcs::linalg
