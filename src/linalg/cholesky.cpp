#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/gemm_kernel.hpp"
#include "linalg/generate.hpp"

namespace rcs::linalg {

void potrf_unblocked(Span2D<double> a) {
  RCS_CHECK_MSG(a.rows() == a.cols(), "potrf: square matrix required");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    RCS_CHECK_MSG(d > 0.0, "potrf: matrix not positive definite at column "
                               << j << " (pivot " << d << ")");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v * inv;
    }
  }
}

void trsm_right_lower_transposed(Span2D<const double> l, Span2D<double> b) {
  RCS_CHECK_MSG(l.rows() == l.cols(), "trsm: L must be square");
  RCS_CHECK_MSG(l.rows() == b.cols(), "trsm: L/B shape mismatch");
  const std::size_t n = l.rows();
  // X L^T = B row-wise: x[j] = (b[j] - sum_{k<j} x[k] L[j][k]) / L[j][j].
  // Reciprocal-multiply, matching potrf_unblocked's own column scaling.
  std::vector<double> inv(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double d = l(j, j);
    RCS_CHECK_MSG(d != 0.0, "trsm: singular L (zero diagonal at " << j << ")");
    inv[j] = 1.0 / d;
  }
  for (std::size_t r = 0; r < b.rows(); ++r) {
    double* x = b.row(r);
    for (std::size_t j = 0; j < n; ++j) {
      double acc = x[j];
      for (std::size_t k = 0; k < j; ++k) acc -= x[k] * l(j, k);
      x[j] = acc * inv[j];
    }
  }
}

void gemm_nt(Span2D<const double> a, Span2D<const double> b,
             Span2D<double> c) {
  RCS_CHECK_MSG(a.cols() == b.cols() && a.rows() == c.rows() &&
                    b.rows() == c.cols(),
                "gemm_nt shape mismatch: A " << a.rows() << "x" << a.cols()
                                             << ", B^T " << b.cols() << "x"
                                             << b.rows() << ", C "
                                             << c.rows() << "x" << c.cols());
  // The packed engine supports B^T natively (it packs b(j, l) micropanels),
  // accumulating each C entry in ascending-k order exactly like the loop
  // below — same bits, so the threshold only trades speed.
  if (c.rows() * c.cols() * a.cols() > 48 * 48 * 48) {
    detail::gemm_packed_engine(a, b, c, /*b_transposed=*/true);
    return;
  }
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = c(i, j);
      const double* ai = a.row(i);
      const double* bj = b.row(j);
      for (std::size_t k = 0; k < a.cols(); ++k) acc += ai[k] * bj[k];
      c(i, j) = acc;
    }
  }
}

void potrf_blocked(Span2D<double> a, std::size_t bs) {
  RCS_CHECK_MSG(a.rows() == a.cols(), "potrf_blocked: square matrix required");
  RCS_CHECK_MSG(bs > 0, "potrf_blocked: block size must be positive");
  const std::size_t n = a.rows();
  for (std::size_t t = 0; t < n; t += bs) {
    const std::size_t tb = std::min(bs, n - t);
    potrf_unblocked(a.block(t, t, tb, tb));
    if (t + tb >= n) break;
    const std::size_t rest = n - t - tb;
    trsm_right_lower_transposed(a.block(t, t, tb, tb),
                                a.block(t + tb, t, rest, tb));
    // Trailing update of the lower triangle, block by block, with the same
    // kernel the distributed design uses per (u, v) pair.
    for (std::size_t u = 0; u < rest; u += bs) {
      const std::size_t ub = std::min(bs, rest - u);
      for (std::size_t v = 0; v <= u; v += bs) {
        const std::size_t vb = std::min(bs, rest - v);
        Matrix e(ub, vb);
        gemm_nt(a.block(t + tb + u, t, ub, tb),
                a.block(t + tb + v, t, vb, tb), e.view());
        matrix_sub(a.block(t + tb + u, t + tb + v, ub, vb), e.view());
      }
    }
  }
}

double cholesky_residual(Span2D<const double> original,
                         Span2D<const double> factored) {
  const std::size_t n = original.rows();
  RCS_CHECK_MSG(original.cols() == n && factored.rows() == n &&
                    factored.cols() == n,
                "cholesky_residual: shape mismatch");
  // L from the lower triangle of `factored`.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) l(i, j) = factored(i, j);
  Matrix llt(n, n);
  gemm_nt(l.view(), l.view(), llt.view());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Compare against the symmetric matrix implied by the lower triangle.
      const double aij = j <= i ? original(i, j) : original(j, i);
      const double d = aij - llt(i, j);
      num += d * d;
      den += aij * aij;
    }
  }
  RCS_CHECK_MSG(den > 0.0, "cholesky_residual: zero matrix");
  return std::sqrt(num / den);
}

Matrix spd_matrix(std::size_t n, std::uint64_t seed) {
  const Matrix m = random_matrix(n, n, seed, -1.0, 1.0);
  Matrix a(n, n);
  gemm_nt(m.view(), m.view(), a.view());  // M M^T: symmetric PSD
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

}  // namespace rcs::linalg
