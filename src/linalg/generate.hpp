#pragma once
// Workload generators for the matrix experiments.

#include <cstdint>

#include "linalg/matrix.hpp"

namespace rcs::linalg {

/// Uniform random entries in [lo, hi).
Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double lo = -1.0, double hi = 1.0);

/// Random n x n matrix made strictly diagonally dominant, so LU without
/// pivoting is well-defined and stable (the paper's "nonsingular, no
/// pivoting needed" assumption).
Matrix diagonally_dominant(std::size_t n, std::uint64_t seed);

}  // namespace rcs::linalg
