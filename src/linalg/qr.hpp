#pragma once
// QR factorization by Householder reflections — the remaining member of the
// dense-factorization family targeted by hybrid linear algebra on
// reconfigurable systems [22]. Provides the unblocked factorization, the
// compact-WY blocked form whose trailing update is pure matrix multiply
// (and therefore opMM-partitionable between the processor and the FPGA),
// and helpers to materialize Q.
//
// Storage follows LAPACK geqrf: on return, R occupies the upper triangle
// and the Householder vectors (unit leading entry implied) the strict lower
// triangle, with the scalar factors in `tau`.

#include <cstddef>
#include <vector>

#include "common/span2d.hpp"
#include "linalg/matrix.hpp"

namespace rcs::linalg {

/// In-place unblocked Householder QR of an m x n matrix (m >= n).
void geqrf_unblocked(Span2D<double> a, std::vector<double>& tau);

/// In-place blocked QR (compact WY): panels of width `bs` factor with the
/// unblocked routine, the trailing matrix updates as
/// C := (I - V T^T V^T) C — two tall-skinny multiplies and one triangular
/// one, the gemm-heavy shape the hybrid designs accelerate.
void geqrf_blocked(Span2D<double> a, std::size_t bs, std::vector<double>& tau);

/// The upper-triangular T factor of the compact WY representation for the
/// Householder vectors in `v` (unit lower trapezoidal) and scalars `tau`.
Matrix larft(Span2D<const double> v, const std::vector<double>& tau);

/// Materialize the m x m orthogonal Q from a factored matrix (test-scale).
Matrix form_q(Span2D<const double> factored, const std::vector<double>& tau);

/// Extract the n x n upper-triangular R.
Matrix extract_r(Span2D<const double> factored);

/// Relative residual ||A - Q R||_F / ||A||_F.
double qr_residual(Span2D<const double> original,
                   Span2D<const double> factored,
                   const std::vector<double>& tau);

/// Flops counted for an m x n Householder QR (2mn^2 - 2n^3/3 leading term).
inline long long geqrf_flops(long long m, long long n) {
  return 2 * m * n * n - 2 * n * n * n / 3;
}

}  // namespace rcs::linalg
