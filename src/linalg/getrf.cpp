#include "linalg/getrf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace rcs::linalg {

void getrf_unblocked(Span2D<double> a) {
  RCS_CHECK_MSG(a.rows() == a.cols(), "getrf_unblocked: square matrix required");
  getrf_panel(a);
}

void getrf_panel(Span2D<double> a) {
  const std::size_t n = a.rows();
  const std::size_t b = a.cols();
  RCS_CHECK_MSG(n >= b, "getrf_panel: panel must be at least as tall as wide");
  for (std::size_t k = 0; k < b; ++k) {
    const double pivot = a(k, k);
    RCS_CHECK_MSG(pivot != 0.0,
                  "getrf: zero pivot at step " << k
                      << " (matrix requires pivoting; the paper assumes none)");
    const double inv = 1.0 / pivot;
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) *= inv;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = a(i, k);
      if (lik == 0.0) continue;
      double* ai = a.row(i);
      const double* ak = a.row(k);
      for (std::size_t j = k + 1; j < b; ++j) ai[j] -= lik * ak[j];
    }
  }
}

void getrf_blocked(Span2D<double> a, std::size_t b) {
  RCS_CHECK_MSG(a.rows() == a.cols(), "getrf_blocked: square matrix required");
  RCS_CHECK_MSG(b > 0, "getrf_blocked: block size must be positive");
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; k += b) {
    const std::size_t kb = std::min(b, n - k);
    // Step 1: factor the current panel (A[k:n, k:k+kb]) — opLU + opL.
    getrf_panel(a.block(k, k, n - k, kb));
    if (k + kb >= n) break;
    const std::size_t rest = n - k - kb;
    // Step 2: U01 = L00^-1 * A01 — opU.
    trsm_left_lower_unit(a.block(k, k, kb, kb), a.block(k, k + kb, kb, rest));
    // Step 3: trailing update A11 -= L10 * U01 — opMM + opMS.
    Matrix prod(rest, rest);
    gemm_overwrite(a.block(k + kb, k, rest, kb), a.block(k, k + kb, kb, rest),
                   prod.view());
    matrix_sub(a.block(k + kb, k + kb, rest, rest), prod.view());
  }
}

void getrf_pivoted(Span2D<double> a, std::vector<std::size_t>& piv) {
  RCS_CHECK_MSG(a.rows() == a.cols(), "getrf_pivoted: square matrix required");
  const std::size_t n = a.rows();
  piv.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at or below the
    // diagonal.
    std::size_t pr = k;
    double best = std::fabs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a(i, k));
      if (v > best) {
        best = v;
        pr = i;
      }
    }
    RCS_CHECK_MSG(best != 0.0,
                  "getrf_pivoted: matrix is singular at step " << k);
    piv[k] = pr;
    if (pr != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pr, j));
    }
    const double inv = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) *= inv;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = a(i, k);
      if (lik == 0.0) continue;
      double* ai = a.row(i);
      const double* ak = a.row(k);
      for (std::size_t j = k + 1; j < n; ++j) ai[j] -= lik * ak[j];
    }
  }
}

void apply_pivots(Span2D<double> b, const std::vector<std::size_t>& piv) {
  RCS_CHECK_MSG(piv.size() <= b.rows(), "apply_pivots: pivot list too long");
  for (std::size_t k = 0; k < piv.size(); ++k) {
    const std::size_t pr = piv[k];
    RCS_CHECK_MSG(pr < b.rows(), "apply_pivots: pivot out of range");
    if (pr != k) {
      for (std::size_t c = 0; c < b.cols(); ++c) std::swap(b(k, c), b(pr, c));
    }
  }
}

void split_lu(Span2D<const double> factored, Matrix& l, Matrix& u) {
  const std::size_t n = factored.rows();
  RCS_CHECK_MSG(factored.cols() == n, "split_lu: square matrix required");
  l = Matrix(n, n);
  u = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    l(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) l(i, j) = factored(i, j);
    for (std::size_t j = i; j < n; ++j) u(i, j) = factored(i, j);
  }
}

double lu_residual(Span2D<const double> original,
                   Span2D<const double> factored) {
  Matrix l, u;
  split_lu(factored, l, u);
  Matrix lu(original.rows(), original.cols());
  gemm_overwrite(l.view(), u.view(), lu.view());
  double num = 0.0;
  for (std::size_t i = 0; i < lu.rows(); ++i) {
    for (std::size_t j = 0; j < lu.cols(); ++j) {
      const double d = original(i, j) - lu(i, j);
      num += d * d;
    }
  }
  const double den = frobenius_norm(original);
  RCS_CHECK_MSG(den > 0.0, "lu_residual: zero matrix");
  return std::sqrt(num) / den;
}

}  // namespace rcs::linalg
