#pragma once
// Cholesky factorization (A = L L^T for symmetric positive definite A) —
// the third dense factorization of the hybrid-linear-algebra family the
// paper's companion work [22] targets. Provides the unblocked kernel, the
// supporting triangular solve, the transposed-operand multiply the trailing
// update needs, and the blocked right-looking algorithm the distributed
// hybrid design mirrors block for block.

#include <cstddef>

#include "common/span2d.hpp"
#include "linalg/matrix.hpp"

namespace rcs::linalg {

/// In-place unblocked Cholesky of the lower triangle: on return the lower
/// triangle of `a` (including the diagonal) holds L; the strict upper
/// triangle is left untouched. Throws rcs::Error when a pivot is not
/// positive (matrix not positive definite).
void potrf_unblocked(Span2D<double> a);

/// Solve X * L^T = B in place of B, with L lower-triangular (non-unit
/// diagonal) — the Cholesky panel solve: L_ut = A_ut * L_tt^-T.
void trsm_right_lower_transposed(Span2D<const double> l, Span2D<double> b);

/// C += A * B^T with the same ascending-inner-index accumulation order as
/// gemm, so hybrid CPU/FPGA splits of the trailing update are bit-stable.
void gemm_nt(Span2D<const double> a, Span2D<const double> b,
             Span2D<double> c);

/// In-place blocked right-looking Cholesky with block size `bs`; updates
/// only the lower triangle. Built from exactly the kernels above, so the
/// distributed functional design reproduces it bit for bit.
void potrf_blocked(Span2D<double> a, std::size_t bs);

/// Relative residual ||A - L L^T||_F / ||A||_F over the lower triangle's
/// implied symmetric matrix.
double cholesky_residual(Span2D<const double> original,
                         Span2D<const double> factored);

/// Random symmetric positive definite matrix: M M^T scaled plus a dominant
/// diagonal.
Matrix spd_matrix(std::size_t n, std::uint64_t seed);

/// Flops counted for an n x n Cholesky (n^3/3 leading term).
inline long long potrf_flops(long long n) { return n * n * n / 3; }

}  // namespace rcs::linalg
