#pragma once
// Matrix Market I/O — dense matrices in and out of the standard exchange
// format, so workloads from the usual repositories (or from other tools)
// can drive the designs directly.
//
// Supported on read: `matrix array real|integer general` (dense,
// column-major per the spec) and `matrix coordinate real|integer
// general|symmetric` (sparse entries; missing entries become `missing`).
// Writing emits the dense array format.

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"

namespace rcs::linalg {

/// Write `m` in MatrixMarket dense array format.
void write_matrix_market(std::ostream& os, Span2D<const double> m);

/// Write to a file; throws rcs::Error when the file cannot be opened.
void save_matrix_market(const std::string& path, Span2D<const double> m);

/// Read a MatrixMarket matrix. Sparse (coordinate) inputs are densified;
/// entries not present in the file get `missing` (0.0 suits linear algebra,
/// graph::kNoEdge suits distance matrices). Symmetric inputs are expanded.
/// Throws rcs::Error on malformed input or unsupported variants
/// (complex/pattern/hermitian/skew).
Matrix read_matrix_market(std::istream& is, double missing = 0.0);

/// Read from a file; throws rcs::Error when the file cannot be opened.
Matrix load_matrix_market(const std::string& path, double missing = 0.0);

}  // namespace rcs::linalg
