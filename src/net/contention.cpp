#include "net/contention.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcs::net {

const char* to_string(LinkModel m) {
  switch (m) {
    case LinkModel::Crossbar: return "crossbar";
    case LinkModel::PerNodeLinks: return "per-node-links";
    case LinkModel::SharedBus: return "shared-bus";
  }
  return "?";
}

ContentionReport analyze_contention(const std::vector<MessageEvent>& log,
                                    const NetworkParams& net, int world_size,
                                    LinkModel model) {
  RCS_CHECK_MSG(world_size >= 1, "bad world size");
  ContentionReport rep;
  rep.model = model;
  rep.messages = log.size();

  // Link keying per model. A message may traverse up to two links
  // (egress + ingress under PerNodeLinks); it completes when the slower
  // one is done — approximated by reserving them sequentially, which upper-
  // bounds store-and-forward behaviour.
  std::map<std::string, sim::BandwidthLink> links;
  auto link = [&](const std::string& key) -> sim::BandwidthLink& {
    auto it = links.find(key);
    if (it == links.end()) {
      it = links.emplace(key, sim::BandwidthLink(net.bytes_per_s,
                                                 net.latency_s))
               .first;
    }
    return it->second;
  };

  std::vector<MessageEvent> sorted = log;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MessageEvent& a, const MessageEvent& b) {
                     return a.depart < b.depart;
                   });

  for (const MessageEvent& m : sorted) {
    rep.original_last_arrival = std::max(rep.original_last_arrival, m.arrival);
    double done = m.depart;
    switch (model) {
      case LinkModel::Crossbar:
        done = link("pair." + std::to_string(m.src) + "->" +
                    std::to_string(m.dst))
                   .transfer(m.depart, m.bytes);
        break;
      case LinkModel::PerNodeLinks: {
        const double egress =
            link("egress." + std::to_string(m.src)).transfer(m.depart, m.bytes);
        // Cut-through: the ingress link starts as the first byte arrives
        // (egress completion minus the serialization time).
        done = link("ingress." + std::to_string(m.dst))
                   .transfer(egress - static_cast<double>(m.bytes) /
                                          net.bytes_per_s,
                             m.bytes);
        break;
      }
      case LinkModel::SharedBus:
        done = link("bus").transfer(m.depart, m.bytes);
        break;
    }
    const double added = done - m.arrival;
    if (added > rep.max_added_delay) rep.max_added_delay = added;
    if (added > 0.0) rep.total_added_delay += added;
    rep.replayed_last_arrival = std::max(rep.replayed_last_arrival, done);
  }

  for (const auto& [key, l] : links) {
    const double horizon =
        rep.replayed_last_arrival > 0.0 ? rep.replayed_last_arrival : 1.0;
    const double util = l.busy_total() / horizon;
    if (util > rep.busiest_link_utilization) {
      rep.busiest_link_utilization = util;
      rep.busiest_link = key;
    }
  }
  return rep;
}

}  // namespace rcs::net
