#pragma once
// Network-contention analysis: replay a run's message log through explicit
// link models and measure how much queueing the virtual-time accounting
// ignored.
//
// MiniMPI charges transfers to the *sender's* clock (or NIC), which encodes
// the paper's assumption of a non-blocking crossbar (Section 3: "a
// non-blocking crossbar switching fabric which provides two 2 GB/s links to
// each node"). This module checks that assumption after the fact: take the
// MessageEvents of a functional run, push them through per-link
// BandwidthLink timelines, and report the added delay each link model would
// have produced. Near-zero added delay under PerNodeLinks confirms the
// design never oversubscribes a node's links; large delays under SharedBus
// show why a bus-based system would need a different partition.

#include <map>
#include <string>
#include <vector>

#include "net/minimpi.hpp"
#include "sim/engine.hpp"

namespace rcs::net {

/// Topology models for the replay.
enum class LinkModel {
  Crossbar,      // one link per ordered (src, dst) pair — contention-free
                 // between distinct pairs, as the paper assumes
  PerNodeLinks,  // one egress + one ingress link per node at B_n each
                 // (the XD1's "two 2 GB/s links per node")
  SharedBus,     // a single B_n bus for everyone — the stress case
};

const char* to_string(LinkModel m);

/// Outcome of replaying a message log under one link model.
struct ContentionReport {
  LinkModel model{};
  std::size_t messages = 0;
  double original_last_arrival = 0.0;  // from the log
  double replayed_last_arrival = 0.0;  // with explicit link queueing
  double max_added_delay = 0.0;        // worst per-message queueing
  double total_added_delay = 0.0;
  double busiest_link_utilization = 0.0;  // busy / replayed_last_arrival
  std::string busiest_link;

  /// Relative slowdown explicit queueing would cause (1.0 = assumption
  /// holds exactly).
  double slowdown() const {
    return original_last_arrival > 0.0
               ? replayed_last_arrival / original_last_arrival
               : 1.0;
  }
};

/// Replay `log` (as produced by World::message_log()) under `model`.
ContentionReport analyze_contention(const std::vector<MessageEvent>& log,
                                    const NetworkParams& net, int world_size,
                                    LinkModel model);

}  // namespace rcs::net
