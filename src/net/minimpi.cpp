#include "net/minimpi.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace rcs::net {

namespace {

/// World-level telemetry: totals over all ranks plus per-collective counts.
struct NetMetrics {
  obs::Counter& msgs;
  obs::Counter& bytes;
  obs::Counter& bcasts;
  obs::Counter& barriers;
  obs::Counter& allgathers;
  obs::Counter& reduces;

  static NetMetrics& get() {
    auto& reg = obs::Registry::global();
    static NetMetrics m{reg.counter("net.msgs_sent"),
                        reg.counter("net.bytes_sent"),
                        reg.counter("net.collectives.bcast"),
                        reg.counter("net.collectives.barrier"),
                        reg.counter("net.collectives.allgather"),
                        reg.counter("net.collectives.reduce")};
    return m;
  }
};

}  // namespace

int Comm::size() const { return world_->size(); }

void Comm::note_send_metrics(std::uint64_t bytes) {
  if (!obs::metrics_enabled()) return;
  if (metric_msgs_ == nullptr) {
    auto& reg = obs::Registry::global();
    const std::string prefix = "net.rank" + std::to_string(rank_);
    metric_msgs_ = &reg.counter(prefix + ".msgs_sent");
    metric_bytes_ = &reg.counter(prefix + ".bytes_sent");
  }
  metric_msgs_->add(1);
  metric_bytes_->add(bytes);
  NetMetrics& nm = NetMetrics::get();
  nm.msgs.add(1);
  nm.bytes.add(bytes);
}

void Comm::log_message(int dst, std::uint64_t bytes, SimTime depart,
                       SimTime arrival) {
  if (!world_->message_logging()) return;
  sent_log_.push_back(MessageEvent{rank_, dst, bytes, depart, arrival});
}

void Comm::note_send_trace(sim::CommEvent::Kind kind, int dst, SimTime t0,
                           SimTime depart, SimTime arrival,
                           std::uint64_t bytes) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  sim::CommEvent ev;
  ev.kind = kind;
  ev.rank = rank_;
  ev.peer = dst;
  ev.t0 = t0;
  ev.t1 = clock_.now();
  ev.depart = depart;
  ev.arrival = arrival;
  ev.bytes = bytes;
  ev.phase = coll_label_ != nullptr
                 ? coll_label_
                 : (kind == sim::CommEvent::Kind::NicSend ? "isend" : "send");
  trace_->add_comm(std::move(ev));
}

void Comm::note_recv_trace(const Message& msg, SimTime before,
                           const char* overlap_phase) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  sim::CommEvent ev;
  ev.kind = sim::CommEvent::Kind::Recv;
  ev.rank = rank_;
  ev.peer = msg.src;
  ev.t0 = before;
  ev.t1 = clock_.now();
  // A peer that died without sending leaves no wire interval: pin it to the
  // wait's end so the analyzer sees a zero-length (fully visible) transfer.
  ev.depart = msg.src >= 0 ? msg.depart : ev.t1;
  ev.arrival = msg.src >= 0 ? msg.arrival : ev.t1;
  ev.bytes = msg.payload.size();
  ev.phase = overlap_phase != nullptr
                 ? overlap_phase
                 : (coll_label_ != nullptr ? coll_label_ : "recv");
  trace_->add_comm(std::move(ev));
}

void Comm::check_crash() {
  const sim::FaultPlan* plan = world_->fault_plan_;
  if (plan == nullptr) return;
  const SimTime at = plan->crash_time(rank_);
  if (clock_.now() < at) return;
  if (!world_->is_failed(rank_)) {
    fault_stats_.crashes += 1;
    sim::note_crash_injected();
    world_->mark_failed(rank_);
  }
  throw RankFailed(rank_, "rank " + std::to_string(rank_) +
                              " fail-stopped at simulated t=" +
                              std::to_string(at) + "s (FaultPlan crash)");
}

sim::LinkCost Comm::wire_cost(int dst, std::uint64_t bytes) {
  sim::LinkCost base;
  base.latency_s = world_->network().latency_s;
  base.bytes_per_s = world_->network().bytes_per_s;
  const sim::FaultPlan* plan = world_->fault_plan_;
  if (plan == nullptr) return base;
  const sim::LinkCost cost =
      plan->link_cost(rank_, dst, clock_.now(), base, msg_seq_++);
  const double b = static_cast<double>(bytes);
  const SimTime added = (cost.latency_s + b / cost.bytes_per_s) -
                        (base.latency_s + b / base.bytes_per_s);
  if (added > 0.0) {
    fault_stats_.link_hits += 1;
    fault_stats_.link_added_s += added;
  }
  return cost;
}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
  RCS_CHECK_MSG(dst >= 0 && dst < world_->size(), "send to bad rank " << dst);
  RCS_CHECK_MSG(dst != rank_, "send to self (rank " << rank_ << ")");
  RCS_CHECK_MSG(tag >= 0,
                "send with reserved tag " << tag << " (user tags must be >= 0)");
  send_bytes_any_tag(dst, tag, data, bytes);
}

void Comm::send_bytes_any_tag(int dst, int tag, const void* data,
                              std::size_t bytes) {
  check_crash();
  obs::ScopedTimer span("send", "net");
  note_send_metrics(bytes);
  // §4.3: the processor drives MPI, so the CPU is busy for the whole
  // serialization; arrival coincides with send completion.
  const sim::LinkCost cost = wire_cost(dst, bytes);
  const SimTime depart = clock_.now();
  clock_.advance(cost.latency_s + static_cast<double>(bytes) / cost.bytes_per_s);
  bytes_sent_ += bytes;
  log_message(dst, bytes, depart, clock_.now());
  note_send_trace(sim::CommEvent::Kind::Send, dst, depart, depart,
                  clock_.now(), bytes);

  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.depart = depart;
  msg.arrival = clock_.now();
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  world_->deliver(dst, std::move(msg));
}

void Comm::isend_bytes(int dst, int tag, const void* data,
                       std::size_t bytes) {
  RCS_CHECK_MSG(dst >= 0 && dst < world_->size(), "isend to bad rank " << dst);
  RCS_CHECK_MSG(dst != rank_, "isend to self (rank " << rank_ << ")");
  RCS_CHECK_MSG(
      tag >= 0, "isend with reserved tag " << tag << " (user tags must be >= 0)");
  check_crash();
  obs::ScopedTimer span("isend", "net");
  note_send_metrics(bytes);
  // CPU pays only the DMA setup; the NIC serializes the transfer.
  const sim::LinkCost cost = wire_cost(dst, bytes);
  const SimTime setup_t0 = clock_.now();
  clock_.advance(cost.latency_s);
  const SimTime start = std::max(clock_.now(), nic_busy_until_);
  nic_busy_until_ = start + static_cast<double>(bytes) / cost.bytes_per_s;
  bytes_sent_ += bytes;
  log_message(dst, bytes, start, nic_busy_until_);
  note_send_trace(sim::CommEvent::Kind::NicSend, dst, setup_t0, start,
                  nic_busy_until_, bytes);

  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.depart = start;
  msg.arrival = nic_busy_until_;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  world_->deliver(dst, std::move(msg));
}

std::vector<std::byte> Comm::bcast_tree(int root, int tag,
                                        std::vector<std::byte> payload) {
  const int p = size();
  RCS_CHECK_MSG(root >= 0 && root < p, "bcast_tree bad root " << root);
  if (obs::metrics_enabled() && rank_ == root) NetMetrics::get().bcasts.add(1);
  if (p == 1) return payload;
  CollScope coll(*this, "bcast");
  // Classic binomial tree on virtual ranks (root = virtual 0): a rank's
  // parent clears its lowest set bit; it forwards to vrank + s for every
  // power of two s below that bit, largest first, so the last arrival is
  // ceil(log2 p) transfer times after the root starts.
  const int vrank = (rank_ - root + p) % p;
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;
  const int low = vrank == 0 ? (1 << rounds) : (vrank & -vrank);
  if (vrank != 0) {
    const int parent = (vrank - low + root) % p;
    payload = recv(parent, tag).payload;
  }
  for (int s = low >> 1; s >= 1; s >>= 1) {
    if (vrank + s < p) {
      const int child = (vrank + s + root) % p;
      send_bytes(child, tag, payload.data(), payload.size());
    }
  }
  return payload;
}

std::vector<double> Comm::allgather_doubles(int tag,
                                            const std::vector<double>& mine) {
  const int p = size();
  if (obs::metrics_enabled() && rank_ == 0) {
    NetMetrics::get().allgathers.add(1);
  }
  CollScope coll(*this, "allgather");
  std::vector<double> all;
  if (rank_ == 0) {
    // Count header then payload from each rank, in rank order.
    std::vector<std::vector<double>> parts(static_cast<std::size_t>(p));
    parts[0] = mine;
    for (int r = 1; r < p; ++r) {
      parts[static_cast<std::size_t>(r)] = recv(r, tag).as_doubles();
    }
    for (const auto& part : parts)
      all.insert(all.end(), part.begin(), part.end());
  } else {
    send_doubles(0, tag, mine.data(), mine.size());
  }
  return bcast_doubles(0, tag ^ 0x5a5a, std::move(all));
}

double Comm::reduce_sum(int root, int tag, double value) {
  const int p = size();
  RCS_CHECK_MSG(root >= 0 && root < p, "reduce bad root " << root);
  if (obs::metrics_enabled() && rank_ == root) NetMetrics::get().reduces.add(1);
  CollScope coll(*this, "reduce");
  if (rank_ != root) {
    send_doubles(root, tag, &value, 1);
    return 0.0;
  }
  double sum = value;
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    sum += recv(r, tag).as<double>();
  }
  return sum;
}

void Comm::finish_recv(const Message& msg, const char* overlap_phase) {
  const SimTime before = clock_.now();
  if (overlap_phase != nullptr) {
    // Wire-time attribution: of the message's [depart, arrival] interval,
    // the part already behind this rank's clock was hidden behind its own
    // compute; the rest is a visible stall the lookahead failed to cover.
    const SimTime total = std::max(0.0, msg.arrival - msg.depart);
    const SimTime visible =
        std::min(total, std::max(0.0, msg.arrival - clock_.now()));
    OverlapStats& st = overlap_[overlap_phase];
    st.total_s += total;
    st.visible_s += visible;
    st.hidden_s += total - visible;
  }
  clock_.advance_to(msg.arrival);
  note_recv_trace(msg, before, overlap_phase);
}

Message Comm::complete_recv(int src, int tag, const char* overlap_phase) {
  Message msg = world_->take(rank_, src, tag);
  finish_recv(msg, overlap_phase);
  return msg;
}

Message Comm::complete_recv_deadline(int src, int tag, SimTime deadline,
                                     bool* timed_out,
                                     const char* overlap_phase) {
  if (timed_out != nullptr) *timed_out = false;
  const SimTime wait_t0 = clock_.now();
  Message msg;
  try {
    msg = world_->take(rank_, src, tag);
  } catch (const RankFailed&) {
    // The peer fail-stopped without sending: give up at the deadline.
    if (timed_out != nullptr) *timed_out = true;
    fault_stats_.straggler_timeouts += 1;
    sim::note_straggler_timeout();
    clock_.advance_to(deadline);
    Message dead;  // src = -1: note_recv_trace pins the empty wire interval
    note_recv_trace(dead, wait_t0, overlap_phase);
    return Message{};
  }
  if (msg.arrival > deadline) {
    // Late: the message is drained (it exists; the payload may serve
    // diagnostics) but the clock stops at the deadline, so the caller can
    // recompute the straggler's work without inheriting its delay. The
    // verdict compares simulated times only — wall-clock scheduling cannot
    // change it.
    if (timed_out != nullptr) *timed_out = true;
    fault_stats_.straggler_timeouts += 1;
    sim::note_straggler_timeout();
    clock_.advance_to(deadline);
    // Deadline-bound wait: t1 = deadline != arrival, so the analyzer treats
    // it as a local stall instead of jumping over the (late) wire.
    note_recv_trace(msg, wait_t0, overlap_phase);
    return msg;
  }
  finish_recv(msg, overlap_phase);
  return msg;
}

Message Comm::recv(int src, int tag, const char* overlap_phase) {
  RCS_CHECK_MSG(src >= 0 && src < world_->size(), "recv from bad rank " << src);
  RCS_CHECK_MSG(src != rank_, "recv from self (rank " << rank_ << ")");
  RCS_CHECK_MSG(
      tag >= 0, "recv with reserved tag " << tag << " (user tags must be >= 0)");
  return recv_any_tag(src, tag, overlap_phase);
}

Message Comm::recv_any_tag(int src, int tag, const char* overlap_phase) {
  check_crash();
  // The span covers the blocking mailbox wait — idle time shows up in the
  // trace as long "recv" slices on the waiting rank's lane.
  obs::ScopedTimer span("recv", "net");
  return complete_recv(src, tag, overlap_phase);
}

Message Comm::recv_deadline(int src, int tag, SimTime timeout_s,
                            bool* timed_out, const char* overlap_phase) {
  RCS_CHECK_MSG(src >= 0 && src < world_->size(),
                "recv_deadline from bad rank " << src);
  RCS_CHECK_MSG(src != rank_, "recv_deadline from self (rank " << rank_ << ")");
  RCS_CHECK_MSG(tag >= 0, "recv_deadline with reserved tag " << tag);
  RCS_CHECK_MSG(timeout_s > 0.0, "recv_deadline timeout must be positive");
  check_crash();
  obs::ScopedTimer span("recv", "net");
  return complete_recv_deadline(src, tag, clock_.now() + timeout_s, timed_out,
                                overlap_phase);
}

Message Comm::recv_retry(int src, int tag, SimTime timeout_s, int max_retries,
                         double backoff, bool* gave_up,
                         const char* overlap_phase) {
  RCS_CHECK_MSG(src >= 0 && src < world_->size(),
                "recv_retry from bad rank " << src);
  RCS_CHECK_MSG(src != rank_, "recv_retry from self (rank " << rank_ << ")");
  RCS_CHECK_MSG(tag >= 0, "recv_retry with reserved tag " << tag);
  RCS_CHECK_MSG(timeout_s > 0.0, "recv_retry timeout must be positive");
  RCS_CHECK_MSG(max_retries >= 0 && backoff >= 1.0,
                "recv_retry needs max_retries >= 0 and backoff >= 1");
  check_crash();
  if (gave_up != nullptr) *gave_up = false;
  obs::ScopedTimer span("recv", "net");

  const SimTime wait_t0 = clock_.now();
  bool peer_failed = false;
  Message msg;
  try {
    msg = world_->take(rank_, src, tag);
  } catch (const RankFailed&) {
    peer_failed = true;
  }
  // Bounded retry with backoff, resolved against simulated arrival times:
  // each retry extends the deadline by `backoff` times the previous grant.
  SimTime deadline = clock_.now() + timeout_s;
  SimTime grant = timeout_s;
  int retries = 0;
  while (!peer_failed && msg.arrival > deadline && retries < max_retries) {
    grant *= backoff;
    deadline += grant;
    ++retries;
  }
  if (peer_failed || msg.arrival > deadline) {
    // Give up only after the full retry budget: the clock reflects every
    // extension the caller was willing to grant.
    while (retries < max_retries) {
      grant *= backoff;
      deadline += grant;
      ++retries;
    }
    if (gave_up != nullptr) *gave_up = true;
    fault_stats_.straggler_timeouts += 1;
    sim::note_straggler_timeout();
    clock_.advance_to(deadline);
    note_recv_trace(peer_failed ? Message{} : msg, wait_t0, overlap_phase);
    return peer_failed ? Message{} : msg;
  }
  finish_recv(msg, overlap_phase);
  return msg;
}

Request Comm::irecv(int src, int tag, const char* overlap_phase) {
  RCS_CHECK_MSG(src >= 0 && src < world_->size(),
                "irecv from bad rank " << src);
  RCS_CHECK_MSG(src != rank_, "irecv from self (rank " << rank_ << ")");
  RCS_CHECK_MSG(
      tag >= 0, "irecv with reserved tag " << tag << " (user tags must be >= 0)");
  check_crash();
  // Posting is free on the simulated clock: the NIC/mailbox accepts the
  // message whenever it arrives; only wait() synchronizes the timeline.
  return Request(this, src, tag, overlap_phase);
}

bool Request::test() const {
  if (comm_ == nullptr) return false;  // empty or moved-from: nothing pending
  if (done_) return true;              // completed: wait() returns immediately
  return comm_->world_->poll(comm_->rank_, src_, tag_);
}

Message Request::wait() {
  RCS_CHECK_MSG(comm_ != nullptr, "wait() on an empty or moved-from Request");
  if (done_) return msg_;  // idempotent: re-returns the cached message
  obs::ScopedTimer span("wait", "net");
  comm_->check_crash();
  msg_ = comm_->complete_recv(src_, tag_, phase_);
  done_ = true;
  return msg_;
}

Message Request::wait_deadline(SimTime timeout_s, bool* timed_out) {
  RCS_CHECK_MSG(comm_ != nullptr,
                "wait_deadline() on an empty or moved-from Request");
  RCS_CHECK_MSG(timeout_s > 0.0, "wait_deadline timeout must be positive");
  if (timed_out != nullptr) *timed_out = false;
  if (done_) return msg_;
  obs::ScopedTimer span("wait", "net");
  comm_->check_crash();
  msg_ = comm_->complete_recv_deadline(
      src_, tag_, comm_->clock().now() + timeout_s, timed_out, phase_);
  done_ = true;
  return msg_;
}

void Comm::reset_for_run() {
  clock_ = VirtualClock();
  nic_busy_until_ = 0.0;
  bytes_sent_ = 0;
  msg_seq_ = 0;
  fault_stats_ = sim::FaultStats();
  sent_log_.clear();
  overlap_.clear();
  trace_ = nullptr;
  coll_label_ = nullptr;
}

std::vector<std::byte> Comm::bcast(int root, int tag,
                                   std::vector<std::byte> payload) {
  const int p = size();
  RCS_CHECK_MSG(root >= 0 && root < p, "bcast bad root " << root);
  if (obs::metrics_enabled() && rank_ == root) NetMetrics::get().bcasts.add(1);
  CollScope coll(*this, "bcast");
  if (rank_ == root) {
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      send_bytes(r, tag, payload.data(), payload.size());
    }
    return payload;
  }
  return recv(root, tag).payload;
}

std::vector<double> Comm::bcast_doubles(int root, int tag,
                                        std::vector<double> values) {
  std::vector<std::byte> bytes(values.size() * sizeof(double));
  if (rank_ == root && !values.empty()) {
    std::memcpy(bytes.data(), values.data(), bytes.size());
  }
  bytes = bcast(root, tag, std::move(bytes));
  if (rank_ != root) {
    values.resize(bytes.size() / sizeof(double));
    if (!values.empty())
      std::memcpy(values.data(), bytes.data(), bytes.size());
  }
  return values;
}

void Comm::barrier() {
  // Gather-to-0, then root releases everyone. Tags in a reserved range.
  constexpr int kGatherTag = -1001;
  constexpr int kReleaseTag = -1002;
  const int p = size();
  if (p == 1) return;
  if (obs::metrics_enabled() && rank_ == 0) NetMetrics::get().barriers.add(1);
  obs::ScopedTimer span("barrier", "net");
  CollScope coll(*this, "barrier");
  const std::byte token{0};
  if (rank_ == 0) {
    SimTime latest = clock_.now();
    for (int r = 1; r < p; ++r) {
      Message m = recv_any_tag(r, kGatherTag, nullptr);
      latest = std::max(latest, m.arrival);
    }
    clock_.advance_to(latest);
    for (int r = 1; r < p; ++r) send_bytes_any_tag(r, kReleaseTag, &token, 1);
  } else {
    send_bytes_any_tag(0, kGatherTag, &token, 1);
    (void)recv_any_tag(0, kReleaseTag, nullptr);
  }
}

std::vector<double> Comm::gather_double(int root, int tag, double value) {
  const int p = size();
  RCS_CHECK_MSG(root >= 0 && root < p, "gather bad root " << root);
  CollScope coll(*this, "gather");
  if (rank_ != root) {
    send_doubles(root, tag, &value, 1);
    return {};
  }
  std::vector<double> out(static_cast<std::size_t>(p), 0.0);
  out[static_cast<std::size_t>(rank_)] = value;
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    Message m = recv(r, tag);
    out[static_cast<std::size_t>(r)] = m.as<double>();
  }
  return out;
}

double Comm::allreduce_max(double value) {
  constexpr int kUpTag = -1003;
  constexpr int kDownTag = -1004;
  const int p = size();
  if (p == 1) return value;
  CollScope coll(*this, "allreduce");
  if (rank_ == 0) {
    double best = value;
    for (int r = 1; r < p; ++r) {
      best = std::max(best, recv_any_tag(r, kUpTag, nullptr).as<double>());
    }
    for (int r = 1; r < p; ++r) {
      send_bytes_any_tag(r, kDownTag, &best, sizeof(best));
    }
    return best;
  }
  send_bytes_any_tag(0, kUpTag, &value, sizeof(value));
  return recv_any_tag(0, kDownTag, nullptr).as<double>();
}

World::World(int size, NetworkParams net) : size_(size), net_(net) {
  RCS_CHECK_MSG(size >= 1, "world size must be at least 1, got " << size);
  failed_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    failed_[static_cast<std::size_t>(r)].store(false,
                                               std::memory_order_relaxed);
  }
  mailboxes_.reserve(static_cast<std::size_t>(size));
  comms_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::unique_ptr<Comm>(new Comm(this, r)));
  }
}

World::~World() = default;

Comm& World::comm(int rank) {
  RCS_CHECK_MSG(rank >= 0 && rank < size_, "bad rank " << rank);
  return *comms_[static_cast<std::size_t>(rank)];
}

SimTime World::makespan() const {
  SimTime t = 0.0;
  for (const auto& c : comms_) t = std::max(t, c->clock().now());
  return t;
}

std::vector<MessageEvent> World::message_log() const {
  std::vector<MessageEvent> all;
  for (const auto& c : comms_) {
    all.insert(all.end(), c->sent_log_.begin(), c->sent_log_.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const MessageEvent& a, const MessageEvent& b) {
                     return a.depart < b.depart;
                   });
  return all;
}

void World::wake_box_waiters(Mailbox& box,
                             std::vector<common::Fiber*>& spliced) {
  box.cv.notify_all();
  for (common::Fiber* f : spliced) f->wake();
  spliced.clear();
}

void World::deliver(int dst, Message msg) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::vector<common::Fiber*> waiters;
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
    waiters.swap(box.fiber_waiters);
  }
  wake_box_waiters(box, waiters);
}

Message World::take(int dst, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      Message msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
    // Checked only after the queue search: a message that was delivered
    // before the failure is still consumable; only a wait that would block
    // forever on a dead peer aborts.
    if (box.poisoned) {
      throw WorldAborted("rank " + std::to_string(dst) +
                         " aborted: a peer rank failed while this rank was "
                         "waiting for src=" +
                         std::to_string(src) + " tag=" + std::to_string(tag));
    }
    // A fail-stopped source will never send: surface RankFailed instead of
    // blocking forever. Also after the queue search — pre-crash messages
    // stay consumable, and the crash time is simulated, so which messages
    // precede it is deterministic.
    if (is_failed(src)) {
      throw RankFailed(src, "rank " + std::to_string(dst) +
                                " waiting for src=" + std::to_string(src) +
                                " tag=" + std::to_string(tag) +
                                ", but that rank fail-stopped");
    }
    // Block until a waker (deliver / poison_mailboxes / mark_failed) fires,
    // then re-run the predicate checks above. A rank fiber parks on its own
    // stack — freeing the worker thread to run another rank — while an
    // ordinary rank thread waits on the condition variable; the waiter-list
    // registration below plays the role cv.wait's internal queue plays for
    // threads, and both paths wake through wake_box_waiters.
    if (common::Fiber* self = common::Fiber::current()) {
      box.fiber_waiters.push_back(self);
      common::Fiber::park(lock);
    } else {
      box.cv.wait(lock);
    }
  }
}

bool World::poll(int dst, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  if (box.poisoned) return true;  // wait() would throw, not block
  if (std::any_of(box.queue.begin(), box.queue.end(), [&](const Message& m) {
        return m.src == src && m.tag == tag;
      })) {
    return true;
  }
  return is_failed(src);  // wait() would throw RankFailed, not block
}

void World::poison_mailboxes() {
  std::vector<common::Fiber*> waiters;
  for (auto& box : mailboxes_) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      box->poisoned = true;
      waiters.swap(box->fiber_waiters);
    }
    wake_box_waiters(*box, waiters);
  }
}

void World::mark_failed(int rank) {
  // Wakeup-protocol note (the missed-wakeup audit of the `failed_` flag):
  // the release store below happens outside every box mutex, yet no blocked
  // take() can miss it. A waiter's last is_failed check before blocking runs
  // with box.mu held, and it keeps holding box.mu until cv.wait (or
  // Fiber::park) atomically releases the mutex as it blocks — so for each
  // waiter there are only two interleavings:
  //
  //  1. The waiter's lock of box.mu succeeds only after this thread's
  //     lock/unlock below released it. Then store(failed_) sequenced-before
  //     unlock(box.mu) happens-before the waiter's lock — the re-check (or
  //     the pre-wait check) observes the flag and throws.
  //  2. The waiter already held box.mu when this thread arrived at the
  //     lock below. Then the waiter reaches cv.wait/park — which releases
  //     the mutex and is, by then, registered for wakeup — before this
  //     thread can acquire it, so the notify/wake below cannot fire in the
  //     check-to-block window. The woken waiter re-checks under the mutex
  //     and interleaving 1 applies.
  //
  // The lock_guard is intentionally empty for the cv side (the fence
  // through the mutex is all it provides); it additionally splices the
  // fiber-waiter list, which must be consumed under the mutex so each
  // parked fiber earns exactly one wake.
  // Regression: MiniMpiFaults.CrashDuringBlockedRecvStress.
  failed_[static_cast<std::size_t>(rank)].store(true,
                                                std::memory_order_release);
  std::vector<common::Fiber*> waiters;
  for (auto& box : mailboxes_) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      waiters.swap(box->fiber_waiters);
    }
    wake_box_waiters(*box, waiters);
  }
}

std::vector<int> World::failed_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (is_failed(r)) out.push_back(r);
  }
  return out;
}

void World::set_max_workers(int max_workers) {
  RCS_CHECK_MSG(max_workers >= kThreadPerRank,
                "max_workers must be kThreadPerRank (-1), 0 (auto) or > 0, "
                "got " << max_workers);
  max_workers_ = max_workers;
}

int World::resolve_workers() const {
  int mw = max_workers_;
  if (mw == 0) {
    if (const char* env = std::getenv("RCS_MAX_WORKERS")) {
      const int v = std::atoi(env);
      if (v >= 1 || v == kThreadPerRank) mw = v;
    }
  }
  if (mw == 0) {
    // Auto: small worlds keep the thread-per-rank schedule (ranks' real
    // compute overlaps with no cooperative scheduler in the way); large
    // worlds multiplex onto the pool's thread budget.
    if (size_ <= kAutoFiberThreshold) return kThreadPerRank;
    mw = common::ThreadPool::global().threads();
  }
  if (mw == kThreadPerRank) return kThreadPerRank;
  return std::min(mw, size_);
}

void World::run(const std::function<void(Comm&)>& rank_main) {
  if (ran_) {
    // A World is reusable: wipe every per-run artifact (stale clocks, NIC
    // horizons, byte counters, send logs, undelivered messages, poison
    // flags) so the second run is indistinguishable from a fresh World.
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box->mu);
      box->queue.clear();
      box->poisoned = false;
      box->fiber_waiters.clear();
    }
    for (int r = 0; r < size_; ++r) {
      failed_[static_cast<std::size_t>(r)].store(false,
                                                 std::memory_order_relaxed);
    }
    for (auto& c : comms_) c->reset_for_run();
  }
  ran_ = true;

  std::mutex err_mu;
  std::exception_ptr first_error;
  bool first_is_abort = false;  // held error is a secondary WorldAborted

  // The per-rank body, identical under both schedulers: run the rank's main
  // and classify whatever escapes it. All simulated state lives in the
  // rank's Comm, so the body is agnostic to what carries it (OS thread or
  // fiber).
  auto rank_body = [this, &rank_main, &err_mu, &first_error,
                    &first_is_abort](int r) {
    try {
      rank_main(*comms_[static_cast<std::size_t>(r)]);
    } catch (const WorldAborted&) {
      // Secondary failure induced by the poison below: keep it only
      // until the original exception shows up.
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) {
        first_error = std::current_exception();
        first_is_abort = true;
      }
    } catch (const RankFailed& rf) {
      if (rf.rank == r) {
        // Injected fail-stop of this rank: expected under a FaultPlan.
        // The world keeps running — survivors observe the failure as
        // RankFailed on their own receives and may tolerate it.
      } else {
        // A survivor let a peer's failure escape its main function:
        // the app did not tolerate the fault, so unwind the world
        // like any other error.
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error || first_is_abort) {
            first_error = std::current_exception();
            first_is_abort = false;
          }
        }
        poison_mailboxes();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error || first_is_abort) {
          first_error = std::current_exception();
          first_is_abort = false;
        }
      }
      // Wake every rank blocked on this (now dead) one so the whole
      // run unwinds instead of hanging.
      poison_mailboxes();
    }
  };

  const int workers = resolve_workers();
  if (workers == kThreadPerRank) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([r, &rank_body] {
        // Each rank gets its own trace lane, so Perfetto shows per-rank
        // timelines alongside the pool workers'.
        if (obs::trace_enabled()) {
          obs::set_thread_lane("rank " + std::to_string(r));
        }
        rank_body(r);
      });
    }
    for (auto& t : threads) t.join();
  } else {
    // Fiber mode: every rank is a resumable context; take() parks it and
    // the scheduler resumes another runnable rank on the same worker. The
    // lane_name hook keeps per-rank Chrome-trace lanes intact even when
    // many ranks share one OS thread.
    common::FiberScheduler::Options opt;
    opt.workers = workers;
    opt.stack_bytes = fiber_stack_bytes_;
    opt.lane_name = [](int r) { return "rank " + std::to_string(r); };
    common::FiberScheduler::run(size_, opt, rank_body);
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rcs::net
