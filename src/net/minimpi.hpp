#pragma once
// MiniMPI — an MPI-style message-passing runtime over std::thread.
//
// The paper's nodes communicate with MPI over the XD1 RapidArray fabric; no
// MPI implementation is available here, so MiniMPI provides the subset the
// hybrid designs need (point-to-point send/recv with tags, broadcast,
// barrier, gather) with real data movement between per-rank mailboxes.
//
// Virtual time: every rank owns a clock in simulated seconds. Following the
// paper's model (§4.3: "the computations on the processors cannot overlap
// with the network communications"), a send charges the full serialization
// time `latency + bytes/B_n` to the *sender's* clock (the CPU drives MPI),
// and a receive advances the receiver's clock to at least the message's
// arrival time. Broadcast is root-serialized, matching the paper's
// "transfers ... to all the other nodes".
//
// Determinism: receives always name their source and tag, clocks depend only
// on message payload sizes and compute charges — never on wall-clock time —
// so repeated runs give identical simulated timings and data.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/fiber.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"

// Extended collectives and DMA-style transfers live alongside the basic
// MPI-flavoured operations; see the class comments below.

namespace rcs::net {

using sim::SimTime;

/// Cost parameters of the interconnect between any two nodes.
struct NetworkParams {
  double bytes_per_s = 2e9;  // B_n: XD1 provides 2 GB/s links per node
  double latency_s = 0.0;    // per-message latency (the paper neglects it)

  /// Serialization time for one message of `bytes`.
  SimTime transfer_time(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bytes_per_s;
  }
};

/// Per-rank simulated clock. All compute and communication charges flow
/// through here so the run produces a deterministic simulated schedule.
class VirtualClock {
 public:
  SimTime now() const { return now_; }

  /// Advance by a non-negative duration.
  void advance(SimTime dt) {
    RCS_CHECK_MSG(dt >= 0.0, "clock cannot move backwards by " << dt);
    now_ += dt;
  }

  /// Move forward to `t` if `t` is later; never moves backwards.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = 0.0;
};

/// One sent message as seen by the timing layer — recorded when message
/// logging is enabled, consumed by net::analyze_contention.
struct MessageEvent {
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  SimTime depart = 0.0;   // when the transfer started
  SimTime arrival = 0.0;  // when the payload became available
};

/// A received message: payload plus provenance and simulated arrival time.
struct Message {
  int src = -1;
  int tag = -1;
  SimTime depart = 0.0;           // simulated time the transfer started
  SimTime arrival = 0.0;          // simulated time the payload is available
  std::vector<std::byte> payload;

  /// Reinterpret the payload as a vector of doubles.
  std::vector<double> as_doubles() const {
    RCS_CHECK_MSG(payload.size() % sizeof(double) == 0,
                  "payload is not a whole number of doubles");
    std::vector<double> out(payload.size() / sizeof(double));
    std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }

  /// Reinterpret the payload as a single trivially-copyable value.
  template <typename T>
  T as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    RCS_CHECK_MSG(payload.size() == sizeof(T), "payload size mismatch");
    T v;
    std::memcpy(&v, payload.data(), sizeof(T));
    return v;
  }
};

class World;
class Comm;

/// Thrown out of blocked mailbox waits when another rank's main function
/// failed: the World poisons every mailbox so no rank hangs forever waiting
/// for a message its dead peer will never send. World::run swallows these
/// secondary errors and rethrows the original rank exception.
struct WorldAborted : Error {
  explicit WorldAborted(const std::string& what) : Error(what) {}
};

/// Thrown when a rank fail-stops under an injected FaultPlan crash, and out
/// of receives/waits on a peer that has already failed. Distinct from
/// WorldAborted: a RankFailed world keeps running — survivors observe the
/// failure per-operation and may catch it to degrade gracefully, whereas
/// WorldAborted means the whole run is unwinding after an unexpected error.
struct RankFailed : Error {
  RankFailed(int failed_rank, const std::string& what)
      : Error(what), rank(failed_rank) {}
  int rank;  // the rank that fail-stopped (may be the thrower or a peer)
};

/// Comm/transfer overlap accounting for one phase label: how much of the
/// simulated transfer time of received messages was hidden behind the
/// receiver's own compute (clock already past the wire interval when the
/// wait resolved) versus visible as a stall.
struct OverlapStats {
  SimTime hidden_s = 0.0;   // transfer seconds overlapped with compute
  SimTime visible_s = 0.0;  // transfer seconds the receiver stalled on
  SimTime total_s = 0.0;    // total wire seconds of received messages

  /// Fraction of transfer time hidden behind compute (0 when no transfers).
  double efficiency() const { return total_s > 0.0 ? hidden_s / total_s : 0.0; }

  OverlapStats& operator+=(const OverlapStats& o) {
    hidden_s += o.hidden_s;
    visible_s += o.visible_s;
    total_s += o.total_s;
    return *this;
  }
};

/// Handle to a posted nonblocking receive (Comm::irecv). Move-only; exactly
/// one wait() consumes the message. test() peeks the mailbox without
/// consuming anything and without touching the simulated clock, so it is
/// safe for opportunistic progress — but its answer depends on real thread
/// interleaving, so charging different *clock* costs on its outcome would
/// break simulated-time determinism (wait() never does).
class Request {
 public:
  Request() = default;
  Request(Request&& o) noexcept { *this = std::move(o); }
  Request& operator=(Request&& o) noexcept {
    comm_ = o.comm_;
    src_ = o.src_;
    tag_ = o.tag_;
    phase_ = o.phase_;
    done_ = o.done_;
    msg_ = std::move(o.msg_);
    o.comm_ = nullptr;
    o.done_ = false;
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True while a wait() is still owed (completed requests stay valid: their
  /// wait() re-returns the cached message).
  bool valid() const { return comm_ != nullptr; }

  /// Non-blocking: has the matching message already been delivered (i.e.
  /// would wait() return without blocking the thread)? Returns true after a
  /// completed wait(), false on an empty or moved-from request.
  bool test() const;

  /// Block (wall clock) until the message is available, advance the rank's
  /// simulated clock to at least its arrival, and return it. Idempotent:
  /// waiting again returns a copy of the same message with no further clock
  /// effect. Throws Error on an empty/moved-from request, WorldAborted if a
  /// peer rank failed unexpectedly, RankFailed if the source fail-stopped
  /// under a FaultPlan before sending.
  Message wait();

  /// wait() with a simulated-time budget measured from the call: if the
  /// message's arrival lands past `clock.now() + timeout_s` (or the source
  /// fail-stopped), sets *timed_out, advances the clock only to the
  /// deadline, and returns the late message (src = -1 if the peer died
  /// without sending). Deterministic: the verdict depends on simulated
  /// arrival times only, never on wall-clock scheduling.
  Message wait_deadline(SimTime timeout_s, bool* timed_out);

 private:
  friend class Comm;
  Request(Comm* comm, int src, int tag, const char* phase)
      : comm_(comm), src_(src), tag_(tag), phase_(phase) {}

  Comm* comm_ = nullptr;
  int src_ = -1;
  int tag_ = -1;
  const char* phase_ = nullptr;
  bool done_ = false;  // wait() completed; msg_ caches the result
  Message msg_;
};

/// A rank's handle to the world: MPI-flavoured operations plus the rank's
/// virtual clock. One Comm per rank, used only from that rank's thread.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Point-to-point send of raw bytes. Charges `transfer_time(bytes)` to
  /// this rank's clock; the message arrives at the charged completion time.
  /// All point-to-point operations validate their arguments: the peer rank
  /// must be in [0, size) and distinct from this rank, and user tags must be
  /// non-negative (negative tags are reserved for internal collectives) —
  /// violations throw a descriptive Error instead of indexing mailboxes out
  /// of bounds.
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// DMA-style non-blocking send: the transfer occupies this rank's NIC
  /// timeline instead of the CPU (the RapidArray engines on XD1 can move
  /// data without the processor). The CPU pays only the per-message setup
  /// latency; the message arrives when the NIC finishes. Ordering with
  /// other isends from this rank is preserved (one NIC, serialized).
  void isend_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Simulated time this rank's NIC becomes idle.
  SimTime nic_free_at() const { return nic_busy_until_; }

  /// Blocking receive from a specific source and tag. The clock advances to
  /// at least the message's simulated arrival. When `overlap_phase` is
  /// given, the message's wire time is attributed to that phase's
  /// OverlapStats (hidden vs visible relative to this clock). Throws
  /// RankFailed when `src` fail-stopped before sending the message.
  Message recv(int src, int tag, const char* overlap_phase = nullptr);

  /// recv() with a simulated-time budget: if the message's arrival lands
  /// past `clock.now() + timeout_s` (or the source fail-stopped), sets
  /// *timed_out, advances the clock only to the deadline, and returns the
  /// late message (src = -1 when the peer died without sending) so the
  /// caller can degrade gracefully instead of stalling on a straggler.
  Message recv_deadline(int src, int tag, SimTime timeout_s, bool* timed_out,
                        const char* overlap_phase = nullptr);

  /// recv_deadline with bounded retry/backoff: the deadline is extended
  /// `max_retries` times, each extension `backoff` times longer than the
  /// last. Sets *gave_up when the message misses every extended deadline;
  /// the clock then stops at the last deadline. Deterministic for the same
  /// reason recv_deadline is: only simulated arrival times are compared.
  Message recv_retry(int src, int tag, SimTime timeout_s, int max_retries,
                     double backoff, bool* gave_up,
                     const char* overlap_phase = nullptr);

  /// Post a nonblocking receive: returns immediately (no clock charge); the
  /// returned Request's wait() completes the receive. Lookahead pipelines
  /// post the next iteration's receives before computing on the current
  /// one, so the transfer streams in behind the compute.
  Request irecv(int src, int tag, const char* overlap_phase = nullptr);

  /// Per-phase transfer-overlap accounting of every labelled receive so far.
  const std::map<std::string, OverlapStats>& overlap_stats() const {
    return overlap_;
  }

  /// Convenience wrappers.
  void send_doubles(int dst, int tag, const double* data, std::size_t count) {
    send_bytes(dst, tag, data, count * sizeof(double));
  }
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, &v, sizeof(T));
  }

  /// Root-serialized broadcast: root sends to every other rank in turn
  /// (P_t' "transfers ... to all the other nodes"); non-roots receive.
  /// Returns the payload (the root's own copy comes back unchanged).
  std::vector<std::byte> bcast(int root, int tag,
                               std::vector<std::byte> payload);

  /// Broadcast a vector of doubles.
  std::vector<double> bcast_doubles(int root, int tag,
                                    std::vector<double> values);

  /// Binomial-tree broadcast: ceil(log2 p) rounds, each relay forwarding to
  /// its subtree, so the last arrival is ~log2(p) transfer times instead of
  /// the root-serialized (p-1). Every rank must call it.
  std::vector<std::byte> bcast_tree(int root, int tag,
                                    std::vector<std::byte> payload);

  /// All ranks contribute `mine`; every rank returns the concatenation in
  /// rank order (gather to root, then broadcast).
  std::vector<double> allgather_doubles(int tag,
                                        const std::vector<double>& mine);

  /// Reduce-sum of a double to `root` (returns the sum on root, 0 elsewhere).
  double reduce_sum(int root, int tag, double value);

  /// Barrier (gather-to-0 then release). Synchronizes simulated clocks to
  /// the latest participant (plus the tiny control-message costs).
  void barrier();

  /// Gather one double from every rank to `root`; non-roots get empty.
  std::vector<double> gather_double(int root, int tag, double value);

  /// Reduce-max of a double across ranks; the result is valid on all ranks.
  double allreduce_max(double value);

  /// This rank's virtual clock (compute charges are applied by the node
  /// model, which shares this clock).
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  /// Attach a per-rank trace recorder: every send/isend/receive is recorded
  /// as a sim::CommEvent (clock interval + wire interval + phase label) for
  /// critical-path analysis. The recorder must outlive the run and must be
  /// private to this rank (recorders are not thread-safe); pass nullptr to
  /// detach (e.g. before an untimed gather). Cleared by each new run().
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

  /// Total bytes this rank has sent (for reports).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Injection accounting for this rank under the World's FaultPlan (link
  /// degradation seconds, self-crash). Zeroed when no plan is installed.
  const sim::FaultStats& fault_stats() const { return fault_stats_; }

 private:
  friend class World;
  friend class Request;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  void log_message(int dst, std::uint64_t bytes, SimTime depart,
                   SimTime arrival);

  /// Take the message, advance the clock, and attribute its wire time to
  /// `overlap_phase` (shared by recv and Request::wait).
  Message complete_recv(int src, int tag, const char* overlap_phase);

  /// Accept a taken message: attribute its wire time to `overlap_phase` and
  /// advance the clock to its arrival.
  void finish_recv(const Message& msg, const char* overlap_phase);

  /// Deadline variant shared by recv_deadline and Request::wait_deadline.
  Message complete_recv_deadline(int src, int tag, SimTime deadline,
                                 bool* timed_out, const char* overlap_phase);

  /// Internal send/recv that accept reserved (negative) tags — the public
  /// operations validate user tags and then route through these.
  void send_bytes_any_tag(int dst, int tag, const void* data,
                          std::size_t bytes);
  Message recv_any_tag(int src, int tag, const char* overlap_phase);

  /// Fail-stop checkpoint: when the installed FaultPlan crashes this rank
  /// at t <= now, mark the rank failed, wake every blocked peer, and throw
  /// RankFailed. Called on entry to every communication operation — crashes
  /// manifest at the first message the dead rank would have touched.
  void check_crash();

  /// Per-message wire parameters: the network's nominal latency/bandwidth,
  /// degraded and jittered by the FaultPlan when one is installed (also
  /// advances the deterministic per-rank message sequence counter).
  sim::LinkCost wire_cost(int dst, std::uint64_t bytes);

  /// Restore construction-time state so a World can be run() again.
  void reset_for_run();

  /// Scoped collective-context label: internal sends/receives issued while
  /// a scope is live are attributed to the collective ("barrier", "bcast",
  /// ...) instead of the generic "send"/"recv".
  class CollScope {
   public:
    CollScope(Comm& c, const char* label) : c_(c), prev_(c.coll_label_) {
      c_.coll_label_ = label;
    }
    ~CollScope() { c_.coll_label_ = prev_; }
    CollScope(const CollScope&) = delete;
    CollScope& operator=(const CollScope&) = delete;

   private:
    Comm& c_;
    const char* prev_;
  };

  /// Trace hooks (no-ops when no recorder is attached).
  void note_send_trace(sim::CommEvent::Kind kind, int dst, SimTime t0,
                       SimTime depart, SimTime arrival, std::uint64_t bytes);
  void note_recv_trace(const Message& msg, SimTime before,
                       const char* overlap_phase);

  /// Telemetry: bump the global + per-rank message/byte counters (no-op
  /// when RCS_METRICS is off). Handles resolve lazily, once per Comm.
  void note_send_metrics(std::uint64_t bytes);

  World* world_;
  int rank_;
  VirtualClock clock_;
  SimTime nic_busy_until_ = 0.0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t msg_seq_ = 0;  // per-rank send ordinal (fault jitter key)
  sim::FaultStats fault_stats_;
  obs::Counter* metric_msgs_ = nullptr;   // "net.rank<r>.msgs_sent"
  obs::Counter* metric_bytes_ = nullptr;  // "net.rank<r>.bytes_sent"
  std::vector<MessageEvent> sent_log_;  // only filled when logging enabled
  std::map<std::string, OverlapStats> overlap_;  // labelled receives only
  sim::TraceRecorder* trace_ = nullptr;   // per-rank comm-event sink
  const char* coll_label_ = nullptr;      // active collective context
};

/// The set of ranks plus their mailboxes. Construct with the node count and
/// network parameters, then `run` a per-rank main function.
class World {
 public:
  World(int size, NetworkParams net);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }
  const NetworkParams& network() const { return net_; }

  /// Run every rank's rank_main to completion and return. Depending on the
  /// scheduling mode (set_max_workers), ranks execute either as one OS
  /// thread each or as cooperative fibers multiplexed over a small worker
  /// set; the semantics are identical either way — simulated clocks, FIFO
  /// per-(src,tag) delivery, poison/RankFailed propagation, and FaultPlan
  /// replay do not depend on the mode (receives name their source and tag,
  /// and per-pair order is fixed by the sender's program order, so no
  /// scheduler interleaving is observable). Rethrows the first rank
  /// exception after joining; when one
  /// rank fails, every mailbox is poisoned so peers blocked in recv/wait/
  /// barrier wake with WorldAborted instead of hanging (those secondary
  /// aborts are swallowed — the original exception is what propagates).
  /// The Comms (and their clocks / byte counters) remain inspectable
  /// afterwards. Calling run() again first resets all per-run state
  /// (clocks, NIC timelines, byte counters, send logs, undelivered
  /// messages), so a World is reusable and each run starts from t = 0.
  void run(const std::function<void(Comm&)>& rank_main);

  /// Rank r's Comm — valid between construction and destruction; read its
  /// clock after run() to get per-node finish times.
  Comm& comm(int rank);

  /// Latest simulated clock across ranks (the run's makespan) — call after
  /// run().
  SimTime makespan() const;

  /// Record every message sent during run() (off by default). Call before
  /// run(); retrieve with message_log() afterwards.
  void set_message_logging(bool enabled) { log_messages_ = enabled; }
  bool message_logging() const { return log_messages_; }

  /// All messages sent during the run, in departure order.
  std::vector<MessageEvent> message_log() const;

  /// Install a fault plan for subsequent run()s (nullptr = fault-free; the
  /// plan must outlive the runs). With a plan, sends see degraded/jittered
  /// links, ranks fail-stop at their crash times, and receives from failed
  /// peers throw RankFailed.
  void set_fault_plan(const sim::FaultPlan* plan) { fault_plan_ = plan; }
  const sim::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Ranks that fail-stopped during the last run(), ascending.
  std::vector<int> failed_ranks() const;

  /// Force thread-per-rank execution (see set_max_workers).
  static constexpr int kThreadPerRank = -1;

  /// Ranks at or below this size default to thread-per-rank ("auto" mode):
  /// small worlds keep one OS thread per rank (real compute overlaps across
  /// ranks with no scheduler in the way), large worlds switch to fibers so
  /// p=256–1024 fits in one process.
  static constexpr int kAutoFiberThreshold = 32;

  /// Scheduling-mode knob for run():
  ///   0 (default)      — auto: thread-per-rank for size() <=
  ///                      kAutoFiberThreshold, otherwise the fiber
  ///                      scheduler with min(pool threads, size()) workers.
  ///                      The RCS_MAX_WORKERS environment variable (same
  ///                      encoding as this knob) overrides auto's choice.
  ///   w > 0            — fiber scheduler multiplexing the ranks over at
  ///                      most w cooperative workers (hosted on the global
  ///                      ThreadPool; effective concurrency is additionally
  ///                      capped by the pool's thread count).
  ///   kThreadPerRank   — force one OS thread per rank.
  void set_max_workers(int max_workers);
  int max_workers() const { return max_workers_; }

  /// Per-fiber stack size for fiber-mode runs; 0 = default (the
  /// RCS_FIBER_STACK_KB environment variable, or 256 KiB — 1 MiB under
  /// sanitizers). Rank mains that put large matrices on the stack need more;
  /// the guard page below each stack turns overflow into a fault.
  void set_fiber_stack_bytes(std::size_t bytes) { fiber_stack_bytes_ = bytes; }

 private:
  friend class Comm;
  friend class Request;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    bool poisoned = false;  // a peer rank failed; waits must not block
    /// Rank fibers parked in take() on this box. A waiter registers here
    /// under `mu` before parking; wakers splice the list under `mu` and
    /// wake each fiber exactly once (the fiber analogue of cv.notify_all).
    std::vector<common::Fiber*> fiber_waiters;
  };

  void deliver(int dst, Message msg);
  Message take(int dst, int src, int tag);
  bool poll(int dst, int src, int tag);

  /// Wake every blocked take() with WorldAborted (called on first rank
  /// failure so the surviving ranks cannot deadlock on a dead peer).
  void poison_mailboxes();

  /// Mark `rank` fail-stopped and wake every blocked take() so waits on the
  /// dead rank turn into RankFailed instead of hanging (other traffic keeps
  /// flowing — unlike poison_mailboxes, the world stays alive).
  void mark_failed(int rank);
  bool is_failed(int rank) const {
    return failed_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  /// Wake everyone blocked in take() on `box`: notify the cv (thread-mode
  /// waiters) and wake every spliced fiber waiter. `spliced` must have been
  /// swapped out of box.fiber_waiters under box.mu by the caller.
  static void wake_box_waiters(Mailbox& box,
                               std::vector<common::Fiber*>& spliced);

  /// The scheduling mode for this run: kThreadPerRank, or a positive fiber
  /// worker count (resolves the auto mode and RCS_MAX_WORKERS).
  int resolve_workers() const;

  int size_;
  NetworkParams net_;
  int max_workers_ = 0;                 // see set_max_workers
  std::size_t fiber_stack_bytes_ = 0;   // see set_fiber_stack_bytes
  bool log_messages_ = false;
  bool ran_ = false;  // a run() completed; the next run() resets state
  const sim::FaultPlan* fault_plan_ = nullptr;
  std::unique_ptr<std::atomic<bool>[]> failed_;  // fail-stopped ranks
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Comm>> comms_;
};

}  // namespace rcs::net
