#pragma once
// Sending dense matrix blocks over MiniMPI — the data plane of the hybrid
// designs (column/row stripes of C and D, opMM partial results, D_tt /
// D_qt blocks).
//
// Wire format: two uint64 dimensions followed by row-major doubles. Strided
// views are packed densely on send.

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/span2d.hpp"
#include "linalg/matrix.hpp"
#include "net/minimpi.hpp"

namespace rcs::net {

/// Number of payload bytes a rows x cols matrix occupies on the wire.
inline std::uint64_t matrix_wire_bytes(std::uint64_t rows, std::uint64_t cols) {
  return 2 * sizeof(std::uint64_t) + rows * cols * sizeof(double);
}

namespace detail {
inline std::vector<std::byte> pack_matrix(Span2D<const double> m) {
  const std::uint64_t rows = m.rows();
  const std::uint64_t cols = m.cols();
  std::vector<std::byte> buf(matrix_wire_bytes(rows, cols));
  std::memcpy(buf.data(), &rows, sizeof(rows));
  std::memcpy(buf.data() + sizeof(rows), &cols, sizeof(cols));
  std::byte* out = buf.data() + 2 * sizeof(std::uint64_t);
  for (std::uint64_t r = 0; r < rows; ++r) {
    std::memcpy(out, m.row(r), cols * sizeof(double));
    out += cols * sizeof(double);
  }
  return buf;
}
}  // namespace detail

/// Send the contents of `m` (possibly a strided view) to `dst`, charging
/// the sending CPU for the serialization (§4.3).
inline void send_matrix(Comm& comm, int dst, int tag,
                        Span2D<const double> m) {
  const auto buf = detail::pack_matrix(m);
  comm.send_bytes(dst, tag, buf.data(), buf.size());
}

/// DMA-style matrix send: the transfer rides the sender's NIC timeline and
/// the CPU pays only setup latency (see Comm::isend_bytes).
inline void isend_matrix(Comm& comm, int dst, int tag,
                         Span2D<const double> m) {
  const auto buf = detail::pack_matrix(m);
  comm.isend_bytes(dst, tag, buf.data(), buf.size());
}

/// Decode a matrix from a received message.
inline linalg::Matrix decode_matrix(const Message& msg) {
  RCS_CHECK_MSG(msg.payload.size() >= 2 * sizeof(std::uint64_t),
                "matrix message too short");
  std::uint64_t rows = 0, cols = 0;
  std::memcpy(&rows, msg.payload.data(), sizeof(rows));
  std::memcpy(&cols, msg.payload.data() + sizeof(rows), sizeof(cols));
  RCS_CHECK_MSG(msg.payload.size() == matrix_wire_bytes(rows, cols),
                "matrix message size mismatch");
  linalg::Matrix m(rows, cols);
  std::memcpy(m.data(), msg.payload.data() + 2 * sizeof(std::uint64_t),
              rows * cols * sizeof(double));
  return m;
}

/// Blocking receive of a matrix from `src` with `tag`. `overlap_phase`
/// labels the transfer for Comm::overlap_stats (see minimpi.hpp).
inline linalg::Matrix recv_matrix(Comm& comm, int src, int tag,
                                  const char* overlap_phase = nullptr) {
  return decode_matrix(comm.recv(src, tag, overlap_phase));
}

/// Nonblocking receive of a matrix: post with irecv_matrix, resolve with
/// wait_matrix once the data is actually needed — the lookahead pipelines
/// post the next block's receive before computing on the current one.
inline Request irecv_matrix(Comm& comm, int src, int tag,
                            const char* overlap_phase = nullptr) {
  return comm.irecv(src, tag, overlap_phase);
}

/// Complete a posted matrix receive.
inline linalg::Matrix wait_matrix(Request& req) {
  return decode_matrix(req.wait());
}

/// Deadline-bounded blocking matrix receive: decodes the message when it
/// arrives in time, otherwise sets *timed_out and returns an empty Matrix
/// (the late message, if any, is drained — see Comm::recv_deadline).
inline linalg::Matrix recv_matrix_deadline(Comm& comm, int src, int tag,
                                           sim::SimTime timeout_s,
                                           bool* timed_out,
                                           const char* overlap_phase = nullptr) {
  const Message msg =
      comm.recv_deadline(src, tag, timeout_s, timed_out, overlap_phase);
  if (timed_out != nullptr && *timed_out) return {};
  return decode_matrix(msg);
}

/// Deadline-bounded completion of a posted matrix receive (see
/// Request::wait_deadline). Returns an empty Matrix on timeout.
inline linalg::Matrix wait_matrix_deadline(Request& req, sim::SimTime timeout_s,
                                           bool* timed_out) {
  const Message msg = req.wait_deadline(timeout_s, timed_out);
  if (timed_out != nullptr && *timed_out) return {};
  return decode_matrix(msg);
}

/// Broadcast a matrix from `root`; every rank returns the matrix.
inline linalg::Matrix bcast_matrix(Comm& comm, int root, int tag,
                                   linalg::Matrix m) {
  if (comm.rank() == root) {
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      send_matrix(comm, r, tag, m.view());
    }
    return m;
  }
  return recv_matrix(comm, root, tag);
}

}  // namespace rcs::net
