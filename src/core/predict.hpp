#pragma once
// The design model as a performance predictor (§4.5): after partitioning,
// total processor time T_tp and FPGA time T_tf are accumulated along the
// task dependency structure, assuming every data transfer and network
// communication overlaps the FPGA's computation. The predicted latency is
// max(T_tp, T_tf). Section 6.2 reports the implementations reach >= 86%
// (LU) and >= 96% (FW) of this prediction; the fig9 bench reproduces that
// comparison against the schedule simulators.

#include <map>
#include <string>

#include "core/fw_analytic.hpp"
#include "core/lu_analytic.hpp"

namespace rcs::core {

/// Model prediction for one run.
struct Prediction {
  double t_tp = 0.0;          // total processor-side time (critical path)
  double t_tf = 0.0;          // total FPGA-side time
  double total_flops = 0.0;   // semantic flops of the application
  double latency_seconds() const { return t_tp > t_tf ? t_tp : t_tf; }
  double gflops() const {
    const double t = latency_seconds();
    return t > 0.0 ? total_flops / t / 1e9 : 0.0;
  }
};

/// Predict the configured LU design (same resolution rules as lu_analytic:
/// b_f / l of -1 are solved from the model).
Prediction predict_lu(const SystemParams& sys, const LuConfig& cfg);

/// Predict the configured Floyd–Warshall design.
Prediction predict_fw(const SystemParams& sys, const FwConfig& cfg);

/// Per-phase predicted *resource-seconds*: total busy time each phase
/// consumes summed over every rank's CPU and FPGA (not the critical path,
/// which overlaps roles). These are directly comparable to the simulated
/// busy-by-label sums of a traced functional run and to the wall-clock
/// phase counters ("lu.wall.<phase>_ns") of the telemetry layer — the three
/// columns of the drift report.
///
/// LU keys: "opLU", "opL", "opU", "opMM.cpu", "opMM.fpga", "opMS".
std::map<std::string, double> predict_lu_phase_seconds(const SystemParams& sys,
                                                       const LuConfig& cfg);

/// FW keys: "op1", "op21", "op22", "op3". Block tasks are whole-task
/// scheduled l1:l2 across sides regardless of label, so op21/op22/op3 are
/// charged the split-averaged task cost (l1*t_p + l2*t_f) / (l1 + l2).
std::map<std::string, double> predict_fw_phase_seconds(const SystemParams& sys,
                                                       const FwConfig& cfg);

}  // namespace rcs::core
