#pragma once
// Shared vocabulary of the hybrid designs: design variants, communication
// fan-out conventions, and run reports.

#include <cstdint>
#include <string>

#include "sim/engine.hpp"

namespace rcs::core {

/// The three design variants compared in Section 6.2.
enum class DesignMode {
  Hybrid,         // processors + FPGAs (the paper's contribution)
  ProcessorOnly,  // baseline: processors only
  FpgaOnly,       // baseline: FPGAs do all accelerated tasks
};

const char* to_string(DesignMode m);

/// How block-stripe distribution from the panel node is charged.
///   PaperSingle — one T_comm per stripe regardless of destination count
///                 (the convention Eq. 5 uses; models concurrent DMA on the
///                 non-blocking crossbar).
///   SerialAll   — the sending processor serializes one transfer per
///                 destination (what MiniMPI's CPU-driven sends do; §4.3's
///                 "computations cannot overlap with network communication"
///                 taken strictly).
enum class SendFanout { PaperSingle, SerialAll };

const char* to_string(SendFanout f);

/// Outcome of one simulated application run (either plane).
struct RunReport {
  std::string design;            // e.g. "LU/hybrid"
  sim::SimTime seconds = 0.0;    // end-to-end simulated latency
  double total_flops = 0.0;      // semantic flop count of the application
  double cpu_busy_seconds = 0.0;   // summed over nodes
  double fpga_busy_seconds = 0.0;  // summed over nodes
  double cpu_flops = 0.0;        // flops executed by processors
  double fpga_flops = 0.0;       // flops executed by FPGAs
  std::uint64_t bytes_on_network = 0;
  std::uint64_t coordination_events = 0;

  /// Sustained application GFLOPS (the paper's headline metric).
  double gflops() const {
    return seconds > 0.0 ? total_flops / seconds / 1e9 : 0.0;
  }
};

}  // namespace rcs::core
