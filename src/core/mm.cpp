#include "core/mm.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fpga/matmul_array.hpp"
#include "linalg/blas.hpp"
#include "net/matrix_channel.hpp"
#include "node/compute_node.hpp"

namespace rcs::core {

namespace {

using linalg::Matrix;

enum class Chan : int { ABlock = 1, BBlock = 2, CShare = 3 };

int make_tag(Chan chan, long long task, long long step) {
  RCS_CHECK_MSG(task < (1 << 14) && step < (1 << 13), "mm tag space exceeded");
  return static_cast<int>((task << 16) | (step << 3) |
                          static_cast<long long>(chan));
}

std::pair<long long, long long> worker_columns(long long b, int workers,
                                               int w) {
  const long long base = b / workers;
  const long long rem = b % workers;
  const long long c0 = w * base + std::min<long long>(w, rem);
  return {c0, c0 + base + (w < rem ? 1 : 0)};
}

long long resolve_bf(const SystemParams& sys, const MmConfig& cfg,
                     long long b) {
  if (cfg.b_f >= 0) return cfg.b_f;
  switch (cfg.mode) {
    case DesignMode::Hybrid: return solve_mm_partition(sys, b).b_f;
    case DesignMode::ProcessorOnly: return 0;
    case DesignMode::FpgaOnly: return b;
  }
  return 0;
}

/// One worker's latency for a single b x b block multiply-accumulate step
/// (its column share), given the mode.
double worker_step_seconds(const SystemParams& sys, const MmConfig& cfg,
                           const MmPartition& part, long long b) {
  const long long k = sys.mm_fpga.pe_count;
  const double stripes = static_cast<double>(b) / static_cast<double>(k);
  const double workers = sys.p >= 2 ? static_cast<double>(sys.p - 1) : 1.0;
  const double b3 = static_cast<double>(b) * static_cast<double>(b) *
                    static_cast<double>(b);
  switch (cfg.mode) {
    case DesignMode::Hybrid:
      return stripes * part.stripe_period_seconds();
    case DesignMode::ProcessorOnly:
      return 2.0 * b3 /
             (workers * sys.gpp.sustained(node::CpuKernel::Dgemm));
    case DesignMode::FpgaOnly:
      return stripes * std::max(part.t_f_stripe, part.t_mem_stripe);
  }
  return 0.0;
}

}  // namespace

MmAnalyticReport mm_analytic(const SystemParams& sys, const MmConfig& cfg) {
  const long long b = cfg.b < 0 ? cfg.n : cfg.b;
  RCS_CHECK_MSG(cfg.n > 0 && b > 0 && cfg.n % b == 0, "mm requires b | n");
  const long long nb = cfg.n / b;

  MmAnalyticReport rep;
  SystemParams solver_sys = sys;
  rep.partition = mm_partition_at(solver_sys, b, resolve_bf(sys, cfg, b));
  const MmPartition& part = rep.partition;

  const double b2 = static_cast<double>(b) * static_cast<double>(b);
  const double step_w = worker_step_seconds(sys, cfg, part, b);
  const long long steps = nb * nb * nb;  // block multiply-accumulate tasks
  const double n3 = static_cast<double>(cfg.n) * static_cast<double>(cfg.n) *
                    static_cast<double>(cfg.n);

  rep.run.design = std::string("MM/") + to_string(cfg.mode);
  if (sys.p == 1) {
    // Single-node hybrid multiply [22]: the node streams through all steps.
    rep.run.seconds = static_cast<double>(steps) * step_w;
  } else {
    // Root-fed pipeline: per step the root spends S distributing stripes,
    // the workers spend step_w computing; per output block one share
    // returns per worker and the root stores it.
    const long long k = sys.mm_fpga.pe_count;
    const double stripes = static_cast<double>(b) / static_cast<double>(k);
    const double dest = cfg.fanout == SendFanout::SerialAll
                            ? static_cast<double>(sys.p - 1)
                            : 1.0;
    const double s = stripes * part.t_comm_stripe * dest;
    const double ret = b2 * kWordBytes / sys.network.bytes_per_s;  // shares
    const double period = std::max(s, step_w);
    rep.run.seconds = s + static_cast<double>(steps) * period +
                      static_cast<double>(nb * nb) * ret + step_w;
    rep.run.bytes_on_network = static_cast<std::uint64_t>(
        static_cast<double>(steps) * 2.0 * b2 * kWordBytes *
            static_cast<double>(sys.p - 1) +
        static_cast<double>(nb * nb) * b2 * kWordBytes);
  }
  const double fpga_share =
      cfg.mode == DesignMode::ProcessorOnly
          ? 0.0
          : (cfg.mode == DesignMode::FpgaOnly
                 ? 1.0
                 : static_cast<double>(part.b_f) / static_cast<double>(b));
  rep.run.total_flops = 2.0 * n3;
  rep.run.fpga_flops = rep.run.total_flops * fpga_share;
  rep.run.cpu_flops = rep.run.total_flops - rep.run.fpga_flops;
  rep.run.fpga_busy_seconds =
      cfg.mode == DesignMode::ProcessorOnly
          ? 0.0
          : rep.run.fpga_flops / sys.mm_fpga.peak_flops();
  rep.run.cpu_busy_seconds = rep.run.seconds;  // root/worker CPUs stay hot
  return rep;
}

MmFunctionalResult mm_functional(const SystemParams& sys, const MmConfig& cfg,
                                 const Matrix& a, const Matrix& bmat,
                                 bool use_soft_fp,
                                 sim::TraceRecorder* trace) {
  const long long n = cfg.n;
  const long long b = cfg.b < 0 ? n : cfg.b;
  RCS_CHECK_MSG(n > 0 && b > 0 && n % b == 0, "mm requires b | n");
  RCS_CHECK_MSG(a.rows() == static_cast<std::size_t>(n) &&
                    a.cols() == static_cast<std::size_t>(n) &&
                    bmat.rows() == static_cast<std::size_t>(n) &&
                    bmat.cols() == static_cast<std::size_t>(n),
                "mm operands must be n x n");
  const long long nb = n / b;
  const long long b_f = resolve_bf(sys, cfg, b);
  const long long b_p = b - b_f;
  const MmPartition part = mm_partition_at(sys, b, b_f);
  const fpga::MatMulArray array(sys.mm_fpga);
  const long long k = sys.mm_fpga.pe_count;

  MmFunctionalResult res;
  res.partition = part;
  res.run.design = std::string("MM/") + to_string(cfg.mode) + "/functional";

  // ---- Single node: the [22] hybrid multiply, no network. ----
  if (sys.p == 1) {
    net::VirtualClock clock;
    sim::TraceRecorder local_trace(trace != nullptr && trace->enabled());
    node::ComputeNode node(sys.node_params_mm(), clock, &local_trace,
                           "node0");
    Matrix c(n, n);
    for (long long u = 0; u < nb; ++u) {
      for (long long v = 0; v < nb; ++v) {
        auto cuv = c.block(u * b, v * b, b, b);
        for (long long w = 0; w < nb; ++w) {
          auto auw = a.block(u * b, w * b, b, b);
          auto bwv = bmat.block(w * b, v * b, b, b);
          for (long long s = 0; s < b; s += k) {
            const long long ks = std::min(k, b - s);
            if (b_f > 0) {
              node.dram_to_fpga(
                  static_cast<std::uint64_t>((b_f * ks + ks * b) * 8));
              node.fpga_submit(static_cast<double>(array.cycles(b_f, ks, b)),
                               "mm");
            }
            if (b_p > 0) {
              node.cpu_compute(node::CpuKernel::Dgemm,
                               2.0 * static_cast<double>(b_p * ks * b), "mm");
            }
          }
          if (b_f > 0) {
            auto c_f = cuv.block(0, 0, b_f, b);
            if (use_soft_fp) {
              array.multiply_accumulate_soft(auw.block(0, 0, b_f, b), bwv,
                                             c_f);
            } else {
              array.multiply_accumulate(auw.block(0, 0, b_f, b), bwv, c_f);
            }
            node.note_fpga_flops(2.0 * static_cast<double>(b_f * b * b));
          }
          if (b_p > 0) {
            linalg::gemm(auw.block(b_f, 0, b_p, b), bwv,
                         cuv.block(b_f, 0, b_p, b));
          }
          if (b_f > 0) node.fpga_wait();
        }
      }
    }
    if (trace != nullptr) trace->merge_from(std::move(local_trace));
    res.c = std::move(c);
    res.run.seconds = clock.now();
    res.run.cpu_busy_seconds = node.cpu_busy_total();
    res.run.fpga_busy_seconds = node.fpga_busy_total();
    res.run.cpu_flops = node.cpu_flops_total();
    res.run.fpga_flops = node.fpga_flops_total();
    res.run.coordination_events = node.coordination_events();
    res.run.total_flops = res.run.cpu_flops + res.run.fpga_flops;
    return res;
  }

  // ---- Distributed: rank 0 hosts A/B/C, workers hold running column
  // shares of each block product in on-board SRAM across the nb inner
  // steps, exactly like the streaming accumulation of [21]. ----
  const int p = sys.p;
  const int workers = p - 1;
  net::World world(p, sys.network);
  Matrix c(n, n);
  struct Stats {
    sim::SimTime finish = 0.0;
    double cpu_busy = 0.0, fpga_busy = 0.0, cpu_flops = 0.0, fpga_flops = 0.0;
    std::uint64_t bytes = 0, coord = 0;
  };
  std::vector<Stats> stats(static_cast<std::size_t>(p));
  std::vector<sim::TraceRecorder> rank_traces(
      static_cast<std::size_t>(p),
      sim::TraceRecorder(trace != nullptr && trace->enabled()));

  world.run([&](net::Comm& comm) {
    const int me = comm.rank();
    node::ComputeNode node(sys.node_params_mm(), comm.clock(),
                           &rank_traces[static_cast<std::size_t>(me)],
                           "node" + std::to_string(me));
    if (me == 0) {
      long long task = 0;
      for (long long u = 0; u < nb; ++u) {
        for (long long v = 0; v < nb; ++v, ++task) {
          for (long long w = 0; w < nb; ++w) {
            for (int r = 1; r < p; ++r) {
              net::send_matrix(comm, r, make_tag(Chan::ABlock, task, w),
                               a.block(u * b, w * b, b, b));
              net::send_matrix(comm, r, make_tag(Chan::BBlock, task, w),
                               bmat.block(w * b, v * b, b, b));
            }
          }
          for (int r = 1; r < p; ++r) {
            const auto [c0, c1] = worker_columns(b, workers, r - 1);
            Matrix share =
                net::recv_matrix(comm, r, make_tag(Chan::CShare, task, 0));
            linalg::copy(share.view(),
                         c.block(u * b, v * b + c0, b, c1 - c0));
            node.cpu_compute(node::CpuKernel::MemBound,
                             static_cast<double>(b * (c1 - c0)), "store C");
          }
        }
      }
    } else {
      const auto [c0, c1] = worker_columns(b, workers, me - 1);
      const long long cw = c1 - c0;
      long long task = 0;
      for (long long u = 0; u < nb; ++u) {
        for (long long v = 0; v < nb; ++v, ++task) {
          Matrix e(b, cw);  // running share, lives in on-board SRAM
          for (long long w = 0; w < nb; ++w) {
            Matrix ablk =
                net::recv_matrix(comm, 0, make_tag(Chan::ABlock, task, w));
            Matrix bblk =
                net::recv_matrix(comm, 0, make_tag(Chan::BBlock, task, w));
            auto bshare = bblk.block(0, c0, b, cw);
            for (long long s = 0; s < b; s += k) {
              const long long ks = std::min(k, b - s);
              if (b_f > 0) {
                node.dram_to_fpga(
                    static_cast<std::uint64_t>((b_f * ks + ks * cw) * 8));
                node.fpga_submit(
                    static_cast<double>(array.cycles(b_f, ks, cw)), "mm");
              }
              if (b_p > 0) {
                node.cpu_compute(node::CpuKernel::Dgemm,
                                 2.0 * static_cast<double>(b_p * ks * cw),
                                 "mm");
              }
            }
            if (b_f > 0) {
              auto e_f = e.block(0, 0, b_f, cw);
              if (use_soft_fp) {
                array.multiply_accumulate_soft(ablk.block(0, 0, b_f, b),
                                               bshare, e_f);
              } else {
                array.multiply_accumulate(ablk.block(0, 0, b_f, b), bshare,
                                          e_f);
              }
              node.note_fpga_flops(2.0 * static_cast<double>(b_f * b * cw));
            }
            if (b_p > 0) {
              linalg::gemm(ablk.block(b_f, 0, b_p, b), bshare,
                           e.block(b_f, 0, b_p, cw));
            }
          }
          if (b_f > 0) {
            node.fpga_wait();
            node.read_fpga_results("mm block share");
          }
          net::send_matrix(comm, 0, make_tag(Chan::CShare, task, 0),
                           e.view());
        }
      }
    }
    Stats& st = stats[static_cast<std::size_t>(me)];
    st.finish = comm.clock().now();
    st.cpu_busy = node.cpu_busy_total();
    st.fpga_busy = node.fpga_busy_total();
    st.cpu_flops = node.cpu_flops_total();
    st.fpga_flops = node.fpga_flops_total();
    st.bytes = comm.bytes_sent();
    st.coord = node.coordination_events();
  });

  if (trace != nullptr) {
    for (auto& rt : rank_traces) trace->merge_from(std::move(rt));
  }
  res.c = std::move(c);
  for (const Stats& st : stats) {
    res.run.seconds = std::max(res.run.seconds, st.finish);
    res.run.cpu_busy_seconds += st.cpu_busy;
    res.run.fpga_busy_seconds += st.fpga_busy;
    res.run.cpu_flops += st.cpu_flops;
    res.run.fpga_flops += st.fpga_flops;
    res.run.bytes_on_network += st.bytes;
    res.run.coordination_events += st.coord;
  }
  res.run.total_flops = res.run.cpu_flops + res.run.fpga_flops;
  return res;
}

}  // namespace rcs::core
