#include "core/predict.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcs::core {

Prediction predict_lu(const SystemParams& sys, const LuConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "LU prediction requires b | n");
  long long b_f = cfg.b_f;
  if (b_f < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid: b_f = solve_mm_partition(sys, cfg.b).b_f; break;
      case DesignMode::ProcessorOnly: b_f = 0; break;
      case DesignMode::FpgaOnly: b_f = cfg.b; break;
    }
  }
  const MmPartition part = mm_partition_at(sys, cfg.b, b_f);
  const PanelTimes pt = panel_times(sys, cfg.b);
  const long long nb = cfg.n / cfg.b;
  const long long k = sys.mm_fpga.pe_count;
  const double stripes = static_cast<double>(cfg.b) / static_cast<double>(k);
  const double b2 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b);
  const double b3 = b2 * static_cast<double>(cfg.b);
  const double p1 = static_cast<double>(sys.p - 1);
  const double r_gemm = sys.gpp.sustained(node::CpuKernel::Dgemm);

  Prediction pr;
  for (long long t = 0; t < nb; ++t) {
    const double m = static_cast<double>(nb - 1 - t);
    const double panel_cpu = pt.t_lu + m * (pt.t_opl + pt.t_opu);
    double worker_cpu = 0.0;
    double fpga = 0.0;
    switch (cfg.mode) {
      case DesignMode::Hybrid:
        worker_cpu = m * m * stripes * part.t_p_stripe;
        fpga = m * m * stripes * part.t_f_stripe;
        break;
      case DesignMode::ProcessorOnly:
        worker_cpu = m * m * 2.0 * b3 / (p1 * r_gemm);
        break;
      case DesignMode::FpgaOnly:
        fpga = m * m * stripes * part.t_f_stripe;
        break;
    }
    // The panel node and the workers run concurrently; per iteration the
    // processor side's contribution is the slower of the two roles.
    pr.t_tp += std::max(panel_cpu, worker_cpu);
    pr.t_tf += fpga;
    pr.total_flops += (2.0 / 3.0) * b3 + m * 2.0 * b3 +
                      m * m * (2.0 * b3 + b2);
  }
  return pr;
}

std::map<std::string, double> predict_lu_phase_seconds(const SystemParams& sys,
                                                       const LuConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "LU prediction requires b | n");
  long long b_f = cfg.b_f;
  if (b_f < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid: b_f = solve_mm_partition(sys, cfg.b).b_f; break;
      case DesignMode::ProcessorOnly: b_f = 0; break;
      case DesignMode::FpgaOnly: b_f = cfg.b; break;
    }
  }
  const MmPartition part = mm_partition_at(sys, cfg.b, b_f);
  const PanelTimes pt = panel_times(sys, cfg.b);
  const long long nb = cfg.n / cfg.b;
  const double stripes = static_cast<double>(cfg.b) /
                         static_cast<double>(sys.mm_fpga.pe_count);
  const double p1 = static_cast<double>(sys.p - 1);
  const double b2 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b);

  // s1 = sum of m, s2 = sum of m^2 over iterations (m = nb - 1 - t): the
  // opL/opU and opMM task counts of the whole factorization.
  double s1 = 0.0, s2 = 0.0;
  for (long long t = 0; t < nb; ++t) {
    const double m = static_cast<double>(nb - 1 - t);
    s1 += m;
    s2 += m * m;
  }

  std::map<std::string, double> out;
  out["opLU"] = static_cast<double>(nb) * pt.t_lu;
  out["opL"] = s1 * pt.t_opl;
  out["opU"] = s1 * pt.t_opu;
  // One opMM is (b/k) stripes on each of the p-1 workers; t_p_stripe /
  // t_f_stripe are per-worker per-stripe times, so resource-seconds multiply
  // by p-1. At b_f = 0 (processor-only) the stripe formula collapses to the
  // 2 b^3 / R_gemm flop count.
  out["opMM.cpu"] = s2 * p1 * stripes * part.t_p_stripe;
  out["opMM.fpga"] = s2 * p1 * stripes * part.t_f_stripe;
  // opMS streams b^2 elements per task at the memory-bound rate.
  out["opMS"] = s2 * b2 / sys.gpp.sustained(node::CpuKernel::MemBound);
  return out;
}

Prediction predict_fw(const SystemParams& sys, const FwConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % (cfg.b * sys.p) == 0,
                "FW prediction requires b*p | n");
  long long l1 = cfg.l1;
  const FwPartition probe = fw_partition_at(sys, cfg.n, cfg.b, 0);
  if (l1 < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid:
        l1 = solve_fw_partition(sys, cfg.n, cfg.b).l1;
        break;
      case DesignMode::ProcessorOnly: l1 = probe.ops_per_phase; break;
      case DesignMode::FpgaOnly: l1 = 0; break;
    }
  }
  const FwPartition part = fw_partition_at(sys, cfg.n, cfg.b, l1);
  const long long nb = cfg.n / cfg.b;
  const double b3 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b) *
                    static_cast<double>(cfg.b);

  Prediction pr;
  // Per iteration: nb waves of l1 CPU tasks + l2 FPGA tasks per node, plus
  // op1 on the owner's processor (negligible but on the CPU path).
  const double waves = static_cast<double>(nb);
  pr.t_tp = waves * waves *
                (static_cast<double>(part.l1) * part.t_p) +
            waves * (cfg.mode == DesignMode::FpgaOnly ? part.t_f : part.t_p);
  pr.t_tf = waves * waves * (static_cast<double>(part.l2) * part.t_f);
  pr.total_flops = waves * waves * waves * 2.0 * b3;  // = 2 n^3
  return pr;
}

std::map<std::string, double> predict_fw_phase_seconds(const SystemParams& sys,
                                                       const FwConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % (cfg.b * sys.p) == 0,
                "FW prediction requires b*p | n");
  long long l1 = cfg.l1;
  const FwPartition probe = fw_partition_at(sys, cfg.n, cfg.b, 0);
  if (l1 < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid:
        l1 = solve_fw_partition(sys, cfg.n, cfg.b).l1;
        break;
      case DesignMode::ProcessorOnly: l1 = probe.ops_per_phase; break;
      case DesignMode::FpgaOnly: l1 = 0; break;
    }
  }
  const FwPartition part = fw_partition_at(sys, cfg.n, cfg.b, l1);
  const double nb = static_cast<double>(cfg.n / cfg.b);
  // Block tasks are scheduled whole: each wave runs l1 on the CPU and l2 on
  // the FPGA irrespective of the op21/op22/op3 label, so every labelled
  // task's expected cost is the split average.
  const double avg_task =
      (static_cast<double>(part.l1) * part.t_p +
       static_cast<double>(part.l2) * part.t_f) /
      static_cast<double>(part.ops_per_phase);

  std::map<std::string, double> out;
  out["op1"] = nb * (cfg.mode == DesignMode::FpgaOnly ? part.t_f : part.t_p);
  out["op21"] = nb * (nb - 1.0) * avg_task;
  out["op22"] = nb * (nb - 1.0) * avg_task;
  out["op3"] = nb * (nb - 1.0) * (nb - 1.0) * avg_task;
  return out;
}

}  // namespace rcs::core
