#pragma once
// Hybrid Cholesky factorization — the design model of Section 4 applied to
// the third dense factorization of the hybrid-linear-algebra family ([22]):
// A = L L^T for symmetric positive definite A.
//
// Task structure per block iteration t (right-looking, lower triangle):
//   opPOTRF — Cholesky of the diagonal block (processor, panel node)
//   opL     — L_ut = A_ut L_tt^-T for u > t (processor, panel node)
//   opMM    — E_uv = L_ut L_vt^T for u >= v > t (hybrid split b_f : b_p
//             across the p-1 worker nodes, exactly the LU opMM machinery
//             with the second operand transposed)
//   opMS    — A_uv -= E_uv at the block's owner
// Only the lower triangle is touched: m(m+1)/2 trailing tasks per
// iteration instead of LU's m^2, so the serial panel chain weighs more and
// the hybrid's advantage is correspondingly smaller — a useful contrast
// the ext_cholesky bench quantifies.

#include "core/design.hpp"
#include "core/partition.hpp"
#include "core/system.hpp"
#include "linalg/matrix.hpp"
#include "sim/trace.hpp"

namespace rcs::core {

/// Configuration of one Cholesky run.
struct CholConfig {
  long long n = 0;  // matrix dimension (b must divide n)
  long long b = 0;  // block size
  DesignMode mode = DesignMode::Hybrid;
  long long b_f = -1;  // -1 = resolve per mode (Eq. 4 for hybrid)
  int l = -1;          // opMM tasks served per panel operation (-1 = Eq. 5)
  SendFanout fanout = SendFanout::SerialAll;
  int max_iterations = -1;  // -1 = all (analytic plane only)
};

/// Analytic run outcome.
struct CholAnalyticReport {
  RunReport run;
  MmPartition partition;
  LuInterleave interleave;
  std::vector<double> iteration_seconds;
};

/// Paper-scale schedule simulation of the configured design.
CholAnalyticReport cholesky_analytic(const SystemParams& sys,
                                     const CholConfig& cfg);

/// Functional run outcome.
struct CholFunctionalResult {
  /// Gathered at rank 0: lower triangle (incl. diagonal) holds L; the
  /// strict upper triangle holds the untouched input.
  linalg::Matrix factored;
  RunReport run;
  MmPartition partition;
  int l = 0;
};

/// Factor real data over MiniMPI; the result is bit-identical to
/// linalg::potrf_blocked on the same matrix.
CholFunctionalResult cholesky_functional(const SystemParams& sys,
                                         const CholConfig& cfg,
                                         const linalg::Matrix& a,
                                         bool use_soft_fp = false,
                                         sim::TraceRecorder* trace = nullptr);

}  // namespace rcs::core
