#pragma once
// Analytic (paper-scale) schedule simulator for the distributed blocked
// Floyd–Warshall design of Section 5.2.
//
// Each of the n/b iterations runs as n/b phases. In phase 0 the iteration
// owner t' computes op1 on D_tt and broadcasts it; every node then performs
// its op21 wave. In each subsequent phase, t' computes one op22 (a column-t
// block) and broadcasts it while every node performs n/(bp) op3 tasks split
// l1 (CPU) : l2 (FPGA) per Eq. 6. The simulator tracks the owner and a
// representative non-owner node per phase, including the broadcast cost and
// the CPU/FPGA overlap within a node.

#include <vector>

#include "core/design.hpp"
#include "core/partition.hpp"
#include "core/system.hpp"

namespace rcs::sim {
class FaultPlan;
}

namespace rcs::core {

/// Configuration of one Floyd–Warshall run.
struct FwConfig {
  long long n = 0;  // vertices (b*p must divide n)
  long long b = 0;  // block size
  DesignMode mode = DesignMode::Hybrid;
  /// Block tasks per phase on the CPU. -1 = choose per mode (Eq. 6 for
  /// hybrid, all for processor-only, 0 for FPGA-only).
  long long l1 = -1;
  /// Simulate only the first `max_iterations` block iterations (-1 = all);
  /// Fig. 7 uses 1.
  int max_iterations = -1;
  /// Broadcast the owner's op1/op22 blocks along a binomial tree
  /// (ceil(log2 p) transfer times) instead of root-serialized (p-1) —
  /// an extension over the paper's scheme, matching net::Comm::bcast_tree.
  bool tree_bcast = false;
  /// Lookahead comm/compute overlap (functional plane): the owner fans out
  /// D_tt and the op22 pivot-column blocks over the NIC (isend) instead of
  /// serializing them on its CPU, non-owners prefetch the next wave's
  /// pivot block (and the next iteration's D_tt) through irecv while the
  /// current op3 wave computes, and the per-iteration barrier is dropped.
  /// Distances are byte-identical to the blocking schedule; only the
  /// schedule (and therefore the clocks) moves.
  bool lookahead = false;
  /// Fault injection: schedule of slowdowns/link faults/crashes/bit-flips
  /// applied during the functional run (must outlive it). Bit-flips target
  /// the FPGA-assigned wave tasks, counted per rank in streaming order.
  /// nullptr = the fault-free path. The analytic plane ignores it.
  const sim::FaultPlan* faults = nullptr;
  /// Fault tolerance: dual-modular redundancy on FPGA-assigned wave tasks —
  /// min-plus results carry no exploitable checksum (the tropical semiring
  /// has no subtraction), so each FPGA task is re-solved from its snapshot
  /// on the CPU, compared bitwise, and repaired from the check copy on
  /// mismatch. A straggling owner/peer only slows its wave — the wave
  /// structure re-runs the lost work by construction, so distances stay
  /// bit-identical under any slowdown.
  bool fault_tolerance = false;
  /// Rank scheduling for the functional plane (net::World::set_max_workers):
  /// 0 = auto, >0 = fiber scheduler with that many worker loops,
  /// World::kThreadPerRank = force one OS thread per rank. Outputs and
  /// simulated clocks are identical in every mode.
  int max_workers = 0;
};

/// Analytic run outcome.
struct FwAnalyticReport {
  RunReport run;
  FwPartition partition;  // the (l1, l2) split in effect
  std::vector<double> iteration_seconds;
  double owner_busy_seconds = 0.0;   // iteration-owner CPU busy time
  double worker_busy_seconds = 0.0;  // one non-owner node's busy time
};

/// Simulate the configured Floyd–Warshall design on `sys`.
FwAnalyticReport fw_analytic(const SystemParams& sys, const FwConfig& cfg);

}  // namespace rcs::core
