#include "core/drift.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <utility>

#include "core/analysis.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/predict.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/trace.hpp"

namespace rcs::core {

namespace {

/// Current values of the "<cat>.wall.<phase>_ns" counters (creating any
/// that have never been touched, at value 0).
std::map<std::string, std::uint64_t> wall_counters(
    const std::string& cat, const std::vector<std::string>& phases) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& ph : phases) {
    out[ph] =
        obs::Registry::global().counter(cat + ".wall." + ph + "_ns").value();
  }
  return out;
}

PhaseDrift make_phase(const std::string& name, double predicted,
                      const std::map<std::string, sim::SimTime>& sim_busy,
                      std::uint64_t before_ns, std::uint64_t after_ns) {
  PhaseDrift d;
  d.phase = name;
  d.predicted_s = predicted;
  const auto it = sim_busy.find(name);
  d.simulated_s = it == sim_busy.end() ? 0.0 : it->second;
  d.measured_s = static_cast<double>(after_ns - before_ns) * 1e-9;
  return d;
}

/// Copy the functional run's per-phase OverlapStats onto the matching
/// PhaseDrift rows (phases that receive nothing keep their zeros).
void attach_overlap(std::vector<PhaseDrift>& phases,
                    const std::map<std::string, net::OverlapStats>& overlap) {
  for (PhaseDrift& ph : phases) {
    const auto it = overlap.find(ph.phase);
    if (it == overlap.end()) continue;
    ph.overlap_hidden_s = it->second.hidden_s;
    ph.overlap_total_s = it->second.total_s;
  }
}

}  // namespace

double PhaseDrift::drift_measured() const {
  return predicted_s > 0.0 ? std::abs(measured_s - predicted_s) / predicted_s
                           : 0.0;
}

double PhaseDrift::drift_simulated() const {
  return predicted_s > 0.0 ? std::abs(simulated_s - predicted_s) / predicted_s
                           : 0.0;
}

double PhaseDrift::overlap_efficiency() const {
  return overlap_total_s > 0.0 ? overlap_hidden_s / overlap_total_s : 0.0;
}

DriftReport lu_drift_report(const SystemParams& sys, const LuConfig& cfg,
                            const linalg::Matrix& a) {
  const std::vector<std::string> names{"opLU", "opL", "opU", "opMM", "opMS"};
  const bool metrics_were_on = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  const auto before = wall_counters("lu", names);

  sim::TraceRecorder rec(true);
  const std::int64_t w0 = obs::trace_now_ns();
  const LuFunctionalResult res = lu_functional(sys, cfg, a, false, &rec);
  const double wall =
      static_cast<double>(obs::trace_now_ns() - w0) * 1e-9;
  const auto after = wall_counters("lu", names);
  obs::set_metrics_enabled(metrics_were_on);

  std::map<std::string, double> pred = predict_lu_phase_seconds(sys, cfg);
  // The functional plane's "opMM" phase covers both sides of the split.
  pred["opMM"] = pred["opMM.cpu"] + pred["opMM.fpga"];
  const auto sim_busy = rec.busy_by_label();

  DriftReport rep;
  rep.design = res.run.design;
  rep.predicted_latency_s = predict_lu(sys, cfg).latency_seconds();
  rep.simulated_makespan_s = res.run.seconds;
  rep.measured_wall_s = wall;
  for (const auto& name : names) {
    rep.phases.push_back(make_phase(name, pred[name], sim_busy,
                                    before.at(name), after.at(name)));
  }
  attach_overlap(rep.phases, res.overlap);
  if (res.run.seconds > 0.0) rep.utilization = rec.utilization(res.run.seconds);
  rep.faults = res.faults;
  rep.analysis = analyze_run(rec, sys.p, res.run.seconds);
  return rep;
}

DriftReport fw_drift_report(const SystemParams& sys, const FwConfig& cfg,
                            const linalg::Matrix& d0) {
  const std::vector<std::string> names{"op1", "op21", "op22", "op3"};
  const bool metrics_were_on = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  const auto before = wall_counters("fw", names);

  sim::TraceRecorder rec(true);
  const std::int64_t w0 = obs::trace_now_ns();
  const FwFunctionalResult res = fw_functional(sys, cfg, d0, false, &rec);
  const double wall =
      static_cast<double>(obs::trace_now_ns() - w0) * 1e-9;
  const auto after = wall_counters("fw", names);
  obs::set_metrics_enabled(metrics_were_on);

  const std::map<std::string, double> pred = predict_fw_phase_seconds(sys, cfg);
  const auto sim_busy = rec.busy_by_label();

  DriftReport rep;
  rep.design = res.run.design;
  rep.predicted_latency_s = predict_fw(sys, cfg).latency_seconds();
  rep.simulated_makespan_s = res.run.seconds;
  rep.measured_wall_s = wall;
  for (const auto& name : names) {
    rep.phases.push_back(make_phase(name, pred.at(name), sim_busy,
                                    before.at(name), after.at(name)));
  }
  attach_overlap(rep.phases, res.overlap);
  if (res.run.seconds > 0.0) rep.utilization = rec.utilization(res.run.seconds);
  rep.faults = res.faults;
  rep.analysis = analyze_run(rec, sys.p, res.run.seconds);
  return rep;
}

void DriftReport::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const auto flags = os.flags();
  const auto prec = os.precision();
  os << std::setprecision(9);
  os << "{\n";
  os << pad << "  \"design\": \"" << obs::json_escape(design) << "\",\n";
  os << pad << "  \"predicted_latency_s\": " << predicted_latency_s << ",\n";
  os << pad << "  \"simulated_makespan_s\": " << simulated_makespan_s << ",\n";
  os << pad << "  \"measured_wall_s\": " << measured_wall_s << ",\n";
  os << pad << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseDrift& ph = phases[i];
    os << pad << "    {\"phase\": \"" << obs::json_escape(ph.phase)
       << "\", \"predicted_s\": " << ph.predicted_s
       << ", \"simulated_s\": " << ph.simulated_s
       << ", \"measured_s\": " << ph.measured_s
       << ", \"drift_simulated\": " << ph.drift_simulated()
       << ", \"drift_measured\": " << ph.drift_measured()
       << ", \"overlap_hidden_s\": " << ph.overlap_hidden_s
       << ", \"overlap_total_s\": " << ph.overlap_total_s
       << ", \"overlap_efficiency\": " << ph.overlap_efficiency() << '}'
       << (i + 1 < phases.size() ? "," : "") << '\n';
  }
  os << pad << "  ],\n";
  os << pad << "  \"utilization\": {";
  bool first = true;
  for (const auto& [res, u] : utilization) {
    os << (first ? "" : ", ") << '"' << obs::json_escape(res) << "\": " << u;
    first = false;
  }
  os << "},\n";
  os << pad << "  \"faults\": {"
     << "\"bitflips_injected\": " << faults.bitflips_injected
     << ", \"slowdown_hits\": " << faults.slowdown_hits
     << ", \"slowdown_added_s\": " << faults.slowdown_added_s
     << ", \"link_hits\": " << faults.link_hits
     << ", \"link_added_s\": " << faults.link_added_s
     << ", \"crashes\": " << faults.crashes
     << ", \"checks\": " << faults.checks
     << ", \"detected\": " << faults.detected
     << ", \"corrected_elements\": " << faults.corrected_elements
     << ", \"reissued_blocks\": " << faults.reissued_blocks
     << ", \"straggler_timeouts\": " << faults.straggler_timeouts
     << ", \"straggler_reissues\": " << faults.straggler_reissues
     << ", \"recovery_cpu_s\": " << faults.recovery_cpu_s
     << ", \"mttr_p50_s\": " << faults.mttr_percentile(0.5)
     << ", \"mttr_p99_s\": " << faults.mttr_percentile(0.99) << "},\n";
  os << pad << "  \"analysis\": ";
  analysis.write_json(os, indent + 2);
  os << '\n' << pad << "}";
  os.flags(flags);
  os.precision(prec);
}

void DriftReport::print(std::ostream& os) const {
  os << design << ": predicted latency " << predicted_latency_s
     << " s, simulated makespan " << simulated_makespan_s
     << " s, measured wall " << measured_wall_s << " s\n";
  os << "  " << std::left << std::setw(8) << "phase" << std::right
     << std::setw(14) << "predicted_s" << std::setw(14) << "simulated_s"
     << std::setw(14) << "measured_s" << std::setw(12) << "sim_drift"
     << std::setw(12) << "meas_drift" << std::setw(10) << "overlap" << '\n';
  for (const PhaseDrift& ph : phases) {
    os << "  " << std::left << std::setw(8) << ph.phase << std::right
       << std::setw(14) << std::setprecision(4) << ph.predicted_s
       << std::setw(14) << ph.simulated_s << std::setw(14) << ph.measured_s
       << std::setw(11) << std::setprecision(2) << 100.0 * ph.drift_simulated()
       << '%' << std::setw(11) << 100.0 * ph.drift_measured() << '%';
    if (ph.overlap_total_s > 0.0) {
      os << std::setw(9) << 100.0 * ph.overlap_efficiency() << '%';
    } else {
      os << std::setw(10) << "-";
    }
    os << '\n';
  }
  analysis.print(os);
}

}  // namespace rcs::core
