#pragma once
// Functional-plane implementation of the distributed blocked Floyd–Warshall
// design (Section 5.2): ranks own contiguous groups of block-columns, the
// iteration owner computes op1/op22 blocks and broadcasts them, and every
// node's per-phase task quota is split l1 (CPU) : l2 (FPGA). Real distance
// blocks move over MiniMPI; the result is bit-identical to the sequential
// graph::blocked_floyd_warshall (and therefore to the textbook algorithm).

#include <map>
#include <string>

#include "core/fw_analytic.hpp"
#include "linalg/matrix.hpp"

namespace rcs::core {

/// Outcome of a functional Floyd–Warshall run.
struct FwFunctionalResult {
  linalg::Matrix distances;  // all-pairs shortest paths, gathered at rank 0
  RunReport run;
  FwPartition partition;  // the (l1, l2) split in effect
  /// Per-phase transfer-overlap accounting summed over ranks ("op21" covers
  /// the D_tt broadcast receives, "op3" the per-wave pivot-block
  /// receives). Populated in both schedules; the lookahead pipeline pushes
  /// the hidden fraction (OverlapStats::efficiency) toward 1.
  std::map<std::string, net::OverlapStats> overlap;
  /// Fault injection/recovery accounting summed over ranks (all zeros when
  /// cfg.faults is null and fault tolerance is off).
  sim::FaultStats faults;
};

/// Run the configured design on a real distance matrix over MiniMPI.
/// Requires b * p | n. `use_soft_fp` routes FPGA-assigned block tasks
/// through the bit-accurate IEEE-754 cores. `cfg.max_iterations` is ignored
/// (the functional plane always runs to completion). When `trace` is
/// non-null and enabled, per-node busy intervals are recorded into it.
/// `message_log`, when non-null, receives every message sent during the
/// run (for net::analyze_contention).
FwFunctionalResult fw_functional(
    const SystemParams& sys, const FwConfig& cfg, const linalg::Matrix& d0,
    bool use_soft_fp = false, sim::TraceRecorder* trace = nullptr,
    std::vector<net::MessageEvent>* message_log = nullptr);

}  // namespace rcs::core
