#pragma once
// SystemParams — the paper's characterization of a reconfigurable computing
// system (§4.1): p nodes, each with one processor (O_p x F_p sustained per
// kernel), one FPGA (O_f, F_f per configured design, B_d to node DRAM), and
// a B_n-byte/s interconnect between any two nodes. b_w = 8 bytes throughout
// (double precision).

#include "fpga/device.hpp"
#include "fpga/resources.hpp"
#include "net/minimpi.hpp"
#include "node/compute_node.hpp"
#include "node/gpp.hpp"

namespace rcs::core {

/// Word width in bytes (double precision, §4.1).
constexpr double kWordBytes = 8.0;

/// Full description of a reconfigurable computing system.
struct SystemParams {
  std::string name;
  int p = 6;  // number of nodes
  node::GppModel gpp{1e9};
  fpga::DeviceConfig mm_fpga;  // FPGA as configured with the matmul array
  fpga::DeviceConfig fw_fpga;  // FPGA as configured with the FW kernel
  net::NetworkParams network;
  sim::SimTime coordination_latency_s = 0.0;
  /// See node::NodeParams::dram_contention_factor (0 = paper assumption).
  double dram_contention_factor = 0.0;

  /// Node configuration for the LU / matrix-multiply designs.
  node::NodeParams node_params_mm() const {
    return node::NodeParams{gpp, mm_fpga, coordination_latency_s,
                            dram_contention_factor};
  }
  /// Node configuration for the Floyd–Warshall design.
  node::NodeParams node_params_fw() const {
    return node::NodeParams{gpp, fw_fpga, coordination_latency_s,
                            dram_contention_factor};
  }

  /// The paper's testbed: one Cray XD1 chassis — 6 nodes, 2.2 GHz Opteron +
  /// XC2VP50 per node, 2 GB/s inter-node links (Section 3 / 6.1).
  static SystemParams cray_xd1();

  /// Cray XT3 with DRC Virtex-4 modules (Section 3) — used for
  /// capacity-planning prediction, not measured in the paper.
  static SystemParams cray_xt3_drc();

  /// SGI RASC RC100-style system (Section 3) — capacity planning only.
  static SystemParams sgi_rasc();

  /// A scaled XD1 with a different node count (what-if studies).
  SystemParams with_nodes(int nodes) const {
    SystemParams s = *this;
    s.p = nodes;
    return s;
  }

  /// Build a system around an arbitrary FPGA part: run the synthesis
  /// estimator for both kernels on `budget` and assemble the node/network
  /// description. `dram_path_bytes_per_s` is the board's processor-FPGA
  /// link (caps B_d); `sram_bytes` the on-board SRAM allocated per design.
  /// Throws rcs::Error when a kernel does not fit the part.
  static SystemParams from_synthesis(const std::string& name, int p,
                                     const fpga::ResourceBudget& budget,
                                     node::GppModel gpp,
                                     net::NetworkParams network,
                                     double dram_path_bytes_per_s = 2.8e9,
                                     std::uint64_t sram_bytes = 8ull << 20);
};

}  // namespace rcs::core
