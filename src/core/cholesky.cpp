#include "core/cholesky.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "fpga/matmul_array.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "net/matrix_channel.hpp"
#include "node/compute_node.hpp"

namespace rcs::core {

namespace {

using linalg::Matrix;

enum class Chan : int { CBlock = 1, DBlock = 2, EShare = 3, Gather = 4 };

int make_tag(Chan chan, long long t, long long j) {
  RCS_CHECK_MSG(t < (1 << 9) && j < (1 << 18), "tag space exceeded");
  return static_cast<int>((t << 21) | (j << 3) | static_cast<long long>(chan));
}

int owner_of(long long u, long long v, int p) {
  return static_cast<int>(std::min(u, v) % p);
}

/// Trailing tasks (u, v), u >= v, ordered by readiness: pair i of the panel
/// (the trsm for row t+i) unlocks the tasks with max-index i.
std::vector<std::pair<long long, long long>> opmm_order(long long t,
                                                        long long nb) {
  std::vector<std::pair<long long, long long>> order;
  const long long m = nb - 1 - t;
  order.reserve(static_cast<std::size_t>(m * (m + 1) / 2));
  for (long long i = 1; i <= m; ++i) {
    for (long long j = 1; j <= i; ++j) order.emplace_back(t + i, t + j);
  }
  return order;
}

std::pair<long long, long long> worker_columns(long long b, int workers,
                                               int w) {
  const long long base = b / workers;
  const long long rem = b % workers;
  const long long c0 = w * base + std::min<long long>(w, rem);
  return {c0, c0 + base + (w < rem ? 1 : 0)};
}

long long resolve_bf(const SystemParams& sys, const CholConfig& cfg) {
  if (cfg.b_f >= 0) return cfg.b_f;
  switch (cfg.mode) {
    case DesignMode::Hybrid: return solve_mm_partition(sys, cfg.b).b_f;
    case DesignMode::ProcessorOnly: return 0;
    case DesignMode::FpgaOnly: return cfg.b;
  }
  return 0;
}

double worker_opmm_seconds(const SystemParams& sys, const CholConfig& cfg,
                           const MmPartition& part) {
  const long long k = sys.mm_fpga.pe_count;
  const double stripes = static_cast<double>(cfg.b) / static_cast<double>(k);
  const double p1 = static_cast<double>(sys.p - 1);
  const double b3 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b) *
                    static_cast<double>(cfg.b);
  switch (cfg.mode) {
    case DesignMode::Hybrid:
      return stripes * part.stripe_period_seconds();
    case DesignMode::ProcessorOnly:
      return 2.0 * b3 / (p1 * sys.gpp.sustained(node::CpuKernel::Dgemm));
    case DesignMode::FpgaOnly:
      return stripes * std::max(part.t_f_stripe, part.t_mem_stripe);
  }
  return 0.0;
}

}  // namespace

CholAnalyticReport cholesky_analytic(const SystemParams& sys,
                                     const CholConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "cholesky requires b | n");
  RCS_CHECK_MSG(sys.p >= 2, "the distributed design needs p >= 2");

  CholAnalyticReport rep;
  rep.partition = mm_partition_at(sys, cfg.b, resolve_bf(sys, cfg));
  rep.interleave =
      solve_lu_interleave(sys, cfg.b, rep.partition, cfg.fanout);
  const int l = cfg.l >= 0 ? cfg.l : rep.interleave.l;
  rep.interleave.l = l;

  const long long nb = cfg.n / cfg.b;
  const long long iterations =
      cfg.max_iterations >= 0 ? std::min<long long>(cfg.max_iterations, nb)
                              : nb;
  const double b2 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b);
  const double b3 = b2 * static_cast<double>(cfg.b);
  const double t_potrf =
      sys.gpp.seconds_for(node::CpuKernel::Dpotrf, b3 / 3.0);
  const double t_trsm = sys.gpp.seconds_for(node::CpuKernel::Dtrsm, b3);
  const double w_opmm = worker_opmm_seconds(sys, cfg, rep.partition);
  const long long k = sys.mm_fpga.pe_count;
  const double dest = cfg.fanout == SendFanout::SerialAll
                          ? static_cast<double>(sys.p - 1)
                          : 1.0;
  const double s_opmm = static_cast<double>(cfg.b) / static_cast<double>(k) *
                        rep.partition.t_comm_stripe * dest;
  const double p1 = static_cast<double>(sys.p - 1);
  const double post =
      static_cast<double>(cfg.b) * (static_cast<double>(cfg.b) / p1) *
          kWordBytes / sys.network.bytes_per_s +
      (b2 / p1) / sys.gpp.sustained(node::CpuKernel::MemBound);
  const double fpga_share =
      cfg.mode == DesignMode::ProcessorOnly
          ? 0.0
          : (cfg.mode == DesignMode::FpgaOnly
                 ? 1.0
                 : static_cast<double>(rep.partition.b_f) /
                       static_cast<double>(cfg.b));

  rep.run.design = std::string("CHOL/") + to_string(cfg.mode);
  double now = 0.0;
  for (long long t = 0; t < iterations; ++t) {
    const long long m = nb - 1 - t;
    const double iter_start = now;
    double panel = now + t_potrf;
    double worker = now;
    rep.run.cpu_flops += b3 / 3.0;

    long long ready = 0, served = 0;
    const long long total = m * (m + 1) / 2;
    auto serve = [&](long long count) {
      for (long long s = 0; s < count && served < ready; ++s, ++served) {
        panel += s_opmm;
        const double start = std::max(worker, panel);
        worker = start + w_opmm + post;
      }
    };
    for (long long i = 1; i <= m; ++i) {
      panel += t_trsm;  // opL for row t+i
      ready += i;       // tasks (t+i, t+1..t+i)
      rep.run.cpu_flops += b3;
      if (l > 0) serve(l);
    }
    serve(total - served);

    rep.run.fpga_flops += static_cast<double>(total) * 2.0 * b3 * fpga_share;
    rep.run.cpu_flops +=
        static_cast<double>(total) * 2.0 * b3 * (1.0 - fpga_share);
    rep.run.cpu_flops += static_cast<double>(total) * b2;  // opMS
    rep.run.bytes_on_network += static_cast<std::uint64_t>(
        static_cast<double>(total) *
        (2.0 * b2 * kWordBytes * static_cast<double>(sys.p - 1) +
         b2 * kWordBytes));
    if (cfg.mode != DesignMode::ProcessorOnly) {
      rep.run.coordination_events += static_cast<std::uint64_t>(
          total * (cfg.b / k) * 2 * (sys.p - 1));
    }
    now = std::max(panel, worker);
    rep.iteration_seconds.push_back(now - iter_start);
  }
  rep.run.seconds = now;
  rep.run.total_flops = rep.run.cpu_flops + rep.run.fpga_flops;
  rep.run.fpga_busy_seconds =
      cfg.mode == DesignMode::ProcessorOnly
          ? 0.0
          : rep.run.fpga_flops / sys.mm_fpga.peak_flops();
  rep.run.cpu_busy_seconds = rep.run.seconds;
  return rep;
}

CholFunctionalResult cholesky_functional(const SystemParams& sys,
                                         const CholConfig& cfg,
                                         const Matrix& a, bool use_soft_fp,
                                         sim::TraceRecorder* trace) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "cholesky requires b | n");
  RCS_CHECK_MSG(a.rows() == static_cast<std::size_t>(cfg.n) &&
                    a.cols() == static_cast<std::size_t>(cfg.n),
                "input matrix shape mismatch");
  RCS_CHECK_MSG(sys.p >= 2, "the distributed design needs p >= 2");

  const long long n = cfg.n;
  const long long b = cfg.b;
  const long long nb = n / b;
  const int p = sys.p;
  const int workers = p - 1;
  const long long b_f = resolve_bf(sys, cfg);
  const long long b_p = b - b_f;
  const MmPartition part = mm_partition_at(sys, b, b_f);
  LuInterleave li = solve_lu_interleave(sys, b, part, cfg.fanout);
  const int l = cfg.l >= 0 ? cfg.l : li.l;
  const fpga::MatMulArray array(sys.mm_fpga);
  const long long k = sys.mm_fpga.pe_count;

  net::World world(p, sys.network);
  struct Stats {
    sim::SimTime finish = 0.0;
    double cpu_busy = 0.0, fpga_busy = 0.0, cpu_flops = 0.0, fpga_flops = 0.0;
    std::uint64_t bytes = 0, coord = 0;
  };
  std::vector<Stats> stats(static_cast<std::size_t>(p));
  std::vector<sim::TraceRecorder> rank_traces(
      static_cast<std::size_t>(p),
      sim::TraceRecorder(trace != nullptr && trace->enabled()));
  Matrix factored(n, n);

  world.run([&](net::Comm& comm) {
    const int me = comm.rank();
    node::ComputeNode node(sys.node_params_mm(), comm.clock(),
                           &rank_traces[static_cast<std::size_t>(me)],
                           "node" + std::to_string(me));

    // Initial distribution of the lower-triangle blocks (u >= v).
    std::map<std::pair<long long, long long>, Matrix> blocks;
    for (long long u = 0; u < nb; ++u) {
      for (long long v = 0; v <= u; ++v) {
        if (owner_of(u, v, p) == me) {
          blocks.emplace(std::make_pair(u, v),
                         Matrix::from_view(a.block(u * b, v * b, b, b)));
        }
      }
    }
    auto blk = [&](long long u, long long v) -> Matrix& {
      auto it = blocks.find({u, v});
      RCS_CHECK_MSG(it != blocks.end(), "rank " << me << " missing block ("
                                                << u << "," << v << ")");
      return it->second;
    };

    for (long long t = 0; t < nb; ++t) {
      const int panel = static_cast<int>(t % p);
      const auto order = opmm_order(t, nb);
      const long long total = static_cast<long long>(order.size());
      const double b3 = static_cast<double>(b) * static_cast<double>(b) *
                        static_cast<double>(b);

      if (me == panel) {
        linalg::potrf_unblocked(blk(t, t).view());
        node.cpu_compute(node::CpuKernel::Dpotrf, b3 / 3.0, "opPOTRF");
        long long served = 0, ready = 0;
        auto serve = [&](long long count) {
          for (long long s = 0; s < count && served < ready; ++s, ++served) {
            const auto [u, v] = order[static_cast<std::size_t>(served)];
            for (int r = 0; r < p; ++r) {
              if (r == panel) continue;
              net::send_matrix(comm, r, make_tag(Chan::CBlock, t, served),
                               blk(u, t).view());
              net::send_matrix(comm, r, make_tag(Chan::DBlock, t, served),
                               blk(v, t).view());
            }
          }
        };
        const long long m = nb - 1 - t;
        for (long long i = 1; i <= m; ++i) {
          linalg::trsm_right_lower_transposed(blk(t, t).view(),
                                              blk(t + i, t).view());
          node.cpu_compute(node::CpuKernel::Dtrsm, b3, "opL");
          ready += i;
          if (l > 0) serve(l);
        }
        serve(total - served);
      } else {
        const int widx = me < panel ? me : me - 1;
        const auto [c0, c1] = worker_columns(b, workers, widx);
        const long long cw = c1 - c0;
        for (long long j = 0; j < total; ++j) {
          const auto [u, v] = order[static_cast<std::size_t>(j)];
          Matrix c = net::recv_matrix(comm, panel,
                                      make_tag(Chan::CBlock, t, j));
          Matrix d = net::recv_matrix(comm, panel,
                                      make_tag(Chan::DBlock, t, j));
          Matrix e(b, cw);
          // E[:, c0:c1) = C * D[c0:c1, :]^T — the worker's column share.
          auto dshare = d.block(c0, 0, cw, b);
          for (long long s = 0; s < b; s += k) {
            const long long ks = std::min(k, b - s);
            if (b_f > 0) {
              node.dram_to_fpga(
                  static_cast<std::uint64_t>((b_f * ks + ks * cw) * 8));
              node.fpga_submit(
                  static_cast<double>(array.cycles(b_f, ks, cw)), "opMM");
            }
            if (b_p > 0) {
              node.cpu_compute(node::CpuKernel::Dgemm,
                               2.0 * static_cast<double>(b_p * ks * cw),
                               "opMM");
            }
          }
          if (b_f > 0) {
            auto e_f = e.block(0, 0, b_f, cw);
            if (use_soft_fp) {
              array.multiply_accumulate_nt_soft(c.block(0, 0, b_f, b),
                                                dshare, e_f);
            } else {
              array.multiply_accumulate_nt(c.block(0, 0, b_f, b), dshare,
                                           e_f);
            }
            node.note_fpga_flops(2.0 * static_cast<double>(b_f * b * cw));
          }
          if (b_p > 0) {
            linalg::gemm_nt(c.block(b_f, 0, b_p, b), dshare,
                            e.block(b_f, 0, b_p, cw));
          }
          if (b_f > 0) {
            node.fpga_wait();
            node.read_fpga_results("opMM partial product");
          }
          const int dst = owner_of(u, v, p);
          if (dst == me) {
            linalg::matrix_sub(blk(u, v).block(0, c0, b, cw), e.view());
            node.cpu_compute(node::CpuKernel::MemBound,
                             static_cast<double>(b * cw), "opMS");
          } else {
            net::send_matrix(comm, dst, make_tag(Chan::EShare, t, j),
                             e.view());
          }
        }
      }

      for (long long j = 0; j < total; ++j) {
        const auto [u, v] = order[static_cast<std::size_t>(j)];
        if (owner_of(u, v, p) != me) continue;
        for (int r = 0; r < p; ++r) {
          if (r == panel || r == me) continue;
          const int widx = r < panel ? r : r - 1;
          const auto [c0, c1] = worker_columns(b, workers, widx);
          Matrix e = net::recv_matrix(comm, r, make_tag(Chan::EShare, t, j));
          linalg::matrix_sub(blk(u, v).block(0, c0, b, c1 - c0), e.view());
          node.cpu_compute(node::CpuKernel::MemBound,
                           static_cast<double>(b * (c1 - c0)), "opMS");
        }
      }
      comm.barrier();
    }

    Stats& st = stats[static_cast<std::size_t>(me)];
    st.finish = comm.clock().now();
    st.cpu_busy = node.cpu_busy_total();
    st.fpga_busy = node.fpga_busy_total();
    st.cpu_flops = node.cpu_flops_total();
    st.fpga_flops = node.fpga_flops_total();
    st.bytes = comm.bytes_sent();
    st.coord = node.coordination_events();

    // Untimed gather: lower-triangle blocks to rank 0; the upper triangle
    // keeps the input values (potrf semantics).
    if (me == 0) {
      linalg::copy(a.view(), factored.view());
      for (long long u = 0; u < nb; ++u) {
        for (long long v = 0; v <= u; ++v) {
          const int o = owner_of(u, v, p);
          Matrix block = o == 0 ? std::move(blk(u, v))
                                : net::recv_matrix(
                                      comm, o,
                                      make_tag(Chan::Gather, 0, u * nb + v));
          linalg::copy(block.view(), factored.block(u * b, v * b, b, b));
        }
      }
    } else {
      for (auto& [key, block] : blocks) {
        net::send_matrix(comm, 0,
                         make_tag(Chan::Gather, 0, key.first * nb + key.second),
                         block.view());
      }
    }
  });

  if (trace != nullptr) {
    for (auto& rt : rank_traces) trace->merge_from(std::move(rt));
  }
  CholFunctionalResult res;
  res.factored = std::move(factored);
  res.partition = part;
  res.l = l;
  res.run.design = std::string("CHOL/") + to_string(cfg.mode) + "/functional";
  for (const Stats& st : stats) {
    res.run.seconds = std::max(res.run.seconds, st.finish);
    res.run.cpu_busy_seconds += st.cpu_busy;
    res.run.fpga_busy_seconds += st.fpga_busy;
    res.run.cpu_flops += st.cpu_flops;
    res.run.fpga_flops += st.fpga_flops;
    res.run.bytes_on_network += st.bytes;
    res.run.coordination_events += st.coord;
  }
  res.run.total_flops = res.run.cpu_flops + res.run.fpga_flops;
  return res;
}

}  // namespace rcs::core
