#pragma once
// Functional-plane implementation of the distributed hybrid LU decomposition
// (Section 5.1): real matrix blocks move between MiniMPI ranks, the hybrid
// opMM split computes its FPGA share through the MatMulArray model and its
// CPU share through the host gemm, and every compute/transfer charges the
// owning rank's virtual clock. The numerical result is bit-identical to the
// sequential blocked LU (linalg::getrf_blocked) — the test suite checks it.
//
// Block ownership follows the paper's frame distribution: block (u, v) lives
// on rank min(u, v) mod p, so the whole panel of iteration t (row t and
// column t of blocks) is owned by rank t mod p — the iteration's panel node.
// opMM results return to the block's owner for the opMS update. (The paper's
// text says "P_t'' where t'' = max{u, v}", which contradicts its own initial
// distribution; we follow the distribution.)

#include <map>
#include <string>

#include "core/lu_analytic.hpp"
#include "linalg/matrix.hpp"

namespace rcs::core {

/// Outcome of a functional LU run.
struct LuFunctionalResult {
  /// In-place factors gathered at rank 0: strictly-lower part holds L (unit
  /// diagonal implied), upper part holds U.
  linalg::Matrix factored;
  RunReport run;
  MmPartition partition;
  int l = 0;  // interleave depth in effect
  /// Per-phase transfer-overlap accounting summed over ranks ("opMM" covers
  /// the C/D stripe receives, "opMS" the E-share returns). Populated in
  /// both schedules; the lookahead pipeline exists to push the hidden
  /// fraction (OverlapStats::efficiency) toward 1.
  std::map<std::string, net::OverlapStats> overlap;
  /// Fault injection/recovery accounting summed over ranks (all zeros when
  /// cfg.faults is null and fault tolerance is off).
  sim::FaultStats faults;
};

/// Run the configured LU design on real data over MiniMPI.
/// `use_soft_fp` routes the FPGA share through the bit-accurate IEEE-754
/// cores (slow; for verification). `cfg.max_iterations` is ignored — the
/// functional plane always factors completely so the result is checkable.
/// When `trace` is non-null and enabled, every CPU/DRAM/FPGA busy interval
/// of every node is recorded into it (resources "node<r>.cpu" etc.).
/// `message_log`, when non-null, receives every message sent during the
/// run (for net::analyze_contention).
LuFunctionalResult lu_functional(
    const SystemParams& sys, const LuConfig& cfg, const linalg::Matrix& a,
    bool use_soft_fp = false, sim::TraceRecorder* trace = nullptr,
    std::vector<net::MessageEvent>* message_log = nullptr);

}  // namespace rcs::core
