#include "core/lu_analytic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rcs::core {

namespace {

/// Mode-resolved per-opMM quantities for the schedule walk.
struct OpmmCosts {
  double worker_seconds = 0.0;  // one worker's latency per opMM
  double sender_seconds = 0.0;  // panel-node CPU time to distribute one opMM
  double worker_post = 0.0;     // result return + amortized opMS per opMM
  double cpu_flops = 0.0;       // CPU flops per opMM (all workers combined)
  double fpga_flops = 0.0;      // FPGA flops per opMM (all workers combined)
  std::uint64_t sender_bytes = 0;  // network bytes per opMM from the panel
  std::uint64_t result_bytes = 0;  // network bytes per opMM back to owners
};

OpmmCosts opmm_costs(const SystemParams& sys, const LuConfig& cfg,
                     const MmPartition& part) {
  const long long b = cfg.b;
  const long long k = sys.mm_fpga.pe_count;
  const double p1 = static_cast<double>(sys.p - 1);
  const double stripes = static_cast<double>(b) / static_cast<double>(k);
  const double b2 = static_cast<double>(b) * static_cast<double>(b);
  const double b3 = b2 * static_cast<double>(b);
  const double r_gemm = sys.gpp.sustained(node::CpuKernel::Dgemm);
  const double r_mem = sys.gpp.sustained(node::CpuKernel::MemBound);

  OpmmCosts c;
  switch (cfg.mode) {
    case DesignMode::Hybrid:
      c.worker_seconds = stripes * part.stripe_period_seconds();
      break;
    case DesignMode::ProcessorOnly:
      // Plain dgemm of the worker's column share; no striping, no FPGA.
      c.worker_seconds = 2.0 * b3 / (p1 * r_gemm);
      break;
    case DesignMode::FpgaOnly:
      // The CPU only streams operands; the FPGA computes everything.
      c.worker_seconds =
          stripes * std::max(part.t_f_stripe, part.t_mem_stripe);
      break;
  }

  const double dest = cfg.fanout == SendFanout::SerialAll
                          ? static_cast<double>(sys.p - 1)
                          : 1.0;
  c.sender_seconds = stripes * part.t_comm_stripe * dest;
  c.sender_bytes = static_cast<std::uint64_t>(
      stripes * 2.0 * static_cast<double>(b) * static_cast<double>(k) *
      kWordBytes * static_cast<double>(sys.p - 1));

  // Each worker returns its b x b/(p-1) slice of E to the block owner, then
  // the owner's opMS (b^2 subtractions) is amortized across the workers.
  c.result_bytes = static_cast<std::uint64_t>(b2 * kWordBytes);
  const double e_send = static_cast<double>(b) * (static_cast<double>(b) / p1) *
                        kWordBytes / sys.network.bytes_per_s;
  const double opms = (b2 / p1) / r_mem;
  c.worker_post = e_send + opms;

  const double total_flops = 2.0 * b3;  // one opMM
  const double fpga_share =
      cfg.mode == DesignMode::ProcessorOnly
          ? 0.0
          : (cfg.mode == DesignMode::FpgaOnly
                 ? 1.0
                 : static_cast<double>(part.b_f) / static_cast<double>(b));
  c.fpga_flops = total_flops * fpga_share;
  c.cpu_flops = total_flops - c.fpga_flops;
  return c;
}

long long resolve_bf(const SystemParams& sys, const LuConfig& cfg) {
  if (cfg.b_f >= 0) return cfg.b_f;
  switch (cfg.mode) {
    case DesignMode::Hybrid:
      return solve_mm_partition(sys, cfg.b).b_f;
    case DesignMode::ProcessorOnly:
      return 0;
    case DesignMode::FpgaOnly:
      return cfg.b;
  }
  return 0;
}

}  // namespace

LuAnalyticReport lu_analytic(const SystemParams& sys, const LuConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "LU requires b | n (n = " << cfg.n << ", b = " << cfg.b << ")");
  RCS_CHECK_MSG(sys.p >= 2, "the distributed LU design needs p >= 2");

  LuAnalyticReport rep;
  rep.partition = mm_partition_at(sys, cfg.b, resolve_bf(sys, cfg));
  rep.interleave =
      solve_lu_interleave(sys, cfg.b, rep.partition, cfg.fanout);
  int l = cfg.l >= 0 ? cfg.l : rep.interleave.l;
  rep.interleave.l = l;

  const OpmmCosts costs = opmm_costs(sys, cfg, rep.partition);
  const PanelTimes pt = panel_times(sys, cfg.b);
  const long long nb = cfg.n / cfg.b;
  const long long iterations =
      cfg.max_iterations >= 0 ? std::min<long long>(cfg.max_iterations, nb)
                              : nb;
  const double b2 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b);
  const double b3 = b2 * static_cast<double>(cfg.b);

  rep.run.design = std::string("LU/") + to_string(cfg.mode);
  double now = 0.0;
  double panel_free = 0.0;   // lookahead mode: panel-node availability
  double worker_free = 0.0;  // lookahead mode: worker availability
  double diag_ready = 0.0;   // lookahead: when the next diagonal block lands

  for (long long t = 0; t < iterations; ++t) {
    const long long m = nb - 1 - t;  // trailing block rows/columns
    const double iter_start =
        cfg.lookahead ? std::max(panel_free, diag_ready) : now;
    double panel = iter_start;
    double worker = cfg.lookahead ? std::max(worker_free, iter_start) : now;
    bool first_opmm_recorded = false;

    // opLU on the panel node.
    panel += pt.t_lu;
    rep.run.cpu_flops += (2.0 / 3.0) * b3;

    // Panel pipeline: after each opL/opU pair for index i, opMMs with
    // max(u, v) == i become ready (2i - 1 of them); the panel node serves
    // up to l ready opMMs after each panel operation.
    long long ready = 0;
    long long served = 0;
    const long long total_opmm = m * m;
    auto serve = [&](long long count) {
      for (long long s = 0; s < count && served < ready; ++s) {
        panel += costs.sender_seconds;  // distribute stripes
        const double start = std::max(worker, panel);
        worker = start + costs.worker_seconds + costs.worker_post;
        if (!first_opmm_recorded) {
          // opMM #1 is (t+1, t+1): the next panel's diagonal block.
          diag_ready = worker;
          first_opmm_recorded = true;
        }
        ++served;
      }
    };
    for (long long i = 1; i <= m; ++i) {
      panel += pt.t_opl;
      if (l > 0) serve(l);
      panel += pt.t_opu;
      ready += 2 * i - 1;  // running total: i^2 opMMs ready after pair i
      if (l > 0) serve(l);
      rep.run.cpu_flops += 2.0 * b3;  // opL + opU
    }
    RCS_CHECK(ready == total_opmm);
    serve(total_opmm - served);  // drain whatever remains

    rep.run.cpu_flops += static_cast<double>(total_opmm) * costs.cpu_flops;
    rep.run.fpga_flops += static_cast<double>(total_opmm) * costs.fpga_flops;
    rep.run.cpu_flops += static_cast<double>(total_opmm) * b2;  // opMS
    rep.run.bytes_on_network += static_cast<std::uint64_t>(total_opmm) *
                                (costs.sender_bytes + costs.result_bytes);
    // Two coordination events (start + done) per stripe per worker node.
    if (cfg.mode != DesignMode::ProcessorOnly) {
      rep.run.coordination_events +=
          static_cast<std::uint64_t>(total_opmm) *
          static_cast<std::uint64_t>(cfg.b / sys.mm_fpga.pe_count) * 2u *
          static_cast<std::uint64_t>(sys.p - 1);
    }

    if (cfg.lookahead) {
      // No barrier: the panel node frees up when its own work ends, the
      // workers keep draining; iteration t+1 gates only on the updated
      // diagonal block (recorded by the first opMM above).
      panel_free = panel;
      worker_free = worker;
      now = std::max(now, std::max(panel, worker));
      if (m == 0) diag_ready = panel;  // nothing to wait for afterwards
    } else {
      // Iteration barrier: the next panel depends on opMS-updated blocks.
      now = std::max(panel, worker);
    }
    rep.iteration_seconds.push_back(std::max(panel, worker) - iter_start);
    rep.panel_busy_seconds += panel - iter_start;
    rep.worker_busy_seconds += worker - iter_start;
  }

  rep.run.seconds = now;
  rep.run.total_flops = rep.run.cpu_flops + rep.run.fpga_flops;
  rep.run.cpu_busy_seconds = rep.panel_busy_seconds +
                             rep.worker_busy_seconds *
                                 static_cast<double>(sys.p - 1);
  rep.run.fpga_busy_seconds =
      cfg.mode == DesignMode::ProcessorOnly
          ? 0.0
          : rep.run.fpga_flops / sys.mm_fpga.peak_flops();
  return rep;
}

double lu_single_opmm_latency(const SystemParams& sys, long long b,
                              long long b_f, SendFanout fanout) {
  LuConfig cfg;
  cfg.n = b;  // unused by opmm_costs
  cfg.b = b;
  cfg.mode = b_f == 0 ? DesignMode::ProcessorOnly : DesignMode::Hybrid;
  cfg.fanout = fanout;
  const MmPartition part = mm_partition_at(sys, b, b_f);
  const OpmmCosts costs = opmm_costs(sys, cfg, part);
  // One opMM with a cold pipeline: the workers start once the stripes are on
  // the wire, then compute.
  return costs.sender_seconds + costs.worker_seconds + costs.worker_post;
}

}  // namespace rcs::core
