#include "core/fw_analytic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcs::core {

namespace {

long long resolve_l1(const SystemParams& sys, const FwConfig& cfg,
                     long long ops_per_phase) {
  if (cfg.l1 >= 0) return cfg.l1;
  switch (cfg.mode) {
    case DesignMode::Hybrid:
      return solve_fw_partition(sys, cfg.n, cfg.b).l1;
    case DesignMode::ProcessorOnly:
      return ops_per_phase;
    case DesignMode::FpgaOnly:
      return 0;
  }
  return ops_per_phase;
}

/// One node's latency for a wave of l1 CPU tasks and l2 FPGA tasks. The
/// FPGA tasks are streamed first (the CPU is busy for T_mem per task, the
/// FPGA pipelines behind the stream), then the CPU runs its own tasks.
double wave_seconds(const FwPartition& part) {
  double cpu = 0.0;
  double fpga = 0.0;
  for (long long i = 0; i < part.l2; ++i) {
    cpu += part.t_mem;
    fpga = std::max(fpga, cpu) + part.t_f;
  }
  cpu += static_cast<double>(part.l1) * part.t_p;
  return std::max(cpu, fpga);
}

}  // namespace

FwAnalyticReport fw_analytic(const SystemParams& sys, const FwConfig& cfg) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0, "n and b must be positive");
  RCS_CHECK_MSG(cfg.n % (cfg.b * sys.p) == 0,
                "Floyd-Warshall layout needs b*p | n");

  FwAnalyticReport rep;
  const FwPartition probe = fw_partition_at(sys, cfg.n, cfg.b, 0);
  const long long l1 = resolve_l1(sys, cfg, probe.ops_per_phase);
  rep.partition = fw_partition_at(sys, cfg.n, cfg.b, l1);
  const FwPartition& part = rep.partition;

  const long long nb = cfg.n / cfg.b;
  const long long iterations =
      cfg.max_iterations >= 0 ? std::min<long long>(cfg.max_iterations, nb)
                              : nb;
  const double b2 = static_cast<double>(cfg.b) * static_cast<double>(cfg.b);
  const double b3 = b2 * static_cast<double>(cfg.b);
  // Broadcast of one b x b block from the owner to the other nodes:
  // root-serialized (§4.3) or binomial-tree when enabled.
  int tree_rounds = 0;
  while ((1 << tree_rounds) < sys.p) ++tree_rounds;
  const double bcast_hops =
      cfg.tree_bcast ? static_cast<double>(tree_rounds)
                     : static_cast<double>(sys.p - 1);
  const double bcast = bcast_hops * b2 * kWordBytes /
                       sys.network.bytes_per_s;
  // op1 runs on whichever side the mode assigns whole tasks to by default.
  const double t_op1 = cfg.mode == DesignMode::FpgaOnly
                           ? part.t_mem + part.t_f
                           : part.t_p;
  const double wave = wave_seconds(part);

  rep.run.design = std::string("FW/") + to_string(cfg.mode);
  double now = 0.0;

  for (long long t = 0; t < iterations; ++t) {
    const double iter_start = now;
    // Phase 0: op1 on the owner, broadcast of D_tt.
    double owner_free = now + t_op1 + bcast;
    double worker_free = owner_free;  // workers gated on the D_tt arrival
    double data_ready = owner_free;

    // Wave 0 is the op21 wave; waves 1..nb-1 are op3 waves. The owner's
    // wave w < nb-1 contains the next op22, broadcast when the wave ends.
    for (long long w = 0; w < nb; ++w) {
      const double owner_end = owner_free + wave;
      double next_data = data_ready;
      double owner_next = owner_end;
      if (w < nb - 1) {
        owner_next = owner_end + bcast;
        next_data = owner_next;
      }
      const double worker_start = std::max(worker_free, data_ready);
      worker_free = worker_start + wave;
      owner_free = owner_next;
      data_ready = next_data;
    }
    now = std::max(owner_free, worker_free);
    rep.iteration_seconds.push_back(now - iter_start);
    rep.owner_busy_seconds += owner_free - iter_start;
    rep.worker_busy_seconds += worker_free - iter_start;

    // Flop accounting: (nb waves) x (ops_per_phase tasks) per node x p nodes
    // plus op1 — in total (nb^2) block tasks per iteration.
    const double tasks = static_cast<double>(nb) * static_cast<double>(nb);
    const double total = tasks * 2.0 * b3;
    double fpga_share = 0.0;
    if (cfg.mode == DesignMode::FpgaOnly) {
      fpga_share = 1.0;
    } else if (cfg.mode == DesignMode::Hybrid) {
      fpga_share = static_cast<double>(part.l2) /
                   static_cast<double>(part.ops_per_phase);
    }
    rep.run.fpga_flops += total * fpga_share;
    rep.run.cpu_flops += total * (1.0 - fpga_share);
    rep.run.bytes_on_network += static_cast<std::uint64_t>(
        static_cast<double>(nb) * static_cast<double>(sys.p - 1) * b2 *
        kWordBytes);
    rep.run.coordination_events += static_cast<std::uint64_t>(
        2 * part.l2 * nb * sys.p);
  }

  rep.run.seconds = now;
  rep.run.total_flops = rep.run.cpu_flops + rep.run.fpga_flops;
  rep.run.cpu_busy_seconds =
      rep.owner_busy_seconds +
      rep.worker_busy_seconds * static_cast<double>(sys.p - 1);
  rep.run.fpga_busy_seconds =
      rep.run.fpga_flops / sys.fw_fpga.peak_flops();
  return rep;
}

}  // namespace rcs::core
