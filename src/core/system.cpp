#include "core/system.hpp"

namespace rcs::core {

SystemParams SystemParams::cray_xd1() {
  SystemParams s;
  s.name = "Cray XD1 (1 chassis)";
  s.p = 6;
  s.gpp = node::GppModel::opteron_2p2ghz();
  s.mm_fpga = fpga::DeviceConfig::xc2vp50_matmul();
  s.fw_fpga = fpga::DeviceConfig::xc2vp50_floyd_warshall();
  s.network.bytes_per_s = 2e9;  // B_n = 2 GB/s
  s.network.latency_s = 0.0;    // the paper neglects message latency
  s.coordination_latency_s = 0.0;
  return s;
}

SystemParams SystemParams::cray_xt3_drc() {
  SystemParams s;
  s.name = "Cray XT3 + DRC Virtex-4";
  s.p = 6;
  // Dual-core Opteron 2.4 GHz era: modestly faster host BLAS.
  node::GppModel gpp(1.2e9);
  gpp.set_rate(node::CpuKernel::Dgemm, 4.4e9);
  gpp.set_rate(node::CpuKernel::Dgetrf, 4.1e9);
  gpp.set_rate(node::CpuKernel::Dtrsm, 4.2e9);
  gpp.set_rate(node::CpuKernel::FwBlock, 220e6);
  s.gpp = gpp;
  s.mm_fpga = fpga::DeviceConfig::drc_virtex4_matmul();
  s.fw_fpga = fpga::DeviceConfig::drc_virtex4_matmul();
  s.fw_fpga.name = "DRC-Virtex4/floyd-warshall";
  s.fw_fpga.clock_hz = 160e6;
  s.fw_fpga.dram_bytes_per_s = 6.4e9;
  s.network.bytes_per_s = 4e9;  // SeaStar interconnect
  return s;
}

SystemParams SystemParams::sgi_rasc() {
  SystemParams s;
  s.name = "SGI RASC RC100";
  s.p = 4;
  node::GppModel gpp(1.1e9);
  gpp.set_rate(node::CpuKernel::Dgemm, 4.1e9);
  gpp.set_rate(node::CpuKernel::Dgetrf, 3.8e9);
  gpp.set_rate(node::CpuKernel::Dtrsm, 3.9e9);
  gpp.set_rate(node::CpuKernel::FwBlock, 200e6);
  s.gpp = gpp;
  fpga::DeviceConfig v4;
  v4.name = "Virtex4-LX200/matmul";
  v4.pe_count = 16;
  v4.clock_hz = 200e6;
  v4.sram_bytes = 16ull << 20;
  v4.bram_bytes = 756ull << 10;
  // RC100 blades connect directly to shared global memory (NUMAlink).
  v4.dram_bytes_per_s = 3.2e9;
  s.mm_fpga = v4;
  s.fw_fpga = v4;
  s.fw_fpga.name = "Virtex4-LX200/floyd-warshall";
  s.fw_fpga.clock_hz = 180e6;
  s.network.bytes_per_s = 6.4e9;  // NUMAlink 4
  return s;
}

SystemParams SystemParams::from_synthesis(const std::string& name, int p,
                                          const fpga::ResourceBudget& budget,
                                          node::GppModel gpp,
                                          net::NetworkParams network,
                                          double dram_path_bytes_per_s,
                                          std::uint64_t sram_bytes) {
  SystemParams s;
  s.name = name;
  s.p = p;
  s.gpp = std::move(gpp);
  const auto mm = fpga::synthesize_matmul(budget);
  s.mm_fpga = fpga::to_device_config(budget, mm, "matmul", sram_bytes,
                                     dram_path_bytes_per_s);
  const auto fw = fpga::synthesize_floyd_warshall(budget);
  s.fw_fpga = fpga::to_device_config(budget, fw, "floyd-warshall",
                                     sram_bytes, dram_path_bytes_per_s);
  s.network = network;
  return s;
}

}  // namespace rcs::core
