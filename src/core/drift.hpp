#pragma once
// Model-vs-measured drift reports (the observability capstone): run a
// functional LU / Floyd-Warshall design with telemetry forced on and line up
// three views of every phase —
//
//   predicted  — the paper's performance model, as per-phase resource-seconds
//                (core::predict_*_phase_seconds),
//   simulated  — virtual-clock busy time by trace label from the run's
//                sim::TraceRecorder,
//   measured   — real wall-clock accumulated by the obs::PhaseSpan counters
//                ("lu.wall.opMM_ns", ...), summed across ranks and pool
//                workers.
//
// Predicted and simulated share the machine model, so their drift isolates
// scheduling effects the closed-form prediction ignores; measured runs on
// the host (the FPGA share is emulated), so its drift calibrates how far
// this machine is from the modeled Cray XD1 node. Reports feed
// BENCH_perf.json via bench/perf_wallclock.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/fw_analytic.hpp"
#include "core/lu_analytic.hpp"
#include "linalg/matrix.hpp"
#include "obs/critpath.hpp"
#include "sim/faults.hpp"

namespace rcs::core {

/// One phase's three-way comparison.
struct PhaseDrift {
  std::string phase;         // "opLU", "opMM", ... / "op1", "op3", ...
  double predicted_s = 0.0;  // model resource-seconds, summed over ranks
  double simulated_s = 0.0;  // virtual-clock busy time, summed over ranks
  double measured_s = 0.0;   // wall-clock, summed over threads
  /// Transfer-overlap accounting for the receives this phase waits on
  /// (simulated seconds, summed over ranks): `overlap_total_s` is the full
  /// in-flight time of those transfers, `overlap_hidden_s` the part that
  /// elapsed behind compute before the wait. Both stay 0 for phases that
  /// receive nothing.
  double overlap_hidden_s = 0.0;
  double overlap_total_s = 0.0;

  /// |measured - predicted| / predicted (0 when nothing was predicted).
  double drift_measured() const;
  /// |simulated - predicted| / predicted.
  double drift_simulated() const;
  /// Fraction of this phase's transfer time hidden behind compute
  /// (0 when the phase receives nothing; lookahead pushes it toward 1).
  double overlap_efficiency() const;
};

/// Whole-run drift report for one design point.
struct DriftReport {
  std::string design;               // e.g. "LU/hybrid/functional"
  std::vector<PhaseDrift> phases;   // model-covered phases, stable order
  double predicted_latency_s = 0.0;   // max(T_tp, T_tf), Eq. §4.5
  double simulated_makespan_s = 0.0;  // latest virtual clock across ranks
  double measured_wall_s = 0.0;       // elapsed wall time of the run
  std::map<std::string, double> utilization;  // resource -> busy / makespan
  /// Fault injection/recovery accounting of the underlying run (all zeros
  /// for a fault-free configuration); emitted as the "faults" JSON block.
  sim::FaultStats faults;
  /// Critical-path / makespan-attribution analysis of the run's event DAG
  /// (obs::cp::analyze over spans + comm events); emitted as the
  /// "analysis" JSON block.
  obs::cp::Analysis analysis;

  /// JSON object, each line prefixed with `indent` spaces (for embedding).
  void write_json(std::ostream& os, int indent = 0) const;

  /// Human-readable table.
  void print(std::ostream& os) const;
};

/// Run the configured LU design on `a` with telemetry forced on and return
/// the per-phase drift. Metrics/trace enablement is restored on return;
/// counters are diffed, not reset, so surrounding telemetry survives.
DriftReport lu_drift_report(const SystemParams& sys, const LuConfig& cfg,
                            const linalg::Matrix& a);

/// Floyd-Warshall counterpart of lu_drift_report.
DriftReport fw_drift_report(const SystemParams& sys, const FwConfig& cfg,
                            const linalg::Matrix& d0);

}  // namespace rcs::core
