#pragma once
// The paper's workload-partition solvers.
//
//  * Eq. 1/2/4 — splittable tasks (block matrix multiply): choose the FPGA
//    share b_f (rows of the C stripe) so that the FPGA's stripe time equals
//    the processor's stripe time plus the non-overlappable transfer terms:
//        T_f(b_f) = T_comm + T_mem(b_f) + T_p(b - b_f)            (Eq. 4)
//    with, per stripe (inner dimension k, p - 1 worker nodes):
//        T_f    = b_f * b / ((p-1) * F_f)
//        T_p    = 2 * b_p * b * k / ((p-1) * R_gemm)
//        T_mem  = (b_f * k + b * k/(p-1)) * b_w / B_d
//        T_comm = 2 * b * k * b_w / B_n
//
//  * Eq. 5 — inter-node load balancing for LU: the number l of opMM tasks
//    the worker nodes run per opLU/opL/opU on the panel node:
//        max{T_lu, T_opL, T_opU} + l * (b/k) * T_comm = l * W_f
//    where W_f = b_f * b^2 / ((p-1) * k * F_f) is one opMM's FPGA time.
//
//  * Eq. 6 — non-splittable tasks (Floyd–Warshall): whole-task counts l1
//    (CPU) and l2 (FPGA) per phase with l1 + l2 = n/(b*p):
//        l1 * T_p + T_comm + l2 * T_mem = l2 * T_f
//    with T_p = 2 b^3 / R_fw, T_f = 2 b^3 / (k F_f),
//         T_mem = 2 b^2 b_w / B_d, T_comm = b^2 b_w / B_n.
//
// Note the published Eq. 2 divides D_f by (B_d * F_f); dimensional analysis
// and Eq. 1 show the intended term is D_f / B_d, which is what these solvers
// implement.

#include "core/design.hpp"
#include "core/system.hpp"

namespace rcs::core {

/// Per-stripe timing components and the chosen split for one b x b block
/// matrix multiply distributed over p-1 worker nodes.
struct MmPartition {
  long long b = 0;    // block size
  long long b_f = 0;  // C-stripe rows assigned to the FPGA (multiple of k)
  long long b_p = 0;  // rows assigned to the processor (b - b_f)
  double t_f_stripe = 0.0;     // FPGA time per k-wide stripe
  double t_p_stripe = 0.0;     // CPU compute time per stripe
  double t_mem_stripe = 0.0;   // DRAM->FPGA transfer per stripe
  double t_comm_stripe = 0.0;  // network time per stripe (one destination)
  double residual = 0.0;       // Eq. 4 LHS - RHS at the chosen b_f

  /// Steady-state period of one k-wide stripe on a worker: the FPGA
  /// pipeline overlaps the next stripe's transfer and the CPU's compute, so
  /// the period is the slower of the two sides. A whole opMM takes (b/k)
  /// periods.
  double stripe_period_seconds() const;

  /// On-board SRAM words the FPGA's partial results occupy (must fit).
  std::uint64_t sram_words(int p) const;
};

/// Solve Eq. 4 for b_f (rounded to a multiple of k, clamped to [0, b]).
/// `include_transfers = false` drops T_comm and T_mem — the naive computing-
/// power-ratio split of reference [22], kept for the ablation bench.
MmPartition solve_mm_partition(const SystemParams& sys, long long b,
                               bool include_transfers = true);

/// Evaluate the partition at a fixed b_f (for sweeps and the baselines:
/// b_f = 0 is processor-only, b_f = b is FPGA-only).
MmPartition mm_partition_at(const SystemParams& sys, long long b,
                            long long b_f);

/// Eq. 5 solution plus the quantities that go into it.
struct LuInterleave {
  int l = 1;                 // opMM tasks served per panel operation
  double panel_op_seconds = 0.0;   // max{T_lu, T_opL, T_opU}
  double sender_per_opmm = 0.0;    // panel-node network time per opMM
  double worker_per_opmm = 0.0;    // worker latency per opMM
};

/// Solve Eq. 5 for l (>= 1). `fanout` selects how the per-opMM sender cost
/// is charged (see SendFanout).
LuInterleave solve_lu_interleave(const SystemParams& sys, long long b,
                                 const MmPartition& part, SendFanout fanout);

/// Eq. 6 solution for the Floyd–Warshall phase partition.
struct FwPartition {
  long long ops_per_phase = 0;  // n/(b*p)
  long long l1 = 0;             // whole block tasks per phase on the CPU
  long long l2 = 0;             // whole block tasks per phase on the FPGA
  double t_p = 0.0;             // CPU time per block task
  double t_f = 0.0;             // FPGA time per block task
  double t_mem = 0.0;           // DRAM->FPGA time per block task
  double t_comm = 0.0;          // network time per block exchanged
  double residual = 0.0;        // Eq. 6 LHS - RHS at the chosen split

  /// One node's latency for a phase of l1 + l2 tasks.
  double phase_seconds() const;
};

/// Solve Eq. 6 for (l1, l2) with l1 + l2 = n/(b*p). Requires b*p | n.
FwPartition solve_fw_partition(const SystemParams& sys, long long n,
                               long long b);

/// Evaluate the Floyd–Warshall split at a fixed l1 (for the Fig. 7 sweep and
/// the baselines: l1 = ops_per_phase is processor-only, l1 = 0 FPGA-only).
FwPartition fw_partition_at(const SystemParams& sys, long long n, long long b,
                            long long l1);

/// Panel-operation latencies on the processor (the Table 1 quantities).
struct PanelTimes {
  double t_lu = 0.0;   // opLU: (2/3) b^3 flops at the dgetrf rate
  double t_opl = 0.0;  // opL:  b^3 flops at the dtrsm rate
  double t_opu = 0.0;  // opU:  b^3 flops at the dtrsm rate
};
PanelTimes panel_times(const SystemParams& sys, long long b);

}  // namespace rcs::core
