#include "core/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rcs::core {

const char* to_string(DesignMode m) {
  switch (m) {
    case DesignMode::Hybrid: return "hybrid";
    case DesignMode::ProcessorOnly: return "processor-only";
    case DesignMode::FpgaOnly: return "fpga-only";
  }
  return "?";
}

const char* to_string(SendFanout f) {
  switch (f) {
    case SendFanout::PaperSingle: return "paper-single";
    case SendFanout::SerialAll: return "serial-all";
  }
  return "?";
}

double MmPartition::stripe_period_seconds() const {
  return std::max(t_f_stripe, t_mem_stripe + t_p_stripe);
}

std::uint64_t MmPartition::sram_words(int p) const {
  RCS_DASSERT(p >= 1);
  const std::uint64_t workers = p >= 2 ? static_cast<std::uint64_t>(p - 1) : 1u;
  return static_cast<std::uint64_t>(b_f) * static_cast<std::uint64_t>(b) /
         workers;
}

namespace {

/// Fill the per-stripe timing components of a partition for a given b_f.
/// p == 1 models the single-node hybrid multiply of reference [22]: one
/// node computes the whole b-column share and pays no network time.
MmPartition evaluate_mm(const SystemParams& sys, long long b, long long b_f) {
  RCS_CHECK_MSG(sys.p >= 1, "need at least 1 node; got p = " << sys.p);
  RCS_CHECK_MSG(b > 0, "block size must be positive");
  RCS_CHECK_MSG(b_f >= 0 && b_f <= b, "b_f out of range: " << b_f);
  const auto& dev = sys.mm_fpga;
  const long long k = dev.pe_count;
  const bool single = sys.p == 1;
  const double p1 = single ? 1.0 : static_cast<double>(sys.p - 1);
  const double r_gemm = sys.gpp.sustained(node::CpuKernel::Dgemm);

  MmPartition part;
  part.b = b;
  part.b_f = b_f;
  part.b_p = b - b_f;
  part.t_f_stripe = static_cast<double>(b_f) * static_cast<double>(b) /
                    (p1 * dev.clock_hz);
  part.t_p_stripe = 2.0 * static_cast<double>(part.b_p) *
                    static_cast<double>(b) * static_cast<double>(k) /
                    (p1 * r_gemm);
  part.t_mem_stripe =
      (static_cast<double>(b_f) * static_cast<double>(k) +
       static_cast<double>(b) * static_cast<double>(k) / p1) *
      kWordBytes / dev.dram_bytes_per_s;
  part.t_comm_stripe =
      single ? 0.0
             : 2.0 * static_cast<double>(b) * static_cast<double>(k) *
                   kWordBytes / sys.network.bytes_per_s;
  part.residual = part.t_f_stripe -
                  (part.t_comm_stripe + part.t_mem_stripe + part.t_p_stripe);
  return part;
}

}  // namespace

MmPartition mm_partition_at(const SystemParams& sys, long long b,
                            long long b_f) {
  return evaluate_mm(sys, b, b_f);
}

MmPartition solve_mm_partition(const SystemParams& sys, long long b,
                               bool include_transfers) {
  RCS_CHECK_MSG(b > 0, "block size must be positive");
  const long long k = sys.mm_fpga.pe_count;

  // Eq. 4 balances T_f against T_mem + T_p per stripe (the comm term is
  // charged on the sender in this implementation). Because b_f must be a
  // multiple of k and small b can make the equation degenerate (streaming a
  // row costs more than computing it), we minimize the steady-state stripe
  // period directly over all feasible b_f; wherever Eq. 4 has an interior
  // crossing — in particular at the paper's operating points — the scan
  // lands on it (within one k-row rounding step).
  auto period = [&](long long bf) {
    const MmPartition part = evaluate_mm(sys, b, bf);
    if (!include_transfers) {
      // Naive computing-power-ratio split of reference [22].
      return std::max(part.t_f_stripe, part.t_p_stripe);
    }
    if (bf == 0) return part.t_p_stripe;  // no FPGA, no DRAM streaming
    return part.stripe_period_seconds();
  };
  long long best_bf = 0;
  double best = period(0);
  for (long long bf = k; bf <= b; bf += k) {
    const double cur = period(bf);
    if (cur < best) {
      best = cur;
      best_bf = bf;
    }
  }
  return evaluate_mm(sys, b, best_bf);
}

PanelTimes panel_times(const SystemParams& sys, long long b) {
  PanelTimes t;
  const double b3 = static_cast<double>(b) * static_cast<double>(b) *
                    static_cast<double>(b);
  t.t_lu = sys.gpp.seconds_for(node::CpuKernel::Dgetrf, (2.0 / 3.0) * b3);
  t.t_opl = sys.gpp.seconds_for(node::CpuKernel::Dtrsm, b3);
  t.t_opu = sys.gpp.seconds_for(node::CpuKernel::Dtrsm, b3);
  return t;
}

LuInterleave solve_lu_interleave(const SystemParams& sys, long long b,
                                 const MmPartition& part, SendFanout fanout) {
  const long long k = sys.mm_fpga.pe_count;
  const double stripes = static_cast<double>(b) / static_cast<double>(k);
  const PanelTimes pt = panel_times(sys, b);

  LuInterleave li;
  li.panel_op_seconds = std::max({pt.t_lu, pt.t_opl, pt.t_opu});
  const double dest = fanout == SendFanout::SerialAll
                          ? static_cast<double>(sys.p - 1)
                          : 1.0;
  li.sender_per_opmm = stripes * part.t_comm_stripe * dest;
  li.worker_per_opmm = stripes * part.stripe_period_seconds();
  const double denom = li.worker_per_opmm - li.sender_per_opmm;
  if (denom <= 0.0) {
    // The sender cannot keep even one opMM in flight per panel op; the
    // network dominates and interleaving deeper cannot help.
    li.l = 1;
    return li;
  }
  li.l = static_cast<int>(std::lround(li.panel_op_seconds / denom));
  li.l = std::max(li.l, 1);
  return li;
}

double FwPartition::phase_seconds() const {
  const double cpu = static_cast<double>(l1) * t_p;
  const double fpga = static_cast<double>(l2) * (t_f + t_mem);
  return std::max(cpu, fpga);
}

namespace {

FwPartition evaluate_fw(const SystemParams& sys, long long n, long long b,
                        long long l1) {
  RCS_CHECK_MSG(b > 0 && n > 0, "n and b must be positive");
  RCS_CHECK_MSG(n % (b * sys.p) == 0,
                "Floyd-Warshall layout needs b*p | n (n = " << n << ", b = "
                    << b << ", p = " << sys.p << ")");
  const auto& dev = sys.fw_fpga;
  const double b2 = static_cast<double>(b) * static_cast<double>(b);
  const double b3 = b2 * static_cast<double>(b);

  FwPartition part;
  part.ops_per_phase = n / (b * sys.p);
  RCS_CHECK_MSG(l1 >= 0 && l1 <= part.ops_per_phase,
                "l1 out of range: " << l1);
  part.l1 = l1;
  part.l2 = part.ops_per_phase - l1;
  part.t_p = 2.0 * b3 / sys.gpp.sustained(node::CpuKernel::FwBlock);
  part.t_f = 2.0 * b3 / (static_cast<double>(dev.pe_count) * dev.clock_hz);
  part.t_mem = 2.0 * b2 * kWordBytes / dev.dram_bytes_per_s;
  part.t_comm = b2 * kWordBytes / sys.network.bytes_per_s;
  part.residual = (static_cast<double>(part.l1) * part.t_p + part.t_comm +
                   static_cast<double>(part.l2) * part.t_mem) -
                  static_cast<double>(part.l2) * part.t_f;
  return part;
}

}  // namespace

FwPartition fw_partition_at(const SystemParams& sys, long long n, long long b,
                            long long l1) {
  return evaluate_fw(sys, n, b, l1);
}

FwPartition solve_fw_partition(const SystemParams& sys, long long n,
                               long long b) {
  // Eq. 6 with l2 = L - l1:
  //   l1*T_p + T_comm + (L - l1)*T_mem = (L - l1)*T_f
  //   l1 = (L*(T_f - T_mem) - T_comm) / (T_p + T_f - T_mem)
  FwPartition probe = evaluate_fw(sys, n, b, 0);
  const double L = static_cast<double>(probe.ops_per_phase);
  const double denom = probe.t_p + probe.t_f - probe.t_mem;
  long long l1 = 0;
  if (denom > 0.0) {
    const double exact = (L * (probe.t_f - probe.t_mem) - probe.t_comm) / denom;
    l1 = static_cast<long long>(std::llround(exact));
  }
  l1 = std::clamp<long long>(l1, 0, probe.ops_per_phase);
  return evaluate_fw(sys, n, b, l1);
}

}  // namespace rcs::core
