#pragma once
// Bridge between the simulation plane and the obs::cp critical-path
// analyzer: converts a merged per-rank sim::TraceRecorder (node spans +
// MiniMPI comm events) into the analyzer's pure-data Timeline. obs stays
// dependency-free, so the resource-name and label conventions of the
// functional planes are interpreted here:
//
//   "node<r>.cpu"       -> CPU compute (FaultRecovery for repair labels)
//   "node<r>.dram"      -> visible transfer (CPU-driven operand streaming)
//   "node<r>.fpga_wait" -> exposed FPGA time (CPU blocked on the pipeline)
//   "node<r>.fpga"      -> concurrent device busy time (resource-seconds
//                          only; the device overlaps the CPU timeline)
//   CommEvents          -> visible-transfer intervals + wire intervals

#include "obs/critpath.hpp"
#include "sim/trace.hpp"

namespace rcs::core {

/// Build the analyzer's Timeline from a merged recorder. `ranks` is the
/// world size, `makespan` the run's simulated finish (activity recorded
/// past it — there should be none — is clipped).
obs::cp::Timeline build_cp_timeline(const sim::TraceRecorder& rec, int ranks,
                                    double makespan);

/// Convenience: build the timeline and run the analyzer.
obs::cp::Analysis analyze_run(const sim::TraceRecorder& rec, int ranks,
                              double makespan);

}  // namespace rcs::core
