#pragma once
// Analytic (paper-scale) schedule simulator for the distributed hybrid LU
// decomposition of Section 5.1.
//
// The simulator walks the paper's schedule iteration by iteration with
// resource timelines (panel-node CPU, representative worker node) and the
// Eq. 4/5 cost components, reproducing the latency structure — panel
// pipeline, stripe distribution, opMM waves, opMS application — without
// touching matrix data, so the paper's operating points (n = 30000,
// b = 3000) run in microseconds of host time.
//
// The same per-stripe/per-task costs drive the functional plane
// (lu_functional.hpp), which executes real data at small scale; tests check
// the two planes agree on common scales.

#include <vector>

#include "core/design.hpp"
#include "core/partition.hpp"
#include "core/system.hpp"

namespace rcs::sim {
class FaultPlan;
}

namespace rcs::core {

/// Configuration of one LU run.
struct LuConfig {
  long long n = 0;  // matrix dimension (b must divide n)
  long long b = 0;  // block size
  DesignMode mode = DesignMode::Hybrid;
  /// FPGA row share of the C stripe. -1 = choose per mode (Eq. 4 for
  /// hybrid, 0 for processor-only, b for FPGA-only).
  long long b_f = -1;
  /// opMM tasks distributed per panel operation (Eq. 5). -1 = solve;
  /// 0 = no interleaving (all stripes sent after the panel completes).
  int l = -1;
  SendFanout fanout = SendFanout::SerialAll;
  /// Simulate only the first `max_iterations` block iterations (-1 = all);
  /// Fig. 6 uses 1.
  int max_iterations = -1;
  /// Lookahead comm/compute overlap. Analytic plane: let iteration t+1's
  /// panel factorization start as soon as its diagonal block's update
  /// lands, instead of barriering on the whole trailing update. Functional
  /// plane: run the real lookahead pipeline — workers double-buffer the
  /// next task's C/D stripes through irecv, return E shares over the NIC
  /// (isend), prefetch the opMS share receives, and skip the per-iteration
  /// barrier. The factors are byte-identical to the blocking schedule in
  /// either plane; only the schedule (and therefore the clocks) moves. The
  /// paper's implementation could not do this ("we used the atomic ACML
  /// routines", §6.2) — this switch quantifies what that cost.
  bool lookahead = false;
  /// Fault injection: schedule of slowdowns/link faults/crashes/bit-flips
  /// applied during the functional run (must outlive it). nullptr = the
  /// fault-free path, byte-identical to a build without this feature. The
  /// analytic plane ignores it.
  const sim::FaultPlan* faults = nullptr;
  /// Fault tolerance: ABFT row/column checksums on every FPGA opMM share —
  /// detecting corrupted results, repairing single flipped elements exactly
  /// (bit-identical recompute), re-solving wider corruption on the CPU.
  bool fault_tolerance = false;
  /// Straggler tolerance: owners bound their E-share waits by this many
  /// simulated seconds and re-solve a late worker's columns locally from
  /// their stashed stripes (Eq. 4 split, bit-identical). 0 = wait forever.
  /// Requires fault_tolerance.
  double straggler_timeout_s = 0.0;
  /// Rank scheduling for the functional plane (net::World::set_max_workers):
  /// 0 = auto (thread-per-rank for small worlds, fiber scheduler above
  /// World::kAutoFiberThreshold ranks), >0 = fiber scheduler with that many
  /// worker loops, World::kThreadPerRank = force one OS thread per rank.
  /// Outputs and simulated clocks are identical in every mode.
  int max_workers = 0;
};

/// Analytic run outcome.
struct LuAnalyticReport {
  RunReport run;
  MmPartition partition;        // the b_f split in effect
  LuInterleave interleave;      // the l in effect and its Eq. 5 inputs
  std::vector<double> iteration_seconds;  // latency per block iteration
  double panel_busy_seconds = 0.0;        // panel-role CPU busy time
  double worker_busy_seconds = 0.0;       // one worker's busy time
};

/// Simulate the configured LU design on `sys`.
LuAnalyticReport lu_analytic(const SystemParams& sys, const LuConfig& cfg);

/// Latency of one b x b block matrix multiply performed by the p-1 worker
/// nodes while the panel node distributes stripes — the Fig. 5 quantity —
/// at a given b_f.
double lu_single_opmm_latency(const SystemParams& sys, long long b,
                              long long b_f, SendFanout fanout);

}  // namespace rcs::core
