#include "core/lu_functional.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fpga/matmul_array.hpp"
#include "linalg/blas.hpp"
#include "linalg/getrf.hpp"
#include "net/matrix_channel.hpp"
#include "node/compute_node.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"

namespace rcs::core {

namespace {

using linalg::Matrix;

/// Message tag: iteration-scoped purpose + sequence number.
enum class Chan : int { CStripe = 1, DStripe = 2, EShare = 3, Gather = 4 };

int make_tag(Chan chan, long long t, long long j) {
  RCS_CHECK_MSG(t < (1 << 9) && j < (1 << 18),
                "functional plane tag space exceeded (t=" << t << ", j=" << j
                                                          << ")");
  return static_cast<int>((t << 21) | (j << 3) | static_cast<long long>(chan));
}

int owner_of(long long u, long long v, int p) {
  return static_cast<int>(std::min(u, v) % p);
}

/// Deterministic per-iteration list of opMM tasks (u, v), ordered by the
/// panel pipeline: tasks become ready when both their opL (row u) and opU
/// (column v) are done, i.e. after panel pair i = max(u, v) - t.
std::vector<std::pair<long long, long long>> opmm_order(long long t,
                                                        long long nb) {
  std::vector<std::pair<long long, long long>> order;
  const long long m = nb - 1 - t;
  order.reserve(static_cast<std::size_t>(m * m));
  for (long long i = 1; i <= m; ++i) {
    for (long long j = 1; j <= i; ++j) order.emplace_back(t + i, t + j);
    for (long long j = 1; j < i; ++j) order.emplace_back(t + j, t + i);
  }
  return order;
}

/// Column range [c0, c1) of E assigned to worker index w (0-based among the
/// p-1 workers) when b columns are split as evenly as possible.
std::pair<long long, long long> worker_columns(long long b, int workers,
                                               int w) {
  const long long base = b / workers;
  const long long rem = b % workers;
  const long long c0 = w * base + std::min<long long>(w, rem);
  const long long width = base + (w < rem ? 1 : 0);
  return {c0, c0 + width};
}

struct RankStats {
  sim::SimTime finish = 0.0;
  double cpu_busy = 0.0;
  double fpga_busy = 0.0;
  double cpu_flops = 0.0;
  double fpga_flops = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t coordination = 0;
  std::map<std::string, net::OverlapStats> overlap;
  sim::FaultStats faults;
};

/// ABFT checksum scan of an FPGA opMM share E_f = C_f x D computed from
/// zero. Both invariants are O(roundoff)-tight identities of the exact
/// product: sum_i E(i, j) = (colsums of C_f) . D(:, j) and
/// sum_j E(i, j) = C_f(i, :) . (rowsums of D). Checksum roundoff scales
/// with |expected| while the injected flips (mantissa bit >= ~40) sit
/// orders of magnitude above it, so a fixed relative tolerance separates
/// them cleanly at the functional plane's scales.
constexpr double kAbftTol = 1e-9;

struct AbftScan {
  int bad_rows = 0;
  int bad_cols = 0;
  std::size_t row = 0;  // last mismatched row / column
  std::size_t col = 0;
  bool clean() const { return bad_rows == 0 && bad_cols == 0; }
};

AbftScan abft_scan(Span2D<const double> c_f, Span2D<const double> d,
                   Span2D<const double> e_f) {
  const std::size_t m = e_f.rows();
  const std::size_t w = e_f.cols();
  const std::size_t kk = c_f.cols();
  AbftScan scan;
  std::vector<double> csum(kk, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t l = 0; l < kk; ++l) csum[l] += c_f(i, l);
  }
  for (std::size_t j = 0; j < w; ++j) {
    double expect = 0.0;
    double actual = 0.0;
    for (std::size_t l = 0; l < kk; ++l) expect += csum[l] * d(l, j);
    for (std::size_t i = 0; i < m; ++i) actual += e_f(i, j);
    if (!(std::abs(actual - expect) <=
          kAbftTol * (1.0 + std::abs(expect)))) {
      ++scan.bad_cols;
      scan.col = j;
    }
  }
  std::vector<double> rsum(kk, 0.0);
  for (std::size_t l = 0; l < kk; ++l) {
    for (std::size_t j = 0; j < w; ++j) rsum[l] += d(l, j);
  }
  for (std::size_t i = 0; i < m; ++i) {
    double expect = 0.0;
    double actual = 0.0;
    for (std::size_t l = 0; l < kk; ++l) expect += c_f(i, l) * rsum[l];
    for (std::size_t j = 0; j < w; ++j) actual += e_f(i, j);
    if (!(std::abs(actual - expect) <=
          kAbftTol * (1.0 + std::abs(expect)))) {
      ++scan.bad_rows;
      scan.row = i;
    }
  }
  return scan;
}

/// Recompute a worker's E share (columns [c0, c1) of C x D) from the full
/// stripes, bit-identical to the worker's own hybrid result: every entry
/// accumulates in ascending inner-index order, exactly like both the
/// MatMulArray stream and the host gemm. The soft-FP rows re-run through
/// the array's bit-accurate cores element-wise (bypassing any fault hook).
Matrix recompute_share(const fpga::MatMulArray& mm, Span2D<const double> c,
                       Span2D<const double> d, long long c0, long long c1,
                       long long b_f, bool use_soft_fp) {
  const long long rows = static_cast<long long>(c.rows());
  const long long cw = c1 - c0;
  Matrix e(rows, cw);
  auto dshare = d.block(0, c0, d.rows(), cw);
  if (b_f > 0) {
    auto c_f = c.block(0, 0, b_f, c.cols());
    auto e_f = e.block(0, 0, b_f, cw);
    if (use_soft_fp) {
      for (long long i = 0; i < b_f; ++i) {
        for (long long j = 0; j < cw; ++j) {
          e_f(i, j) = mm.element(c_f, dshare, static_cast<std::size_t>(i),
                                 static_cast<std::size_t>(j), 0.0,
                                 /*soft=*/true);
        }
      }
    } else {
      linalg::gemm(c_f, dshare, e_f);
    }
  }
  if (rows - b_f > 0) {
    linalg::gemm(c.block(b_f, 0, rows - b_f, c.cols()), dshare,
                 e.block(b_f, 0, rows - b_f, cw));
  }
  return e;
}

}  // namespace

LuFunctionalResult lu_functional(const SystemParams& sys, const LuConfig& cfg,
                                 const Matrix& a, bool use_soft_fp,
                                 sim::TraceRecorder* trace,
                                 std::vector<net::MessageEvent>* message_log) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "LU requires b | n");
  RCS_CHECK_MSG(a.rows() == static_cast<std::size_t>(cfg.n) &&
                    a.cols() == static_cast<std::size_t>(cfg.n),
                "input matrix shape mismatch");
  RCS_CHECK_MSG(sys.p >= 2, "the distributed LU design needs p >= 2");

  const long long n = cfg.n;
  const long long b = cfg.b;
  const long long nb = n / b;
  const int p = sys.p;
  const int workers = p - 1;

  // Resolve the partition and interleave exactly like the analytic plane.
  long long b_f = cfg.b_f;
  if (b_f < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid: b_f = solve_mm_partition(sys, b).b_f; break;
      case DesignMode::ProcessorOnly: b_f = 0; break;
      case DesignMode::FpgaOnly: b_f = b; break;
    }
  }
  const MmPartition part = mm_partition_at(sys, b, b_f);
  LuInterleave li = solve_lu_interleave(sys, b, part, cfg.fanout);
  const int l = cfg.l >= 0 ? cfg.l : li.l;
  const long long b_p = b - b_f;

  const fpga::MatMulArray array(sys.mm_fpga);
  const long long k = sys.mm_fpga.pe_count;

  // Fault injection/tolerance switches. An empty plan is the fault-free
  // path — the network and node layers skip every fault branch when the
  // installed plan is null.
  const sim::FaultPlan* plan =
      cfg.faults != nullptr && !cfg.faults->empty() ? cfg.faults : nullptr;
  const bool abft = cfg.fault_tolerance;
  const double straggler_s = cfg.straggler_timeout_s;
  RCS_CHECK_MSG(straggler_s >= 0.0, "negative straggler timeout");
  RCS_CHECK_MSG(straggler_s == 0.0 || cfg.fault_tolerance,
                "straggler_timeout_s requires fault_tolerance");

  // Spawn the shared compute pool before the rank threads exist: each
  // worker's opMM share — the FPGA-emulation rows (MatMulArray) and the
  // CPU rows (linalg::gemm) — runs through this one pool, so p concurrent
  // ranks never oversubscribe the machine and never race the pool's lazy
  // construction. Virtual-clock charges stay serial per rank, so simulated
  // timings are independent of RCS_THREADS.
  common::ThreadPool::global();

  net::World world(p, sys.network);
  world.set_message_logging(message_log != nullptr);
  world.set_fault_plan(plan);
  world.set_max_workers(cfg.max_workers);
  std::vector<RankStats> stats(static_cast<std::size_t>(p));
  std::vector<sim::TraceRecorder> rank_traces(
      static_cast<std::size_t>(p),
      sim::TraceRecorder(trace != nullptr && trace->enabled()));
  Matrix factored(n, n);

  world.run([&](net::Comm& comm) {
    const int me = comm.rank();
    comm.set_trace(&rank_traces[static_cast<std::size_t>(me)]);
    node::ComputeNode node(sys.node_params_mm(), comm.clock(),
                           &rank_traces[static_cast<std::size_t>(me)],
                           "node" + std::to_string(me));
    sim::FaultStats& fstats = stats[static_cast<std::size_t>(me)].faults;
    node.set_faults(plan, me, &fstats);

    // When the plan schedules bit-flips, this rank's FPGA calls run through
    // a private hooked array that corrupts the scheduled call's result tile
    // in place. The shared const array stays on the fault-free path.
    std::unique_ptr<fpga::MatMulArray> injected;
    if (plan != nullptr && plan->bitflip_count() > 0) {
      injected = std::make_unique<fpga::MatMulArray>(sys.mm_fpga);
      injected->set_fault_hook(
          [plan, me, &fstats](std::uint64_t call, Span2D<double> tile) {
            if (const sim::BitFlip* f = plan->flip_for(me, call)) {
              sim::apply_bitflip(*f, tile);
              fstats.bitflips_injected += 1;
              sim::note_bitflip_injected();
            }
          });
    }
    const fpga::MatMulArray& mm = injected != nullptr ? *injected : array;

    // Initial distribution (not timed, as in the paper's experiments): each
    // rank copies its owned blocks out of the input matrix.
    std::map<std::pair<long long, long long>, Matrix> blocks;
    for (long long u = 0; u < nb; ++u) {
      for (long long v = 0; v < nb; ++v) {
        if (owner_of(u, v, p) == me) {
          blocks.emplace(std::make_pair(u, v),
                         Matrix::from_view(a.block(u * b, v * b, b, b)));
        }
      }
    }
    auto blk = [&](long long u, long long v) -> Matrix& {
      auto it = blocks.find({u, v});
      RCS_CHECK_MSG(it != blocks.end(), "rank " << me << " missing block ("
                                                << u << "," << v << ")");
      return it->second;
    };

    for (long long t = 0; t < nb; ++t) {
      const int panel = static_cast<int>(t % p);
      const auto order = opmm_order(t, nb);
      const long long total = static_cast<long long>(order.size());
      const double b3 = static_cast<double>(b) * static_cast<double>(b) *
                        static_cast<double>(b);
      // Straggler-recovery stash: a worker that owns blocks this iteration
      // keeps the full C/D stripes of its owned tasks (keyed by task index)
      // so a late peer's E share can be re-solved locally. The panel rank
      // owns the stripes outright and needs no stash.
      std::map<long long, std::pair<Matrix, Matrix>> stash;

      if (me == panel) {
        // --- Panel pipeline: opLU, then opL/opU pairs, serving stripe data
        // for up to l ready opMM tasks after each panel operation.
        {
          obs::PhaseSpan phase("lu", "opLU");
          linalg::getrf_unblocked(blk(t, t).view());
          node.cpu_compute(node::CpuKernel::Dgetrf, (2.0 / 3.0) * b3, "opLU");
        }

        long long served = 0;
        long long ready = 0;
        // PaperSingle fan-out rides the RapidArray DMA engines (isend): the
        // panel CPU pays only setup; SerialAll serializes on the CPU (§4.3).
        // The lookahead pipeline always uses the DMA engines — hiding the
        // stripe transfers is its whole point.
        const bool dma = cfg.fanout == SendFanout::PaperSingle || cfg.lookahead;
        auto serve = [&](long long count) {
          for (long long s = 0; s < count && served < ready; ++s, ++served) {
            const auto [u, v] = order[static_cast<std::size_t>(served)];
            for (int r = 0; r < p; ++r) {
              if (r == panel) continue;
              if (dma) {
                net::isend_matrix(comm, r, make_tag(Chan::CStripe, t, served),
                                  blk(u, t).view());
                net::isend_matrix(comm, r, make_tag(Chan::DStripe, t, served),
                                  blk(t, v).view());
              } else {
                net::send_matrix(comm, r, make_tag(Chan::CStripe, t, served),
                                 blk(u, t).view());
                net::send_matrix(comm, r, make_tag(Chan::DStripe, t, served),
                                 blk(t, v).view());
              }
            }
          }
        };
        const long long m = nb - 1 - t;
        for (long long i = 1; i <= m; ++i) {
          {
            obs::PhaseSpan phase("lu", "opL");
            linalg::trsm_right_upper(blk(t, t).view(), blk(t + i, t).view());
            node.cpu_compute(node::CpuKernel::Dtrsm, b3, "opL");
          }
          if (l > 0) serve(l);
          {
            obs::PhaseSpan phase("lu", "opU");
            linalg::trsm_left_lower_unit(blk(t, t).view(),
                                         blk(t, t + i).view());
            node.cpu_compute(node::CpuKernel::Dtrsm, b3, "opU");
          }
          ready = i * i;
          if (l > 0) serve(l);
        }
        serve(total - served);
      } else {
        // --- Worker: one column share of every opMM of this iteration.
        int widx = me < panel ? me : me - 1;  // index among the p-1 workers
        const auto [c0, c1] = worker_columns(b, workers, widx);
        const long long cw = c1 - c0;
        // Lookahead: double-buffer the stripe stream — task j+1's C/D
        // receives are posted before task j's opMM runs, so the panel's
        // transfers land behind the trailing update instead of in front of
        // it. The blocking schedule receives in place (and still records
        // overlap, for the blocking-vs-lookahead comparison).
        net::Request c_req, d_req;
        if (cfg.lookahead && total > 0) {
          c_req = comm.irecv(panel, make_tag(Chan::CStripe, t, 0), "opMM");
          d_req = comm.irecv(panel, make_tag(Chan::DStripe, t, 0), "opMM");
        }
        for (long long j = 0; j < total; ++j) {
          const auto [u, v] = order[static_cast<std::size_t>(j)];
          Matrix c, d;
          if (cfg.lookahead) {
            c = net::wait_matrix(c_req);
            d = net::wait_matrix(d_req);
            if (j + 1 < total) {
              c_req =
                  comm.irecv(panel, make_tag(Chan::CStripe, t, j + 1), "opMM");
              d_req =
                  comm.irecv(panel, make_tag(Chan::DStripe, t, j + 1), "opMM");
            }
          } else {
            c = net::recv_matrix(comm, panel, make_tag(Chan::CStripe, t, j),
                                 "opMM");
            d = net::recv_matrix(comm, panel, make_tag(Chan::DStripe, t, j),
                                 "opMM");
          }
          Matrix e(b, cw);
          auto dshare = d.block(0, c0, b, cw);

          {
            obs::PhaseSpan phase("lu", "opMM");
            // Timing: stream the k-wide stripes; the FPGA pipelines behind
            // the DRAM stream while the CPU computes its own rows.
            for (long long s = 0; s < b; s += k) {
              const long long ks = std::min(k, b - s);
              if (b_f > 0) {
                node.dram_to_fpga(static_cast<std::uint64_t>(
                    (b_f * ks + ks * cw) * 8));
                node.fpga_submit(
                    static_cast<double>(mm.cycles(b_f, ks, cw)), "opMM");
              }
              if (b_p > 0) {
                node.cpu_compute(node::CpuKernel::Dgemm,
                                 2.0 * static_cast<double>(b_p * ks * cw),
                                 "opMM");
              }
            }
            // Functional compute (order-identical to the stripe stream).
            if (b_f > 0) {
              auto e_f = e.block(0, 0, b_f, cw);
              auto c_f = c.block(0, 0, b_f, b);
              if (use_soft_fp) {
                mm.multiply_accumulate_soft(c_f, dshare, e_f);
              } else {
                mm.multiply_accumulate(c_f, dshare, e_f);
              }
              node.note_fpga_flops(2.0 * static_cast<double>(b_f * b * cw));
            }
            if (b_p > 0) {
              linalg::gemm(c.block(b_f, 0, b_p, b), dshare,
                           e.block(b_f, 0, b_p, cw));
            }
            if (b_f > 0) {
              node.fpga_wait();
              node.read_fpga_results("opMM partial product");
            }
          }
          if (abft && b_f > 0) {
            // --- ABFT: row/column checksum scan of the FPGA share. A
            // single mismatched (row, col) pair pinpoints one corrupted
            // element, recomputed exactly in stream order; anything wider
            // re-solves the whole share element-wise, bypassing the faulty
            // call. Either repair is bit-identical to the fault-free tile.
            obs::PhaseSpan phase("lu", "abft");
            const sim::SimTime check_start = comm.clock().now();
            fstats.checks += 1;
            node.cpu_compute(
                node::CpuKernel::MemBound,
                static_cast<double>(b_f * b + b * cw + 2 * b_f * cw), "abft");
            auto e_f = e.block(0, 0, b_f, cw);
            auto c_f = c.block(0, 0, b_f, b);
            const AbftScan scan = abft_scan(c_f, dshare, e_f);
            if (!scan.clean()) {
              const sim::SimTime repair_start = comm.clock().now();
              fstats.detected += 1;
              sim::note_fault_detected();
              if (scan.bad_rows == 1 && scan.bad_cols == 1) {
                e_f(scan.row, scan.col) = mm.element(
                    c_f, dshare, scan.row, scan.col, 0.0, use_soft_fp);
                node.cpu_compute(node::CpuKernel::Dgemm,
                                 2.0 * static_cast<double>(b), "abft.repair");
                fstats.corrected_elements += 1;
              } else {
                for (std::size_t ri = 0; ri < e_f.rows(); ++ri) {
                  for (std::size_t rj = 0; rj < e_f.cols(); ++rj) {
                    e_f(ri, rj) = mm.element(c_f, dshare, ri, rj, 0.0,
                                             use_soft_fp);
                  }
                }
                node.cpu_compute(node::CpuKernel::Dgemm,
                                 2.0 * static_cast<double>(b_f * b * cw),
                                 "abft.repair");
                fstats.reissued_blocks += 1;
              }
              const sim::SimTime mttr = comm.clock().now() - repair_start;
              fstats.mttr_s.push_back(mttr);
              sim::note_fault_recovered(mttr);
            }
            fstats.recovery_cpu_s += comm.clock().now() - check_start;
          }
          const int dst = owner_of(u, v, p);
          if (dst == me) {
            // This worker owns the block: apply its own opMS share locally.
            obs::PhaseSpan phase("lu", "opMS");
            linalg::matrix_sub(blk(u, v).block(0, c0, b, cw), e.view());
            node.cpu_compute(node::CpuKernel::MemBound,
                             static_cast<double>(b * cw), "opMS");
          } else if (cfg.lookahead) {
            // The E share rides the worker's NIC so its CPU moves straight
            // on to the next task's opMM.
            net::isend_matrix(comm, dst, make_tag(Chan::EShare, t, j),
                              e.view());
          } else {
            net::send_matrix(comm, dst, make_tag(Chan::EShare, t, j),
                             e.view());
          }
          if (straggler_s > 0.0 && dst == me) {
            stash.emplace(j, std::make_pair(std::move(c), std::move(d)));
          }
        }
      }

      // --- opMS: every rank applies the updates for the blocks it owns
      // (its own worker share, if any, was already applied in place).
      // Deterministic (j, r) order in both schedules; lookahead posts every
      // expected receive up front so later shares stream in while earlier
      // ones are applied.
      struct EShare {
        long long j;
        int r;
        long long c0, c1;
        net::Request req;
      };
      std::vector<EShare> shares;
      for (long long j = 0; j < total; ++j) {
        const auto [u, v] = order[static_cast<std::size_t>(j)];
        if (owner_of(u, v, p) != me) continue;
        for (int r = 0; r < p; ++r) {
          if (r == panel || r == me) continue;
          const int widx = r < panel ? r : r - 1;
          const auto [c0, c1] = worker_columns(b, workers, widx);
          shares.push_back(EShare{j, r, c0, c1, net::Request()});
        }
      }
      if (cfg.lookahead) {
        for (EShare& s : shares) {
          s.req = comm.irecv(s.r, make_tag(Chan::EShare, t, s.j), "opMS");
        }
      }
      for (EShare& s : shares) {
        const auto [u, v] = order[static_cast<std::size_t>(s.j)];
        Matrix e;
        bool late = false;
        if (straggler_s > 0.0) {
          e = cfg.lookahead
                  ? net::wait_matrix_deadline(s.req, straggler_s, &late)
                  : net::recv_matrix_deadline(
                        comm, s.r, make_tag(Chan::EShare, t, s.j),
                        straggler_s, &late, "opMS");
        } else {
          e = cfg.lookahead
                  ? net::wait_matrix(s.req)
                  : net::recv_matrix(
                        comm, s.r, make_tag(Chan::EShare, t, s.j),
                        "opMS");
        }
        if (late) {
          // Graceful degradation: the peer's share missed the deadline.
          // Re-solve its columns locally from the stashed (or owned) full
          // stripes — bit-identical to the share the worker would have
          // sent, so the factors don't move.
          obs::PhaseSpan phase("lu", "straggler");
          const sim::SimTime repair_start = comm.clock().now();
          const Matrix* cm = nullptr;
          const Matrix* dm = nullptr;
          if (me == panel) {
            cm = &blk(u, t);
            dm = &blk(t, v);
          } else {
            const auto& pr = stash.at(s.j);
            cm = &pr.first;
            dm = &pr.second;
          }
          e = recompute_share(mm, cm->view(), dm->view(), s.c0, s.c1, b_f,
                              use_soft_fp);
          node.cpu_compute(
              node::CpuKernel::Dgemm,
              2.0 * static_cast<double>(b * b * (s.c1 - s.c0)),
              "straggler.reissue");
          fstats.straggler_reissues += 1;
          const sim::SimTime mttr = comm.clock().now() - repair_start;
          fstats.mttr_s.push_back(mttr);
          fstats.recovery_cpu_s += mttr;
          sim::note_fault_recovered(mttr);
        }
        obs::PhaseSpan phase("lu", "opMS");
        linalg::matrix_sub(blk(u, v).block(0, s.c0, b, s.c1 - s.c0),
                           e.view());
        node.cpu_compute(node::CpuKernel::MemBound,
                         static_cast<double>(b * (s.c1 - s.c0)), "opMS");
      }
      // Lookahead drops the per-iteration barrier: message tags carry the
      // iteration, so ranks are free to run ahead into t+1 as soon as their
      // own opMS updates have landed.
      if (!cfg.lookahead) comm.barrier();
    }

    // Record simulated stats before the (untimed) gather; stop comm
    // tracing so gather traffic stays out of the analyzed timeline.
    comm.set_trace(nullptr);
    RankStats& st = stats[static_cast<std::size_t>(me)];
    st.finish = comm.clock().now();
    st.cpu_busy = node.cpu_busy_total();
    st.fpga_busy = node.fpga_busy_total();
    st.cpu_flops = node.cpu_flops_total();
    st.fpga_flops = node.fpga_flops_total();
    st.bytes_sent = comm.bytes_sent();
    st.coordination = node.coordination_events();
    st.overlap = comm.overlap_stats();
    st.faults += comm.fault_stats();  // link/crash/timeout side of the plan

    // Gather the factored blocks at rank 0.
    obs::PhaseSpan phase("lu", "gather");
    if (me == 0) {
      for (long long u = 0; u < nb; ++u) {
        for (long long v = 0; v < nb; ++v) {
          const int o = owner_of(u, v, p);
          Matrix block = o == 0
                             ? std::move(blk(u, v))
                             : net::recv_matrix(
                                   comm, o, make_tag(Chan::Gather, 0,
                                                     u * nb + v));
          linalg::copy(block.view(), factored.block(u * b, v * b, b, b));
        }
      }
    } else {
      for (auto& [key, block] : blocks) {
        net::send_matrix(comm, 0, make_tag(Chan::Gather, 0,
                                           key.first * nb + key.second),
                         block.view());
      }
    }
  });

  if (trace != nullptr) {
    for (auto& rt : rank_traces) trace->merge_from(std::move(rt));
  }
  if (message_log != nullptr) *message_log = world.message_log();

  LuFunctionalResult res;
  res.factored = std::move(factored);
  res.partition = part;
  res.l = l;
  res.run.design = std::string("LU/") + to_string(cfg.mode) + "/functional" +
                   (cfg.lookahead ? "+lookahead" : "");
  for (const RankStats& st : stats) {
    res.run.seconds = std::max(res.run.seconds, st.finish);
    res.run.cpu_busy_seconds += st.cpu_busy;
    res.run.fpga_busy_seconds += st.fpga_busy;
    res.run.cpu_flops += st.cpu_flops;
    res.run.fpga_flops += st.fpga_flops;
    res.run.bytes_on_network += st.bytes_sent;
    res.run.coordination_events += st.coordination;
    for (const auto& [ph, os] : st.overlap) res.overlap[ph] += os;
    res.faults += st.faults;
  }
  res.run.total_flops = res.run.cpu_flops + res.run.fpga_flops;
  return res;
}

}  // namespace rcs::core
