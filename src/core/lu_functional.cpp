#include "core/lu_functional.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fpga/matmul_array.hpp"
#include "linalg/blas.hpp"
#include "linalg/getrf.hpp"
#include "net/matrix_channel.hpp"
#include "node/compute_node.hpp"
#include "obs/trace.hpp"

namespace rcs::core {

namespace {

using linalg::Matrix;

/// Message tag: iteration-scoped purpose + sequence number.
enum class Chan : int { CStripe = 1, DStripe = 2, EShare = 3, Gather = 4 };

int make_tag(Chan chan, long long t, long long j) {
  RCS_CHECK_MSG(t < (1 << 9) && j < (1 << 18),
                "functional plane tag space exceeded (t=" << t << ", j=" << j
                                                          << ")");
  return static_cast<int>((t << 21) | (j << 3) | static_cast<long long>(chan));
}

int owner_of(long long u, long long v, int p) {
  return static_cast<int>(std::min(u, v) % p);
}

/// Deterministic per-iteration list of opMM tasks (u, v), ordered by the
/// panel pipeline: tasks become ready when both their opL (row u) and opU
/// (column v) are done, i.e. after panel pair i = max(u, v) - t.
std::vector<std::pair<long long, long long>> opmm_order(long long t,
                                                        long long nb) {
  std::vector<std::pair<long long, long long>> order;
  const long long m = nb - 1 - t;
  order.reserve(static_cast<std::size_t>(m * m));
  for (long long i = 1; i <= m; ++i) {
    for (long long j = 1; j <= i; ++j) order.emplace_back(t + i, t + j);
    for (long long j = 1; j < i; ++j) order.emplace_back(t + j, t + i);
  }
  return order;
}

/// Column range [c0, c1) of E assigned to worker index w (0-based among the
/// p-1 workers) when b columns are split as evenly as possible.
std::pair<long long, long long> worker_columns(long long b, int workers,
                                               int w) {
  const long long base = b / workers;
  const long long rem = b % workers;
  const long long c0 = w * base + std::min<long long>(w, rem);
  const long long width = base + (w < rem ? 1 : 0);
  return {c0, c0 + width};
}

struct RankStats {
  sim::SimTime finish = 0.0;
  double cpu_busy = 0.0;
  double fpga_busy = 0.0;
  double cpu_flops = 0.0;
  double fpga_flops = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t coordination = 0;
  std::map<std::string, net::OverlapStats> overlap;
};

}  // namespace

LuFunctionalResult lu_functional(const SystemParams& sys, const LuConfig& cfg,
                                 const Matrix& a, bool use_soft_fp,
                                 sim::TraceRecorder* trace,
                                 std::vector<net::MessageEvent>* message_log) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0 && cfg.n % cfg.b == 0,
                "LU requires b | n");
  RCS_CHECK_MSG(a.rows() == static_cast<std::size_t>(cfg.n) &&
                    a.cols() == static_cast<std::size_t>(cfg.n),
                "input matrix shape mismatch");
  RCS_CHECK_MSG(sys.p >= 2, "the distributed LU design needs p >= 2");

  const long long n = cfg.n;
  const long long b = cfg.b;
  const long long nb = n / b;
  const int p = sys.p;
  const int workers = p - 1;

  // Resolve the partition and interleave exactly like the analytic plane.
  long long b_f = cfg.b_f;
  if (b_f < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid: b_f = solve_mm_partition(sys, b).b_f; break;
      case DesignMode::ProcessorOnly: b_f = 0; break;
      case DesignMode::FpgaOnly: b_f = b; break;
    }
  }
  const MmPartition part = mm_partition_at(sys, b, b_f);
  LuInterleave li = solve_lu_interleave(sys, b, part, cfg.fanout);
  const int l = cfg.l >= 0 ? cfg.l : li.l;
  const long long b_p = b - b_f;

  const fpga::MatMulArray array(sys.mm_fpga);
  const long long k = sys.mm_fpga.pe_count;

  // Spawn the shared compute pool before the rank threads exist: each
  // worker's opMM share — the FPGA-emulation rows (MatMulArray) and the
  // CPU rows (linalg::gemm) — runs through this one pool, so p concurrent
  // ranks never oversubscribe the machine and never race the pool's lazy
  // construction. Virtual-clock charges stay serial per rank, so simulated
  // timings are independent of RCS_THREADS.
  common::ThreadPool::global();

  net::World world(p, sys.network);
  world.set_message_logging(message_log != nullptr);
  std::vector<RankStats> stats(static_cast<std::size_t>(p));
  std::vector<sim::TraceRecorder> rank_traces(
      static_cast<std::size_t>(p),
      sim::TraceRecorder(trace != nullptr && trace->enabled()));
  Matrix factored(n, n);

  world.run([&](net::Comm& comm) {
    const int me = comm.rank();
    node::ComputeNode node(sys.node_params_mm(), comm.clock(),
                           &rank_traces[static_cast<std::size_t>(me)],
                           "node" + std::to_string(me));

    // Initial distribution (not timed, as in the paper's experiments): each
    // rank copies its owned blocks out of the input matrix.
    std::map<std::pair<long long, long long>, Matrix> blocks;
    for (long long u = 0; u < nb; ++u) {
      for (long long v = 0; v < nb; ++v) {
        if (owner_of(u, v, p) == me) {
          blocks.emplace(std::make_pair(u, v),
                         Matrix::from_view(a.block(u * b, v * b, b, b)));
        }
      }
    }
    auto blk = [&](long long u, long long v) -> Matrix& {
      auto it = blocks.find({u, v});
      RCS_CHECK_MSG(it != blocks.end(), "rank " << me << " missing block ("
                                                << u << "," << v << ")");
      return it->second;
    };

    for (long long t = 0; t < nb; ++t) {
      const int panel = static_cast<int>(t % p);
      const auto order = opmm_order(t, nb);
      const long long total = static_cast<long long>(order.size());
      const double b3 = static_cast<double>(b) * static_cast<double>(b) *
                        static_cast<double>(b);

      if (me == panel) {
        // --- Panel pipeline: opLU, then opL/opU pairs, serving stripe data
        // for up to l ready opMM tasks after each panel operation.
        {
          obs::PhaseSpan phase("lu", "opLU");
          linalg::getrf_unblocked(blk(t, t).view());
          node.cpu_compute(node::CpuKernel::Dgetrf, (2.0 / 3.0) * b3, "opLU");
        }

        long long served = 0;
        long long ready = 0;
        // PaperSingle fan-out rides the RapidArray DMA engines (isend): the
        // panel CPU pays only setup; SerialAll serializes on the CPU (§4.3).
        // The lookahead pipeline always uses the DMA engines — hiding the
        // stripe transfers is its whole point.
        const bool dma = cfg.fanout == SendFanout::PaperSingle || cfg.lookahead;
        auto serve = [&](long long count) {
          for (long long s = 0; s < count && served < ready; ++s, ++served) {
            const auto [u, v] = order[static_cast<std::size_t>(served)];
            for (int r = 0; r < p; ++r) {
              if (r == panel) continue;
              if (dma) {
                net::isend_matrix(comm, r, make_tag(Chan::CStripe, t, served),
                                  blk(u, t).view());
                net::isend_matrix(comm, r, make_tag(Chan::DStripe, t, served),
                                  blk(t, v).view());
              } else {
                net::send_matrix(comm, r, make_tag(Chan::CStripe, t, served),
                                 blk(u, t).view());
                net::send_matrix(comm, r, make_tag(Chan::DStripe, t, served),
                                 blk(t, v).view());
              }
            }
          }
        };
        const long long m = nb - 1 - t;
        for (long long i = 1; i <= m; ++i) {
          {
            obs::PhaseSpan phase("lu", "opL");
            linalg::trsm_right_upper(blk(t, t).view(), blk(t + i, t).view());
            node.cpu_compute(node::CpuKernel::Dtrsm, b3, "opL");
          }
          if (l > 0) serve(l);
          {
            obs::PhaseSpan phase("lu", "opU");
            linalg::trsm_left_lower_unit(blk(t, t).view(),
                                         blk(t, t + i).view());
            node.cpu_compute(node::CpuKernel::Dtrsm, b3, "opU");
          }
          ready = i * i;
          if (l > 0) serve(l);
        }
        serve(total - served);
      } else {
        // --- Worker: one column share of every opMM of this iteration.
        int widx = me < panel ? me : me - 1;  // index among the p-1 workers
        const auto [c0, c1] = worker_columns(b, workers, widx);
        const long long cw = c1 - c0;
        // Lookahead: double-buffer the stripe stream — task j+1's C/D
        // receives are posted before task j's opMM runs, so the panel's
        // transfers land behind the trailing update instead of in front of
        // it. The blocking schedule receives in place (and still records
        // overlap, for the blocking-vs-lookahead comparison).
        net::Request c_req, d_req;
        if (cfg.lookahead && total > 0) {
          c_req = comm.irecv(panel, make_tag(Chan::CStripe, t, 0), "opMM");
          d_req = comm.irecv(panel, make_tag(Chan::DStripe, t, 0), "opMM");
        }
        for (long long j = 0; j < total; ++j) {
          const auto [u, v] = order[static_cast<std::size_t>(j)];
          Matrix c, d;
          if (cfg.lookahead) {
            c = net::wait_matrix(c_req);
            d = net::wait_matrix(d_req);
            if (j + 1 < total) {
              c_req =
                  comm.irecv(panel, make_tag(Chan::CStripe, t, j + 1), "opMM");
              d_req =
                  comm.irecv(panel, make_tag(Chan::DStripe, t, j + 1), "opMM");
            }
          } else {
            c = net::recv_matrix(comm, panel, make_tag(Chan::CStripe, t, j),
                                 "opMM");
            d = net::recv_matrix(comm, panel, make_tag(Chan::DStripe, t, j),
                                 "opMM");
          }
          Matrix e(b, cw);
          auto dshare = d.block(0, c0, b, cw);

          {
            obs::PhaseSpan phase("lu", "opMM");
            // Timing: stream the k-wide stripes; the FPGA pipelines behind
            // the DRAM stream while the CPU computes its own rows.
            for (long long s = 0; s < b; s += k) {
              const long long ks = std::min(k, b - s);
              if (b_f > 0) {
                node.dram_to_fpga(static_cast<std::uint64_t>(
                    (b_f * ks + ks * cw) * 8));
                node.fpga_submit(
                    static_cast<double>(array.cycles(b_f, ks, cw)), "opMM");
              }
              if (b_p > 0) {
                node.cpu_compute(node::CpuKernel::Dgemm,
                                 2.0 * static_cast<double>(b_p * ks * cw),
                                 "opMM");
              }
            }
            // Functional compute (order-identical to the stripe stream).
            if (b_f > 0) {
              auto e_f = e.block(0, 0, b_f, cw);
              auto c_f = c.block(0, 0, b_f, b);
              if (use_soft_fp) {
                array.multiply_accumulate_soft(c_f, dshare, e_f);
              } else {
                array.multiply_accumulate(c_f, dshare, e_f);
              }
              node.note_fpga_flops(2.0 * static_cast<double>(b_f * b * cw));
            }
            if (b_p > 0) {
              linalg::gemm(c.block(b_f, 0, b_p, b), dshare,
                           e.block(b_f, 0, b_p, cw));
            }
            if (b_f > 0) {
              node.fpga_wait();
              node.read_fpga_results("opMM partial product");
            }
          }
          const int dst = owner_of(u, v, p);
          if (dst == me) {
            // This worker owns the block: apply its own opMS share locally.
            obs::PhaseSpan phase("lu", "opMS");
            linalg::matrix_sub(blk(u, v).block(0, c0, b, cw), e.view());
            node.cpu_compute(node::CpuKernel::MemBound,
                             static_cast<double>(b * cw), "opMS");
          } else if (cfg.lookahead) {
            // The E share rides the worker's NIC so its CPU moves straight
            // on to the next task's opMM.
            net::isend_matrix(comm, dst, make_tag(Chan::EShare, t, j),
                              e.view());
          } else {
            net::send_matrix(comm, dst, make_tag(Chan::EShare, t, j),
                             e.view());
          }
        }
      }

      // --- opMS: every rank applies the updates for the blocks it owns
      // (its own worker share, if any, was already applied in place).
      // Deterministic (j, r) order in both schedules; lookahead posts every
      // expected receive up front so later shares stream in while earlier
      // ones are applied.
      struct EShare {
        long long j;
        int r;
        long long c0, c1;
        net::Request req;
      };
      std::vector<EShare> shares;
      for (long long j = 0; j < total; ++j) {
        const auto [u, v] = order[static_cast<std::size_t>(j)];
        if (owner_of(u, v, p) != me) continue;
        for (int r = 0; r < p; ++r) {
          if (r == panel || r == me) continue;
          const int widx = r < panel ? r : r - 1;
          const auto [c0, c1] = worker_columns(b, workers, widx);
          shares.push_back(EShare{j, r, c0, c1, net::Request()});
        }
      }
      if (cfg.lookahead) {
        for (EShare& s : shares) {
          s.req = comm.irecv(s.r, make_tag(Chan::EShare, t, s.j), "opMS");
        }
      }
      for (EShare& s : shares) {
        const auto [u, v] = order[static_cast<std::size_t>(s.j)];
        Matrix e = cfg.lookahead
                       ? net::wait_matrix(s.req)
                       : net::recv_matrix(
                             comm, s.r, make_tag(Chan::EShare, t, s.j),
                             "opMS");
        obs::PhaseSpan phase("lu", "opMS");
        linalg::matrix_sub(blk(u, v).block(0, s.c0, b, s.c1 - s.c0),
                           e.view());
        node.cpu_compute(node::CpuKernel::MemBound,
                         static_cast<double>(b * (s.c1 - s.c0)), "opMS");
      }
      // Lookahead drops the per-iteration barrier: message tags carry the
      // iteration, so ranks are free to run ahead into t+1 as soon as their
      // own opMS updates have landed.
      if (!cfg.lookahead) comm.barrier();
    }

    // Record simulated stats before the (untimed) gather.
    RankStats& st = stats[static_cast<std::size_t>(me)];
    st.finish = comm.clock().now();
    st.cpu_busy = node.cpu_busy_total();
    st.fpga_busy = node.fpga_busy_total();
    st.cpu_flops = node.cpu_flops_total();
    st.fpga_flops = node.fpga_flops_total();
    st.bytes_sent = comm.bytes_sent();
    st.coordination = node.coordination_events();
    st.overlap = comm.overlap_stats();

    // Gather the factored blocks at rank 0.
    obs::PhaseSpan phase("lu", "gather");
    if (me == 0) {
      for (long long u = 0; u < nb; ++u) {
        for (long long v = 0; v < nb; ++v) {
          const int o = owner_of(u, v, p);
          Matrix block = o == 0
                             ? std::move(blk(u, v))
                             : net::recv_matrix(
                                   comm, o, make_tag(Chan::Gather, 0,
                                                     u * nb + v));
          linalg::copy(block.view(), factored.block(u * b, v * b, b, b));
        }
      }
    } else {
      for (auto& [key, block] : blocks) {
        net::send_matrix(comm, 0, make_tag(Chan::Gather, 0,
                                           key.first * nb + key.second),
                         block.view());
      }
    }
  });

  if (trace != nullptr) {
    for (auto& rt : rank_traces) trace->merge_from(std::move(rt));
  }
  if (message_log != nullptr) *message_log = world.message_log();

  LuFunctionalResult res;
  res.factored = std::move(factored);
  res.partition = part;
  res.l = l;
  res.run.design = std::string("LU/") + to_string(cfg.mode) + "/functional" +
                   (cfg.lookahead ? "+lookahead" : "");
  for (const RankStats& st : stats) {
    res.run.seconds = std::max(res.run.seconds, st.finish);
    res.run.cpu_busy_seconds += st.cpu_busy;
    res.run.fpga_busy_seconds += st.fpga_busy;
    res.run.cpu_flops += st.cpu_flops;
    res.run.fpga_flops += st.fpga_flops;
    res.run.bytes_on_network += st.bytes_sent;
    res.run.coordination_events += st.coordination;
    for (const auto& [ph, os] : st.overlap) res.overlap[ph] += os;
  }
  res.run.total_flops = res.run.cpu_flops + res.run.fpga_flops;
  return res;
}

}  // namespace rcs::core
