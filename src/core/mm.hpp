#pragma once
// Hybrid matrix multiplication — the design of Zhuo & Prasanna, "Scalable
// Hybrid Designs for Linear Algebra on Reconfigurable Computing Systems"
// (ICPADS 2006 — reference [22]), which this paper's opMM machinery extends.
// Kept as a standalone third application: it is the simplest end-to-end
// exercise of the design model (one task type, splittable, no panel chain).
//
//   * p == 1 — the single-node hybrid multiply: the node's FPGA computes
//     b_f rows of each block product while the processor computes b_p rows,
//     streaming stripes per Eq. 1.
//   * p >= 2 — the distributed form of §5.1: node 0 hosts A and B and
//     streams block stripes; the other p-1 nodes each compute a column
//     share of every block product and return it.
//
// C = A x B for n x n matrices tiled into b x b blocks: (n/b)^3 block
// multiply-accumulate tasks, numerically bit-identical to the host gemm.

#include "core/design.hpp"
#include "core/partition.hpp"
#include "core/system.hpp"
#include "linalg/matrix.hpp"
#include "sim/trace.hpp"

namespace rcs::core {

/// Configuration of one matrix-multiplication run.
struct MmConfig {
  long long n = 0;   // matrix dimension (b must divide n)
  long long b = -1;  // block size; -1 = single block (b = n)
  DesignMode mode = DesignMode::Hybrid;
  long long b_f = -1;  // -1 = solve per mode
  SendFanout fanout = SendFanout::SerialAll;
};

/// Analytic run outcome (paper-scale).
struct MmAnalyticReport {
  RunReport run;
  MmPartition partition;
};

/// Simulate the configured multiply on `sys` without data.
MmAnalyticReport mm_analytic(const SystemParams& sys, const MmConfig& cfg);

/// Functional run outcome.
struct MmFunctionalResult {
  linalg::Matrix c;  // the product, gathered at rank 0
  RunReport run;
  MmPartition partition;
};

/// Compute C = A x B on real data over MiniMPI (or locally when p == 1).
/// The result is bit-identical to linalg::gemm on the same operands.
MmFunctionalResult mm_functional(const SystemParams& sys, const MmConfig& cfg,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& b,
                                 bool use_soft_fp = false,
                                 sim::TraceRecorder* trace = nullptr);

}  // namespace rcs::core
