#include "core/fw_functional.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fpga/fw_kernel.hpp"
#include "graph/floyd_warshall.hpp"
#include "net/matrix_channel.hpp"
#include "node/compute_node.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"

namespace rcs::core {

namespace {

using linalg::Matrix;

enum class Chan : int { Dtt = 1, Op22 = 2, Gather = 3 };

int make_tag(Chan chan, long long t, long long w) {
  RCS_CHECK_MSG(t < (1 << 9) && w < (1 << 18), "tag space exceeded");
  return static_cast<int>((t << 21) | (w << 3) | static_cast<long long>(chan));
}

struct RankStats {
  sim::SimTime finish = 0.0;
  double cpu_busy = 0.0;
  double fpga_busy = 0.0;
  double cpu_flops = 0.0;
  double fpga_flops = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t coordination = 0;
  std::map<std::string, net::OverlapStats> overlap;
  sim::FaultStats faults;
};

/// One block task of a wave: target = min(target, a (min-plus) b), plus its
/// timing charge, assignable to either side. Holding the operand spans
/// (rather than opaque closures) lets the DMR check re-run a task from its
/// snapshot and lets injection corrupt exactly the FPGA-assigned results.
/// Aliasing is whole-block or none: op21 aliases b with target, op22
/// aliases a with target, op3 is disjoint.
struct BlockTask {
  Span2D<double> target;
  Span2D<const double> a;
  Span2D<const double> b;
  const char* label;
  std::uint64_t fpga_call = 0;  // rank-local FPGA ordinal (fault key)
};

/// Operand remap for the DMR re-run: an operand that aliases the task's
/// target must read the snapshot-seeded check block instead (the target may
/// already be corrupted by injection).
Span2D<const double> dmr_operand(Span2D<const double> s, Span2D<double> target,
                                 const Matrix& check) {
  return s.data() == target.data() ? check.view() : s;
}

}  // namespace

FwFunctionalResult fw_functional(const SystemParams& sys, const FwConfig& cfg,
                                 const Matrix& d0, bool use_soft_fp,
                                 sim::TraceRecorder* trace,
                                 std::vector<net::MessageEvent>* message_log) {
  RCS_CHECK_MSG(cfg.n > 0 && cfg.b > 0, "n and b must be positive");
  RCS_CHECK_MSG(cfg.n % (cfg.b * sys.p) == 0, "FW layout needs b*p | n");
  RCS_CHECK_MSG(d0.rows() == static_cast<std::size_t>(cfg.n) &&
                    d0.cols() == static_cast<std::size_t>(cfg.n),
                "input matrix shape mismatch");

  const long long n = cfg.n;
  const long long b = cfg.b;
  const long long nb = n / b;
  const int p = sys.p;
  const long long cols_per_rank = nb / p;  // L: block-columns per rank

  // Resolve the per-phase split exactly like the analytic plane.
  long long l1 = cfg.l1;
  if (l1 < 0) {
    switch (cfg.mode) {
      case DesignMode::Hybrid:
        l1 = solve_fw_partition(sys, n, b).l1;
        break;
      case DesignMode::ProcessorOnly: l1 = cols_per_rank; break;
      case DesignMode::FpgaOnly: l1 = 0; break;
    }
  }
  const FwPartition part = fw_partition_at(sys, n, b, l1);

  const fpga::FwKernel kernel(sys.fw_fpga);
  kernel.require_fits(b);

  // Fault injection/tolerance switches (see FwConfig): an empty plan is the
  // fault-free path, and DMR only engages on FPGA-assigned wave tasks.
  const sim::FaultPlan* plan =
      cfg.faults != nullptr && !cfg.faults->empty() ? cfg.faults : nullptr;
  const bool inject = plan != nullptr && plan->bitflip_count() > 0;
  const bool dmr = cfg.fault_tolerance;
  const double task_flops = 2.0 * static_cast<double>(b) *
                            static_cast<double>(b) * static_cast<double>(b);
  const double task_cycles = static_cast<double>(kernel.cycles(b));
  const std::uint64_t task_bytes = kernel.input_bytes(b);

  // Spawn the shared compute pool before the rank threads exist, so every
  // rank's kernels land on one process-wide worker set (no p-fold thread
  // oversubscription) and never race the pool's lazy construction.
  common::ThreadPool::global();

  net::World world(p, sys.network);
  world.set_message_logging(message_log != nullptr);
  world.set_fault_plan(plan);
  world.set_max_workers(cfg.max_workers);
  std::vector<RankStats> stats(static_cast<std::size_t>(p));
  std::vector<sim::TraceRecorder> rank_traces(
      static_cast<std::size_t>(p),
      sim::TraceRecorder(trace != nullptr && trace->enabled()));
  Matrix distances(n, n);

  world.run([&](net::Comm& comm) {
    const int me = comm.rank();
    comm.set_trace(&rank_traces[static_cast<std::size_t>(me)]);
    node::ComputeNode node(sys.node_params_fw(), comm.clock(),
                           &rank_traces[static_cast<std::size_t>(me)],
                           "node" + std::to_string(me));
    sim::FaultStats& fstats = stats[static_cast<std::size_t>(me)].faults;
    node.set_faults(plan, me, &fstats);
    std::uint64_t fpga_calls = 0;  // rank-local FPGA wave-task ordinal

    // Local storage: this rank's block-columns, densely packed.
    const long long col0 = me * cols_per_rank;  // first owned block-column
    Matrix local(n, cols_per_rank * b);
    linalg::copy(d0.block(0, col0 * b, n, cols_per_rank * b), local.view());
    auto lblk = [&](long long q, long long c) {
      RCS_DASSERT(c >= col0 && c < col0 + cols_per_rank);
      return local.block(q * b, (c - col0) * b, b, b);
    };

    // Run a wave of block tasks with the l1 : l2 split. FPGA-assigned tasks
    // stream first (the FPGA pipelines behind the DRAM stream), then the
    // CPU-assigned tasks run; fpga_wait() closes the §4.4 handshake.
    //
    // Wall-clock: the virtual-clock charges are applied serially in exactly
    // the schedule order above (so simulated seconds are byte-identical to
    // the single-threaded runtime), and then the functional block updates —
    // which touch pairwise-disjoint blocks within one wave — fan out on the
    // shared common::ThreadPool.
    auto run_wave = [&](std::vector<BlockTask>& tasks) {
      const long long total = static_cast<long long>(tasks.size());
      const long long on_fpga = std::min<long long>(part.l2, total);
      // The tail of `tasks` goes to the FPGA (op22, pushed first, stays on
      // the CPU whenever it has a slot). Stream the FPGA tasks first so the
      // array pipelines behind the DRAM stream while the CPU then runs its
      // own tasks — the overlap structure of §5.2.
      for (long long i = total - on_fpga; i < total; ++i) {
        auto& task = tasks[static_cast<std::size_t>(i)];
        task.fpga_call = fpga_calls++;
        node.dram_to_fpga(task_bytes);
        node.fpga_submit(task_cycles, task.label);
        node.note_fpga_flops(task_flops);
      }
      for (long long i = 0; i < total - on_fpga; ++i) {
        auto& task = tasks[static_cast<std::size_t>(i)];
        node.cpu_compute(node::CpuKernel::FwBlock, task_flops, task.label);
      }
      if (on_fpga > 0) {
        node.fpga_wait();
        node.read_fpga_results("fw wave results");
      }
      // Per-task fault outcomes, filled inside the parallel region and
      // folded into the stats serially below (in task order, so the
      // accounting is deterministic at any RCS_THREADS).
      std::vector<unsigned char> flipped(tasks.size(), 0);
      std::vector<unsigned char> repaired(tasks.size(), 0);
      common::parallel_for(
          0, static_cast<std::size_t>(total), 1,
          [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
              // task.label is a string literal ("op21"/"op22"/"op3"), so it
              // satisfies PhaseSpan's static-lifetime requirement.
              obs::PhaseSpan phase("fw", tasks[i].label);
              BlockTask& task = tasks[i];
              const bool fpga_task =
                  static_cast<long long>(i) >= total - on_fpga;
              // DMR: snapshot the pre-image before computing; min-plus has
              // no subtraction to hang a checksum on, so the check re-runs
              // the task from the snapshot and compares bitwise.
              Matrix check;
              if (fpga_task && dmr) check = Matrix::from_view(task.target);
              if (fpga_task && use_soft_fp) {
                kernel.run_block_soft(task.target, task.a, task.b);
              } else {
                graph::fw_block(task.target, task.a, task.b);
              }
              if (fpga_task && inject) {
                if (const sim::BitFlip* f =
                        plan->flip_for(me, task.fpga_call)) {
                  sim::apply_bitflip(*f, task.target);
                  flipped[i] = 1;
                }
              }
              if (fpga_task && dmr) {
                const auto a = dmr_operand(task.a, task.target, check);
                const auto bb = dmr_operand(task.b, task.target, check);
                if (use_soft_fp) {
                  kernel.run_block_soft(check.view(), a, bb);
                } else {
                  graph::fw_block(check.view(), a, bb);
                }
                if (!linalg::bit_equal(check.view(), task.target)) {
                  linalg::copy(check.view(), task.target);
                  repaired[i] = 1;
                }
              }
            }
          });
      for (long long i = total - on_fpga; i < total; ++i) {
        if (flipped[static_cast<std::size_t>(i)] != 0) {
          fstats.bitflips_injected += 1;
          sim::note_bitflip_injected();
        }
      }
      if (dmr && on_fpga > 0) {
        // Timing: the CPU re-solves every FPGA task once the wave lands;
        // a mismatch additionally pays the copy-back repair.
        const sim::SimTime check_start = comm.clock().now();
        for (long long i = total - on_fpga; i < total; ++i) {
          obs::PhaseSpan phase("fw", "dmr");
          fstats.checks += 1;
          node.cpu_compute(node::CpuKernel::FwBlock, task_flops, "dmr");
          if (repaired[static_cast<std::size_t>(i)] != 0) {
            const sim::SimTime repair_start = comm.clock().now();
            fstats.detected += 1;
            sim::note_fault_detected();
            node.cpu_compute(node::CpuKernel::MemBound,
                             static_cast<double>(b * b), "dmr.repair");
            fstats.reissued_blocks += 1;
            const sim::SimTime mttr = comm.clock().now() - repair_start;
            fstats.mttr_s.push_back(mttr);
            sim::note_fault_recovered(mttr);
          }
        }
        fstats.recovery_cpu_s += comm.clock().now() - check_start;
      }
      tasks.clear();
    };

    // Lookahead: the receive for iteration t+1's D_tt is posted while
    // iteration t's waves still compute, so the next pivot block streams in
    // behind the current trailing update.
    net::Request dtt_req;

    for (long long t = 0; t < nb; ++t) {
      const int owner = static_cast<int>(t / cols_per_rank);

      // Phase 0: op1 on the owner, then broadcast of D_tt.
      Matrix dtt;
      if (me == owner) {
        {
          obs::PhaseSpan phase("fw", "op1");
          if (cfg.mode == DesignMode::FpgaOnly) {
            node.dram_to_fpga(task_bytes);
            node.fpga_submit(task_cycles, "op1");
            node.note_fpga_flops(task_flops);
            if (use_soft_fp) {
              kernel.run_block_soft(lblk(t, t), lblk(t, t), lblk(t, t));
            } else {
              kernel.run_block(lblk(t, t), lblk(t, t), lblk(t, t));
            }
            node.fpga_wait();
          } else {
            graph::fw_block(lblk(t, t), lblk(t, t), lblk(t, t));
            node.cpu_compute(node::CpuKernel::FwBlock, task_flops, "op1");
          }
        }
        dtt = Matrix::from_view(lblk(t, t));
        for (int r = 0; r < p; ++r) {
          if (r == owner) continue;
          if (cfg.lookahead) {
            // NIC fan-out: the owner's CPU pays setup only and moves on to
            // its op21/op22 wave while the RapidArray engines serialize.
            net::isend_matrix(comm, r, make_tag(Chan::Dtt, t, 0), dtt.view());
          } else {
            net::send_matrix(comm, r, make_tag(Chan::Dtt, t, 0), dtt.view());
          }
        }
      } else if (cfg.lookahead && dtt_req.valid()) {
        dtt = net::wait_matrix(dtt_req);
      } else {
        dtt = net::recv_matrix(comm, owner, make_tag(Chan::Dtt, t, 0),
                               "op21");
      }
      // Prefetch the next iteration's pivot diagonal: posting is free, and
      // by the time this iteration's waves finish the block is usually
      // already in flight (or delivered).
      if (cfg.lookahead && t + 1 < nb) {
        const int next_owner = static_cast<int>((t + 1) / cols_per_rank);
        if (me != next_owner) {
          dtt_req = comm.irecv(next_owner, make_tag(Chan::Dtt, t + 1, 0),
                               "op21");
        }
      }

      // Row order of the op3 waves: every q != t, ascending.
      std::vector<long long> q_list;
      q_list.reserve(static_cast<std::size_t>(nb - 1));
      for (long long q = 0; q < nb; ++q) {
        if (q != t) q_list.push_back(q);
      }

      // Wave 0: op21 on this rank's row-t blocks; the owner additionally
      // computes the first op22 (kept on the CPU side of the split).
      std::vector<BlockTask> tasks;
      if (me == owner && !q_list.empty()) {
        const long long q0 = q_list.front();
        tasks.push_back(BlockTask{lblk(q0, t), lblk(q0, t), dtt.view(),
                                  "op22"});
      }
      for (long long c = col0; c < col0 + cols_per_rank; ++c) {
        if (c == t) continue;
        tasks.push_back(BlockTask{lblk(t, c), dtt.view(), lblk(t, c),
                                  "op21"});
      }
      // Lookahead: post the receive for wave 0's pivot block before the
      // op21 wave computes, so the owner's broadcast streams in behind it.
      net::Request dqt_req;
      if (cfg.lookahead && me != owner && !q_list.empty()) {
        dqt_req = comm.irecv(owner, make_tag(Chan::Op22, t, 0), "op3");
      }
      run_wave(tasks);
      if (me == owner && !q_list.empty()) {
        for (int r = 0; r < p; ++r) {
          if (r == owner) continue;
          if (cfg.lookahead) {
            net::isend_matrix(comm, r, make_tag(Chan::Op22, t, 0),
                              lblk(q_list.front(), t));
          } else {
            net::send_matrix(comm, r, make_tag(Chan::Op22, t, 0),
                             lblk(q_list.front(), t));
          }
        }
      }

      // Waves 1..nb-1: op3 on row q_w; the owner folds the next op22 into
      // its wave and broadcasts it afterwards.
      for (std::size_t w = 0; w < q_list.size(); ++w) {
        const long long q = q_list[w];
        Matrix dqt;
        if (me == owner) {
          dqt = Matrix::from_view(lblk(q, t));
        } else if (cfg.lookahead) {
          dqt = net::wait_matrix(dqt_req);
          // Double-buffer: wave w+1's pivot block transfers while wave w's
          // op3 tasks compute below.
          if (w + 1 < q_list.size()) {
            dqt_req = comm.irecv(owner,
                                 make_tag(Chan::Op22, t,
                                          static_cast<long long>(w + 1)),
                                 "op3");
          }
        } else {
          dqt = net::recv_matrix(comm, owner,
                                 make_tag(Chan::Op22, t,
                                          static_cast<long long>(w)),
                                 "op3");
        }
        if (me == owner && w + 1 < q_list.size()) {
          const long long qn = q_list[w + 1];
          tasks.push_back(BlockTask{lblk(qn, t), lblk(qn, t), dtt.view(),
                                    "op22"});
        }
        // dqt must outlive the task spans: keep it alive for the wave.
        for (long long c = col0; c < col0 + cols_per_rank; ++c) {
          if (c == t) continue;
          tasks.push_back(BlockTask{lblk(q, c), dqt.view(), lblk(t, c),
                                    "op3"});
        }
        run_wave(tasks);
        if (me == owner && w + 1 < q_list.size()) {
          for (int r = 0; r < p; ++r) {
            if (r == owner) continue;
            if (cfg.lookahead) {
              net::isend_matrix(comm, r,
                                make_tag(Chan::Op22, t,
                                         static_cast<long long>(w + 1)),
                                lblk(q_list[w + 1], t));
            } else {
              net::send_matrix(comm, r,
                               make_tag(Chan::Op22, t,
                                        static_cast<long long>(w + 1)),
                               lblk(q_list[w + 1], t));
            }
          }
        }
      }
      // The barrier only serializes the blocking schedule; under lookahead
      // the iteration-t tags keep cross-iteration messages apart and each
      // rank's own data dependencies order its work.
      if (!cfg.lookahead) comm.barrier();
    }

    // Stop comm tracing so the untimed gather stays out of the analyzed
    // timeline.
    comm.set_trace(nullptr);
    RankStats& st = stats[static_cast<std::size_t>(me)];
    st.finish = comm.clock().now();
    st.cpu_busy = node.cpu_busy_total();
    st.fpga_busy = node.fpga_busy_total();
    st.cpu_flops = node.cpu_flops_total();
    st.fpga_flops = node.fpga_flops_total();
    st.bytes_sent = comm.bytes_sent();
    st.coordination = node.coordination_events();
    st.overlap = comm.overlap_stats();
    st.faults += comm.fault_stats();  // link/crash side of the plan

    // Untimed gather of the block-columns at rank 0.
    obs::PhaseSpan phase("fw", "gather");
    if (me == 0) {
      linalg::copy(local.view(), distances.block(0, 0, n, cols_per_rank * b));
      for (int r = 1; r < p; ++r) {
        Matrix cols = net::recv_matrix(comm, r, make_tag(Chan::Gather, 0, r));
        linalg::copy(cols.view(),
                     distances.block(0, r * cols_per_rank * b, n,
                                     cols_per_rank * b));
      }
    } else {
      net::send_matrix(comm, 0, make_tag(Chan::Gather, 0, me), local.view());
    }
  });

  if (trace != nullptr) {
    for (auto& rt : rank_traces) trace->merge_from(std::move(rt));
  }
  if (message_log != nullptr) *message_log = world.message_log();

  FwFunctionalResult res;
  res.distances = std::move(distances);
  res.partition = part;
  res.run.design = std::string("FW/") + to_string(cfg.mode) + "/functional" +
                   (cfg.lookahead ? "+lookahead" : "");
  for (const RankStats& st : stats) {
    res.run.seconds = std::max(res.run.seconds, st.finish);
    res.run.cpu_busy_seconds += st.cpu_busy;
    res.run.fpga_busy_seconds += st.fpga_busy;
    res.run.cpu_flops += st.cpu_flops;
    res.run.fpga_flops += st.fpga_flops;
    res.run.bytes_on_network += st.bytes_sent;
    res.run.coordination_events += st.coordination;
    for (const auto& [ph, os] : st.overlap) res.overlap[ph] += os;
    res.faults += st.faults;
  }
  res.run.total_flops = res.run.cpu_flops + res.run.fpga_flops;
  return res;
}

}  // namespace rcs::core
