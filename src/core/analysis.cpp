#include "core/analysis.hpp"

#include <cstdlib>

namespace rcs::core {

namespace {

using obs::cp::Bucket;
using obs::cp::Interval;
using obs::cp::Op;
using obs::cp::Timeline;
using obs::cp::Wire;

/// Phase labels charged to fault detection/repair/reissue work.
bool is_recovery_label(const std::string& label) {
  return label == "abft" || label == "abft.repair" ||
         label == "straggler.reissue" || label == "dmr" ||
         label == "dmr.repair";
}

/// Parse "node<r>.<unit>" into (rank, unit). Returns false for resources
/// that do not follow the convention.
bool parse_resource(const std::string& resource, int* rank,
                    std::string* unit) {
  if (resource.rfind("node", 0) != 0) return false;
  const std::size_t dot = resource.find('.', 4);
  if (dot == std::string::npos || dot == 4) return false;
  char* end = nullptr;
  const long r = std::strtol(resource.c_str() + 4, &end, 10);
  if (end != resource.c_str() + dot) return false;
  *rank = static_cast<int>(r);
  *unit = resource.substr(dot + 1);
  return true;
}

}  // namespace

Timeline build_cp_timeline(const sim::TraceRecorder& rec, int ranks,
                           double makespan) {
  Timeline tl;
  tl.ranks = ranks;
  tl.makespan = makespan;

  for (const sim::TraceSpan& s : rec.spans()) {
    int rank = -1;
    std::string unit;
    if (!parse_resource(s.resource, &rank, &unit)) continue;
    if (rank < 0 || rank >= ranks) continue;
    if (unit == "fpga") {
      // The device runs concurrently with the CPU timeline: its busy time
      // is a resource, not a slice of the rank's clock.
      tl.concurrent_fpga_s += s.end - s.start;
      continue;
    }
    Interval iv;
    iv.rank = rank;
    iv.start = s.start;
    iv.end = s.end;
    iv.label = s.label;
    if (unit == "cpu") {
      iv.bucket = is_recovery_label(s.label) ? Bucket::FaultRecovery
                                             : Bucket::Cpu;
    } else if (unit == "dram") {
      iv.bucket = Bucket::TransferVisible;
    } else if (unit == "fpga_wait") {
      iv.bucket = Bucket::Fpga;
    } else {
      continue;
    }
    tl.intervals.push_back(std::move(iv));
  }

  for (const sim::CommEvent& ev : rec.comm_events()) {
    if (ev.rank < 0 || ev.rank >= ranks) continue;
    const bool is_recv = ev.kind == sim::CommEvent::Kind::Recv;
    if (!is_recv) {
      tl.wires.push_back(
          Wire{ev.rank, ev.peer, ev.depart, ev.arrival, ev.bytes});
    }
    // Zero-length send setups carry no information; zero-length receives do
    // (they hold the wire interval of a fully hidden transfer).
    if (!is_recv && ev.t1 <= ev.t0) continue;
    Interval iv;
    iv.rank = ev.rank;
    iv.start = ev.t0;
    iv.end = ev.t1;
    iv.bucket = Bucket::TransferVisible;
    iv.op = is_recv ? Op::Recv : Op::Send;
    iv.label = ev.phase;
    iv.peer = ev.peer;
    iv.depart = ev.depart;
    iv.arrival = ev.arrival;
    tl.intervals.push_back(std::move(iv));
  }
  return tl;
}

obs::cp::Analysis analyze_run(const sim::TraceRecorder& rec, int ranks,
                              double makespan) {
  return obs::cp::analyze(build_cp_timeline(rec, ranks, makespan));
}

}  // namespace rcs::core
