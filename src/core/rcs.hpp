#pragma once
// Umbrella header: the full public API of the rcs-codesign library.
//
// Quick tour:
//   core/system.hpp        — SystemParams + machine presets (Cray XD1, ...)
//   core/partition.hpp     — Eq. 1/2/4/5/6 workload-partition solvers
//   core/predict.hpp       — the §4.5 performance predictor
//   core/lu_analytic.hpp   — paper-scale LU schedule simulator
//   core/fw_analytic.hpp   — paper-scale Floyd–Warshall schedule simulator
//   core/lu_functional.hpp — real-data distributed LU over MiniMPI
//   core/fw_functional.hpp — real-data distributed FW over MiniMPI
//   plus the substrates: linalg/, graph/, fpga/, node/, net/, sim/,
//   fparith/ and common/.

#include "core/cholesky.hpp"
#include "core/design.hpp"
#include "core/fw_analytic.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_analytic.hpp"
#include "core/lu_functional.hpp"
#include "core/mm.hpp"
#include "core/partition.hpp"
#include "core/predict.hpp"
#include "core/system.hpp"
#include "fparith/backend.hpp"
#include "fparith/ieee754.hpp"
#include "fpga/device.hpp"
#include "fpga/fw_kernel.hpp"
#include "fpga/matmul_array.hpp"
#include "fpga/resources.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/generate.hpp"
#include "graph/transitive_closure.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"
#include "linalg/io.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/sparse.hpp"
#include "net/contention.hpp"
#include "net/matrix_channel.hpp"
#include "net/minimpi.hpp"
#include "node/compute_node.hpp"
#include "node/gpp.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
