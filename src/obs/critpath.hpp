#pragma once
// Critical-path analysis and makespan attribution over a simulated run.
//
// The paper's bound T = max(T_tp, T_tf) says what the makespan should be;
// this analyzer says why the measured makespan is what it is. Input is a
// Timeline: every clock-occupying interval on every rank (compute spans,
// exposed FPGA waits, transfer serialization and stalls) plus the wire
// intervals of every message. Output is an Analysis:
//
//   * per-rank attribution — the interval [0, makespan] of each rank
//     partitioned into buckets (CPU compute, exposed FPGA time, visible
//     transfer, fault recovery, wait/idle) that sum to the makespan, plus a
//     hidden-transfer overlay (wire seconds that elapsed behind the rank's
//     own compute — overlapped, so not part of the partition);
//   * per-phase attribution — the same buckets keyed by phase label,
//     summed across ranks;
//   * the critical path — a backward walk from the makespan-defining finish
//     along binding constraints (last interval to end; a receive whose
//     clock was bound by a message arrival jumps over the wire to the
//     sender at its departure time; NIC-serialized sends chain through the
//     sender's wire log), yielding a chronological chain of segments whose
//     non-idle length is the critical-path time;
//   * cluster rollups — per-rank utilization, max-over-mean imbalance,
//     Jain fairness, top-k critical-path segments;
//   * structural invariants — critical path <= makespan <= total
//     resource-seconds, and per-rank buckets summing to the makespan —
//     checked here and re-checked by bench/perf_gate on every artifact.
//
// This header is pure data + algorithm: obs stays dependency-free, so the
// conversion from sim::TraceRecorder / MiniMPI lives in core (analysis.cpp).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcs::obs::cp {

/// Attribution buckets partitioning a rank's timeline.
enum class Bucket {
  Cpu,              // CPU compute (kernel flops)
  Fpga,             // exposed FPGA time (CPU blocked in fpga_wait)
  TransferVisible,  // data movement the clock had to wait for
  FaultRecovery,    // detection/repair/reissue work
  WaitIdle,         // derived: gaps + idle tail (never set on an Interval)
};

/// What kind of operation produced an interval — receives are special on
/// the critical-path walk (arrival-bound receives jump to the sender).
enum class Op { Compute, Send, Recv };

/// One clock-occupying interval on a rank's timeline. Intervals on one rank
/// must not overlap (they are [clock-before, clock-after] of sequential
/// operations). Zero-length Recv intervals are meaningful: they carry the
/// wire interval of a fully hidden transfer.
struct Interval {
  int rank = -1;
  double start = 0.0;
  double end = 0.0;
  Bucket bucket = Bucket::Cpu;
  Op op = Op::Compute;
  std::string label;      // phase name ("opMM", "barrier", "send", ...)
  int peer = -1;          // message peer for transfer intervals
  double depart = -1.0;   // wire interval (transfer intervals only)
  double arrival = -1.0;
};

/// One message transfer on the src->dst link.
struct Wire {
  int src = -1;
  int dst = -1;
  double depart = 0.0;
  double arrival = 0.0;
  std::uint64_t bytes = 0;
};

/// Everything the analyzer needs about one run.
struct Timeline {
  int ranks = 0;
  double makespan = 0.0;
  std::vector<Interval> intervals;
  std::vector<Wire> wires;
  /// Resource-busy seconds that run concurrently with the rank timelines
  /// (the FPGA pipelines' true busy time); added into resource_seconds_s.
  double concurrent_fpga_s = 0.0;
};

/// Makespan attribution for one rank: the buckets partition [0, makespan].
struct RankAttribution {
  int rank = 0;
  double finish_s = 0.0;  // end of this rank's last interval
  double cpu_s = 0.0;
  double fpga_s = 0.0;
  double transfer_visible_s = 0.0;
  double fault_recovery_s = 0.0;
  double wait_idle_s = 0.0;
  /// Wire seconds of this rank's receives that elapsed behind its own
  /// compute (overlapped transfer) — an overlay, not part of the partition.
  double transfer_hidden_s = 0.0;

  /// Seconds this rank's CPU/FPGA were occupied (everything but idle).
  double busy_s() const {
    return cpu_s + fpga_s + transfer_visible_s + fault_recovery_s;
  }
  double utilization = 0.0;  // busy_s() / makespan
};

/// Bucket attribution for one phase label, summed across ranks.
struct PhaseAttribution {
  std::string label;
  double cpu_s = 0.0;
  double fpga_s = 0.0;
  double transfer_visible_s = 0.0;
  double transfer_hidden_s = 0.0;
  double fault_recovery_s = 0.0;

  double total_s() const {
    return cpu_s + fpga_s + transfer_visible_s + fault_recovery_s;
  }
};

/// One step of the critical path, in chronological order after the walk.
struct Segment {
  std::string kind;  // "cpu", "fpga", "transfer", "recovery", "wire", "idle"
  int rank = -1;     // resident rank (the sender for "wire" segments)
  int peer = -1;     // receiver for "wire" segments
  std::string label;
  double start = 0.0;
  double end = 0.0;

  double duration() const { return end - start; }
};

/// The full analysis of one run.
struct Analysis {
  int ranks = 0;
  double makespan_s = 0.0;
  /// Non-idle length of the critical-path walk. cp + cp_idle = makespan.
  double critical_path_s = 0.0;
  double cp_idle_s = 0.0;  // unattributable gaps met on the walk
  /// Total resource-seconds consumed: rank busy seconds (the paper's CPU
  /// drives transfers, so visible transfer counts) + concurrent FPGA busy
  /// seconds + wire seconds of every message.
  double resource_seconds_s = 0.0;

  std::vector<RankAttribution> per_rank;       // by rank ascending
  std::vector<PhaseAttribution> per_phase;     // by label ascending
  std::vector<Segment> critical_path;          // chronological

  // Cluster rollups over per-rank busy seconds.
  double mean_utilization = 0.0;
  double imbalance_max_over_mean = 0.0;  // 1.0 = perfectly balanced
  double jain_fairness = 0.0;            // (sum u)^2 / (p * sum u^2); 1 = fair

  // Structural invariants (perf_gate re-checks these on every artifact).
  bool cp_le_makespan = true;
  bool makespan_le_resource_seconds = true;
  bool buckets_sum_to_makespan = true;
  double max_bucket_sum_rel_err = 0.0;  // worst per-rank partition error

  bool invariants_hold() const {
    return cp_le_makespan && makespan_le_resource_seconds &&
           buckets_sum_to_makespan;
  }

  /// The k longest critical-path segments (duration descending; ties by
  /// start then rank, so the order is deterministic).
  std::vector<Segment> top_segments(std::size_t k) const;

  /// JSON object; the opening brace lands where the stream already is,
  /// continuation lines get `indent` spaces. Fixed 9-significant-digit
  /// formatting: byte-identical output for byte-identical analyses.
  void write_json(std::ostream& os, int indent = 0) const;

  /// Human-readable summary (attribution table + top critical-path rows).
  void print(std::ostream& os) const;
};

/// Run the analysis. The timeline's intervals may be in any order; per-rank
/// they must be non-overlapping. Returns an empty Analysis (invariants
/// trivially true) when makespan <= 0 or ranks <= 0.
Analysis analyze(const Timeline& timeline);

}  // namespace rcs::obs::cp
