#pragma once
// Process-wide metrics registry — the telemetry counterpart of the simulated
// RunReport. Instrumented hot paths (thread pool, gemm, MiniMPI, FPGA
// kernels) record into named Counters/Gauges/Histograms; benches and apps
// snapshot the registry and export it as JSON or text.
//
// Cost model: the hot path is one relaxed atomic add per event — no locks,
// no allocation. Call sites resolve metric handles once (function-local
// static references) so the registry's name lookup (mutex + map) is paid a
// single time per site. Recording is gated on metrics_enabled(), a relaxed
// atomic bool initialized from the RCS_METRICS environment variable:
//
//   RCS_METRICS unset / "0"   — disabled (the default)
//   RCS_METRICS=1 | stderr    — enabled; text dump to stderr at exit
//   RCS_METRICS=<path>        — enabled; JSON dump to <path> at exit
//
// This library is dependency-free (not even common/) so every layer —
// including common itself — can link it without cycles.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rcs::obs {

/// Monotonically increasing event/volume count. All operations are
/// relaxed-atomic: totals are exact, ordering with other metrics is not.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (pool size, active ranks, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log-spaced histogram: bucket i counts values in [2^(i-1), 2^i)
/// (bucket 0 takes everything below 1; the last bucket is unbounded above).
/// Units are the caller's — instrumentation here records nanoseconds.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram();

  void record(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Smallest / largest recorded value; 0 while the histogram is empty
  /// (exports must not leak the ±inf tracking sentinels).
  double min() const;
  double max() const;
  std::uint64_t bucket_count(int i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (2^i; +inf for the last bucket).
  static double bucket_upper_bound(int i);

  /// Estimated p-th percentile (0..100) from the log-spaced buckets,
  /// interpolating linearly within the containing bucket.
  double percentile(double p) const;

  void reset();

 private:
  std::atomic<std::uint64_t> counts_[kBuckets]{};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
  // Extrema track via CAS with ±inf sentinels while empty.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One exported histogram bucket: `count` samples at or below `le`
/// (`le` is +inf for the unbounded last bucket — emitted as null in JSON).
struct HistogramBucket {
  double le = 0.0;
  std::uint64_t count = 0;
};

/// Point-in-time copy of one metric, as produced by Registry snapshots.
struct MetricValue {
  enum class Kind { Counter, Gauge, Histogram } kind = Kind::Counter;
  double value = 0.0;          // counter total or gauge value
  std::uint64_t count = 0;     // histogram sample count
  double sum = 0.0;            // histogram sample sum
  double min = 0.0, max = 0.0; // histogram extrema (0 when count == 0)
  double p50 = 0.0, p99 = 0.0; // histogram percentile estimates
  /// Non-empty buckets only (the 64-slot array is mostly zeros).
  std::vector<HistogramBucket> buckets;
};

/// Named metric store. Metric objects live for the process lifetime and
/// their addresses are stable, so call sites can cache references.
class Registry {
 public:
  /// The process-global registry all instrumentation records into.
  static Registry& global();

  /// Get-or-create by name. Throws std::logic_error if the name already
  /// exists with a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered metric (bench harnesses isolate sections).
  void reset();

  /// Copy of all metrics, ordered by name.
  std::map<std::string, MetricValue> snapshot() const;

  /// JSON object {"name": {...}, ...}, keys sorted.
  void write_json(std::ostream& os) const;
  /// Human-readable one-metric-per-line dump.
  void write_text(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// True when instrumentation should record (cheap relaxed load). Initialized
/// from RCS_METRICS on first call; when the variable requests an exit dump,
/// the first call also installs it.
bool metrics_enabled();

/// Programmatic override (benches/tests enable telemetry without the env).
void set_metrics_enabled(bool enabled);

}  // namespace rcs::obs
