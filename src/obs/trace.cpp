#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace rcs::obs {

namespace {

struct Event {
  const char* name;
  const char* cat;
  std::int64_t t0_ns;
  std::int64_t t1_ns;
};

struct ThreadBuffer {
  int tid = 0;
  std::string lane;
  std::vector<Event> events;
};

/// All lanes ever created. Buffers are shared_ptr so a lane outlives its
/// thread (the exporter reads after threads exit; MiniMPI spawns fresh
/// threads per run).
struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives atexit writer
  return *s;
}

std::shared_ptr<ThreadBuffer> register_buffer(const std::string& lane) {
  auto b = std::make_shared<ThreadBuffer>();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  b->tid = s.next_tid++;
  b->lane = lane.empty() ? "thread " + std::to_string(b->tid) : lane;
  s.buffers.push_back(b);
  return b;
}

/// Detached-lane binding installed by set_current_lane (fiber scheduler);
/// empty for ordinary threads, which record into their own default lane.
thread_local std::shared_ptr<ThreadBuffer> tls_bound_lane;

ThreadBuffer& this_thread_buffer() {
  if (tls_bound_lane) return *tls_bound_lane;
  thread_local std::shared_ptr<ThreadBuffer> buf = register_buffer("");
  return *buf;
}

std::atomic<bool> g_trace_enabled{false};

void write_trace_at_exit() {
  const char* env = std::getenv("RCS_TRACE");
  if (env == nullptr || env[0] == '\0') return;
  if (!write_chrome_trace_file(env)) {
    std::fprintf(stderr, "[rcs obs] cannot write RCS_TRACE file %s\n", env);
  }
}

bool init_from_env() {
  state();  // construct (leaked) storage before registering the atexit hook
  const char* env = std::getenv("RCS_TRACE");
  const bool on = env != nullptr && env[0] != '\0';
  if (on) std::atexit(write_trace_at_exit);
  g_trace_enabled.store(on, std::memory_order_relaxed);
  return on;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t epoch_ns() {
  static const std::int64_t epoch = steady_ns();
  return epoch;
}

}  // namespace

bool trace_enabled() {
  static const bool init = init_from_env();
  (void)init;
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  (void)trace_enabled();  // force env init so the flag is not overwritten
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::int64_t trace_now_ns() { return steady_ns() - epoch_ns(); }

void set_thread_lane(const std::string& name) {
  this_thread_buffer().lane = name;
}

Lane make_lane(const std::string& name) { return register_buffer(name); }

Lane current_lane() { return tls_bound_lane; }

void set_current_lane(const Lane& lane) {
  tls_bound_lane = std::static_pointer_cast<ThreadBuffer>(lane);
}

void record_span(const char* name, const char* category, std::int64_t t0_ns,
                 std::int64_t t1_ns) {
  if (!trace_enabled()) return;
  this_thread_buffer().events.push_back(Event{name, category, t0_ns, t1_ns});
}

PhaseSpan::PhaseSpan(const char* category, const char* name)
    : name_(name), cat_(category) {
  trace_ = trace_enabled();
  if (metrics_enabled()) {
    wall_ns_ = &Registry::global().counter(std::string(category) + ".wall." +
                                          name + "_ns");
  }
  if (trace_ || wall_ns_ != nullptr) t0_ = trace_now_ns();
}

PhaseSpan::~PhaseSpan() {
  if (!trace_ && wall_ns_ == nullptr) return;
  const std::int64_t t1 = trace_now_ns();
  if (trace_) record_span(name_, cat_, t0_, t1);
  if (wall_ns_ != nullptr && t1 > t0_) {
    wall_ns_->add(static_cast<std::uint64_t>(t1 - t0_));
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os) {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Strings are streamed (never through a fixed buffer — a long lane or
  // span name must not truncate mid-escape into invalid JSON); only the
  // numeric fields go through snprintf.
  char num[64];
  for (const auto& b : buffers) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << b->tid << ", \"args\": {\"name\": \"" << json_escape(b->lane)
       << "\"}}";
  }
  for (const auto& b : buffers) {
    for (const Event& e : b->events) {
      sep();
      std::snprintf(num, sizeof(num), "%.3f",
                    static_cast<double>(e.t0_ns) / 1e3);
      os << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
         << json_escape(e.cat) << "\", \"ph\": \"X\", \"ts\": " << num;
      std::snprintf(num, sizeof(num), "%.3f",
                    static_cast<double>(e.t1_ns - e.t0_ns) / 1e3);
      os << ", \"dur\": " << num << ", \"pid\": 1, \"tid\": " << b->tid
         << '}';
    }
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return true;
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& b : s.buffers) b->events.clear();
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& b : s.buffers) n += b->events.size();
  return n;
}

}  // namespace rcs::obs
