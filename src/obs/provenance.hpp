#pragma once
// Build/run provenance stamped into benchmark artifacts (BENCH_perf.json)
// so points on the perf trajectory are comparable: a regression is only a
// regression if the compiler, build type, and machine match.

#include <iosfwd>
#include <string>

namespace rcs::obs {

struct Provenance {
  std::string git_sha;      // configure-time git rev (RCS_GIT_SHA define)
  std::string compiler;     // "gcc 13.2.0" / "clang 17.0.1 ..."
  std::string build_type;   // CMAKE_BUILD_TYPE of this binary
  std::string hostname;     // gethostname()
  std::string rcs_threads;  // $RCS_THREADS as seen at collect() ("" = unset)

  /// Gather all fields for the running process.
  static Provenance collect();

  /// JSON object. The opening brace lands where the stream already is (so
  /// the object can follow a key); continuation lines get `indent` spaces.
  void write_json(std::ostream& os, int indent = 0) const;
};

}  // namespace rcs::obs
