#pragma once
// Build/run provenance stamped into benchmark artifacts (BENCH_perf.json)
// so points on the perf trajectory are comparable: a regression is only a
// regression if the compiler, build type, machine, and kernel dispatch
// path match.

#include <iosfwd>
#include <string>

namespace rcs::obs {

struct Provenance {
  std::string git_sha;      // build-time git rev (regenerated every build)
  bool git_dirty = false;   // working tree had uncommitted changes at build
  std::string compiler;     // "gcc 13.2.0" / "clang 17.0.1 ..."
  std::string build_type;   // CMAKE_BUILD_TYPE of this binary
  std::string hostname;     // gethostname()
  unsigned hw_cores = 0;    // std::thread::hardware_concurrency (0 = unknown)
  std::string rcs_threads;  // $RCS_THREADS as seen at collect() ("" = unset)
  std::string simd;         // resolved SIMD dispatch path (set_simd_path)

  /// Gather all fields for the running process.
  static Provenance collect();

  /// JSON object. The opening brace lands where the stream already is (so
  /// the object can follow a key); continuation lines get `indent` spaces.
  void write_json(std::ostream& os, int indent = 0) const;
};

/// Record the kernel dispatch path chosen at startup (e.g. "avx2"). Called
/// by the linalg SIMD dispatcher; obs stays dependency-free, so the value
/// is pushed in rather than queried. Until something calls this, collect()
/// reports "unresolved" (meaning: no SIMD-dispatched kernel ran yet).
void set_simd_path(const char* name);

}  // namespace rcs::obs
