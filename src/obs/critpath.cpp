#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>

#include "obs/trace.hpp"

namespace rcs::obs::cp {

namespace {

const char* kind_of(const Interval& iv) {
  switch (iv.bucket) {
    case Bucket::Cpu: return "cpu";
    case Bucket::Fpga: return "fpga";
    case Bucket::TransferVisible: return "transfer";
    case Bucket::FaultRecovery: return "recovery";
    case Bucket::WaitIdle: return "idle";
  }
  return "cpu";
}

double& bucket_slot(RankAttribution& a, Bucket b) {
  switch (b) {
    case Bucket::Cpu: return a.cpu_s;
    case Bucket::Fpga: return a.fpga_s;
    case Bucket::TransferVisible: return a.transfer_visible_s;
    case Bucket::FaultRecovery: return a.fault_recovery_s;
    case Bucket::WaitIdle: return a.wait_idle_s;
  }
  return a.cpu_s;
}

double& bucket_slot(PhaseAttribution& a, Bucket b) {
  switch (b) {
    case Bucket::Cpu: return a.cpu_s;
    case Bucket::Fpga: return a.fpga_s;
    case Bucket::TransferVisible: return a.transfer_visible_s;
    case Bucket::FaultRecovery: return a.fault_recovery_s;
    case Bucket::WaitIdle: return a.transfer_visible_s;  // unreachable
  }
  return a.cpu_s;
}

/// Wire seconds of a receive that elapsed behind the receiver's own clock
/// before the wait began — the same accounting as net::OverlapStats.
double hidden_of(const Interval& iv) {
  const double total = std::max(0.0, iv.arrival - iv.depart);
  const double visible =
      std::min(total, std::max(0.0, iv.arrival - iv.start));
  return total - visible;
}

struct Walker {
  const Timeline& tl;
  double eps;
  // Per-rank intervals sorted by start (ends are monotone too: intervals on
  // one rank never overlap). Per-rank outgoing wires sorted by arrival.
  std::vector<std::vector<const Interval*>> by_rank;
  std::vector<std::vector<const Wire*>> wires_from;
  std::vector<Segment> path;  // built backwards, reversed at the end

  explicit Walker(const Timeline& timeline, double epsilon)
      : tl(timeline), eps(epsilon) {
    by_rank.resize(static_cast<std::size_t>(tl.ranks));
    wires_from.resize(static_cast<std::size_t>(tl.ranks));
    for (const Interval& iv : tl.intervals) {
      if (iv.rank < 0 || iv.rank >= tl.ranks) continue;
      by_rank[static_cast<std::size_t>(iv.rank)].push_back(&iv);
    }
    for (auto& v : by_rank) {
      std::stable_sort(v.begin(), v.end(),
                       [](const Interval* a, const Interval* b) {
                         return a->start < b->start ||
                                (a->start == b->start && a->end < b->end);
                       });
    }
    for (const Wire& w : tl.wires) {
      if (w.src < 0 || w.src >= tl.ranks) continue;
      wires_from[static_cast<std::size_t>(w.src)].push_back(&w);
    }
    for (auto& v : wires_from) {
      std::stable_sort(v.begin(), v.end(), [](const Wire* a, const Wire* b) {
        return a->arrival < b->arrival ||
               (a->arrival == b->arrival && a->depart < b->depart);
      });
    }
  }

  /// Latest nonzero-length interval on `rank` ending within eps of `t`
  /// (nullptr when none).
  const Interval* interval_ending_at(int rank, double t) const {
    const auto& v = by_rank[static_cast<std::size_t>(rank)];
    // Binary search on end times (monotone in start order for
    // non-overlapping intervals).
    auto it = std::upper_bound(v.begin(), v.end(), t + eps,
                               [](double val, const Interval* iv) {
                                 return val < iv->end;
                               });
    while (it != v.begin()) {
      --it;
      const Interval* iv = *it;
      if (iv->end < t - eps) return nullptr;
      if (iv->end - iv->start > eps) return iv;
    }
    return nullptr;
  }

  /// Latest nonzero-length interval on `rank` ending strictly before `t`.
  const Interval* interval_before(int rank, double t) const {
    const auto& v = by_rank[static_cast<std::size_t>(rank)];
    auto it = std::upper_bound(v.begin(), v.end(), t - eps,
                               [](double val, const Interval* iv) {
                                 return val < iv->end;
                               });
    while (it != v.begin()) {
      --it;
      if ((*it)->end - (*it)->start > eps) return *it;
    }
    return nullptr;
  }

  /// A wire sent by `rank` arriving within eps of `t` (NIC serialization
  /// chain); latest departure wins, ties broken by destination.
  const Wire* wire_arriving_at(int rank, double t) const {
    const Wire* best = nullptr;
    for (const Wire* w : wires_from[static_cast<std::size_t>(rank)]) {
      if (w->arrival > t + eps) break;
      if (w->arrival < t - eps) continue;
      if (w->arrival - w->depart <= eps) continue;
      if (best == nullptr || w->depart > best->depart ||
          (w->depart == best->depart && w->dst < best->dst)) {
        best = w;
      }
    }
    return best;
  }

  void run(int start_rank, double finish) {
    int rank = start_rank;
    double t = tl.makespan;
    if (finish < t - eps) {
      path.push_back(Segment{"idle", rank, -1, "tail", finish, t});
      t = finish;
    }
    // Every step strictly decreases t (zero-length intervals and wires are
    // never followed), so the walk terminates; the cap is a backstop.
    const std::size_t cap =
        tl.intervals.size() + tl.wires.size() +
        static_cast<std::size_t>(tl.ranks) * 2 + 16;
    while (t > eps && path.size() < cap) {
      if (const Interval* iv = interval_ending_at(rank, t)) {
        const bool arrival_bound =
            iv->op == Op::Recv && iv->peer >= 0 && iv->peer < tl.ranks &&
            std::abs(iv->end - iv->arrival) <= eps &&
            iv->arrival - iv->depart > eps;
        if (arrival_bound) {
          // The clock was bound by the message's arrival: the constraint is
          // the wire, then the sender at departure time. The receiver's
          // pre-departure waiting is correctly not on the path.
          path.push_back(Segment{"wire", iv->peer, rank, iv->label,
                                 iv->depart, iv->arrival});
          rank = iv->peer;
          t = iv->depart;
        } else {
          path.push_back(Segment{kind_of(*iv), rank, iv->peer, iv->label,
                                 iv->start, std::min(iv->end, t)});
          t = iv->start;
        }
        continue;
      }
      if (const Wire* w = wire_arriving_at(rank, t)) {
        // Nothing on the CPU ends here, but this rank's NIC just finished a
        // transfer: follow the NIC serialization chain.
        path.push_back(Segment{"wire", rank, w->dst, "nic", w->depart,
                               w->arrival});
        t = w->depart;
        continue;
      }
      // Unattributable gap: nothing recorded explains [e, t] on this rank.
      const Interval* prev = interval_before(rank, t);
      const double e = prev == nullptr ? 0.0 : prev->end;
      path.push_back(Segment{"idle", rank, -1, "gap", e, t});
      t = e;
    }
    std::reverse(path.begin(), path.end());
  }
};

}  // namespace

std::vector<Segment> Analysis::top_segments(std::size_t k) const {
  std::vector<Segment> out = critical_path;
  std::stable_sort(out.begin(), out.end(),
                   [](const Segment& a, const Segment& b) {
                     if (a.duration() != b.duration())
                       return a.duration() > b.duration();
                     if (a.start != b.start) return a.start < b.start;
                     return a.rank < b.rank;
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

Analysis analyze(const Timeline& timeline) {
  Analysis an;
  an.ranks = timeline.ranks;
  an.makespan_s = timeline.makespan;
  if (timeline.ranks <= 0 || timeline.makespan <= 0.0) return an;

  const double mk = timeline.makespan;
  const double eps = mk * 1e-12 + 1e-15;

  // --- Per-rank and per-phase attribution -------------------------------
  an.per_rank.resize(static_cast<std::size_t>(timeline.ranks));
  std::map<std::string, PhaseAttribution> phases;
  for (int r = 0; r < timeline.ranks; ++r) {
    an.per_rank[static_cast<std::size_t>(r)].rank = r;
  }
  for (const Interval& raw : timeline.intervals) {
    if (raw.rank < 0 || raw.rank >= timeline.ranks) continue;
    RankAttribution& ra = an.per_rank[static_cast<std::size_t>(raw.rank)];
    // Clip to [0, makespan]: activity past the recorded finish (e.g. an
    // ill-formed timeline) must not break the partition.
    const double s = std::max(0.0, std::min(raw.start, mk));
    const double e = std::max(0.0, std::min(raw.end, mk));
    const double len = std::max(0.0, e - s);
    PhaseAttribution& pa = phases[raw.label];
    pa.label = raw.label;
    if (len > 0.0) {
      bucket_slot(ra, raw.bucket) += len;
      bucket_slot(pa, raw.bucket) += len;
    }
    if (raw.op == Op::Recv) {
      const double hidden = hidden_of(raw);
      ra.transfer_hidden_s += hidden;
      pa.transfer_hidden_s += hidden;
    }
    ra.finish_s = std::max(ra.finish_s, e);
  }

  double busy_sum = 0.0, busy_sq = 0.0, busy_max = 0.0;
  for (RankAttribution& ra : an.per_rank) {
    const double raw_busy = ra.busy_s();
    const double idle = mk - raw_busy;
    if (idle < 0.0) {
      an.max_bucket_sum_rel_err =
          std::max(an.max_bucket_sum_rel_err, -idle / mk);
    }
    ra.wait_idle_s = std::max(0.0, idle);
    ra.utilization = raw_busy / mk;
    busy_sum += raw_busy;
    busy_sq += raw_busy * raw_busy;
    busy_max = std::max(busy_max, raw_busy);
  }
  an.buckets_sum_to_makespan = an.max_bucket_sum_rel_err <= 1e-6;
  an.mean_utilization = busy_sum / (static_cast<double>(timeline.ranks) * mk);
  const double busy_mean = busy_sum / static_cast<double>(timeline.ranks);
  an.imbalance_max_over_mean = busy_mean > 0.0 ? busy_max / busy_mean : 0.0;
  an.jain_fairness =
      busy_sq > 0.0
          ? (busy_sum * busy_sum) /
                (static_cast<double>(timeline.ranks) * busy_sq)
          : 0.0;

  an.per_phase.reserve(phases.size());
  for (auto& [label, pa] : phases) an.per_phase.push_back(std::move(pa));

  // --- Resource-seconds -------------------------------------------------
  double wire_s = 0.0;
  for (const Wire& w : timeline.wires) {
    wire_s += std::max(0.0, w.arrival - w.depart);
  }
  an.resource_seconds_s = busy_sum + timeline.concurrent_fpga_s + wire_s;

  // --- Critical path ----------------------------------------------------
  int start_rank = 0;
  double finish = 0.0;
  for (const RankAttribution& ra : an.per_rank) {
    if (ra.finish_s > finish) {
      finish = ra.finish_s;
      start_rank = ra.rank;
    }
  }
  Walker walker(timeline, eps);
  walker.run(start_rank, finish);
  an.critical_path = std::move(walker.path);
  for (const Segment& seg : an.critical_path) {
    (seg.kind == "idle" ? an.cp_idle_s : an.critical_path_s) +=
        seg.duration();
  }

  // --- Invariants -------------------------------------------------------
  const double tol = mk * 1e-9 + 1e-12;
  an.cp_le_makespan = an.critical_path_s <= mk + tol;
  an.makespan_le_resource_seconds = mk <= an.resource_seconds_s + tol;
  return an;
}

void Analysis::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const auto flags = os.flags();
  const auto prec = os.precision();
  os << std::setprecision(9);
  os << "{\n";
  os << pad << "  \"ranks\": " << ranks << ",\n";
  os << pad << "  \"makespan_s\": " << makespan_s << ",\n";
  os << pad << "  \"critical_path_s\": " << critical_path_s << ",\n";
  os << pad << "  \"cp_idle_s\": " << cp_idle_s << ",\n";
  os << pad << "  \"resource_seconds_s\": " << resource_seconds_s << ",\n";
  os << pad << "  \"mean_utilization\": " << mean_utilization << ",\n";
  os << pad << "  \"imbalance_max_over_mean\": " << imbalance_max_over_mean
     << ",\n";
  os << pad << "  \"jain_fairness\": " << jain_fairness << ",\n";
  os << pad << "  \"invariants\": {"
     << "\"cp_le_makespan\": " << (cp_le_makespan ? "true" : "false")
     << ", \"makespan_le_resource_seconds\": "
     << (makespan_le_resource_seconds ? "true" : "false")
     << ", \"buckets_sum_to_makespan\": "
     << (buckets_sum_to_makespan ? "true" : "false")
     << ", \"max_bucket_sum_rel_err\": " << max_bucket_sum_rel_err << "},\n";
  os << pad << "  \"per_rank\": [\n";
  for (std::size_t i = 0; i < per_rank.size(); ++i) {
    const RankAttribution& ra = per_rank[i];
    os << pad << "    {\"rank\": " << ra.rank
       << ", \"finish_s\": " << ra.finish_s << ", \"cpu_s\": " << ra.cpu_s
       << ", \"fpga_s\": " << ra.fpga_s
       << ", \"transfer_visible_s\": " << ra.transfer_visible_s
       << ", \"transfer_hidden_s\": " << ra.transfer_hidden_s
       << ", \"fault_recovery_s\": " << ra.fault_recovery_s
       << ", \"wait_idle_s\": " << ra.wait_idle_s
       << ", \"utilization\": " << ra.utilization << '}'
       << (i + 1 < per_rank.size() ? "," : "") << '\n';
  }
  os << pad << "  ],\n";
  os << pad << "  \"per_phase\": [\n";
  for (std::size_t i = 0; i < per_phase.size(); ++i) {
    const PhaseAttribution& pa = per_phase[i];
    os << pad << "    {\"label\": \"" << json_escape(pa.label)
       << "\", \"cpu_s\": " << pa.cpu_s << ", \"fpga_s\": " << pa.fpga_s
       << ", \"transfer_visible_s\": " << pa.transfer_visible_s
       << ", \"transfer_hidden_s\": " << pa.transfer_hidden_s
       << ", \"fault_recovery_s\": " << pa.fault_recovery_s << '}'
       << (i + 1 < per_phase.size() ? "," : "") << '\n';
  }
  os << pad << "  ],\n";
  const std::vector<Segment> top = top_segments(8);
  os << pad << "  \"critical_path_top\": [\n";
  for (std::size_t i = 0; i < top.size(); ++i) {
    const Segment& seg = top[i];
    os << pad << "    {\"kind\": \"" << json_escape(seg.kind)
       << "\", \"rank\": " << seg.rank << ", \"peer\": " << seg.peer
       << ", \"label\": \"" << json_escape(seg.label)
       << "\", \"start_s\": " << seg.start
       << ", \"dur_s\": " << seg.duration() << ", \"share\": "
       << (makespan_s > 0.0 ? seg.duration() / makespan_s : 0.0) << '}'
       << (i + 1 < top.size() ? "," : "") << '\n';
  }
  os << pad << "  ],\n";
  os << pad << "  \"critical_path_segments\": " << critical_path.size()
     << "\n";
  os << pad << "}";
  os.flags(flags);
  os.precision(prec);
}

void Analysis::print(std::ostream& os) const {
  os << "  analysis: makespan " << std::setprecision(6) << makespan_s
     << " s, critical path " << critical_path_s << " s ("
     << critical_path.size() << " segments, idle " << cp_idle_s
     << " s), resource-seconds " << resource_seconds_s << "\n";
  os << "  rollup: mean util " << std::setprecision(3)
     << 100.0 * mean_utilization << "%, imbalance "
     << imbalance_max_over_mean << "x, fairness " << jain_fairness
     << (invariants_hold() ? "" : "  [INVARIANT VIOLATION]") << '\n';
  os << "  " << std::left << std::setw(6) << "rank" << std::right
     << std::setw(10) << "cpu_s" << std::setw(10) << "fpga_s" << std::setw(12)
     << "xfer_vis_s" << std::setw(12) << "xfer_hid_s" << std::setw(10)
     << "fault_s" << std::setw(10) << "idle_s" << std::setw(8) << "util"
     << '\n';
  for (const RankAttribution& ra : per_rank) {
    os << "  " << std::left << std::setw(6) << ra.rank << std::right
       << std::setprecision(4) << std::setw(10) << ra.cpu_s << std::setw(10)
       << ra.fpga_s << std::setw(12) << ra.transfer_visible_s << std::setw(12)
       << ra.transfer_hidden_s << std::setw(10) << ra.fault_recovery_s
       << std::setw(10) << ra.wait_idle_s << std::setw(7)
       << std::setprecision(3) << 100.0 * ra.utilization << '%' << '\n';
  }
  os << "  top critical-path segments:\n";
  for (const Segment& seg : top_segments(5)) {
    os << "    " << std::left << std::setw(9) << seg.kind;
    if (seg.kind == "wire") {
      os << "rank " << seg.rank << "->" << seg.peer;
    } else {
      os << "rank " << seg.rank << "    ";
    }
    os << "  " << std::setw(12) << seg.label << std::right
       << std::setprecision(4) << std::setw(10) << seg.duration() << " s  ("
       << std::setprecision(3)
       << (makespan_s > 0.0 ? 100.0 * seg.duration() / makespan_s : 0.0)
       << "%)\n";
  }
}

}  // namespace rcs::obs::cp
