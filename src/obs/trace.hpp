#pragma once
// Wall-clock tracing: RAII spans collected into per-thread buffers and
// exported as Chrome trace-event JSON (open in Perfetto / chrome://tracing).
//
// Each thread that records gets its own lane ("tid") in the trace; worker
// threads of the compute pool and MiniMPI rank threads name their lanes
// ("pool.worker 2", "rank 0") so the viewer shows who ran what, when.
//
// Hot path: recording appends one POD event to a thread-local vector — no
// locks, no allocation beyond vector growth — and is gated on
// trace_enabled(), a relaxed atomic bool initialized from RCS_TRACE:
//
//   RCS_TRACE unset        — disabled (the default)
//   RCS_TRACE=<path.json>  — enabled; Chrome trace written to <path.json>
//                            at process exit
//
// Span names and categories must be string literals (or otherwise outlive
// the process) — events store the pointers, not copies.
//
// Export may only run while no instrumented work is in flight (after
// parallel_for/World::run joins); exporting mid-flight is a data race.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace rcs::obs {

/// True when spans should be recorded (cheap relaxed load).
bool trace_enabled();

/// Programmatic override (benches/tests trace without the env variable).
void set_trace_enabled(bool enabled);

/// Nanoseconds since the process's trace epoch (steady clock).
std::int64_t trace_now_ns();

/// Name the calling thread's trace lane (e.g. "rank 3"). Creates the lane
/// if the thread has not recorded yet. When a detached lane is bound (see
/// set_current_lane), renames that lane instead.
void set_thread_lane(const std::string& name);

/// Opaque shared handle to a trace lane (see make_lane). An empty handle
/// denotes the calling thread's own default lane.
using Lane = std::shared_ptr<void>;

/// Create a detached lane named `name`, not yet bound to any thread. The
/// fiber scheduler gives each rank fiber one of these so its spans stay in
/// a stable "rank N" lane no matter which worker thread resumes it.
Lane make_lane(const std::string& name);

/// The calling thread's current lane binding: the handle installed by
/// set_current_lane, or an empty handle when the thread records into its
/// own default lane. Intended for save/restore around a fiber switch.
Lane current_lane();

/// Bind `lane` as the calling thread's recording target: subsequent spans
/// from this thread land in it. An empty handle restores the thread's own
/// default lane. A lane must be bound to at most one running thread at a
/// time (the fiber scheduler guarantees this: a fiber runs on one worker
/// at a time, and migrations synchronize through the scheduler queue).
void set_current_lane(const Lane& lane);

/// Record a completed span on the calling thread's lane. No-op when
/// tracing is disabled.
void record_span(const char* name, const char* category, std::int64_t t0_ns,
                 std::int64_t t1_ns);

/// RAII span: measures construction-to-destruction on the calling thread.
/// Near-free when tracing is disabled (one relaxed load).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* category = "app")
      : name_(name), cat_(category), active_(trace_enabled()) {
    if (active_) t0_ = trace_now_ns();
  }
  ~ScopedTimer() {
    if (active_) record_span(name_, cat_, t0_, trace_now_ns());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t t0_ = 0;
  bool active_;
};

/// RAII phase marker for the functional planes: emits a trace span (when
/// tracing) AND accumulates the phase's wall time into the counter
/// "<category>.wall.<name>_ns" (when metrics are on) — the "measured" column
/// of the drift report. The counter is resolved per construction, so use at
/// phase granularity, not in inner loops.
class PhaseSpan {
 public:
  PhaseSpan(const char* category, const char* name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  Counter* wall_ns_ = nullptr;
  std::int64_t t0_ = 0;
  bool trace_ = false;
};

/// Write all buffered spans as Chrome trace-event JSON. Call only when no
/// instrumented work is running.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to a file; returns false when the file can't open.
bool write_chrome_trace_file(const std::string& path);

/// Drop all buffered events (lanes persist).
void clear_trace();

/// Buffered event count across all lanes (for tests).
std::size_t trace_event_count();

/// Minimal JSON string escaping (quotes, backslash, control chars) shared by
/// the telemetry exporters.
std::string json_escape(const std::string& s);

}  // namespace rcs::obs
