#include "obs/provenance.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <thread>

#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Git identity comes from a header regenerated on every build (not at
// configure time), so the stamp tracks HEAD and records whether the tree
// was dirty — a benchmark artifact claiming a SHA it wasn't built from is
// worse than no stamp at all.
#if __has_include("rcs_gitstamp.h")
#include "rcs_gitstamp.h"
#endif
#ifndef RCS_GIT_SHA
#define RCS_GIT_SHA "unknown"
#endif
#ifndef RCS_GIT_DIRTY
#define RCS_GIT_DIRTY 0
#endif
#ifndef RCS_BUILD_TYPE
#define RCS_BUILD_TYPE "unknown"
#endif

namespace rcs::obs {

namespace {
std::mutex simd_mu;
std::string& simd_slot() {
  static std::string slot = "unresolved";
  return slot;
}
}  // namespace

void set_simd_path(const char* name) {
  std::lock_guard<std::mutex> lock(simd_mu);
  simd_slot() = name != nullptr ? name : "unresolved";
}

Provenance Provenance::collect() {
  Provenance p;
  p.git_sha = RCS_GIT_SHA;
  p.git_dirty = RCS_GIT_DIRTY != 0;
  p.build_type = RCS_BUILD_TYPE;
#if defined(__clang__)
  p.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  p.compiler = std::string("gcc ") + __VERSION__;
#else
  p.compiler = "unknown";
#endif
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.hostname = host;
  } else {
    p.hostname = "unknown";
  }
#else
  p.hostname = "unknown";
#endif
  p.hw_cores = std::thread::hardware_concurrency();
  const char* threads = std::getenv("RCS_THREADS");
  p.rcs_threads = threads != nullptr ? threads : "";
  {
    std::lock_guard<std::mutex> lock(simd_mu);
    p.simd = simd_slot();
  }
  return p;
}

void Provenance::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n"
     << pad << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
     << pad << "  \"git_dirty\": " << (git_dirty ? "true" : "false") << ",\n"
     << pad << "  \"compiler\": \"" << json_escape(compiler) << "\",\n"
     << pad << "  \"build_type\": \"" << json_escape(build_type) << "\",\n"
     << pad << "  \"hostname\": \"" << json_escape(hostname) << "\",\n"
     << pad << "  \"hw_cores\": " << hw_cores << ",\n"
     << pad << "  \"rcs_threads\": \"" << json_escape(rcs_threads) << "\",\n"
     << pad << "  \"simd\": \"" << json_escape(simd) << "\"\n"
     << pad << "}";
}

}  // namespace rcs::obs
