#include "obs/provenance.hpp"

#include <cstdlib>
#include <ostream>

#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#ifndef RCS_GIT_SHA
#define RCS_GIT_SHA "unknown"
#endif
#ifndef RCS_BUILD_TYPE
#define RCS_BUILD_TYPE "unknown"
#endif

namespace rcs::obs {

Provenance Provenance::collect() {
  Provenance p;
  p.git_sha = RCS_GIT_SHA;
  p.build_type = RCS_BUILD_TYPE;
#if defined(__clang__)
  p.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  p.compiler = std::string("gcc ") + __VERSION__;
#else
  p.compiler = "unknown";
#endif
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.hostname = host;
  } else {
    p.hostname = "unknown";
  }
#else
  p.hostname = "unknown";
#endif
  const char* threads = std::getenv("RCS_THREADS");
  p.rcs_threads = threads != nullptr ? threads : "";
  return p;
}

void Provenance::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n"
     << pad << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
     << pad << "  \"compiler\": \"" << json_escape(compiler) << "\",\n"
     << pad << "  \"build_type\": \"" << json_escape(build_type) << "\",\n"
     << pad << "  \"hostname\": \"" << json_escape(hostname) << "\",\n"
     << pad << "  \"rcs_threads\": \"" << json_escape(rcs_threads) << "\"\n"
     << pad << "}";
}

}  // namespace rcs::obs
