#include "obs/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace rcs::obs {

namespace {

/// Relaxed floating-point accumulate via CAS (std::atomic<double>::fetch_add
/// is C++20 but not implemented lock-free everywhere; the CAS loop is).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

int bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  const int e = std::ilogb(v) + 1;  // v in [2^(e-1), 2^e)
  return e >= Histogram::kBuckets ? Histogram::kBuckets - 1 : e;
}

}  // namespace

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::record(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::bucket_upper_bound(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i);  // 2^i
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(n);
  std::uint64_t seen = 0;
  int last_nonempty = -1;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    last_nonempty = i;
    if (static_cast<double>(seen + c) >= target) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      double hi = bucket_upper_bound(i);
      if (std::isinf(hi)) hi = lo * 2.0;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
    }
    seen += c;
  }
  // Fall-through (p > 100 or rounding past the last sample): clamp to the
  // last non-empty bucket's upper bound instead of the histogram's global
  // range, so the answer stays within the data actually recorded.
  const double lo =
      last_nonempty <= 0 ? 0.0 : std::ldexp(1.0, last_nonempty - 1);
  double hi = bucket_upper_bound(last_nonempty);
  if (std::isinf(hi)) hi = lo * 2.0;
  return hi;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: outlives atexit dumps
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric '" + name + "' exists with another kind");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric '" + name + "' exists with another kind");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::logic_error("metric '" + name + "' exists with another kind");
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::map<std::string, MetricValue> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, MetricValue> out;
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.kind = MetricValue::Kind::Counter;
    v.value = static_cast<double>(c->value());
    out.emplace(name, v);
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.kind = MetricValue::Kind::Gauge;
    v.value = g->value();
    out.emplace(name, v);
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.kind = MetricValue::Kind::Histogram;
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    v.p50 = h->percentile(50.0);
    v.p99 = h->percentile(99.0);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = h->bucket_count(i);
      if (c == 0) continue;
      v.buckets.push_back(
          HistogramBucket{Histogram::bucket_upper_bound(i), c});
    }
    out.emplace(name, std::move(v));
  }
  return out;
}

void Registry::write_json(std::ostream& os) const {
  const auto snap = snapshot();
  os << "{\n";
  std::size_t i = 0;
  for (const auto& [name, v] : snap) {
    os << "  \"" << name << "\": ";
    switch (v.kind) {
      case MetricValue::Kind::Counter:
        os << "{\"type\": \"counter\", \"value\": "
           << static_cast<std::uint64_t>(v.value) << "}";
        break;
      case MetricValue::Kind::Gauge:
        os << "{\"type\": \"gauge\", \"value\": " << v.value << "}";
        break;
      case MetricValue::Kind::Histogram: {
        os << "{\"type\": \"histogram\", \"count\": " << v.count
           << ", \"sum\": " << v.sum << ", \"min\": " << v.min
           << ", \"max\": " << v.max << ", \"p50\": " << v.p50
           << ", \"p99\": " << v.p99 << ", \"buckets\": [";
        for (std::size_t b = 0; b < v.buckets.size(); ++b) {
          os << (b == 0 ? "" : ", ") << "{\"le\": ";
          // The unbounded last bucket has no finite upper edge; null keeps
          // the JSON parseable where "inf" would not be.
          if (std::isinf(v.buckets[b].le)) {
            os << "null";
          } else {
            os << v.buckets[b].le;
          }
          os << ", \"count\": " << v.buckets[b].count << '}';
        }
        os << "]}";
        break;
      }
    }
    os << (++i < snap.size() ? ",\n" : "\n");
  }
  os << "}\n";
}

void Registry::write_text(std::ostream& os) const {
  for (const auto& [name, v] : snapshot()) {
    switch (v.kind) {
      case MetricValue::Kind::Counter:
        os << name << " = " << static_cast<std::uint64_t>(v.value) << "\n";
        break;
      case MetricValue::Kind::Gauge:
        os << name << " = " << v.value << "\n";
        break;
      case MetricValue::Kind::Histogram:
        os << name << " count=" << v.count << " sum=" << v.sum
           << " min=" << v.min << " max=" << v.max << " p50=" << v.p50
           << " p99=" << v.p99;
        for (const HistogramBucket& b : v.buckets) {
          os << " le";
          if (std::isinf(b.le)) {
            os << "_inf";
          } else {
            os << '=' << b.le;
          }
          os << ':' << b.count;
        }
        os << "\n";
        break;
    }
  }
}

namespace {

std::atomic<bool> g_metrics_enabled{false};

void dump_metrics_at_exit() {
  const char* env = std::getenv("RCS_METRICS");
  if (env == nullptr || std::strcmp(env, "0") == 0) return;
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "stderr") == 0) {
    std::cerr << "--- rcs metrics ---\n";
    Registry::global().write_text(std::cerr);
    return;
  }
  std::ofstream out(env);
  if (out) Registry::global().write_json(out);
}

/// One-time env read; returns the initial enabled state and installs the
/// exit dump when requested.
bool init_from_env() {
  // Touch the registry first so its (leaked) storage exists before the
  // atexit handler is registered.
  Registry::global();
  const char* env = std::getenv("RCS_METRICS");
  const bool on = env != nullptr && std::strcmp(env, "0") != 0;
  if (on) std::atexit(dump_metrics_at_exit);
  g_metrics_enabled.store(on, std::memory_order_relaxed);
  return on;
}

}  // namespace

bool metrics_enabled() {
  static const bool init = init_from_env();
  (void)init;
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  (void)metrics_enabled();  // force env init so the flag is not overwritten
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace rcs::obs
