#include "graph/transitive_closure.hpp"

#include <cmath>

#include "graph/floyd_warshall.hpp"

namespace rcs::graph {

std::size_t BitMatrix::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : bits_) total += __builtin_popcountll(w);
  return total;
}

void transitive_closure(BitMatrix& reach) {
  const std::size_t n = reach.size();
  const std::size_t wpr = reach.words_per_row();
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t* rk = reach.row(k);
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach.get(i, k)) continue;
      std::uint64_t* ri = reach.row(i);
      for (std::size_t w = 0; w < wpr; ++w) ri[w] |= rk[w];
    }
  }
}

void tc_block(BitMatrix& m, std::size_t bb, std::size_t cr0, std::size_t cw0,
              std::size_t wb, std::size_t ar0, std::size_t ac0,
              std::size_t br0) {
  for (std::size_t k = 0; k < bb; ++k) {
    const std::uint64_t* bk = m.row(br0 + k) + cw0;
    for (std::size_t i = 0; i < bb; ++i) {
      if (!m.get(ar0 + i, ac0 + k)) continue;
      std::uint64_t* ci = m.row(cr0 + i) + cw0;
      for (std::size_t w = 0; w < wb; ++w) ci[w] |= bk[w];
    }
  }
}

void blocked_transitive_closure(BitMatrix& reach, std::size_t b) {
  const std::size_t n = reach.size();
  RCS_CHECK_MSG(b > 0 && b % 64 == 0,
                "blocked transitive closure needs 64 | b, got b = " << b);
  RCS_CHECK_MSG(n % b == 0, "block size " << b << " must divide n = " << n);
  const std::size_t nb = n / b;
  const std::size_t wb = b / 64;  // words per block-column window
  for (std::size_t t = 0; t < nb; ++t) {
    const std::size_t tr = t * b;
    const std::size_t tw = t * wb;
    // op1: diagonal block (C = A = B = block (t, t)).
    tc_block(reach, b, tr, tw, wb, tr, tr, tr);
    for (std::size_t q = 0; q < nb; ++q) {
      if (q == t) continue;
      // op21: row-t blocks (C = B = (t, q), A = (t, t)).
      tc_block(reach, b, tr, q * wb, wb, tr, tr, tr);
      // op22: column-t blocks (C = A = (q, t), B = (t, t)).
      tc_block(reach, b, q * b, tw, wb, q * b, tr, tr);
    }
    // op3: the rest (C = (u, v), A = (u, t), B = (t, v)).
    for (std::size_t u = 0; u < nb; ++u) {
      if (u == t) continue;
      for (std::size_t v = 0; v < nb; ++v) {
        if (v == t) continue;
        tc_block(reach, b, u * b, v * wb, wb, u * b, tr, tr);
      }
    }
  }
}

BitMatrix adjacency_from_distances(const linalg::Matrix& d) {
  RCS_CHECK_MSG(d.rows() == d.cols(), "square matrix required");
  const std::size_t n = d.rows();
  BitMatrix reach(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || std::isfinite(d(i, j))) reach.set(i, j);
    }
  }
  return reach;
}

}  // namespace rcs::graph
