#include "graph/floyd_warshall.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rcs::graph {

void floyd_warshall(Matrix& d) {
  RCS_CHECK_MSG(d.rows() == d.cols(), "floyd_warshall: square matrix required");
  const std::size_t n = d.rows();
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = d(i, k);
      if (dik == kNoEdge) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double via = dik + d(k, j);
        if (via < d(i, j)) d(i, j) = via;
      }
    }
  }
}

void floyd_warshall_with_paths(Matrix& d, std::vector<std::size_t>& next_hop) {
  RCS_CHECK_MSG(d.rows() == d.cols(), "floyd_warshall: square matrix required");
  const std::size_t n = d.rows();
  next_hop.assign(n * n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && d(i, j) != kNoEdge) next_hop[i * n + j] = j;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = d(i, k);
      if (dik == kNoEdge) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double via = dik + d(k, j);
        if (via < d(i, j)) {
          d(i, j) = via;
          next_hop[i * n + j] = next_hop[i * n + k];
        }
      }
    }
  }
}

std::vector<std::size_t> reconstruct_path(
    const std::vector<std::size_t>& next_hop, std::size_t n, std::size_t i,
    std::size_t j) {
  RCS_CHECK_MSG(next_hop.size() == n * n, "reconstruct_path: bad next_hop size");
  RCS_CHECK_MSG(i < n && j < n, "reconstruct_path: vertex out of range");
  std::vector<std::size_t> path;
  if (i == j) {
    path.push_back(i);
    return path;
  }
  if (next_hop[i * n + j] == static_cast<std::size_t>(-1)) return path;
  std::size_t cur = i;
  path.push_back(cur);
  while (cur != j) {
    cur = next_hop[cur * n + j];
    path.push_back(cur);
    RCS_CHECK_MSG(path.size() <= n, "reconstruct_path: cycle detected");
  }
  return path;
}

void fw_block(Span2D<double> c, Span2D<const double> a,
              Span2D<const double> b) {
  RCS_CHECK_MSG(a.cols() == b.rows() && c.rows() == a.rows() &&
                    c.cols() == b.cols(),
                "fw_block shape mismatch");
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t kk = a.cols();
  for (std::size_t k = 0; k < kk; ++k) {
    const double* bk = b.row(k);
    for (std::size_t i = 0; i < m; ++i) {
      const double aik = a(i, k);
      double* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double via = aik + bk[j];
        if (via < ci[j]) ci[j] = via;
      }
    }
  }
}

void fw_block_with_next(Span2D<double> c, Span2D<const double> a,
                        Span2D<const double> b, Span2D<std::size_t> next_c,
                        Span2D<const std::size_t> next_a) {
  RCS_CHECK_MSG(a.cols() == b.rows() && c.rows() == a.rows() &&
                    c.cols() == b.cols(),
                "fw_block_with_next shape mismatch");
  RCS_CHECK_MSG(next_c.rows() == c.rows() && next_c.cols() == c.cols() &&
                    next_a.rows() == a.rows() && next_a.cols() == a.cols(),
                "fw_block_with_next next-hop shape mismatch");
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t kk = a.cols();
  for (std::size_t k = 0; k < kk; ++k) {
    const double* bk = b.row(k);
    for (std::size_t i = 0; i < m; ++i) {
      const double aik = a(i, k);
      const std::size_t via = next_a(i, k);
      double* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double cand = aik + bk[j];
        if (cand < ci[j]) {
          ci[j] = cand;
          next_c(i, j) = via;
        }
      }
    }
  }
}

void blocked_floyd_warshall_with_paths(Matrix& d, std::size_t b,
                                       std::vector<std::size_t>& next_hop) {
  RCS_CHECK_MSG(d.rows() == d.cols(), "square matrix required");
  const std::size_t n = d.rows();
  RCS_CHECK_MSG(b > 0 && n % b == 0,
                "block size " << b << " must divide n = " << n);
  next_hop.assign(n * n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && d(i, j) != kNoEdge) next_hop[i * n + j] = j;
    }
  }
  Span2D<std::size_t> next(next_hop.data(), n, n, n);
  const std::size_t nb = n / b;
  auto blk = [&](std::size_t u, std::size_t v) {
    return d.block(u * b, v * b, b, b);
  };
  auto nblk = [&](std::size_t u, std::size_t v) {
    return next.block(u * b, v * b, b, b);
  };
  for (std::size_t t = 0; t < nb; ++t) {
    fw_block_with_next(blk(t, t), blk(t, t), blk(t, t), nblk(t, t),
                       nblk(t, t));
    // Step-2 blocks touch disjoint (t,q) / (q,t) blocks and only read the
    // diagonal, so the q wave parallelizes block-for-block.
    common::parallel_for(0, nb, 1, [&](std::size_t q0, std::size_t q1) {
      for (std::size_t q = q0; q < q1; ++q) {
        if (q == t) continue;
        fw_block_with_next(blk(t, q), blk(t, t), blk(t, q), nblk(t, q),
                           nblk(t, t));
        fw_block_with_next(blk(q, t), blk(q, t), blk(t, t), nblk(q, t),
                           nblk(q, t));
      }
    });
    // Step-3 blocks (u,v) only read row t and column t: independent.
    common::parallel_for(0, nb, 1, [&](std::size_t u0, std::size_t u1) {
      for (std::size_t u = u0; u < u1; ++u) {
        if (u == t) continue;
        for (std::size_t v = 0; v < nb; ++v) {
          if (v == t) continue;
          fw_block_with_next(blk(u, v), blk(u, t), blk(t, v), nblk(u, v),
                             nblk(u, t));
        }
      }
    });
  }
}

void blocked_floyd_warshall(Matrix& d, std::size_t b) {
  RCS_CHECK_MSG(d.rows() == d.cols(), "square matrix required");
  const std::size_t n = d.rows();
  RCS_CHECK_MSG(b > 0 && n % b == 0,
                "block size " << b << " must divide n = " << n);
  const std::size_t nb = n / b;
  auto blk = [&](std::size_t u, std::size_t v) {
    return d.block(u * b, v * b, b, b);
  };
  for (std::size_t t = 0; t < nb; ++t) {
    // Step 1 (op1): diagonal block.
    fw_block(blk(t, t), blk(t, t), blk(t, t));
    // Step 2 (op21 row blocks, op22 column blocks): each q writes only its
    // own (t,q)/(q,t) pair and reads the diagonal — parallel over q.
    common::parallel_for(0, nb, 1, [&](std::size_t q0, std::size_t q1) {
      for (std::size_t q = q0; q < q1; ++q) {
        if (q == t) continue;
        fw_block(blk(t, q), blk(t, t), blk(t, q));  // op21
        fw_block(blk(q, t), blk(q, t), blk(t, t));  // op22
      }
    });
    // Step 3 (op3): remaining blocks, independent given row/column t —
    // parallel over block rows. Relaxation order within a block is
    // unchanged, so distances match the serial schedule bit-for-bit.
    common::parallel_for(0, nb, 1, [&](std::size_t u0, std::size_t u1) {
      for (std::size_t u = u0; u < u1; ++u) {
        if (u == t) continue;
        for (std::size_t v = 0; v < nb; ++v) {
          if (v == t) continue;
          fw_block(blk(u, v), blk(u, t), blk(t, v));
        }
      }
    });
  }
}

}  // namespace rcs::graph
