#pragma once
// Graph workload generators for the all-pairs shortest-paths experiments.

#include <cstdint>

#include "linalg/matrix.hpp"

namespace rcs::graph {

/// Dense random digraph: every ordered pair (i, j), i != j, gets an edge with
/// probability `edge_prob`; present edges get a uniform weight in
/// [w_lo, w_hi). Missing edges are kNoEdge; the diagonal is 0.
linalg::Matrix random_digraph(std::size_t n, std::uint64_t seed,
                              double edge_prob = 1.0, double w_lo = 1.0,
                              double w_hi = 10.0);

/// Road-network-like workload: an r x c grid of intersections with
/// bidirectional street segments of random positive length, plus a few
/// random "highway" shortcuts. Returns the (r*c) x (r*c) distance matrix.
/// Vertex (i, j) has index i*c + j.
linalg::Matrix grid_road_network(std::size_t r, std::size_t c,
                                 std::uint64_t seed,
                                 std::size_t highway_count = 8);

}  // namespace rcs::graph
