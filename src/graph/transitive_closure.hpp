#pragma once
// Transitive closure — the boolean-semiring sibling of Floyd–Warshall that
// the paper cites via Penner & Prasanna, "Cache-Friendly Implementations of
// Transitive Closure" (PACT 2001 — reference [11]) as the optimized variant
// beyond its scope. Provided here as a substrate extension: the same
// blocked op1/op21/op22/op3 structure over (OR, AND) instead of (min, +),
// with rows packed 64 vertices per word so one machine word processes 64
// relaxations.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace rcs::graph {

/// Square boolean matrix with rows packed into 64-bit words.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// n x n matrix, all false.
  explicit BitMatrix(std::size_t n)
      : n_(n), words_per_row_((n + 63) / 64),
        bits_(n * words_per_row_, 0) {}

  std::size_t size() const { return n_; }
  std::size_t words_per_row() const { return words_per_row_; }

  bool get(std::size_t r, std::size_t c) const {
    RCS_DASSERT(r < n_ && c < n_);
    return (row(r)[c / 64] >> (c % 64)) & 1u;
  }
  void set(std::size_t r, std::size_t c, bool v = true) {
    RCS_DASSERT(r < n_ && c < n_);
    const std::uint64_t mask = 1ull << (c % 64);
    if (v) {
      row(r)[c / 64] |= mask;
    } else {
      row(r)[c / 64] &= ~mask;
    }
  }

  std::uint64_t* row(std::size_t r) {
    return bits_.data() + r * words_per_row_;
  }
  const std::uint64_t* row(std::size_t r) const {
    return bits_.data() + r * words_per_row_;
  }

  bool operator==(const BitMatrix& other) const = default;

  /// Number of true entries.
  std::size_t count() const;

 private:
  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
};

/// In-place Warshall transitive closure: reach[i][j] becomes true iff j is
/// reachable from i along existing true entries. Set the diagonal
/// beforehand for the reflexive closure.
void transitive_closure(BitMatrix& reach);

/// One blocked task over the boolean semiring, the analogue of fw_block:
/// for each pivot k in [0, bb), every row i of the C block whose A entry
/// (i, k) is set ORs the B block's row k into itself. Blocks are windows of
/// `m`: C = rows [cr0, cr0+bb) x words [cw0, cw0+wb); A = rows
/// [ar0, ar0+bb) x bit-columns [ac0, ac0+bb); B = rows [br0, br0+bb) x the
/// same word window as C. Column windows are word-aligned (64 | block size).
void tc_block(BitMatrix& m, std::size_t bb, std::size_t cr0, std::size_t cw0,
              std::size_t wb, std::size_t ar0, std::size_t ac0,
              std::size_t br0);

/// In-place blocked transitive closure with block size `b` (a multiple of
/// 64 that divides n); result identical to transitive_closure.
void blocked_transitive_closure(BitMatrix& reach, std::size_t b);

/// Adjacency (plus reflexive diagonal) from a distance matrix: entry true
/// iff i == j or d(i, j) is finite.
BitMatrix adjacency_from_distances(const linalg::Matrix& d);

}  // namespace rcs::graph
