#include "graph/generate.hpp"

#include "common/rng.hpp"
#include "graph/floyd_warshall.hpp"

namespace rcs::graph {

linalg::Matrix random_digraph(std::size_t n, std::uint64_t seed,
                              double edge_prob, double w_lo, double w_hi) {
  Rng rng(seed);
  linalg::Matrix d(n, n, kNoEdge);
  for (std::size_t i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (edge_prob >= 1.0 || rng.bernoulli(edge_prob)) {
        d(i, j) = rng.uniform(w_lo, w_hi);
      }
    }
  }
  return d;
}

linalg::Matrix grid_road_network(std::size_t r, std::size_t c,
                                 std::uint64_t seed,
                                 std::size_t highway_count) {
  Rng rng(seed);
  const std::size_t n = r * c;
  linalg::Matrix d(n, n, kNoEdge);
  auto idx = [c](std::size_t i, std::size_t j) { return i * c + j; };
  for (std::size_t i = 0; i < n; ++i) d(i, i) = 0.0;
  auto street = [&](std::size_t u, std::size_t v) {
    const double len = rng.uniform(0.2, 2.0);
    d(u, v) = len;
    d(v, u) = len;
  };
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (j + 1 < c) street(idx(i, j), idx(i, j + 1));
      if (i + 1 < r) street(idx(i, j), idx(i + 1, j));
    }
  }
  for (std::size_t h = 0; h < highway_count && n > 1; ++h) {
    const std::size_t u = rng.uniform_index(n);
    std::size_t v = rng.uniform_index(n);
    if (v == u) v = (v + 1) % n;
    // Highways are fast: shorter than the typical grid detour.
    const double len = rng.uniform(0.5, 1.5);
    d(u, v) = std::min(d(u, v), len);
    d(v, u) = std::min(d(v, u), len);
  }
  return d;
}

}  // namespace rcs::graph
