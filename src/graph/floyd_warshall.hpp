#pragma once
// Floyd–Warshall all-pairs shortest paths: the textbook O(n^3) algorithm
// (CLRS [3]) and the blocked formulation of Venkataraman, Sahni and
// Mukhopadhyaya (reference [7]) whose four task types (op1/op21/op22/op3)
// the paper distributes across nodes.
//
// Distances are doubles stored in a linalg::Matrix; "no edge" is represented
// by kNoEdge (IEEE +infinity works throughout: inf+x = inf and min() picks
// the finite path).

#include <cstddef>
#include <limits>
#include <vector>

#include "common/span2d.hpp"
#include "linalg/matrix.hpp"

namespace rcs::graph {

using linalg::Matrix;

/// Distance value meaning "no path known".
constexpr double kNoEdge = std::numeric_limits<double>::infinity();

/// In-place reference Floyd–Warshall on an n x n distance matrix.
void floyd_warshall(Matrix& d);

/// Reference Floyd–Warshall that also produces a next-hop matrix for path
/// reconstruction: next[i][j] is the vertex to step to from i on a shortest
/// path to j, or SIZE_MAX when unreachable/identical.
void floyd_warshall_with_paths(Matrix& d,
                               std::vector<std::size_t>& next_hop);

/// Reconstruct the vertex sequence i -> ... -> j from a next-hop matrix of
/// width n. Empty when j is unreachable from i.
std::vector<std::size_t> reconstruct_path(
    const std::vector<std::size_t>& next_hop, std::size_t n, std::size_t i,
    std::size_t j);

/// The generalized blocked relaxation kernel — one b x b task of the blocked
/// algorithm. For k = 0..K-1 (K = a.cols()), in that order:
///     c[i][j] = min(c[i][j], a[i][k] + b[k][j]).
/// The k-outer loop order makes the kernel correct for every aliasing case
/// the blocked algorithm needs:
///   op1 : c = a = b = D_tt      (diagonal block, in-place FW)
///   op21: c = b = D_tq, a = D_tt  (row-t blocks)
///   op22: c = a = D_qt, b = D_tt  (column-t blocks)
///   op3 : c = D_uv, a = D_ut, b = D_tv  (no aliasing)
void fw_block(Span2D<double> c, Span2D<const double> a,
              Span2D<const double> b);

/// In-place blocked Floyd–Warshall with block size `b` (reference [7]);
/// produces exactly the same result as floyd_warshall. The independent
/// blocks of each wave (step 2 and step 3) run in parallel on the shared
/// common::ThreadPool; per-block relaxation order is unchanged, so the
/// output is bit-identical at any thread count. Requires b to divide n.
void blocked_floyd_warshall(Matrix& d, std::size_t b);

/// The blocked relaxation kernel carrying next-hop bookkeeping: whenever
/// c[i][j] improves via a[i][k] + b[k][j], the successor of the (i, j) pair
/// is inherited from the (i, k) pair: next_c[i][j] = next_a[i][k]. Aliasing
/// cases mirror fw_block (op1: all three blocks coincide; op21: next_a is
/// the pivot block's next window; ...).
void fw_block_with_next(Span2D<double> c, Span2D<const double> a,
                        Span2D<const double> b, Span2D<std::size_t> next_c,
                        Span2D<const std::size_t> next_a);

/// Blocked Floyd–Warshall that also produces the next-hop matrix (same
/// contract as floyd_warshall_with_paths). Requires b | n. Distances equal
/// the blocked algorithm's; reconstructed paths realize those distances
/// exactly (tested), though rounding may pick different ties than the
/// unblocked reference.
void blocked_floyd_warshall_with_paths(Matrix& d, std::size_t b,
                                       std::vector<std::size_t>& next_hop);

/// Flops counted for one b x b block task (one add + one compare per inner
/// step — the paper counts b^3 additions plus b^3 comparisons).
inline long long fw_block_flops(long long b) { return 2LL * b * b * b; }

/// Flops for the full n-vertex problem.
inline long long fw_total_flops(long long n) { return 2LL * n * n * n; }

}  // namespace rcs::graph
