#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace rcs {

void Table::set_header(std::vector<std::string> header) {
  RCS_CHECK_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  RCS_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string Table::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::seconds(double s) {
  char buf[64];
  const double a = std::fabs(s);
  if (a >= 1.0 || a == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.4g s", s);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.4g ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g us", s * 1e6);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(width[i] - cell.size(), ' ')
         << (i + 1 < width.size() ? " | " : " |\n");
    }
    if (width.size() == 1) os.flush();
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    os << "|";
    for (std::size_t w : width) os << std::string(w + 2, '-') << "|";
    os << "\n";
  }
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::string cell = row[i];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        std::string q = "\"";
        for (char c : cell) {
          if (c == '"') q += '"';
          q += c;
        }
        q += '"';
        cell = q;
      }
      os << cell << (i + 1 < row.size() ? "," : "");
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace rcs
