#pragma once
// Small statistics helpers used by benches and the experiment harness.

#include <cstddef>
#include <vector>

namespace rcs {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  /// Incorporate one sample.
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation on a copy of `xs`.
/// Requires a non-empty input.
double percentile(std::vector<double> xs, double p);

/// Geometric mean of strictly positive samples.
double geomean(const std::vector<double>& xs);

}  // namespace rcs
