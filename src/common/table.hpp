#pragma once
// ASCII table / CSV printer used by the paper-figure benches so that every
// bench binary emits the same row/series layout the paper reports.

#include <iosfwd>
#include <string>
#include <vector>

namespace rcs {

/// Column-aligned text table with an optional title, printable as ASCII or
/// CSV. Cells are strings; helpers format numbers with sensible precision.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append one row; must match the header width when a header is set.
  void add_row(std::vector<std::string> row);

  /// Format a double with `digits` significant digits.
  static std::string num(double v, int digits = 4);

  /// Format an integer.
  static std::string num(long long v);

  /// Format seconds with an adaptive unit (s / ms / us).
  static std::string seconds(double s);

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (header + rows, comma-separated, minimal quoting).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcs
