#pragma once
// Deterministic, fast random number generation for reproducible experiments.
//
// xoshiro256** seeded by SplitMix64, plus small helpers for the distributions
// the workload generators need. Deliberately not <random> engines so that the
// bit streams are identical across platforms and standard-library versions.

#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace rcs {

/// SplitMix64 step — used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& lane : s_) lane = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    RCS_DASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    RCS_DASSERT(n > 0);
    // Lemire's multiply-shift approximation is fine here: experiments only
    // need statistical uniformity, not exactness.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    using u128 = unsigned __int128;
#pragma GCC diagnostic pop
    return static_cast<std::uint64_t>((static_cast<u128>((*this)()) * n) >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Raw 64 random bits — useful for generating arbitrary IEEE-754 patterns.
  std::uint64_t bits() { return (*this)(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace rcs
