#pragma once
// Non-owning 2-D view over row-major storage with an arbitrary leading
// dimension (stride), in the spirit of std::mdspan (not yet in libstdc++ 12).

#include <cstddef>

#include "common/error.hpp"

namespace rcs {

/// Non-owning view of a `rows x cols` block inside a row-major array whose
/// rows are `stride` elements apart. Cheap to copy; never owns memory.
template <typename T>
class Span2D {
 public:
  Span2D() = default;

  Span2D(T* data, std::size_t rows, std::size_t cols, std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    RCS_DASSERT(stride >= cols || rows == 0);
  }

  /// Contiguous view: stride == cols.
  Span2D(T* data, std::size_t rows, std::size_t cols)
      : Span2D(data, rows, cols, cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  T* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(std::size_t r, std::size_t c) const {
    RCS_DASSERT(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// Pointer to the start of row r.
  T* row(std::size_t r) const {
    RCS_DASSERT(r < rows_);
    return data_ + r * stride_;
  }

  /// Sub-block view [r0, r0+nr) x [c0, c0+nc).
  Span2D block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const {
    RCS_DASSERT(r0 + nr <= rows_ && c0 + nc <= cols_);
    return Span2D(data_ + r0 * stride_ + c0, nr, nc, stride_);
  }

  /// Implicit widening to a const view.
  operator Span2D<const T>() const {
    return Span2D<const T>(data_, rows_, cols_, stride_);
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace rcs
