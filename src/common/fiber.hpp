#pragma once
// Cooperative stackful fibers for the MiniMPI rank scheduler.
//
// A Fiber is a resumable user-level context (ucontext/makecontext) with its
// own mmap'd, guard-paged stack. FiberScheduler::run multiplexes n fiber
// tasks over a small fixed set of cooperative worker loops hosted on the
// process-global common::ThreadPool, so a p=1024 MiniMPI world needs p
// stacks but only a handful of OS threads.
//
// Blocking protocol: a task that must wait registers itself with whoever
// will wake it (e.g. a mailbox waiter list) *under that structure's mutex*,
// then calls Fiber::park(lock). park atomically (w.r.t. Fiber::wake)
// releases the lock, suspends the fiber, and re-acquires the lock when a
// wake reschedules it — the fiber-world analogue of
// condition_variable::wait. One registration earns exactly one wake; a
// fiber that must keep waiting re-registers, exactly like re-entering
// cv.wait in a predicate loop.
//
// The park/wake race (waker fires between the parker's unlock and its
// context switch) is closed by an atomic state machine, not by timing:
// park publishes kParking before unlocking, the waker CASes
// kParking -> kWokenEarly (the scheduler then requeues immediately instead
// of parking) or kParked -> kReady (requeue now); the scheduler's
// post-switch CAS kParking -> kParked decides which side won.
//
// Worker-loop hosting: run() drives the loops through one
// ThreadPool::parallel_for(0, workers, ...) call, so scheduler concurrency
// comes from the same pool the compute kernels use and the caller thread
// always participates (a 1-thread pool degrades to a single worker loop
// running every fiber — still correct, fully serial). Fiber swaps
// save/restore the pool's nested-parallelism flag and the obs trace-lane
// binding, so code on a fiber sees a top-level thread: its parallel_for
// calls fan out and its spans land in the fiber's own lane.
//
// Sanitizer support: stack switches are annotated for TSan and ASan
// (__tsan_switch_to_fiber / __sanitizer_start_switch_fiber) when the
// corresponding sanitizer is compiled in, so RCS_SANITIZE=thread|address
// builds understand the custom stacks.

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

namespace rcs::common {

namespace detail {
struct FiberImpl;
struct FiberSchedulerImpl;
}  // namespace detail

/// Handle to the fiber currently executing on this thread (if any). Only
/// the two scheduling primitives below are public; fibers are created and
/// destroyed by FiberScheduler.
class Fiber {
 public:
  /// The fiber running on the calling thread, or nullptr when the caller is
  /// an ordinary thread. Cheap (one thread-local load) — blocking sites use
  /// it to choose between cv.wait and Fiber::park.
  static Fiber* current();

  /// Suspend the current fiber until wake(). `lock` must be held; it is
  /// released before the suspension becomes visible to wakers holding the
  /// same mutex and re-acquired before park returns. The caller must have
  /// registered this fiber with its waker under `lock` first (see file
  /// comment for the protocol).
  static void park(std::unique_lock<std::mutex>& lock);

  /// Make a parked (or just-parking) fiber runnable again. Each park
  /// consumes exactly one wake; extra wakes on a running/ready fiber are
  /// no-ops. Safe to call from any thread, but never from a context that
  /// holds the scheduler's own queue lock (callers hold only their own
  /// structure's mutex, or none).
  void wake();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

 private:
  friend struct detail::FiberImpl;
  friend struct detail::FiberSchedulerImpl;
  Fiber() = default;
  ~Fiber() = default;
  detail::FiberImpl* impl_ = nullptr;
};

/// Runs n tasks as fibers over a fixed set of cooperative worker loops.
class FiberScheduler {
 public:
  struct Options {
    /// Worker loops to host on the global ThreadPool. Effective concurrency
    /// is min(workers, pool threads); extra loops just drain and exit.
    int workers = 1;
    /// Per-fiber stack size in bytes; 0 = default (RCS_FIBER_STACK_KB, or
    /// 256 KiB — 1 MiB under ASan/TSan, whose instrumentation needs more
    /// frame space). Rounded up to whole pages; a PROT_NONE guard page sits
    /// below every stack so overflow faults instead of corrupting a
    /// neighbouring fiber.
    std::size_t stack_bytes = 0;
    /// Optional per-task obs trace-lane name (e.g. "rank 3"). When set and
    /// tracing is enabled, each fiber records into its own lane regardless
    /// of which worker thread resumes it.
    std::function<std::string(int)> lane_name;
  };

  /// Run task(0..n-1) to completion, each on its own fiber. Returns when
  /// every fiber has finished; rethrows the first uncaught task exception
  /// (after all fibers finish — a throwing task does not cancel the rest).
  static void run(int n, const Options& opt,
                  const std::function<void(int)>& task);

  /// The default per-fiber stack size run() would use for stack_bytes == 0.
  static std::size_t default_stack_bytes();
};

}  // namespace rcs::common
