#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rcs::log {

namespace {

std::atomic<Level> g_level{parse_level(std::getenv("RCS_LOG_LEVEL"))};
std::mutex g_mutex;

const char* name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

Level parse_level(const char* name, Level fallback) {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "trace") == 0) return Level::Trace;
  if (std::strcmp(name, "debug") == 0) return Level::Debug;
  if (std::strcmp(name, "info") == 0) return Level::Info;
  if (std::strcmp(name, "warn") == 0) return Level::Warn;
  if (std::strcmp(name, "error") == 0) return Level::Error;
  if (std::strcmp(name, "off") == 0) return Level::Off;
  return fallback;
}

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) { return lvl >= level(); }

namespace detail {
void emit(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[rcs %s] %s\n", name(lvl), msg.c_str());
}
}  // namespace detail

}  // namespace rcs::log
