#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rcs::log {

namespace {

Level parse_env() {
  const char* e = std::getenv("RCS_LOG_LEVEL");
  if (e == nullptr) return Level::Warn;
  if (std::strcmp(e, "trace") == 0) return Level::Trace;
  if (std::strcmp(e, "debug") == 0) return Level::Debug;
  if (std::strcmp(e, "info") == 0) return Level::Info;
  if (std::strcmp(e, "warn") == 0) return Level::Warn;
  if (std::strcmp(e, "error") == 0) return Level::Error;
  if (std::strcmp(e, "off") == 0) return Level::Off;
  return Level::Warn;
}

std::atomic<Level> g_level{parse_env()};
std::mutex g_mutex;

const char* name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) { return lvl >= level(); }

namespace detail {
void emit(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[rcs %s] %s\n", name(lvl), msg.c_str());
}
}  // namespace detail

}  // namespace rcs::log
