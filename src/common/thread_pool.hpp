#pragma once
// Intra-node parallel compute runtime: a persistent worker pool with a
// static-chunked `parallel_for` primitive.
//
// The functional plane runs one std::thread per MiniMPI rank, and several
// ranks can reach a compute kernel at the same simulated instant. To keep
// the machine from oversubscribing (p ranks x t threads each), all kernels
// share ONE process-global pool: concurrent `parallel_for` calls from
// different rank threads enqueue into the same worker set, and a call made
// from inside a pool worker (nested parallelism) degrades to serial
// execution instead of deadlocking or spawning more threads.
//
// Determinism contract: `parallel_for` splits [begin, end) into contiguous
// chunks that partition the range, so a body that writes only its own chunk
// produces output independent of the thread count and of chunk-to-thread
// assignment. All parallel kernels in this repo preserve their documented
// per-entry accumulation order inside a chunk, so results are bit-identical
// at any `RCS_THREADS`. Simulated timings never flow through the pool.

#include <cstddef>
#include <functional>
#include <memory>

namespace rcs::common {

class ThreadPool {
 public:
  /// A pool that runs bodies on `threads` threads total: `threads - 1`
  /// persistent workers plus the calling thread (which always participates).
  /// `threads <= 1` means fully serial (no workers spawned).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads this pool applies to one parallel_for (workers + caller).
  int threads() const;

  /// Run `body(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end) into at most `threads()` contiguous chunks of at least
  /// `grain` items (sizes as equal as possible). The calling thread executes
  /// chunks alongside the workers and returns only when every chunk is done.
  /// The first exception thrown by any chunk is rethrown to the caller after
  /// completion. Safe to call concurrently from multiple threads; calls made
  /// from inside a running body execute serially (nested-parallelism cap).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// The shared process-global pool used by all parallel kernels. Sized on
  /// first use from the `RCS_THREADS` environment variable, defaulting to
  /// std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Resize the global pool (joins the old workers, spawns new ones). Must
  /// not be called while any parallel_for is in flight; intended for tests
  /// and benchmark harnesses that sweep thread counts.
  static void set_global_threads(int threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Swap the calling thread's "inside a parallel_for body" flag, returning
/// the previous value. For the fiber scheduler only: a rank fiber hosted on
/// a pool worker must see top-level-thread semantics (its compute kernels'
/// parallel_for calls fan out instead of silently degrading to serial), so
/// the scheduler clears the flag when switching onto a fiber stack and
/// restores the host's value when the fiber yields. True nested parallelism
/// — a parallel_for issued from inside a running body — still runs serial.
bool exchange_in_parallel_body(bool value);

/// Convenience: parallel_for on the shared global pool.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

/// Floor on the useful work per chunk: dispatching one chunk costs a few
/// microseconds (queue mutex, cv wake, two atomics), so bodies cheaper than
/// ~20 us per chunk spend more time in the pool than in the kernel — the
/// queue-wait lane dwarfs the busy lane in the trace. Callers size `grain`
/// with grain_for_cost so small jobs degrade toward serial instead.
inline constexpr double kMinChunkNs = 20'000.0;

/// Minimum-grain heuristic: the smallest items-per-chunk such that one chunk
/// amounts to at least `min_chunk_ns` of estimated work. Feed the result to
/// parallel_for as `grain`; jobs whose whole range is below the floor then
/// run serially (no enqueue, no wake) by the existing max_chunks logic.
inline std::size_t grain_for_cost(double ns_per_item,
                                  double min_chunk_ns = kMinChunkNs) {
  if (ns_per_item <= 0.0) return 1;
  const double g = min_chunk_ns / ns_per_item;
  if (g <= 1.0) return 1;
  if (g >= 1e9) return static_cast<std::size_t>(1e9);
  return static_cast<std::size_t>(g);
}

/// grain_for_cost with cost expressed in flops, at a nominal ~20 GFLOP/s
/// single-thread rate (0.05 ns/flop) — the right order of magnitude for the
/// post-SIMD dense kernels this repo runs.
inline std::size_t grain_for_flops(double flops_per_item) {
  return grain_for_cost(flops_per_item * 0.05);
}

}  // namespace rcs::common
