#pragma once
// Intra-node parallel compute runtime: a persistent worker pool with a
// static-chunked `parallel_for` primitive.
//
// The functional plane runs one std::thread per MiniMPI rank, and several
// ranks can reach a compute kernel at the same simulated instant. To keep
// the machine from oversubscribing (p ranks x t threads each), all kernels
// share ONE process-global pool: concurrent `parallel_for` calls from
// different rank threads enqueue into the same worker set, and a call made
// from inside a pool worker (nested parallelism) degrades to serial
// execution instead of deadlocking or spawning more threads.
//
// Determinism contract: `parallel_for` splits [begin, end) into contiguous
// chunks that partition the range, so a body that writes only its own chunk
// produces output independent of the thread count and of chunk-to-thread
// assignment. All parallel kernels in this repo preserve their documented
// per-entry accumulation order inside a chunk, so results are bit-identical
// at any `RCS_THREADS`. Simulated timings never flow through the pool.

#include <cstddef>
#include <functional>
#include <memory>

namespace rcs::common {

class ThreadPool {
 public:
  /// A pool that runs bodies on `threads` threads total: `threads - 1`
  /// persistent workers plus the calling thread (which always participates).
  /// `threads <= 1` means fully serial (no workers spawned).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads this pool applies to one parallel_for (workers + caller).
  int threads() const;

  /// Run `body(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end) into at most `threads()` contiguous chunks of at least
  /// `grain` items (sizes as equal as possible). The calling thread executes
  /// chunks alongside the workers and returns only when every chunk is done.
  /// The first exception thrown by any chunk is rethrown to the caller after
  /// completion. Safe to call concurrently from multiple threads; calls made
  /// from inside a running body execute serially (nested-parallelism cap).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// The shared process-global pool used by all parallel kernels. Sized on
  /// first use from the `RCS_THREADS` environment variable, defaulting to
  /// std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Resize the global pool (joins the old workers, spawns new ones). Must
  /// not be called while any parallel_for is in flight; intended for tests
  /// and benchmark harnesses that sweep thread counts.
  static void set_global_threads(int threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: parallel_for on the shared global pool.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

}  // namespace rcs::common
