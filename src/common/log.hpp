#pragma once
// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage:
//   RCS_LOG(Info) << "partition solved: b_f=" << bf;
// Level is controlled globally via rcs::log::set_level or the RCS_LOG_LEVEL
// environment variable (trace|debug|info|warn|error|off).

#include <mutex>
#include <sstream>
#include <string>

namespace rcs::log {

enum class Level { Trace = 0, Debug, Info, Warn, Error, Off };

/// Set the global minimum level at which messages are emitted.
void set_level(Level lvl);

/// Current global level (initialized from $RCS_LOG_LEVEL, default Warn).
Level level();

/// True when a message at `lvl` would be emitted.
bool enabled(Level lvl);

/// Parse a level name ("trace"|"debug"|"info"|"warn"|"error"|"off");
/// nullptr or anything unrecognized yields `fallback`. This is exactly the
/// rule applied to $RCS_LOG_LEVEL at startup.
Level parse_level(const char* name, Level fallback = Level::Warn);

namespace detail {
void emit(Level lvl, const std::string& msg);

class Line {
 public:
  explicit Line(Level lvl) : lvl_(lvl) {}
  ~Line() { emit(lvl_, os_.str()); }
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  template <typename T>
  Line& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rcs::log

#define RCS_LOG(severity)                                        \
  if (!::rcs::log::enabled(::rcs::log::Level::severity)) {       \
  } else                                                         \
    ::rcs::log::detail::Line(::rcs::log::Level::severity)
