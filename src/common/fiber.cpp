#include "common/fiber.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

// Sanitizer detection: GCC defines __SANITIZE_*__, Clang exposes
// __has_feature. The annotations below teach each tool about the custom
// stacks; without them TSan reports bogus races across a fiber migrating
// between worker threads and ASan misattributes fake-stack frames.
#if defined(__SANITIZE_THREAD__)
#define RCS_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RCS_TSAN_FIBERS 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define RCS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RCS_ASAN_FIBERS 1
#endif
#endif

#ifdef RCS_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif
#ifdef RCS_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace rcs::common {

namespace detail {

namespace {

/// Fiber lifecycle states. Transitions:
///   kReady -> kRunning            (worker dequeues and resumes)
///   kRunning -> kParking          (park(): published before the lock drops)
///   kParking -> kParked           (worker's post-switch CAS: park won)
///   kParking -> kWokenEarly       (wake()'s CAS: wake raced the switch;
///                                  the worker requeues instead of parking)
///   kParked -> kReady             (wake(): requeue through the scheduler)
///   kRunning -> kDone             (trampoline: task returned/threw)
enum class St : int { kReady, kRunning, kParking, kParked, kWokenEarly, kDone };

/// Per-worker-thread side of a context switch: where a yielding fiber
/// returns to, plus the sanitizer bookkeeping for the host stack.
struct WorkerContext {
  ucontext_t return_ctx;
#ifdef RCS_TSAN_FIBERS
  void* tsan = nullptr;  // the host thread's TSan "fiber" handle
#endif
#ifdef RCS_ASAN_FIBERS
  void* asan_fake = nullptr;      // fake-stack save slot across a switch-out
  const void* stack_base = nullptr;  // host thread stack (pthread attrs)
  std::size_t stack_size = 0;
#endif
};

thread_local WorkerContext tls_worker;
thread_local FiberImpl* tls_current = nullptr;

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

#ifdef RCS_ASAN_FIBERS
void init_worker_stack_bounds(WorkerContext& wc) {
  if (wc.stack_size != 0) return;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t sz = 0;
    if (pthread_attr_getstack(&attr, &addr, &sz) == 0) {
      wc.stack_base = addr;
      wc.stack_size = sz;
    }
    pthread_attr_destroy(&attr);
  }
}
#endif

}  // namespace

struct FiberImpl {
  FiberImpl() { facade.impl_ = this; }
  Fiber facade;
  ucontext_t ctx;
  void* map_base = nullptr;   // mmap base (guard page + usable stack)
  std::size_t map_size = 0;
  void* stack_lo = nullptr;   // usable stack (above the guard page)
  std::size_t stack_size = 0;
  std::atomic<St> state{St::kReady};
  std::function<void()> body;
  std::exception_ptr error;
  FiberSchedulerImpl* sched = nullptr;
  WorkerContext* host = nullptr;  // who resumed us last (valid while running)
  obs::Lane lane;                 // fiber-owned trace lane (may be empty)
#ifdef RCS_TSAN_FIBERS
  void* tsan = nullptr;
#endif
#ifdef RCS_ASAN_FIBERS
  void* asan_fake = nullptr;
#endif
};

struct FiberSchedulerImpl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<FiberImpl*> runq;
  int unfinished = 0;

  void enqueue(FiberImpl* f) {
    {
      std::lock_guard<std::mutex> lock(mu);
      runq.push_back(f);
    }
    cv.notify_one();
  }

  static void trampoline();
  static void switch_to_fiber(FiberImpl* f);
  static void yield_to_host(FiberImpl* f, bool done);
  void resume(FiberImpl* f);
  void worker_loop();
};

/// Entry point of every fiber (reached via makecontext). Never returns: the
/// final yield_to_host hands the stack back to the host worker for good.
void FiberSchedulerImpl::trampoline() {
  FiberImpl* f = tls_current;
#ifdef RCS_ASAN_FIBERS
  // First entry on this stack: no fake-stack frame of ours to restore yet.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  try {
    f->body();
  } catch (...) {
    f->error = std::current_exception();
  }
  f->state.store(St::kDone, std::memory_order_release);
  yield_to_host(f, /*done=*/true);
  std::abort();  // unreachable: a dead fiber is never resumed
}

/// Host-thread side: switch onto the fiber's stack, return when it yields.
/// Saves/restores this thread's pool nested-parallelism flag and trace-lane
/// binding around the switch, so the fiber runs with top-level-thread
/// semantics and the host's identity is untouched.
void FiberSchedulerImpl::switch_to_fiber(FiberImpl* f) {
  WorkerContext& wc = tls_worker;
  const bool saved_flag = exchange_in_parallel_body(false);
  obs::Lane saved_lane;
  if (f->lane) {
    saved_lane = obs::current_lane();
    obs::set_current_lane(f->lane);
  }
  f->host = &wc;
  tls_current = f;
#ifdef RCS_TSAN_FIBERS
  wc.tsan = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(f->tsan, 0);
#endif
#ifdef RCS_ASAN_FIBERS
  init_worker_stack_bounds(wc);
  __sanitizer_start_switch_fiber(&wc.asan_fake, f->stack_lo, f->stack_size);
#endif
  swapcontext(&wc.return_ctx, &f->ctx);
#ifdef RCS_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(wc.asan_fake, nullptr, nullptr);
#endif
  tls_current = nullptr;
  if (f->lane) obs::set_current_lane(saved_lane);
  exchange_in_parallel_body(saved_flag);
}

/// Fiber side: switch back to the host that resumed us. On a park this
/// returns later — possibly on a different worker thread — when the fiber
/// is rescheduled; on `done` it never returns.
void FiberSchedulerImpl::yield_to_host(FiberImpl* f, bool done) {
  (void)done;  // only the sanitizer annotations distinguish a final switch
  WorkerContext* wc = f->host;
#ifdef RCS_TSAN_FIBERS
  __tsan_switch_to_fiber(wc->tsan, 0);
#endif
#ifdef RCS_ASAN_FIBERS
  __sanitizer_start_switch_fiber(done ? nullptr : &f->asan_fake,
                                 wc->stack_base, wc->stack_size);
#endif
  swapcontext(&f->ctx, &wc->return_ctx);
#ifdef RCS_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(f->asan_fake, nullptr, nullptr);
#endif
}

void FiberSchedulerImpl::resume(FiberImpl* f) {
  f->state.store(St::kRunning, std::memory_order_relaxed);
  switch_to_fiber(f);
  St s = f->state.load(std::memory_order_acquire);
  if (s == St::kDone) {
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      last = (--unfinished == 0);
    }
    if (last) cv.notify_all();  // wake every idle worker loop to exit
    return;
  }
  if (s == St::kParking) {
    St expected = St::kParking;
    if (f->state.compare_exchange_strong(expected, St::kParked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return;  // parked; a future wake() will requeue it
    }
    s = expected;
  }
  // A wake raced the context switch (kParking -> kWokenEarly): the waker
  // left requeueing to us, since only the host side knows when the fiber's
  // stack is safely switched away from.
  RCS_CHECK(s == St::kWokenEarly);
  f->state.store(St::kReady, std::memory_order_relaxed);
  enqueue(f);
}

void FiberSchedulerImpl::worker_loop() {
  std::unique_lock<std::mutex> lock(mu);
  for (;;) {
    cv.wait(lock, [&] { return unfinished == 0 || !runq.empty(); });
    if (runq.empty()) return;  // unfinished == 0: all fibers retired
    FiberImpl* f = runq.front();
    runq.pop_front();
    lock.unlock();
    resume(f);
    lock.lock();
  }
}

}  // namespace detail

using detail::FiberImpl;
using detail::FiberSchedulerImpl;
using detail::St;

Fiber* Fiber::current() {
  FiberImpl* f = detail::tls_current;
  return f != nullptr ? &f->facade : nullptr;
}

void Fiber::park(std::unique_lock<std::mutex>& lock) {
  FiberImpl* f = detail::tls_current;
  RCS_CHECK_MSG(f != nullptr, "Fiber::park called off-fiber");
  RCS_CHECK_MSG(lock.owns_lock(), "Fiber::park requires a held lock");
  // Publish intent-to-park before dropping the lock: any waker that finds
  // our registration (it must hold `lock`'s mutex to do so) then observes
  // kParking at the earliest, so its wake() cannot be lost.
  f->state.store(St::kParking, std::memory_order_release);
  lock.unlock();
  FiberSchedulerImpl::yield_to_host(f, /*done=*/false);
  lock.lock();
}

void Fiber::wake() {
  FiberImpl* f = impl_;
  for (;;) {
    St s = f->state.load(std::memory_order_acquire);
    if (s == St::kParked) {
      if (f->state.compare_exchange_weak(s, St::kReady,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        f->sched->enqueue(f);
        return;
      }
    } else if (s == St::kParking) {
      if (f->state.compare_exchange_weak(s, St::kWokenEarly,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return;  // host-side CAS loses and requeues for us
      }
    } else {
      // kReady / kRunning / kWokenEarly: a wake is already in flight for
      // the current registration — one registration, one wake.
      return;
    }
  }
}

namespace {

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t ps = detail::page_size();
  return (bytes + ps - 1) / ps * ps;
}

detail::FiberImpl* make_fiber(std::size_t stack_bytes) {
  auto f = std::make_unique<FiberImpl>();
  const std::size_t ps = detail::page_size();
  f->map_size = round_up_pages(stack_bytes) + ps;  // + guard page
  void* base = mmap(nullptr, f->map_size, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  RCS_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap of " << f->map_size
                                                           << " bytes failed");
  f->map_base = base;
  RCS_CHECK(mprotect(base, ps, PROT_NONE) == 0);
  f->stack_lo = static_cast<char*>(base) + ps;
  f->stack_size = f->map_size - ps;
#ifdef RCS_TSAN_FIBERS
  f->tsan = __tsan_create_fiber(0);
#endif
  RCS_CHECK(getcontext(&f->ctx) == 0);
  f->ctx.uc_stack.ss_sp = f->stack_lo;
  f->ctx.uc_stack.ss_size = f->stack_size;
  f->ctx.uc_link = nullptr;  // fibers exit via yield_to_host, never uc_link
  makecontext(&f->ctx, &FiberSchedulerImpl::trampoline, 0);
  return f.release();
}

void destroy_fiber(detail::FiberImpl* f) {
#ifdef RCS_TSAN_FIBERS
  __tsan_destroy_fiber(f->tsan);
#endif
  munmap(f->map_base, f->map_size);
  delete f;
}

}  // namespace

std::size_t FiberScheduler::default_stack_bytes() {
#if defined(RCS_TSAN_FIBERS) || defined(RCS_ASAN_FIBERS)
  std::size_t kb = 1024;  // sanitizer frames are several times larger
#else
  std::size_t kb = 256;
#endif
  if (const char* env = std::getenv("RCS_FIBER_STACK_KB")) {
    const long long v = std::atoll(env);
    if (v >= 64) kb = static_cast<std::size_t>(v);
  }
  return kb * 1024;
}

void FiberScheduler::run(int n, const Options& opt,
                         const std::function<void(int)>& task) {
  RCS_CHECK_MSG(n >= 0, "negative fiber count");
  if (n == 0) return;
  const std::size_t stack =
      opt.stack_bytes != 0 ? round_up_pages(opt.stack_bytes)
                           : default_stack_bytes();
  FiberSchedulerImpl impl;
  std::vector<FiberImpl*> fibers;
  fibers.reserve(static_cast<std::size_t>(n));
  const bool lanes = opt.lane_name && obs::trace_enabled();
  for (int i = 0; i < n; ++i) {
    FiberImpl* f = make_fiber(stack);
    f->sched = &impl;
    f->body = [&task, i] { task(i); };
    if (lanes) f->lane = obs::make_lane(opt.lane_name(i));
    fibers.push_back(f);
  }
  impl.unfinished = n;
  for (FiberImpl* f : fibers) impl.runq.push_back(f);

  // Host the worker loops on the shared pool: one loop per slot, the
  // calling thread always runs at least one. Loops beyond the pool's
  // actual thread count simply run back-to-back on whoever claims them
  // (the first loop on a thread exits only when all fibers are done, so
  // trailing loops return immediately).
  const int workers = std::max(1, opt.workers);
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(workers), 1,
      [&impl](std::size_t w0, std::size_t w1) {
        for (std::size_t w = w0; w < w1; ++w) impl.worker_loop();
      });

  std::exception_ptr first;
  for (FiberImpl* f : fibers) {
    RCS_CHECK(f->state.load(std::memory_order_acquire) == St::kDone);
    if (!first && f->error) first = f->error;
    destroy_fiber(f);
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace rcs::common
