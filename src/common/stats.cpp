#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rcs {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double p) {
  RCS_CHECK_MSG(!xs.empty(), "percentile of empty sample set");
  RCS_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double geomean(const std::vector<double>& xs) {
  RCS_CHECK_MSG(!xs.empty(), "geomean of empty sample set");
  double acc = 0.0;
  for (double x : xs) {
    RCS_CHECK_MSG(x > 0.0, "geomean requires positive samples, got " << x);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace rcs
