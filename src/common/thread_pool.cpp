#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcs::common {

namespace {

/// True while this thread is executing a parallel_for body — nested calls
/// detect it and run serially instead of re-entering the pool.
thread_local bool tls_in_parallel_body = false;

/// Pool telemetry: resolved once, recorded with relaxed atomics only when
/// RCS_METRICS / RCS_TRACE are on. Wall-clock only — the determinism
/// contract (simulated timings never flow through the pool) is untouched.
struct PoolMetrics {
  obs::Counter& jobs;          // parallel_for calls that fanned out
  obs::Counter& serial_runs;   // calls that degraded to serial
  obs::Counter& chunks;        // chunks executed (all threads)
  obs::Counter& busy_ns;       // summed wall time inside chunk bodies
  obs::Histogram& queue_wait;  // ns from job submit to chunk claim

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().counter("pool.jobs"),
        obs::Registry::global().counter("pool.serial_runs"),
        obs::Registry::global().counter("pool.chunks"),
        obs::Registry::global().counter("pool.busy_ns"),
        obs::Registry::global().histogram("pool.queue_wait_ns")};
    return m;
  }
};

bool pool_telemetry_on() {
  return obs::metrics_enabled() || obs::trace_enabled();
}

/// One parallel_for invocation: a statically chunked range plus completion
/// bookkeeping. Shared between the submitting thread and the workers.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t begin = 0;
  std::size_t count = 0;    // end - begin
  std::size_t nchunks = 0;  // static partition size
  std::int64_t submit_ns = -1;       // telemetry: when the job was enqueued
  std::atomic<std::size_t> next{0};  // next unclaimed chunk index
  std::atomic<std::size_t> done{0};  // chunks finished
  std::mutex mu;
  std::condition_variable cv;  // signalled when done == nchunks
  std::exception_ptr error;    // first exception from any chunk

  /// Chunk c covers [chunk_begin(c), chunk_begin(c+1)): sizes differ by at
  /// most one item (same even split worker_columns uses for column shares).
  std::size_t chunk_begin(std::size_t c) const {
    const std::size_t base = count / nchunks;
    const std::size_t rem = count % nchunks;
    return begin + c * base + std::min(c, rem);
  }

  /// Claim and run one chunk; returns false when the job has no chunks left.
  bool run_one() {
    const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
    if (c >= nchunks) return false;
    const std::int64_t t0 = submit_ns >= 0 ? obs::trace_now_ns() : -1;
    const bool saved = tls_in_parallel_body;
    tls_in_parallel_body = true;
    try {
      (*body)(chunk_begin(c), chunk_begin(c + 1));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
    tls_in_parallel_body = saved;
    if (t0 >= 0) {
      const std::int64_t t1 = obs::trace_now_ns();
      PoolMetrics& pm = PoolMetrics::get();
      pm.chunks.add(1);
      pm.busy_ns.add(static_cast<std::uint64_t>(t1 - t0));
      pm.queue_wait.record(static_cast<double>(t0 - submit_ns));
      obs::record_span("chunk", "pool", t0, t1);
    }
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == nchunks) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
    return true;
  }

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= nchunks;
  }
};

}  // namespace

struct ThreadPool::Impl {
  int threads = 1;
  std::mutex mu;
  std::condition_variable cv;  // wakes workers when jobs arrive / on stop
  std::deque<std::shared_ptr<Job>> jobs;
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_main() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stopping || !jobs.empty(); });
      if (stopping) return;
      std::shared_ptr<Job> job = jobs.front();
      if (job->exhausted()) {
        jobs.pop_front();
        continue;
      }
      lock.unlock();
      job->run_one();
      lock.lock();
    }
  }

  void start(int n) {
    threads = std::max(1, n);
    workers.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 0; i < threads - 1; ++i) {
      workers.emplace_back([this, i] {
        obs::set_thread_lane("pool.worker " + std::to_string(i));
        worker_main();
      });
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu);
      RCS_CHECK_MSG(jobs.empty(),
                    "ThreadPool stopped/resized with work in flight");
      stopping = true;
    }
    cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    stopping = false;
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  impl_->start(threads);
}

ThreadPool::~ThreadPool() { impl_->stop(); }

int ThreadPool::threads() const { return impl_->threads; }

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = std::min<std::size_t>(
      static_cast<std::size_t>(impl_->threads), std::max<std::size_t>(1, count / g));
  const bool telemetry = pool_telemetry_on();
  if (max_chunks <= 1 || tls_in_parallel_body) {
    if (telemetry) PoolMetrics::get().serial_runs.add(1);
    obs::ScopedTimer span("parallel_for(serial)", "pool");
    body(begin, end);
    return;
  }
  if (telemetry) PoolMetrics::get().jobs.add(1);
  obs::ScopedTimer span("parallel_for", "pool");

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->begin = begin;
  job->count = count;
  job->nchunks = max_chunks;
  if (telemetry) job->submit_ns = obs::trace_now_ns();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->jobs.push_back(job);
  }
  impl_->cv.notify_all();

  // The caller works too: claim chunks until the job is exhausted, then wait
  // for the chunks other threads claimed.
  while (job->run_one()) {
  }
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->nchunks;
    });
  }
  // Retire the (exhausted) job from the queue ourselves: workers only pop
  // lazily on their next wake-up, and the pool may be destroyed before then.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto& q = impl_->jobs;
    q.erase(std::remove(q.begin(), q.end(), job), q.end());
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {

int default_thread_count() {
  if (const char* env = std::getenv("RCS_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return std::min(n, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(default_thread_count());
  return pool;
}

}  // namespace

bool exchange_in_parallel_body(bool value) {
  const bool prev = tls_in_parallel_body;
  tls_in_parallel_body = value;
  return prev;
}

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::set_global_threads(int threads) {
  RCS_CHECK_MSG(threads >= 1, "thread count must be >= 1, got " << threads);
  global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace rcs::common
