#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace rcs {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_int(const std::string& name, std::int64_t def,
                  const std::string& help) {
  flags_[name] = Flag{Kind::Int, std::to_string(def), std::to_string(def), help};
}

void Cli::add_double(const std::string& name, double def,
                     const std::string& help) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", def);
  flags_[name] = Flag{Kind::Double, buf, buf, help};
}

void Cli::add_string(const std::string& name, std::string def,
                     const std::string& help) {
  flags_[name] = Flag{Kind::String, def, def, help};
}

void Cli::add_bool(const std::string& name, bool def, const std::string& help) {
  const char* v = def ? "true" : "false";
  flags_[name] = Flag{Kind::Bool, v, v, help};
}

void Cli::set(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  RCS_CHECK_MSG(it != flags_.end(), "unknown flag --" << name);
  it->second.value = value;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RCS_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    if (arg == "help") {
      print_help();
      return false;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    RCS_CHECK_MSG(it != flags_.end(), "unknown flag --" << arg);
    if (it->second.kind == Kind::Bool) {
      // A bare boolean flag means true; an explicit value may follow.
      if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                           std::string(argv[i + 1]) == "false")) {
        it->second.value = argv[++i];
      } else {
        it->second.value = "true";
      }
    } else {
      RCS_CHECK_MSG(i + 1 < argc, "flag --" << arg << " requires a value");
      it->second.value = argv[++i];
    }
  }
  return true;
}

const Cli::Flag& Cli::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  RCS_CHECK_MSG(it != flags_.end(), "flag --" << name << " was never registered");
  RCS_CHECK_MSG(it->second.kind == kind, "flag --" << name << " type mismatch");
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const Flag& f = find(name, Kind::Int);
  char* end = nullptr;
  const long long v = std::strtoll(f.value.c_str(), &end, 10);
  RCS_CHECK_MSG(end != nullptr && *end == '\0',
                "flag --" << name << ": bad integer '" << f.value << "'");
  return v;
}

double Cli::get_double(const std::string& name) const {
  const Flag& f = find(name, Kind::Double);
  char* end = nullptr;
  const double v = std::strtod(f.value.c_str(), &end);
  RCS_CHECK_MSG(end != nullptr && *end == '\0',
                "flag --" << name << ": bad number '" << f.value << "'");
  return v;
}

const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

bool Cli::get_bool(const std::string& name) const {
  const Flag& f = find(name, Kind::Bool);
  if (f.value == "true") return true;
  if (f.value == "false") return false;
  RCS_CHECK_MSG(false, "flag --" << name << ": bad bool '" << f.value << "'");
  return false;
}

void Cli::print_help() const {
  if (!description_.empty()) std::printf("%s\n\n", description_.c_str());
  std::printf("Flags:\n");
  for (const auto& [name, f] : flags_) {
    std::printf("  --%-20s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                f.def.c_str());
  }
}

}  // namespace rcs
