#pragma once
// Error handling primitives for the rcs libraries.
//
// Policy (per C++ Core Guidelines E.*): programming errors and violated
// preconditions throw `rcs::Error` with a formatted message; hot inner loops
// use RCS_DASSERT which compiles away in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace rcs {

/// Exception type thrown by all rcs libraries on precondition or invariant
/// violation. Carries a human-readable message including the source location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace rcs

/// Always-on check: throws rcs::Error when `cond` is false.
#define RCS_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::rcs::detail::fail(__FILE__, __LINE__, #cond, ""); \
  } while (0)

/// Always-on check with a streamed message:
///   RCS_CHECK_MSG(n > 0, "matrix dimension must be positive, got " << n);
#define RCS_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream rcs_os_;                                 \
      rcs_os_ << msg;                                             \
      ::rcs::detail::fail(__FILE__, __LINE__, #cond, rcs_os_.str()); \
    }                                                             \
  } while (0)

/// Debug-only assertion for hot paths; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define RCS_DASSERT(cond) ((void)0)
#else
#define RCS_DASSERT(cond) RCS_CHECK(cond)
#endif
