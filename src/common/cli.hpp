#pragma once
// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--name value` and `--name=value`. Unknown flags raise an error so
// typos surface immediately; `--help` prints registered flags.

#include <cstdint>
#include <map>
#include <string>

namespace rcs {

/// Declarative flag set; register defaults, then parse(argc, argv).
class Cli {
 public:
  explicit Cli(std::string program_description = {});

  /// Register flags with default values (also defines their type).
  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  void add_bool(const std::string& name, bool def, const std::string& help);

  /// Parse argv. Returns false when `--help` was requested (help printed).
  /// Throws rcs::Error on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Flag {
    Kind kind;
    std::string value;
    std::string def;
    std::string help;
  };
  const Flag& find(const std::string& name, Kind kind) const;
  void set(const std::string& name, const std::string& value);
  void print_help() const;

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace rcs
