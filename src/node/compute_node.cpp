#include "node/compute_node.hpp"

#include "common/error.hpp"

namespace rcs::node {

ComputeNode::ComputeNode(NodeParams params, net::VirtualClock& clock,
                         sim::TraceRecorder* trace, std::string name)
    : params_(std::move(params)),
      clock_(clock),
      trace_(trace),
      name_(std::move(name)) {}

void ComputeNode::set_faults(const sim::FaultPlan* plan, int rank,
                             sim::FaultStats* stats) {
  fault_plan_ = plan;
  fault_rank_ = rank;
  fault_stats_ = stats;
}

sim::SimTime ComputeNode::stretched(sim::SimTime start, sim::SimTime dt,
                                    bool fpga) {
  if (fault_plan_ == nullptr) return dt;
  const sim::SimTime out =
      fault_plan_->stretch_compute(fault_rank_, start, dt, fpga);
  if (out > dt && fault_stats_ != nullptr) {
    fault_stats_->slowdown_hits += 1;
    fault_stats_->slowdown_added_s += out - dt;
  }
  return out;
}

void ComputeNode::cpu_compute(CpuKernel kernel, double flops,
                              const char* label) {
  const sim::SimTime start = clock_.now();
  sim::SimTime dt = params_.gpp.seconds_for(kernel, flops);
  const double gamma = params_.dram_contention_factor;
  if (gamma > 0.0 && start < fpga_busy_until_) {
    RCS_CHECK_MSG(gamma < 1.0, "contention factor must be < 1");
    // The portion overlapping the FPGA's activity runs derated.
    const sim::SimTime window = fpga_busy_until_ - start;
    const sim::SimTime derated_full = dt / (1.0 - gamma);
    if (derated_full <= window) {
      dt = derated_full;  // finishes entirely inside the busy window
    } else {
      const sim::SimTime work_in_window = window * (1.0 - gamma);
      dt = window + (dt - work_in_window);  // remainder at full rate
    }
  }
  dt = stretched(start, dt, /*fpga=*/false);
  clock_.advance(dt);
  cpu_busy_total_ += dt;
  cpu_flops_total_ += flops;
  if (trace_ != nullptr)
    trace_->add(name_ + ".cpu", start, clock_.now(), label);
}

void ComputeNode::dram_to_fpga(std::uint64_t bytes) {
  const sim::SimTime start = clock_.now();
  // The processor drives the DRAM stream, so a CPU slowdown stretches it.
  const sim::SimTime dt = stretched(
      start, static_cast<double>(bytes) / params_.fpga.dram_bytes_per_s,
      /*fpga=*/false);
  clock_.advance(dt);
  cpu_busy_total_ += dt;
  if (trace_ != nullptr)
    trace_->add(name_ + ".dram", start, clock_.now(), "dram->fpga");
}

sim::SimTime ComputeNode::fpga_submit(double cycles, const char* label) {
  RCS_CHECK_MSG(cycles >= 0.0, "negative FPGA cycle count");
  // Start signal: processor writes the FPGA's control register.
  clock_.advance(params_.coordination_latency_s);
  ++coordination_events_;
  ++pending_submissions_;
  const sim::SimTime start =
      clock_.now() > fpga_busy_until_ ? clock_.now() : fpga_busy_until_;
  const sim::SimTime dt =
      stretched(start, params_.fpga.seconds_for_cycles(cycles), /*fpga=*/true);
  fpga_busy_until_ = start + dt;
  fpga_busy_total_ += dt;
  if (trace_ != nullptr)
    trace_->add(name_ + ".fpga", start, fpga_busy_until_, label);
  return fpga_busy_until_;
}

void ComputeNode::fpga_wait() {
  // Completion notification: processor polls the FPGA's status register.
  clock_.advance(params_.coordination_latency_s);
  ++coordination_events_;
  const sim::SimTime start = clock_.now();
  clock_.advance_to(fpga_busy_until_);
  // Exposed FPGA time: the processor stalled here until the pipeline
  // drained. The fpga_submit span shows the device's full busy interval;
  // this one shows the part the CPU could not hide behind its own work —
  // the "FPGA compute" bucket of the critical-path analyzer.
  if (trace_ != nullptr && clock_.now() > start) {
    trace_->add(name_ + ".fpga_wait", start, clock_.now(), "fpga.wait");
  }
  pending_submissions_ = 0;
}

void ComputeNode::read_fpga_results(const char* what) const {
  RCS_CHECK_MSG(fpga_results_visible(),
                "§4.4 coordination violation: processor reading '"
                    << what << "' before the FPGA signalled completion");
}

}  // namespace rcs::node
