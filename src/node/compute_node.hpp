#pragma once
// ComputeNode — the per-node hardware/software coordination layer of §4.4.
//
// A node owns a GPP model, an FPGA device, and the DRAM path between them.
// All timing flows into the node's VirtualClock (shared with its MiniMPI
// Comm, so communication and computation interleave on one timeline):
//
//   * cpu_compute(...)   — charges the CPU for `flops` of a kernel class.
//   * dram_to_fpga(...)  — charges the CPU for streaming input operands to
//                          the FPGA (Eq. 1: the processor cannot compute
//                          until the transfer completes).
//   * fpga_submit(...)   — the processor's "start" signal: queues `cycles`
//                          of FPGA work; the FPGA runs concurrently with the
//                          CPU (its completion horizon is tracked
//                          separately) and back-to-back submissions queue.
//   * fpga_wait()        — the "done" notification: advances the CPU clock
//                          to the FPGA's completion horizon.
//
// §4.4's memory-access coordination (processor and FPGA write disjoint DRAM
// regions; reads need the other side's permission) is enforced as a
// "results-visibility" protocol: fpga_results_visible() is only true after
// fpga_wait(); read_fpga_results() throws when called before the handshake.
// Coordination events (start signals, completion checks) are counted so the
// designs can report the coordination frequency the paper derives.

#include <cstdint>
#include <string>

#include "fpga/device.hpp"
#include "net/minimpi.hpp"
#include "node/gpp.hpp"
#include "sim/trace.hpp"

namespace rcs::node {

/// Static configuration of one compute node.
struct NodeParams {
  GppModel gpp;
  fpga::DeviceConfig fpga;
  /// Per-coordination-event latency (processor checking/raising an FPGA
  /// status register). The paper argues this is negligible; keep it
  /// parameterizable so the claim can be tested.
  sim::SimTime coordination_latency_s = 0.0;
  /// Memory-bus contention: while the FPGA is busy (streaming its staged
  /// operands and writing results), processor compute runs at a rate
  /// scaled by (1 - factor). The paper's model assumes 0 (the XD1 FPGA
  /// works out of its own SRAM); the knob quantifies systems where the
  /// accelerator shares the DRAM path.
  double dram_contention_factor = 0.0;
};

class ComputeNode {
 public:
  /// `clock` is the rank's virtual clock (shared with its Comm); `trace`
  /// may be null. `name` prefixes trace resources ("node3.cpu", ...).
  ComputeNode(NodeParams params, net::VirtualClock& clock,
              sim::TraceRecorder* trace, std::string name);

  const NodeParams& params() const { return params_; }
  const fpga::DeviceConfig& fpga_device() const { return params_.fpga; }
  const GppModel& gpp() const { return params_.gpp; }

  /// Charge `flops` of `kernel` work to the processor.
  void cpu_compute(CpuKernel kernel, double flops, const char* label);

  /// Charge the processor for moving `bytes` from DRAM to the FPGA at B_d.
  void dram_to_fpga(std::uint64_t bytes);

  /// Signal the FPGA to start `cycles` of work. Returns the simulated
  /// completion time. Work queues behind any still-running FPGA task.
  sim::SimTime fpga_submit(double cycles, const char* label);

  /// Block the processor until all submitted FPGA work is done, making the
  /// FPGA's results visible to the processor (read permission of §4.4).
  void fpga_wait();

  /// True after fpga_wait() with no submissions since.
  bool fpga_results_visible() const { return pending_submissions_ == 0; }

  /// Assert the §4.4 read-permission protocol before the processor touches
  /// FPGA-produced data. Throws rcs::Error when results are not yet visible.
  void read_fpga_results(const char* what) const;

  /// Simulated time the FPGA becomes idle.
  sim::SimTime fpga_free_at() const { return fpga_busy_until_; }

  /// Accumulated busy seconds.
  sim::SimTime cpu_busy_total() const { return cpu_busy_total_; }
  sim::SimTime fpga_busy_total() const { return fpga_busy_total_; }

  /// Coordination events so far (start signals + completion notifications).
  std::uint64_t coordination_events() const { return coordination_events_; }

  /// Floating-point operations executed so far on each side.
  double cpu_flops_total() const { return cpu_flops_total_; }
  double fpga_flops_total() const { return fpga_flops_total_; }

  /// Record `flops` as executed on the FPGA (callers know the semantic flop
  /// count of a task; cycles alone cannot recover it for partial tiles).
  void note_fpga_flops(double flops) { fpga_flops_total_ += flops; }

  /// Subject this node to `plan`'s slowdown windows for rank `rank`: CPU and
  /// FPGA charges overlapping a window are stretched by its factor, with the
  /// added seconds accounted into `stats` (may be null). The plan must
  /// outlive the node; nullptr restores nominal rates.
  void set_faults(const sim::FaultPlan* plan, int rank,
                  sim::FaultStats* stats);

  net::VirtualClock& clock() { return clock_; }

 private:
  /// Apply the fault plan's slowdown windows to a charge of `dt` starting
  /// at `start` (identity without a plan).
  sim::SimTime stretched(sim::SimTime start, sim::SimTime dt, bool fpga);

  NodeParams params_;
  net::VirtualClock& clock_;
  sim::TraceRecorder* trace_;
  std::string name_;
  const sim::FaultPlan* fault_plan_ = nullptr;
  int fault_rank_ = -1;
  sim::FaultStats* fault_stats_ = nullptr;
  sim::SimTime fpga_busy_until_ = 0.0;
  sim::SimTime cpu_busy_total_ = 0.0;
  sim::SimTime fpga_busy_total_ = 0.0;
  std::uint64_t coordination_events_ = 0;
  std::uint64_t pending_submissions_ = 0;
  double cpu_flops_total_ = 0.0;
  double fpga_flops_total_ = 0.0;
};

}  // namespace rcs::node
