#include "node/gpp.hpp"

#include "common/error.hpp"

namespace rcs::node {

const char* to_string(CpuKernel k) {
  switch (k) {
    case CpuKernel::Dgemm: return "dgemm";
    case CpuKernel::Dgetrf: return "dgetrf";
    case CpuKernel::Dtrsm: return "dtrsm";
    case CpuKernel::Dpotrf: return "dpotrf";
    case CpuKernel::FwBlock: return "fw-block";
    case CpuKernel::MemBound: return "mem-bound";
  }
  return "?";
}

GppModel::GppModel(double default_flops_per_s)
    : default_rate_(default_flops_per_s) {
  RCS_CHECK_MSG(default_flops_per_s > 0.0, "GPP rate must be positive");
}

void GppModel::set_rate(CpuKernel kernel, double flops_per_s) {
  RCS_CHECK_MSG(flops_per_s > 0.0, "GPP rate must be positive");
  rates_[kernel] = flops_per_s;
}

double GppModel::sustained(CpuKernel kernel) const {
  auto it = rates_.find(kernel);
  return it == rates_.end() ? default_rate_ : it->second;
}

sim::SimTime GppModel::seconds_for(CpuKernel kernel, double flops) const {
  RCS_CHECK_MSG(flops >= 0.0, "negative flop count");
  return flops / sustained(kernel);
}

GppModel GppModel::opteron_2p2ghz() {
  GppModel m(1e9);
  m.set_rate(CpuKernel::Dgemm, 3.9e9);
  // Table 1, b = 3000: dgetrf (2/3) * 3000^3 flops in 4.9 s -> 3.67 GFLOPS;
  // dtrsm 3000^3 flops in 7.1 s -> 3.80 GFLOPS.
  m.set_rate(CpuKernel::Dgetrf, (2.0 / 3.0) * 27e9 / 4.9);
  m.set_rate(CpuKernel::Dtrsm, 27e9 / 7.1);
  // dpotrf sustains close to dgetrf on this class of machine.
  m.set_rate(CpuKernel::Dpotrf, (2.0 / 3.0) * 27e9 / 4.9);
  m.set_rate(CpuKernel::FwBlock, 190e6);
  m.set_rate(CpuKernel::MemBound, 1e9);
  return m;
}

}  // namespace rcs::node
