#pragma once
// General-purpose-processor performance model.
//
// The paper reduces the processor to a sustained rate O_p x F_p measured per
// kernel by running a sample program (§4.1): 3.9 GFLOPS for ACML dgemm at
// matrix size 2048, 190 MFLOPS for the b = 256 Floyd–Warshall block, and the
// Table 1 latencies for dgetrf/dtrsm. GppModel holds those per-kernel rates
// and converts flop counts to simulated seconds.

#include <map>
#include <string>

#include "sim/engine.hpp"

namespace rcs::node {

/// Kernel classes the host code runs; each has its own sustained rate.
enum class CpuKernel {
  Dgemm,    // blocked matrix multiply (ACML dgemm stand-in)
  Dgetrf,   // panel LU factorization (opLU)
  Dtrsm,    // triangular solves (opL / opU)
  Dpotrf,   // Cholesky panel factorization
  FwBlock,  // b x b Floyd–Warshall block task
  MemBound, // elementwise updates such as opMS (rate = sustained stream rate)
};

const char* to_string(CpuKernel k);

/// Per-kernel sustained floating-point rates of one processor.
class GppModel {
 public:
  /// All kernels default to `default_flops_per_s` until overridden.
  explicit GppModel(double default_flops_per_s = 1e9);

  /// Set the sustained rate for one kernel class.
  void set_rate(CpuKernel kernel, double flops_per_s);

  /// Sustained flops/s for a kernel class (O_p x F_p in the paper's terms).
  double sustained(CpuKernel kernel) const;

  /// Simulated seconds to execute `flops` operations of `kernel`.
  sim::SimTime seconds_for(CpuKernel kernel, double flops) const;

  /// The paper's 2.2 GHz AMD Opteron as measured in Section 6.1:
  ///   dgemm 3.9 GFLOPS; dgetrf 3.67 GFLOPS and dtrsm 3.80 GFLOPS (derived
  ///   from Table 1: 4.9 s for (2/3)b^3 and 7.1 s for b^3 flops at b = 3000);
  ///   Floyd–Warshall block 190 MFLOPS; memory-bound updates ~1 GFLOP/s
  ///   equivalent (stream-rate bound).
  static GppModel opteron_2p2ghz();

 private:
  double default_rate_;
  std::map<CpuKernel, double> rates_;
};

}  // namespace rcs::node
