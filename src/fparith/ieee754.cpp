#include "fparith/ieee754.hpp"

#include <cstring>

#include "common/error.hpp"

namespace rcs::fparith {

namespace {

using u64 = std::uint64_t;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using u128 = unsigned __int128;  // GCC/Clang extension; fine for this port
#pragma GCC diagnostic pop

constexpr u64 kSignMask = 0x8000000000000000ULL;
constexpr u64 kExpMask = 0x7ff0000000000000ULL;
constexpr u64 kFracMask = 0x000fffffffffffffULL;
constexpr u64 kQuietNan = 0x7ff8000000000000ULL;
constexpr int kBias = 1023;
constexpr int kFracBits = 52;

struct Unpacked {
  bool sign;       // true = negative
  int exp;         // unbiased exponent of the leading significand bit
  u64 sig;         // significand, MSB at bit kFracBits for finite nonzero
  enum class Cls { Zero, Finite, Inf, NaN } cls;
};

int highest_bit(u64 x) {
  RCS_DASSERT(x != 0);
  return 63 - __builtin_clzll(x);
}

int highest_bit128(u128 x) {
  const u64 hi = static_cast<u64>(x >> 64);
  if (hi != 0) return 64 + highest_bit(hi);
  return highest_bit(static_cast<u64>(x));
}

Unpacked unpack(u64 bits) {
  Unpacked u;
  u.sign = (bits & kSignMask) != 0;
  const int expf = static_cast<int>((bits & kExpMask) >> kFracBits);
  const u64 frac = bits & kFracMask;
  if (expf == 0x7ff) {
    u.cls = (frac == 0) ? Unpacked::Cls::Inf : Unpacked::Cls::NaN;
    u.exp = 0;
    u.sig = frac;
    return u;
  }
  if (expf == 0) {
    if (frac == 0) {
      u.cls = Unpacked::Cls::Zero;
      u.exp = 0;
      u.sig = 0;
      return u;
    }
    // Subnormal: value = frac * 2^-1074. Normalize so the MSB sits at bit 52;
    // with sig scaled that way, value = sig * 2^(exp - 52) where
    // exp = highest_bit(frac) - 1074 + 52 - 52 = h - 1074 ... derived below.
    // value = sig * 2^(exp - 52) = frac*2^(52-h) * 2^(h-1074-52)
    //       = frac * 2^-1074.
    const int h = highest_bit(frac);
    u.cls = Unpacked::Cls::Finite;
    u.sig = frac << (kFracBits - h);
    u.exp = h - 1074;
    return u;
  }
  u.cls = Unpacked::Cls::Finite;
  u.sig = frac | (1ULL << kFracBits);
  u.exp = expf - kBias;
  return u;
}

u64 pack_zero(bool sign) { return sign ? kSignMask : 0; }

u64 pack_inf(bool sign) { return (sign ? kSignMask : 0) | kExpMask; }

/// Round an exact value `sig * 2^exp` (sig != 0) to binary64 with
/// round-to-nearest-even, handling normal, subnormal, overflow and underflow
/// uniformly (in the style of softfloat's roundPackToF64).
u64 round_pack(bool sign, int exp, u128 sig) {
  RCS_DASSERT(sig != 0);
  const int h = highest_bit128(sig);
  const int lead_exp = exp + h;  // unbiased exponent of the value
  // Quantum exponent: the weight of the result's LSB.
  const int qe = (lead_exp - kFracBits >= -1074) ? lead_exp - kFracBits : -1074;
  const int shift = qe - exp;  // bits of sig below the quantum

  u128 m;
  bool round_up = false;
  if (shift <= 0) {
    // The exact value already aligns at or above the quantum: exact.
    RCS_DASSERT(-shift < 128 - h);
    m = sig << (-shift);
  } else if (shift >= 128) {
    // Entire significand is below half an ulp of the smallest subnormal.
    m = 0;  // sticky-only: rounds to zero under RNE
  } else {
    m = sig >> shift;
    const u128 rem = sig - (m << shift);
    const u128 half = u128(1) << (shift - 1);
    if (rem > half) {
      round_up = true;
    } else if (rem == half) {
      round_up = (m & 1) != 0;  // ties to even
    }
  }
  if (round_up) m += 1;

  if (m == 0) return pack_zero(sign);

  if (qe == -1074 && m < (u128(1) << kFracBits)) {
    // Subnormal result (or zero, handled above).
    return (sign ? kSignMask : 0) | static_cast<u64>(m);
  }

  // m is in [2^52, 2^53]; a value of exactly 2^53 means rounding carried.
  int res_exp = qe + kFracBits;  // unbiased exponent of leading bit
  if (m == (u128(1) << (kFracBits + 1))) {
    m >>= 1;
    res_exp += 1;
  }
  // Subnormal that rounded up to the smallest normal: m == 2^52 with
  // qe == -1074 encodes naturally below because res_exp == -1022.
  if (res_exp > 1023) return pack_inf(sign);  // overflow rounds to infinity
  const int biased = res_exp + kBias;
  RCS_DASSERT(biased >= 1 && biased <= 2046);
  return (sign ? kSignMask : 0) |
         (static_cast<u64>(biased) << kFracBits) |
         (static_cast<u64>(m) & kFracMask);
}

bool is_nan(u64 bits) {
  return (bits & kExpMask) == kExpMask && (bits & kFracMask) != 0;
}

}  // namespace

std::uint64_t to_bits(double x) {
  std::uint64_t b;
  static_assert(sizeof(b) == sizeof(x));
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

double from_bits(std::uint64_t bits) {
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

double add(double da, double db) {
  const u64 abits = to_bits(da);
  const u64 bbits = to_bits(db);
  Unpacked a = unpack(abits);
  Unpacked b = unpack(bbits);
  using Cls = Unpacked::Cls;

  if (a.cls == Cls::NaN || b.cls == Cls::NaN) return from_bits(kQuietNan);
  if (a.cls == Cls::Inf && b.cls == Cls::Inf) {
    if (a.sign != b.sign) return from_bits(kQuietNan);  // inf - inf
    return from_bits(pack_inf(a.sign));
  }
  if (a.cls == Cls::Inf) return from_bits(pack_inf(a.sign));
  if (b.cls == Cls::Inf) return from_bits(pack_inf(b.sign));
  if (a.cls == Cls::Zero && b.cls == Cls::Zero) {
    // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under round-to-nearest.
    return from_bits(pack_zero(a.sign && b.sign));
  }
  if (a.cls == Cls::Zero) return from_bits(bbits);
  if (b.cls == Cls::Zero) return from_bits(abits);

  // Order so |A| has the larger exponent (ties: larger significand).
  if (b.exp > a.exp || (b.exp == a.exp && b.sig > a.sig)) {
    std::swap(a, b);
  }
  const int diff = a.exp - b.exp;
  // Guard region: 3 bits; clamp huge alignments, smaller operand becomes
  // pure sticky (correct under RNE — see tests for boundary cases).
  constexpr int kGuard = 3;
  const int clamp = diff < 70 ? diff : 70;
  const u128 A = u128(a.sig) << (clamp + kGuard);
  u128 B;
  if (diff <= 70) {
    B = u128(b.sig) << kGuard;
  } else {
    B = 1;  // sticky
  }
  const int exp_out = a.exp - kFracBits - clamp - kGuard;

  u128 S;
  bool sign;
  if (a.sign == b.sign) {
    S = A + B;
    sign = a.sign;
  } else {
    RCS_DASSERT(A >= B);
    S = A - B;
    sign = a.sign;
    if (S == 0) return from_bits(pack_zero(false));  // exact cancellation: +0
  }
  return from_bits(round_pack(sign, exp_out, S));
}

double sub(double a, double b) { return add(a, -b); }

double mul(double da, double db) {
  const u64 abits = to_bits(da);
  const u64 bbits = to_bits(db);
  const Unpacked a = unpack(abits);
  const Unpacked b = unpack(bbits);
  using Cls = Unpacked::Cls;
  const bool sign = a.sign != b.sign;

  if (a.cls == Cls::NaN || b.cls == Cls::NaN) return from_bits(kQuietNan);
  if (a.cls == Cls::Inf || b.cls == Cls::Inf) {
    if (a.cls == Cls::Zero || b.cls == Cls::Zero)
      return from_bits(kQuietNan);  // 0 * inf
    return from_bits(pack_inf(sign));
  }
  if (a.cls == Cls::Zero || b.cls == Cls::Zero)
    return from_bits(pack_zero(sign));

  // Exact product: sig_a * sig_b * 2^(ea + eb - 104).
  const u128 prod = u128(a.sig) * u128(b.sig);
  const int exp_out = a.exp + b.exp - 2 * kFracBits;
  return from_bits(round_pack(sign, exp_out, prod));
}

double div(double da, double db) {
  const u64 abits = to_bits(da);
  const u64 bbits = to_bits(db);
  const Unpacked a = unpack(abits);
  const Unpacked b = unpack(bbits);
  using Cls = Unpacked::Cls;
  const bool sign = a.sign != b.sign;

  if (a.cls == Cls::NaN || b.cls == Cls::NaN) return from_bits(kQuietNan);
  if (a.cls == Cls::Inf) {
    if (b.cls == Cls::Inf) return from_bits(kQuietNan);  // inf / inf
    return from_bits(pack_inf(sign));
  }
  if (b.cls == Cls::Inf) return from_bits(pack_zero(sign));
  if (b.cls == Cls::Zero) {
    if (a.cls == Cls::Zero) return from_bits(kQuietNan);  // 0 / 0
    return from_bits(pack_inf(sign));                     // x / 0
  }
  if (a.cls == Cls::Zero) return from_bits(pack_zero(sign));

  // a/b = (m_a / m_b) * 2^(ea - eb). Widen the dividend by 60 bits so the
  // quotient has >= 8 bits below the rounding position, then jam the
  // remainder into the quotient's LSB as sticky (softfloat's technique:
  // the true value lies strictly inside (q, q+1), so odd-izing q preserves
  // every round-to-nearest-even decision).
  const u128 num = u128(a.sig) << 60;
  u128 q = num / b.sig;
  const u128 r = num % b.sig;
  if (r != 0) q |= 1;
  const int exp_out = a.exp - b.exp - 60;
  return from_bits(round_pack(sign, exp_out, q));
}

namespace {
/// Integer square root of a u128 (floor), bit-by-bit.
u128 isqrt128(u128 x) {
  if (x == 0) return 0;
  u128 res = 0;
  // Highest power of four <= x.
  const int hb = highest_bit128(x);
  u128 bit = u128(1) << (hb & ~1);
  while (bit != 0) {
    if (x >= res + bit) {
      x -= res + bit;
      res = (res >> 1) + bit;
    } else {
      res >>= 1;
    }
    bit >>= 2;
  }
  return res;
}
}  // namespace

double sqrt(double da) {
  const u64 abits = to_bits(da);
  const Unpacked a = unpack(abits);
  using Cls = Unpacked::Cls;
  if (a.cls == Cls::NaN) return from_bits(kQuietNan);
  if (a.cls == Cls::Zero) return from_bits(pack_zero(a.sign));  // +-0
  if (a.sign) return from_bits(kQuietNan);  // negative
  if (a.cls == Cls::Inf) return from_bits(pack_inf(false));

  // a = m * 2^(e - 52). Make the exponent of the radicand even, widen by
  // 64 bits so the integer root has ~58 significant bits, then jam the
  // remainder as sticky.
  int e = a.exp - kFracBits;  // a = sig * 2^e
  u128 m = a.sig;
  if (e & 1) {
    m <<= 1;
    e -= 1;
  }
  const u128 widened = m << 64;  // sqrt gains 32 bits
  u128 s = isqrt128(widened);
  if (s * s != widened) s |= 1;
  // sqrt(a) = s * 2^(e/2 - 32).
  return from_bits(round_pack(false, e / 2 - 32, s));
}

int compare(double da, double db) {
  const u64 a = to_bits(da);
  const u64 b = to_bits(db);
  if (is_nan(a) || is_nan(b)) return 2;
  // Map to a monotone unsigned ordering: flip all bits for negatives, flip
  // the sign bit for positives (the classic radix-sortable float key).
  auto key = [](u64 x) -> u64 {
    if (x & kSignMask) return ~x;
    return x | kSignMask;
  };
  const u64 ka = key(a);
  const u64 kb = key(b);
  // -0 and +0 compare equal.
  const bool a_zero = (a & ~kSignMask) == 0;
  const bool b_zero = (b & ~kSignMask) == 0;
  if (a_zero && b_zero) return 0;
  if (ka < kb) return -1;
  if (ka > kb) return 1;
  return 0;
}

double min(double a, double b) {
  const int c = compare(a, b);
  if (c == 2) {
    if (is_nan(to_bits(a)) && is_nan(to_bits(b))) return from_bits(kQuietNan);
    return is_nan(to_bits(a)) ? b : a;  // minNum: ignore the quiet NaN
  }
  return c <= 0 ? a : b;
}

double max(double a, double b) {
  const int c = compare(a, b);
  if (c == 2) {
    if (is_nan(to_bits(a)) && is_nan(to_bits(b))) return from_bits(kQuietNan);
    return is_nan(to_bits(a)) ? b : a;
  }
  return c >= 0 ? a : b;
}

}  // namespace rcs::fparith
