#pragma once
// Bit-accurate software implementation of IEEE-754 binary64 arithmetic with
// round-to-nearest-even, modelling the custom double-precision floating-point
// cores the paper deploys on the FPGA (Govindu et al., "A Library of
// Parameterizable Floating-Point Cores for FPGAs", ERSA 2005 — reference [8]).
//
// The cores implement the default IEEE environment: round-to-nearest-even,
// subnormal support, quiet-NaN propagation, no exception traps. Results are
// bit-identical to compliant hardware (and to the host FPU in its default
// rounding mode), which the test suite verifies exhaustively on random and
// directed operand patterns.

#include <cstdint>

namespace rcs::fparith {

/// Reinterpret a double as its IEEE-754 bit pattern.
std::uint64_t to_bits(double x);

/// Reinterpret an IEEE-754 bit pattern as a double.
double from_bits(std::uint64_t bits);

/// Bit-accurate binary64 addition (round-to-nearest-even).
double add(double a, double b);

/// Bit-accurate binary64 subtraction (round-to-nearest-even).
double sub(double a, double b);

/// Bit-accurate binary64 multiplication (round-to-nearest-even).
double mul(double a, double b);

/// Bit-accurate binary64 division (round-to-nearest-even). The core
/// library of reference [8] provides a pipelined divider; the hybrid
/// designs use it for the triangular-solve reciprocals when panel work is
/// mapped to hardware.
double div(double a, double b);

/// Bit-accurate binary64 square root (round-to-nearest-even); negative
/// inputs (other than -0) return quiet NaN.
double sqrt(double a);

/// Three-way comparison mirroring a hardware comparator core.
/// Returns -1 (a < b), 0 (equal, with -0 == +0), +1 (a > b),
/// +2 (unordered: at least one NaN).
int compare(double a, double b);

/// IEEE minNum-style minimum: returns the smaller operand; if exactly one
/// operand is NaN, returns the other; if both are NaN, returns quiet NaN.
/// This is the select operation the Floyd–Warshall comparator feeds.
double min(double a, double b);

/// Same contract as min, but the larger operand.
double max(double a, double b);

/// Fused building block of the Floyd–Warshall PE: min(acc, a + b) where the
/// addition itself is the bit-accurate core.
inline double relax(double acc, double a, double b) {
  return min(acc, add(a, b));
}

/// Pipeline descriptor for one floating-point core, as synthesized on a
/// Virtex-II Pro class device (reference [8] reports deeply pipelined cores
/// with single-cycle throughput). `latency_cycles` is the fill depth;
/// `issue_interval` is cycles between accepted operand pairs (1 = fully
/// pipelined).
struct CorePipeline {
  int latency_cycles;
  int issue_interval;

  /// Cycles to stream n back-to-back operations through the pipeline.
  long long cycles_for(long long n) const {
    if (n <= 0) return 0;
    return latency_cycles + (n - 1) * issue_interval;
  }
};

/// Pipeline depths representative of the paper's core library at ~130 MHz on
/// XC2VP50 (reference [8]).
constexpr CorePipeline kAdderPipeline{14, 1};
constexpr CorePipeline kMultiplierPipeline{11, 1};
constexpr CorePipeline kComparatorPipeline{2, 1};
// Dividers and square-root cores of that era iterate per mantissa digit
// group: long latency, partial pipelining.
constexpr CorePipeline kDividerPipeline{32, 4};
constexpr CorePipeline kSqrtPipeline{36, 4};

}  // namespace rcs::fparith
