#pragma once
// Arithmetic backends for the FPGA kernel models.
//
// The FPGA kernels in src/fpga are templated on a backend so they can run
// either with the host FPU (`NativeFp`, fast — the default for experiments)
// or with the bit-accurate software cores (`SoftFp`, slow — used by the test
// suite to pin down that the modelled hardware computes exactly what
// IEEE-754-compliant cores would).

#include "fparith/ieee754.hpp"

namespace rcs::fparith {

/// Host-FPU backend. On any IEEE-754 platform in the default rounding mode
/// this produces the same bits as SoftFp (verified by tests).
struct NativeFp {
  static double add(double a, double b) { return a + b; }
  static double sub(double a, double b) { return a - b; }
  static double mul(double a, double b) { return a * b; }
  static double min(double a, double b) { return a < b ? a : b; }
  static double mac(double acc, double a, double b) { return acc + a * b; }
  static double relax(double acc, double a, double b) {
    const double s = a + b;
    return s < acc ? s : acc;
  }
  static constexpr const char* name() { return "native"; }
};

/// Bit-accurate software-core backend (round-to-nearest-even, subnormals).
/// Note: `mac` is an unfused multiply-then-add, matching the paper's PEs,
/// which chain a multiplier core into an adder core (no FMA).
struct SoftFp {
  static double add(double a, double b) { return fparith::add(a, b); }
  static double sub(double a, double b) { return fparith::sub(a, b); }
  static double mul(double a, double b) { return fparith::mul(a, b); }
  static double min(double a, double b) { return fparith::min(a, b); }
  static double mac(double acc, double a, double b) {
    return fparith::add(acc, fparith::mul(a, b));
  }
  static double relax(double acc, double a, double b) {
    return fparith::relax(acc, a, b);
  }
  static constexpr const char* name() { return "soft-ieee754"; }
};

}  // namespace rcs::fparith
