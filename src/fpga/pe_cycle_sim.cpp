#include "fpga/pe_cycle_sim.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcs::fpga {

PeCycleStats simulate_pe_array(int k, long long tiles,
                               fparith::CorePipeline multiplier,
                               fparith::CorePipeline adder) {
  RCS_CHECK_MSG(k >= 1, "need at least one PE");
  RCS_CHECK_MSG(tiles >= 1, "need at least one tile");
  RCS_CHECK_MSG(multiplier.issue_interval == 1 && adder.issue_interval == 1,
                "the [21] array requires fully pipelined cores");

  PeCycleStats stats;
  // Hazard analysis, identical on every PE (PE j owns column j of E and is
  // mirrored by the others, so one PE's schedule is the array's schedule):
  //
  //  * Issue: per cycle one C element streams in; the PE multiplies it by a
  //    stored D element. A tile contributes k^2 multiplies; `tiles` tiles
  //    issue back to back: the last multiply issues at cycle
  //    tiles*k^2 - 1 and retires Lm cycles later.
  const long long issues = tiles * static_cast<long long>(k) *
                           static_cast<long long>(k);
  const long long last_mult_retire =
      issues - 1 + multiplier.latency_cycles;

  //  * Accumulation: element e_ij receives a term every k cycles (the
  //    stream is l-major). With the adder La cycles deep, consecutive adds
  //    to the same running sum would stall; [21]-style designs bank the
  //    partials: B = ceil(La / k) independent accumulators per element
  //    absorb the stream with zero stalls (bank b only sees a new term
  //    every B*k >= La cycles).
  const int banks = static_cast<int>(
      (adder.latency_cycles + k - 1) / k);
  stats.partial_banks = std::max(banks, 1);

  //  * Each add issues the cycle its multiply retires (the adder port is
  //    free: one add per PE per cycle, same rate as the multiplier). The
  //    last streaming add retires at last_mult_retire + La.
  const long long last_stream_add = last_mult_retire + adder.latency_cycles;

  //  * Drain: the B partial banks per element reduce pairwise; ceil(log2 B)
  //    rounds of La each. (For B = 1 nothing remains.)
  long long reduce_rounds = 0;
  for (int b = stats.partial_banks; b > 1; b = (b + 1) / 2) ++reduce_rounds;
  const long long reduce_cycles =
      reduce_rounds * static_cast<long long>(adder.latency_cycles);

  stats.steady_cycles = issues;  // one issue per PE per cycle, no stalls
  stats.total_cycles = last_stream_add + reduce_cycles + 1;
  stats.drain_cycles = stats.total_cycles - stats.steady_cycles;
  stats.multiplier_utilization =
      static_cast<double>(issues) / static_cast<double>(stats.total_cycles);
  return stats;
}

}  // namespace rcs::fpga
