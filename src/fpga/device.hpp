#pragma once
// FPGA device model: the resources an accelerator design can draw on and the
// rates at which it moves data. Mirrors the Xilinx Virtex-II Pro XC2VP50 in
// the Cray XD1 compute blade (Section 3 of the paper): on-chip BRAM, four
// banks of on-board QDR-II SRAM, and a RapidArray path to processor DRAM.

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace rcs::fpga {

/// Static description of one FPGA as configured with a particular design.
/// `pe_count` (k) and `clock_hz` (F_f) are per-design outcomes of synthesis;
/// the paper reports k = 8 at 130 MHz for the matrix multiplier and k = 8 at
/// 120 MHz for the Floyd–Warshall kernel on the XC2VP50.
struct DeviceConfig {
  std::string name;
  int pe_count = 8;            // k: processing elements configured
  double clock_hz = 130e6;     // F_f: achieved design clock
  int flops_per_pe_cycle = 2;  // each PE has one multiplier + one adder core
  std::uint64_t sram_bytes = 8ull << 20;   // on-board SRAM allocated (8 MB)
  std::uint64_t bram_bytes = 522ull << 10; // XC2VP50 total Block RAM (~522 KB)
  double dram_bytes_per_s = 1.04e9;        // B_d: word/cycle from node DRAM

  /// O_f: floating-point operations per clock across all PEs.
  int ops_per_cycle() const { return pe_count * flops_per_pe_cycle; }

  /// O_f * F_f: the design's peak floating-point rate.
  double peak_flops() const { return ops_per_cycle() * clock_hz; }

  /// Seconds for `cycles` design clock cycles.
  double seconds_for_cycles(double cycles) const {
    RCS_DASSERT(cycles >= 0.0);
    return cycles / clock_hz;
  }

  /// XC2VP50 configured with the matrix-multiply array of reference [21],
  /// as measured in Section 6.1 (k = 8, 130 MHz, B_d = 1.04 GB/s).
  static DeviceConfig xc2vp50_matmul();

  /// XC2VP50 configured with the Floyd–Warshall kernel of reference [18],
  /// as measured in Section 6.1 (k = 8, 120 MHz, B_d = 0.96 GB/s).
  static DeviceConfig xc2vp50_floyd_warshall();

  /// A DRC Virtex-4 module as attached to Cray XT3 (Section 3): used by the
  /// capacity-planning example for what-if prediction, not by the paper's
  /// measurements.
  static DeviceConfig drc_virtex4_matmul();
};

/// Throws rcs::Error when a design's memory demand exceeds the device.
void require_sram(const DeviceConfig& dev, std::uint64_t words_needed,
                  const char* what);
void require_bram(const DeviceConfig& dev, std::uint64_t words_needed,
                  const char* what);

}  // namespace rcs::fpga
