#pragma once
// FPGA resource accounting and a synthesis estimator.
//
// The paper reports synthesis outcomes ("at most 8 PEs can be configured",
// "our implementation achieved 120 MHz") without the derivation. This module
// reconstructs them from first principles: a device is a budget of slices,
// 18-Kbit Block RAMs and MULT18 blocks; each floating-point core costs a
// known amount (era figures from the core library of reference [8]); a
// kernel's PE count is what fits under a routable utilization cap, and the
// achievable clock degrades with utilization (routing congestion).
//
// The constants are calibrated so the XC2VP50 yields the paper's
// k = 8 @ ~130 MHz for the matrix-multiply array and k = 8 @ ~120 MHz for
// the Floyd–Warshall kernel; the estimator then extrapolates to other
// devices (the capacity-planning example uses it for the Virtex-4 parts).

#include <cstdint>
#include <string>

#include "fpga/device.hpp"

namespace rcs::fpga {

/// Raw resources of one FPGA part.
struct ResourceBudget {
  std::string name;
  long slices = 0;        // logic slices (2 LUT + 2 FF each, V2Pro-era)
  long bram_blocks = 0;   // 18-Kbit Block RAMs
  long mult18 = 0;        // 18x18 hardware multipliers
  double fabric_hz = 0;   // clock of a small, uncongested design

  /// Xilinx Virtex-II Pro XC2VP50 (the XD1 accelerator).
  static ResourceBudget xc2vp50();
  /// Xilinx Virtex-4 LX100-class part (DRC module on XT3).
  static ResourceBudget virtex4_lx100();
  /// Xilinx Virtex-4 LX200-class part (SGI RASC RC100 blade).
  static ResourceBudget virtex4_lx200();
};

/// Cost of one instantiated core (reference [8]-era double-precision cores).
struct CoreCost {
  long slices = 0;
  long mult18 = 0;
  double max_hz = 0;  // standalone achievable clock

  static CoreCost dp_adder();
  static CoreCost dp_multiplier();
  static CoreCost dp_comparator();
  static CoreCost dp_divider();
  static CoreCost dp_sqrt();
};

/// Outcome of estimating a kernel on a device.
struct SynthesisResult {
  int pe_count = 0;        // k
  double clock_hz = 0;     // F_f after congestion derating
  double slice_utilization = 0.0;  // fraction of the device's slices
  long bram_blocks_used = 0;
  long mult18_used = 0;

  /// O_f x F_f of the synthesized design (2 flops per PE per cycle).
  double peak_flops() const { return 2.0 * pe_count * clock_hz; }
};

/// Estimate the matrix-multiply PE array [21] (per PE: one multiplier, one
/// adder, k x k double-buffered BRAM tiles).
SynthesisResult synthesize_matmul(const ResourceBudget& dev);

/// Estimate the Floyd–Warshall kernel [18] (per PE: one adder, one
/// comparator; a heavier shared sweep datapath).
SynthesisResult synthesize_floyd_warshall(const ResourceBudget& dev);

/// Convert a synthesis estimate into a DeviceConfig usable by the kernels
/// (B_d = one 8-byte word per design clock, as on the XD1 RapidArray path,
/// capped at `dram_path_bytes_per_s` when the board's link is slower).
DeviceConfig to_device_config(const ResourceBudget& dev,
                              const SynthesisResult& synth,
                              const std::string& kernel_name,
                              std::uint64_t sram_bytes,
                              double dram_path_bytes_per_s);

}  // namespace rcs::fpga
