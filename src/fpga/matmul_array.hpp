#pragma once
// Functional + cycle model of the FPGA matrix-multiply PE array of Zhuo &
// Prasanna, "Scalable and Modular Algorithms for Floating-Point Matrix
// Multiplication on FPGAs" (IPDPS 2004 — reference [21]).
//
// Architecture: k processing elements, each with one floating-point
// multiplier core and one adder core (2 flops per PE per cycle). The design
// decomposes E += C x D into k x k submatrix multiplies; each submatrix
// multiply has an effective latency of k^2 design clock cycles (the PEs
// stream one column of C and one row of D per cycle and accumulate in
// registers/BRAM). Operands stream from node DRAM; partial results live in
// on-board SRAM.
//
// Functionally, each output element accumulates its dot product in ascending
// inner-index order — the same order as the host gemm — so CPU-computed and
// FPGA-computed partitions of a hybrid product are bit-consistent. The
// emulation runs result rows in parallel on the shared common::ThreadPool;
// per-entry order is untouched, so outputs are identical at any RCS_THREADS.

#include <cstdint>

#include "common/span2d.hpp"
#include "fparith/backend.hpp"
#include "fpga/device.hpp"

namespace rcs::fpga {

class MatMulArray {
 public:
  /// Binds the array to a device configuration (k PEs at F_f).
  explicit MatMulArray(DeviceConfig dev);

  const DeviceConfig& device() const { return dev_; }
  int k() const { return dev_.pe_count; }

  /// Number of design clock cycles to compute an m x inner by inner x n
  /// product: ceil(m/k) * ceil(inner/k) * ceil(n/k) submatrix multiplies at
  /// k^2 cycles each. For the paper's stripe shapes (m = b_f, inner = k,
  /// n = b/(p-1)) this reduces to b_f * b / (p-1) cycles.
  long long cycles(long long m, long long inner, long long n) const;

  /// Seconds for the same product at the design clock.
  double seconds(long long m, long long inner, long long n) const {
    return dev_.seconds_for_cycles(static_cast<double>(cycles(m, inner, n)));
  }

  /// Bytes streamed from DRAM into the array for an m x inner and an
  /// inner x n operand (result write-back is overlapped, per §4.2).
  std::uint64_t input_bytes(long long m, long long inner, long long n) const {
    return static_cast<std::uint64_t>(m * inner + inner * n) * 8u;
  }

  /// On-board SRAM words needed to hold the m x n partial-result tile.
  std::uint64_t sram_words(long long m, long long n) const {
    return static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n);
  }

  /// Functional E += C x D with the host FPU (fast path; bit-identical to
  /// the soft-core path on IEEE hardware). Throws when the result tile
  /// exceeds the device's SRAM.
  void multiply_accumulate(Span2D<const double> c, Span2D<const double> d,
                           Span2D<double> e) const;

  /// Functional E += C x D through the bit-accurate software IEEE-754 cores
  /// (slow; used by tests to pin down hardware-equivalence).
  void multiply_accumulate_soft(Span2D<const double> c, Span2D<const double> d,
                                Span2D<double> e) const;

  /// Functional E += C x D^T (the Cholesky trailing update streams the
  /// second operand row-wise; cycle cost is identical to the NN form).
  void multiply_accumulate_nt(Span2D<const double> c, Span2D<const double> d,
                              Span2D<double> e) const;

  /// Bit-accurate-core variant of the NT form.
  void multiply_accumulate_nt_soft(Span2D<const double> c,
                                   Span2D<const double> d,
                                   Span2D<double> e) const;

 private:
  template <typename Backend>
  void mac_impl(Span2D<const double> c, Span2D<const double> d,
                Span2D<double> e) const;
  template <typename Backend>
  void mac_nt_impl(Span2D<const double> c, Span2D<const double> d,
                   Span2D<double> e) const;

  /// Telemetry: bump fpga.mm.{calls,macs,stalls} for one m x inner x n call.
  void note_call(std::size_t m, std::size_t inner, std::size_t n) const;

  DeviceConfig dev_;
};

}  // namespace rcs::fpga
