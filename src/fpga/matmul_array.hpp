#pragma once
// Functional + cycle model of the FPGA matrix-multiply PE array of Zhuo &
// Prasanna, "Scalable and Modular Algorithms for Floating-Point Matrix
// Multiplication on FPGAs" (IPDPS 2004 — reference [21]).
//
// Architecture: k processing elements, each with one floating-point
// multiplier core and one adder core (2 flops per PE per cycle). The design
// decomposes E += C x D into k x k submatrix multiplies; each submatrix
// multiply has an effective latency of k^2 design clock cycles (the PEs
// stream one column of C and one row of D per cycle and accumulate in
// registers/BRAM). Operands stream from node DRAM; partial results live in
// on-board SRAM.
//
// Functionally, each output element accumulates its dot product in ascending
// inner-index order — the same order as the host gemm — so CPU-computed and
// FPGA-computed partitions of a hybrid product are bit-consistent. Large
// native-FP products stream through the packed GEMM engine (operand strips
// packed into contiguous scratch on the shared common::ThreadPool, computed
// with the runtime-dispatched SIMD microkernel, written back per result
// strip — the emulation's read -> compute -> write pipeline); soft-float and
// small products keep a plain row loop. Per-entry accumulation order is the
// same on every path, so outputs are identical at any RCS_THREADS and on
// every RCS_SIMD dispatch path.

#include <cstdint>
#include <functional>

#include "common/span2d.hpp"
#include "fparith/backend.hpp"
#include "fpga/device.hpp"

namespace rcs::fpga {

class MatMulArray {
 public:
  /// Fault-injection hook: invoked after each multiply_accumulate* with this
  /// array's 0-based call ordinal and a mutable view of the freshly computed
  /// result tile, so an installed fault plan can corrupt specific results
  /// (e.g. SEU bit-flips). Arrays with a hook are stateful (they count
  /// calls) — give each simulated rank its own instance.
  using FaultHook =
      std::function<void(std::uint64_t call, Span2D<double> e)>;

  /// Binds the array to a device configuration (k PEs at F_f).
  explicit MatMulArray(DeviceConfig dev);

  const DeviceConfig& device() const { return dev_; }
  int k() const { return dev_.pe_count; }

  /// Number of design clock cycles to compute an m x inner by inner x n
  /// product: ceil(m/k) * ceil(inner/k) * ceil(n/k) submatrix multiplies at
  /// k^2 cycles each. For the paper's stripe shapes (m = b_f, inner = k,
  /// n = b/(p-1)) this reduces to b_f * b / (p-1) cycles.
  long long cycles(long long m, long long inner, long long n) const;

  /// Seconds for the same product at the design clock.
  double seconds(long long m, long long inner, long long n) const {
    return dev_.seconds_for_cycles(static_cast<double>(cycles(m, inner, n)));
  }

  /// Bytes streamed from DRAM into the array for an m x inner and an
  /// inner x n operand (result write-back is overlapped, per §4.2).
  std::uint64_t input_bytes(long long m, long long inner, long long n) const {
    return static_cast<std::uint64_t>(m * inner + inner * n) * 8u;
  }

  /// On-board SRAM words needed to hold the m x n partial-result tile.
  std::uint64_t sram_words(long long m, long long n) const {
    return static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n);
  }

  /// Functional E += C x D with the host FPU (fast path; bit-identical to
  /// the soft-core path on IEEE hardware). Throws when the result tile
  /// exceeds the device's SRAM.
  void multiply_accumulate(Span2D<const double> c, Span2D<const double> d,
                           Span2D<double> e) const;

  /// Functional E += C x D through the bit-accurate software IEEE-754 cores
  /// (slow; used by tests to pin down hardware-equivalence).
  void multiply_accumulate_soft(Span2D<const double> c, Span2D<const double> d,
                                Span2D<double> e) const;

  /// Functional E += C x D^T (the Cholesky trailing update streams the
  /// second operand row-wise; cycle cost is identical to the NN form).
  void multiply_accumulate_nt(Span2D<const double> c, Span2D<const double> d,
                              Span2D<double> e) const;

  /// Bit-accurate-core variant of the NT form.
  void multiply_accumulate_nt_soft(Span2D<const double> c,
                                   Span2D<const double> d,
                                   Span2D<double> e) const;

  /// Install (or clear, with an empty function) the fault hook and reset the
  /// call counter. The default-constructed array has no hook and pays
  /// nothing for the feature beyond one branch per call.
  void set_fault_hook(FaultHook hook) {
    fault_hook_ = std::move(hook);
    call_seq_ = 0;
  }

  /// Calls issued since the hook was installed (0 without a hook).
  std::uint64_t calls_issued() const { return call_seq_; }

  /// Recompute one element of E += C x D exactly as the array computes it —
  /// `init` (the pre-call value of e(i, j)) accumulated with c(i, l) * d(l, j)
  /// in ascending l — so an ABFT repair reproduces the uncorrupted result
  /// bit-for-bit. `soft` selects the bit-accurate cores; `nt` the D^T form.
  double element(Span2D<const double> c, Span2D<const double> d,
                 std::size_t i, std::size_t j, double init, bool soft,
                 bool nt = false) const;

 private:
  template <typename Backend>
  void mac_impl(Span2D<const double> c, Span2D<const double> d,
                Span2D<double> e) const;
  template <typename Backend>
  void mac_nt_impl(Span2D<const double> c, Span2D<const double> d,
                   Span2D<double> e) const;

  /// Telemetry: bump fpga.mm.{calls,macs,stalls} for one m x inner x n call.
  void note_call(std::size_t m, std::size_t inner, std::size_t n) const;

  /// Hand the finished tile to the fault hook (no-op without one).
  void run_fault_hook(Span2D<double> e) const;

  DeviceConfig dev_;
  FaultHook fault_hook_;
  mutable std::uint64_t call_seq_ = 0;  // counts only while a hook is set
};

}  // namespace rcs::fpga
