#pragma once
// Cycle-level microsimulation of the matrix-multiply PE array of [21].
//
// The higher-level MatMulArray model charges k^2 cycles per k x k submatrix
// multiply because that is the effective latency [21] reports. This module
// *derives* that figure from the pipeline level: k PEs, each issuing one
// multiply per cycle into a deeply pipelined multiplier core chained into a
// pipelined adder core, with the read-after-write hazard on the running
// sums broken by banked partial accumulators (an element's next term
// arrives every k cycles, while the adder takes La cycles — so
// ceil(La / k) partial banks per element are accumulated independently and
// reduced when the stream ends).
//
// The simulation walks cycles with the structural hazards explicit (one
// multiplier issue and one adder issue per PE per cycle) and reports the
// total cycle count, from which the steady-state cycles-per-tile and the
// fill/drain overhead follow. Tests pin the [21] claim: amortized
// cycles/tile -> k^2, matching MatMulArray::cycles.

#include <cstdint>

#include "fparith/ieee754.hpp"

namespace rcs::fpga {

/// Outcome of streaming `tiles` back-to-back k x k submatrix multiplies.
struct PeCycleStats {
  long long total_cycles = 0;      // first issue to last retire
  long long steady_cycles = 0;     // issue phase: tiles * k^2
  long long drain_cycles = 0;      // pipeline drain + partial-bank reduction
  int partial_banks = 0;           // accumulator banks per element
  double multiplier_utilization = 0.0;  // issued mults / (PEs * total)
  double amortized_cycles_per_tile(long long tiles) const {
    return tiles > 0 ? static_cast<double>(total_cycles) /
                           static_cast<double>(tiles)
                     : 0.0;
  }
};

/// Simulate `tiles` successive k x k submatrix multiplies on a k-PE array
/// with the given core pipelines. Requires k >= 1, tiles >= 1.
PeCycleStats simulate_pe_array(int k, long long tiles,
                               fparith::CorePipeline multiplier,
                               fparith::CorePipeline adder);

}  // namespace rcs::fpga
