#include "fpga/matmul_array.hpp"

#include <type_traits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/gemm_kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcs::fpga {

namespace {

/// Products below this (m * inner * n) stay on the simple row loop: the
/// streamed pipeline's packing traffic only pays off once the operands stop
/// fitting in L2. Matches the host gemm's small-product fallback.
constexpr std::size_t kStreamThreshold = 48 * 48 * 48;

/// Estimated nanoseconds one emulated MAC costs on the scalar row loop, for
/// the pool's minimum-grain heuristic. The soft-float cores do field
/// extraction, alignment, and rounding in integer code — two orders of
/// magnitude above a native fused load-mul-add.
template <typename Backend>
constexpr double mac_ns() {
  return std::is_same_v<Backend, fparith::SoftFp> ? 100.0 : 1.0;
}

/// Telemetry for the emulated PE array. `stall_cycles` estimates the PE
/// slots the systolic schedule would leave idle on ragged tiles: the cycle
/// model charges full k x k tiles, so slots = cycles * k while the useful
/// work is only m * inner * n MACs.
struct MmMetrics {
  obs::Counter& calls;
  obs::Counter& macs;
  obs::Counter& stall_cycles;

  static MmMetrics& get() {
    static MmMetrics m{obs::Registry::global().counter("fpga.mm.calls"),
                       obs::Registry::global().counter("fpga.mm.macs"),
                       obs::Registry::global().counter("fpga.mm.stalls")};
    return m;
  }
};

}  // namespace

MatMulArray::MatMulArray(DeviceConfig dev) : dev_(std::move(dev)) {
  RCS_CHECK_MSG(dev_.pe_count > 0, "MatMulArray needs at least one PE");
  // Each PE double-buffers a k x k tile of C and a k-row slice of D in
  // Block RAM (2 k^2 words, as in [21]).
  require_bram(dev_,
               2ull * static_cast<std::uint64_t>(dev_.pe_count) *
                   static_cast<std::uint64_t>(dev_.pe_count),
               "matmul PE array");
}

void MatMulArray::note_call(std::size_t m, std::size_t inner,
                            std::size_t n) const {
  MmMetrics& mm = MmMetrics::get();
  mm.calls.add(1);
  const std::uint64_t useful = static_cast<std::uint64_t>(m) * inner * n;
  mm.macs.add(useful);
  const std::uint64_t slots =
      static_cast<std::uint64_t>(cycles(static_cast<long long>(m),
                                        static_cast<long long>(inner),
                                        static_cast<long long>(n))) *
      static_cast<std::uint64_t>(dev_.pe_count);
  mm.stall_cycles.add(slots - useful);
}

long long MatMulArray::cycles(long long m, long long inner,
                              long long n) const {
  RCS_CHECK_MSG(m >= 0 && inner >= 0 && n >= 0, "negative matmul extent");
  if (m == 0 || inner == 0 || n == 0) return 0;
  const long long k = dev_.pe_count;
  auto ceil_div = [](long long a, long long b) { return (a + b - 1) / b; };
  const long long tiles = ceil_div(m, k) * ceil_div(inner, k) * ceil_div(n, k);
  return tiles * k * k;
}

template <typename Backend>
void MatMulArray::mac_impl(Span2D<const double> c, Span2D<const double> d,
                           Span2D<double> e) const {
  RCS_CHECK_MSG(c.cols() == d.rows() && c.rows() == e.rows() &&
                    d.cols() == e.cols(),
                "matmul shape mismatch");
  require_sram(dev_, sram_words(static_cast<long long>(e.rows()),
                                static_cast<long long>(e.cols())),
               "matmul result tile");
  obs::ScopedTimer span("mm", "fpga");
  if (obs::metrics_enabled()) note_call(e.rows(), c.cols(), e.cols());
  // Dot products accumulate in ascending inner-index order, exactly like the
  // streaming PEs (and the host gemm), so every path below yields identical
  // bits at any thread count.
  //
  // Native path, large product: stream through the packed engine — C-row
  // strips and D micropanels are packed into contiguous scratch on the pool
  // (the read stage), the dispatched SIMD microkernel accumulates (compute),
  // and each result strip is written back per tile (write). NativeFp::mac is
  // an unfused a*b then add, the same operation the engine performs.
  if (std::is_same_v<Backend, fparith::NativeFp> &&
      e.rows() * e.cols() * c.cols() > kStreamThreshold) {
    linalg::detail::gemm_packed_engine(c, d, e, /*b_transposed=*/false);
  } else {
    // Soft-float cores (or tiny tiles): plain row loop; the grain heuristic
    // keeps cheap calls serial instead of paying chunk dispatch.
    const std::size_t grain = common::grain_for_cost(
        mac_ns<Backend>() * static_cast<double>(c.cols()) *
        static_cast<double>(e.cols()));
    common::parallel_for(0, e.rows(), grain,
                         [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < e.cols(); ++j) {
          double acc = e(i, j);
          for (std::size_t l = 0; l < c.cols(); ++l) {
            acc = Backend::mac(acc, c(i, l), d(l, j));
          }
          e(i, j) = acc;
        }
      }
    });
  }
  run_fault_hook(e);
}

void MatMulArray::run_fault_hook(Span2D<double> e) const {
  if (!fault_hook_) return;
  fault_hook_(call_seq_++, e);
}

double MatMulArray::element(Span2D<const double> c, Span2D<const double> d,
                            std::size_t i, std::size_t j, double init,
                            bool soft, bool nt) const {
  double acc = init;
  for (std::size_t l = 0; l < c.cols(); ++l) {
    const double dv = nt ? d(j, l) : d(l, j);
    acc = soft ? fparith::SoftFp::mac(acc, c(i, l), dv)
               : fparith::NativeFp::mac(acc, c(i, l), dv);
  }
  return acc;
}

void MatMulArray::multiply_accumulate(Span2D<const double> c,
                                      Span2D<const double> d,
                                      Span2D<double> e) const {
  mac_impl<fparith::NativeFp>(c, d, e);
}

void MatMulArray::multiply_accumulate_soft(Span2D<const double> c,
                                           Span2D<const double> d,
                                           Span2D<double> e) const {
  mac_impl<fparith::SoftFp>(c, d, e);
}

template <typename Backend>
void MatMulArray::mac_nt_impl(Span2D<const double> c, Span2D<const double> d,
                              Span2D<double> e) const {
  RCS_CHECK_MSG(c.cols() == d.cols() && c.rows() == e.rows() &&
                    d.rows() == e.cols(),
                "matmul-nt shape mismatch");
  require_sram(dev_, sram_words(static_cast<long long>(e.rows()),
                                static_cast<long long>(e.cols())),
               "matmul-nt result tile");
  obs::ScopedTimer span("mm_nt", "fpga");
  if (obs::metrics_enabled()) note_call(e.rows(), c.cols(), e.cols());
  // Same streamed/scalar split as mac_impl; the engine packs D's rows as
  // micropanels (its native NT form), preserving ascending-l accumulation.
  if (std::is_same_v<Backend, fparith::NativeFp> &&
      e.rows() * e.cols() * c.cols() > kStreamThreshold) {
    linalg::detail::gemm_packed_engine(c, d, e, /*b_transposed=*/true);
  } else {
    const std::size_t grain = common::grain_for_cost(
        mac_ns<Backend>() * static_cast<double>(c.cols()) *
        static_cast<double>(e.cols()));
    common::parallel_for(0, e.rows(), grain,
                         [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < e.cols(); ++j) {
          double acc = e(i, j);
          for (std::size_t l = 0; l < c.cols(); ++l) {
            acc = Backend::mac(acc, c(i, l), d(j, l));
          }
          e(i, j) = acc;
        }
      }
    });
  }
  run_fault_hook(e);
}

void MatMulArray::multiply_accumulate_nt(Span2D<const double> c,
                                         Span2D<const double> d,
                                         Span2D<double> e) const {
  mac_nt_impl<fparith::NativeFp>(c, d, e);
}

void MatMulArray::multiply_accumulate_nt_soft(Span2D<const double> c,
                                              Span2D<const double> d,
                                              Span2D<double> e) const {
  mac_nt_impl<fparith::SoftFp>(c, d, e);
}

}  // namespace rcs::fpga
