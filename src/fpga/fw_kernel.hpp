#pragma once
// Functional + cycle model of the FPGA Floyd–Warshall kernel of Bondhugula
// et al., "Parallel FPGA-based All-Pairs Shortest-Paths in a Directed Graph"
// (IPDPS 2006 — reference [18]).
//
// Architecture: k floating-point adder cores and k comparator cores arranged
// as a linear array that sweeps a b x b block; processing one b x b block
// task (any of op1/op21/op22/op3) takes 2 b^3 / k design clock cycles. The
// kernel keeps a 2 k^2-word working set in Block RAM and stages two b x b
// blocks (2 b^2 words) in on-board SRAM.

#include <cstdint>

#include "common/span2d.hpp"
#include "fparith/backend.hpp"
#include "fpga/device.hpp"

namespace rcs::fpga {

class FwKernel {
 public:
  explicit FwKernel(DeviceConfig dev);

  const DeviceConfig& device() const { return dev_; }
  int k() const { return dev_.pe_count; }

  /// Design clock cycles for one b x b block task: 2 b^3 / k.
  long long cycles(long long b) const;

  /// Seconds for one b x b block task at the design clock.
  double seconds(long long b) const {
    return dev_.seconds_for_cycles(static_cast<double>(cycles(b)));
  }

  /// Bytes streamed from DRAM for one block task: the kernel reads two b x b
  /// blocks (the operand block plus the pivot-row/column block; for op1 they
  /// coincide but the design streams both ports).
  std::uint64_t input_bytes(long long b) const {
    return 2ull * static_cast<std::uint64_t>(b) *
           static_cast<std::uint64_t>(b) * 8u;
  }

  /// On-board SRAM words the design stages (2 b^2).
  std::uint64_t sram_words(long long b) const {
    return 2ull * static_cast<std::uint64_t>(b) *
           static_cast<std::uint64_t>(b);
  }

  /// Checks that a b x b block task fits the device (BRAM 2k^2 words, SRAM
  /// 2b^2 words). Throws rcs::Error otherwise.
  void require_fits(long long b) const;

  /// Functional block task with the host FPU:
  /// c[i][j] = min(c[i][j], a[i][k'] + b[k'][j]) with k' outermost — the
  /// same sweep order as the hardware and as graph::fw_block, so the result
  /// is bit-identical to the CPU path for every aliasing pattern.
  void run_block(Span2D<double> c, Span2D<const double> a,
                 Span2D<const double> b) const;

  /// Functional block task through the bit-accurate IEEE-754 cores.
  void run_block_soft(Span2D<double> c, Span2D<const double> a,
                      Span2D<const double> b) const;

 private:
  template <typename Backend>
  void run_impl(Span2D<double> c, Span2D<const double> a,
                Span2D<const double> b) const;

  DeviceConfig dev_;
};

}  // namespace rcs::fpga
