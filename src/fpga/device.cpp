#include "fpga/device.hpp"

namespace rcs::fpga {

DeviceConfig DeviceConfig::xc2vp50_matmul() {
  DeviceConfig d;
  d.name = "XC2VP50/matmul";
  d.pe_count = 8;
  d.clock_hz = 130e6;
  d.flops_per_pe_cycle = 2;
  d.sram_bytes = 8ull << 20;
  d.bram_bytes = 522ull << 10;
  d.dram_bytes_per_s = 1.04e9;  // one 8-byte word per 130 MHz cycle
  return d;
}

DeviceConfig DeviceConfig::xc2vp50_floyd_warshall() {
  DeviceConfig d;
  d.name = "XC2VP50/floyd-warshall";
  d.pe_count = 8;
  d.clock_hz = 120e6;
  d.flops_per_pe_cycle = 2;
  d.sram_bytes = 8ull << 20;
  d.bram_bytes = 522ull << 10;
  d.dram_bytes_per_s = 0.96e9;  // one 8-byte word per 120 MHz cycle
  return d;
}

DeviceConfig DeviceConfig::drc_virtex4_matmul() {
  DeviceConfig d;
  d.name = "DRC-Virtex4/matmul";
  // Larger device, higher clock, HyperTransport access to DRAM at up to
  // 6.4 GB/s (Section 3). PE count scaled with the larger fabric.
  d.pe_count = 16;
  d.clock_hz = 180e6;
  d.flops_per_pe_cycle = 2;
  d.sram_bytes = 64ull << 20;
  d.bram_bytes = 1024ull << 10;
  d.dram_bytes_per_s = 6.4e9;
  return d;
}

void require_sram(const DeviceConfig& dev, std::uint64_t words_needed,
                  const char* what) {
  const std::uint64_t bytes = words_needed * 8;
  RCS_CHECK_MSG(bytes <= dev.sram_bytes,
                what << " needs " << bytes << " bytes of on-board SRAM but "
                     << dev.name << " provides " << dev.sram_bytes);
}

void require_bram(const DeviceConfig& dev, std::uint64_t words_needed,
                  const char* what) {
  const std::uint64_t bytes = words_needed * 8;
  RCS_CHECK_MSG(bytes <= dev.bram_bytes,
                what << " needs " << bytes << " bytes of Block RAM but "
                     << dev.name << " provides " << dev.bram_bytes);
}

}  // namespace rcs::fpga
