#include "fpga/resources.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rcs::fpga {

namespace {
// Routable utilization cap: beyond this fraction of slices, place-and-route
// of era tools failed to close timing at all.
constexpr double kUtilizationCap = 0.85;
// Clock derating per unit of slice utilization (routing congestion).
constexpr double kCongestionSlope = 0.23;

double derated_clock(double core_hz, double fabric_hz, double utilization) {
  const double base = std::min(core_hz, fabric_hz);
  return base * (1.0 - kCongestionSlope * utilization);
}
}  // namespace

ResourceBudget ResourceBudget::xc2vp50() {
  return ResourceBudget{"XC2VP50", 23616, 232, 232, 200e6};
}

ResourceBudget ResourceBudget::virtex4_lx100() {
  // DSP48 pairs counted as MULT18-equivalents.
  return ResourceBudget{"Virtex4-LX100", 49152, 240, 192, 260e6};
}

ResourceBudget ResourceBudget::virtex4_lx200() {
  return ResourceBudget{"Virtex4-LX200", 89088, 336, 288, 260e6};
}

CoreCost CoreCost::dp_adder() { return CoreCost{980, 0, 170e6}; }
CoreCost CoreCost::dp_multiplier() { return CoreCost{760, 9, 160e6}; }
CoreCost CoreCost::dp_comparator() { return CoreCost{240, 0, 220e6}; }
CoreCost CoreCost::dp_divider() { return CoreCost{2400, 0, 140e6}; }
CoreCost CoreCost::dp_sqrt() { return CoreCost{2100, 0, 140e6}; }

namespace {

SynthesisResult fit_pes(const ResourceBudget& dev, long fixed_slices,
                        long slices_per_pe, long mult18_per_pe,
                        long bram_blocks_per_pe, double core_hz) {
  RCS_CHECK_MSG(dev.slices > 0, "device has no slices: " << dev.name);
  const double cap = kUtilizationCap * static_cast<double>(dev.slices);
  long k = static_cast<long>((cap - static_cast<double>(fixed_slices)) /
                             static_cast<double>(slices_per_pe));
  if (mult18_per_pe > 0) {
    k = std::min(k, dev.mult18 / mult18_per_pe);
  }
  if (bram_blocks_per_pe > 0) {
    k = std::min(k, dev.bram_blocks / bram_blocks_per_pe);
  }
  k = std::max<long>(k, 0);
  // PE arrays tile in powers-of-two-friendly sizes; round down to a
  // multiple of 4 above 4 (the designs in [21]/[18] scale k in such steps).
  if (k > 4) k -= k % 4;

  SynthesisResult res;
  res.pe_count = static_cast<int>(k);
  res.slice_utilization =
      (static_cast<double>(fixed_slices) +
       static_cast<double>(k) * static_cast<double>(slices_per_pe)) /
      static_cast<double>(dev.slices);
  res.mult18_used = k * mult18_per_pe;
  res.bram_blocks_used = k * bram_blocks_per_pe;
  res.clock_hz = derated_clock(core_hz, dev.fabric_hz, res.slice_utilization);
  return res;
}

}  // namespace

SynthesisResult synthesize_matmul(const ResourceBudget& dev) {
  // Per PE: one DP multiplier + one DP adder + ~350 slices of PE control
  // and operand registers; two double-buffered k x k tiles live in two
  // Block RAMs per PE. Shared: stream controller + DRAM interface.
  const CoreCost add = CoreCost::dp_adder();
  const CoreCost mul = CoreCost::dp_multiplier();
  const long per_pe = add.slices + mul.slices + 350;
  const long fixed = 2100;
  const double core_hz = std::min(add.max_hz, mul.max_hz);
  return fit_pes(dev, fixed, per_pe, mul.mult18, 2, core_hz);
}

SynthesisResult synthesize_floyd_warshall(const ResourceBudget& dev) {
  // Per PE: one DP adder + one DP comparator + ~330 slices of sweep logic;
  // the shared block-sweep datapath and SRAM interface of [18] are heavier
  // than the matmul streamer. The comparator result feeds a select, putting
  // the adder+compare chain on the critical path (slower base clock).
  const CoreCost add = CoreCost::dp_adder();
  const CoreCost cmp = CoreCost::dp_comparator();
  const long per_pe = add.slices + cmp.slices + 330;
  const long fixed = 4300;
  const double core_hz = 143e6;  // adder -> comparator -> select chain
  return fit_pes(dev, fixed, per_pe, 0, 2, core_hz);
}

DeviceConfig to_device_config(const ResourceBudget& dev,
                              const SynthesisResult& synth,
                              const std::string& kernel_name,
                              std::uint64_t sram_bytes,
                              double dram_path_bytes_per_s) {
  RCS_CHECK_MSG(synth.pe_count > 0,
                "kernel does not fit on " << dev.name);
  DeviceConfig cfg;
  cfg.name = dev.name + "/" + kernel_name;
  cfg.pe_count = synth.pe_count;
  cfg.clock_hz = synth.clock_hz;
  cfg.flops_per_pe_cycle = 2;
  cfg.sram_bytes = sram_bytes;
  cfg.bram_bytes = static_cast<std::uint64_t>(dev.bram_blocks) * 18432 / 8;
  // One 8-byte word per design clock, unless the board link is slower.
  cfg.dram_bytes_per_s =
      std::min(synth.clock_hz * 8.0, dram_path_bytes_per_s);
  return cfg;
}

}  // namespace rcs::fpga
