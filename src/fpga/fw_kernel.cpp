#include "fpga/fw_kernel.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcs::fpga {

namespace {

/// Telemetry for the emulated Floyd-Warshall kernel. `relaxations` counts
/// compare-add operations (b^3 per block); `stall_cycles` is the PE-slot
/// surplus of the cycle model (cycles * k) over 2*b^3 useful flops.
struct FwMetrics {
  obs::Counter& calls;
  obs::Counter& relaxations;
  obs::Counter& stall_cycles;

  static FwMetrics& get() {
    static FwMetrics m{obs::Registry::global().counter("fpga.fw.calls"),
                       obs::Registry::global().counter("fpga.fw.relaxations"),
                       obs::Registry::global().counter("fpga.fw.stalls")};
    return m;
  }
};

}  // namespace

FwKernel::FwKernel(DeviceConfig dev) : dev_(std::move(dev)) {
  RCS_CHECK_MSG(dev_.pe_count > 0, "FwKernel needs at least one PE");
  require_bram(dev_,
               2ull * static_cast<std::uint64_t>(dev_.pe_count) *
                   static_cast<std::uint64_t>(dev_.pe_count),
               "floyd-warshall kernel");
}

long long FwKernel::cycles(long long b) const {
  RCS_CHECK_MSG(b >= 0, "negative block size");
  return 2 * b * b * b / dev_.pe_count;
}

void FwKernel::require_fits(long long b) const {
  require_sram(dev_, sram_words(b), "floyd-warshall block staging");
}

template <typename Backend>
void FwKernel::run_impl(Span2D<double> c, Span2D<const double> a,
                        Span2D<const double> b) const {
  RCS_CHECK_MSG(a.cols() == b.rows() && c.rows() == a.rows() &&
                    c.cols() == b.cols(),
                "fw block shape mismatch");
  require_fits(static_cast<long long>(c.rows()));
  obs::ScopedTimer span("fw_block", "fpga");
  if (obs::metrics_enabled()) {
    FwMetrics& fm = FwMetrics::get();
    fm.calls.add(1);
    const std::uint64_t useful = static_cast<std::uint64_t>(c.rows()) *
                                 c.cols() * a.cols();
    fm.relaxations.add(useful);
    const std::uint64_t slots =
        static_cast<std::uint64_t>(cycles(static_cast<long long>(c.rows()))) *
        static_cast<std::uint64_t>(dev_.pe_count);
    // Each relaxation is a compare + add = 2 PE operations.
    if (slots > 2 * useful) fm.stall_cycles.add(slots - 2 * useful);
  }
  const std::size_t kk = a.cols();
  for (std::size_t k = 0; k < kk; ++k) {
    for (std::size_t i = 0; i < c.rows(); ++i) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < c.cols(); ++j) {
        c(i, j) = Backend::relax(c(i, j), aik, b(k, j));
      }
    }
  }
}

void FwKernel::run_block(Span2D<double> c, Span2D<const double> a,
                         Span2D<const double> b) const {
  run_impl<fparith::NativeFp>(c, a, b);
}

void FwKernel::run_block_soft(Span2D<double> c, Span2D<const double> a,
                              Span2D<const double> b) const {
  run_impl<fparith::SoftFp>(c, a, b);
}

}  // namespace rcs::fpga
