#include "sim/engine.hpp"

namespace rcs::sim {

void Engine::schedule(SimTime at, std::function<void()> fn) {
  RCS_CHECK_MSG(at >= now_, "cannot schedule in the past: " << at << " < "
                                                            << now_);
  queue_.push(Item{at, seq_++, std::move(fn)});
}

SimTime Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns const&; the closure must be moved out, so
    // const_cast the non-key payload (the comparator never touches fn).
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.at;
    ++fired_;
    item.fn();
  }
  return now_;
}

}  // namespace rcs::sim
