#include "sim/faults.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rcs::sim {

FaultStats& FaultStats::operator+=(const FaultStats& o) {
  bitflips_injected += o.bitflips_injected;
  slowdown_hits += o.slowdown_hits;
  slowdown_added_s += o.slowdown_added_s;
  link_hits += o.link_hits;
  link_added_s += o.link_added_s;
  crashes += o.crashes;
  checks += o.checks;
  detected += o.detected;
  corrected_elements += o.corrected_elements;
  reissued_blocks += o.reissued_blocks;
  straggler_timeouts += o.straggler_timeouts;
  straggler_reissues += o.straggler_reissues;
  recovery_cpu_s += o.recovery_cpu_s;
  mttr_s.insert(mttr_s.end(), o.mttr_s.begin(), o.mttr_s.end());
  return *this;
}

double FaultStats::mttr_percentile(double q) const {
  if (mttr_s.empty()) return 0.0;
  RCS_CHECK_MSG(q >= 0.0 && q <= 1.0, "percentile out of [0, 1]");
  std::vector<double> sorted = mttr_s;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

FaultPlan FaultPlan::generate(const FaultSpec& spec) {
  RCS_CHECK_MSG(spec.ranks > 0, "FaultSpec.ranks must be positive");
  RCS_CHECK_MSG(spec.horizon_s > 0.0, "FaultSpec.horizon_s must be positive");
  FaultPlan plan(spec.seed);
  Rng rng(spec.seed);

  const SimTime len_min =
      spec.slowdown_len_min_s > 0 ? spec.slowdown_len_min_s : spec.horizon_s / 8;
  const SimTime len_max =
      spec.slowdown_len_max_s > 0 ? spec.slowdown_len_max_s : spec.horizon_s / 2;
  for (int i = 0; i < spec.slowdown_windows; ++i) {
    SlowdownWindow w;
    w.rank = static_cast<int>(rng.uniform_index(spec.ranks));
    w.begin = rng.uniform(0.0, spec.horizon_s);
    w.end = w.begin + rng.uniform(len_min, len_max);
    w.cpu_factor = rng.uniform(spec.slowdown_factor_min, spec.slowdown_factor_max);
    w.fpga_factor =
        rng.uniform(spec.slowdown_factor_min, spec.slowdown_factor_max);
    plan.add_slowdown(w);
  }

  for (int i = 0; i < spec.link_faults; ++i) {
    LinkFault f;
    f.src = static_cast<int>(rng.uniform_index(spec.ranks));
    f.dst = -1;
    f.begin = rng.uniform(0.0, spec.horizon_s);
    f.end = f.begin + rng.uniform(len_min, len_max);
    f.bw_factor = rng.uniform(spec.link_bw_factor_min, spec.link_bw_factor_max);
    f.extra_latency_s = spec.link_extra_latency_max_s > 0
                            ? rng.uniform(0.0, spec.link_extra_latency_max_s)
                            : 0.0;
    f.jitter_max_s = spec.link_jitter_max_s;
    plan.add_link_fault(f);
  }

  for (int i = 0; i < spec.crashes; ++i) {
    RankCrash c;
    c.rank = static_cast<int>(rng.uniform_index(spec.ranks));
    c.at = rng.uniform(0.0, spec.horizon_s);
    plan.add_crash(c);
  }

  for (int i = 0; i < spec.bitflips; ++i) {
    BitFlip f;
    f.rank = static_cast<int>(rng.uniform_index(spec.ranks));
    f.call = rng.uniform_index(spec.bitflip_max_call);
    f.row_u = rng.uniform();
    f.col_u = rng.uniform();
    f.bit = spec.bitflip_bit_min +
            static_cast<int>(rng.uniform_index(
                spec.bitflip_bit_max - spec.bitflip_bit_min + 1));
    plan.add_bitflip(f);
  }
  return plan;
}

void FaultPlan::add_slowdown(const SlowdownWindow& w) {
  RCS_CHECK_MSG(w.rank >= 0, "SlowdownWindow.rank must be >= 0");
  RCS_CHECK_MSG(w.end > w.begin, "SlowdownWindow must have positive length");
  RCS_CHECK_MSG(w.cpu_factor >= 1.0 && w.fpga_factor >= 1.0,
                "slowdown factors must be >= 1");
  slowdowns_.push_back(w);
}

void FaultPlan::add_link_fault(const LinkFault& f) {
  RCS_CHECK_MSG(f.bw_factor > 0.0 && f.bw_factor <= 1.0,
                "LinkFault.bw_factor must be in (0, 1]");
  RCS_CHECK_MSG(f.extra_latency_s >= 0.0 && f.jitter_max_s >= 0.0,
                "LinkFault latencies must be non-negative");
  RCS_CHECK_MSG(f.end > f.begin, "LinkFault must have positive length");
  links_.push_back(f);
}

void FaultPlan::add_crash(const RankCrash& c) {
  RCS_CHECK_MSG(c.rank >= 0, "RankCrash.rank must be >= 0");
  RCS_CHECK_MSG(c.at >= 0.0, "RankCrash.at must be non-negative");
  crashes_.push_back(c);
}

void FaultPlan::add_bitflip(const BitFlip& f) {
  RCS_CHECK_MSG(f.rank >= 0, "BitFlip.rank must be >= 0");
  RCS_CHECK_MSG(f.bit >= 0 && f.bit < 64, "BitFlip.bit must be in [0, 64)");
  RCS_CHECK_MSG(f.row_u >= 0.0 && f.row_u < 1.0 && f.col_u >= 0.0 &&
                    f.col_u < 1.0,
                "BitFlip coordinates must be normalized to [0, 1)");
  flips_.push_back(f);
}

SimTime FaultPlan::stretch_compute(int rank, SimTime start, SimTime duration,
                                   bool fpga) const {
  if (duration <= 0.0 || slowdowns_.empty()) return duration;
  // Walk simulated time forward, consuming `remaining` nominal work. Inside
  // the strongest window covering the cursor, work progresses 1/factor as
  // fast; factors of overlapping windows multiply (each contention source
  // slows the node independently).
  SimTime t = start;
  SimTime remaining = duration;
  while (remaining > 0.0) {
    double factor = 1.0;
    SimTime next_edge = std::numeric_limits<SimTime>::infinity();
    for (const SlowdownWindow& w : slowdowns_) {
      if (w.rank != rank) continue;
      if (t >= w.begin && t < w.end) {
        factor *= fpga ? w.fpga_factor : w.cpu_factor;
        next_edge = std::min(next_edge, w.end);
      } else if (w.begin > t) {
        next_edge = std::min(next_edge, w.begin);
      }
    }
    if (!std::isfinite(next_edge)) {
      t += remaining * factor;
      break;
    }
    // Nominal work that fits before the next window edge at this rate.
    const SimTime slice = (next_edge - t) / factor;
    if (slice >= remaining) {
      t += remaining * factor;
      break;
    }
    remaining -= slice;
    t = next_edge;
  }
  return t - start;
}

LinkCost FaultPlan::link_cost(int src, int dst, SimTime depart,
                              const LinkCost& base, std::uint64_t seq) const {
  LinkCost out = base;
  double jitter_max = 0.0;
  for (const LinkFault& f : links_) {
    if (f.src != -1 && f.src != src) continue;
    if (f.dst != -1 && f.dst != dst) continue;
    if (depart < f.begin || depart >= f.end) continue;
    out.bytes_per_s *= f.bw_factor;
    out.latency_s += f.extra_latency_s;
    jitter_max = std::max(jitter_max, f.jitter_max_s);
  }
  if (jitter_max > 0.0) {
    // Stateless hash of the message coordinates: independent of thread
    // interleaving and of how many other messages the plan touched.
    std::uint64_t h = seed_;
    h ^= 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(src);
    h = splitmix64(h);
    h ^= static_cast<std::uint64_t>(dst) * 0xbf58476d1ce4e5b9ULL;
    h = splitmix64(h);
    h ^= seq * 0x94d049bb133111ebULL;
    h = splitmix64(h);
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
    out.latency_s += u * jitter_max;
  }
  return out;
}

SimTime FaultPlan::crash_time(int rank) const {
  SimTime at = std::numeric_limits<SimTime>::infinity();
  for (const RankCrash& c : crashes_)
    if (c.rank == rank) at = std::min(at, c.at);
  return at;
}

const BitFlip* FaultPlan::flip_for(int rank, std::uint64_t call) const {
  for (const BitFlip& f : flips_)
    if (f.rank == rank && f.call == call) return &f;
  return nullptr;
}

std::pair<std::size_t, std::size_t> apply_bitflip(const BitFlip& flip,
                                                  Span2D<double> tile) {
  RCS_CHECK_MSG(tile.rows() > 0 && tile.cols() > 0,
                "apply_bitflip: empty tile");
  const std::size_t r = std::min(
      tile.rows() - 1, static_cast<std::size_t>(flip.row_u *
                                                static_cast<double>(tile.rows())));
  const std::size_t c = std::min(
      tile.cols() - 1, static_cast<std::size_t>(flip.col_u *
                                                static_cast<double>(tile.cols())));
  std::uint64_t bits = std::bit_cast<std::uint64_t>(tile(r, c));
  bits ^= (1ULL << flip.bit);
  tile(r, c) = std::bit_cast<double>(bits);
  return {r, c};
}

void note_bitflip_injected() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& c =
      obs::Registry::global().counter("faults.injected.bitflips");
  c.add();
}

void note_crash_injected() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& c =
      obs::Registry::global().counter("faults.injected.crashes");
  c.add();
}

void note_fault_detected() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& c = obs::Registry::global().counter("faults.detected");
  c.add();
}

void note_fault_recovered(double mttr_sim_s) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& c = obs::Registry::global().counter("faults.recovered");
  static obs::Histogram& h =
      obs::Registry::global().histogram("faults.mttr_ns");
  c.add();
  h.record(mttr_sim_s * 1e9);
}

void note_straggler_timeout() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& c =
      obs::Registry::global().counter("faults.straggler_timeouts");
  c.add();
}

}  // namespace rcs::sim
