#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace rcs::sim {

namespace {

/// RFC-4180 field quoting: wrap in double quotes when the field contains a
/// comma, quote, or line break; embedded quotes double.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void TraceRecorder::add(std::string resource, SimTime start, SimTime end,
                        std::string label) {
  if (!enabled_) return;
  RCS_CHECK_MSG(end >= start, "trace span ends before it starts: " << label);
  spans_.push_back(
      TraceSpan{std::move(resource), start, end, std::move(label)});
}

void TraceRecorder::add_comm(CommEvent ev) {
  if (!enabled_) return;
  RCS_CHECK_MSG(ev.t1 >= ev.t0,
                "comm event ends before it starts: " << ev.phase);
  comm_events_.push_back(std::move(ev));
}

void TraceRecorder::merge_from(TraceRecorder&& other) {
  spans_.insert(spans_.end(),
                std::make_move_iterator(other.spans_.begin()),
                std::make_move_iterator(other.spans_.end()));
  other.spans_.clear();
  comm_events_.insert(comm_events_.end(),
                      std::make_move_iterator(other.comm_events_.begin()),
                      std::make_move_iterator(other.comm_events_.end()));
  other.comm_events_.clear();
}

std::map<std::string, SimTime> TraceRecorder::busy_by_resource() const {
  std::map<std::string, SimTime> busy;
  for (const auto& s : spans_) busy[s.resource] += s.end - s.start;
  return busy;
}

std::map<std::string, double> TraceRecorder::utilization(
    SimTime horizon) const {
  RCS_CHECK_MSG(horizon > 0.0, "utilization horizon must be positive");
  std::map<std::string, double> util;
  for (const auto& [res, busy] : busy_by_resource()) util[res] = busy / horizon;
  return util;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  std::vector<const TraceSpan*> order;
  order.reserve(spans_.size());
  for (const auto& s : spans_) order.push_back(&s);
  std::stable_sort(order.begin(), order.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start < b->start;
                   });
  os << "resource,start,end,label\n";
  for (const TraceSpan* s : order) {
    os << csv_field(s->resource) << ',' << s->start << ',' << s->end << ','
       << csv_field(s->label) << '\n';
  }
}

std::map<std::string, SimTime> TraceRecorder::busy_by_label() const {
  std::map<std::string, SimTime> busy;
  for (const auto& s : spans_) busy[s.label] += s.end - s.start;
  return busy;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  // Stable lane numbering: resources in sorted order.
  std::map<std::string, int> lanes;
  for (const auto& s : spans_) lanes.emplace(s.resource, 0);
  int next = 1;
  for (auto& [res, tid] : lanes) tid = next++;

  // Default stream precision (6 significant digits) would collapse distinct
  // microsecond timestamps late in a long run; 15 digits round-trips them.
  const auto prec = os.precision();
  os.precision(15);

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& [res, tid] : lanes) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"name\": \"" << obs::json_escape(res)
       << "\"}}";
  }
  for (const auto& s : spans_) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\": \"" << obs::json_escape(s.label)
       << "\", \"cat\": \"sim\", \"ph\": \"X\", \"ts\": " << s.start * 1e6
       << ", \"dur\": " << (s.end - s.start) * 1e6
       << ", \"pid\": 1, \"tid\": " << lanes[s.resource] << '}';
  }
  os << "\n]}\n";
  os.precision(prec);
}

}  // namespace rcs::sim
