#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace rcs::sim {

void TraceRecorder::add(std::string resource, SimTime start, SimTime end,
                        std::string label) {
  if (!enabled_) return;
  RCS_CHECK_MSG(end >= start, "trace span ends before it starts: " << label);
  spans_.push_back(
      TraceSpan{std::move(resource), start, end, std::move(label)});
}

void TraceRecorder::merge_from(TraceRecorder&& other) {
  spans_.insert(spans_.end(),
                std::make_move_iterator(other.spans_.begin()),
                std::make_move_iterator(other.spans_.end()));
  other.spans_.clear();
}

std::map<std::string, SimTime> TraceRecorder::busy_by_resource() const {
  std::map<std::string, SimTime> busy;
  for (const auto& s : spans_) busy[s.resource] += s.end - s.start;
  return busy;
}

std::map<std::string, double> TraceRecorder::utilization(
    SimTime horizon) const {
  RCS_CHECK_MSG(horizon > 0.0, "utilization horizon must be positive");
  std::map<std::string, double> util;
  for (const auto& [res, busy] : busy_by_resource()) util[res] = busy / horizon;
  return util;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  std::vector<const TraceSpan*> order;
  order.reserve(spans_.size());
  for (const auto& s : spans_) order.push_back(&s);
  std::stable_sort(order.begin(), order.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start < b->start;
                   });
  os << "resource,start,end,label\n";
  for (const TraceSpan* s : order) {
    os << s->resource << ',' << s->start << ',' << s->end << ',' << s->label
       << '\n';
  }
}

}  // namespace rcs::sim
