#pragma once
// Deterministic fault injection for the simulated hybrid cluster.
//
// A FaultPlan is pure data: a seeded, pre-sampled schedule of adversity —
// per-rank compute-slowdown windows (stragglers), link degradation/jitter
// windows, rank crashes at a simulated time, and transient bit-flips in FPGA
// result tiles. The plan never draws randomness at injection time: every
// event is fixed at construction (FaultPlan::generate seeds a common Rng;
// per-message jitter is a stateless SplitMix64 hash of the plan seed and the
// message's deterministic (src, dst, sequence) coordinates), so the same
// plan replays byte-identically across runs and RCS_THREADS settings.
//
// Injection points live in the layers that own the timing:
//   * node::ComputeNode — stretches CPU/FPGA charges through
//     stretch_compute(), piecewise over the overlapping windows;
//   * net::Comm        — degrades/jitters transfer costs through
//     link_cost(), and throws net::RankFailed at the first communication
//     past crash_time();
//   * fpga::MatMulArray / core::fw_functional — corrupt FPGA result tiles
//     per flip_for() via apply_bitflip().
//
// FaultStats is the deterministic per-run accounting the tolerance side
// (ABFT, deadline receives, wave re-execution) reports back; the obs
// counters ("faults.*", metrics-gated) mirror it for telemetry exports.

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/span2d.hpp"
#include "sim/engine.hpp"

namespace rcs::sim {

/// Compute slowdown (straggler) window: within [begin, end), rank `rank`'s
/// CPU work takes `cpu_factor` times longer and its FPGA work `fpga_factor`
/// times longer (factors >= 1; 1 = nominal rate).
struct SlowdownWindow {
  int rank = -1;
  SimTime begin = 0.0;
  SimTime end = 0.0;
  double cpu_factor = 1.0;
  double fpga_factor = 1.0;
};

/// Link degradation window: messages from `src` to `dst` (-1 = any rank on
/// that side) departing within [begin, end) see their bandwidth scaled by
/// `bw_factor` (0 < factor <= 1), `extra_latency_s` added per message, and
/// a deterministic per-message jitter uniform in [0, jitter_max_s).
struct LinkFault {
  int src = -1;
  int dst = -1;
  SimTime begin = 0.0;
  SimTime end = std::numeric_limits<SimTime>::infinity();
  double bw_factor = 1.0;
  SimTime extra_latency_s = 0.0;
  SimTime jitter_max_s = 0.0;
};

/// Fail-stop crash: rank `rank` dies at the first communication operation it
/// attempts at simulated time >= `at` (net::RankFailed).
struct RankCrash {
  int rank = -1;
  SimTime at = 0.0;
};

/// Transient bit-flip in an FPGA result tile: on rank `rank`'s `call`-th
/// FPGA result (0-based; MatMulArray calls for LU, FPGA-assigned wave tasks
/// for FW), flip bit `bit` (0 = lsb .. 63 = sign) of the element at
/// normalized tile coordinates (row_u, col_u) in [0, 1).
struct BitFlip {
  int rank = -1;
  std::uint64_t call = 0;
  double row_u = 0.0;
  double col_u = 0.0;
  int bit = 52;
};

/// Effective per-message link parameters (see FaultPlan::link_cost).
struct LinkCost {
  SimTime latency_s = 0.0;
  double bytes_per_s = 1.0;
};

/// Deterministic per-run fault/recovery accounting. Every field is derived
/// from simulated quantities only, so two runs of the same plan produce
/// identical stats.
struct FaultStats {
  // Injection side.
  std::uint64_t bitflips_injected = 0;
  std::uint64_t slowdown_hits = 0;    // compute charges that got stretched
  double slowdown_added_s = 0.0;      // total stretch over nominal
  std::uint64_t link_hits = 0;        // messages that saw degraded links
  double link_added_s = 0.0;          // transfer seconds over nominal
  std::uint64_t crashes = 0;

  // Tolerance side.
  std::uint64_t checks = 0;              // ABFT / DMR verifications run
  std::uint64_t detected = 0;            // corrupted results detected
  std::uint64_t corrected_elements = 0;  // single-flip exact corrections
  std::uint64_t reissued_blocks = 0;     // full-tile/-task recomputes
  std::uint64_t straggler_timeouts = 0;  // deadline receives that gave up
  std::uint64_t straggler_reissues = 0;  // shares re-solved on survivors
  double recovery_cpu_s = 0.0;           // sim seconds of checks + repairs
  std::vector<double> mttr_s;            // per-recovery sim repair times

  FaultStats& operator+=(const FaultStats& o);

  /// Nearest-rank percentile of the recorded repair times, q in [0, 1]
  /// (0 when no recovery has happened yet).
  double mttr_percentile(double q) const;
};

/// Knobs for FaultPlan::generate — expected event counts and ranges; every
/// sampled quantity is uniform over its range.
struct FaultSpec {
  int ranks = 2;
  std::uint64_t seed = 1;
  SimTime horizon_s = 1.0;  // event times sampled in [0, horizon_s)

  int slowdown_windows = 0;
  double slowdown_factor_min = 2.0;
  double slowdown_factor_max = 8.0;
  SimTime slowdown_len_min_s = 0.0;  // 0 = horizon/8
  SimTime slowdown_len_max_s = 0.0;  // 0 = horizon/2

  int link_faults = 0;
  double link_bw_factor_min = 0.25;
  double link_bw_factor_max = 0.9;
  SimTime link_extra_latency_max_s = 0.0;
  SimTime link_jitter_max_s = 0.0;

  int crashes = 0;

  int bitflips = 0;
  std::uint64_t bitflip_max_call = 64;  // call ordinals sampled in [0, max)
  int bitflip_bit_min = 44;  // high-mantissa/exponent region: the relative
  int bitflip_bit_max = 62;  // perturbation stays far above checksum noise
};

/// A seeded, deterministic schedule of faults. Pure data + pure queries:
/// thread-safe to share read-only across rank threads.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Sample a plan from `spec` (seeded by spec.seed). Same spec, same plan.
  static FaultPlan generate(const FaultSpec& spec);

  /// Direct construction for targeted tests/experiments.
  void add_slowdown(const SlowdownWindow& w);
  void add_link_fault(const LinkFault& f);
  void add_crash(const RankCrash& c);
  void add_bitflip(const BitFlip& f);

  std::uint64_t seed() const { return seed_; }
  bool empty() const {
    return slowdowns_.empty() && links_.empty() && crashes_.empty() &&
           flips_.empty();
  }
  std::size_t slowdown_count() const { return slowdowns_.size(); }
  std::size_t link_fault_count() const { return links_.size(); }
  std::size_t crash_count() const { return crashes_.size(); }
  std::size_t bitflip_count() const { return flips_.size(); }

  /// Stretched duration of a compute charge on `rank` starting at `start`:
  /// piecewise integration over the slowdown windows the charge overlaps —
  /// work inside a window progresses `factor` times slower; work outside
  /// runs at the nominal rate. Returns `duration` unchanged when no window
  /// applies. `fpga` selects fpga_factor over cpu_factor.
  SimTime stretch_compute(int rank, SimTime start, SimTime duration,
                          bool fpga) const;

  /// Effective link parameters for message number `seq` from `src` to `dst`
  /// departing at `depart`, given the nominal `base` parameters: active
  /// LinkFault windows scale bandwidth (factors multiply), add latency, and
  /// contribute a deterministic jitter hashed from (seed, src, dst, seq).
  LinkCost link_cost(int src, int dst, SimTime depart, const LinkCost& base,
                     std::uint64_t seq) const;

  /// Simulated time `rank` fail-stops (+infinity when it never crashes).
  SimTime crash_time(int rank) const;

  /// The flip scheduled for `rank`'s `call`-th FPGA result, or nullptr.
  const BitFlip* flip_for(int rank, std::uint64_t call) const;

  const std::vector<SlowdownWindow>& slowdowns() const { return slowdowns_; }
  const std::vector<LinkFault>& link_faults() const { return links_; }
  const std::vector<RankCrash>& crashes() const { return crashes_; }
  const std::vector<BitFlip>& bitflips() const { return flips_; }

 private:
  std::uint64_t seed_ = 0;
  std::vector<SlowdownWindow> slowdowns_;
  std::vector<LinkFault> links_;
  std::vector<RankCrash> crashes_;
  std::vector<BitFlip> flips_;
};

/// XOR bit `flip.bit` of the element of `tile` addressed by the flip's
/// normalized coordinates. Returns the flipped element's (row, col).
std::pair<std::size_t, std::size_t> apply_bitflip(const BitFlip& flip,
                                                  Span2D<double> tile);

/// Telemetry mirrors of the FaultStats events (no-ops when RCS_METRICS is
/// off): counters "faults.injected.*" / "faults.recovery.*" and the MTTR
/// histogram "faults.mttr_ns" (simulated nanoseconds).
void note_bitflip_injected();
void note_crash_injected();
void note_fault_detected();
void note_fault_recovered(double mttr_sim_s);
void note_straggler_timeout();

}  // namespace rcs::sim
