#pragma once
// Execution-trace recording: per-resource busy intervals with labels,
// exportable as CSV for Gantt-style inspection of a simulated run.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace rcs::sim {

/// One recorded busy interval on a named resource.
struct TraceSpan {
  std::string resource;  // e.g. "node2.cpu", "node2.fpga", "net.0->3"
  SimTime start;
  SimTime end;
  std::string label;  // e.g. "opMM", "bcast D_tt"
};

/// One communication operation as seen by the rank that executed it —
/// recorded by net::Comm when a recorder is attached (Comm::set_trace).
/// Kept separate from TraceSpans so comm events never pollute
/// busy_by_label() (whose labels are the drift reports' phase names): the
/// critical-path analyzer consumes both streams.
struct CommEvent {
  enum class Kind {
    Send,     // blocking send: [t0, t1] occupies the sender's CPU
    NicSend,  // isend: [t0, t1] is the CPU setup; the NIC drives the wire
    Recv,     // receive: [t0, t1] is the clock interval of the wait
  };
  Kind kind = Kind::Send;
  int rank = -1;         // the rank whose clock interval [t0, t1] is
  int peer = -1;         // dst for sends, src for receives
  SimTime t0 = 0.0;      // this rank's clock when the operation began
  SimTime t1 = 0.0;      // this rank's clock when it completed
  SimTime depart = 0.0;  // wire interval of the message involved
  SimTime arrival = 0.0;
  std::uint64_t bytes = 0;
  std::string phase;  // overlap phase / collective label ("send", "opMM", ...)
};

/// Collects TraceSpans during a simulated run. Recording can be disabled
/// (the default for large analytic sweeps) so hot paths pay one branch.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Record one interval (no-op when disabled).
  void add(std::string resource, SimTime start, SimTime end,
           std::string label);

  /// Record one communication event (no-op when disabled).
  void add_comm(CommEvent ev);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<CommEvent>& comm_events() const { return comm_events_; }

  /// Total recorded volume (spans + comm events). Scaling sweeps publish it
  /// per design point so the trace/analysis cost of a large-p world is
  /// visible next to its makespan.
  std::size_t event_count() const {
    return spans_.size() + comm_events_.size();
  }
  void clear() {
    spans_.clear();
    comm_events_.clear();
  }

  /// Splice another recorder's spans into this one (used to merge the
  /// per-rank recorders of a functional run; recorders themselves are not
  /// thread-safe, so each rank records privately and merges afterwards).
  void merge_from(TraceRecorder&& other);

  /// Total busy time per resource.
  std::map<std::string, SimTime> busy_by_resource() const;

  /// Total busy time per span label (summed across resources) — the
  /// "simulated" column of the drift reports.
  std::map<std::string, SimTime> busy_by_label() const;

  /// Utilization per resource over [0, horizon].
  std::map<std::string, double> utilization(SimTime horizon) const;

  /// CSV: resource,start,end,label — one row per span, sorted by start.
  /// Fields containing commas, quotes, or newlines are RFC-4180 quoted.
  void write_csv(std::ostream& os) const;

  /// Chrome trace-event JSON over *simulated* time (1 simulated µs = 1 trace
  /// µs), one lane per resource — the same format the wall-clock tracer
  /// emits, so Perfetto can show both planes side by side.
  void write_chrome_json(std::ostream& os) const;

 private:
  bool enabled_;
  std::vector<TraceSpan> spans_;
  std::vector<CommEvent> comm_events_;
};

}  // namespace rcs::sim
