#pragma once
// Execution-trace recording: per-resource busy intervals with labels,
// exportable as CSV for Gantt-style inspection of a simulated run.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace rcs::sim {

/// One recorded busy interval on a named resource.
struct TraceSpan {
  std::string resource;  // e.g. "node2.cpu", "node2.fpga", "net.0->3"
  SimTime start;
  SimTime end;
  std::string label;  // e.g. "opMM", "bcast D_tt"
};

/// Collects TraceSpans during a simulated run. Recording can be disabled
/// (the default for large analytic sweeps) so hot paths pay one branch.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Record one interval (no-op when disabled).
  void add(std::string resource, SimTime start, SimTime end,
           std::string label);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Splice another recorder's spans into this one (used to merge the
  /// per-rank recorders of a functional run; recorders themselves are not
  /// thread-safe, so each rank records privately and merges afterwards).
  void merge_from(TraceRecorder&& other);

  /// Total busy time per resource.
  std::map<std::string, SimTime> busy_by_resource() const;

  /// Total busy time per span label (summed across resources) — the
  /// "simulated" column of the drift reports.
  std::map<std::string, SimTime> busy_by_label() const;

  /// Utilization per resource over [0, horizon].
  std::map<std::string, double> utilization(SimTime horizon) const;

  /// CSV: resource,start,end,label — one row per span, sorted by start.
  /// Fields containing commas, quotes, or newlines are RFC-4180 quoted.
  void write_csv(std::ostream& os) const;

  /// Chrome trace-event JSON over *simulated* time (1 simulated µs = 1 trace
  /// µs), one lane per resource — the same format the wall-clock tracer
  /// emits, so Perfetto can show both planes side by side.
  void write_chrome_json(std::ostream& os) const;

 private:
  bool enabled_;
  std::vector<TraceSpan> spans_;
};

}  // namespace rcs::sim
