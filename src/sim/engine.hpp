#pragma once
// Discrete-event simulation core.
//
// The reconfigurable-computing-system simulator is built from three pieces:
//   * Engine   — a classic event calendar: schedule closures at simulated
//                times, run until drained.
//   * Timeline — an exclusive resource (a CPU, an FPGA, a DMA engine): jobs
//                reserve [start, end) intervals and serialize.
//   * BandwidthLink — a shared transfer resource that serializes transfers at
//                a fixed bytes/second rate plus a per-message latency.
//
// Simulated time is `SimTime`, in seconds (double). Determinism: events at
// equal times fire in scheduling order.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace rcs::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Event-calendar simulator. Not thread-safe; one engine per simulation.
class Engine {
 public:
  /// Schedule `fn` to run at absolute simulated time `at` (>= now()).
  void schedule(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Run until the calendar drains (or stop() is called). Returns the final
  /// simulated time.
  SimTime run();

  /// Stop after the currently-firing event returns.
  void stop() { stopped_ = true; }

  /// Number of events fired so far.
  std::uint64_t events_fired() const { return fired_; }

  /// Number of events still pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

/// An exclusive resource with a busy-until horizon. Used by the analytic
/// schedule simulator to model a node's processor, its FPGA, and its DMA
/// engine: work requested at `earliest` starts when the resource frees up.
class Timeline {
 public:
  /// Reserve `duration` seconds starting no earlier than `earliest`.
  /// Returns the completion time; start time is `completion - duration`.
  SimTime reserve(SimTime earliest, SimTime duration) {
    RCS_CHECK_MSG(duration >= 0.0, "negative duration " << duration);
    const SimTime start = earliest > busy_until_ ? earliest : busy_until_;
    busy_until_ = start + duration;
    busy_total_ += duration;
    return busy_until_;
  }

  /// Earliest time new work could start.
  SimTime free_at() const { return busy_until_; }

  /// Total busy seconds accumulated.
  SimTime busy_total() const { return busy_total_; }

  /// Reset to an idle resource at time zero.
  void reset() {
    busy_until_ = 0.0;
    busy_total_ = 0.0;
  }

 private:
  SimTime busy_until_ = 0.0;
  SimTime busy_total_ = 0.0;
};

/// A point-to-point or shared link that serializes transfers at `bytes_per_s`
/// with `latency_s` of per-message latency. Models both the XD1 RapidArray
/// interconnect (B_n) and the processor-FPGA DRAM path (B_d).
class BandwidthLink {
 public:
  BandwidthLink(double bytes_per_s, double latency_s = 0.0)
      : bytes_per_s_(bytes_per_s), latency_s_(latency_s) {
    RCS_CHECK_MSG(bytes_per_s > 0.0, "link bandwidth must be positive");
    RCS_CHECK_MSG(latency_s >= 0.0, "link latency must be non-negative");
  }

  /// Time to move `bytes` once the link is free (latency + serialization).
  SimTime transfer_time(std::uint64_t bytes) const {
    return latency_s_ + static_cast<double>(bytes) / bytes_per_s_;
  }

  /// Occupy the link for a `bytes` transfer submitted at `earliest`.
  /// Returns the completion time.
  SimTime transfer(SimTime earliest, std::uint64_t bytes) {
    return line_.reserve(earliest, transfer_time(bytes));
  }

  double bytes_per_s() const { return bytes_per_s_; }
  double latency_s() const { return latency_s_; }
  SimTime busy_total() const { return line_.busy_total(); }
  SimTime free_at() const { return line_.free_at(); }
  void reset() { line_.reset(); }

 private:
  double bytes_per_s_;
  double latency_s_;
  Timeline line_;
};

}  // namespace rcs::sim
