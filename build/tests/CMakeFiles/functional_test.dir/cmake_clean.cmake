file(REMOVE_RECURSE
  "CMakeFiles/functional_test.dir/functional_test.cpp.o"
  "CMakeFiles/functional_test.dir/functional_test.cpp.o.d"
  "functional_test"
  "functional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
