file(REMOVE_RECURSE
  "CMakeFiles/fig9_summary.dir/fig9_summary.cpp.o"
  "CMakeFiles/fig9_summary.dir/fig9_summary.cpp.o.d"
  "fig9_summary"
  "fig9_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
