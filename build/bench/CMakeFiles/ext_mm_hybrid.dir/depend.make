# Empty dependencies file for ext_mm_hybrid.
# This may be replaced when dependencies are built.
