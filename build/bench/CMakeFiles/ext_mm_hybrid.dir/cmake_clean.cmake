file(REMOVE_RECURSE
  "CMakeFiles/ext_mm_hybrid.dir/ext_mm_hybrid.cpp.o"
  "CMakeFiles/ext_mm_hybrid.dir/ext_mm_hybrid.cpp.o.d"
  "ext_mm_hybrid"
  "ext_mm_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mm_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
