file(REMOVE_RECURSE
  "CMakeFiles/ext_qr.dir/ext_qr.cpp.o"
  "CMakeFiles/ext_qr.dir/ext_qr.cpp.o.d"
  "ext_qr"
  "ext_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
