# Empty dependencies file for ext_qr.
# This may be replaced when dependencies are built.
