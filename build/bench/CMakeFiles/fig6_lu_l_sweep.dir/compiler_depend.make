# Empty compiler generated dependencies file for fig6_lu_l_sweep.
# This may be replaced when dependencies are built.
