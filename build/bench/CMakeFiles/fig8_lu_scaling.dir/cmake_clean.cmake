file(REMOVE_RECURSE
  "CMakeFiles/fig8_lu_scaling.dir/fig8_lu_scaling.cpp.o"
  "CMakeFiles/fig8_lu_scaling.dir/fig8_lu_scaling.cpp.o.d"
  "fig8_lu_scaling"
  "fig8_lu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
