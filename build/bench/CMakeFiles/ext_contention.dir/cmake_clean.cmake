file(REMOVE_RECURSE
  "CMakeFiles/ext_contention.dir/ext_contention.cpp.o"
  "CMakeFiles/ext_contention.dir/ext_contention.cpp.o.d"
  "ext_contention"
  "ext_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
