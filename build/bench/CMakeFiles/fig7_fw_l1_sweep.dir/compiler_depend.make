# Empty compiler generated dependencies file for fig7_fw_l1_sweep.
# This may be replaced when dependencies are built.
