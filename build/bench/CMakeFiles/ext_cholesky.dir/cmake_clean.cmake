file(REMOVE_RECURSE
  "CMakeFiles/ext_cholesky.dir/ext_cholesky.cpp.o"
  "CMakeFiles/ext_cholesky.dir/ext_cholesky.cpp.o.d"
  "ext_cholesky"
  "ext_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
