# Empty compiler generated dependencies file for ext_cholesky.
# This may be replaced when dependencies are built.
