# Empty compiler generated dependencies file for fig5_blockmm_bf_sweep.
# This may be replaced when dependencies are built.
