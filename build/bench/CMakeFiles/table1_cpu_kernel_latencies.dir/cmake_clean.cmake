file(REMOVE_RECURSE
  "CMakeFiles/table1_cpu_kernel_latencies.dir/table1_cpu_kernel_latencies.cpp.o"
  "CMakeFiles/table1_cpu_kernel_latencies.dir/table1_cpu_kernel_latencies.cpp.o.d"
  "table1_cpu_kernel_latencies"
  "table1_cpu_kernel_latencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cpu_kernel_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
