# Empty dependencies file for table1_cpu_kernel_latencies.
# This may be replaced when dependencies are built.
