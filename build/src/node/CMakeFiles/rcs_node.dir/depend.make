# Empty dependencies file for rcs_node.
# This may be replaced when dependencies are built.
