file(REMOVE_RECURSE
  "librcs_node.a"
)
