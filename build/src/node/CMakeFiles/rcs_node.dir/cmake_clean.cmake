file(REMOVE_RECURSE
  "CMakeFiles/rcs_node.dir/compute_node.cpp.o"
  "CMakeFiles/rcs_node.dir/compute_node.cpp.o.d"
  "CMakeFiles/rcs_node.dir/gpp.cpp.o"
  "CMakeFiles/rcs_node.dir/gpp.cpp.o.d"
  "librcs_node.a"
  "librcs_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
