file(REMOVE_RECURSE
  "CMakeFiles/rcs_linalg.dir/blas.cpp.o"
  "CMakeFiles/rcs_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/rcs_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/generate.cpp.o"
  "CMakeFiles/rcs_linalg.dir/generate.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/getrf.cpp.o"
  "CMakeFiles/rcs_linalg.dir/getrf.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/io.cpp.o"
  "CMakeFiles/rcs_linalg.dir/io.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/matrix.cpp.o"
  "CMakeFiles/rcs_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/qr.cpp.o"
  "CMakeFiles/rcs_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/rcs_linalg.dir/sparse.cpp.o"
  "CMakeFiles/rcs_linalg.dir/sparse.cpp.o.d"
  "librcs_linalg.a"
  "librcs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
