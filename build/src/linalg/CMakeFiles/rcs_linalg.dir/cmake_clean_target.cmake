file(REMOVE_RECURSE
  "librcs_linalg.a"
)
