
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/cholesky.cpp.o.d"
  "/root/repo/src/linalg/generate.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/generate.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/generate.cpp.o.d"
  "/root/repo/src/linalg/getrf.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/getrf.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/getrf.cpp.o.d"
  "/root/repo/src/linalg/io.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/io.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/io.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/linalg/CMakeFiles/rcs_linalg.dir/sparse.cpp.o" "gcc" "src/linalg/CMakeFiles/rcs_linalg.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
