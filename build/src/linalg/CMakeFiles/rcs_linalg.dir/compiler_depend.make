# Empty compiler generated dependencies file for rcs_linalg.
# This may be replaced when dependencies are built.
