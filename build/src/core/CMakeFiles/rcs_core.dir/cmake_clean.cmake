file(REMOVE_RECURSE
  "CMakeFiles/rcs_core.dir/cholesky.cpp.o"
  "CMakeFiles/rcs_core.dir/cholesky.cpp.o.d"
  "CMakeFiles/rcs_core.dir/fw_analytic.cpp.o"
  "CMakeFiles/rcs_core.dir/fw_analytic.cpp.o.d"
  "CMakeFiles/rcs_core.dir/fw_functional.cpp.o"
  "CMakeFiles/rcs_core.dir/fw_functional.cpp.o.d"
  "CMakeFiles/rcs_core.dir/lu_analytic.cpp.o"
  "CMakeFiles/rcs_core.dir/lu_analytic.cpp.o.d"
  "CMakeFiles/rcs_core.dir/lu_functional.cpp.o"
  "CMakeFiles/rcs_core.dir/lu_functional.cpp.o.d"
  "CMakeFiles/rcs_core.dir/mm.cpp.o"
  "CMakeFiles/rcs_core.dir/mm.cpp.o.d"
  "CMakeFiles/rcs_core.dir/partition.cpp.o"
  "CMakeFiles/rcs_core.dir/partition.cpp.o.d"
  "CMakeFiles/rcs_core.dir/predict.cpp.o"
  "CMakeFiles/rcs_core.dir/predict.cpp.o.d"
  "CMakeFiles/rcs_core.dir/system.cpp.o"
  "CMakeFiles/rcs_core.dir/system.cpp.o.d"
  "librcs_core.a"
  "librcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
