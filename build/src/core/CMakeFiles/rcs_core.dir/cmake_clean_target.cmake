file(REMOVE_RECURSE
  "librcs_core.a"
)
