# Empty dependencies file for rcs_core.
# This may be replaced when dependencies are built.
