file(REMOVE_RECURSE
  "librcs_sim.a"
)
