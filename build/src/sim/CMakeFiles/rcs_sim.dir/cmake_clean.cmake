file(REMOVE_RECURSE
  "CMakeFiles/rcs_sim.dir/engine.cpp.o"
  "CMakeFiles/rcs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rcs_sim.dir/trace.cpp.o"
  "CMakeFiles/rcs_sim.dir/trace.cpp.o.d"
  "librcs_sim.a"
  "librcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
