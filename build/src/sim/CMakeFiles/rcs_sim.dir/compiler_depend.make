# Empty compiler generated dependencies file for rcs_sim.
# This may be replaced when dependencies are built.
