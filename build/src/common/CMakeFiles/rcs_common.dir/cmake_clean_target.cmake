file(REMOVE_RECURSE
  "librcs_common.a"
)
