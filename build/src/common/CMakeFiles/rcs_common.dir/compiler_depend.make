# Empty compiler generated dependencies file for rcs_common.
# This may be replaced when dependencies are built.
