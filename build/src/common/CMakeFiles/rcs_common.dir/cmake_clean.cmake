file(REMOVE_RECURSE
  "CMakeFiles/rcs_common.dir/cli.cpp.o"
  "CMakeFiles/rcs_common.dir/cli.cpp.o.d"
  "CMakeFiles/rcs_common.dir/log.cpp.o"
  "CMakeFiles/rcs_common.dir/log.cpp.o.d"
  "CMakeFiles/rcs_common.dir/stats.cpp.o"
  "CMakeFiles/rcs_common.dir/stats.cpp.o.d"
  "CMakeFiles/rcs_common.dir/table.cpp.o"
  "CMakeFiles/rcs_common.dir/table.cpp.o.d"
  "librcs_common.a"
  "librcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
