file(REMOVE_RECURSE
  "librcs_net.a"
)
