
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/contention.cpp" "src/net/CMakeFiles/rcs_net.dir/contention.cpp.o" "gcc" "src/net/CMakeFiles/rcs_net.dir/contention.cpp.o.d"
  "/root/repo/src/net/minimpi.cpp" "src/net/CMakeFiles/rcs_net.dir/minimpi.cpp.o" "gcc" "src/net/CMakeFiles/rcs_net.dir/minimpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rcs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
