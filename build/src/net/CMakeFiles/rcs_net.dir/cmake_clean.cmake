file(REMOVE_RECURSE
  "CMakeFiles/rcs_net.dir/contention.cpp.o"
  "CMakeFiles/rcs_net.dir/contention.cpp.o.d"
  "CMakeFiles/rcs_net.dir/minimpi.cpp.o"
  "CMakeFiles/rcs_net.dir/minimpi.cpp.o.d"
  "librcs_net.a"
  "librcs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
