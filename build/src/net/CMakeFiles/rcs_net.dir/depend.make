# Empty dependencies file for rcs_net.
# This may be replaced when dependencies are built.
