file(REMOVE_RECURSE
  "librcs_fpga.a"
)
