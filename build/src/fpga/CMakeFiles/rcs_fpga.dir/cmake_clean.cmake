file(REMOVE_RECURSE
  "CMakeFiles/rcs_fpga.dir/device.cpp.o"
  "CMakeFiles/rcs_fpga.dir/device.cpp.o.d"
  "CMakeFiles/rcs_fpga.dir/fw_kernel.cpp.o"
  "CMakeFiles/rcs_fpga.dir/fw_kernel.cpp.o.d"
  "CMakeFiles/rcs_fpga.dir/matmul_array.cpp.o"
  "CMakeFiles/rcs_fpga.dir/matmul_array.cpp.o.d"
  "CMakeFiles/rcs_fpga.dir/pe_cycle_sim.cpp.o"
  "CMakeFiles/rcs_fpga.dir/pe_cycle_sim.cpp.o.d"
  "CMakeFiles/rcs_fpga.dir/resources.cpp.o"
  "CMakeFiles/rcs_fpga.dir/resources.cpp.o.d"
  "librcs_fpga.a"
  "librcs_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
