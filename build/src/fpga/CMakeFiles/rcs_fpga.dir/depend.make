# Empty dependencies file for rcs_fpga.
# This may be replaced when dependencies are built.
