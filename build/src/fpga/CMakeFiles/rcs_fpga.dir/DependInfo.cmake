
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/rcs_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/rcs_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/fw_kernel.cpp" "src/fpga/CMakeFiles/rcs_fpga.dir/fw_kernel.cpp.o" "gcc" "src/fpga/CMakeFiles/rcs_fpga.dir/fw_kernel.cpp.o.d"
  "/root/repo/src/fpga/matmul_array.cpp" "src/fpga/CMakeFiles/rcs_fpga.dir/matmul_array.cpp.o" "gcc" "src/fpga/CMakeFiles/rcs_fpga.dir/matmul_array.cpp.o.d"
  "/root/repo/src/fpga/pe_cycle_sim.cpp" "src/fpga/CMakeFiles/rcs_fpga.dir/pe_cycle_sim.cpp.o" "gcc" "src/fpga/CMakeFiles/rcs_fpga.dir/pe_cycle_sim.cpp.o.d"
  "/root/repo/src/fpga/resources.cpp" "src/fpga/CMakeFiles/rcs_fpga.dir/resources.cpp.o" "gcc" "src/fpga/CMakeFiles/rcs_fpga.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fparith/CMakeFiles/rcs_fparith.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rcs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
