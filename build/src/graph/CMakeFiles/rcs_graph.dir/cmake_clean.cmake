file(REMOVE_RECURSE
  "CMakeFiles/rcs_graph.dir/floyd_warshall.cpp.o"
  "CMakeFiles/rcs_graph.dir/floyd_warshall.cpp.o.d"
  "CMakeFiles/rcs_graph.dir/generate.cpp.o"
  "CMakeFiles/rcs_graph.dir/generate.cpp.o.d"
  "CMakeFiles/rcs_graph.dir/transitive_closure.cpp.o"
  "CMakeFiles/rcs_graph.dir/transitive_closure.cpp.o.d"
  "librcs_graph.a"
  "librcs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
