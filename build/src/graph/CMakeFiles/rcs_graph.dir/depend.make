# Empty dependencies file for rcs_graph.
# This may be replaced when dependencies are built.
