
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/floyd_warshall.cpp" "src/graph/CMakeFiles/rcs_graph.dir/floyd_warshall.cpp.o" "gcc" "src/graph/CMakeFiles/rcs_graph.dir/floyd_warshall.cpp.o.d"
  "/root/repo/src/graph/generate.cpp" "src/graph/CMakeFiles/rcs_graph.dir/generate.cpp.o" "gcc" "src/graph/CMakeFiles/rcs_graph.dir/generate.cpp.o.d"
  "/root/repo/src/graph/transitive_closure.cpp" "src/graph/CMakeFiles/rcs_graph.dir/transitive_closure.cpp.o" "gcc" "src/graph/CMakeFiles/rcs_graph.dir/transitive_closure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rcs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
