file(REMOVE_RECURSE
  "librcs_graph.a"
)
