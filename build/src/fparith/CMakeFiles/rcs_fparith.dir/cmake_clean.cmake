file(REMOVE_RECURSE
  "CMakeFiles/rcs_fparith.dir/ieee754.cpp.o"
  "CMakeFiles/rcs_fparith.dir/ieee754.cpp.o.d"
  "librcs_fparith.a"
  "librcs_fparith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcs_fparith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
