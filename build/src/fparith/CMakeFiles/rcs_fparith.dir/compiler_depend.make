# Empty compiler generated dependencies file for rcs_fparith.
# This may be replaced when dependencies are built.
