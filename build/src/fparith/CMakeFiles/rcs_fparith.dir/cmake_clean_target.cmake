file(REMOVE_RECURSE
  "librcs_fparith.a"
)
