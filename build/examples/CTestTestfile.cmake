# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n" "64" "--b" "16" "--p" "2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_linear_solver "/root/repo/build/examples/linear_solver" "--n" "64" "--b" "16" "--p" "2" "--rhs" "2")
set_tests_properties(example_linear_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shortest_paths "/root/repo/build/examples/shortest_paths" "--rows" "4" "--cols" "8" "--b" "8" "--p" "2")
set_tests_properties(example_shortest_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning" "--lu_n" "12000" "--lu_b" "3000")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_gantt "/root/repo/build/examples/trace_gantt" "--n" "32" "--b" "8" "--p" "2")
set_tests_properties(example_trace_gantt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conjugate_gradient "/root/repo/build/examples/conjugate_gradient" "--n" "64")
set_tests_properties(example_conjugate_gradient PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_lu_functional "/root/repo/build/examples/experiment_runner" "--app" "lu" "--plane" "functional" "--p" "2")
set_tests_properties(example_runner_lu_functional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_fw_functional "/root/repo/build/examples/experiment_runner" "--app" "fw" "--plane" "functional" "--p" "2")
set_tests_properties(example_runner_fw_functional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_chol_functional "/root/repo/build/examples/experiment_runner" "--app" "chol" "--plane" "functional" "--p" "3")
set_tests_properties(example_runner_chol_functional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_mm_functional "/root/repo/build/examples/experiment_runner" "--app" "mm" "--plane" "functional" "--p" "3")
set_tests_properties(example_runner_mm_functional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_analytic_sweep "/root/repo/build/examples/experiment_runner" "--app" "fw" "--mode" "fpga" "--plane" "analytic" "--csv")
set_tests_properties(example_runner_analytic_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
