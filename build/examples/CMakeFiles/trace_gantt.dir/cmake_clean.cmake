file(REMOVE_RECURSE
  "CMakeFiles/trace_gantt.dir/trace_gantt.cpp.o"
  "CMakeFiles/trace_gantt.dir/trace_gantt.cpp.o.d"
  "trace_gantt"
  "trace_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
