// Example: all-pairs shortest paths on a road-network-like graph through
// the hybrid Floyd–Warshall design — the paper's second application.
//
// Builds a grid "city" with highway shortcuts, runs the distributed hybrid
// design, answers a few routing queries (with path reconstruction from the
// reference algorithm), and compares the three design variants' simulated
// time.
//
//   ./shortest_paths [--rows 8] [--cols 8] [--b 8] [--p 4]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/rcs.hpp"

using namespace rcs;

int main(int argc, char** argv) {
  Cli cli("All-pairs shortest paths over the hybrid Floyd-Warshall design");
  cli.add_int("rows", 8, "grid rows");
  cli.add_int("cols", 8, "grid columns");
  cli.add_int("b", 8, "block size");
  cli.add_int("p", 4, "simulated nodes (b*p must divide rows*cols)");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t rows = cli.get_int("rows");
  const std::size_t cols = cli.get_int("cols");
  const long long n = static_cast<long long>(rows * cols);
  const long long b = cli.get_int("b");
  const int p = static_cast<int>(cli.get_int("p"));

  const core::SystemParams sys =
      core::SystemParams::cray_xd1().with_nodes(p);
  const linalg::Matrix d0 = graph::grid_road_network(rows, cols, 77);

  std::cout << "City grid " << rows << "x" << cols << " (" << n
            << " intersections) with highway shortcuts; " << p
            << " nodes (" << sys.name << ")\n\n";

  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  const auto res = core::fw_functional(sys, cfg, d0);
  std::cout << "Hybrid design: l1 = " << res.partition.l1 << " block tasks "
            << "per phase on the CPU, l2 = " << res.partition.l2
            << " on the FPGA (Eq. 6)\n"
            << "Simulated latency " << res.run.seconds << " s, "
            << res.run.gflops() << " GFLOPS\n\n";

  // Routing queries, with paths from the blocked next-hop matrix (same
  // blocked operation order as the hybrid design, so distances match it
  // bit for bit).
  linalg::Matrix dist_ref = d0;
  std::vector<std::size_t> next;
  graph::blocked_floyd_warshall_with_paths(dist_ref, b, next);

  Table q("Sample routes (corner to corner and crosstown)");
  q.set_header({"from", "to", "distance", "hops", "matches hybrid result"});
  const std::size_t corners[4] = {0, cols - 1, (rows - 1) * cols,
                                  rows * cols - 1};
  for (int i = 0; i < 3; ++i) {
    const std::size_t from = corners[i];
    const std::size_t to = corners[3 - i];
    const auto path = graph::reconstruct_path(next, n, from, to);
    q.add_row({Table::num((long long)from), Table::num((long long)to),
               Table::num(res.distances(from, to), 4),
               Table::num((long long)path.size() - 1),
               res.distances(from, to) == dist_ref(from, to) ? "yes" : "NO"});
  }
  q.print(std::cout);

  Table t("\nDesign variants");
  t.set_header({"design", "latency (sim)", "GFLOPS", "vs hybrid"});
  for (auto mode : {core::DesignMode::Hybrid, core::DesignMode::ProcessorOnly,
                    core::DesignMode::FpgaOnly}) {
    core::FwConfig c = cfg;
    c.mode = mode;
    const auto r = core::fw_functional(sys, c, d0);
    t.add_row({core::to_string(mode), Table::seconds(r.run.seconds),
               Table::num(r.run.gflops(), 4),
               Table::num(r.run.seconds / res.run.seconds, 3) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nFor this kernel the FPGA is ~10x the processor, so the\n"
               "FPGA-only baseline is close to the hybrid and the\n"
               "processor-only baseline is far behind — Fig. 9's shape.\n";
  return 0;
}
