// Example: a general experiment driver — every application, design variant
// and simulation plane of the library behind one command line. Useful for
// scripting sweeps beyond the canned benches.
//
//   ./experiment_runner --app lu --mode hybrid --plane analytic
//                       --n 30000 --b 3000 --p 6
//   ./experiment_runner --app fw --mode fpga --plane functional
//                       --n 96 --b 8 --p 4 --seed 7
//   ./experiment_runner --app chol --mode cpu    --plane analytic --csv
//   ./experiment_runner --app mm   --mode hybrid --plane functional --n 64
//
// Prints one row of results (or CSV with --csv) so runs compose in shell
// loops; functional runs also verify the numerical result against the
// sequential reference and fail loudly on any mismatch.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/drift.hpp"
#include "core/rcs.hpp"

using namespace rcs;
using core::DesignMode;

namespace {

DesignMode parse_mode(const std::string& s) {
  if (s == "hybrid") return DesignMode::Hybrid;
  if (s == "cpu") return DesignMode::ProcessorOnly;
  if (s == "fpga") return DesignMode::FpgaOnly;
  RCS_CHECK_MSG(false, "unknown --mode '" << s << "' (hybrid|cpu|fpga)");
  return DesignMode::Hybrid;
}

struct Row {
  core::RunReport run;
  std::string verified = "-";
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("rcs-codesign experiment driver");
  cli.add_string("app", "lu", "application: lu | fw | chol | mm");
  cli.add_string("mode", "hybrid", "design: hybrid | cpu | fpga");
  cli.add_string("plane", "analytic", "plane: analytic | functional");
  cli.add_string("machine", "xd1", "machine preset: xd1 | xt3 | rasc");
  cli.add_int("n", 0, "problem size (0: a sensible default per plane)");
  cli.add_int("b", 0, "block size (0: default)");
  cli.add_int("p", 0, "nodes (0: preset default)");
  cli.add_int("bf", -1, "override b_f (-1: solve)");
  cli.add_int("l", -1, "override l / l1 (-1: solve)");
  cli.add_int("seed", 1, "workload seed (functional)");
  cli.add_bool("csv", false, "emit CSV instead of a table");
  cli.add_bool("drift", false,
               "functional lu/fw only: also print the per-phase predicted vs "
               "simulated vs measured drift report");
  if (!cli.parse(argc, argv)) return 0;

  const std::string app = cli.get_string("app");
  const std::string plane = cli.get_string("plane");
  const DesignMode mode = parse_mode(cli.get_string("mode"));
  const bool functional = plane == "functional";
  RCS_CHECK_MSG(functional || plane == "analytic",
                "unknown --plane '" << plane << "'");

  core::SystemParams sys = core::SystemParams::cray_xd1();
  if (cli.get_string("machine") == "xt3") sys = core::SystemParams::cray_xt3_drc();
  if (cli.get_string("machine") == "rasc") sys = core::SystemParams::sgi_rasc();
  if (cli.get_int("p") > 0) sys.p = static_cast<int>(cli.get_int("p"));

  long long n = cli.get_int("n");
  long long b = cli.get_int("b");
  const std::uint64_t seed = cli.get_int("seed");
  Row row;

  if (app == "lu" || app == "chol") {
    if (b == 0) b = functional ? 16 : 3000;
    if (n == 0) n = functional ? b * 4 : b * 10;
    if (app == "lu") {
      core::LuConfig cfg;
      cfg.n = n; cfg.b = b; cfg.mode = mode;
      cfg.b_f = cli.get_int("bf");
      cfg.l = static_cast<int>(cli.get_int("l"));
      if (functional) {
        const auto a = linalg::diagonally_dominant(n, seed);
        auto ref = a;
        linalg::getrf_blocked(ref.view(), b);
        const auto res = core::lu_functional(sys, cfg, a);
        row.run = res.run;
        row.verified = linalg::bit_equal(res.factored.view(), ref.view())
                           ? "bit-exact" : "MISMATCH";
        RCS_CHECK_MSG(row.verified == "bit-exact", "LU verification failed");
      } else {
        row.run = core::lu_analytic(sys, cfg).run;
      }
    } else {
      core::CholConfig cfg;
      cfg.n = n; cfg.b = b; cfg.mode = mode;
      cfg.b_f = cli.get_int("bf");
      cfg.l = static_cast<int>(cli.get_int("l"));
      if (functional) {
        const auto a = linalg::spd_matrix(n, seed);
        auto ref = a;
        linalg::potrf_blocked(ref.view(), b);
        const auto res = core::cholesky_functional(sys, cfg, a);
        row.run = res.run;
        row.verified = linalg::bit_equal(res.factored.view(), ref.view())
                           ? "bit-exact" : "MISMATCH";
        RCS_CHECK_MSG(row.verified == "bit-exact", "Cholesky verification failed");
      } else {
        row.run = core::cholesky_analytic(sys, cfg).run;
      }
    }
  } else if (app == "fw") {
    if (b == 0) b = functional ? 8 : 256;
    if (n == 0) n = functional ? b * sys.p * 3 : b * sys.p * 60;
    core::FwConfig cfg;
    cfg.n = n; cfg.b = b; cfg.mode = mode;
    cfg.l1 = cli.get_int("l");
    if (functional) {
      const auto d0 = graph::random_digraph(n, seed, 0.5);
      auto ref = d0;
      graph::blocked_floyd_warshall(ref, b);
      const auto res = core::fw_functional(sys, cfg, d0);
      row.run = res.run;
      row.verified = linalg::bit_equal(res.distances.view(), ref.view())
                         ? "bit-exact" : "MISMATCH";
      RCS_CHECK_MSG(row.verified == "bit-exact", "FW verification failed");
    } else {
      row.run = core::fw_analytic(sys, cfg).run;
    }
  } else if (app == "mm") {
    if (b == 0) b = functional ? 32 : 3000;
    if (n == 0) n = functional ? b * 2 : b * 10;
    core::MmConfig cfg;
    cfg.n = n; cfg.b = b; cfg.mode = mode;
    cfg.b_f = cli.get_int("bf");
    if (functional) {
      const auto a = linalg::random_matrix(n, n, seed);
      const auto bm = linalg::random_matrix(n, n, seed + 1);
      linalg::Matrix ref(n, n);
      linalg::gemm(a.view(), bm.view(), ref.view());
      const auto res = core::mm_functional(sys, cfg, a, bm);
      row.run = res.run;
      row.verified = linalg::bit_equal(res.c.view(), ref.view())
                         ? "bit-exact" : "MISMATCH";
      RCS_CHECK_MSG(row.verified == "bit-exact", "MM verification failed");
    } else {
      row.run = core::mm_analytic(sys, cfg).run;
    }
  } else {
    RCS_CHECK_MSG(false, "unknown --app '" << app << "' (lu|fw|chol|mm)");
  }

  Table t;
  t.set_header({"app", "mode", "plane", "n", "b", "p", "latency (s)",
                "GFLOPS", "network bytes", "verified"});
  t.add_row({app, cli.get_string("mode"), plane, Table::num(n), Table::num(b),
             Table::num((long long)sys.p), Table::num(row.run.seconds, 6),
             Table::num(row.run.gflops(), 4),
             Table::num((long long)row.run.bytes_on_network), row.verified});
  if (cli.get_bool("csv")) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  if (cli.get_bool("drift")) {
    RCS_CHECK_MSG(functional && (app == "lu" || app == "fw"),
                  "--drift needs --plane functional and --app lu|fw");
    if (app == "lu") {
      core::LuConfig cfg;
      cfg.n = n; cfg.b = b; cfg.mode = mode;
      cfg.b_f = cli.get_int("bf");
      cfg.l = static_cast<int>(cli.get_int("l"));
      const auto a = linalg::diagonally_dominant(n, seed);
      core::lu_drift_report(sys, cfg, a).print(std::cout);
    } else {
      core::FwConfig cfg;
      cfg.n = n; cfg.b = b; cfg.mode = mode;
      cfg.l1 = cli.get_int("l");
      const auto d0 = graph::random_digraph(n, seed, 0.5);
      core::fw_drift_report(sys, cfg, d0).print(std::cout);
    }
  }
  return 0;
}
