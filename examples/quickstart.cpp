// Quickstart: the whole library in one sitting.
//
//   1. Describe a reconfigurable computing system (or pick a preset).
//   2. Let the design model partition the workload (Eq. 4/5/6).
//   3. Run a hybrid design — functionally, on real data, over the MiniMPI
//      node runtime — and read back the simulated performance report.
//
//   ./quickstart [--n 96] [--b 24] [--p 4]

#include <iostream>

#include "common/cli.hpp"
#include "core/rcs.hpp"

using namespace rcs;

int main(int argc, char** argv) {
  Cli cli("Quickstart for the rcs-codesign library");
  cli.add_int("n", 512, "matrix dimension (b must divide n)");
  cli.add_int("b", 128, "block size");
  cli.add_int("p", 4, "number of simulated nodes");
  if (!cli.parse(argc, argv)) return 0;

  // 1. A system: one Cray XD1 chassis, scaled to p nodes.
  core::SystemParams sys = core::SystemParams::cray_xd1().with_nodes(
      static_cast<int>(cli.get_int("p")));
  std::cout << "System: " << sys.name << " with " << sys.p << " nodes\n"
            << "  per node: dgemm " << sys.gpp.sustained(node::CpuKernel::Dgemm) / 1e9
            << " GFLOPS CPU + " << sys.mm_fpga.name << " ("
            << sys.mm_fpga.peak_flops() / 1e9 << " GFLOPS peak, B_d = "
            << sys.mm_fpga.dram_bytes_per_s / 1e9 << " GB/s)\n"
            << "  network: B_n = " << sys.network.bytes_per_s / 1e9
            << " GB/s\n\n";

  // 2. The design model picks the hardware/software split.
  core::LuConfig cfg;
  cfg.n = cli.get_int("n");
  cfg.b = cli.get_int("b");
  cfg.mode = core::DesignMode::Hybrid;
  const auto part = core::solve_mm_partition(sys, cfg.b);
  std::cout << "Eq. 4 partition for b = " << cfg.b << ": b_f = " << part.b_f
            << " rows to the FPGA, b_p = " << part.b_p
            << " to the processor\n";
  const auto li = core::solve_lu_interleave(sys, cfg.b, part,
                                            core::SendFanout::SerialAll);
  std::cout << "Eq. 5 interleave: serve l = " << li.l
            << " opMM tasks per panel operation\n\n";

  // 3. Factor a real matrix with the distributed hybrid design.
  const linalg::Matrix a = linalg::diagonally_dominant(cfg.n, /*seed=*/42);
  const auto res = core::lu_functional(sys, cfg, a);

  std::cout << "Hybrid LU on real data (" << cfg.n << "x" << cfg.n << "):\n"
            << "  residual ||A - LU||/||A|| = "
            << linalg::lu_residual(a.view(), res.factored.view()) << "\n"
            << "  simulated latency  = " << res.run.seconds << " s\n"
            << "  sustained          = " << res.run.gflops() << " GFLOPS\n"
            << "  CPU / FPGA flops   = " << res.run.cpu_flops << " / "
            << res.run.fpga_flops << "\n"
            << "  network traffic    = " << res.run.bytes_on_network
            << " bytes\n"
            << "  coordination events= " << res.run.coordination_events
            << "\n\n";

  // Compare against the two baselines, as the paper does.
  for (auto mode :
       {core::DesignMode::ProcessorOnly, core::DesignMode::FpgaOnly}) {
    core::LuConfig c = cfg;
    c.mode = mode;
    const auto r = core::lu_functional(sys, c, a);
    std::cout << "  " << core::to_string(mode) << " baseline: "
              << r.run.seconds << " s  ("
              << res.run.seconds / r.run.seconds << "x of hybrid's time)\n";
  }
  std::cout << "\nDone. Try bench/fig9_summary for the paper-scale numbers.\n";
  return 0;
}
