// Example: a dense linear-system solver on a reconfigurable computing
// system — the workload class the paper's introduction motivates (matrix
// factorization at the heart of scientific codes).
//
// Solves A x = rhs for several right-hand sides: the hybrid distributed LU
// factors A once (CPU+FPGA across the nodes), then triangular solves run per
// right-hand side. Verifies the solution and reports the simulated
// performance of all three design variants.
//
//   ./linear_solver [--n 128] [--b 32] [--p 4] [--rhs 4]

#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/rcs.hpp"

using namespace rcs;

namespace {

/// Back-substitution U x = y (U upper triangular, non-unit diagonal).
void solve_upper(const linalg::Matrix& u, linalg::Matrix& x) {
  const std::size_t n = u.rows();
  for (std::size_t col = 0; col < x.cols(); ++col) {
    for (std::size_t j = n; j-- > 0;) {
      double acc = x(j, col);
      for (std::size_t i = j + 1; i < n; ++i) acc -= u(j, i) * x(i, col);
      x(j, col) = acc / u(j, j);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Dense linear solver over the hybrid LU design");
  cli.add_int("n", 512, "matrix dimension");
  cli.add_int("b", 128, "block size (must divide n)");
  cli.add_int("p", 4, "simulated nodes");
  cli.add_int("rhs", 4, "number of right-hand sides");
  if (!cli.parse(argc, argv)) return 0;

  const long long n = cli.get_int("n");
  const long long b = cli.get_int("b");
  const int p = static_cast<int>(cli.get_int("p"));
  const std::size_t nrhs = static_cast<std::size_t>(cli.get_int("rhs"));

  const core::SystemParams sys =
      core::SystemParams::cray_xd1().with_nodes(p);

  // Problem setup: a diagonally dominant system with known solutions.
  const linalg::Matrix a = linalg::diagonally_dominant(n, 2024);
  linalg::Matrix x_true = linalg::random_matrix(n, nrhs, 7, -3.0, 3.0);
  linalg::Matrix rhs(n, nrhs);
  linalg::gemm_overwrite(a.view(), x_true.view(), rhs.view());

  std::cout << "Solving A x = rhs:  n = " << n << ", " << nrhs
            << " right-hand sides, " << p << " nodes ("
            << sys.name << ")\n\n";

  Table t("Design variants");
  t.set_header({"design", "factor latency (sim)", "GFLOPS", "max |x - x*|"});
  for (auto mode : {core::DesignMode::Hybrid, core::DesignMode::ProcessorOnly,
                    core::DesignMode::FpgaOnly}) {
    core::LuConfig cfg;
    cfg.n = n;
    cfg.b = b;
    cfg.mode = mode;
    const auto res = core::lu_functional(sys, cfg, a);

    linalg::Matrix l, u;
    linalg::split_lu(res.factored.view(), l, u);
    linalg::Matrix x = rhs;
    linalg::trsm_left_lower_unit(l.view(), x.view());
    solve_upper(u, x);
    const double err = linalg::max_abs_diff(x.view(), x_true.view());

    t.add_row({core::to_string(mode), Table::seconds(res.run.seconds),
               Table::num(res.run.gflops(), 4), Table::num(err, 3)});
  }
  t.print(std::cout);

  std::cout << "\nAll three variants produce the same factors; only the\n"
               "simulated time differs — the hybrid wins by using both the\n"
               "processor and the FPGA for the trailing-update multiplies.\n";
  return 0;
}
