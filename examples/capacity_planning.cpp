// Example: using the design model for performance prediction (§4.5) —
// capacity planning across reconfigurable computing systems without touching
// hardware.
//
// For each machine preset (Cray XD1, Cray XT3 + DRC, SGI RASC) and a
// what-if sweep over node counts and FPGA clocks, the model partitions the
// workload and predicts latency/GFLOPS for both applications. This is the
// workflow the paper proposes for application developers sizing a system.
//
//   ./capacity_planning [--lu_n 30000] [--lu_b 3000]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/rcs.hpp"

using namespace rcs;

int main(int argc, char** argv) {
  Cli cli("Capacity planning with the design model (Section 4.5)");
  cli.add_int("lu_n", 30000, "LU matrix dimension");
  cli.add_int("lu_b", 3000, "LU block size");
  if (!cli.parse(argc, argv)) return 0;

  const long long lu_n = cli.get_int("lu_n");
  const long long lu_b = cli.get_int("lu_b");

  const core::SystemParams presets[] = {
      core::SystemParams::cray_xd1(),
      core::SystemParams::cray_xt3_drc(),
      core::SystemParams::sgi_rasc(),
  };

  Table t("Predicted hybrid performance per machine (design model, §4.5)");
  t.set_header({"machine", "p", "LU b_f (Eq.4)", "LU GFLOPS",
                "FW l1:l2 (Eq.6)", "FW GFLOPS"});
  for (const auto& sys : presets) {
    core::LuConfig lu;
    lu.n = lu_n;
    lu.b = lu_b;
    lu.mode = core::DesignMode::Hybrid;
    const auto lu_part = core::solve_mm_partition(sys, lu.b);
    const auto lu_pred = core::predict_lu(sys, lu);

    core::FwConfig fw;
    fw.b = 256;
    fw.n = 256LL * sys.p * 60;  // keep b*p | n across presets
    fw.mode = core::DesignMode::Hybrid;
    const auto fw_part = core::solve_fw_partition(sys, fw.n, fw.b);
    const auto fw_pred = core::predict_fw(sys, fw);

    t.add_row({sys.name, Table::num((long long)sys.p),
               Table::num(lu_part.b_f),
               Table::num(lu_pred.gflops(), 4),
               Table::num(fw_part.l1) + ":" + Table::num(fw_part.l2),
               Table::num(fw_pred.gflops(), 4)});
  }
  t.print(std::cout);

  // What-if: scale the XD1 chassis count.
  Table w("\nWhat-if: scaling Cray XD1 node count (hybrid LU)");
  w.set_header({"p", "b_f", "predicted GFLOPS", "simulated GFLOPS",
                "worker efficiency"});
  double per_worker_base = 0.0;
  for (int p : {2, 4, 6, 12, 24}) {
    const auto sys = core::SystemParams::cray_xd1().with_nodes(p);
    core::LuConfig lu;
    lu.n = lu_n;
    lu.b = lu_b;
    lu.mode = core::DesignMode::Hybrid;
    const auto pred = core::predict_lu(sys, lu);
    const auto rep = core::lu_analytic(sys, lu);
    // Efficiency per worker node (p-1 nodes run opMM; one runs the panel).
    if (p == 2) per_worker_base = rep.run.gflops();
    w.add_row({Table::num((long long)p),
               Table::num(core::solve_mm_partition(sys, lu.b).b_f),
               Table::num(pred.gflops(), 4), Table::num(rep.run.gflops(), 4),
               Table::num(100.0 * rep.run.gflops() /
                              ((p - 1) * per_worker_base),
                          3) +
                   "%"});
  }
  w.print(std::cout);

  // What-if: a faster FPGA design clock on XD1 (e.g. a better-placed design).
  Table f("\nWhat-if: FPGA design clock on XD1 (hybrid LU, Eq. 4 re-solved)");
  f.set_header({"F_f (MHz)", "b_f", "simulated GFLOPS"});
  for (double mhz : {100.0, 130.0, 160.0, 200.0, 260.0}) {
    auto sys = core::SystemParams::cray_xd1();
    sys.mm_fpga.clock_hz = mhz * 1e6;
    sys.mm_fpga.dram_bytes_per_s = mhz * 1e6 * 8;  // word per cycle
    core::LuConfig lu;
    lu.n = lu_n;
    lu.b = lu_b;
    lu.mode = core::DesignMode::Hybrid;
    const auto rep = core::lu_analytic(sys, lu);
    f.add_row({Table::num(mhz, 4), Table::num(rep.partition.b_f),
               Table::num(rep.run.gflops(), 4)});
  }
  f.print(std::cout);

  std::cout << "\nReading: Eq. 4 shifts rows to the FPGA as its clock rises;\n"
               "scaling nodes keeps efficiency high until the serial panel\n"
               "path (opLU/opL/opU on one node) dominates — Amdahl at work.\n";
  return 0;
}
