// Example: Conjugate Gradient with a hybrid matrix-vector product — the
// workload of the paper's related work [9] (Morris, Anderson & Prasanna,
// "A Hybrid Approach for Mapping Conjugate Gradient onto an FPGA-Augmented
// Reconfigurable Supercomputer", FCCM 2006).
//
// One XD1 node solves a dense SPD system A x = rhs by CG. The O(n^2)
// matrix-vector product each iteration is split by Eq. 1: the FPGA's PE
// array computes b_f rows while the processor computes the rest. The O(n)
// vector updates stay on the processor (they are not "computationally
// intensive tasks" in the model's sense). Simulated time is reported for
// the hybrid and the two single-engine variants.
//
//   ./conjugate_gradient [--n 512] [--tol 1e-10]

#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/rcs.hpp"

using namespace rcs;

namespace {

struct CgOutcome {
  int iterations = 0;
  double residual = 0.0;
  double sim_seconds = 0.0;
  double matvec_flops = 0.0;
  linalg::Matrix x;
};

/// CG with the matvec split b_f : b_p between the FPGA array model and the
/// host gemm; all timing lands on the node's virtual clock.
CgOutcome run_cg(const core::SystemParams& sys, const linalg::Matrix& a,
                 const linalg::Matrix& rhs, long long b_f, double tol,
                 int max_iter) {
  const std::size_t n = a.rows();
  const long long bf = b_f;
  const long long bp = static_cast<long long>(n) - bf;
  const fpga::MatMulArray array(sys.mm_fpga);
  const long long k = sys.mm_fpga.pe_count;

  net::VirtualClock clock;
  node::ComputeNode node(sys.node_params_mm(), clock, nullptr, "node0");

  linalg::Matrix x(n, 1);
  linalg::Matrix r = rhs;
  linalg::Matrix p = rhs;
  linalg::Matrix q(n, 1);

  auto dot = [&](const linalg::Matrix& u, const linalg::Matrix& v) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += u(i, 0) * v(i, 0);
    node.cpu_compute(node::CpuKernel::MemBound, 2.0 * double(n), "dot");
    return acc;
  };

  auto matvec = [&] {
    q.fill(0.0);
    // Timing: stream k-column stripes; the FPGA pipelines behind the DRAM
    // stream while the CPU computes its own rows.
    for (long long s = 0; s < static_cast<long long>(n); s += k) {
      const long long ks =
          std::min<long long>(k, static_cast<long long>(n) - s);
      if (bf > 0) {
        node.dram_to_fpga(static_cast<std::uint64_t>((bf * ks + ks) * 8));
        node.fpga_submit(static_cast<double>(array.cycles(bf, ks, 1)),
                         "matvec");
      }
      if (bp > 0) {
        node.cpu_compute(node::CpuKernel::Dgemm, 2.0 * double(bp * ks),
                         "matvec");
      }
    }
    if (bf > 0) {
      auto q_f = q.block(0, 0, bf, 1);
      array.multiply_accumulate(a.block(0, 0, bf, n), p.view(), q_f);
      node.note_fpga_flops(2.0 * double(bf) * double(n));
    }
    if (bp > 0) {
      linalg::gemm(a.block(bf, 0, bp, n), p.view(), q.block(bf, 0, bp, 1));
    }
    if (bf > 0) node.fpga_wait();
  };

  CgOutcome out;
  double rr = dot(r, r);
  const double rhs_norm = std::sqrt(dot(rhs, rhs));
  for (int it = 0; it < max_iter; ++it) {
    matvec();
    out.matvec_flops += 2.0 * double(n) * double(n);
    const double alpha = rr / dot(p, q);
    for (std::size_t i = 0; i < n; ++i) {
      x(i, 0) += alpha * p(i, 0);
      r(i, 0) -= alpha * q(i, 0);
    }
    node.cpu_compute(node::CpuKernel::MemBound, 4.0 * double(n), "axpy");
    const double rr_new = dot(r, r);
    out.iterations = it + 1;
    if (std::sqrt(rr_new) <= tol * rhs_norm) {
      rr = rr_new;
      break;
    }
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p(i, 0) = r(i, 0) + beta * p(i, 0);
    node.cpu_compute(node::CpuKernel::MemBound, 2.0 * double(n), "update p");
    rr = rr_new;
  }
  out.residual = std::sqrt(rr) / rhs_norm;
  out.sim_seconds = clock.now();
  out.x = std::move(x);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Conjugate Gradient with a hybrid matrix-vector product");
  cli.add_int("n", 512, "system dimension");
  cli.add_double("tol", 1e-10, "relative residual tolerance");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = cli.get_int("n");
  const double tol = cli.get_double("tol");
  const auto sys = core::SystemParams::cray_xd1().with_nodes(1);

  const linalg::Matrix a = linalg::spd_matrix(n, 99);
  linalg::Matrix x_true = linalg::random_matrix(n, 1, 101);
  linalg::Matrix rhs(n, 1);
  linalg::gemm_overwrite(a.view(), x_true.view(), rhs.view());

  // Let the design model pick the matvec split by measuring the per-
  // iteration time at each candidate b_f (the Eq. 1 balance for this task
  // shape — one output column, so the whole matrix streams per product).
  std::cout << "CG on one XD1 node, n = " << n << ".\n\n";
  Table sweep("Design-model sweep: simulated time of ONE matvec vs b_f");
  sweep.set_header({"b_f", "matvec time", "note"});
  long long model_bf = 0;
  double best = 1e300;
  for (long long bf :
       {0LL, static_cast<long long>(n) / 4, static_cast<long long>(n) / 2,
        3 * static_cast<long long>(n) / 4, static_cast<long long>(n)}) {
    const long long bfk = (bf / 8) * 8;
    const auto probe = run_cg(sys, a, rhs, bfk, tol, 1);  // one iteration
    if (probe.sim_seconds < best) {
      best = probe.sim_seconds;
      model_bf = bfk;
    }
    sweep.add_row({Table::num(bfk), Table::seconds(probe.sim_seconds),
                   bfk == 0 ? "all processor" : ""});
  }
  sweep.print(std::cout);
  std::cout << "\nThe model assigns b_f = " << model_bf
            << ": with one output column the PE array pads every k x 1 tile\n"
               "to k x k and the whole matrix re-streams each iteration, so\n"
               "the matvec is transfer-bound and belongs on the processor —\n"
               "the same §4.2 reasoning that keeps opMS off the FPGA, and\n"
               "[9]'s observation for CG on this machine class.\n\n";

  Table t("Matvec engine variants");
  t.set_header({"variant", "iterations", "rel. residual", "sim time",
                "matvec GFLOPS", "max |x - x*|"});
  struct Variant {
    const char* name;
    long long b_f;
  };
  for (const Variant v :
       {Variant{"model choice", model_bf}, Variant{"half-and-half",
                                                   static_cast<long long>(n) /
                                                       2},
        Variant{"fpga-only", static_cast<long long>(n)}}) {
    const auto out = run_cg(sys, a, rhs, v.b_f, tol, 2 * int(n));
    t.add_row({v.name, Table::num((long long)out.iterations),
               Table::num(out.residual, 3), Table::seconds(out.sim_seconds),
               Table::num(out.matvec_flops / out.sim_seconds / 1e9, 4),
               Table::num(linalg::max_abs_diff(out.x.view(), x_true.view()),
                          3)});
  }
  t.print(std::cout);

  std::cout << "\nAll variants converge to identical solutions; only the\n"
               "simulated time differs. The design model's job is exactly\n"
               "this judgement call: block multiplies (compute-bound) are\n"
               "split across both engines, matvecs (transfer-bound) are\n"
               "not — \"our model is unsuitable ... for applications that\n"
               "contain few computationally intensive tasks\" (§4).\n\n";

  // --------------------------------------------------------------------
  // The sparse case — where [9]'s hybrid CG actually won. A 5-point
  // Laplacian SpMV is irregular: the era Opteron sustains ~200 MFLOPS on
  // it (pointer-chasing gather), while the FPGA's dot-product units stream
  // CSR at full B_d. The row split balances the two engines per Eq. 1.
  {
    const std::size_t gr = 48, gc = 48;
    const auto lap = linalg::CsrMatrix::laplacian_2d(gr, gc, 1.0);
    const std::size_t sn = lap.rows();
    const double cpu_spmv_rate = 200e6;  // era irregular-access SpMV
    const double bd = sys.mm_fpga.dram_bytes_per_s;
    const double ff = sys.mm_fpga.clock_hz;
    const int kpe = sys.mm_fpga.pe_count;

    // Per-SpMV engine times from the model.
    const double nnz = static_cast<double>(lap.nnz());
    const double t_cpu = 2.0 * nnz / cpu_spmv_rate;
    const double t_fpga = std::max(
        static_cast<double>(lap.stream_bytes()) / bd,  // CSR stream
        nnz / (kpe * ff));                             // MAC issue
    // Eq. 1 row split: fraction f to the FPGA with f*t_fpga = (1-f)*t_cpu.
    const double f = t_cpu / (t_cpu + t_fpga);
    Table s("Sparse CG (48x48 Laplacian, nnz = " +
            Table::num((long long)lap.nnz()) +
            "): per-SpMV engine times from the model");
    s.set_header({"engine", "per SpMV", "note"});
    s.add_row({"processor", Table::seconds(t_cpu),
               "~200 MFLOPS on irregular gather"});
    s.add_row({"FPGA stream", Table::seconds(t_fpga),
               "CSR at B_d, one MAC/nonzero/PE"});
    s.add_row({"hybrid split", Table::seconds(f * t_fpga),
               "f = " + Table::num(f, 3) + " of rows on the FPGA"});
    s.print(std::cout);

    // Run sparse CG functionally to verify convergence on the same system.
    // (A random right-hand side — the all-ones vector is an eigenvector of
    // the shifted Laplacian and would converge in one step.)
    std::vector<double> xs(sn, 0.0), rs(sn), ps(sn), qs(sn);
    std::vector<double> rhs_s(sn);
    Rng rng(4242);
    for (double& v : rhs_s) v = rng.uniform(-1.0, 1.0);
    rs = rhs_s;
    ps = rs;
    double rr = 0.0;
    for (double v : rs) rr += v * v;
    const double rhs_norm = std::sqrt(rr);
    int iters = 0;
    for (; iters < 500; ++iters) {
      lap.spmv(ps.data(), qs.data());
      double pq = 0.0;
      for (std::size_t i = 0; i < sn; ++i) pq += ps[i] * qs[i];
      const double alpha = rr / pq;
      for (std::size_t i = 0; i < sn; ++i) {
        xs[i] += alpha * ps[i];
        rs[i] -= alpha * qs[i];
      }
      double rr_new = 0.0;
      for (double v : rs) rr_new += v * v;
      if (std::sqrt(rr_new) <= 1e-10 * rhs_norm) {
        rr = rr_new;
        ++iters;
        break;
      }
      const double beta = rr_new / rr;
      for (std::size_t i = 0; i < sn; ++i) ps[i] = rs[i] + beta * ps[i];
      rr = rr_new;
    }
    std::cout << "\nSparse CG converged in " << iters
              << " iterations (rel. residual "
              << std::sqrt(rr) / rhs_norm << "); hybrid SpMV speedup over "
              << "the processor: " << Table::num(t_cpu / (f * t_fpga), 3)
              << "x — the regime where [9] reports its gains.\n";
  }
  return 0;
}
