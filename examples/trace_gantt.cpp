// Example: execution tracing — watch where every simulated second goes.
//
// Runs the hybrid Floyd–Warshall design with tracing enabled, prints the
// per-resource utilization table (the paper's claim that the hybrid
// "utilizes the computing power of both the processors and the FPGAs
// efficiently", §7), and writes a Gantt-ready CSV of every busy interval.
//
//   ./trace_gantt [--n 96] [--b 8] [--p 4] [--csv trace.csv]

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/rcs.hpp"

using namespace rcs;

int main(int argc, char** argv) {
  Cli cli("Execution-trace export for the hybrid Floyd-Warshall design");
  cli.add_int("n", 96, "vertices (b*p must divide n)");
  cli.add_int("b", 8, "block size");
  cli.add_int("p", 4, "simulated nodes");
  cli.add_string("csv", "", "write the Gantt CSV here (empty: skip)");
  if (!cli.parse(argc, argv)) return 0;

  const core::SystemParams sys = core::SystemParams::cray_xd1().with_nodes(
      static_cast<int>(cli.get_int("p")));
  core::FwConfig cfg;
  cfg.n = cli.get_int("n");
  cfg.b = cli.get_int("b");
  cfg.mode = core::DesignMode::Hybrid;

  const linalg::Matrix d0 = graph::random_digraph(cfg.n, 5, 0.5);
  sim::TraceRecorder trace(true);
  const auto res = core::fw_functional(sys, cfg, d0, false, &trace);

  std::cout << "Hybrid FW on " << sys.p << " nodes: " << res.run.seconds
            << " simulated seconds, " << res.run.gflops() << " GFLOPS, "
            << trace.spans().size() << " trace spans\n\n";

  Table t("Per-resource utilization over the run");
  t.set_header({"resource", "busy", "utilization"});
  for (const auto& [resource, busy] : trace.busy_by_resource()) {
    t.add_row({resource, Table::seconds(busy),
               Table::num(100.0 * busy / res.run.seconds, 3) + "%"});
  }
  t.print(std::cout);

  const std::string path = cli.get_string("csv");
  if (!path.empty()) {
    std::ofstream out(path);
    trace.write_csv(out);
    std::cout << "\nGantt CSV written to " << path << " ("
              << trace.spans().size() << " rows: resource,start,end,label)\n";
  } else {
    std::cout << "\n(pass --csv trace.csv to export the Gantt data)\n";
  }

  // The same run replayed under explicit network links, for completeness.
  std::vector<net::MessageEvent> log;
  core::fw_functional(sys, cfg, d0, false, nullptr, &log);
  std::cout << "\nMessages sent during the run: " << log.size() << "\n";
  return 0;
}
