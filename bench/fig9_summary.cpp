// Figure 9 reproduction (plus the Section 6.2 derived claims): sustained
// GFLOPS of the hybrid designs against the Processor-only and FPGA-only
// baselines at the paper's operating points —
//   LU: n = 30000, b = 3000  (paper: 20 / ~15.4 / ~10 GFLOPS)
//   FW: n = 92160, b = 256   (paper: 6.6 / ~1.14 / ~5.7 GFLOPS)
// and the model-prediction comparison of §4.5/§6.2 (>= 86% for LU, ~96%
// for FW).

#include <iostream>

#include "common/table.hpp"
#include "core/fw_analytic.hpp"
#include "core/lu_analytic.hpp"
#include "core/predict.hpp"

using namespace rcs;
using core::DesignMode;

int main() {
  const auto sys = core::SystemParams::cray_xd1();

  // ----- LU -----
  core::LuConfig lu;
  lu.n = 30000;
  lu.b = 3000;
  auto lu_run = [&](DesignMode m) {
    core::LuConfig c = lu;
    c.mode = m;
    return core::lu_analytic(sys, c);
  };
  const auto lu_h = lu_run(DesignMode::Hybrid);
  const auto lu_c = lu_run(DesignMode::ProcessorOnly);
  const auto lu_f = lu_run(DesignMode::FpgaOnly);
  lu.mode = DesignMode::Hybrid;
  const auto lu_pred = core::predict_lu(sys, lu);

  // ----- FW -----
  core::FwConfig fw;
  fw.n = 92160;
  fw.b = 256;
  auto fw_run = [&](DesignMode m) {
    core::FwConfig c = fw;
    c.mode = m;
    return core::fw_analytic(sys, c);
  };
  const auto fw_h = fw_run(DesignMode::Hybrid);
  const auto fw_c = fw_run(DesignMode::ProcessorOnly);
  const auto fw_f = fw_run(DesignMode::FpgaOnly);
  fw.mode = DesignMode::Hybrid;
  const auto fw_pred = core::predict_fw(sys, fw);

  std::cout << "Figure 9 — performance comparison with baseline designs "
            << "(Cray XD1, p = 6)\n\n";

  Table t;
  t.set_header({"Application", "Design", "GFLOPS", "paper GFLOPS"});
  t.add_row({"LU (n=30000,b=3000)", "Hybrid",
             Table::num(lu_h.run.gflops(), 4), "20"});
  t.add_row({"", "Processor-only", Table::num(lu_c.run.gflops(), 4),
             "~15.4 (20/1.3)"});
  t.add_row({"", "FPGA-only", Table::num(lu_f.run.gflops(), 4), "~10 (20/2)"});
  t.add_row({"FW (n=92160,b=256)", "Hybrid", Table::num(fw_h.run.gflops(), 4),
             "6.6"});
  t.add_row({"", "Processor-only", Table::num(fw_c.run.gflops(), 4),
             "~1.14 (6.6/5.8)"});
  t.add_row({"", "FPGA-only", Table::num(fw_f.run.gflops(), 4),
             "~5.7 (6.6/1.15)"});
  t.print(std::cout);

  Table s("\nDerived Section 6.2 claims");
  s.set_header({"Claim", "paper", "reproduced"});
  auto ratio = [](double a, double b2) { return Table::num(a / b2, 3); };
  s.add_row({"LU speedup vs processor-only", "1.3x",
             ratio(lu_c.run.seconds, lu_h.run.seconds) + "x"});
  s.add_row({"LU speedup vs FPGA-only", "2x",
             ratio(lu_f.run.seconds, lu_h.run.seconds) + "x"});
  s.add_row({"LU fraction of baselines' sum", "~80%",
             Table::num(100.0 * lu_h.run.gflops() /
                            (lu_c.run.gflops() + lu_f.run.gflops()),
                        3) +
                 "%"});
  s.add_row({"LU fraction of model prediction", "~86%",
             Table::num(100.0 * lu_h.run.gflops() / lu_pred.gflops(), 3) +
                 "%"});
  s.add_row({"FW speedup vs processor-only", "5.8x",
             ratio(fw_c.run.seconds, fw_h.run.seconds) + "x"});
  s.add_row({"FW speedup vs FPGA-only", "1.15x",
             ratio(fw_f.run.seconds, fw_h.run.seconds) + "x"});
  s.add_row({"FW fraction of baselines' sum", ">95%",
             Table::num(100.0 * fw_h.run.gflops() /
                            (fw_c.run.gflops() + fw_f.run.gflops()),
                        3) +
                 "%"});
  s.add_row({"FW fraction of model prediction", "~96%",
             Table::num(100.0 * fw_h.run.gflops() / fw_pred.gflops(), 3) +
                 "%"});
  s.print(std::cout);

  const bool lu_order = lu_h.run.gflops() > lu_c.run.gflops() &&
                        lu_c.run.gflops() > lu_f.run.gflops();
  const bool fw_order = fw_h.run.gflops() > fw_f.run.gflops() &&
                        fw_f.run.gflops() > fw_c.run.gflops();
  std::cout << "\nShape: LU ordering hybrid > CPU-only > FPGA-only "
            << (lu_order ? "[ok]" : "[MISMATCH]")
            << "; FW ordering hybrid > FPGA-only > CPU-only "
            << (fw_order ? "[ok]" : "[MISMATCH]") << "\n";
  return 0;
}
