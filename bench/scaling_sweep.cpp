// Large-p scaling sweep: predicted vs simulated makespan of the LU and
// Floyd-Warshall designs across p in {4, 16, 64, 256, 1024}, under the
// Eq. 4/5 (LU) and Eq. 6 (FW) partition rules. The p >= 256 worlds run as
// fiber-scheduled MiniMPI ranks multiplexed over a few OS threads in one
// process (World auto mode) — the design point the rank scheduler exists
// for. FW's functional plane grows ~p^3 (n = b*p), so it is simulated
// through p=64 and predicted beyond; LU is simulated everywhere.
//
// Usage: scaling_sweep [--quick]
//   (--quick caps simulation at p=64 for LU / p=16 for FW; the CI smoke.)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "scaling_sweep.hpp"

using namespace rcs;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Warm the pool before any world so rank fibers land on it.
  common::ThreadPool::global();

  const std::vector<int> ps = {4, 16, 64, 256, 1024};
  const int lu_sim_max_p = quick ? 64 : 1024;
  const int fw_sim_max_p = quick ? 16 : 64;
  const auto points =
      bench::scaling_sweep(ps, 128, 16, 8, lu_sim_max_p, fw_sim_max_p);

  std::cout << "Scaling sweep — predicted vs simulated makespan "
               "(LU n=128 b=16; FW b=8, n=8p)\n\n";
  std::printf("%-3s %5s %6s %-14s %12s %12s %8s %10s %9s %8s\n", "dsn", "p",
              "n", "partition", "predicted_s", "simulated_s", "sim/pred",
              "net_bytes", "trace_ev", "wall_s");
  bool invariants_ok = true;
  for (const auto& pt : points) {
    char part[32];
    if (pt.design == "LU") {
      std::snprintf(part, sizeof(part), "b_f=%lld l=%d", pt.b_f, pt.l);
    } else {
      std::snprintf(part, sizeof(part), "l1=%lld l2=%lld", pt.l1, pt.l2);
    }
    if (pt.simulated) {
      std::printf("%-3s %5d %6lld %-14s %12.6g %12.6g %8.3f %10llu %9llu "
                  "%8.2f\n",
                  pt.design.c_str(), pt.p, pt.n, part, pt.predicted_s,
                  pt.simulated_s, pt.sim_over_predicted(),
                  static_cast<unsigned long long>(pt.bytes_on_network),
                  static_cast<unsigned long long>(pt.trace_events),
                  pt.wall_s);
      invariants_ok = invariants_ok && pt.analysis.invariants_hold();
    } else {
      std::printf("%-3s %5d %6lld %-14s %12.6g %12s\n", pt.design.c_str(),
                  pt.p, pt.n, part, pt.predicted_s, "(predicted)");
    }
  }

  std::cout << "\nCritical-path invariants on every simulated point: "
            << (invariants_ok ? "[ok]" : "[VIOLATED]") << "\n";
  return invariants_ok ? 0 : 1;
}
