// Extension bench: hybrid Cholesky factorization on the XD1 model — the
// third dense factorization of the hybrid-linear-algebra family ([22]).
// Shows the design-model contrast with LU: half the trailing work per panel
// operation means the serial panel chain weighs more, so both the absolute
// GFLOPS and the hybrid's margin over the baselines shrink.

#include <iostream>

#include "common/table.hpp"
#include "core/cholesky.hpp"
#include "core/lu_analytic.hpp"

using namespace rcs;
using core::DesignMode;

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  std::cout << "Extension — hybrid Cholesky (A = L L^T), Cray XD1, p = 6\n\n";

  // Design variants at the LU paper scale.
  {
    core::CholConfig cfg;
    cfg.n = 30000;
    cfg.b = 3000;
    Table t("Design variants (n = 30000, b = 3000); useful rate counts "
            "n^3/3 flops");
    t.set_header({"design", "latency (s)", "useful GFLOPS",
                  "executed GFLOPS"});
    const double useful_flops = 30000.0 * 30000.0 * 30000.0 / 3.0;
    for (auto mode : {DesignMode::Hybrid, DesignMode::ProcessorOnly,
                      DesignMode::FpgaOnly}) {
      core::CholConfig c = cfg;
      c.mode = mode;
      const auto rep = core::cholesky_analytic(sys, c);
      t.add_row({core::to_string(mode), Table::num(rep.run.seconds, 5),
                 Table::num(useful_flops / rep.run.seconds / 1e9, 4),
                 Table::num(rep.run.gflops(), 4)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // Scaling with block count, side by side with LU.
  {
    Table t("Hybrid useful GFLOPS vs n/b (b = 3000): Cholesky vs LU");
    t.set_header({"n/b", "Cholesky", "LU"});
    for (long long nb : {2, 4, 6, 8, 10}) {
      core::CholConfig chol;
      chol.n = 3000 * nb;
      chol.b = 3000;
      chol.mode = DesignMode::Hybrid;
      const auto crep = core::cholesky_analytic(sys, chol);
      const double cn = static_cast<double>(chol.n);
      core::LuConfig lu;
      lu.n = chol.n;
      lu.b = 3000;
      lu.mode = DesignMode::Hybrid;
      const auto lrep = core::lu_analytic(sys, lu);
      t.add_row({Table::num(nb),
                 Table::num(cn * cn * cn / 3.0 / crep.run.seconds / 1e9, 4),
                 Table::num(2.0 * cn * cn * cn / 3.0 / lrep.run.seconds / 1e9,
                            4)});
    }
    t.print(std::cout);
  }
  std::cout << "\nShape: both factorizations gain with n/b; Cholesky trails "
               "LU because its\ntrailing update (the only hybrid task) is "
               "half the size relative to the panel chain.\n";
  return 0;
}
