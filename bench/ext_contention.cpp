// Extension bench: validate the paper's non-blocking-crossbar assumption.
//
// Section 3 describes the XD1 fabric as "a non-blocking crossbar switching
// fabric which provides two 2 GB/s links to each node", and the design
// model charges communication to the sender only. This bench records every
// message of real functional runs (hybrid LU and FW) and replays the logs
// through three explicit link models, reporting how much queueing the
// accounting missed.

#include <iostream>

#include "common/table.hpp"
#include "core/rcs.hpp"
#include "net/contention.hpp"

using namespace rcs;

namespace {

void analyze(const std::string& title,
             const std::vector<net::MessageEvent>& log,
             const net::NetworkParams& np, int p) {
  Table t(title);
  t.set_header({"link model", "messages", "slowdown", "max added delay",
                "busiest link", "utilization"});
  for (auto model : {net::LinkModel::Crossbar, net::LinkModel::PerNodeLinks,
                     net::LinkModel::SharedBus}) {
    const auto rep = net::analyze_contention(log, np, p, model);
    t.add_row({net::to_string(model),
               Table::num(static_cast<long long>(rep.messages)),
               Table::num(rep.slowdown(), 4) + "x",
               Table::seconds(rep.max_added_delay), rep.busiest_link,
               Table::num(100.0 * rep.busiest_link_utilization, 3) + "%"});
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  auto sys = core::SystemParams::cray_xd1();
  std::cout << "Extension — network contention replay (does the crossbar "
               "assumption hold?)\n\n";

  {
    core::LuConfig cfg;
    cfg.n = 144;
    cfg.b = 24;
    cfg.mode = core::DesignMode::Hybrid;
    cfg.b_f = 8;
    const auto a = linalg::diagonally_dominant(cfg.n, 11);
    std::vector<net::MessageEvent> log;
    core::lu_functional(sys, cfg, a, false, nullptr, &log);
    analyze("Hybrid LU traffic (n = 144, b = 24, p = 6)", log, sys.network,
            sys.p);
  }
  {
    core::FwConfig cfg;
    cfg.n = 192;
    cfg.b = 16;
    cfg.mode = core::DesignMode::Hybrid;
    const auto d0 = graph::random_digraph(cfg.n, 13, 0.4);
    std::vector<net::MessageEvent> log;
    core::fw_functional(sys, cfg, d0, false, nullptr, &log);
    analyze("Hybrid FW traffic (n = 192, b = 16, p = 6)", log, sys.network,
            sys.p);
  }

  std::cout << "Reading: crossbar and per-node-link replays stay at ~1.0x —\n"
               "the paper's sender-side accounting is sound on XD1-like\n"
               "fabrics; a shared bus would queue the broadcast traffic.\n";
  return 0;
}
