// Figure 7 reproduction: latency of one Floyd–Warshall iteration versus l1
// (block tasks per phase kept on the processor), n = 18432, b = 256, p = 6.
// The paper's curve: latency falls as l1 drops from 12 to the Eq. 6 optimum
// (l1 = 2), rises again at l1 = 1 (FPGA overloaded), and FPGA-only (l1 = 0)
// beats several mid-range hybrid points because the FPGA is ~10x the
// processor for this kernel.

#include <iostream>

#include "common/table.hpp"
#include "core/fw_analytic.hpp"

using namespace rcs;

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  core::FwConfig cfg;
  cfg.n = 18432;
  cfg.b = 256;
  cfg.mode = core::DesignMode::Hybrid;
  cfg.max_iterations = 1;

  const auto solved = core::solve_fw_partition(sys, cfg.n, cfg.b);
  std::cout << "Figure 7 — latency of one FW iteration vs l1 "
            << "(n = 18432, b = 256, p = 6, L = " << solved.ops_per_phase
            << ")\nEq. 6 solution: l1 = " << solved.l1
            << ", l2 = " << solved.l2 << " (paper: l1 = 2, l2 = 10)\n\n";

  Table t;
  t.set_header({"l1", "l2", "iteration latency (s)", "CPU side/phase (s)",
                "FPGA side/phase (s)", "note"});
  std::vector<double> lat(static_cast<std::size_t>(solved.ops_per_phase + 1));
  for (long long l1 = solved.ops_per_phase; l1 >= 0; --l1) {
    core::FwConfig c = cfg;
    c.l1 = l1;
    const auto rep = core::fw_analytic(sys, c);
    lat[static_cast<std::size_t>(l1)] = rep.run.seconds;
    const auto& part = rep.partition;
    std::string note;
    if (l1 == solved.ops_per_phase) note = "processor-only split";
    if (l1 == 0) note = "fpga-only split";
    if (l1 == solved.l1) note = "Eq. 6 optimum";
    t.add_row({Table::num(l1), Table::num(part.l2),
               Table::num(rep.run.seconds, 5),
               Table::num(static_cast<double>(part.l1) * part.t_p, 4),
               Table::num(static_cast<double>(part.l2) *
                              (part.t_f + part.t_mem),
                          4),
               note});
  }
  t.print(std::cout);

  const auto opt = static_cast<std::size_t>(solved.l1);
  const bool min_at_opt = lat[opt] <= lat[opt + 1] && lat[opt] <= lat[1];
  const bool one_overloads = lat[1] > lat[opt];
  const bool fpga_only_beats_midrange = lat[0] < lat[4];
  std::cout << "\nShape: minimum at the Eq. 6 split "
            << (min_at_opt ? "[ok]" : "[MISMATCH]")
            << ", l1 = 1 overloads the FPGA "
            << (one_overloads ? "[ok]" : "[MISMATCH]")
            << ", FPGA-only beats mid-range hybrids "
            << (fpga_only_beats_midrange ? "[ok]" : "[MISMATCH]") << "\n";
  return 0;
}
