// Ablation: blocking barrier schedule vs lookahead comm/compute overlap in
// the functional LU and Floyd-Warshall designs.
//
// For each design point the sweep runs both schedules on the same input and
// prints simulated makespans against the paper's predicted latency
// T = max(T_tp, T_tf), the gap closure the lookahead achieves, per-phase
// overlap efficiency, host wall-clock, and a bit-identity check of the
// numerical outputs (lookahead must move the schedule, never the data).
//
// Usage: ablation_lookahead [wall_reps]   (default 2)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lookahead_sweep.hpp"

int main(int argc, char** argv) {
  const int wall_reps = argc > 1 ? std::atoi(argv[1]) : 2;

  std::vector<rcs::bench::LookaheadPoint> points;
  points.push_back(rcs::bench::lu_lookahead_point(256, 64, 3, wall_reps));
  points.push_back(rcs::bench::lu_lookahead_point(384, 64, 3, wall_reps));
  points.push_back(rcs::bench::fw_lookahead_point(256, 32, 2, wall_reps));
  points.push_back(rcs::bench::fw_lookahead_point(256, 32, 4, wall_reps));

  std::printf(
      "%-3s %5s %4s %2s %12s %12s %12s %8s %8s %6s\n", "dsn", "n", "b", "p",
      "T_pred_s", "blocking_s", "lookahead_s", "speedup", "gap_cl", "biteq");
  for (const auto& pt : points) {
    std::printf("%-3s %5lld %4lld %2d %12.6f %12.6f %12.6f %7.3fx %7.1f%% %6s\n",
                pt.design.c_str(), pt.n, pt.b, pt.p, pt.predicted_latency_s,
                pt.blocking_sim_s, pt.lookahead_sim_s, pt.sim_speedup(),
                100.0 * pt.gap_closure(), pt.bit_identical ? "yes" : "NO");
    for (const auto& [ph, eff] : pt.overlap_efficiency) {
      std::printf("      overlap[%s] = %.1f%% hidden\n", ph.c_str(),
                  100.0 * eff);
    }
    std::printf("      wall: blocking %.4f s, lookahead %.4f s\n",
                pt.blocking_wall_s, pt.lookahead_wall_s);
  }

  bool all_bit_identical = true;
  for (const auto& pt : points) all_bit_identical &= pt.bit_identical;
  if (!all_bit_identical) {
    std::printf("ERROR: lookahead changed numerical results\n");
    return 1;
  }
  return 0;
}
