#pragma once
// Blocking-vs-lookahead sweep shared by bench/ablation_lookahead (the
// standalone ablation table) and bench/perf_wallclock (the "lookahead"
// section of BENCH_perf.json).
//
// For one design point it runs the functional LU or Floyd-Warshall twice —
// once with the blocking per-iteration-barrier schedule, once with the
// lookahead pipeline (irecv double-buffering + NIC fan-out, no barriers) —
// and records:
//
//   * simulated makespans of both schedules, and the paper's predicted
//     latency T = max(T_tp, T_tf) (Eq. §4.5). The "gap closure" is how much
//     of the blocking schedule's excess over T the lookahead recovers:
//     1 - (lookahead_sim - T) / (blocking_sim - T).
//   * per-phase overlap efficiency of the lookahead run (fraction of
//     transfer time hidden behind compute),
//   * best-of-reps wall-clock of both schedules on this host,
//   * whether the two schedules' numerical outputs are bit-identical
//     (they must be: lookahead moves the schedule, never the data).

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <string>

#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/predict.hpp"
#include "core/system.hpp"
#include "graph/generate.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"

namespace rcs::bench {

struct LookaheadPoint {
  std::string design;  // "LU" or "FW"
  long long n = 0;
  long long b = 0;
  int p = 0;
  double predicted_latency_s = 0.0;  // T = max(T_tp, T_tf)
  double blocking_sim_s = 0.0;
  double lookahead_sim_s = 0.0;
  double blocking_wall_s = 0.0;
  double lookahead_wall_s = 0.0;
  std::map<std::string, double> overlap_efficiency;  // lookahead run, by phase
  bool bit_identical = false;

  double sim_speedup() const {
    return lookahead_sim_s > 0.0 ? blocking_sim_s / lookahead_sim_s : 0.0;
  }
  /// Fraction of the blocking schedule's gap over the predicted latency
  /// that the lookahead closes (0 when the blocking run already meets T).
  double gap_closure() const {
    const double gap_blocking = blocking_sim_s - predicted_latency_s;
    if (gap_blocking <= 0.0) return 0.0;
    const double gap_lookahead = lookahead_sim_s - predicted_latency_s;
    return 1.0 - gap_lookahead / gap_blocking;
  }
};

namespace detail {

inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best (minimum) single-rep wall time over `reps` runs.
inline double best_wall(const std::function<void()>& body, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    body();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

}  // namespace detail

inline LookaheadPoint lu_lookahead_point(long long n, long long b, int p,
                                         int wall_reps = 2) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  const linalg::Matrix a =
      linalg::diagonally_dominant(static_cast<std::size_t>(n), 42);

  LookaheadPoint pt;
  pt.design = "LU";
  pt.n = n;
  pt.b = b;
  pt.p = p;
  pt.predicted_latency_s = core::predict_lu(sys, cfg).latency_seconds();

  cfg.lookahead = false;
  core::LuFunctionalResult blocking = core::lu_functional(sys, cfg, a);
  pt.blocking_sim_s = blocking.run.seconds;
  pt.blocking_wall_s = detail::best_wall(
      [&] { core::lu_functional(sys, cfg, a); }, wall_reps);

  cfg.lookahead = true;
  core::LuFunctionalResult ahead = core::lu_functional(sys, cfg, a);
  pt.lookahead_sim_s = ahead.run.seconds;
  pt.lookahead_wall_s = detail::best_wall(
      [&] { core::lu_functional(sys, cfg, a); }, wall_reps);

  for (const auto& [ph, os] : ahead.overlap) {
    pt.overlap_efficiency[ph] = os.efficiency();
  }
  pt.bit_identical =
      linalg::bit_equal(blocking.factored.view(), ahead.factored.view());
  return pt;
}

inline LookaheadPoint fw_lookahead_point(long long n, long long b, int p,
                                         int wall_reps = 2) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  const linalg::Matrix d0 =
      graph::random_digraph(static_cast<std::size_t>(n), 7, 0.4);

  LookaheadPoint pt;
  pt.design = "FW";
  pt.n = n;
  pt.b = b;
  pt.p = p;
  pt.predicted_latency_s = core::predict_fw(sys, cfg).latency_seconds();

  cfg.lookahead = false;
  core::FwFunctionalResult blocking = core::fw_functional(sys, cfg, d0);
  pt.blocking_sim_s = blocking.run.seconds;
  pt.blocking_wall_s = detail::best_wall(
      [&] { core::fw_functional(sys, cfg, d0); }, wall_reps);

  cfg.lookahead = true;
  core::FwFunctionalResult ahead = core::fw_functional(sys, cfg, d0);
  pt.lookahead_sim_s = ahead.run.seconds;
  pt.lookahead_wall_s = detail::best_wall(
      [&] { core::fw_functional(sys, cfg, d0); }, wall_reps);

  for (const auto& [ph, os] : ahead.overlap) {
    pt.overlap_efficiency[ph] = os.efficiency();
  }
  pt.bit_identical =
      linalg::bit_equal(blocking.distances.view(), ahead.distances.view());
  return pt;
}

}  // namespace rcs::bench
