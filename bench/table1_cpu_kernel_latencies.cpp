// Table 1 reproduction: routines and latencies of the LU panel operations on
// one processor at b = 3000 (opLU = dgetrf, opL = opU = dtrsm).
//
// Two layers are reported:
//   * the calibrated GPP model at the paper's scale (what every other bench
//     uses), and
//   * a host-measured validation at a smaller block size, demonstrating the
//     functional kernels behind the model (absolute rates differ from a
//     2.2 GHz Opteron running ACML; the opLU : opL ratio is the shape).

#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "core/partition.hpp"
#include "core/system.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"

using namespace rcs;

namespace {

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  const long long b = 3000;
  const auto pt = core::panel_times(sys, b);

  Table model("Table 1 — Routines and latencies for LU panel operations "
              "(b = 3000, calibrated GPP model)");
  model.set_header({"Operation", "Routine", "Latency (paper)", "Latency (model)"});
  model.add_row({"opLU", "dgetrf", "4.9 s", Table::seconds(pt.t_lu)});
  model.add_row({"opL", "dtrsm", "7.1 s", Table::seconds(pt.t_opl)});
  model.add_row({"opU", "dtrsm", "7.1 s", Table::seconds(pt.t_opu)});
  model.print(std::cout);
  std::cout << "\n";

  // Host-measured validation of the functional kernels at b = 512.
  const std::size_t bv = 512;
  linalg::Matrix a = linalg::diagonally_dominant(bv, 1);
  linalg::Matrix panel = a;
  const double t_lu =
      time_once([&] { linalg::getrf_unblocked(panel.view()); });

  linalg::Matrix tri = panel;  // factored: use its triangles
  linalg::Matrix rhs = linalg::random_matrix(bv, bv, 2);
  const double t_opu =
      time_once([&] { linalg::trsm_left_lower_unit(tri.view(), rhs.view()); });
  linalg::Matrix rhs2 = linalg::random_matrix(bv, bv, 3);
  const double t_opl =
      time_once([&] { linalg::trsm_right_upper(tri.view(), rhs2.view()); });

  Table host("Host-measured functional kernels (b = 512, this machine)");
  host.set_header({"Operation", "Kernel", "Latency", "Rate"});
  const double b3 = double(bv) * bv * bv;
  host.add_row({"opLU", "getrf_unblocked", Table::seconds(t_lu),
                Table::num((2.0 / 3.0) * b3 / t_lu / 1e9, 3) + " GFLOPS"});
  host.add_row({"opL", "trsm_right_upper", Table::seconds(t_opl),
                Table::num(b3 / t_opl / 1e9, 3) + " GFLOPS"});
  host.add_row({"opU", "trsm_left_lower_unit", Table::seconds(t_opu),
                Table::num(b3 / t_opu / 1e9, 3) + " GFLOPS"});
  host.print(std::cout);

  std::cout << "\nShape check: opL/opU slower than opLU (paper: 7.1 vs 4.9), "
            << "model ratio = " << Table::num(pt.t_opl / pt.t_lu, 3)
            << ", host ratio = " << Table::num(t_opl / t_lu, 3) << "\n";
  return 0;
}
