// Extension bench: first-order design-model estimate for hybrid QR.
//
// Blocked Householder QR's trailing update (larfb) is two tall-skinny
// matrix multiplies — the opMM shape the hybrid machinery accelerates —
// while the panel factorization is a serial chain like LU's opLU/opL.
// This bench applies the Section 4 model to QR's task mix: panel work at
// the panel-kernel rate on one node, trailing multiplies at each design's
// distributed block-multiply rate. (The functional QR substrate lives in
// linalg/qr.*; a fully distributed QR design is future work, so unlike
// LU/FW/MM/Cholesky these numbers come from the model alone.)

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "core/lu_analytic.hpp"
#include "core/partition.hpp"
#include "linalg/qr.hpp"

using namespace rcs;
using core::DesignMode;

namespace {

/// Distributed block-multiply rate (flops/s across the p-1 workers).
double trailing_rate(const core::SystemParams& sys, long long b,
                     DesignMode mode) {
  const auto part = core::solve_mm_partition(sys, b);
  const double b3 = double(b) * double(b) * double(b);
  const double p1 = double(sys.p - 1);
  const long long k = sys.mm_fpga.pe_count;
  const double stripes = double(b) / double(k);
  switch (mode) {
    case DesignMode::Hybrid:
      return 2.0 * b3 / (stripes * part.stripe_period_seconds());
    case DesignMode::ProcessorOnly:
      return p1 * sys.gpp.sustained(node::CpuKernel::Dgemm);
    case DesignMode::FpgaOnly: {
      const auto fpga = core::mm_partition_at(sys, b, b);
      return 2.0 * b3 /
             (stripes * std::max(fpga.t_f_stripe, fpga.t_mem_stripe));
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  const long long n = 30000, b = 3000;
  const long long nb = n / b;

  std::cout << "Extension — hybrid QR, first-order model estimate "
            << "(n = 30000, b = 3000, p = 6)\n\n";

  Table t("Design variants");
  t.set_header({"design", "est. latency (s)", "est. GFLOPS", "trailing share"});
  for (auto mode : {DesignMode::Hybrid, DesignMode::ProcessorOnly,
                    DesignMode::FpgaOnly}) {
    const double rate = trailing_rate(sys, b, mode);
    const double panel_rate = sys.gpp.sustained(node::CpuKernel::Dgetrf);
    double total = 0.0;
    double trailing_time = 0.0;
    for (long long t0 = 0; t0 < nb; ++t0) {
      const double rows = double(n - t0 * b);
      const double cols_right = double(n - (t0 + 1) * b);
      const double panel_flops =
          2.0 * rows * double(b) * double(b) -
          (2.0 / 3.0) * double(b) * double(b) * double(b);
      const double trail_flops = 4.0 * rows * double(b) * cols_right;
      const double tp = panel_flops / panel_rate;
      const double tt = trail_flops / rate;
      total += tp + tt;  // panel is on the critical path (no lookahead)
      trailing_time += tt;
    }
    const double gflops =
        double(linalg::geqrf_flops(n, n)) / total / 1e9;
    t.add_row({core::to_string(mode), Table::num(total, 5),
               Table::num(gflops, 4),
               Table::num(100.0 * trailing_time / total, 3) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nShape: like LU and Cholesky, the hybrid sits between the "
               "baselines' sum and the\nprocessor baseline; the panel chain "
               "bounds all three (Amdahl).\n";
  return 0;
}
