// Wall-clock perf harness for the intra-node parallel compute runtime.
//
// Unlike the fig*/table1 benches (which report *simulated* seconds), this
// harness measures real elapsed time of the functional substrates — the
// packed parallel gemm vs the legacy tiled loop vs the naive reference, the
// MatMulArray FPGA emulation, and mid-size lu_functional / fw_functional
// runs — across thread counts, and writes BENCH_perf.json so future PRs
// have a machine-readable perf trajectory to regress against.
//
// Usage: perf_wallclock [output.json]   (default BENCH_perf.json in cwd)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/drift.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/system.hpp"
#include "fault_sweep.hpp"
#include "fpga/matmul_array.hpp"
#include "graph/generate.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "lookahead_sweep.hpp"
#include "obs/provenance.hpp"

namespace la = rcs::linalg;
namespace core = rcs::core;
namespace common = rcs::common;

namespace {

struct Row {
  std::string kernel;
  long long size = 0;
  int threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
};

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Run `body` repeatedly until >= min_seconds of wall time or max_reps, and
/// return the best (minimum) single-rep time — the standard way to strip
/// scheduler noise from a wall-clock measurement.
double time_best(const std::function<void()>& body, double min_seconds = 0.4,
                 int max_reps = 5) {
  double best = 1e300;
  double spent = 0.0;
  for (int r = 0; r < max_reps && (r < 2 || spent < min_seconds); ++r) {
    const double t0 = now_seconds();
    body();
    const double dt = now_seconds() - t0;
    best = std::min(best, dt);
    spent += dt;
  }
  return best;
}

Row bench_gemm(const std::string& kernel, long long n, int threads,
               void (*fn)(rcs::Span2D<const double>, rcs::Span2D<const double>,
                          rcs::Span2D<double>)) {
  common::ThreadPool::set_global_threads(threads);
  const std::size_t un = static_cast<std::size_t>(n);
  const la::Matrix a = la::random_matrix(un, un, 1);
  const la::Matrix b = la::random_matrix(un, un, 2);
  la::Matrix c(un, un);
  Row row{kernel, n, threads, 0.0, 0.0};
  row.seconds = time_best([&] { fn(a.view(), b.view(), c.view()); });
  row.gflops =
      static_cast<double>(la::gemm_flops(n, n, n)) / row.seconds / 1e9;
  return row;
}

Row bench_matmul_array(long long n, int threads) {
  common::ThreadPool::set_global_threads(threads);
  const rcs::fpga::MatMulArray array(core::SystemParams::cray_xd1().mm_fpga);
  const std::size_t un = static_cast<std::size_t>(n);
  const la::Matrix c = la::random_matrix(un, un, 3);
  const la::Matrix d = la::random_matrix(un, un, 4);
  la::Matrix e(un, un);
  Row row{"matmul_array_emulation", n, threads, 0.0, 0.0};
  row.seconds = time_best(
      [&] { array.multiply_accumulate(c.view(), d.view(), e.view()); });
  row.gflops =
      static_cast<double>(la::gemm_flops(n, n, n)) / row.seconds / 1e9;
  return row;
}

Row bench_lu_functional(long long n, long long b, int threads) {
  common::ThreadPool::set_global_threads(threads);
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 3;
  const la::Matrix a =
      la::diagonally_dominant(static_cast<std::size_t>(n), 42);
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  Row row{"lu_functional", n, threads, 0.0, 0.0};
  row.seconds =
      time_best([&] { core::lu_functional(sys, cfg, a); }, 0.0, 2);
  row.gflops =
      static_cast<double>(la::getrf_flops(n)) / row.seconds / 1e9;
  return row;
}

Row bench_fw_functional(long long n, long long b, int threads) {
  common::ThreadPool::set_global_threads(threads);
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 2;
  const la::Matrix d0 =
      rcs::graph::random_digraph(static_cast<std::size_t>(n), 7, 0.4);
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  Row row{"fw_functional", n, threads, 0.0, 0.0};
  row.seconds =
      time_best([&] { core::fw_functional(sys, cfg, d0); }, 0.0, 2);
  row.gflops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
               static_cast<double>(n) / row.seconds / 1e9;
  return row;
}

void write_json(const std::vector<Row>& rows,
                const core::DriftReport& lu_drift,
                const core::DriftReport& fw_drift,
                const core::DriftReport& lu_drift_la,
                const core::DriftReport& fw_drift_la,
                const std::vector<rcs::bench::LookaheadPoint>& lookahead,
                const std::vector<rcs::bench::FaultPoint>& faults,
                const std::string& path) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"provenance\": ";
  rcs::obs::Provenance::collect().write_json(out, 2);
  out << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"kernel\": \"%s\", \"size\": %lld, \"threads\": %d, "
                  "\"seconds\": %.6f, \"gflops\": %.3f}%s\n",
                  r.kernel.c_str(), r.size, r.threads, r.seconds, r.gflops,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"lookahead\": [\n";
  for (std::size_t i = 0; i < lookahead.size(); ++i) {
    const rcs::bench::LookaheadPoint& pt = lookahead[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"design\": \"%s\", \"n\": %lld, \"b\": %lld, \"p\": %d, "
        "\"predicted_latency_s\": %.9g, \"blocking_sim_s\": %.9g, "
        "\"lookahead_sim_s\": %.9g, \"sim_speedup\": %.4f, "
        "\"gap_closure\": %.4f, \"blocking_wall_s\": %.6f, "
        "\"lookahead_wall_s\": %.6f, \"bit_identical\": %s, "
        "\"overlap_efficiency\": {",
        pt.design.c_str(), pt.n, pt.b, pt.p, pt.predicted_latency_s,
        pt.blocking_sim_s, pt.lookahead_sim_s, pt.sim_speedup(),
        pt.gap_closure(), pt.blocking_wall_s, pt.lookahead_wall_s,
        pt.bit_identical ? "true" : "false");
    out << buf;
    bool first = true;
    for (const auto& [ph, eff] : pt.overlap_efficiency) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f", first ? "" : ", ",
                    ph.c_str(), eff);
      out << buf;
      first = false;
    }
    out << "}}" << (i + 1 < lookahead.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"faults\": [\n";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const rcs::bench::FaultPoint& pt = faults[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"design\": \"%s\", \"n\": %lld, \"b\": %lld, \"p\": %d, "
        "\"seed\": %llu, \"clean_sim_s\": %.9g, \"faulty_sim_s\": %.9g, "
        "\"recovery_overhead_pct\": %.4f, \"bit_identical\": %s, "
        "\"bitflips_injected\": %llu, \"slowdown_hits\": %llu, "
        "\"link_hits\": %llu, \"checks\": %llu, \"detected\": %llu, "
        "\"corrected_elements\": %llu, \"reissued_blocks\": %llu, "
        "\"straggler_timeouts\": %llu, \"straggler_reissues\": %llu, "
        "\"recovery_cpu_s\": %.9g, \"mttr_p50_s\": %.9g, "
        "\"mttr_p99_s\": %.9g}%s\n",
        pt.design.c_str(), pt.n, pt.b, pt.p,
        static_cast<unsigned long long>(pt.seed), pt.clean_sim_s,
        pt.faulty_sim_s, 100.0 * pt.overhead(),
        pt.bit_identical ? "true" : "false",
        static_cast<unsigned long long>(pt.stats.bitflips_injected),
        static_cast<unsigned long long>(pt.stats.slowdown_hits),
        static_cast<unsigned long long>(pt.stats.link_hits),
        static_cast<unsigned long long>(pt.stats.checks),
        static_cast<unsigned long long>(pt.stats.detected),
        static_cast<unsigned long long>(pt.stats.corrected_elements),
        static_cast<unsigned long long>(pt.stats.reissued_blocks),
        static_cast<unsigned long long>(pt.stats.straggler_timeouts),
        static_cast<unsigned long long>(pt.stats.straggler_reissues),
        pt.stats.recovery_cpu_s, pt.stats.mttr_percentile(0.5),
        pt.stats.mttr_percentile(0.99), i + 1 < faults.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"drift\": {\n    \"lu\": ";
  lu_drift.write_json(out, 4);
  out << ",\n    \"lu_lookahead\": ";
  lu_drift_la.write_json(out, 4);
  out << ",\n    \"fw\": ";
  fw_drift.write_json(out, 4);
  out << ",\n    \"fw_lookahead\": ";
  fw_drift_la.write_json(out, 4);
  out << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_perf.json";
  const int hw = common::ThreadPool::global().threads();
  const int max_threads = std::max(hw, 4);  // exercise >= 4 even on small CI
  std::vector<Row> rows;

  std::cout << "perf_wallclock: hardware threads " << hw << ", sweeping {1, "
            << max_threads << "}\n";

  // --- gemm trio. Naive only at the small size (it is the O(n^3)-slow
  // reference); tiled vs packed at the headline b = 1024.
  rows.push_back(bench_gemm("gemm_naive", 256, 1, la::gemm_naive));
  for (long long n : {256LL, 1024LL}) {
    rows.push_back(bench_gemm("gemm_tiled", n, 1, la::gemm_tiled));
    rows.push_back(bench_gemm("gemm_packed", n, 1, la::gemm));
    if (max_threads > 1) {
      rows.push_back(bench_gemm("gemm_packed", n, max_threads, la::gemm));
    }
  }

  // --- FPGA-emulation kernel.
  for (int t : {1, max_threads}) {
    rows.push_back(bench_matmul_array(256, t));
    if (max_threads == 1) break;
  }

  // --- Mid-size functional runs (simulated results identical across thread
  // counts; only the wall-clock below should move).
  for (int t : {1, max_threads}) {
    rows.push_back(bench_lu_functional(256, 64, t));
    rows.push_back(bench_fw_functional(256, 32, t));
    if (max_threads == 1) break;
  }

  common::ThreadPool::set_global_threads(hw);

  for (const Row& r : rows) {
    std::printf("%-24s n=%-5lld threads=%-2d %8.4f s  %7.2f GFLOP/s\n",
                r.kernel.c_str(), r.size, r.threads, r.seconds, r.gflops);
  }

  // Headline ratio the acceptance bar tracks: packed+parallel vs tiled at
  // b = 1024.
  double tiled_1024 = 0.0, packed_1024_best = 1e300;
  for (const Row& r : rows) {
    if (r.size != 1024) continue;
    if (r.kernel == "gemm_tiled") tiled_1024 = r.seconds;
    if (r.kernel == "gemm_packed") {
      packed_1024_best = std::min(packed_1024_best, r.seconds);
    }
  }
  if (tiled_1024 > 0.0 && packed_1024_best < 1e300) {
    std::printf("speedup gemm_packed vs gemm_tiled @1024: %.2fx\n",
                tiled_1024 / packed_1024_best);
  }

  // --- Drift reports: the paper's model vs the simulated schedule vs this
  // machine's wall clock, per phase, at the same mid-size design points.
  // Both schedules are reported: the blocking run keeps the historic
  // baseline comparable, the lookahead run shows the overlap efficiency and
  // the shrunken simulated-vs-predicted gap.
  core::DriftReport lu_drift, fw_drift, lu_drift_la, fw_drift_la;
  {
    core::SystemParams sys = core::SystemParams::cray_xd1();
    sys.p = 3;
    core::LuConfig cfg;
    cfg.n = 256;
    cfg.b = 64;
    cfg.mode = core::DesignMode::Hybrid;
    const la::Matrix a = la::diagonally_dominant(256, 42);
    lu_drift = core::lu_drift_report(sys, cfg, a);
    cfg.lookahead = true;
    lu_drift_la = core::lu_drift_report(sys, cfg, a);
  }
  {
    core::SystemParams sys = core::SystemParams::cray_xd1();
    sys.p = 2;
    core::FwConfig cfg;
    cfg.n = 256;
    cfg.b = 32;
    cfg.mode = core::DesignMode::Hybrid;
    const la::Matrix d0 = rcs::graph::random_digraph(256, 7, 0.4);
    fw_drift = core::fw_drift_report(sys, cfg, d0);
    cfg.lookahead = true;
    fw_drift_la = core::fw_drift_report(sys, cfg, d0);
  }
  lu_drift.print(std::cout);
  lu_drift_la.print(std::cout);
  fw_drift.print(std::cout);
  fw_drift_la.print(std::cout);

  // --- Blocking-vs-lookahead ablation at the same design points (see
  // bench/ablation_lookahead for the wider standalone sweep).
  std::vector<rcs::bench::LookaheadPoint> lookahead;
  lookahead.push_back(rcs::bench::lu_lookahead_point(256, 64, 3));
  lookahead.push_back(rcs::bench::fw_lookahead_point(256, 32, 2));
  for (const auto& pt : lookahead) {
    std::printf(
        "lookahead %-2s n=%-4lld p=%d: sim %.6f -> %.6f s (%.3fx, gap closure "
        "%.1f%%), bit_identical=%s\n",
        pt.design.c_str(), pt.n, pt.p, pt.blocking_sim_s, pt.lookahead_sim_s,
        pt.sim_speedup(), 100.0 * pt.gap_closure(),
        pt.bit_identical ? "yes" : "NO");
  }

  // --- Fault-tolerance sweep at the same design points: recovery overhead
  // and MTTR under one seeded plan each (see bench/fault_sweep for the
  // multi-seed standalone table).
  std::vector<rcs::bench::FaultPoint> faults;
  faults.push_back(rcs::bench::lu_fault_point(256, 64, 3, 1));
  faults.push_back(rcs::bench::fw_fault_point(256, 32, 2, 1));
  for (const auto& pt : faults) {
    std::printf(
        "faults %-2s n=%-4lld p=%d seed=%llu: sim %.6f -> %.6f s "
        "(overhead %.2f%%), injected=%llu detected=%llu, bit_identical=%s\n",
        pt.design.c_str(), pt.n, pt.p,
        static_cast<unsigned long long>(pt.seed), pt.clean_sim_s,
        pt.faulty_sim_s, 100.0 * pt.overhead(),
        static_cast<unsigned long long>(pt.stats.bitflips_injected),
        static_cast<unsigned long long>(pt.stats.detected),
        pt.bit_identical ? "yes" : "NO");
  }

  write_json(rows, lu_drift, fw_drift, lu_drift_la, fw_drift_la, lookahead,
             faults, path);
  std::cout << "wrote " << path << "\n";
  return 0;
}
