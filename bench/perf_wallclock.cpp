// Wall-clock perf harness for the intra-node parallel compute runtime.
//
// Unlike the fig*/table1 benches (which report *simulated* seconds), this
// harness measures real elapsed time of the functional substrates — the
// packed parallel gemm vs the legacy tiled loop vs the naive reference, the
// streamed MatMulArray FPGA emulation, and mid-size lu_functional /
// fw_functional runs — across a thread sweep, and writes BENCH_perf.json so
// future PRs have a machine-readable perf trajectory to regress against.
//
// Every kernel row also carries the pool telemetry deltas for its timing
// run (queue-wait vs busy milliseconds, jobs, chunks, per rep), so a scaling
// regression is attributable: busy flat + queue-wait exploding means chunk
// dispatch overhead; busy growing means the kernel itself got slower.
//
// Usage: perf_wallclock [--smoke] [output.json]
//   (default BENCH_perf.json in cwd; --smoke runs small sizes, skips the
//    drift/lookahead/fault sections, and cross-checks every timed kernel
//    against its naive reference bit-for-bit across thread counts and every
//    supported SIMD path — non-zero exit on any mismatch.)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/drift.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/system.hpp"
#include "fault_sweep.hpp"
#include "fpga/matmul_array.hpp"
#include "graph/generate.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "lookahead_sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "scaling_sweep.hpp"

namespace la = rcs::linalg;
namespace simd = rcs::linalg::simd;
namespace core = rcs::core;
namespace common = rcs::common;
namespace obs = rcs::obs;

namespace {

struct Row {
  std::string kernel;
  long long size = 0;
  int threads = 1;
  // More worker threads than hardware cores: timings carry scheduler noise
  // and the perf gate skips these rows.
  bool oversubscribed = false;
  double seconds = 0.0;
  double gflops = 0.0;
  // Pool telemetry per rep of the timing loop (deltas across the whole
  // loop divided by rep count).
  int reps = 0;
  double queue_wait_ms = 0.0;
  double busy_ms = 0.0;
  double jobs = 0.0;
  double chunks = 0.0;
};

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct PoolStamp {
  double jobs, chunks, busy_ns, queue_wait_ns;
  static PoolStamp take() {
    obs::Registry& reg = obs::Registry::global();
    return PoolStamp{
        static_cast<double>(reg.counter("pool.jobs").value()),
        static_cast<double>(reg.counter("pool.chunks").value()),
        static_cast<double>(reg.counter("pool.busy_ns").value()),
        reg.histogram("pool.queue_wait_ns").sum()};
  }
};

/// Run `body` repeatedly until >= min_seconds of wall time or max_reps, and
/// keep the best (minimum) single-rep time — the standard way to strip
/// scheduler noise from a wall-clock measurement. Pool telemetry deltas
/// across all reps are averaged into `row`.
void time_best(Row& row, const std::function<void()>& body,
               double min_seconds = 0.4, int max_reps = 5) {
  double best = 1e300;
  double spent = 0.0;
  int reps = 0;
  const PoolStamp before = PoolStamp::take();
  for (int r = 0; r < max_reps && (r < 2 || spent < min_seconds); ++r) {
    const double t0 = now_seconds();
    body();
    const double dt = now_seconds() - t0;
    best = std::min(best, dt);
    spent += dt;
    ++reps;
  }
  const PoolStamp after = PoolStamp::take();
  row.seconds = best;
  row.reps = reps;
  row.jobs = (after.jobs - before.jobs) / reps;
  row.chunks = (after.chunks - before.chunks) / reps;
  row.busy_ms = (after.busy_ns - before.busy_ns) / reps / 1e6;
  row.queue_wait_ms =
      (after.queue_wait_ns - before.queue_wait_ns) / reps / 1e6;
}

Row bench_gemm(const std::string& kernel, long long n, int threads,
               void (*fn)(rcs::Span2D<const double>, rcs::Span2D<const double>,
                          rcs::Span2D<double>)) {
  common::ThreadPool::set_global_threads(threads);
  const std::size_t un = static_cast<std::size_t>(n);
  const la::Matrix a = la::random_matrix(un, un, 1);
  const la::Matrix b = la::random_matrix(un, un, 2);
  la::Matrix c(un, un);
  Row row;
  row.kernel = kernel;
  row.size = n;
  row.threads = threads;
  time_best(row, [&] { fn(a.view(), b.view(), c.view()); });
  row.gflops =
      static_cast<double>(la::gemm_flops(n, n, n)) / row.seconds / 1e9;
  return row;
}

Row bench_matmul_array(long long n, int threads) {
  common::ThreadPool::set_global_threads(threads);
  const rcs::fpga::MatMulArray array(core::SystemParams::cray_xd1().mm_fpga);
  const std::size_t un = static_cast<std::size_t>(n);
  const la::Matrix c = la::random_matrix(un, un, 3);
  const la::Matrix d = la::random_matrix(un, un, 4);
  la::Matrix e(un, un);
  Row row;
  row.kernel = "matmul_array_emulation";
  row.size = n;
  row.threads = threads;
  time_best(row,
            [&] { array.multiply_accumulate(c.view(), d.view(), e.view()); });
  row.gflops =
      static_cast<double>(la::gemm_flops(n, n, n)) / row.seconds / 1e9;
  return row;
}

Row bench_trsm(long long n, long long m, int threads) {
  common::ThreadPool::set_global_threads(threads);
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t um = static_cast<std::size_t>(m);
  la::Matrix l = la::random_matrix(un, un, 5);
  for (std::size_t i = 0; i < un; ++i) l(i, i) = 1.0;
  const la::Matrix b0 = la::random_matrix(un, um, 6);
  la::Matrix b(un, um);
  Row row;
  row.kernel = "trsm_left_lower_unit";
  row.size = n;
  row.threads = threads;
  time_best(row, [&] {
    b = b0;
    la::trsm_left_lower_unit(l.view(), b.view());
  });
  row.gflops = static_cast<double>(la::trsm_flops(n, m)) / row.seconds / 1e9;
  return row;
}

Row bench_lu_functional(long long n, long long b, int threads) {
  common::ThreadPool::set_global_threads(threads);
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 3;
  const la::Matrix a =
      la::diagonally_dominant(static_cast<std::size_t>(n), 42);
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  Row row;
  row.kernel = "lu_functional";
  row.size = n;
  row.threads = threads;
  time_best(row, [&] { core::lu_functional(sys, cfg, a); }, 0.0, 2);
  row.gflops =
      static_cast<double>(la::getrf_flops(n)) / row.seconds / 1e9;
  return row;
}

Row bench_fw_functional(long long n, long long b, int threads) {
  common::ThreadPool::set_global_threads(threads);
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 2;
  const la::Matrix d0 =
      rcs::graph::random_digraph(static_cast<std::size_t>(n), 7, 0.4);
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  Row row;
  row.kernel = "fw_functional";
  row.size = n;
  row.threads = threads;
  time_best(row, [&] { core::fw_functional(sys, cfg, d0); }, 0.0, 2);
  row.gflops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
               static_cast<double>(n) / row.seconds / 1e9;
  return row;
}

/// --smoke bit-identity guards: the production kernels against their naive
/// references, across thread counts and every supported SIMD path. Returns
/// the number of mismatches (0 = pass).
int run_identity_guards() {
  const simd::Level saved = simd::active_level();
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "IDENTITY FAIL: %s\n", what.c_str());
      ++failures;
    }
  };
  const std::size_t n = 96;  // above the small-product engine threshold
  const la::Matrix a = la::random_matrix(n, n, 11);
  const la::Matrix b = la::random_matrix(n, n, 12);
  la::Matrix gemm_ref(n, n);
  la::gemm_naive(a.view(), b.view(), gemm_ref.view());
  la::Matrix nt_ref(n, n);  // naive A * B^T, ascending-l
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t l = 0; l < n; ++l) acc += a(i, l) * b(j, l);
      nt_ref(i, j) = acc;
    }
  }
  la::Matrix lmat = la::random_matrix(n, n, 13);
  for (std::size_t i = 0; i < n; ++i) lmat(i, i) = 1.0;
  const la::Matrix rhs = la::random_matrix(n, n, 14);
  common::ThreadPool::set_global_threads(1);
  simd::set_level(simd::Level::Scalar);
  la::Matrix trsm_ref = rhs;
  la::trsm_left_lower_unit(lmat.view(), trsm_ref.view());

  const rcs::fpga::MatMulArray array(core::SystemParams::cray_xd1().mm_fpga);
  for (int lv = 0; lv <= static_cast<int>(simd::max_supported_level());
       ++lv) {
    const simd::Level level = static_cast<simd::Level>(lv);
    simd::set_level(level);
    for (int threads : {1, 2}) {
      common::ThreadPool::set_global_threads(threads);
      const std::string tag = std::string(" [simd=") + simd::level_name(level) +
                              " threads=" + std::to_string(threads) + "]";
      la::Matrix c(n, n);
      la::gemm(a.view(), b.view(), c.view());
      check(la::bit_equal(c.view(), gemm_ref.view()), "gemm" + tag);
      la::Matrix e(n, n);
      array.multiply_accumulate(a.view(), b.view(), e.view());
      check(la::bit_equal(e.view(), gemm_ref.view()),
            "matmul_array nn" + tag);
      la::Matrix ent(n, n);
      array.multiply_accumulate_nt(a.view(), b.view(), ent.view());
      check(la::bit_equal(ent.view(), nt_ref.view()), "matmul_array nt" + tag);
      la::Matrix x = rhs;
      la::trsm_left_lower_unit(lmat.view(), x.view());
      check(la::bit_equal(x.view(), trsm_ref.view()), "trsm" + tag);
    }
  }
  simd::set_level(saved);
  return failures;
}

/// One "scaling" entry. Simulated points carry a compact analysis summary
/// (headline scalars + the top critical-path segments) rather than the full
/// per-rank attribution — a p=1024 block would add a thousand rows to a
/// committed artifact; the standalone bench/scaling_sweep prints (and
/// exit-codes on) the full invariant check.
void write_scaling_point(std::ostream& out, const rcs::bench::ScalingPoint& pt,
                         bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"design\": \"%s\", \"p\": %d, \"n\": %lld, \"b\": %lld, "
      "\"b_f\": %lld, \"l\": %d, \"l1\": %lld, \"l2\": %lld, "
      "\"predicted_s\": %.9g, \"simulated\": %s",
      pt.design.c_str(), pt.p, pt.n, pt.b, pt.b_f, pt.l, pt.l1, pt.l2,
      pt.predicted_s, pt.simulated ? "true" : "false");
  out << buf;
  if (pt.simulated) {
    std::snprintf(
        buf, sizeof(buf),
        ", \"simulated_s\": %.9g, \"sim_over_predicted\": %.4f, "
        "\"bytes_on_network\": %llu, \"trace_events\": %llu, "
        "\"sim_wall_s\": %.4f, \"analysis_summary\": {\"makespan_s\": %.9g, "
        "\"critical_path_s\": %.9g, \"cp_idle_s\": %.9g, "
        "\"resource_seconds_s\": %.9g, \"mean_utilization\": %.6f, "
        "\"imbalance_max_over_mean\": %.6f, \"jain_fairness\": %.6f, "
        "\"invariants_hold\": %s, \"top_segments\": [",
        pt.simulated_s, pt.sim_over_predicted(),
        static_cast<unsigned long long>(pt.bytes_on_network),
        static_cast<unsigned long long>(pt.trace_events), pt.wall_s,
        pt.analysis.makespan_s, pt.analysis.critical_path_s,
        pt.analysis.cp_idle_s, pt.analysis.resource_seconds_s,
        pt.analysis.mean_utilization, pt.analysis.imbalance_max_over_mean,
        pt.analysis.jain_fairness,
        pt.analysis.invariants_hold() ? "true" : "false");
    out << buf;
    const auto top = pt.analysis.top_segments(3);
    for (std::size_t i = 0; i < top.size(); ++i) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"kind\": \"%s\", \"rank\": %d, \"label\": \"%s\", "
                    "\"duration_s\": %.9g}",
                    i > 0 ? ", " : "", top[i].kind.c_str(), top[i].rank,
                    rcs::obs::json_escape(top[i].label).c_str(),
                    top[i].duration());
      out << buf;
    }
    out << "]}";
  }
  out << "}" << (last ? "" : ",") << '\n';
}

void write_json(const std::vector<Row>& rows,
                const core::DriftReport& lu_drift,
                const core::DriftReport& fw_drift,
                const core::DriftReport& lu_drift_la,
                const core::DriftReport& fw_drift_la,
                const std::vector<rcs::bench::LookaheadPoint>& lookahead,
                const std::vector<rcs::bench::FaultPoint>& faults,
                const std::vector<rcs::bench::ScalingPoint>& scaling,
                bool smoke, const std::string& path) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"provenance\": ";
  rcs::obs::Provenance::collect().write_json(out, 2);
  out << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"kernel\": \"%s\", \"size\": %lld, \"threads\": %d, "
                  "\"oversubscribed\": %s, "
                  "\"seconds\": %.6f, \"gflops\": %.3f, \"reps\": %d, "
                  "\"queue_wait_ms\": %.4f, \"busy_ms\": %.4f, "
                  "\"jobs\": %.1f, \"chunks\": %.1f}%s\n",
                  r.kernel.c_str(), r.size, r.threads,
                  r.oversubscribed ? "true" : "false", r.seconds, r.gflops,
                  r.reps, r.queue_wait_ms, r.busy_ms, r.jobs, r.chunks,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    write_scaling_point(out, scaling[i], i + 1 == scaling.size());
  }
  out << "  ],\n";
  if (smoke) {
    out << "  \"lookahead\": [],\n  \"faults\": []\n}\n";
    return;
  }
  out << "  \"lookahead\": [\n";
  for (std::size_t i = 0; i < lookahead.size(); ++i) {
    const rcs::bench::LookaheadPoint& pt = lookahead[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"design\": \"%s\", \"n\": %lld, \"b\": %lld, \"p\": %d, "
        "\"predicted_latency_s\": %.9g, \"blocking_sim_s\": %.9g, "
        "\"lookahead_sim_s\": %.9g, \"sim_speedup\": %.4f, "
        "\"gap_closure\": %.4f, \"blocking_wall_s\": %.6f, "
        "\"lookahead_wall_s\": %.6f, \"bit_identical\": %s, "
        "\"overlap_efficiency\": {",
        pt.design.c_str(), pt.n, pt.b, pt.p, pt.predicted_latency_s,
        pt.blocking_sim_s, pt.lookahead_sim_s, pt.sim_speedup(),
        pt.gap_closure(), pt.blocking_wall_s, pt.lookahead_wall_s,
        pt.bit_identical ? "true" : "false");
    out << buf;
    bool first = true;
    for (const auto& [ph, eff] : pt.overlap_efficiency) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f", first ? "" : ", ",
                    ph.c_str(), eff);
      out << buf;
      first = false;
    }
    out << "}}" << (i + 1 < lookahead.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"faults\": [\n";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const rcs::bench::FaultPoint& pt = faults[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"design\": \"%s\", \"n\": %lld, \"b\": %lld, \"p\": %d, "
        "\"seed\": %llu, \"clean_sim_s\": %.9g, \"faulty_sim_s\": %.9g, "
        "\"recovery_overhead_pct\": %.4f, \"bit_identical\": %s, "
        "\"bitflips_injected\": %llu, \"slowdown_hits\": %llu, "
        "\"link_hits\": %llu, \"checks\": %llu, \"detected\": %llu, "
        "\"corrected_elements\": %llu, \"reissued_blocks\": %llu, "
        "\"straggler_timeouts\": %llu, \"straggler_reissues\": %llu, "
        "\"recovery_cpu_s\": %.9g, \"mttr_p50_s\": %.9g, "
        "\"mttr_p99_s\": %.9g}%s\n",
        pt.design.c_str(), pt.n, pt.b, pt.p,
        static_cast<unsigned long long>(pt.seed), pt.clean_sim_s,
        pt.faulty_sim_s, 100.0 * pt.overhead(),
        pt.bit_identical ? "true" : "false",
        static_cast<unsigned long long>(pt.stats.bitflips_injected),
        static_cast<unsigned long long>(pt.stats.slowdown_hits),
        static_cast<unsigned long long>(pt.stats.link_hits),
        static_cast<unsigned long long>(pt.stats.checks),
        static_cast<unsigned long long>(pt.stats.detected),
        static_cast<unsigned long long>(pt.stats.corrected_elements),
        static_cast<unsigned long long>(pt.stats.reissued_blocks),
        static_cast<unsigned long long>(pt.stats.straggler_timeouts),
        static_cast<unsigned long long>(pt.stats.straggler_reissues),
        pt.stats.recovery_cpu_s, pt.stats.mttr_percentile(0.5),
        pt.stats.mttr_percentile(0.99), i + 1 < faults.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"drift\": {\n    \"lu\": ";
  lu_drift.write_json(out, 4);
  out << ",\n    \"lu_lookahead\": ";
  lu_drift_la.write_json(out, 4);
  out << ",\n    \"fw\": ";
  fw_drift.write_json(out, 4);
  out << ",\n    \"fw_lookahead\": ";
  fw_drift_la.write_json(out, 4);
  out << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      path = arg;
    }
  }
  // Pool/kernel telemetry feeds the queue-wait/busy columns.
  obs::set_metrics_enabled(true);

  const rcs::obs::Provenance prov = rcs::obs::Provenance::collect();
  const int hw = common::ThreadPool::global().threads();
  std::cout << "perf_wallclock: hardware threads " << hw << ", simd dispatch "
            << simd::level_name(simd::active_level()) << " (max "
            << simd::level_name(simd::max_supported_level()) << ")\n";
  if (prov.git_dirty) {
    std::cerr << "WARNING: built from a dirty working tree (git_sha "
              << prov.git_sha
              << " + uncommitted changes) — do not check in this "
                 "BENCH_perf.json as a trajectory point.\n";
  }

  int guard_failures = 0;
  if (smoke) {
    guard_failures = run_identity_guards();
    std::cout << "identity guards: "
              << (guard_failures == 0 ? "PASS" : "FAIL") << "\n";
  }

  std::vector<Row> rows;
  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<long long> gemm_sizes =
      smoke ? std::vector<long long>{96} : std::vector<long long>{256, 1024};

  // --- gemm trio. Naive only at the small size (it is the O(n^3)-slow
  // reference); tiled single-thread as the fixed baseline; packed across
  // the full thread sweep.
  rows.push_back(bench_gemm("gemm_naive", smoke ? 96 : 256, 1,
                            la::gemm_naive));
  for (long long n : gemm_sizes) {
    rows.push_back(bench_gemm("gemm_tiled", n, 1, la::gemm_tiled));
    for (int t : sweep) {
      rows.push_back(bench_gemm("gemm_packed", n, t, la::gemm));
    }
  }

  // --- Streamed FPGA-emulation kernel, same sweep.
  for (long long n : gemm_sizes) {
    for (int t : sweep) {
      rows.push_back(bench_matmul_array(n, t));
    }
  }

  // --- Parallel triangular solve (the LU opU substrate).
  for (int t : sweep) {
    rows.push_back(bench_trsm(smoke ? 96 : 512, smoke ? 96 : 512, t));
  }

  if (!smoke) {
    // --- Mid-size functional runs (simulated results identical across
    // thread counts; only the wall-clock below should move).
    for (int t : {1, std::max(hw, 4)}) {
      rows.push_back(bench_lu_functional(256, 64, t));
      rows.push_back(bench_fw_functional(256, 32, t));
    }
  }

  common::ThreadPool::set_global_threads(hw);

  if (prov.hw_cores > 0) {
    for (Row& r : rows) {
      r.oversubscribed = r.threads > static_cast<int>(prov.hw_cores);
    }
  }

  std::printf("%-24s %5s %3s %9s %9s %11s %9s %7s %7s\n", "kernel", "n",
              "thr", "seconds", "GFLOP/s", "queue_ms/r", "busy_ms/r", "jobs/r",
              "chnk/r");
  for (const Row& r : rows) {
    std::printf(
        "%-24s %5lld %3d %9.4f %9.2f %11.3f %9.2f %7.1f %7.1f\n",
        r.kernel.c_str(), r.size, r.threads, r.seconds, r.gflops,
        r.queue_wait_ms, r.busy_ms, r.jobs, r.chunks);
  }

  // Headline ratios the acceptance bars track.
  auto best_seconds = [&](const std::string& kernel, long long size,
                          int threads) {
    double best = 0.0;
    for (const Row& r : rows) {
      if (r.kernel == kernel && r.size == size &&
          (threads == 0 || r.threads == threads)) {
        if (best == 0.0 || r.seconds < best) best = r.seconds;
      }
    }
    return best;
  };
  const long long headline = smoke ? 96 : 1024;
  const double tiled = best_seconds("gemm_tiled", headline, 1);
  const double packed1 = best_seconds("gemm_packed", headline, 1);
  const double packed_any = best_seconds("gemm_packed", headline, 0);
  if (tiled > 0.0 && packed_any > 0.0) {
    std::printf("speedup gemm_packed vs gemm_tiled @%lld: %.2fx\n", headline,
                tiled / packed_any);
  }
  if (packed1 > 0.0 && packed_any > 0.0) {
    std::printf("scaling gemm_packed best-threads vs 1-thread @%lld: %.2fx\n",
                headline, packed1 / packed_any);
  }

  // --- Large-p scaling sweep (the fiber rank scheduler's design point):
  // predicted vs simulated makespan across world sizes, LU simulated
  // everywhere (p=1024 runs as fibers in this process), FW simulated
  // through p=64 (its functional plane grows ~p^3). Smoke trims to the two
  // small worlds so the CI lane stays fast.
  const std::vector<int> scaling_ps =
      smoke ? std::vector<int>{4, 16} : std::vector<int>{4, 16, 64, 256, 1024};
  const std::vector<rcs::bench::ScalingPoint> scaling = rcs::bench::
      scaling_sweep(scaling_ps, 128, 16, 8, smoke ? 16 : 1024, smoke ? 16 : 64);
  int scaling_failures = 0;
  for (const auto& pt : scaling) {
    if (!pt.simulated) continue;
    if (!pt.analysis.invariants_hold()) ++scaling_failures;
    std::printf(
        "scaling %-2s p=%-5d n=%-5lld sim %.6g s vs predicted %.6g s "
        "(%.1fx), cp %.6g s, invariants %s\n",
        pt.design.c_str(), pt.p, pt.n, pt.simulated_s, pt.predicted_s,
        pt.sim_over_predicted(), pt.analysis.critical_path_s,
        pt.analysis.invariants_hold() ? "ok" : "VIOLATED");
  }

  core::DriftReport lu_drift, fw_drift, lu_drift_la, fw_drift_la;
  std::vector<rcs::bench::LookaheadPoint> lookahead;
  std::vector<rcs::bench::FaultPoint> faults;
  if (!smoke) {
    // --- Drift reports: the paper's model vs the simulated schedule vs
    // this machine's wall clock, per phase, at the same mid-size design
    // points. Both schedules are reported: the blocking run keeps the
    // historic baseline comparable, the lookahead run shows the overlap
    // efficiency and the shrunken simulated-vs-predicted gap.
    {
      core::SystemParams sys = core::SystemParams::cray_xd1();
      sys.p = 3;
      core::LuConfig cfg;
      cfg.n = 256;
      cfg.b = 64;
      cfg.mode = core::DesignMode::Hybrid;
      const la::Matrix a = la::diagonally_dominant(256, 42);
      lu_drift = core::lu_drift_report(sys, cfg, a);
      cfg.lookahead = true;
      lu_drift_la = core::lu_drift_report(sys, cfg, a);
    }
    {
      core::SystemParams sys = core::SystemParams::cray_xd1();
      sys.p = 2;
      core::FwConfig cfg;
      cfg.n = 256;
      cfg.b = 32;
      cfg.mode = core::DesignMode::Hybrid;
      const la::Matrix d0 = rcs::graph::random_digraph(256, 7, 0.4);
      fw_drift = core::fw_drift_report(sys, cfg, d0);
      cfg.lookahead = true;
      fw_drift_la = core::fw_drift_report(sys, cfg, d0);
    }
    lu_drift.print(std::cout);
    lu_drift_la.print(std::cout);
    fw_drift.print(std::cout);
    fw_drift_la.print(std::cout);

    // --- Blocking-vs-lookahead ablation at the same design points (see
    // bench/ablation_lookahead for the wider standalone sweep).
    lookahead.push_back(rcs::bench::lu_lookahead_point(256, 64, 3));
    lookahead.push_back(rcs::bench::fw_lookahead_point(256, 32, 2));
    for (const auto& pt : lookahead) {
      std::printf(
          "lookahead %-2s n=%-4lld p=%d: sim %.6f -> %.6f s (%.3fx, gap "
          "closure %.1f%%), bit_identical=%s\n",
          pt.design.c_str(), pt.n, pt.p, pt.blocking_sim_s,
          pt.lookahead_sim_s, pt.sim_speedup(), 100.0 * pt.gap_closure(),
          pt.bit_identical ? "yes" : "NO");
    }

    // --- Fault-tolerance sweep at the same design points: recovery
    // overhead and MTTR under one seeded plan each (see bench/fault_sweep
    // for the multi-seed standalone table).
    faults.push_back(rcs::bench::lu_fault_point(256, 64, 3, 1));
    faults.push_back(rcs::bench::fw_fault_point(256, 32, 2, 1));
    for (const auto& pt : faults) {
      std::printf(
          "faults %-2s n=%-4lld p=%d seed=%llu: sim %.6f -> %.6f s "
          "(overhead %.2f%%), injected=%llu detected=%llu, "
          "bit_identical=%s\n",
          pt.design.c_str(), pt.n, pt.p,
          static_cast<unsigned long long>(pt.seed), pt.clean_sim_s,
          pt.faulty_sim_s, 100.0 * pt.overhead(),
          static_cast<unsigned long long>(pt.stats.bitflips_injected),
          static_cast<unsigned long long>(pt.stats.detected),
          pt.bit_identical ? "yes" : "NO");
    }
  }

  write_json(rows, lu_drift, fw_drift, lu_drift_la, fw_drift_la, lookahead,
             faults, scaling, smoke, path);
  std::cout << "wrote " << path << "\n";
  return guard_failures == 0 && scaling_failures == 0 ? 0 : 1;
}
