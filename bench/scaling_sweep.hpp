#pragma once
// Large-p scaling sweep shared by bench/scaling_sweep (the standalone
// table) and bench/perf_wallclock (the "scaling" section of
// BENCH_perf.json).
//
// For each world size p it reports the paper's predicted latency
// T = max(T_tp, T_tf) under the Eq. 4/5 (LU) or Eq. 6 (FW) partition rules,
// and — where the functional plane is tractable — the simulated makespan of
// a real run over MiniMPI, its critical-path analysis, and the wall-clock
// cost of simulating it. The large-p points are what the fiber rank
// scheduler exists for: a p=1024 world is 1024 rank contexts multiplexed
// over a handful of OS threads in one process (World::set_max_workers auto
// mode), where thread-per-rank would need 1024 stacks' worth of kernel
// threads.
//
// Design-point shapes:
//   * LU keeps (n, b) fixed and grows p: each opMM's b columns are split
//     across the p-1 workers (zero-width shares are legal), so the message
//     count grows ~linearly in p and every p in the sweep is simulable.
//   * FW requires b*p | n, so the sweep grows n = b*p with p: the block
//     count n/b equals p and the total block-task work grows ~p^3.
//     Simulation is tractable through p=64 on a workstation; beyond that
//     only the Eq. 6 prediction is reported (simulated = false).

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/partition.hpp"
#include "core/predict.hpp"
#include "core/system.hpp"
#include "graph/generate.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"
#include "obs/critpath.hpp"
#include "sim/trace.hpp"

namespace rcs::bench {

struct ScalingPoint {
  std::string design;  // "LU" or "FW"
  int p = 0;
  long long n = 0;
  long long b = 0;
  // Partition rule in effect: Eq. 4/5 for LU, Eq. 6 for FW.
  long long b_f = -1;           // LU: FPGA rows of the C stripe
  int l = 0;                    // LU: opMM interleave depth
  long long l1 = -1, l2 = -1;   // FW: CPU/FPGA block tasks per phase
  double predicted_s = 0.0;     // T = max(T_tp, T_tf)
  bool simulated = false;       // functional run performed?
  double simulated_s = 0.0;     // makespan of the functional run
  std::uint64_t bytes_on_network = 0;
  std::uint64_t trace_events = 0;  // recorded spans + comm events
  double wall_s = 0.0;             // host seconds to simulate the run
  obs::cp::Analysis analysis;      // valid when simulated

  /// Simulated-over-predicted ratio (1.0 = the run meets the model's bound;
  /// 0 when not simulated).
  double sim_over_predicted() const {
    return simulated && predicted_s > 0.0 ? simulated_s / predicted_s : 0.0;
  }
};

namespace detail {

inline double wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace detail

/// One LU scaling point at world size p (fixed n, b). `simulate` runs the
/// functional plane (always feasible for LU — message count is ~linear in
/// p); false records the prediction only.
inline ScalingPoint lu_scaling_point(int p, long long n, long long b,
                                     bool simulate) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;

  ScalingPoint pt;
  pt.design = "LU";
  pt.p = p;
  pt.n = n;
  pt.b = b;
  pt.predicted_s = core::predict_lu(sys, cfg).latency_seconds();
  const core::MmPartition part = core::solve_mm_partition(sys, b);
  pt.b_f = part.b_f;
  pt.l = core::solve_lu_interleave(sys, b, part, cfg.fanout).l;
  if (!simulate) return pt;

  const linalg::Matrix a =
      linalg::diagonally_dominant(static_cast<std::size_t>(n), 42);
  sim::TraceRecorder rec(true);
  const double t0 = detail::wall_now();
  const core::LuFunctionalResult res =
      core::lu_functional(sys, cfg, a, false, &rec);
  pt.wall_s = detail::wall_now() - t0;
  pt.simulated = true;
  pt.simulated_s = res.run.seconds;
  pt.bytes_on_network = res.run.bytes_on_network;
  pt.trace_events = rec.event_count();
  pt.b_f = res.partition.b_f;  // the split the run actually used
  pt.l = res.l;
  pt.analysis = core::analyze_run(rec, p, res.run.seconds);
  return pt;
}

/// One FW scaling point at world size p (fixed b, n = b*p so the block
/// count equals p). `simulate` runs the functional plane — tractable up to
/// roughly p=64 (block-task work grows ~p^3); false records the Eq. 6
/// prediction only.
inline ScalingPoint fw_scaling_point(int p, long long b, bool simulate) {
  const long long n = b * p;
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;

  ScalingPoint pt;
  pt.design = "FW";
  pt.p = p;
  pt.n = n;
  pt.b = b;
  pt.predicted_s = core::predict_fw(sys, cfg).latency_seconds();
  const core::FwPartition part = core::solve_fw_partition(sys, n, b);
  pt.l1 = part.l1;
  pt.l2 = part.l2;
  if (!simulate) return pt;

  const linalg::Matrix d0 =
      graph::random_digraph(static_cast<std::size_t>(n), 7, 0.4);
  sim::TraceRecorder rec(true);
  const double t0 = detail::wall_now();
  const core::FwFunctionalResult res =
      core::fw_functional(sys, cfg, d0, false, &rec);
  pt.wall_s = detail::wall_now() - t0;
  pt.simulated = true;
  pt.simulated_s = res.run.seconds;
  pt.bytes_on_network = res.run.bytes_on_network;
  pt.trace_events = rec.event_count();
  pt.l1 = res.partition.l1;
  pt.l2 = res.partition.l2;
  pt.analysis = core::analyze_run(rec, p, res.run.seconds);
  return pt;
}

/// The full sweep: LU at every p (simulated through lu_sim_max_p), FW at
/// every p (simulated through fw_sim_max_p, predicted beyond).
inline std::vector<ScalingPoint> scaling_sweep(const std::vector<int>& ps,
                                               long long lu_n, long long lu_b,
                                               long long fw_b,
                                               int lu_sim_max_p,
                                               int fw_sim_max_p) {
  std::vector<ScalingPoint> points;
  for (int p : ps) {
    points.push_back(lu_scaling_point(p, lu_n, lu_b, p <= lu_sim_max_p));
  }
  for (int p : ps) {
    points.push_back(fw_scaling_point(p, fw_b, p <= fw_sim_max_p));
  }
  return points;
}

}  // namespace rcs::bench
