// Perf regression gate over BENCH_perf.json artifacts.
//
// Two jobs, two severities:
//
//  1. Structural invariants (always fatal, exit 2): every critical-path
//     "analysis" block in either file must satisfy
//         critical_path <= makespan <= resource-seconds
//     and each rank's attribution buckets (cpu + fpga + visible transfer +
//     fault recovery + idle) must sum to the makespan. A violation means the
//     analyzer or the trace it consumed is broken — no tolerance applies.
//
//  2. Per-kernel wall-clock diffs (exit 1, or warnings under --warn-only):
//     kernel rows are matched on (kernel, size, threads) and the fresh
//     seconds must stay within a per-kernel relative tolerance of the
//     baseline. Rows marked "oversubscribed" (threads > hardware cores at
//     collection time) are skipped on either side — their timings carry
//     scheduler noise, not signal.
//
// Usage:
//   perf_gate <fresh.json> <baseline.json> [--warn-only]
//   perf_gate --self-test <baseline.json>
//
// --self-test loads the baseline, requires the real file to pass both
// checks, then perturbs the parsed tree in memory (critical path pushed past
// the makespan; one kernel row slowed 10x) and requires both checks to fail
// on the perturbed copy — a gate that cannot fail is no gate.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// --- Minimal JSON tree + recursive-descent parser --------------------------
// (No third-party dependencies are available; the subset emitted by
// perf_wallclock — objects, arrays, strings, numbers, bools, null — is all
// this needs to read.)

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  JsonValue* get_mut(const std::string& key) {
    for (auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num_or(double fallback) const {
    return kind == Kind::Number ? number : fallback;
  }
};

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit Parser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(i);
    }
    return false;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_keyword(JsonValue& out) {
    auto lit = [&](const char* word) {
      const std::size_t n = std::string(word).size();
      if (s.compare(i, n, word) != 0) return false;
      i += n;
      return true;
    };
    if (lit("true")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      return true;
    }
    if (lit("false")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      return true;
    }
    if (lit("null")) {
      out.kind = JsonValue::Kind::Null;
      return true;
    }
    return fail("unknown keyword");
  }

  bool parse_number(JsonValue& out) {
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail("malformed number");
    i += static_cast<std::size_t>(end - begin);
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i >= s.size()) return fail("dangling escape");
      const char e = s[i++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (i + 4 > s.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // The artifacts only escape control characters; anything beyond
          // Latin-1 is preserved as '?' rather than implementing UTF-16.
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    if (!expect('[')) return false;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return expect(']');
    }
  }

  bool parse_object(JsonValue& out) {
    if (!expect('{')) return false;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!expect(':')) return false;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return expect('}');
    }
  }
};

bool parse_file(const std::string& path, JsonValue& out, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Parser p(text);
  if (!p.parse_value(out)) {
    err = path + ": " + p.error;
    return false;
  }
  return true;
}

// --- Structural invariants --------------------------------------------------

/// An object is an analysis block iff it carries the analyzer's signature
/// keys; blocks are found wherever they are nested ("drift.lu.analysis",
/// future surfaces) so the gate needs no schema knowledge of its parents.
void collect_analysis_blocks(JsonValue& v, const std::string& path,
                             std::vector<std::pair<std::string, JsonValue*>>&
                                 out) {
  if (v.kind == JsonValue::Kind::Object) {
    if (v.get("makespan_s") != nullptr && v.get("critical_path_s") != nullptr &&
        v.get("resource_seconds_s") != nullptr &&
        v.get("per_rank") != nullptr) {
      out.emplace_back(path, &v);
    }
    for (auto& [k, child] : v.obj) {
      collect_analysis_blocks(child, path + "." + k, out);
    }
  } else if (v.kind == JsonValue::Kind::Array) {
    for (std::size_t i = 0; i < v.arr.size(); ++i) {
      collect_analysis_blocks(v.arr[i], path + "[" + std::to_string(i) + "]",
                              out);
    }
  }
}

/// Check cp <= makespan <= resource-seconds and the per-rank bucket
/// partition on one block; appends human-readable violations.
void check_block(const std::string& where, const JsonValue& block,
                 std::vector<std::string>& violations) {
  const double mk = block.get("makespan_s")->num_or(-1.0);
  const double cp = block.get("critical_path_s")->num_or(-1.0);
  const double rs = block.get("resource_seconds_s")->num_or(-1.0);
  char buf[256];
  if (mk < 0.0 || cp < 0.0 || rs < 0.0) {
    violations.push_back(where + ": non-numeric makespan/cp/resource fields");
    return;
  }
  if (mk == 0.0) return;  // empty run: nothing to check
  const double tol = mk * 1e-9 + 1e-12;
  if (cp > mk + tol) {
    std::snprintf(buf, sizeof(buf),
                  "%s: critical path %.9g s exceeds makespan %.9g s",
                  where.c_str(), cp, mk);
    violations.push_back(buf);
  }
  if (mk > rs + tol) {
    std::snprintf(buf, sizeof(buf),
                  "%s: makespan %.9g s exceeds resource-seconds %.9g s",
                  where.c_str(), mk, rs);
    violations.push_back(buf);
  }
  const JsonValue* ranks = block.get("per_rank");
  if (ranks->kind != JsonValue::Kind::Array) {
    violations.push_back(where + ": per_rank is not an array");
    return;
  }
  for (const JsonValue& row : ranks->arr) {
    double sum = 0.0;
    for (const char* key : {"cpu_s", "fpga_s", "transfer_visible_s",
                            "fault_recovery_s", "wait_idle_s"}) {
      const JsonValue* f = row.get(key);
      if (f == nullptr) {
        violations.push_back(where + ": per_rank row missing " + key);
        return;
      }
      sum += f->num_or(0.0);
    }
    const double rel = std::abs(sum - mk) / mk;
    if (rel > 1e-6) {
      const JsonValue* r = row.get("rank");
      std::snprintf(buf, sizeof(buf),
                    "%s: rank %d buckets sum to %.9g s, makespan %.9g s "
                    "(rel err %.3g)",
                    where.c_str(),
                    r != nullptr ? static_cast<int>(r->num_or(-1)) : -1, sum,
                    mk, rel);
      violations.push_back(buf);
    }
  }
  // The analyzer's own verdict must agree with the recomputation.
  if (const JsonValue* inv = block.get("invariants")) {
    for (const char* key :
         {"cp_le_makespan", "makespan_le_resource_seconds",
          "buckets_sum_to_makespan"}) {
      const JsonValue* f = inv->get(key);
      if (f != nullptr && f->kind == JsonValue::Kind::Bool && !f->boolean) {
        violations.push_back(where + ": analyzer flagged " + key + " false");
      }
    }
  }
}

std::vector<std::string> structural_violations(JsonValue& root,
                                               const std::string& name) {
  std::vector<std::pair<std::string, JsonValue*>> blocks;
  collect_analysis_blocks(root, name, blocks);
  std::vector<std::string> violations;
  for (const auto& [where, block] : blocks) {
    check_block(where, *block, violations);
  }
  return violations;
}

// --- Per-kernel tolerance diff ----------------------------------------------

struct KernelRow {
  std::string kernel;
  long long size = 0;
  int threads = 0;
  bool oversubscribed = false;
  double seconds = 0.0;

  std::string key() const {
    return kernel + "|" + std::to_string(size) + "|" +
           std::to_string(threads);
  }
};

std::vector<KernelRow> kernel_rows(const JsonValue& root) {
  std::vector<KernelRow> rows;
  const JsonValue* kernels = root.get("kernels");
  if (kernels == nullptr || kernels->kind != JsonValue::Kind::Array) {
    return rows;
  }
  for (const JsonValue& row : kernels->arr) {
    KernelRow r;
    if (const JsonValue* v = row.get("kernel")) r.kernel = v->str;
    if (const JsonValue* v = row.get("size")) {
      r.size = static_cast<long long>(v->num_or(0));
    }
    if (const JsonValue* v = row.get("threads")) {
      r.threads = static_cast<int>(v->num_or(0));
    }
    if (const JsonValue* v = row.get("oversubscribed")) {
      r.oversubscribed = v->kind == JsonValue::Kind::Bool && v->boolean;
    }
    if (const JsonValue* v = row.get("seconds")) r.seconds = v->num_or(0.0);
    rows.push_back(std::move(r));
  }
  return rows;
}

/// Allowed relative slowdown vs baseline before a row counts as a
/// regression. Wall clock on shared CI runners is noisy, so the defaults are
/// deliberately loose; the simulated surfaces (drift, analysis) carry the
/// precise signal and are covered by the structural checks instead.
double tolerance_for(const std::string& kernel) {
  static const std::map<std::string, double> overrides = {
      {"gemm_naive", 0.60},      // O(n^3) reference, most cache-sensitive
      {"lu_functional", 0.75},   // whole-run harness: threads + comm
      {"fw_functional", 0.75},
  };
  const auto it = overrides.find(kernel);
  return it != overrides.end() ? it->second : 0.50;
}

std::vector<std::string> kernel_regressions(const JsonValue& fresh,
                                            const JsonValue& baseline,
                                            int* compared) {
  std::map<std::string, KernelRow> base;
  for (KernelRow& r : kernel_rows(baseline)) {
    base.emplace(r.key(), std::move(r));
  }
  std::vector<std::string> regressions;
  char buf[256];
  for (const KernelRow& r : kernel_rows(fresh)) {
    const auto it = base.find(r.key());
    if (it == base.end()) continue;  // new or re-sized row: no baseline
    if (r.oversubscribed || it->second.oversubscribed) continue;
    if (it->second.seconds <= 0.0) continue;
    if (compared != nullptr) ++*compared;
    const double tol = tolerance_for(r.kernel);
    const double ratio = r.seconds / it->second.seconds;
    if (ratio > 1.0 + tol) {
      std::snprintf(buf, sizeof(buf),
                    "%s n=%lld threads=%d: %.6f s vs baseline %.6f s "
                    "(%.2fx, tolerance %.0f%%)",
                    r.kernel.c_str(), r.size, r.threads, r.seconds,
                    it->second.seconds, ratio, 100.0 * tol);
      regressions.push_back(buf);
    }
  }
  return regressions;
}

void print_list(const char* head, const std::vector<std::string>& lines) {
  if (lines.empty()) return;
  std::fprintf(stderr, "%s\n", head);
  for (const std::string& l : lines) {
    std::fprintf(stderr, "  %s\n", l.c_str());
  }
}

// --- Self-test ---------------------------------------------------------------

int run_self_test(const std::string& path) {
  JsonValue root;
  std::string err;
  if (!parse_file(path, root, err)) {
    std::fprintf(stderr, "self-test: %s\n", err.c_str());
    return 1;
  }

  // The real artifact must be clean.
  const auto clean = structural_violations(root, "baseline");
  if (!clean.empty()) {
    print_list("self-test: committed baseline violates invariants:", clean);
    return 1;
  }
  int compared = 0;
  const auto self_diff = kernel_regressions(root, root, &compared);
  if (!self_diff.empty() || compared == 0) {
    std::fprintf(stderr,
                 "self-test: baseline-vs-itself diff compared %d rows, "
                 "%zu regressions (want >0 rows, 0 regressions)\n",
                 compared, self_diff.size());
    return 1;
  }

  // Perturbation 1: push the first analysis block's critical path past its
  // makespan — the structural check must catch it.
  std::vector<std::pair<std::string, JsonValue*>> blocks;
  collect_analysis_blocks(root, "baseline", blocks);
  if (blocks.empty()) {
    std::fprintf(stderr,
                 "self-test: baseline has no analysis blocks to perturb "
                 "(run perf_wallclock without --smoke first)\n");
    return 1;
  }
  JsonValue broken = root;
  {
    std::vector<std::pair<std::string, JsonValue*>> b2;
    collect_analysis_blocks(broken, "perturbed", b2);
    JsonValue* cp = b2.front().second->get_mut("critical_path_s");
    const JsonValue* mk = b2.front().second->get("makespan_s");
    cp->number = mk->num_or(1.0) * 2.0 + 1.0;
  }
  if (structural_violations(broken, "perturbed").empty()) {
    std::fprintf(stderr,
                 "self-test: cp > makespan perturbation not detected\n");
    return 1;
  }

  // Perturbation 2: slow one comparable kernel row 10x — the diff must flag
  // it as a regression.
  JsonValue slowed = root;
  bool slowed_one = false;
  if (JsonValue* kernels = slowed.get_mut("kernels")) {
    for (JsonValue& row : kernels->arr) {
      const JsonValue* over = row.get("oversubscribed");
      if (over != nullptr && over->kind == JsonValue::Kind::Bool &&
          over->boolean) {
        continue;
      }
      if (JsonValue* secs = row.get_mut("seconds")) {
        secs->number *= 10.0;
        slowed_one = true;
        break;
      }
    }
  }
  if (!slowed_one ||
      kernel_regressions(slowed, root, nullptr).empty()) {
    std::fprintf(stderr,
                 "self-test: 10x kernel slowdown not flagged as regression\n");
    return 1;
  }

  std::printf(
      "perf_gate self-test PASS: baseline clean (%zu analysis blocks, %d "
      "kernel rows compared); both perturbations detected\n",
      blocks.size(), compared);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool warn_only = false;
  bool self_test = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (self_test) {
    if (paths.size() != 1) {
      std::fprintf(stderr, "usage: perf_gate --self-test <baseline.json>\n");
      return 1;
    }
    return run_self_test(paths[0]);
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_gate <fresh.json> <baseline.json> "
                 "[--warn-only]\n       perf_gate --self-test "
                 "<baseline.json>\n");
    return 1;
  }

  JsonValue fresh, baseline;
  std::string err;
  if (!parse_file(paths[0], fresh, err) ||
      !parse_file(paths[1], baseline, err)) {
    std::fprintf(stderr, "perf_gate: %s\n", err.c_str());
    return 2;  // an unreadable artifact is a structural failure
  }

  std::vector<std::string> violations =
      structural_violations(fresh, "fresh");
  for (std::string& v : structural_violations(baseline, "baseline")) {
    violations.push_back(std::move(v));
  }
  print_list("perf_gate: structural invariant violations:", violations);

  int compared = 0;
  const std::vector<std::string> regressions =
      kernel_regressions(fresh, baseline, &compared);
  print_list(warn_only
                 ? "perf_gate: kernel regressions (warn-only):"
                 : "perf_gate: kernel regressions:",
             regressions);

  std::printf(
      "perf_gate: %d kernel rows compared, %zu regressions%s, %zu "
      "structural violations\n",
      compared, regressions.size(), warn_only ? " (warn-only)" : "",
      violations.size());

  if (!violations.empty()) return 2;
  if (!regressions.empty() && !warn_only) return 1;
  return 0;
}
