// Microbenchmarks of the simulation runtime: event-engine throughput,
// timeline reservations, MiniMPI message latency/throughput, and the
// analytic schedule simulators themselves (which every figure bench calls).

#include <benchmark/benchmark.h>

#include "core/fw_analytic.hpp"
#include "core/lu_analytic.hpp"
#include "net/minimpi.hpp"
#include "sim/engine.hpp"

using namespace rcs;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < events; ++i) {
      eng.schedule(static_cast<double>((i * 7919) % events), [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_TimelineReserve(benchmark::State& state) {
  sim::Timeline tl;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tl.reserve(t, 1.0));
    t += 0.5;
  }
}
BENCHMARK(BM_TimelineReserve);

void BM_MiniMpiPingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    net::NetworkParams np;
    net::World world(2, np);
    const int rounds = 50;
    world.run([&](net::Comm& comm) {
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send_bytes(1, i, buf.data(), buf.size());
          comm.recv(1, i);
        } else {
          comm.recv(0, i);
          comm.send_bytes(0, i, buf.data(), buf.size());
        }
      }
    });
    benchmark::DoNotOptimize(world.makespan());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MiniMpiPingPong)->Arg(8)->Arg(65536);

void BM_LuAnalyticFullRun(benchmark::State& state) {
  const auto sys = core::SystemParams::cray_xd1();
  core::LuConfig cfg;
  cfg.n = 30000;
  cfg.b = 3000;
  cfg.mode = core::DesignMode::Hybrid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lu_analytic(sys, cfg).run.seconds);
  }
}
BENCHMARK(BM_LuAnalyticFullRun);

void BM_FwAnalyticFullRun(benchmark::State& state) {
  const auto sys = core::SystemParams::cray_xd1();
  core::FwConfig cfg;
  cfg.n = 92160;
  cfg.b = 256;
  cfg.mode = core::DesignMode::Hybrid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fw_analytic(sys, cfg).run.seconds);
  }
}
BENCHMARK(BM_FwAnalyticFullRun);

}  // namespace
