#pragma once
// Fault-injection sweep shared by bench/fault_sweep (the standalone table)
// and bench/perf_wallclock (the BENCH_perf.json "faults" section): run a
// functional design point fault-free, then again under a seeded FaultPlan
// with tolerance on, check the outputs stayed bit-identical, and report the
// recovery overhead plus the repair-time (MTTR) distribution.

#include <cstdint>
#include <string>

#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/system.hpp"
#include "graph/generate.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"
#include "sim/faults.hpp"

namespace rcs::bench {

/// One design point's fault-free vs faulty comparison.
struct FaultPoint {
  std::string design;  // "LU" / "FW"
  long long n = 0;
  long long b = 0;
  int p = 0;
  std::uint64_t seed = 0;
  double clean_sim_s = 0.0;    // fault-free simulated makespan
  double faulty_sim_s = 0.0;   // makespan under the plan, tolerance on
  bool bit_identical = false;  // faulty outputs == fault-free outputs
  sim::FaultStats stats;

  /// Simulated-makespan overhead of the faults plus their recovery.
  double overhead() const {
    return clean_sim_s > 0.0 ? (faulty_sim_s - clean_sim_s) / clean_sim_s
                             : 0.0;
  }
};

/// The sweep's stock plan: a couple of slowdown windows and degraded links
/// over the run plus a handful of FPGA bit-flips aimed at early call
/// ordinals (so they actually land at bench scales). No crashes — the
/// sweep measures tolerated faults, and a fail-stop is not tolerable by
/// recomputation.
inline sim::FaultPlan make_bench_plan(int ranks, std::uint64_t seed,
                                      double horizon_s) {
  sim::FaultSpec spec;
  spec.ranks = ranks;
  spec.seed = seed;
  spec.horizon_s = horizon_s;
  spec.slowdown_windows = 2;
  spec.link_faults = 2;
  spec.link_extra_latency_max_s = horizon_s / 64.0;
  spec.link_jitter_max_s = horizon_s / 256.0;
  spec.bitflips = 4;
  spec.bitflip_max_call = 12;
  return sim::FaultPlan::generate(spec);
}

inline FaultPoint lu_fault_point(long long n, long long b, int p,
                                 std::uint64_t seed) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  const linalg::Matrix a =
      linalg::diagonally_dominant(static_cast<std::size_t>(n), 42);
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  const core::LuFunctionalResult clean = core::lu_functional(sys, cfg, a);
  const sim::FaultPlan plan = make_bench_plan(p, seed, clean.run.seconds);
  cfg.faults = &plan;
  cfg.fault_tolerance = true;
  // Generous deadline: only a genuinely degraded peer triggers a local
  // reissue (which is bit-identical either way).
  cfg.straggler_timeout_s = clean.run.seconds;
  const core::LuFunctionalResult faulty = core::lu_functional(sys, cfg, a);

  FaultPoint pt;
  pt.design = "LU";
  pt.n = n;
  pt.b = b;
  pt.p = p;
  pt.seed = seed;
  pt.clean_sim_s = clean.run.seconds;
  pt.faulty_sim_s = faulty.run.seconds;
  pt.bit_identical =
      linalg::bit_equal(clean.factored.view(), faulty.factored.view());
  pt.stats = faulty.faults;
  return pt;
}

inline FaultPoint fw_fault_point(long long n, long long b, int p,
                                 std::uint64_t seed) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  const linalg::Matrix d0 =
      graph::random_digraph(static_cast<std::size_t>(n), 7, 0.4);
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = core::DesignMode::Hybrid;
  const core::FwFunctionalResult clean = core::fw_functional(sys, cfg, d0);
  const sim::FaultPlan plan = make_bench_plan(p, seed, clean.run.seconds);
  cfg.faults = &plan;
  cfg.fault_tolerance = true;
  const core::FwFunctionalResult faulty = core::fw_functional(sys, cfg, d0);

  FaultPoint pt;
  pt.design = "FW";
  pt.n = n;
  pt.b = b;
  pt.p = p;
  pt.seed = seed;
  pt.clean_sim_s = clean.run.seconds;
  pt.faulty_sim_s = faulty.run.seconds;
  pt.bit_identical =
      linalg::bit_equal(clean.distances.view(), faulty.distances.view());
  pt.stats = faulty.faults;
  return pt;
}

}  // namespace rcs::bench
