// Fault-injection sweep: recovery overhead and repair-time distribution of
// the fault-tolerant LU / Floyd-Warshall pipelines under seeded fault plans
// (slowdown windows, degraded links, FPGA bit-flips). Each point runs the
// design fault-free and under the plan with tolerance on and checks the
// outputs stayed bit-identical — the whole point of ABFT/DMR recovery.
//
// Usage: fault_sweep [seeds]   (default 3 seeds per design)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault_sweep.hpp"

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;
  std::vector<rcs::bench::FaultPoint> points;
  for (int s = 1; s <= seeds; ++s) {
    points.push_back(
        rcs::bench::lu_fault_point(256, 64, 3, static_cast<std::uint64_t>(s)));
    points.push_back(
        rcs::bench::fw_fault_point(256, 32, 2, static_cast<std::uint64_t>(s)));
  }

  std::printf(
      "%-3s %-5s %-3s %-4s %9s %9s %8s %7s %7s %7s %7s %9s %9s %s\n",
      "dsn", "n", "p", "seed", "clean_s", "faulty_s", "ovhd%", "inject",
      "detect", "corr", "reissue", "mttr_p50", "mttr_p99", "bitid");
  bool all_identical = true;
  for (const auto& pt : points) {
    std::printf(
        "%-3s %-5lld %-3d %-4llu %9.6f %9.6f %7.2f%% %7llu %7llu %7llu "
        "%7llu %9.2e %9.2e %s\n",
        pt.design.c_str(), pt.n, pt.p,
        static_cast<unsigned long long>(pt.seed), pt.clean_sim_s,
        pt.faulty_sim_s, 100.0 * pt.overhead(),
        static_cast<unsigned long long>(pt.stats.bitflips_injected),
        static_cast<unsigned long long>(pt.stats.detected),
        static_cast<unsigned long long>(pt.stats.corrected_elements),
        static_cast<unsigned long long>(pt.stats.reissued_blocks),
        pt.stats.mttr_percentile(0.5), pt.stats.mttr_percentile(0.99),
        pt.bit_identical ? "yes" : "NO");
    all_identical = all_identical && pt.bit_identical;
  }
  if (!all_identical) {
    std::printf("FAIL: some faulty runs diverged from the fault-free run\n");
    return 1;
  }
  return 0;
}
