// Microbenchmarks of the computational substrates: host gemm and trsm, the
// Floyd–Warshall block kernels, and the bit-accurate IEEE-754 cores (soft
// vs native). google-benchmark binary.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "fparith/ieee754.hpp"
#include "fpga/matmul_array.hpp"
#include "fpga/pe_cycle_sim.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/generate.hpp"
#include "graph/transitive_closure.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"
#include "linalg/simd.hpp"
#include "linalg/sparse.hpp"

using namespace rcs;

namespace {

void BM_GemmNaive(benchmark::State& state) {
  const std::size_t n = state.range(0);
  linalg::Matrix a = linalg::random_matrix(n, n, 1);
  linalg::Matrix b = linalg::random_matrix(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_naive(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);

// The legacy cache-tiled i-k-j loop (pre-parallel-runtime production gemm),
// kept as the baseline the packed microkernel is measured against.
void BM_GemmTiled(benchmark::State& state) {
  const std::size_t n = state.range(0);
  linalg::Matrix a = linalg::random_matrix(n, n, 1);
  linalg::Matrix b = linalg::random_matrix(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_tiled(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTiled)->Arg(64)->Arg(256)->Arg(1024);

// The packed register-blocked microkernel (current production gemm),
// parallelized over row tiles on the shared pool. Threads follow
// RCS_THREADS / hardware concurrency.
void BM_GemmPacked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  linalg::Matrix a = linalg::random_matrix(n, n, 1);
  linalg::Matrix b = linalg::random_matrix(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmPacked)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);

// The streamed MatMulArray FPGA emulation (NativeFp path through the packed
// engine). n = 1024 exactly fills the xc2vp50's SRAM result tile (1M words),
// the paper's headline operating point.
void BM_MatMulArrayEmulation(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const fpga::MatMulArray array(core::SystemParams::cray_xd1().mm_fpga);
  linalg::Matrix c = linalg::random_matrix(n, n, 3);
  linalg::Matrix d = linalg::random_matrix(n, n, 4);
  linalg::Matrix e(n, n);
  for (auto _ : state) {
    array.multiply_accumulate(c.view(), d.view(), e.view());
    benchmark::DoNotOptimize(e.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulArrayEmulation)->Arg(512)->Arg(1024);

// Raw microkernel A/B: one 8x8 register tile against packed micropanels,
// per dispatch level. Isolates the SIMD win from packing and pool effects;
// levels the CPU lacks are skipped.
void BM_MicroKernel(benchmark::State& state) {
  const auto level = static_cast<linalg::simd::Level>(state.range(0));
  if (!linalg::simd::level_supported(level)) {
    state.SkipWithError("SIMD level not supported on this CPU");
    return;
  }
  const linalg::simd::MicroKernelFn kern = linalg::simd::micro_kernel(level);
  constexpr std::size_t kc = 256;
  Rng rng(23);
  std::vector<double> ap(kc * linalg::simd::kMR), bp(kc * linalg::simd::kNR);
  for (auto& v : ap) v = rng.uniform(-1.0, 1.0);
  for (auto& v : bp) v = rng.uniform(-1.0, 1.0);
  double acc[linalg::simd::kMR * linalg::simd::kNR] = {0.0};
  for (auto _ : state) {
    kern(kc, ap.data(), bp.data(), acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 2 * kc *
                          linalg::simd::kMR * linalg::simd::kNR);
  state.SetLabel(linalg::simd::level_name(level));
}
BENCHMARK(BM_MicroKernel)
    ->Arg(static_cast<int>(linalg::simd::Level::Scalar))
    ->Arg(static_cast<int>(linalg::simd::Level::Avx2))
    ->Arg(static_cast<int>(linalg::simd::Level::Avx512));

void BM_GetrfBlocked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix a = linalg::diagonally_dominant(n, 3);
  for (auto _ : state) {
    linalg::Matrix f = a;
    linalg::getrf_blocked(f.view(), 32);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n / 3);
}
BENCHMARK(BM_GetrfBlocked)->Arg(128)->Arg(256);

void BM_FwBlockKernel(benchmark::State& state) {
  const std::size_t b = state.range(0);
  linalg::Matrix c = graph::random_digraph(b, 5, 0.6);
  linalg::Matrix a = graph::random_digraph(b, 6, 0.6);
  linalg::Matrix d = graph::random_digraph(b, 7, 0.6);
  for (auto _ : state) {
    graph::fw_block(c.view(), a.view(), d.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * b * b * b);
}
BENCHMARK(BM_FwBlockKernel)->Arg(32)->Arg(64)->Arg(128);

void BM_FloydWarshallReference(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix d0 = graph::random_digraph(n, 8, 0.5);
  for (auto _ : state) {
    linalg::Matrix d = d0;
    graph::floyd_warshall(d);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_FloydWarshallReference)->Arg(64)->Arg(128);

void BM_SoftFpAdd(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> xs(1024), ys(1024);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1e6, 1e6);
    ys[i] = rng.uniform(-1e6, 1e6);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fparith::add(xs[i & 1023], ys[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_SoftFpAdd);

void BM_SoftFpMul(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> xs(1024), ys(1024);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1e6, 1e6);
    ys[i] = rng.uniform(-1e6, 1e6);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fparith::mul(xs[i & 1023], ys[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_SoftFpMul);

void BM_PotrfBlocked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix a = linalg::spd_matrix(n, 4);
  for (auto _ : state) {
    linalg::Matrix f = a;
    linalg::potrf_blocked(f.view(), 32);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 3);
}
BENCHMARK(BM_PotrfBlocked)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const std::size_t n = state.range(0);
  linalg::Matrix a = linalg::random_matrix(n, n, 1);
  linalg::Matrix b = linalg::random_matrix(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_nt(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_TransitiveClosureBlocked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix d = graph::random_digraph(n, 9, 0.02);
  const graph::BitMatrix seed = graph::adjacency_from_distances(d);
  for (auto _ : state) {
    graph::BitMatrix reach = seed;
    graph::blocked_transitive_closure(reach, 64);
    benchmark::DoNotOptimize(reach.count());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 64);
}
BENCHMARK(BM_TransitiveClosureBlocked)->Arg(256)->Arg(512);

void BM_SpmvLaplacian(benchmark::State& state) {
  const std::size_t g = state.range(0);
  const auto lap = linalg::CsrMatrix::laplacian_2d(g, g);
  std::vector<double> x(lap.cols(), 1.0), y(lap.rows());
  for (auto _ : state) {
    lap.spmv(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * lap.nnz());
}
BENCHMARK(BM_SpmvLaplacian)->Arg(64)->Arg(256);

void BM_SoftFpDiv(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> xs(1024), ys(1024);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1e6, 1e6);
    ys[i] = rng.uniform(0.5, 1e6);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fparith::div(xs[i & 1023], ys[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_SoftFpDiv);

void BM_SoftFpSqrt(benchmark::State& state) {
  Rng rng(19);
  std::vector<double> xs(1024);
  for (auto& v : xs) v = rng.uniform(0.0, 1e12);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fparith::sqrt(xs[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_SoftFpSqrt);

void BM_PeCycleSim(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fpga::simulate_pe_array(8, 375, fparith::kMultiplierPipeline,
                                fparith::kAdderPipeline)
            .total_cycles);
  }
}
BENCHMARK(BM_PeCycleSim);

void BM_NativeFpAdd(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> xs(1024), ys(1024);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1e6, 1e6);
    ys[i] = rng.uniform(-1e6, 1e6);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs[i & 1023] + ys[i & 1023]);
    ++i;
  }
}
BENCHMARK(BM_NativeFpAdd);

}  // namespace
