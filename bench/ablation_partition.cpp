// Ablation bench for the design choices DESIGN.md calls out:
//   1. Eq. 4's transfer terms vs the naive computing-power-ratio split of
//      reference [22] (does modelling T_comm/T_mem matter?)
//   2. The Eq. 5 interleave vs no interleaving (l = 0).
//   3. Send fan-out conventions (paper single-destination vs CPU-serialized).
//   4. Coordination latency sensitivity (§4.4 claims it is negligible).

#include <iostream>

#include "common/table.hpp"
#include "core/fw_analytic.hpp"
#include "core/fw_functional.hpp"
#include "graph/generate.hpp"
#include "core/lu_analytic.hpp"

using namespace rcs;

int main() {
  const auto sys = core::SystemParams::cray_xd1();

  std::cout << "Ablations of the design model's choices (Cray XD1, p = 6)\n\n";

  // ---- 1. Transfer-aware partition (Eq. 4) vs naive ratio split [22].
  {
    const auto full = core::solve_mm_partition(sys, 3000, true);
    const auto naive = core::solve_mm_partition(sys, 3000, false);
    core::LuConfig cfg;
    cfg.n = 30000;
    cfg.b = 3000;
    cfg.mode = core::DesignMode::Hybrid;
    core::LuConfig cfg_naive = cfg;
    cfg_naive.b_f = naive.b_f;
    const auto rep_full = core::lu_analytic(sys, cfg);
    const auto rep_naive = core::lu_analytic(sys, cfg_naive);
    Table t("1. LU partition: Eq. 4 (with transfers) vs naive ratio [22]");
    t.set_header({"partition", "b_f", "latency (s)", "GFLOPS"});
    t.add_row({"Eq. 4", Table::num(full.b_f),
               Table::num(rep_full.run.seconds, 5),
               Table::num(rep_full.run.gflops(), 4)});
    t.add_row({"naive ratio", Table::num(naive.b_f),
               Table::num(rep_naive.run.seconds, 5),
               Table::num(rep_naive.run.gflops(), 4)});
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- 2. Eq. 5 interleaving vs none.
  {
    core::LuConfig cfg;
    cfg.n = 30000;
    cfg.b = 3000;
    cfg.mode = core::DesignMode::Hybrid;
    core::LuConfig none = cfg;
    none.l = 0;
    const auto with = core::lu_analytic(sys, cfg);
    const auto without = core::lu_analytic(sys, none);
    Table t("2. LU stripe distribution: Eq. 5 interleave vs none (l = 0)");
    t.set_header({"interleave", "l", "latency (s)", "GFLOPS"});
    t.add_row({"Eq. 5", Table::num((long long)with.interleave.l),
               Table::num(with.run.seconds, 5),
               Table::num(with.run.gflops(), 4)});
    t.add_row({"none", "0", Table::num(without.run.seconds, 5),
               Table::num(without.run.gflops(), 4)});
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- 3. Fan-out convention.
  {
    core::LuConfig cfg;
    cfg.n = 30000;
    cfg.b = 3000;
    cfg.mode = core::DesignMode::Hybrid;
    core::LuConfig paper = cfg;
    paper.fanout = core::SendFanout::PaperSingle;
    const auto serial = core::lu_analytic(sys, cfg);
    const auto single = core::lu_analytic(sys, paper);
    Table t("3. LU stripe fan-out: CPU-serialized sends vs paper's single "
            "T_comm per stripe");
    t.set_header({"fan-out", "l chosen", "latency (s)", "GFLOPS"});
    t.add_row({"serial-all (strict §4.3)",
               Table::num((long long)serial.interleave.l),
               Table::num(serial.run.seconds, 5),
               Table::num(serial.run.gflops(), 4)});
    t.add_row({"paper-single (Eq. 5)",
               Table::num((long long)single.interleave.l),
               Table::num(single.run.seconds, 5),
               Table::num(single.run.gflops(), 4)});
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- 3b. Panel lookahead (what the paper's atomic ACML routines cost).
  {
    core::LuConfig cfg;
    cfg.n = 30000;
    cfg.b = 3000;
    cfg.mode = core::DesignMode::Hybrid;
    core::LuConfig ahead = cfg;
    ahead.lookahead = true;
    const auto barriered = core::lu_analytic(sys, cfg);
    const auto look = core::lu_analytic(sys, ahead);
    Table t("3b. LU iteration pipelining: barriered (paper) vs panel "
            "lookahead");
    t.set_header({"schedule", "latency (s)", "GFLOPS"});
    t.add_row({"barriered (atomic ACML, §6.2)",
               Table::num(barriered.run.seconds, 5),
               Table::num(barriered.run.gflops(), 4)});
    t.add_row({"panel lookahead", Table::num(look.run.seconds, 5),
               Table::num(look.run.gflops(), 4)});
    t.print(std::cout);
    std::cout << "Lookahead recovers "
              << Table::num(100.0 * (look.run.gflops() /
                                         barriered.run.gflops() -
                                     1.0),
                            3)
              << "% — the headroom the paper attributes to its atomic "
                 "routines.\n\n";
  }

  // ---- 3c. FW broadcast: root-serialized (paper) vs binomial tree.
  {
    core::FwConfig cfg;
    cfg.n = 92160;
    cfg.b = 256;
    cfg.mode = core::DesignMode::Hybrid;
    core::FwConfig tree = cfg;
    tree.tree_bcast = true;
    const auto serial = core::fw_analytic(sys, cfg);
    const auto treed = core::fw_analytic(sys, tree);
    Table t("3c. FW owner broadcast: root-serialized (§4.3) vs binomial "
            "tree");
    t.set_header({"broadcast", "latency (s)", "GFLOPS"});
    t.add_row({"root-serialized (p-1 sends)", Table::num(serial.run.seconds, 5),
               Table::num(serial.run.gflops(), 4)});
    t.add_row({"binomial tree (log2 p rounds)",
               Table::num(treed.run.seconds, 5),
               Table::num(treed.run.gflops(), 4)});
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- 3d. DRAM contention (functional plane): the paper assumes the
  // FPGA's SRAM staging keeps it off the CPU's memory bus; sweep the
  // contention factor to see what sharing the bus would cost the hybrid FW.
  {
    // b = 32, L = 7 per phase: Eq. 6 gives the CPU one task per wave, so
    // its compute genuinely overlaps the FPGA's streaming.
    Table t("3d. FW hybrid under memory-bus contention (functional, n = 448, "
            "b = 32, p = 2, l1 = 1)");
    t.set_header({"contention factor", "latency (sim)", "vs none"});
    double base = 0.0;
    const auto d0 = rcs::graph::random_digraph(448, 3, 0.4);
    for (double gamma : {0.0, 0.2, 0.5, 0.8}) {
      core::SystemParams s = sys.with_nodes(2);
      s.dram_contention_factor = gamma;
      core::FwConfig cfg;
      cfg.n = 448;
      cfg.b = 32;
      cfg.mode = core::DesignMode::Hybrid;
      const auto rep = core::fw_functional(s, cfg, d0);
      if (gamma == 0.0) base = rep.run.seconds;
      t.add_row({Table::num(gamma, 2), Table::seconds(rep.run.seconds),
                 "+" + Table::num(100.0 * (rep.run.seconds / base - 1.0), 3) +
                     "%"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- 4. Coordination latency sensitivity (§4.4: "negligible").
  {
    Table t("4. FW coordination-latency sensitivity (per start/notify check)");
    t.set_header({"latency per check", "FW iteration latency (s)", "delta"});
    double base = 0.0;
    for (double lat : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
      core::SystemParams s = sys;
      s.coordination_latency_s = lat;
      core::FwConfig cfg;
      cfg.n = 18432;
      cfg.b = 256;
      cfg.mode = core::DesignMode::Hybrid;
      cfg.max_iterations = 1;
      // The analytic FW walk does not model per-check latency explicitly;
      // charge it via the per-task memory path instead: 2 checks per FPGA
      // task on the CPU clock.
      const auto part = core::solve_fw_partition(s, cfg.n, cfg.b);
      const auto rep = core::fw_analytic(s, cfg);
      const double adjusted =
          rep.run.seconds +
          2.0 * lat * static_cast<double>(part.l2) * 72.0;  // nb waves
      if (lat == 0.0) base = adjusted;
      t.add_row({Table::seconds(lat), Table::num(adjusted, 6),
                 "+" + Table::num(100.0 * (adjusted / base - 1.0), 3) + "%"});
    }
    t.print(std::cout);
    std::cout << "\nCoordination below ~10 us per check is indeed negligible "
                 "(paper §4.4). [ok]\n";
  }
  return 0;
}
