// Extension bench (reference [22], the paper's companion design): hybrid
// matrix multiplication on one XD1 node and across a chassis.
//
//  * single node: sustained GFLOPS vs b_f, showing the Eq. 1 balance between
//    the 3.9 GFLOPS Opteron and the 2.08 GFLOPS PE array;
//  * chassis: GFLOPS vs node count for a 30000^2 multiply.

#include <iostream>

#include "common/table.hpp"
#include "core/mm.hpp"

using namespace rcs;

int main() {
  std::cout << "Extension — hybrid matrix multiplication (reference [22])\n\n";

  // ---- single node: sweep the FPGA row share.
  {
    auto sys = core::SystemParams::cray_xd1().with_nodes(1);
    const long long b = 3000;
    Table t("One XD1 node, C = A x B at n = b = 3000, vs b_f");
    t.set_header({"b_f", "GFLOPS", "note"});
    const long long opt = core::solve_mm_partition(sys, b).b_f;
    for (long long bf : {0LL, 500LL, 1000LL, 1500LL, opt, 2000LL, 2500LL,
                         3000LL}) {
      const long long bfk = (bf / 8) * 8;
      core::MmConfig cfg;
      cfg.n = b;
      cfg.b = b;
      cfg.mode = bfk == 0 ? core::DesignMode::ProcessorOnly
                          : core::DesignMode::Hybrid;
      cfg.b_f = bfk;
      const auto rep = core::mm_analytic(sys, cfg);
      std::string note;
      if (bfk == 0) note = "processor-only (3.9 GFLOPS dgemm)";
      if (bfk == 3000) note = "fpga-only (2.08 GFLOPS array)";
      if (bfk == opt) note = "Eq. 4 balance";
      t.add_row({Table::num(bfk), Table::num(rep.run.gflops(), 4), note});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- chassis scaling.
  {
    Table t("Chassis scaling, hybrid C = A x B, n = 30000, b = 3000");
    t.set_header({"p", "GFLOPS", "network GB moved"});
    for (int p : {2, 3, 4, 6}) {
      auto sys = core::SystemParams::cray_xd1().with_nodes(p);
      core::MmConfig cfg;
      cfg.n = 30000;
      cfg.b = 3000;
      cfg.mode = core::DesignMode::Hybrid;
      const auto rep = core::mm_analytic(sys, cfg);
      t.add_row({Table::num((long long)p), Table::num(rep.run.gflops(), 4),
                 Table::num(static_cast<double>(rep.run.bytes_on_network) /
                                1e9,
                            4)});
    }
    t.print(std::cout);
  }
  std::cout << "\nShape: the hybrid single-node multiply approaches the sum "
               "of the two engines' rates;\nthe distributed form scales "
               "with worker count until the root's stripe feed saturates.\n";
  return 0;
}
