// Figure 8 reproduction: sustained GFLOPS of the hybrid LU decomposition
// versus the number of blocks n/b (b = 3000, p = 6). The paper's curve
// grows with n/b — block matrix multiplication (the only task exploiting
// both the FPGA and the processor) takes a growing share of the work —
// reaching ~20 GFLOPS at n/b = 10.

#include <iostream>

#include "common/table.hpp"
#include "core/lu_analytic.hpp"

using namespace rcs;

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  const long long b = 3000;

  std::cout << "Figure 8 — hybrid LU GFLOPS vs n/b (b = 3000, p = 6)\n\n";

  Table t;
  t.set_header({"n/b", "n", "latency (s)", "GFLOPS", "paper"});
  double prev = 0.0;
  bool monotone = true;
  double final_gflops = 0.0;
  for (long long nb = 2; nb <= 10; ++nb) {
    core::LuConfig cfg;
    cfg.n = b * nb;
    cfg.b = b;
    cfg.mode = core::DesignMode::Hybrid;
    const auto rep = core::lu_analytic(sys, cfg);
    monotone = monotone && rep.run.gflops() > prev;
    prev = rep.run.gflops();
    final_gflops = rep.run.gflops();
    // Paper Fig. 8 series, read off the plot (approximate).
    const char* paper = nb == 2    ? "~9"
                        : nb == 4  ? "~14"
                        : nb == 6  ? "~17"
                        : nb == 8  ? "~19"
                        : nb == 10 ? "~20"
                                   : "";
    t.add_row({Table::num(nb), Table::num(cfg.n),
               Table::num(rep.run.seconds, 5),
               Table::num(rep.run.gflops(), 4), paper});
  }
  t.print(std::cout);

  std::cout << "\nShape: GFLOPS increase monotonically with n/b "
            << (monotone ? "[ok]" : "[MISMATCH]")
            << "; endpoint " << Table::num(final_gflops, 3)
            << " GFLOPS vs paper's 20 "
            << (final_gflops > 15 && final_gflops < 28 ? "[same regime]"
                                                       : "[MISMATCH]")
            << "\n";
  return 0;
}
