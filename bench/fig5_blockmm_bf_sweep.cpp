// Figure 5 reproduction: latency of one b x b block matrix multiplication
// versus b_f (the FPGA's row share), b = 3000, p = 6. The paper's curve
// falls from b_f = 0 (processor-only) to a minimum near its operating point
// (b_f = 1280), then rises as the FPGA overloads; b_f = b (FPGA-only) is
// slower than b_f = 0.

#include <iostream>

#include "common/table.hpp"
#include "core/lu_analytic.hpp"
#include "core/partition.hpp"
#include "core/system.hpp"

using namespace rcs;

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  const long long b = 3000;
  const auto solved = core::solve_mm_partition(sys, b);

  std::cout << "Figure 5 — latency of one " << b << "x" << b
            << " block MM vs b_f (p = " << sys.p << ")\n"
            << "Eq. 4 solution: b_f = " << solved.b_f
            << " (paper operates at b_f = 1280; its Eq. 4 text gives 1280 "
               "with b_p = 1720)\n\n";

  Table t;
  t.set_header({"b_f", "b_p", "latency (s)", "T_f/stripe (ms)",
                "T_mem+T_p/stripe (ms)", "note"});
  double best = 1e300;
  long long best_bf = 0;
  for (long long bf = 0; bf <= b; bf += 200) {
    const long long bf_k = (bf / 8) * 8;  // multiple of k
    const double lat = core::lu_single_opmm_latency(
        sys, b, bf_k, core::SendFanout::SerialAll);
    const auto part = core::mm_partition_at(sys, b, bf_k);
    std::string note;
    if (bf_k == 0) note = "processor-only";
    if (bf_k >= b - 7) note = "fpga-only";
    if (lat < best) {
      best = lat;
      best_bf = bf_k;
    }
    t.add_row({Table::num((long long)bf_k), Table::num((long long)(b - bf_k)),
               Table::num(lat, 4), Table::num(part.t_f_stripe * 1e3, 3),
               Table::num((part.t_mem_stripe + part.t_p_stripe) * 1e3, 3),
               note});
  }
  t.print(std::cout);

  const double at0 =
      core::lu_single_opmm_latency(sys, b, 0, core::SendFanout::SerialAll);
  const double atb =
      core::lu_single_opmm_latency(sys, b, b, core::SendFanout::SerialAll);
  std::cout << "\nSweep minimum at b_f = " << best_bf << " (" << best
            << " s); paper minimum at 1280.\n"
            << "Shape: min < b_f=0 (" << Table::num(at0, 4) << " s) < b_f=b ("
            << Table::num(atb, 4) << " s) — "
            << (best < at0 && at0 < atb ? "REPRODUCED" : "MISMATCH") << "\n";
  return 0;
}
