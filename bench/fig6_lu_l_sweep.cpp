// Figure 6 reproduction: latency of the 0th iteration of LU decomposition
// versus the interleave depth l (n = 30000, b = 3000, p = 6). The paper's
// curve falls from l = 0 to a minimum at l = 3 and stays nearly flat
// through l = 5.

#include <iostream>

#include "common/table.hpp"
#include "core/lu_analytic.hpp"

using namespace rcs;

int main() {
  const auto sys = core::SystemParams::cray_xd1();
  core::LuConfig cfg;
  cfg.n = 30000;
  cfg.b = 3000;
  cfg.mode = core::DesignMode::Hybrid;
  cfg.max_iterations = 1;

  const auto part = core::solve_mm_partition(sys, cfg.b);
  const auto li = core::solve_lu_interleave(sys, cfg.b, part,
                                            core::SendFanout::SerialAll);
  std::cout << "Figure 6 — latency of the 0th LU iteration vs l "
            << "(n = 30000, b = 3000, p = 6)\n"
            << "Eq. 5 solution: l = " << li.l
            << " (paper sets l = 3; its Eq. 5 with single-destination "
               "T_comm gives 3.3)\n\n";

  // Two conventions for charging the stripe distribution (EXPERIMENTS.md):
  // serial-all (strict §4.3: the panel CPU serializes one send per worker)
  // and paper-single (Eq. 5's one T_comm per stripe, DMA-like).
  Table t;
  t.set_header({"l", "latency, serial-all (s)", "latency, paper-single (s)",
                "vs best (serial)"});
  double best = 1e300;
  std::vector<double> lat, lat_single;
  for (int l = 0; l <= 8; ++l) {
    core::LuConfig c = cfg;
    c.l = l;
    lat.push_back(core::lu_analytic(sys, c).run.seconds);
    c.fanout = core::SendFanout::PaperSingle;
    lat_single.push_back(core::lu_analytic(sys, c).run.seconds);
    best = std::min(best, lat.back());
  }
  for (int l = 0; l <= 8; ++l) {
    t.add_row({Table::num((long long)l), Table::num(lat[l], 5),
               Table::num(lat_single[l], 5),
               "+" + Table::num(100.0 * (lat[l] / best - 1.0), 3) + "%"});
  }
  t.print(std::cout);

  const bool falls = lat[0] > lat[1] && lat[1] >= lat[li.l];
  const bool flat_after =
      lat[std::min(8, li.l + 2)] < lat[li.l] * 1.10;
  std::cout << "\nShape: latency falls from l=0 to the Eq. 5 solution, then "
            << "stays within ~10%: "
            << (falls && flat_after ? "REPRODUCED" : "MISMATCH") << "\n";
  return 0;
}
