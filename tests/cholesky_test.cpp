// Tests for the Cholesky substrate kernels and the hybrid distributed
// design: kernel correctness, blocked == distributed bit-identity, residual
// bounds, mode equivalence, and analytic-plane properties.

#include <cmath>

#include <gtest/gtest.h>

#include "core/cholesky.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/generate.hpp"

namespace core = rcs::core;
namespace la = rcs::linalg;
using core::DesignMode;
using core::SystemParams;

namespace {

SystemParams xd1_p(int p) {
  SystemParams sys = SystemParams::cray_xd1();
  sys.p = p;
  return sys;
}

// ---------------------------------------------------------------------------
// linalg kernels

TEST(Potrf, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 5]] -> L = [[2, 0], [1, 2]].
  la::Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 5;
  la::potrf_unblocked(a.view());
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);  // upper triangle untouched
}

TEST(Potrf, ResidualTinyOnRandomSpd) {
  const la::Matrix a = la::spd_matrix(48, 11);
  la::Matrix f = a;
  la::potrf_unblocked(f.view());
  EXPECT_LT(la::cholesky_residual(a.view(), f.view()), 1e-13);
}

TEST(Potrf, RejectsIndefiniteMatrix) {
  la::Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalue -1
  EXPECT_THROW(la::potrf_unblocked(a.view()), rcs::Error);
}

TEST(TrsmRLT, SolvesAgainstLTransposed) {
  const std::size_t n = 16, m = 9;
  la::Matrix spd = la::spd_matrix(n, 13);
  la::potrf_unblocked(spd.view());  // L in lower triangle
  la::Matrix x = la::random_matrix(m, n, 17);
  la::Matrix bm(m, n);
  // B = X * L^T: b[r][j] = sum_k x[r][k] * L[j][k] for k <= j.
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t k = 0; k <= j; ++k) acc += x(r, k) * spd(j, k);
      bm(r, j) = acc;
    }
  la::trsm_right_lower_transposed(spd.view(), bm.view());
  EXPECT_LT(la::max_abs_diff(bm.view(), x.view()), 1e-10);
}

TEST(GemmNT, MatchesGemmAgainstExplicitTranspose) {
  const la::Matrix a = la::random_matrix(7, 5, 19);
  const la::Matrix b = la::random_matrix(9, 5, 23);
  la::Matrix bt(5, 9);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 5; ++j) bt(j, i) = b(i, j);
  la::Matrix c1(7, 9), c2(7, 9);
  la::gemm_nt(a.view(), b.view(), c1.view());
  la::gemm(a.view(), bt.view(), c2.view());
  EXPECT_TRUE(la::bit_equal(c1.view(), c2.view()));
}

class PotrfBlocked : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PotrfBlocked, ResidualTiny) {
  const auto [n, b] = GetParam();
  const la::Matrix a = la::spd_matrix(n, 100 + n);
  la::Matrix f = a;
  la::potrf_blocked(f.view(), b);
  EXPECT_LT(la::cholesky_residual(a.view(), f.view()), 1e-12)
      << "n=" << n << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfBlocked,
                         ::testing::Values(std::tuple{16, 4}, std::tuple{32, 8},
                                           std::tuple{48, 16},
                                           std::tuple{64, 64},
                                           std::tuple{60, 12}));

// ---------------------------------------------------------------------------
// Distributed functional design

class CholFunctional
    : public ::testing::TestWithParam<std::tuple<int, int, int, DesignMode>> {
};

TEST_P(CholFunctional, BitIdenticalToSequentialBlocked) {
  const auto [n, b, p, mode] = GetParam();
  const la::Matrix a = la::spd_matrix(n, 300 + n + p);
  la::Matrix ref = a;
  la::potrf_blocked(ref.view(), b);

  core::CholConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = mode;
  const auto res = core::cholesky_functional(xd1_p(p), cfg, a);
  EXPECT_TRUE(la::bit_equal(res.factored.view(), ref.view()))
      << "n=" << n << " b=" << b << " p=" << p << " diff="
      << la::max_abs_diff(res.factored.view(), ref.view());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CholFunctional,
    ::testing::Values(std::tuple{32, 8, 2, DesignMode::Hybrid},
                      std::tuple{48, 16, 3, DesignMode::Hybrid},
                      std::tuple{64, 16, 4, DesignMode::Hybrid},
                      std::tuple{96, 24, 6, DesignMode::Hybrid},
                      std::tuple{64, 16, 4, DesignMode::ProcessorOnly},
                      std::tuple{64, 16, 4, DesignMode::FpgaOnly},
                      std::tuple{40, 8, 5, DesignMode::Hybrid},
                      std::tuple{16, 16, 2, DesignMode::Hybrid}),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "b" +
             std::to_string(std::get<1>(pinfo.param)) + "p" +
             std::to_string(std::get<2>(pinfo.param)) +
             std::string(core::to_string(std::get<3>(pinfo.param)))
                 .substr(0, 4);
    });

TEST(CholFunctionalDetail, SoftFpMatchesNative) {
  const la::Matrix a = la::spd_matrix(32, 41);
  core::CholConfig cfg;
  cfg.n = 32;
  cfg.b = 8;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 8;
  const auto nat = core::cholesky_functional(xd1_p(3), cfg, a, false);
  const auto soft = core::cholesky_functional(xd1_p(3), cfg, a, true);
  EXPECT_TRUE(la::bit_equal(nat.factored.view(), soft.factored.view()));
}

TEST(CholFunctionalDetail, ResidualTiny) {
  const la::Matrix a = la::spd_matrix(64, 43);
  core::CholConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = DesignMode::Hybrid;
  const auto res = core::cholesky_functional(xd1_p(4), cfg, a);
  EXPECT_LT(la::cholesky_residual(a.view(), res.factored.view()), 1e-12);
}

TEST(CholFunctionalDetail, ReportIsSelfConsistent) {
  const la::Matrix a = la::spd_matrix(64, 45);
  core::CholConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 8;
  const auto res = core::cholesky_functional(xd1_p(4), cfg, a);
  EXPECT_GT(res.run.seconds, 0.0);
  EXPECT_GT(res.run.fpga_flops, 0.0);
  EXPECT_GT(res.run.cpu_flops, 0.0);
  EXPECT_GT(res.run.coordination_events, 0u);
  // Total flops ~ n^3/3 leading order (plus the O(n^2 b) panel terms).
  const double n3 = 64.0 * 64.0 * 64.0;
  EXPECT_GT(res.run.total_flops, n3 / 3.0 * 0.8);
  EXPECT_LT(res.run.total_flops, n3 * 1.5);
}

// ---------------------------------------------------------------------------
// Analytic plane

TEST(CholAnalytic, PaperScaleUsefulGflopsBelowLu) {
  // Cholesky has half the trailing work per panel op, so the serial panel
  // chain weighs more and the *useful* rate (n^3/3 flops over the runtime)
  // lands below LU's ~19 GFLOPS. The executed rate is higher because the
  // design computes diagonal trailing blocks as full squares (as the
  // blocked reference does) — that gap is asserted separately below.
  core::CholConfig cfg;
  cfg.n = 30000;
  cfg.b = 3000;
  cfg.mode = DesignMode::Hybrid;
  const auto rep = core::cholesky_analytic(SystemParams::cray_xd1(), cfg);
  const double useful =
      30000.0 * 30000.0 * 30000.0 / 3.0 / rep.run.seconds / 1e9;
  EXPECT_GT(useful, 6.0);
  EXPECT_LT(useful, 19.2);
  EXPECT_GT(rep.run.gflops(), useful);  // executed > useful (syrk waste)
}

TEST(CholAnalytic, HybridBeatsFpgaOnly) {
  core::CholConfig cfg;
  cfg.n = 30000;
  cfg.b = 3000;
  auto at = [&](DesignMode m) {
    core::CholConfig c = cfg;
    c.mode = m;
    return core::cholesky_analytic(SystemParams::cray_xd1(), c).run.seconds;
  };
  EXPECT_LT(at(DesignMode::Hybrid), at(DesignMode::FpgaOnly));
  EXPECT_LE(at(DesignMode::Hybrid), at(DesignMode::ProcessorOnly) * 1.0001);
}

TEST(CholAnalytic, FunctionalAndAnalyticAgree) {
  core::CholConfig cfg;
  cfg.n = 96;
  cfg.b = 24;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 8;
  cfg.l = 2;
  const SystemParams sys = xd1_p(4);
  const la::Matrix a = la::spd_matrix(96, 47);
  const auto fn = core::cholesky_functional(sys, cfg, a);
  const auto an = core::cholesky_analytic(sys, cfg);
  EXPECT_NEAR(fn.run.seconds / an.run.seconds, 1.0, 0.4);
}

TEST(CholAnalytic, FlopAccountingExecutedVsUseful) {
  // Executed flops = n^3/3 useful + the full-square diagonal trailing
  // blocks (one extra b^3 per diagonal task: sum_t m = 45 of them at
  // b = 3000, n/b = 10) + O(n^2 b) panel/opMS terms.
  core::CholConfig cfg;
  cfg.n = 30000;
  cfg.b = 3000;
  cfg.mode = DesignMode::Hybrid;
  const auto rep = core::cholesky_analytic(SystemParams::cray_xd1(), cfg);
  const double b3 = 3000.0 * 3000.0 * 3000.0;
  const double n3 = 30000.0 * 30000.0 * 30000.0;
  const double expected = n3 / 3.0 + 45.0 * b3;  // leading terms
  EXPECT_NEAR(rep.run.total_flops, expected, 0.02 * expected);
}

}  // namespace
