// Tests for the Householder QR substrate: reconstruction, orthogonality,
// blocked-vs-unblocked agreement, degenerate inputs, and the compact-WY
// pieces.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/generate.hpp"
#include "linalg/qr.hpp"

namespace la = rcs::linalg;

namespace {

TEST(Geqrf, ReconstructsSquareMatrix) {
  const la::Matrix a = la::random_matrix(24, 24, 7);
  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_unblocked(f.view(), tau);
  EXPECT_LT(la::qr_residual(a.view(), f.view(), tau), 1e-13);
}

TEST(Geqrf, ReconstructsTallMatrix) {
  const la::Matrix a = la::random_matrix(40, 16, 9);
  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_unblocked(f.view(), tau);
  EXPECT_LT(la::qr_residual(a.view(), f.view(), tau), 1e-13);
}

TEST(Geqrf, QIsOrthogonal) {
  const la::Matrix a = la::random_matrix(20, 20, 11);
  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_unblocked(f.view(), tau);
  const la::Matrix q = la::form_q(f.view(), tau);
  la::Matrix qtq(20, 20);
  la::gemm_nt(q.view(), q.view(), qtq.view());  // Q Q^T here
  EXPECT_LT(la::max_abs_diff(qtq.view(), la::Matrix::identity(20).view()),
            1e-13);
}

TEST(Geqrf, RIsUpperTriangularWithOrientedDiagonal) {
  const la::Matrix a = la::random_matrix(16, 16, 13);
  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_unblocked(f.view(), tau);
  const la::Matrix r = la::extract_r(f.view());
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
    EXPECT_NE(r(i, i), 0.0);
  }
}

TEST(Geqrf, AlreadyTriangularColumnGetsZeroTau) {
  la::Matrix a(3, 2);
  a(0, 0) = 2.0;  // column 0 has no below-diagonal mass
  a(0, 1) = 1.0;
  a(1, 1) = 3.0;
  a(2, 1) = 4.0;
  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_unblocked(f.view(), tau);
  EXPECT_EQ(tau[0], 0.0);
  EXPECT_LT(la::qr_residual(a.view(), f.view(), tau), 1e-14);
}

TEST(Geqrf, WideMatrixRejected) {
  la::Matrix a(3, 5);
  std::vector<double> tau;
  EXPECT_THROW(la::geqrf_unblocked(a.view(), tau), rcs::Error);
}

class GeqrfBlocked
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GeqrfBlocked, ReconstructsAndMatchesUnblocked) {
  const auto [m, n, bs] = GetParam();
  const la::Matrix a = la::random_matrix(m, n, 700 + m + n);
  la::Matrix f1 = a, f2 = a;
  std::vector<double> tau1, tau2;
  la::geqrf_unblocked(f1.view(), tau1);
  la::geqrf_blocked(f2.view(), bs, tau2);
  EXPECT_LT(la::qr_residual(a.view(), f2.view(), tau2), 1e-12)
      << "m=" << m << " n=" << n << " bs=" << bs;
  // Householder QR is deterministic up to rounding: the blocked trailing
  // update regroups the same reflections, so factors agree to rounding.
  EXPECT_LT(la::max_abs_diff(f1.view(), f2.view()),
            1e-10 * la::max_abs(a.view()));
  for (std::size_t j = 0; j < tau1.size(); ++j)
    EXPECT_NEAR(tau1[j], tau2[j], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrfBlocked,
                         ::testing::Values(std::tuple{16, 16, 4},
                                           std::tuple{32, 32, 8},
                                           std::tuple{48, 24, 8},
                                           std::tuple{40, 40, 16},
                                           std::tuple{30, 30, 7},
                                           std::tuple{64, 64, 64}));

TEST(Larft, MatchesExplicitProductOfReflectors) {
  // (I - V T V^T) must equal H_1 H_2 ... H_k.
  const std::size_t m = 12, k = 4;
  const la::Matrix a = la::random_matrix(m, k, 17);
  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_unblocked(f.view(), tau);
  const la::Matrix t = la::larft(f.view(), tau);
  // Explicit Q from the reflectors.
  const la::Matrix q = la::form_q(f.view(), tau);
  // Q_wy = I - V T V^T.
  la::Matrix v(m, k);
  for (std::size_t c = 0; c < k; ++c) {
    v(c, c) = 1.0;
    for (std::size_t r = c + 1; r < m; ++r) v(r, c) = f(r, c);
  }
  la::Matrix vt(m, k);
  la::gemm_overwrite(v.view(), t.view(), vt.view());
  la::Matrix q_wy = la::Matrix::identity(m);
  la::Matrix outer(m, m);
  la::gemm_nt(vt.view(), v.view(), outer.view());
  la::matrix_sub(q_wy.view(), outer.view());
  EXPECT_LT(la::max_abs_diff(q.view(), q_wy.view()), 1e-13);
}

TEST(Geqrf, SolvesLeastSquaresProblem) {
  // Overdetermined A x ~ b via QR: x = R^-1 (Q^T b)(0:n).
  const std::size_t m = 30, n = 10;
  const la::Matrix a = la::random_matrix(m, n, 19);
  const la::Matrix x_true = la::random_matrix(n, 1, 23);
  la::Matrix b(m, 1);
  la::gemm_overwrite(a.view(), x_true.view(), b.view());

  la::Matrix f = a;
  std::vector<double> tau;
  la::geqrf_blocked(f.view(), 4, tau);
  const la::Matrix q = la::form_q(f.view(), tau);
  la::Matrix qtb(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t r = 0; r < m; ++r) acc += q(r, i) * b(r, 0);
    qtb(i, 0) = acc;
  }
  const la::Matrix r = la::extract_r(f.view());
  la::Matrix x = qtb;
  for (std::size_t j = n; j-- > 0;) {
    double acc = x(j, 0);
    for (std::size_t i = j + 1; i < n; ++i) acc -= r(j, i) * x(i, 0);
    x(j, 0) = acc / r(j, j);
  }
  EXPECT_LT(la::max_abs_diff(x.view(), x_true.view()), 1e-10);
}

TEST(FlopCounts, GeqrfFormula) {
  EXPECT_EQ(la::geqrf_flops(10, 10), 2000 - 666);
  EXPECT_GT(la::geqrf_flops(100, 50), 0);
}

}  // namespace
