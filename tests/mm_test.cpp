// Tests for the standalone hybrid matrix multiplication (reference [22]):
// functional bit-identity with the host gemm across node counts, modes and
// block sizes; analytic-plane properties at paper scale; trace capture.

#include <gtest/gtest.h>

#include "core/mm.hpp"
#include "core/system.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "sim/trace.hpp"

namespace core = rcs::core;
namespace la = rcs::linalg;
using core::DesignMode;
using core::SystemParams;

namespace {

SystemParams xd1_p(int p) {
  SystemParams sys = SystemParams::cray_xd1();
  sys.p = p;
  return sys;
}

la::Matrix reference_product(const la::Matrix& a, const la::Matrix& b) {
  la::Matrix c(a.rows(), b.cols());
  la::gemm(a.view(), b.view(), c.view());
  return c;
}

class MmFunctional
    : public ::testing::TestWithParam<std::tuple<int, int, int, DesignMode>> {
};

TEST_P(MmFunctional, BitIdenticalToHostGemm) {
  const auto [n, b, p, mode] = GetParam();
  const la::Matrix a = la::random_matrix(n, n, 500 + n + p, -2.0, 2.0);
  const la::Matrix bm = la::random_matrix(n, n, 600 + n + p, -2.0, 2.0);
  core::MmConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = mode;
  const auto res = core::mm_functional(xd1_p(p), cfg, a, bm);
  EXPECT_TRUE(la::bit_equal(res.c.view(), reference_product(a, bm).view()))
      << "n=" << n << " b=" << b << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MmFunctional,
    ::testing::Values(
        std::tuple{32, 32, 1, DesignMode::Hybrid},   // single node, 1 block
        std::tuple{64, 32, 1, DesignMode::Hybrid},   // single node, tiled
        std::tuple{48, 48, 1, DesignMode::FpgaOnly},
        std::tuple{48, 48, 1, DesignMode::ProcessorOnly},
        std::tuple{32, 32, 2, DesignMode::Hybrid},   // 1 worker
        std::tuple{64, 32, 3, DesignMode::Hybrid},   // tiled, 2 workers
        std::tuple{64, 32, 4, DesignMode::Hybrid},
        std::tuple{96, 32, 6, DesignMode::Hybrid},
        std::tuple{64, 32, 4, DesignMode::FpgaOnly},
        std::tuple{64, 32, 4, DesignMode::ProcessorOnly},
        std::tuple{80, 16, 5, DesignMode::Hybrid}),  // uneven column shares
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "b" +
             std::to_string(std::get<1>(pinfo.param)) + "p" +
             std::to_string(std::get<2>(pinfo.param)) +
             std::string(core::to_string(std::get<3>(pinfo.param)))
                 .substr(0, 4);
    });

TEST(MmFunctionalDetail, SoftFpMatchesNative) {
  const la::Matrix a = la::random_matrix(48, 48, 701, -3.0, 3.0);
  const la::Matrix bm = la::random_matrix(48, 48, 703, -3.0, 3.0);
  core::MmConfig cfg;
  cfg.n = 48;
  cfg.b = 24;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 16;
  const auto nat = core::mm_functional(xd1_p(3), cfg, a, bm, false);
  const auto soft = core::mm_functional(xd1_p(3), cfg, a, bm, true);
  EXPECT_TRUE(la::bit_equal(nat.c.view(), soft.c.view()));
}

TEST(MmFunctionalDetail, SingleNodeHybridSplitsWork) {
  const la::Matrix a = la::random_matrix(64, 64, 705);
  const la::Matrix bm = la::random_matrix(64, 64, 707);
  core::MmConfig cfg;
  cfg.n = 64;
  cfg.b = 64;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 32;
  const auto res = core::mm_functional(xd1_p(1), cfg, a, bm);
  EXPECT_GT(res.run.cpu_flops, 0.0);
  EXPECT_GT(res.run.fpga_flops, 0.0);
  EXPECT_NEAR(res.run.total_flops, 2.0 * 64 * 64 * 64, 1.0);
  EXPECT_GT(res.run.coordination_events, 0u);
  EXPECT_GT(res.run.seconds, 0.0);
}

TEST(MmFunctionalDetail, TraceCapturesBothSides) {
  const la::Matrix a = la::random_matrix(32, 32, 709);
  const la::Matrix bm = la::random_matrix(32, 32, 711);
  core::MmConfig cfg;
  cfg.n = 32;
  cfg.b = 32;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 16;
  rcs::sim::TraceRecorder trace(true);
  core::mm_functional(xd1_p(2), cfg, a, bm, false, &trace);
  const auto busy = trace.busy_by_resource();
  EXPECT_GT(busy.count("node1.cpu"), 0u);
  EXPECT_GT(busy.count("node1.fpga"), 0u);
  EXPECT_GT(busy.count("node1.dram"), 0u);
}

TEST(MmFunctionalDetail, RejectsBadShapes) {
  const la::Matrix a = la::random_matrix(32, 32, 713);
  const la::Matrix bad = la::random_matrix(32, 16, 715);
  core::MmConfig cfg;
  cfg.n = 32;
  cfg.b = 16;
  EXPECT_THROW(core::mm_functional(xd1_p(2), cfg, a, bad), rcs::Error);
  cfg.b = 12;  // does not divide n
  EXPECT_THROW(core::mm_functional(xd1_p(2), cfg, a, a), rcs::Error);
}

// ---------------------------------------------------------------------------
// Analytic plane

TEST(MmAnalytic, SingleNodeHybridApproachesCombinedThroughput) {
  // [22]'s headline: the hybrid multiply sustains close to the sum of the
  // CPU's 3.9 and the FPGA's 2.08 GFLOPS on one XD1 node.
  core::MmConfig cfg;
  cfg.n = 3000;
  cfg.b = 3000;
  cfg.mode = DesignMode::Hybrid;
  const auto rep = core::mm_analytic(xd1_p(1), cfg);
  EXPECT_GT(rep.run.gflops(), 4.0);
  EXPECT_LT(rep.run.gflops(), 3.9 + 2.08 + 0.1);
}

TEST(MmAnalytic, SingleNodeHybridBeatsBothSides) {
  core::MmConfig cfg;
  cfg.n = 3000;
  cfg.b = 3000;
  auto at = [&](DesignMode m) {
    core::MmConfig c = cfg;
    c.mode = m;
    return core::mm_analytic(xd1_p(1), c).run.gflops();
  };
  EXPECT_GT(at(DesignMode::Hybrid), at(DesignMode::ProcessorOnly));
  EXPECT_GT(at(DesignMode::Hybrid), at(DesignMode::FpgaOnly));
  EXPECT_GT(at(DesignMode::ProcessorOnly), at(DesignMode::FpgaOnly));
}

TEST(MmAnalytic, MultiNodeScalesWithWorkers) {
  core::MmConfig cfg;
  cfg.n = 30000;
  cfg.b = 3000;
  cfg.mode = DesignMode::Hybrid;
  const auto p4 = core::mm_analytic(xd1_p(4), cfg);
  const auto p6 = core::mm_analytic(xd1_p(6), cfg);
  EXPECT_GT(p6.run.gflops(), p4.run.gflops());
}

TEST(MmAnalytic, FunctionalAndAnalyticAgreeOnTiming) {
  core::MmConfig cfg;
  cfg.n = 96;
  cfg.b = 48;
  cfg.mode = DesignMode::Hybrid;
  cfg.b_f = 24;
  const SystemParams sys = xd1_p(3);
  const la::Matrix a = la::random_matrix(96, 96, 801);
  const la::Matrix bm = la::random_matrix(96, 96, 803);
  const auto fn = core::mm_functional(sys, cfg, a, bm);
  const auto an = core::mm_analytic(sys, cfg);
  EXPECT_NEAR(fn.run.seconds / an.run.seconds, 1.0, 0.4);
}

TEST(MmAnalytic, FlopAccountingIs2NCubed) {
  core::MmConfig cfg;
  cfg.n = 6000;
  cfg.b = 3000;
  cfg.mode = DesignMode::Hybrid;
  const auto rep = core::mm_analytic(xd1_p(6), cfg);
  const double n3 = 6000.0 * 6000.0 * 6000.0;
  EXPECT_NEAR(rep.run.total_flops, 2.0 * n3, 1e-6 * n3);
}

}  // namespace
