// Tests for the Floyd–Warshall substrate: the reference algorithm, the
// blocked formulation (bit-identity with the reference), the generalized
// block kernel under every aliasing pattern, and path reconstruction.

#include <gtest/gtest.h>

#include "graph/floyd_warshall.hpp"
#include "graph/generate.hpp"
#include "graph/transitive_closure.hpp"
#include "linalg/matrix.hpp"

namespace gr = rcs::graph;
using rcs::linalg::Matrix;

namespace {

Matrix triangle_graph() {
  // 0 ->(1) 1 ->(2) 2, plus the direct edge 0 ->(5) 2.
  Matrix d(3, 3, gr::kNoEdge);
  for (int i = 0; i < 3; ++i) d(i, i) = 0.0;
  d(0, 1) = 1.0;
  d(1, 2) = 2.0;
  d(0, 2) = 5.0;
  return d;
}

TEST(FloydWarshall, PrefersShorterTwoHopPath) {
  Matrix d = triangle_graph();
  gr::floyd_warshall(d);
  EXPECT_EQ(d(0, 2), 3.0);  // via vertex 1
  EXPECT_EQ(d(0, 1), 1.0);
  EXPECT_EQ(d(2, 0), gr::kNoEdge);  // directed: no way back
}

TEST(FloydWarshall, DiagonalStaysZero) {
  Matrix d = gr::random_digraph(16, 7);
  gr::floyd_warshall(d);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(d(i, i), 0.0);
}

TEST(FloydWarshall, TriangleInequalityHolds) {
  Matrix d = gr::random_digraph(24, 9, 0.4);
  gr::floyd_warshall(d);
  for (int i = 0; i < 24; ++i)
    for (int j = 0; j < 24; ++j)
      for (int k = 0; k < 24; ++k)
        EXPECT_LE(d(i, j), d(i, k) + d(k, j) + 1e-12);
}

TEST(FloydWarshall, UnreachableStaysInfinite) {
  Matrix d(4, 4, gr::kNoEdge);
  for (int i = 0; i < 4; ++i) d(i, i) = 0.0;
  d(0, 1) = 1.0;
  d(2, 3) = 1.0;  // two disconnected components
  gr::floyd_warshall(d);
  EXPECT_EQ(d(0, 3), gr::kNoEdge);
  EXPECT_EQ(d(2, 1), gr::kNoEdge);
  EXPECT_EQ(d(0, 1), 1.0);
}

TEST(FwBlock, Op1EqualsWholeMatrixFwForSingleBlock) {
  Matrix d = gr::random_digraph(12, 11, 0.6);
  Matrix ref = d;
  gr::floyd_warshall(ref);
  gr::fw_block(d.view(), d.view(), d.view());  // op1 on the whole matrix
  EXPECT_TRUE(rcs::linalg::bit_equal(d.view(), ref.view()));
}

TEST(FwBlock, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3), c(2, 3);
  EXPECT_THROW(gr::fw_block(c.view(), a.view(), b.view()), rcs::Error);
}

class BlockedFw : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(BlockedFw, MatchesReferenceDistances) {
  // The blocked algorithm is exactly equivalent in the (min,+) semiring,
  // but floating-point path sums associate differently across block
  // boundaries, so equality holds to rounding (~n*eps), not bitwise.
  // (Bit-equality *is* required — and tested in functional_test — between
  // implementations that share the blocked operation order.)
  const auto [n, b, seed] = GetParam();
  Matrix d = gr::random_digraph(n, seed, 0.5);
  Matrix ref = d;
  gr::floyd_warshall(ref);
  gr::blocked_floyd_warshall(d, b);
  EXPECT_LT(rcs::linalg::max_abs_diff(d.view(), ref.view()), 1e-9)
      << "n=" << n << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BlockedFw,
    ::testing::Values(std::tuple{8, 2, 1}, std::tuple{16, 4, 2},
                      std::tuple{24, 8, 3}, std::tuple{32, 8, 4},
                      std::tuple{32, 16, 5}, std::tuple{48, 12, 6},
                      std::tuple{30, 5, 7}, std::tuple{16, 16, 8}));

TEST(BlockedFw, RequiresDivisibleBlockSize) {
  Matrix d = gr::random_digraph(10, 1);
  EXPECT_THROW(gr::blocked_floyd_warshall(d, 3), rcs::Error);
}

TEST(BlockedFw, DenseGraphMatchesToo) {
  Matrix d = gr::random_digraph(40, 21, 1.0);
  Matrix ref = d;
  gr::floyd_warshall(ref);
  gr::blocked_floyd_warshall(d, 10);
  EXPECT_LT(rcs::linalg::max_abs_diff(d.view(), ref.view()), 1e-9);
}

TEST(Paths, ReconstructionFollowsDistances) {
  Matrix d = gr::random_digraph(20, 31, 0.3);
  Matrix dist = d;
  std::vector<std::size_t> next;
  gr::floyd_warshall_with_paths(dist, next);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      auto path = gr::reconstruct_path(next, 20, i, j);
      if (dist(i, j) == gr::kNoEdge) {
        if (i != j) {
          EXPECT_TRUE(path.empty());
        }
        continue;
      }
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), i);
      EXPECT_EQ(path.back(), j);
      // Edge-sum of the reconstructed path equals the computed distance.
      double sum = 0.0;
      for (std::size_t s = 0; s + 1 < path.size(); ++s)
        sum += d(path[s], path[s + 1]);
      EXPECT_NEAR(sum, dist(i, j), 1e-9);
    }
  }
}

TEST(Paths, DistancesMatchPlainFw) {
  Matrix d = gr::random_digraph(18, 33, 0.4);
  Matrix d1 = d, d2 = d;
  std::vector<std::size_t> next;
  gr::floyd_warshall(d1);
  gr::floyd_warshall_with_paths(d2, next);
  EXPECT_TRUE(rcs::linalg::bit_equal(d1.view(), d2.view()));
}

TEST(Paths, BlockedWithPathsMatchesBlockedDistances) {
  const Matrix d0 = gr::random_digraph(32, 35, 0.3);
  Matrix d1 = d0, d2 = d0;
  std::vector<std::size_t> next;
  gr::blocked_floyd_warshall(d1, 8);
  gr::blocked_floyd_warshall_with_paths(d2, 8, next);
  EXPECT_TRUE(rcs::linalg::bit_equal(d1.view(), d2.view()));
}

TEST(Paths, BlockedReconstructionRealizesItsDistances) {
  const Matrix d0 = gr::random_digraph(32, 37, 0.25);
  Matrix dist = d0;
  std::vector<std::size_t> next;
  gr::blocked_floyd_warshall_with_paths(dist, 8, next);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      const auto path = gr::reconstruct_path(next, 32, i, j);
      if (dist(i, j) == gr::kNoEdge) {
        if (i != j) {
          EXPECT_TRUE(path.empty());
        }
        continue;
      }
      ASSERT_FALSE(path.empty()) << i << "->" << j;
      double sum = 0.0;
      for (std::size_t s = 0; s + 1 < path.size(); ++s)
        sum += d0(path[s], path[s + 1]);
      EXPECT_NEAR(sum, dist(i, j), 1e-9) << i << "->" << j;
    }
  }
}

TEST(Paths, BlockedNextHopKernelShapeChecks) {
  Matrix c(4, 4), a(4, 4), b(4, 4);
  std::vector<std::size_t> n1(16), n2(12);
  rcs::Span2D<std::size_t> nc(n1.data(), 4, 4);
  rcs::Span2D<std::size_t> bad(n2.data(), 3, 4);
  EXPECT_THROW(
      gr::fw_block_with_next(c.view(), a.view(), b.view(), bad, nc),
      rcs::Error);
}

TEST(Generators, GridRoadNetworkIsSymmetricAndConnected) {
  Matrix d = gr::grid_road_network(4, 5, 3);
  const std::size_t n = 20;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(d(i, j), d(j, i));
  gr::floyd_warshall(d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_LT(d(i, j), gr::kNoEdge);  // grid is connected
}

TEST(Generators, RandomDigraphEdgeProbabilityRoughlyHolds) {
  Matrix d = gr::random_digraph(50, 77, 0.3);
  int edges = 0;
  for (int i = 0; i < 50; ++i)
    for (int j = 0; j < 50; ++j)
      if (i != j && d(i, j) != gr::kNoEdge) ++edges;
  EXPECT_GT(edges, 500);
  EXPECT_LT(edges, 1000);
}

TEST(FlopCounts, Formulas) {
  EXPECT_EQ(gr::fw_block_flops(4), 128);
  EXPECT_EQ(gr::fw_total_flops(10), 2000);
}

// ---------------------------------------------------------------------------
// Transitive closure (reference [11] extension)

TEST(BitMatrix, GetSetCount) {
  gr::BitMatrix m(130);  // crosses word boundaries
  EXPECT_FALSE(m.get(0, 0));
  m.set(0, 0);
  m.set(129, 129);
  m.set(5, 64);
  m.set(5, 64, false);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(129, 129));
  EXPECT_FALSE(m.get(5, 64));
  EXPECT_EQ(m.count(), 2u);
}

TEST(TransitiveClosure, ChainBecomesFullyReachable) {
  gr::BitMatrix m(5);
  for (std::size_t i = 0; i < 5; ++i) m.set(i, i);
  for (std::size_t i = 0; i + 1 < 5; ++i) m.set(i, i + 1);
  gr::transitive_closure(m);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_EQ(m.get(i, j), j >= i) << i << "," << j;
}

TEST(TransitiveClosure, MatchesFloydWarshallReachability) {
  const Matrix d = gr::random_digraph(96, 91, 0.04);
  Matrix dist = d;
  gr::floyd_warshall(dist);
  gr::BitMatrix reach = gr::adjacency_from_distances(d);
  gr::transitive_closure(reach);
  for (std::size_t i = 0; i < 96; ++i)
    for (std::size_t j = 0; j < 96; ++j)
      EXPECT_EQ(reach.get(i, j), i == j || dist(i, j) != gr::kNoEdge)
          << i << "," << j;
}

class BlockedTc : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(BlockedTc, IdenticalToUnblocked) {
  const auto [n, b, seed] = GetParam();
  const Matrix d = gr::random_digraph(n, seed, 0.03);
  gr::BitMatrix r1 = gr::adjacency_from_distances(d);
  gr::BitMatrix r2 = r1;
  gr::transitive_closure(r1);
  gr::blocked_transitive_closure(r2, b);
  // Boolean semiring is idempotent: the blocked result is *exactly* equal.
  EXPECT_TRUE(r1 == r2) << "n=" << n << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockedTc,
                         ::testing::Values(std::tuple{128, 64, 1},
                                           std::tuple{192, 64, 2},
                                           std::tuple{256, 128, 3},
                                           std::tuple{256, 64, 4},
                                           std::tuple{384, 128, 5}));

TEST(BlockedTc, RejectsUnalignedBlocks) {
  gr::BitMatrix m(128);
  EXPECT_THROW(gr::blocked_transitive_closure(m, 32), rcs::Error);
  EXPECT_THROW(gr::blocked_transitive_closure(m, 96), rcs::Error);
}

TEST(TransitiveClosure, DisconnectedComponentsStayDisconnected) {
  gr::BitMatrix m(128);
  for (std::size_t i = 0; i < 128; ++i) m.set(i, i);
  for (std::size_t i = 0; i + 1 < 64; ++i) m.set(i, i + 1);
  for (std::size_t i = 64; i + 1 < 128; ++i) m.set(i, i + 1);
  gr::blocked_transitive_closure(m, 64);
  EXPECT_TRUE(m.get(0, 63));
  EXPECT_FALSE(m.get(0, 64));
  EXPECT_TRUE(m.get(64, 127));
  EXPECT_FALSE(m.get(64, 0));
}

}  // namespace
