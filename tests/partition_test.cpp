// Tests for the design model's partition solvers (Eq. 4/5/6), checked both
// as equations (plug the solution back, residual ~ 0) and against the
// paper's Section 6.1 operating points.

#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/system.hpp"

namespace core = rcs::core;
using core::SystemParams;

namespace {

const SystemParams& xd1() {
  static const SystemParams sys = SystemParams::cray_xd1();
  return sys;
}

TEST(SystemParams, Xd1MatchesSection61) {
  const SystemParams& sys = xd1();
  EXPECT_EQ(sys.p, 6);
  EXPECT_DOUBLE_EQ(sys.network.bytes_per_s, 2e9);
  EXPECT_EQ(sys.mm_fpga.pe_count, 8);
  EXPECT_DOUBLE_EQ(sys.mm_fpga.clock_hz, 130e6);
  EXPECT_DOUBLE_EQ(sys.fw_fpga.clock_hz, 120e6);
  EXPECT_DOUBLE_EQ(sys.gpp.sustained(rcs::node::CpuKernel::Dgemm), 3.9e9);
}

TEST(MmPartition, SolutionMinimizesStripePeriod) {
  const auto part = core::solve_mm_partition(xd1(), 3000);
  // The chosen b_f must beat its k-step neighbours on the steady-state
  // stripe period (the quantity the schedule simulator charges per stripe).
  const auto up = core::mm_partition_at(xd1(), 3000, part.b_f + 8);
  const auto down = core::mm_partition_at(xd1(), 3000, part.b_f - 8);
  EXPECT_LE(part.stripe_period_seconds(), up.stripe_period_seconds());
  EXPECT_LE(part.stripe_period_seconds(), down.stripe_period_seconds());
  // And the Eq. 4 residual at the solution is small: within one k-row step
  // of the exact crossing (|d residual / d b_f| * k).
  const double step = std::abs(up.residual - part.residual);
  EXPECT_LT(std::abs(part.residual), 20.0 * step);
}

TEST(MmPartition, DegenerateSmallBlocksFallBackToBoundary) {
  // At tiny b the DRAM stream costs more than computing a row anywhere;
  // Eq. 4 has no interior crossing and the solver must pick a boundary
  // (here: all-CPU, since the Opteron beats the stream rate).
  const auto part = core::solve_mm_partition(xd1().with_nodes(6), 24);
  EXPECT_TRUE(part.b_f == 0 || part.b_f == 24);
  const auto zero = core::mm_partition_at(xd1().with_nodes(6), 24, 0);
  EXPECT_LE(part.b_f == 0 ? zero.t_p_stripe : part.stripe_period_seconds(),
            zero.t_p_stripe + 1e-15);
}

TEST(MmPartition, SolutionInPaperBand) {
  // The paper operates at b_f = 1280 (its Eq. 4 evaluation); our solver's
  // exact optimum for the published constants is ~1085. Both sit in the
  // same band; the Fig. 5 curve is nearly flat between them.
  const auto part = core::solve_mm_partition(xd1(), 3000);
  EXPECT_GE(part.b_f, 960);
  EXPECT_LE(part.b_f, 1400);
  EXPECT_EQ(part.b_f % 8, 0);  // multiple of k
  EXPECT_EQ(part.b_f + part.b_p, 3000);
}

TEST(MmPartition, TimingComponentsMatchHandComputation) {
  const auto part = core::mm_partition_at(xd1(), 3000, 1280);
  // T_f = b_f * b / ((p-1) F_f)
  EXPECT_NEAR(part.t_f_stripe, 1280.0 * 3000 / (5 * 130e6), 1e-12);
  // T_comm = 2 b k b_w / B_n
  EXPECT_NEAR(part.t_comm_stripe, 2.0 * 3000 * 8 * 8 / 2e9, 1e-12);
  // T_mem = (b_f k + b k/(p-1)) b_w / B_d
  EXPECT_NEAR(part.t_mem_stripe, (1280.0 * 8 + 3000.0 * 8 / 5) * 8 / 1.04e9,
              1e-12);
  // T_p = 2 b_p b k / ((p-1) R)
  EXPECT_NEAR(part.t_p_stripe, 2.0 * 1720 * 3000 * 8 / (5 * 3.9e9), 1e-12);
}

TEST(MmPartition, NaiveSplitIgnoresTransfers) {
  // Without transfer terms Eq. 4 degenerates to the computing-power ratio
  // b_f/b_p = O_f F_f / (O_p F_p) of reference [22]: 2.08/3.9 -> b_f ~ 1043.
  const auto naive = core::solve_mm_partition(xd1(), 3000, false);
  EXPECT_NEAR(static_cast<double>(naive.b_f), 3000.0 * 2.08 / (2.08 + 3.9),
              8.0);
  // Including transfers shifts more work to the FPGA (the CPU also pays the
  // transfer times).
  const auto full = core::solve_mm_partition(xd1(), 3000, true);
  EXPECT_GE(full.b_f, naive.b_f);
}

TEST(MmPartition, BoundsRespected) {
  EXPECT_EQ(core::mm_partition_at(xd1(), 3000, 0).t_f_stripe, 0.0);
  EXPECT_EQ(core::mm_partition_at(xd1(), 3000, 3000).b_p, 0);
  EXPECT_THROW(core::mm_partition_at(xd1(), 3000, 3001), rcs::Error);
  EXPECT_THROW(core::mm_partition_at(xd1(), 3000, -1), rcs::Error);
}

TEST(MmPartition, FasterFpgaTakesMoreWork) {
  SystemParams sys = xd1();
  const auto base = core::solve_mm_partition(sys, 3000);
  sys.mm_fpga.clock_hz *= 2.0;
  const auto faster = core::solve_mm_partition(sys, 3000);
  EXPECT_GT(faster.b_f, base.b_f);
}

TEST(MmPartition, SramFitsPaperOperatingPoint) {
  const auto part = core::mm_partition_at(xd1(), 3000, 1280);
  // The paper allocates 8 MB of SRAM: b_f * b / (p-1) words must fit.
  EXPECT_LE(part.sram_words(6) * 8, 8u << 20);
}

TEST(LuInterleave, PaperModeGivesPaperL) {
  const auto part = core::mm_partition_at(xd1(), 3000, 1280);
  const auto li = core::solve_lu_interleave(xd1(), 3000, part,
                                            core::SendFanout::PaperSingle);
  // Eq. 5 with Table 1 latencies: max{4.9, 7.1, 7.1} / (2.215 - 0.072) = 3.3.
  EXPECT_NEAR(li.panel_op_seconds, 7.1, 1e-9);
  EXPECT_NEAR(li.worker_per_opmm, 2.215, 0.02);
  EXPECT_GE(li.l, 3);
  EXPECT_LE(li.l, 4);
}

TEST(LuInterleave, SerialFanoutCostsMore) {
  const auto part = core::mm_partition_at(xd1(), 3000, 1280);
  const auto paper = core::solve_lu_interleave(xd1(), 3000, part,
                                               core::SendFanout::PaperSingle);
  const auto serial = core::solve_lu_interleave(xd1(), 3000, part,
                                                core::SendFanout::SerialAll);
  EXPECT_DOUBLE_EQ(serial.sender_per_opmm, 5.0 * paper.sender_per_opmm);
  EXPECT_GE(serial.l, paper.l);  // slower distribution -> deeper interleave
}

TEST(LuInterleave, AtLeastOne) {
  SystemParams sys = xd1();
  sys.network.bytes_per_s = 1e3;  // absurdly slow network
  const auto part = core::mm_partition_at(sys, 3000, 1280);
  const auto li =
      core::solve_lu_interleave(sys, 3000, part, core::SendFanout::SerialAll);
  EXPECT_EQ(li.l, 1);
}

TEST(FwPartition, Eq6GivesPaperSplit) {
  // Section 6.1: n = 18432, b = 256, p = 6 -> L = 12, l1 : l2 = 1 : 5,
  // so l1 = 2 and l2 = 10.
  const auto part = core::solve_fw_partition(xd1(), 18432, 256);
  EXPECT_EQ(part.ops_per_phase, 12);
  EXPECT_EQ(part.l1, 2);
  EXPECT_EQ(part.l2, 10);
}

TEST(FwPartition, TimingComponentsMatchHandComputation) {
  const auto part = core::fw_partition_at(xd1(), 18432, 256, 2);
  const double b3 = 256.0 * 256.0 * 256.0;
  EXPECT_NEAR(part.t_p, 2.0 * b3 / 190e6, 1e-9);       // ~0.1766 s
  EXPECT_NEAR(part.t_f, 2.0 * b3 / (8 * 120e6), 1e-9); // ~0.0349 s
  EXPECT_NEAR(part.t_mem, 2.0 * 256 * 256 * 8 / 0.96e9, 1e-12);
  EXPECT_NEAR(part.t_comm, 256.0 * 256 * 8 / 2e9, 1e-12);
}

TEST(FwPartition, ResidualSmallAtSolution) {
  const auto part = core::solve_fw_partition(xd1(), 18432, 256);
  // Integer rounding leaves at most one task's worth of imbalance.
  EXPECT_LT(std::abs(part.residual), part.t_p + part.t_f);
  // Neighbours are no better balanced.
  const auto up = core::fw_partition_at(xd1(), 18432, 256, part.l1 + 1);
  const auto down = core::fw_partition_at(xd1(), 18432, 256, part.l1 - 1);
  EXPECT_LE(std::abs(part.residual), std::abs(up.residual) + 1e-9);
  EXPECT_LE(std::abs(part.residual), std::abs(down.residual) + 1e-9);
}

TEST(FwPartition, PhaseSecondsIsMaxOfSides) {
  const auto part = core::fw_partition_at(xd1(), 18432, 256, 2);
  EXPECT_DOUBLE_EQ(part.phase_seconds(),
                   std::max(2.0 * part.t_p, 10.0 * (part.t_f + part.t_mem)));
}

TEST(FwPartition, BaselineEndpoints) {
  const auto cpu = core::fw_partition_at(xd1(), 18432, 256, 12);
  EXPECT_EQ(cpu.l2, 0);
  const auto fpga = core::fw_partition_at(xd1(), 18432, 256, 0);
  EXPECT_EQ(fpga.l2, 12);
  EXPECT_THROW(core::fw_partition_at(xd1(), 18432, 256, 13), rcs::Error);
}

TEST(FwPartition, LayoutDivisibilityEnforced) {
  EXPECT_THROW(core::solve_fw_partition(xd1(), 1000, 256), rcs::Error);
}

TEST(FwPartition, SlowerCpuShiftsWorkToFpga) {
  SystemParams sys = xd1();
  sys.gpp.set_rate(rcs::node::CpuKernel::FwBlock, 50e6);
  const auto part = core::solve_fw_partition(sys, 18432, 256);
  EXPECT_LT(part.l1, 2);
}

TEST(PanelTimes, MatchTable1) {
  const auto pt = core::panel_times(xd1(), 3000);
  EXPECT_NEAR(pt.t_lu, 4.9, 1e-9);
  EXPECT_NEAR(pt.t_opl, 7.1, 1e-9);
  EXPECT_NEAR(pt.t_opu, 7.1, 1e-9);
}

TEST(Presets, FromSynthesisReconstructsXd1) {
  // Building a system from the XC2VP50's raw resource budget must land on
  // the measured preset (the estimator is calibrated to the paper's
  // synthesis outcomes).
  const auto sys = SystemParams::from_synthesis(
      "synth-XD1", 6, rcs::fpga::ResourceBudget::xc2vp50(),
      rcs::node::GppModel::opteron_2p2ghz(), xd1().network);
  EXPECT_EQ(sys.mm_fpga.pe_count, xd1().mm_fpga.pe_count);
  EXPECT_NEAR(sys.mm_fpga.clock_hz, xd1().mm_fpga.clock_hz, 3e6);
  EXPECT_EQ(sys.fw_fpga.pe_count, xd1().fw_fpga.pe_count);
  EXPECT_NEAR(sys.fw_fpga.clock_hz, xd1().fw_fpga.clock_hz, 3e6);
  EXPECT_NEAR(sys.mm_fpga.dram_bytes_per_s, xd1().mm_fpga.dram_bytes_per_s,
              0.03e9);
  // And the derived system produces the paper-band partitions.
  const auto part = core::solve_mm_partition(sys, 3000);
  EXPECT_GE(part.b_f, 960);
  EXPECT_LE(part.b_f, 1400);
  const auto fw = core::solve_fw_partition(sys, 18432, 256);
  EXPECT_EQ(fw.l1, 2);
}

TEST(Presets, FromSynthesisRejectsTooSmallParts) {
  rcs::fpga::ResourceBudget tiny{"tiny", 1500, 4, 8, 100e6};
  EXPECT_THROW(SystemParams::from_synthesis(
                   "nope", 2, tiny, rcs::node::GppModel::opteron_2p2ghz(),
                   xd1().network),
               rcs::Error);
}

TEST(Presets, AllPresetsSolveCleanly) {
  for (const SystemParams& sys :
       {SystemParams::cray_xd1(), SystemParams::cray_xt3_drc(),
        SystemParams::sgi_rasc()}) {
    const auto mm = core::solve_mm_partition(sys, 960);
    EXPECT_GE(mm.b_f, 0);
    EXPECT_LE(mm.b_f, 960);
    const long long n = 960LL * sys.p;
    const auto fw = core::solve_fw_partition(sys, n, 96);
    EXPECT_EQ(fw.l1 + fw.l2, fw.ops_per_phase);
  }
}

}  // namespace
