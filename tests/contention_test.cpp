// Tests for message logging and the network-contention replay analyzer.

#include <gtest/gtest.h>

#include "core/rcs.hpp"
#include "net/contention.hpp"

namespace net = rcs::net;
namespace core = rcs::core;
namespace la = rcs::linalg;

namespace {

net::NetworkParams slow_net() {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s: second-scale transfers
  return np;
}

TEST(MessageLog, RecordsAllSends) {
  net::World world(3, slow_net());
  world.set_message_logging(true);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(1000);
      comm.send_bytes(1, 1, buf.data(), buf.size());
      comm.isend_bytes(2, 1, buf.data(), buf.size());
    } else {
      comm.recv(0, 1);
    }
  });
  const auto log = world.message_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].src, 0);
  EXPECT_EQ(log[0].bytes, 1000u);
  EXPECT_GT(log[0].arrival, log[0].depart);
}

TEST(MessageLog, DisabledByDefault) {
  net::World world(2, slow_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 1.0;
      comm.send_doubles(1, 1, &v, 1);
    } else {
      comm.recv(0, 1);
    }
  });
  EXPECT_TRUE(world.message_log().empty());
}

TEST(Contention, CrossbarAddsNothingForDistinctPairs) {
  // Two sends to distinct destinations at the same instant: a crossbar
  // carries both; a shared bus serializes them.
  std::vector<net::MessageEvent> log{
      {0, 1, 1'000'000, 0.0, 1.0},
      {2, 3, 1'000'000, 0.0, 1.0},
  };
  const auto xbar = net::analyze_contention(log, slow_net(), 4,
                                            net::LinkModel::Crossbar);
  EXPECT_NEAR(xbar.max_added_delay, 0.0, 1e-9);
  EXPECT_NEAR(xbar.slowdown(), 1.0, 1e-9);
  const auto bus =
      net::analyze_contention(log, slow_net(), 4, net::LinkModel::SharedBus);
  EXPECT_NEAR(bus.max_added_delay, 1.0, 1e-9);
  EXPECT_NEAR(bus.replayed_last_arrival, 2.0, 1e-9);
  EXPECT_EQ(bus.busiest_link, "bus");
}

TEST(Contention, IngressCollisionDetectedByPerNodeLinks) {
  // Two different sources target the same destination simultaneously: the
  // crossbar model hides the collision, per-node ingress links expose it.
  std::vector<net::MessageEvent> log{
      {0, 2, 1'000'000, 0.0, 1.0},
      {1, 2, 1'000'000, 0.0, 1.0},
  };
  const auto xbar = net::analyze_contention(log, slow_net(), 3,
                                            net::LinkModel::Crossbar);
  EXPECT_NEAR(xbar.max_added_delay, 0.0, 1e-9);
  const auto links = net::analyze_contention(log, slow_net(), 3,
                                             net::LinkModel::PerNodeLinks);
  EXPECT_GT(links.max_added_delay, 0.5);
  EXPECT_EQ(links.busiest_link, "ingress.2");
  EXPECT_GT(links.busiest_link_utilization, 0.9);
}

TEST(Contention, SequentialSendsNeverQueue) {
  // Messages that never overlap in time add no delay under any model.
  std::vector<net::MessageEvent> log{
      {0, 1, 1'000'000, 0.0, 1.0},
      {0, 1, 1'000'000, 1.0, 2.0},
      {1, 0, 1'000'000, 2.0, 3.0},
  };
  for (auto model : {net::LinkModel::Crossbar, net::LinkModel::PerNodeLinks,
                     net::LinkModel::SharedBus}) {
    const auto rep = net::analyze_contention(log, slow_net(), 2, model);
    EXPECT_NEAR(rep.max_added_delay, 0.0, 1e-9) << net::to_string(model);
    EXPECT_NEAR(rep.slowdown(), 1.0, 1e-9);
  }
}

TEST(Contention, EmptyLogIsClean) {
  const auto rep = net::analyze_contention({}, slow_net(), 4,
                                           net::LinkModel::SharedBus);
  EXPECT_EQ(rep.messages, 0u);
  EXPECT_NEAR(rep.slowdown(), 1.0, 1e-9);
}

TEST(Contention, FunctionalLuRunValidatesCrossbarAssumption) {
  // End to end: a real hybrid LU run's traffic replayed under the three
  // link models. The crossbar (the paper's assumption) and the XD1's
  // per-node links barely move; a shared bus visibly slows the run.
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 4;
  core::LuConfig cfg;
  cfg.n = 96;
  cfg.b = 24;
  cfg.mode = core::DesignMode::Hybrid;
  cfg.b_f = 8;
  const la::Matrix a = la::diagonally_dominant(96, 2027);
  std::vector<net::MessageEvent> log;
  core::lu_functional(sys, cfg, a, false, nullptr, &log);
  ASSERT_GT(log.size(), 10u);

  const auto xbar =
      net::analyze_contention(log, sys.network, sys.p, net::LinkModel::Crossbar);
  const auto links = net::analyze_contention(log, sys.network, sys.p,
                                             net::LinkModel::PerNodeLinks);
  const auto bus =
      net::analyze_contention(log, sys.network, sys.p, net::LinkModel::SharedBus);
  EXPECT_NEAR(xbar.slowdown(), 1.0, 1e-9);
  EXPECT_LT(links.slowdown(), 1.10);  // per-node links: assumption holds
  EXPECT_GT(bus.slowdown(), links.slowdown());  // the bus is strictly worse
}

}  // namespace
