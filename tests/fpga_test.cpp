// Tests for the FPGA device and kernel models: capacity checks, the [21]
// matrix-multiply cycle formulae, the [18] Floyd–Warshall cycle formulae,
// and bit-fidelity of the functional kernels against the host paths (both
// native-FPU and soft-IEEE-754 backends).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/fw_kernel.hpp"
#include "fpga/matmul_array.hpp"
#include "fpga/pe_cycle_sim.hpp"
#include "fpga/resources.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/generate.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"

namespace fpga = rcs::fpga;
namespace la = rcs::linalg;
namespace gr = rcs::graph;

namespace {

TEST(Device, Xc2vp50MatmulParameters) {
  const auto d = fpga::DeviceConfig::xc2vp50_matmul();
  EXPECT_EQ(d.pe_count, 8);            // k = 8
  EXPECT_EQ(d.ops_per_cycle(), 16);    // O_f = 16
  EXPECT_DOUBLE_EQ(d.clock_hz, 130e6); // F_f = 130 MHz
  EXPECT_NEAR(d.peak_flops(), 2.08e9, 1e6);
  EXPECT_DOUBLE_EQ(d.dram_bytes_per_s, 1.04e9);  // B_d
}

TEST(Device, Xc2vp50FwParameters) {
  const auto d = fpga::DeviceConfig::xc2vp50_floyd_warshall();
  EXPECT_EQ(d.pe_count, 8);
  EXPECT_DOUBLE_EQ(d.clock_hz, 120e6);
  EXPECT_DOUBLE_EQ(d.dram_bytes_per_s, 0.96e9);
}

TEST(Device, SecondsForCycles) {
  const auto d = fpga::DeviceConfig::xc2vp50_matmul();
  EXPECT_DOUBLE_EQ(d.seconds_for_cycles(130e6), 1.0);
}

TEST(Device, SramCapacityEnforced) {
  const auto d = fpga::DeviceConfig::xc2vp50_matmul();
  EXPECT_NO_THROW(fpga::require_sram(d, (8u << 20) / 8, "fits exactly"));
  EXPECT_THROW(fpga::require_sram(d, (8u << 20) / 8 + 1, "too big"),
               rcs::Error);
}

TEST(MatMulArray, CycleFormulaMatchesPaper) {
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  const long long k = array.k();
  // One k x k submatrix multiply has effective latency k^2 cycles [21].
  EXPECT_EQ(array.cycles(k, k, k), k * k);
  // The paper's stripe shape: b_f x k times k x (b/(p-1)) on 5 workers
  // costs b_f * b / (p-1) cycles.
  const long long b = 3000, b_f = 1280, p = 6;
  EXPECT_EQ(array.cycles(b_f, k, b / (p - 1)), b_f * b / (p - 1));
  // A whole opMM (b/k stripes) therefore costs b_f * b^2 / ((p-1) k).
  EXPECT_EQ((b / k) * array.cycles(b_f, k, b / (p - 1)),
            b_f * b * b / ((p - 1) * k));
}

TEST(MatMulArray, CyclesRoundUpPartialTiles) {
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  EXPECT_EQ(array.cycles(1, 1, 1), 64);   // one k x k tile minimum
  EXPECT_EQ(array.cycles(9, 8, 8), 128);  // 2 tiles in m
  EXPECT_EQ(array.cycles(0, 8, 8), 0);
  EXPECT_THROW(array.cycles(-1, 8, 8), rcs::Error);
}

TEST(MatMulArray, SecondsScaleWithClock) {
  auto dev = fpga::DeviceConfig::xc2vp50_matmul();
  fpga::MatMulArray a1(dev);
  dev.clock_hz *= 2;
  fpga::MatMulArray a2(dev);
  EXPECT_DOUBLE_EQ(a1.seconds(64, 64, 64), 2.0 * a2.seconds(64, 64, 64));
}

TEST(MatMulArray, FunctionalMatchesHostGemmBitwise) {
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  la::Matrix c = la::random_matrix(24, 16, 1);
  la::Matrix d = la::random_matrix(16, 20, 2);
  la::Matrix e1 = la::random_matrix(24, 20, 3);
  la::Matrix e2 = e1;
  array.multiply_accumulate(c.view(), d.view(), e1.view());
  la::gemm(c.view(), d.view(), e2.view());
  EXPECT_TRUE(la::bit_equal(e1.view(), e2.view()));
}

TEST(MatMulArray, SoftBackendMatchesNativeBitwise) {
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  la::Matrix c = la::random_matrix(12, 10, 4, -5.0, 5.0);
  la::Matrix d = la::random_matrix(10, 8, 5, -5.0, 5.0);
  la::Matrix e1(12, 8), e2(12, 8);
  array.multiply_accumulate(c.view(), d.view(), e1.view());
  array.multiply_accumulate_soft(c.view(), d.view(), e2.view());
  EXPECT_TRUE(la::bit_equal(e1.view(), e2.view()));
}

TEST(MatMulArray, StreamedPathMatchesNaiveAboveThreshold) {
  // 80^3 > 48^3 crosses into the packed streaming pipeline; the result must
  // still be bit-identical to the naive ascending-l accumulation, and the
  // small 16^3 product (scalar row loop) must agree with gemm too.
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  for (std::size_t n : {std::size_t{16}, std::size_t{80}}) {
    const la::Matrix c = la::random_matrix(n, n, 31);
    const la::Matrix d = la::random_matrix(n, n, 32);
    la::Matrix e_ref = la::random_matrix(n, n, 33);
    la::Matrix e = e_ref;
    la::gemm_naive(c.view(), d.view(), e_ref.view());
    array.multiply_accumulate(c.view(), d.view(), e.view());
    EXPECT_TRUE(la::bit_equal(e.view(), e_ref.view())) << "n=" << n;
  }
}

TEST(MatMulArray, StreamedNtMatchesElementwiseRecompute) {
  // element() recomputes entries with the documented ascending-l order; the
  // streamed NT path must reproduce exactly those bits.
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  const std::size_t n = 80;
  const la::Matrix c = la::random_matrix(n, n, 34);
  const la::Matrix dt = la::random_matrix(n, n, 35);
  const la::Matrix e0 = la::random_matrix(n, n, 36);
  la::Matrix e = e0;
  array.multiply_accumulate_nt(c.view(), dt.view(), e.view());
  for (std::size_t i : {std::size_t{0}, std::size_t{13}, std::size_t{79}}) {
    for (std::size_t j : {std::size_t{0}, std::size_t{41}, std::size_t{79}}) {
      EXPECT_EQ(e(i, j), array.element(c.view(), dt.view(), i, j, e0(i, j),
                                       /*soft=*/false, /*nt=*/true))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(MatMulArray, FaultHookFiresOnStreamedPath) {
  // The fault hook must see the finished tile after the streamed pipeline
  // writes back (same contract as the scalar path), with call ordinals
  // advancing across mixed small/large calls.
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  std::vector<std::uint64_t> calls;
  array.set_fault_hook([&](std::uint64_t call, rcs::Span2D<double> e) {
    calls.push_back(call);
    e(0, 0) = -1234.5;  // corrupt: proves the hook ran after write-back
  });
  const la::Matrix c = la::random_matrix(80, 80, 37);
  const la::Matrix d = la::random_matrix(80, 80, 38);
  la::Matrix e(80, 80);
  array.multiply_accumulate(c.view(), d.view(), e.view());  // streamed
  la::Matrix small(8, 8);
  array.multiply_accumulate(c.block(0, 0, 8, 8), d.block(0, 0, 8, 8),
                            small.view());  // scalar row loop
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], 0u);
  EXPECT_EQ(calls[1], 1u);
  EXPECT_EQ(e(0, 0), -1234.5);
  EXPECT_EQ(small(0, 0), -1234.5);
  // The uncorrupted value is recoverable through element(): it matches the
  // naive ascending-l accumulation the streamed path produced pre-hook.
  la::Matrix ref(80, 80);
  la::gemm_naive(c.view(), d.view(), ref.view());
  EXPECT_EQ(array.element(c.view(), d.view(), 0, 0, 0.0, false, false),
            ref(0, 0));
}

TEST(MatMulArray, ResultTileMustFitSram) {
  auto dev = fpga::DeviceConfig::xc2vp50_matmul();
  dev.sram_bytes = 64;  // 8 words only
  fpga::MatMulArray array(dev);
  la::Matrix c = la::random_matrix(4, 4, 6);
  la::Matrix d = la::random_matrix(4, 4, 7);
  la::Matrix e(4, 4);  // 16 words > 8
  EXPECT_THROW(array.multiply_accumulate(c.view(), d.view(), e.view()),
               rcs::Error);
}

TEST(MatMulArray, InputBytesFormula) {
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  EXPECT_EQ(array.input_bytes(10, 8, 5), (80u + 40u) * 8u);
  EXPECT_EQ(array.sram_words(10, 5), 50u);
}

TEST(FwKernel, CycleFormulaMatchesPaper) {
  fpga::FwKernel kernel(fpga::DeviceConfig::xc2vp50_floyd_warshall());
  // Latency of a b x b block task is 2 b^3 / k cycles [18].
  EXPECT_EQ(kernel.cycles(256), 2LL * 256 * 256 * 256 / 8);
  EXPECT_EQ(kernel.cycles(0), 0);
  // At 120 MHz this is the paper's ~35 ms per block.
  EXPECT_NEAR(kernel.seconds(256), 0.03495, 5e-4);
}

TEST(FwKernel, MemoryFootprints) {
  fpga::FwKernel kernel(fpga::DeviceConfig::xc2vp50_floyd_warshall());
  EXPECT_EQ(kernel.sram_words(256), 2u * 256u * 256u);
  EXPECT_EQ(kernel.input_bytes(256), 2u * 256u * 256u * 8u);
  // b = 256 blocks need 2 b^2 words = 1 MB of SRAM: fits the 8 MB budget.
  EXPECT_NO_THROW(kernel.require_fits(256));
  // The paper's constraint 2 b^2 <= 8 MB / b_w gives b <= 724.
  EXPECT_NO_THROW(kernel.require_fits(724));
  EXPECT_THROW(kernel.require_fits(725), rcs::Error);
}

TEST(FwKernel, FunctionalMatchesHostKernelBitwise) {
  fpga::FwKernel kernel(fpga::DeviceConfig::xc2vp50_floyd_warshall());
  la::Matrix d = gr::random_digraph(16, 11, 0.5);
  la::Matrix a = gr::random_digraph(16, 12, 0.5);
  la::Matrix b = gr::random_digraph(16, 13, 0.5);
  la::Matrix d2 = d;
  kernel.run_block(d.view(), a.view(), b.view());
  gr::fw_block(d2.view(), a.view(), b.view());
  EXPECT_TRUE(la::bit_equal(d.view(), d2.view()));
}

TEST(FwKernel, SoftBackendMatchesNativeOnAllOps) {
  fpga::FwKernel kernel(fpga::DeviceConfig::xc2vp50_floyd_warshall());
  // op1-style in-place aliasing.
  la::Matrix d1 = gr::random_digraph(12, 21, 0.6);
  la::Matrix d2 = d1;
  kernel.run_block(d1.view(), d1.view(), d1.view());
  kernel.run_block_soft(d2.view(), d2.view(), d2.view());
  EXPECT_TRUE(la::bit_equal(d1.view(), d2.view()));
  // op3-style disjoint operands.
  la::Matrix a = gr::random_digraph(12, 22, 0.6);
  la::Matrix b = gr::random_digraph(12, 23, 0.6);
  la::Matrix c1 = gr::random_digraph(12, 24, 0.6);
  la::Matrix c2 = c1;
  kernel.run_block(c1.view(), a.view(), b.view());
  kernel.run_block_soft(c2.view(), a.view(), b.view());
  EXPECT_TRUE(la::bit_equal(c1.view(), c2.view()));
}

TEST(FwKernel, HandlesInfinityEdges) {
  fpga::FwKernel kernel(fpga::DeviceConfig::xc2vp50_floyd_warshall());
  la::Matrix d(4, 4, gr::kNoEdge);
  for (int i = 0; i < 4; ++i) d(i, i) = 0.0;
  d(0, 1) = 1.0;
  d(1, 2) = 1.0;
  kernel.run_block(d.view(), d.view(), d.view());
  EXPECT_EQ(d(0, 2), 2.0);
  EXPECT_EQ(d(3, 0), gr::kNoEdge);
}

TEST(Synthesis, Xc2vp50MatmulMatchesPaperOutcome) {
  // "At most 8 PEs can be configured ... The clock speed of the design
  // F_f = 130 MHz" (Section 6.1).
  const auto synth = fpga::synthesize_matmul(fpga::ResourceBudget::xc2vp50());
  EXPECT_EQ(synth.pe_count, 8);
  EXPECT_NEAR(synth.clock_hz, 130e6, 3e6);
  EXPECT_LT(synth.slice_utilization, 0.85);
  EXPECT_GT(synth.slice_utilization, 0.5);
  EXPECT_NEAR(synth.peak_flops(), 2.08e9, 0.06e9);
}

TEST(Synthesis, Xc2vp50FwMatchesPaperOutcome) {
  // "At most k = 8 PEs can be configured ... achieved 120 MHz" (§6.1).
  const auto synth =
      fpga::synthesize_floyd_warshall(fpga::ResourceBudget::xc2vp50());
  EXPECT_EQ(synth.pe_count, 8);
  EXPECT_NEAR(synth.clock_hz, 120e6, 3e6);
}

TEST(Synthesis, Virtex4FitsMorePes) {
  const auto lx100 =
      fpga::synthesize_matmul(fpga::ResourceBudget::virtex4_lx100());
  EXPECT_EQ(lx100.pe_count, 16);
  const auto lx200 =
      fpga::synthesize_matmul(fpga::ResourceBudget::virtex4_lx200());
  EXPECT_GT(lx200.pe_count, lx100.pe_count);
  // Bigger device, same PE: faster overall design despite congestion.
  EXPECT_GT(lx200.peak_flops(), lx100.peak_flops());
}

TEST(Synthesis, ResourceConstraintsRespected) {
  const auto dev = fpga::ResourceBudget::xc2vp50();
  const auto mm = fpga::synthesize_matmul(dev);
  EXPECT_LE(mm.mult18_used, dev.mult18);
  EXPECT_LE(mm.bram_blocks_used, dev.bram_blocks);
  // A tiny hypothetical device fits nothing.
  fpga::ResourceBudget tiny{"tiny", 1500, 4, 8, 100e6};
  EXPECT_EQ(fpga::synthesize_matmul(tiny).pe_count, 0);
}

TEST(Synthesis, Mult18BudgetCanBindBeforeSlices) {
  fpga::ResourceBudget few_mults{"few-mults", 100000, 300, 18, 200e6};
  const auto synth = fpga::synthesize_matmul(few_mults);
  EXPECT_EQ(synth.pe_count, 2);  // 18 MULT18 / 9 per PE, below the 4-step
}

TEST(Synthesis, ToDeviceConfigRoundTrips) {
  const auto dev = fpga::ResourceBudget::xc2vp50();
  const auto synth = fpga::synthesize_matmul(dev);
  const auto cfg = fpga::to_device_config(dev, synth, "matmul", 8u << 20,
                                          /*dram path*/ 2.8e9);
  EXPECT_EQ(cfg.pe_count, synth.pe_count);
  EXPECT_DOUBLE_EQ(cfg.clock_hz, synth.clock_hz);
  // One word per design clock beats the 2.8 GB/s RapidArray limit here.
  EXPECT_NEAR(cfg.dram_bytes_per_s, synth.clock_hz * 8.0, 1.0);
  // A slow board link caps B_d instead.
  const auto capped =
      fpga::to_device_config(dev, synth, "matmul", 8u << 20, 0.5e9);
  EXPECT_DOUBLE_EQ(capped.dram_bytes_per_s, 0.5e9);
  // The synthesized config drives the kernel model directly.
  fpga::MatMulArray array(cfg);
  EXPECT_EQ(array.k(), synth.pe_count);
}

TEST(Synthesis, UnfittableKernelThrowsOnConversion) {
  fpga::ResourceBudget tiny{"tiny", 1500, 4, 8, 100e6};
  const auto synth = fpga::synthesize_matmul(tiny);
  EXPECT_THROW(
      fpga::to_device_config(tiny, synth, "matmul", 8u << 20, 1e9),
      rcs::Error);
}

TEST(PeCycleSim, AmortizedLatencyConvergesToKSquared) {
  // [21]: "the effective latency for each submatrix multiply is k^2 FPGA
  // clock cycles". Derive it: as more tiles stream back to back, the
  // fill/drain overhead amortizes away and cycles/tile -> k^2.
  const int k = 8;
  const auto few = fpga::simulate_pe_array(k, 4, rcs::fparith::kMultiplierPipeline,
                                           rcs::fparith::kAdderPipeline);
  const auto many = fpga::simulate_pe_array(k, 4000,
                                            rcs::fparith::kMultiplierPipeline,
                                            rcs::fparith::kAdderPipeline);
  EXPECT_GT(few.amortized_cycles_per_tile(4), double(k * k));
  EXPECT_NEAR(many.amortized_cycles_per_tile(4000), double(k * k), 0.1);
  EXPECT_GT(many.multiplier_utilization, 0.999);
}

TEST(PeCycleSim, MatchesMatMulArraySteadyState) {
  // The aggregate model's cycle count equals the microsimulation's steady
  // phase; the microsimulation adds only the (constant) fill/drain.
  fpga::MatMulArray array(fpga::DeviceConfig::xc2vp50_matmul());
  const int k = array.k();
  const long long tiles = 375;  // one paper stripe: (b/k) = 375 tiles
  const auto sim = fpga::simulate_pe_array(k, tiles,
                                           rcs::fparith::kMultiplierPipeline,
                                           rcs::fparith::kAdderPipeline);
  EXPECT_EQ(sim.steady_cycles, array.cycles(k, k * tiles, k));
  EXPECT_LT(sim.drain_cycles, 100);  // constant, independent of tiles
}

TEST(PeCycleSim, PartialBankCountCoversAdderLatency) {
  // With k = 8 and a 14-deep adder, 2 banks make each bank's reuse
  // distance 16 >= 14 cycles; k = 16 needs only 1.
  const auto k8 = fpga::simulate_pe_array(8, 10, rcs::fparith::kMultiplierPipeline,
                                          rcs::fparith::kAdderPipeline);
  EXPECT_EQ(k8.partial_banks, 2);
  const auto k16 = fpga::simulate_pe_array(16, 10, rcs::fparith::kMultiplierPipeline,
                                           rcs::fparith::kAdderPipeline);
  EXPECT_EQ(k16.partial_banks, 1);
  // More banks -> a deeper final reduction -> more drain.
  const auto k4 = fpga::simulate_pe_array(4, 10, rcs::fparith::kMultiplierPipeline,
                                          rcs::fparith::kAdderPipeline);
  EXPECT_GT(k4.partial_banks, k8.partial_banks);
  EXPECT_GT(k4.drain_cycles, k16.drain_cycles);
}

TEST(PeCycleSim, RejectsNonPipelinedCores) {
  EXPECT_THROW(fpga::simulate_pe_array(8, 1, rcs::fparith::CorePipeline{10, 2},
                                       rcs::fparith::kAdderPipeline),
               rcs::Error);
  EXPECT_THROW(fpga::simulate_pe_array(0, 1, rcs::fparith::kMultiplierPipeline,
                                       rcs::fparith::kAdderPipeline),
               rcs::Error);
}

TEST(FwKernel, BramRequirementEnforcedAtConstruction) {
  auto dev = fpga::DeviceConfig::xc2vp50_floyd_warshall();
  dev.pe_count = 8;
  dev.bram_bytes = 2 * 8 * 8 * 8 - 1;  // one byte short of 2k^2 words
  EXPECT_THROW(fpga::FwKernel{dev}, rcs::Error);
}

}  // namespace
