// Regression: the intra-node parallel runtime must not perturb the simulated
// experiment. lu_functional and fw_functional are re-run at several
// RCS_THREADS-equivalent pool sizes; simulated seconds, network bytes, and
// the factored/closure outputs must be exactly equal — the pool accelerates
// wall-clock only, never the virtual clocks.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "graph/generate.hpp"
#include "linalg/generate.hpp"

namespace core = rcs::core;
namespace common = rcs::common;
namespace la = rcs::linalg;
namespace gr = rcs::graph;

namespace {

core::SystemParams xd1_p(int p) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  return sys;
}

TEST(Determinism, LuFunctionalInvariantAcrossThreadCounts) {
  const la::Matrix a = la::diagonally_dominant(64, 1234);
  core::LuConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;

  common::ThreadPool::set_global_threads(1);
  const auto ref = core::lu_functional(xd1_p(3), cfg, a);

  for (int threads : {2, 7}) {
    common::ThreadPool::set_global_threads(threads);
    const auto res = core::lu_functional(xd1_p(3), cfg, a);
    EXPECT_EQ(res.run.seconds, ref.run.seconds) << "threads=" << threads;
    EXPECT_EQ(res.run.bytes_on_network, ref.run.bytes_on_network)
        << "threads=" << threads;
    EXPECT_EQ(res.run.cpu_busy_seconds, ref.run.cpu_busy_seconds)
        << "threads=" << threads;
    EXPECT_EQ(res.run.fpga_busy_seconds, ref.run.fpga_busy_seconds)
        << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(res.factored.view(), ref.factored.view()))
        << "threads=" << threads;
  }
  common::ThreadPool::set_global_threads(1);
}

TEST(Determinism, FwFunctionalInvariantAcrossThreadCounts) {
  const la::Matrix d0 = gr::random_digraph(64, 4321, 0.4);
  core::FwConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;

  common::ThreadPool::set_global_threads(1);
  const auto ref = core::fw_functional(xd1_p(2), cfg, d0);

  for (int threads : {2, 7}) {
    common::ThreadPool::set_global_threads(threads);
    const auto res = core::fw_functional(xd1_p(2), cfg, d0);
    EXPECT_EQ(res.run.seconds, ref.run.seconds) << "threads=" << threads;
    EXPECT_EQ(res.run.bytes_on_network, ref.run.bytes_on_network)
        << "threads=" << threads;
    EXPECT_EQ(res.run.cpu_busy_seconds, ref.run.cpu_busy_seconds)
        << "threads=" << threads;
    EXPECT_EQ(res.run.fpga_busy_seconds, ref.run.fpga_busy_seconds)
        << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(res.distances.view(), ref.distances.view()))
        << "threads=" << threads;
  }
  common::ThreadPool::set_global_threads(1);
}

// The lookahead pipeline replaces barriers with tag-ordered message matching;
// its simulated timings and overlap accounting must stay exactly reproducible
// run-to-run and across pool sizes (§4.3 determinism invariant).
TEST(Determinism, LookaheadScheduleIsReproducible) {
  const la::Matrix a = la::diagonally_dominant(64, 1234);
  core::LuConfig lu;
  lu.n = 64;
  lu.b = 16;
  lu.mode = core::DesignMode::Hybrid;
  lu.lookahead = true;

  const la::Matrix d0 = gr::random_digraph(64, 4321, 0.4);
  core::FwConfig fw;
  fw.n = 64;
  fw.b = 16;
  fw.mode = core::DesignMode::Hybrid;
  fw.lookahead = true;

  common::ThreadPool::set_global_threads(1);
  const auto lu_ref = core::lu_functional(xd1_p(3), lu, a);
  const auto fw_ref = core::fw_functional(xd1_p(2), fw, d0);

  for (int threads : {1, 7}) {
    common::ThreadPool::set_global_threads(threads);
    const auto lu_res = core::lu_functional(xd1_p(3), lu, a);
    EXPECT_EQ(lu_res.run.seconds, lu_ref.run.seconds) << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(lu_res.factored.view(), lu_ref.factored.view()))
        << "threads=" << threads;
    ASSERT_EQ(lu_res.overlap.size(), lu_ref.overlap.size());
    for (const auto& [ph, os] : lu_ref.overlap) {
      EXPECT_EQ(lu_res.overlap.at(ph).hidden_s, os.hidden_s) << ph;
      EXPECT_EQ(lu_res.overlap.at(ph).total_s, os.total_s) << ph;
    }

    const auto fw_res = core::fw_functional(xd1_p(2), fw, d0);
    EXPECT_EQ(fw_res.run.seconds, fw_ref.run.seconds) << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(fw_res.distances.view(), fw_ref.distances.view()))
        << "threads=" << threads;
    for (const auto& [ph, os] : fw_ref.overlap) {
      EXPECT_EQ(fw_res.overlap.at(ph).hidden_s, os.hidden_s) << ph;
      EXPECT_EQ(fw_res.overlap.at(ph).total_s, os.total_s) << ph;
    }
  }
  common::ThreadPool::set_global_threads(1);
}

}  // namespace
