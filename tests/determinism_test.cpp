// Regression: the intra-node parallel runtime must not perturb the simulated
// experiment. lu_functional and fw_functional are re-run at several
// RCS_THREADS-equivalent pool sizes; simulated seconds, network bytes, and
// the factored/closure outputs must be exactly equal — the pool accelerates
// wall-clock only, never the virtual clocks.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "core/system.hpp"
#include "fpga/matmul_array.hpp"
#include "graph/generate.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/simd.hpp"
#include "net/minimpi.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"

namespace core = rcs::core;
namespace common = rcs::common;
namespace la = rcs::linalg;
namespace gr = rcs::graph;
namespace sim = rcs::sim;

namespace {

core::SystemParams xd1_p(int p) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = p;
  return sys;
}

// The kernel-level contract behind every test in this file: gemm, the
// MatMulArray emulation (all four variants), and trsm_left_lower_unit
// produce byte-identical output across every (SIMD path x thread count)
// combination, with threads=1 + scalar dispatch as the reference.
TEST(Determinism, KernelsInvariantAcrossSimdAndThreads) {
  const std::size_t m = 129, k = 257, n = 70;  // ragged, crosses KC/MC/NC
  const la::Matrix a = la::random_matrix(m, k, 11);
  const la::Matrix b = la::random_matrix(k, n, 12);
  const la::Matrix bt = la::random_matrix(n, k, 13);
  const la::Matrix e0 = la::random_matrix(m, n, 14);
  la::Matrix lower = la::random_matrix(m, m, 15);
  for (std::size_t i = 0; i < m; ++i) lower(i, i) = 1.0;
  const la::Matrix rhs = la::random_matrix(m, n, 16);
  const rcs::fpga::MatMulArray array(
      core::SystemParams::cray_xd1().mm_fpga);
  namespace simd = rcs::linalg::simd;
  const simd::Level saved = simd::active_level();

  common::ThreadPool::set_global_threads(1);
  simd::set_level(simd::Level::Scalar);
  la::Matrix gemm_ref = e0;
  la::gemm(a.view(), b.view(), gemm_ref.view());
  la::Matrix mm_ref = e0;
  array.multiply_accumulate(a.view(), b.view(), mm_ref.view());
  la::Matrix mm_nt_ref = e0;
  array.multiply_accumulate_nt(a.view(), bt.view(), mm_nt_ref.view());
  la::Matrix trsm_ref = rhs;
  la::trsm_left_lower_unit(lower.view(), trsm_ref.view());

  for (int lv = 0; lv <= static_cast<int>(simd::max_supported_level());
       ++lv) {
    const simd::Level level = static_cast<simd::Level>(lv);
    simd::set_level(level);
    for (int threads : {1, 2, 7}) {
      common::ThreadPool::set_global_threads(threads);
      const std::string tag = std::string("simd=") + simd::level_name(level) +
                              " threads=" + std::to_string(threads);
      la::Matrix c = e0;
      la::gemm(a.view(), b.view(), c.view());
      EXPECT_TRUE(la::bit_equal(c.view(), gemm_ref.view())) << "gemm " << tag;
      la::Matrix e = e0;
      array.multiply_accumulate(a.view(), b.view(), e.view());
      EXPECT_TRUE(la::bit_equal(e.view(), mm_ref.view())) << "mm " << tag;
      la::Matrix ent = e0;
      array.multiply_accumulate_nt(a.view(), bt.view(), ent.view());
      EXPECT_TRUE(la::bit_equal(ent.view(), mm_nt_ref.view()))
          << "mm_nt " << tag;
      la::Matrix x = rhs;
      la::trsm_left_lower_unit(lower.view(), x.view());
      EXPECT_TRUE(la::bit_equal(x.view(), trsm_ref.view())) << "trsm " << tag;
    }
  }

  // Soft-float variants skip the SIMD engine entirely; check across thread
  // counts at one small shape (the bit-accurate cores are slow).
  simd::set_level(saved);
  common::ThreadPool::set_global_threads(1);
  la::Matrix soft_ref = la::Matrix(17, 9);
  array.multiply_accumulate_soft(a.block(0, 0, 17, 23), b.block(0, 0, 23, 9),
                                 soft_ref.view());
  la::Matrix soft_nt_ref = la::Matrix(17, 9);
  array.multiply_accumulate_nt_soft(a.block(0, 0, 17, 23),
                                    bt.block(0, 0, 9, 23),
                                    soft_nt_ref.view());
  for (int threads : {2, 7}) {
    common::ThreadPool::set_global_threads(threads);
    la::Matrix s(17, 9);
    array.multiply_accumulate_soft(a.block(0, 0, 17, 23),
                                   b.block(0, 0, 23, 9), s.view());
    EXPECT_TRUE(la::bit_equal(s.view(), soft_ref.view()))
        << "soft threads=" << threads;
    la::Matrix snt(17, 9);
    array.multiply_accumulate_nt_soft(a.block(0, 0, 17, 23),
                                      bt.block(0, 0, 9, 23), snt.view());
    EXPECT_TRUE(la::bit_equal(snt.view(), soft_nt_ref.view()))
        << "soft_nt threads=" << threads;
  }
  common::ThreadPool::set_global_threads(1);
}

TEST(Determinism, LuFunctionalInvariantAcrossThreadCounts) {
  const la::Matrix a = la::diagonally_dominant(64, 1234);
  core::LuConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;

  common::ThreadPool::set_global_threads(1);
  const auto ref = core::lu_functional(xd1_p(3), cfg, a);

  for (int threads : {2, 7}) {
    common::ThreadPool::set_global_threads(threads);
    const auto res = core::lu_functional(xd1_p(3), cfg, a);
    EXPECT_EQ(res.run.seconds, ref.run.seconds) << "threads=" << threads;
    EXPECT_EQ(res.run.bytes_on_network, ref.run.bytes_on_network)
        << "threads=" << threads;
    EXPECT_EQ(res.run.cpu_busy_seconds, ref.run.cpu_busy_seconds)
        << "threads=" << threads;
    EXPECT_EQ(res.run.fpga_busy_seconds, ref.run.fpga_busy_seconds)
        << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(res.factored.view(), ref.factored.view()))
        << "threads=" << threads;
  }
  common::ThreadPool::set_global_threads(1);
}

TEST(Determinism, FwFunctionalInvariantAcrossThreadCounts) {
  const la::Matrix d0 = gr::random_digraph(64, 4321, 0.4);
  core::FwConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;

  common::ThreadPool::set_global_threads(1);
  const auto ref = core::fw_functional(xd1_p(2), cfg, d0);

  for (int threads : {2, 7}) {
    common::ThreadPool::set_global_threads(threads);
    const auto res = core::fw_functional(xd1_p(2), cfg, d0);
    EXPECT_EQ(res.run.seconds, ref.run.seconds) << "threads=" << threads;
    EXPECT_EQ(res.run.bytes_on_network, ref.run.bytes_on_network)
        << "threads=" << threads;
    EXPECT_EQ(res.run.cpu_busy_seconds, ref.run.cpu_busy_seconds)
        << "threads=" << threads;
    EXPECT_EQ(res.run.fpga_busy_seconds, ref.run.fpga_busy_seconds)
        << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(res.distances.view(), ref.distances.view()))
        << "threads=" << threads;
  }
  common::ThreadPool::set_global_threads(1);
}

// The lookahead pipeline replaces barriers with tag-ordered message matching;
// its simulated timings and overlap accounting must stay exactly reproducible
// run-to-run and across pool sizes (§4.3 determinism invariant).
TEST(Determinism, LookaheadScheduleIsReproducible) {
  const la::Matrix a = la::diagonally_dominant(64, 1234);
  core::LuConfig lu;
  lu.n = 64;
  lu.b = 16;
  lu.mode = core::DesignMode::Hybrid;
  lu.lookahead = true;

  const la::Matrix d0 = gr::random_digraph(64, 4321, 0.4);
  core::FwConfig fw;
  fw.n = 64;
  fw.b = 16;
  fw.mode = core::DesignMode::Hybrid;
  fw.lookahead = true;

  common::ThreadPool::set_global_threads(1);
  const auto lu_ref = core::lu_functional(xd1_p(3), lu, a);
  const auto fw_ref = core::fw_functional(xd1_p(2), fw, d0);

  for (int threads : {1, 7}) {
    common::ThreadPool::set_global_threads(threads);
    const auto lu_res = core::lu_functional(xd1_p(3), lu, a);
    EXPECT_EQ(lu_res.run.seconds, lu_ref.run.seconds) << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(lu_res.factored.view(), lu_ref.factored.view()))
        << "threads=" << threads;
    ASSERT_EQ(lu_res.overlap.size(), lu_ref.overlap.size());
    for (const auto& [ph, os] : lu_ref.overlap) {
      EXPECT_EQ(lu_res.overlap.at(ph).hidden_s, os.hidden_s) << ph;
      EXPECT_EQ(lu_res.overlap.at(ph).total_s, os.total_s) << ph;
    }

    const auto fw_res = core::fw_functional(xd1_p(2), fw, d0);
    EXPECT_EQ(fw_res.run.seconds, fw_ref.run.seconds) << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(fw_res.distances.view(), fw_ref.distances.view()))
        << "threads=" << threads;
    for (const auto& [ph, os] : fw_ref.overlap) {
      EXPECT_EQ(fw_res.overlap.at(ph).hidden_s, os.hidden_s) << ph;
      EXPECT_EQ(fw_res.overlap.at(ph).total_s, os.total_s) << ph;
    }
  }
  common::ThreadPool::set_global_threads(1);
}

// Faulted runs must replay byte-identically: the same FaultPlan seed gives
// the same injections, the same recoveries, the same simulated trace, and
// bit-identical outputs — across repeated runs and across pool sizes.
TEST(Determinism, FaultPlanReplayIsByteIdentical) {
  const la::Matrix a = la::diagonally_dominant(64, 1234);
  const la::Matrix d0 = gr::random_digraph(64, 4321, 0.4);

  // A plan exercising every event class the functional planes inject
  // (slowdowns, degraded links, bit-flips) — no crashes, so the runs
  // complete and their outputs can be compared.
  sim::FaultSpec spec;
  spec.ranks = 3;
  spec.seed = 99;
  spec.horizon_s = 0.5;
  spec.slowdown_windows = 2;
  spec.link_faults = 2;
  spec.link_extra_latency_max_s = 1e-3;
  spec.link_jitter_max_s = 1e-4;
  spec.bitflips = 3;
  spec.bitflip_max_call = 8;
  const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
  // Regenerating from the same spec gives the same plan (seeded sampling).
  const sim::FaultPlan replay = sim::FaultPlan::generate(spec);
  ASSERT_EQ(replay.bitflip_count(), plan.bitflip_count());
  for (std::size_t i = 0; i < plan.bitflips().size(); ++i) {
    EXPECT_EQ(replay.bitflips()[i].rank, plan.bitflips()[i].rank);
    EXPECT_EQ(replay.bitflips()[i].call, plan.bitflips()[i].call);
    EXPECT_EQ(replay.bitflips()[i].bit, plan.bitflips()[i].bit);
  }

  core::LuConfig lu;
  lu.n = 64;
  lu.b = 16;
  lu.mode = core::DesignMode::Hybrid;
  lu.faults = &plan;
  lu.fault_tolerance = true;
  lu.straggler_timeout_s = 10.0;

  core::FwConfig fw;
  fw.n = 64;
  fw.b = 16;
  fw.mode = core::DesignMode::Hybrid;
  fw.faults = &plan;
  fw.fault_tolerance = true;

  const auto trace_csv = [](sim::TraceRecorder& rec) {
    std::ostringstream os;
    rec.write_csv(os);
    return os.str();
  };

  common::ThreadPool::set_global_threads(1);
  sim::TraceRecorder lu_rec(true);
  const auto lu_ref = core::lu_functional(xd1_p(3), lu, a, false, &lu_rec);
  const std::string lu_trace = trace_csv(lu_rec);
  sim::TraceRecorder fw_rec(true);
  const auto fw_ref = core::fw_functional(xd1_p(2), fw, d0, false, &fw_rec);
  const std::string fw_trace = trace_csv(fw_rec);

  for (int threads : {1, 2, 7}) {
    common::ThreadPool::set_global_threads(threads);

    sim::TraceRecorder rec(true);
    const auto res = core::lu_functional(xd1_p(3), lu, a, false, &rec);
    EXPECT_EQ(res.run.seconds, lu_ref.run.seconds) << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(res.factored.view(), lu_ref.factored.view()))
        << "threads=" << threads;
    EXPECT_EQ(trace_csv(rec), lu_trace) << "threads=" << threads;
    // Fault accounting is part of the replay contract.
    EXPECT_EQ(res.faults.bitflips_injected, lu_ref.faults.bitflips_injected);
    EXPECT_EQ(res.faults.slowdown_hits, lu_ref.faults.slowdown_hits);
    EXPECT_EQ(res.faults.slowdown_added_s, lu_ref.faults.slowdown_added_s);
    EXPECT_EQ(res.faults.link_hits, lu_ref.faults.link_hits);
    EXPECT_EQ(res.faults.link_added_s, lu_ref.faults.link_added_s);
    EXPECT_EQ(res.faults.detected, lu_ref.faults.detected);
    EXPECT_EQ(res.faults.corrected_elements, lu_ref.faults.corrected_elements);
    EXPECT_EQ(res.faults.reissued_blocks, lu_ref.faults.reissued_blocks);
    EXPECT_EQ(res.faults.straggler_reissues, lu_ref.faults.straggler_reissues);
    EXPECT_EQ(res.faults.recovery_cpu_s, lu_ref.faults.recovery_cpu_s);
    EXPECT_EQ(res.faults.mttr_s, lu_ref.faults.mttr_s);

    sim::TraceRecorder frec(true);
    const auto fres = core::fw_functional(xd1_p(2), fw, d0, false, &frec);
    EXPECT_EQ(fres.run.seconds, fw_ref.run.seconds) << "threads=" << threads;
    EXPECT_TRUE(la::bit_equal(fres.distances.view(), fw_ref.distances.view()))
        << "threads=" << threads;
    EXPECT_EQ(trace_csv(frec), fw_trace) << "threads=" << threads;
    EXPECT_EQ(fres.faults.bitflips_injected, fw_ref.faults.bitflips_injected);
    EXPECT_EQ(fres.faults.detected, fw_ref.faults.detected);
    EXPECT_EQ(fres.faults.reissued_blocks, fw_ref.faults.reissued_blocks);
    EXPECT_EQ(fres.faults.recovery_cpu_s, fw_ref.faults.recovery_cpu_s);
    EXPECT_EQ(fres.faults.mttr_s, fw_ref.faults.mttr_s);
  }
  common::ThreadPool::set_global_threads(1);
}

// The rank scheduler must be invisible to the simulation: multiplexing the
// ranks as fibers over 1, 2, or 7 worker loops produces the same simulated
// clocks, bit-identical outputs, and a byte-identical trace CSV as the
// thread-per-rank baseline. This is the p<=8 byte-identity contract that
// lets large-p worlds default to fibers without a semantic escape hatch.
TEST(Determinism, RankSchedulerInvariantAcrossMaxWorkers) {
  const la::Matrix a = la::diagonally_dominant(64, 1234);
  const la::Matrix d0 = gr::random_digraph(64, 4321, 0.4);

  core::LuConfig lu;
  lu.n = 64;
  lu.b = 16;
  lu.mode = core::DesignMode::Hybrid;

  core::FwConfig fw;
  fw.n = 64;
  fw.b = 16;
  fw.mode = core::DesignMode::Hybrid;

  const auto trace_csv = [](sim::TraceRecorder& rec) {
    std::ostringstream os;
    rec.write_csv(os);
    return os.str();
  };

  // Baseline: the pre-scheduler execution model, one OS thread per rank.
  common::ThreadPool::set_global_threads(2);
  lu.max_workers = rcs::net::World::kThreadPerRank;
  fw.max_workers = rcs::net::World::kThreadPerRank;
  sim::TraceRecorder lu_rec(true);
  const auto lu_ref = core::lu_functional(xd1_p(3), lu, a, false, &lu_rec);
  const std::string lu_trace = trace_csv(lu_rec);
  sim::TraceRecorder fw_rec(true);
  const auto fw_ref = core::fw_functional(xd1_p(2), fw, d0, false, &fw_rec);
  const std::string fw_trace = trace_csv(fw_rec);

  for (int workers : {1, 2, 7}) {
    lu.max_workers = workers;
    fw.max_workers = workers;

    sim::TraceRecorder rec(true);
    const auto res = core::lu_functional(xd1_p(3), lu, a, false, &rec);
    EXPECT_EQ(res.run.seconds, lu_ref.run.seconds) << "workers=" << workers;
    EXPECT_EQ(res.run.bytes_on_network, lu_ref.run.bytes_on_network)
        << "workers=" << workers;
    EXPECT_TRUE(la::bit_equal(res.factored.view(), lu_ref.factored.view()))
        << "workers=" << workers;
    EXPECT_EQ(trace_csv(rec), lu_trace) << "workers=" << workers;

    sim::TraceRecorder frec(true);
    const auto fres = core::fw_functional(xd1_p(2), fw, d0, false, &frec);
    EXPECT_EQ(fres.run.seconds, fw_ref.run.seconds) << "workers=" << workers;
    EXPECT_EQ(fres.run.bytes_on_network, fw_ref.run.bytes_on_network)
        << "workers=" << workers;
    EXPECT_TRUE(la::bit_equal(fres.distances.view(), fw_ref.distances.view()))
        << "workers=" << workers;
    EXPECT_EQ(trace_csv(frec), fw_trace) << "workers=" << workers;
  }
  common::ThreadPool::set_global_threads(1);
}

}  // namespace
