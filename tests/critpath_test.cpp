// Tests for the critical-path analyzer (obs::cp) and its core bridge:
// exact-match attribution on hand-built timelines with a known critical
// path, structural invariants on real LU/FW runs, and byte-identical
// analysis output across pool sizes and across repeated runs of a reused
// World.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/analysis.hpp"
#include "core/drift.hpp"
#include "core/system.hpp"
#include "graph/generate.hpp"
#include "linalg/generate.hpp"
#include "net/minimpi.hpp"
#include "obs/critpath.hpp"
#include "sim/trace.hpp"

namespace cp = rcs::obs::cp;
namespace core = rcs::core;
namespace net = rcs::net;
namespace sim = rcs::sim;
namespace common = rcs::common;

namespace {

cp::Interval interval(int rank, double start, double end, cp::Bucket bucket,
                      const char* label) {
  cp::Interval iv;
  iv.rank = rank;
  iv.start = start;
  iv.end = end;
  iv.bucket = bucket;
  iv.label = label;
  return iv;
}

cp::Interval comm_interval(int rank, double start, double end, cp::Op op,
                           int peer, double depart, double arrival,
                           const char* label) {
  cp::Interval iv = interval(rank, start, end, cp::Bucket::TransferVisible,
                             label);
  iv.op = op;
  iv.peer = peer;
  iv.depart = depart;
  iv.arrival = arrival;
  return iv;
}

std::string analysis_json(const cp::Analysis& an) {
  std::ostringstream os;
  an.write_json(os);
  return os.str();
}

/// Two ranks, makespan 10, one message whose arrival binds the receiver:
///   rank 0: cpu "a" [0,4]; send [4,5] (wire departs 4, arrives 6); cpu
///           "b" [5,7]; idle [7,10]
///   rank 1: cpu "c" [0,2]; recv [2,6] (arrival-bound); cpu "d" [6,10]
/// The critical path is a(0-4 on 0) -> wire(4-6) -> d(6-10 on 1).
cp::Timeline known_timeline() {
  cp::Timeline tl;
  tl.ranks = 2;
  tl.makespan = 10.0;
  tl.intervals.push_back(interval(0, 0.0, 4.0, cp::Bucket::Cpu, "a"));
  tl.intervals.push_back(
      comm_interval(0, 4.0, 5.0, cp::Op::Send, 1, 4.0, 6.0, "send"));
  tl.intervals.push_back(interval(0, 5.0, 7.0, cp::Bucket::Cpu, "b"));
  tl.intervals.push_back(interval(1, 0.0, 2.0, cp::Bucket::Cpu, "c"));
  tl.intervals.push_back(
      comm_interval(1, 2.0, 6.0, cp::Op::Recv, 0, 4.0, 6.0, "recv"));
  tl.intervals.push_back(interval(1, 6.0, 10.0, cp::Bucket::Cpu, "d"));
  tl.wires.push_back(cp::Wire{0, 1, 4.0, 6.0, 100});
  return tl;
}

TEST(CritPath, KnownTimelineBucketsExactly) {
  const cp::Analysis an = cp::analyze(known_timeline());
  ASSERT_EQ(an.ranks, 2);
  EXPECT_DOUBLE_EQ(an.makespan_s, 10.0);

  ASSERT_EQ(an.per_rank.size(), 2u);
  const cp::RankAttribution& r0 = an.per_rank[0];
  EXPECT_DOUBLE_EQ(r0.cpu_s, 6.0);            // a (4) + b (2)
  EXPECT_DOUBLE_EQ(r0.fpga_s, 0.0);
  EXPECT_DOUBLE_EQ(r0.transfer_visible_s, 1.0);  // send setup [4,5]
  EXPECT_DOUBLE_EQ(r0.fault_recovery_s, 0.0);
  EXPECT_DOUBLE_EQ(r0.wait_idle_s, 3.0);      // [7,10]
  EXPECT_DOUBLE_EQ(r0.finish_s, 7.0);
  EXPECT_DOUBLE_EQ(r0.utilization, 0.7);
  EXPECT_DOUBLE_EQ(r0.transfer_hidden_s, 0.0);

  const cp::RankAttribution& r1 = an.per_rank[1];
  EXPECT_DOUBLE_EQ(r1.cpu_s, 6.0);               // c (2) + d (4)
  EXPECT_DOUBLE_EQ(r1.transfer_visible_s, 4.0);  // recv wait [2,6]
  EXPECT_DOUBLE_EQ(r1.wait_idle_s, 0.0);
  EXPECT_DOUBLE_EQ(r1.finish_s, 10.0);
  EXPECT_DOUBLE_EQ(r1.utilization, 1.0);
  // Wire [4,6] was entirely visible to the waiting receiver: nothing hidden.
  EXPECT_DOUBLE_EQ(r1.transfer_hidden_s, 0.0);

  // Partition: every rank's buckets must sum to the makespan, exactly here.
  EXPECT_TRUE(an.buckets_sum_to_makespan);
  EXPECT_DOUBLE_EQ(an.max_bucket_sum_rel_err, 0.0);

  // busy = 7 and 10 -> resource-seconds adds the 2 s wire.
  EXPECT_DOUBLE_EQ(an.resource_seconds_s, 19.0);
  EXPECT_DOUBLE_EQ(an.mean_utilization, 0.85);
  EXPECT_DOUBLE_EQ(an.imbalance_max_over_mean, 10.0 / 8.5);
  EXPECT_DOUBLE_EQ(an.jain_fairness, 17.0 * 17.0 / (2.0 * 149.0));
}

TEST(CritPath, KnownTimelineCriticalPathExactly) {
  const cp::Analysis an = cp::analyze(known_timeline());
  EXPECT_DOUBLE_EQ(an.critical_path_s, 10.0);
  EXPECT_DOUBLE_EQ(an.cp_idle_s, 0.0);
  EXPECT_TRUE(an.invariants_hold());

  ASSERT_EQ(an.critical_path.size(), 3u);
  const cp::Segment& s0 = an.critical_path[0];
  EXPECT_EQ(s0.kind, "cpu");
  EXPECT_EQ(s0.rank, 0);
  EXPECT_EQ(s0.label, "a");
  EXPECT_DOUBLE_EQ(s0.start, 0.0);
  EXPECT_DOUBLE_EQ(s0.end, 4.0);

  const cp::Segment& s1 = an.critical_path[1];
  EXPECT_EQ(s1.kind, "wire");
  EXPECT_EQ(s1.rank, 0);  // sender
  EXPECT_EQ(s1.peer, 1);  // receiver
  EXPECT_DOUBLE_EQ(s1.start, 4.0);
  EXPECT_DOUBLE_EQ(s1.end, 6.0);

  const cp::Segment& s2 = an.critical_path[2];
  EXPECT_EQ(s2.kind, "cpu");
  EXPECT_EQ(s2.rank, 1);
  EXPECT_EQ(s2.label, "d");
  EXPECT_DOUBLE_EQ(s2.start, 6.0);
  EXPECT_DOUBLE_EQ(s2.end, 10.0);
}

TEST(CritPath, RecoveryAndFpgaBucketsAndIdleTail) {
  cp::Timeline tl;
  tl.ranks = 1;
  tl.makespan = 10.0;
  tl.intervals.push_back(interval(0, 0.0, 2.0, cp::Bucket::Cpu, "x"));
  tl.intervals.push_back(
      interval(0, 2.0, 5.0, cp::Bucket::FaultRecovery, "abft.repair"));
  tl.intervals.push_back(interval(0, 5.0, 9.0, cp::Bucket::Fpga,
                                  "fpga.wait"));
  tl.concurrent_fpga_s = 4.0;  // device busy span backing the exposed wait

  const cp::Analysis an = cp::analyze(tl);
  const cp::RankAttribution& r0 = an.per_rank[0];
  EXPECT_DOUBLE_EQ(r0.cpu_s, 2.0);
  EXPECT_DOUBLE_EQ(r0.fault_recovery_s, 3.0);
  EXPECT_DOUBLE_EQ(r0.fpga_s, 4.0);
  EXPECT_DOUBLE_EQ(r0.wait_idle_s, 1.0);  // [9,10]
  EXPECT_TRUE(an.buckets_sum_to_makespan);

  // Walk: idle tail [9,10], then fpga, recovery, cpu.
  EXPECT_DOUBLE_EQ(an.critical_path_s, 9.0);
  EXPECT_DOUBLE_EQ(an.cp_idle_s, 1.0);
  ASSERT_EQ(an.critical_path.size(), 4u);
  EXPECT_EQ(an.critical_path[0].kind, "cpu");
  EXPECT_EQ(an.critical_path[1].kind, "recovery");
  EXPECT_EQ(an.critical_path[2].kind, "fpga");
  EXPECT_EQ(an.critical_path[3].kind, "idle");

  // busy 9 + device 4 = 13 resource-seconds.
  EXPECT_DOUBLE_EQ(an.resource_seconds_s, 13.0);
  EXPECT_TRUE(an.invariants_hold());
}

TEST(CritPath, ZeroLengthRecvCarriesHiddenTransfer) {
  cp::Timeline tl;
  tl.ranks = 1;
  tl.makespan = 10.0;
  tl.intervals.push_back(interval(0, 0.0, 10.0, cp::Bucket::Cpu, "busy"));
  // Fully hidden transfer: the wait found the message already arrived, so
  // the recv interval is zero-length and contributes no visible time.
  tl.intervals.push_back(
      comm_interval(0, 5.0, 5.0, cp::Op::Recv, 0, 3.0, 5.0, "recv"));

  const cp::Analysis an = cp::analyze(tl);
  const cp::RankAttribution& r0 = an.per_rank[0];
  EXPECT_DOUBLE_EQ(r0.transfer_visible_s, 0.0);
  EXPECT_DOUBLE_EQ(r0.transfer_hidden_s, 2.0);
  EXPECT_DOUBLE_EQ(r0.cpu_s, 10.0);
  EXPECT_TRUE(an.buckets_sum_to_makespan);
  EXPECT_TRUE(an.invariants_hold());
}

TEST(CritPath, EmptyTimelineIsHarmless) {
  cp::Timeline tl;
  const cp::Analysis an = cp::analyze(tl);
  EXPECT_EQ(an.ranks, 0);
  EXPECT_DOUBLE_EQ(an.critical_path_s, 0.0);
  EXPECT_TRUE(an.critical_path.empty());
}

// --- Real runs: invariants asserted on LU and FW drift reports -------------

void expect_invariants(const cp::Analysis& an) {
  const double mk = an.makespan_s;
  ASSERT_GT(mk, 0.0);
  const double tol = mk * 1e-9 + 1e-12;
  EXPECT_LE(an.critical_path_s, mk + tol);
  EXPECT_LE(mk, an.resource_seconds_s + tol);
  EXPECT_TRUE(an.cp_le_makespan);
  EXPECT_TRUE(an.makespan_le_resource_seconds);
  EXPECT_TRUE(an.buckets_sum_to_makespan);
  for (const cp::RankAttribution& ra : an.per_rank) {
    const double sum = ra.cpu_s + ra.fpga_s + ra.transfer_visible_s +
                       ra.fault_recovery_s + ra.wait_idle_s;
    EXPECT_NEAR(sum, mk, mk * 1e-6) << "rank " << ra.rank;
  }
}

core::DriftReport lu_report() {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 3;
  core::LuConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;
  const rcs::linalg::Matrix a = rcs::linalg::diagonally_dominant(64, 42);
  return core::lu_drift_report(sys, cfg, a);
}

core::DriftReport fw_report() {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 2;
  core::FwConfig cfg;
  cfg.n = 48;
  cfg.b = 8;
  cfg.mode = core::DesignMode::Hybrid;
  const rcs::linalg::Matrix d0 = rcs::graph::random_digraph(48, 7, 0.4);
  return core::fw_drift_report(sys, cfg, d0);
}

TEST(CritPathRuns, LuInvariantsHold) {
  const core::DriftReport rep = lu_report();
  EXPECT_EQ(rep.analysis.ranks, 3);
  expect_invariants(rep.analysis);
  EXPECT_FALSE(rep.analysis.critical_path.empty());
}

TEST(CritPathRuns, FwInvariantsHold) {
  const core::DriftReport rep = fw_report();
  EXPECT_EQ(rep.analysis.ranks, 2);
  expect_invariants(rep.analysis);
  EXPECT_FALSE(rep.analysis.critical_path.empty());
}

TEST(CritPathRuns, LuLookaheadInvariantsHold) {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 3;
  core::LuConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;
  cfg.lookahead = true;
  const rcs::linalg::Matrix a = rcs::linalg::diagonally_dominant(64, 42);
  const core::DriftReport rep = core::lu_drift_report(sys, cfg, a);
  expect_invariants(rep.analysis);
}

// --- Determinism ------------------------------------------------------------

TEST(CritPathDeterminism, AnalysisJsonIdenticalAcrossPoolSizes) {
  std::vector<std::string> outputs;
  for (int threads : {1, 2, 7}) {
    common::ThreadPool::set_global_threads(threads);
    outputs.push_back(analysis_json(lu_report().analysis));
  }
  common::ThreadPool::set_global_threads(1);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(CritPathDeterminism, AnalysisJsonIdenticalAcrossReusedWorldRuns) {
  net::NetworkParams np;
  np.bytes_per_s = 1e9;
  np.latency_s = 1e-6;
  net::World world(2, np);

  auto run_once = [&world]() {
    std::vector<sim::TraceRecorder> traces;
    traces.emplace_back(true);
    traces.emplace_back(true);
    world.run([&traces](net::Comm& comm) {
      comm.set_trace(&traces[static_cast<std::size_t>(comm.rank())]);
      if (comm.rank() == 0) {
        std::vector<double> payload(1024, 1.0);
        comm.send_doubles(1, 5, payload.data(), payload.size());
        comm.barrier();
      } else {
        comm.clock().advance(1e-5);  // busy before the wait
        (void)comm.recv(0, 5, "phase1");
        comm.barrier();
      }
    });
    sim::TraceRecorder merged(true);
    for (sim::TraceRecorder& t : traces) merged.merge_from(std::move(t));
    return analysis_json(core::analyze_run(merged, 2, world.makespan()));
  };

  const std::string first = run_once();
  const std::string second = run_once();
  const std::string third = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
}

}  // namespace
