// Tests for the analytic schedule simulators and the §4.5 predictor: the
// paper-scale behaviours (Fig. 5-9 shapes) expressed as assertions.

#include <gtest/gtest.h>

#include "core/fw_analytic.hpp"
#include "core/lu_analytic.hpp"
#include "core/predict.hpp"

namespace core = rcs::core;
using core::DesignMode;
using core::SystemParams;

namespace {

const SystemParams& xd1() {
  static const SystemParams sys = SystemParams::cray_xd1();
  return sys;
}

core::LuConfig lu_cfg(DesignMode mode, long long n = 30000,
                      long long b = 3000) {
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = mode;
  return cfg;
}

core::FwConfig fw_cfg(DesignMode mode, long long n = 92160,
                      long long b = 256) {
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = mode;
  return cfg;
}

// ---------------------------------------------------------------------------
// LU

TEST(LuAnalytic, HybridReachesPaperScaleGflops) {
  const auto rep = core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid));
  // Paper: 20 GFLOPS at n = 30000, b = 3000. The simulator must land in the
  // same regime (the paper's own implementation reaches 86% of its model).
  EXPECT_GT(rep.run.gflops(), 15.0);
  EXPECT_LT(rep.run.gflops(), 28.0);
}

TEST(LuAnalytic, HybridBeatsBothBaselines) {
  const auto hybrid = core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid));
  const auto cpu = core::lu_analytic(xd1(), lu_cfg(DesignMode::ProcessorOnly));
  const auto fpga = core::lu_analytic(xd1(), lu_cfg(DesignMode::FpgaOnly));
  EXPECT_GT(hybrid.run.gflops(), cpu.run.gflops());
  EXPECT_GT(hybrid.run.gflops(), fpga.run.gflops());
  // Fig. 9 ordering: processor-only beats FPGA-only for LU (3.9 vs 2.08
  // GFLOPS of per-node compute power).
  EXPECT_GT(cpu.run.gflops(), fpga.run.gflops());
  // Speedup bands around the paper's 1.3x / 2x.
  const double s_cpu = hybrid.run.seconds > 0
                           ? cpu.run.seconds / hybrid.run.seconds
                           : 0.0;
  const double s_fpga = fpga.run.seconds / hybrid.run.seconds;
  EXPECT_GT(s_cpu, 1.05);
  EXPECT_LT(s_cpu, 1.8);
  EXPECT_GT(s_fpga, 1.5);
  EXPECT_LT(s_fpga, 3.0);
}

TEST(LuAnalytic, HybridCapturesMostOfBaselineSum) {
  // Section 6.2: the hybrid reaches ~80% of the sum of the two baselines.
  const auto hybrid = core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid));
  const auto cpu = core::lu_analytic(xd1(), lu_cfg(DesignMode::ProcessorOnly));
  const auto fpga = core::lu_analytic(xd1(), lu_cfg(DesignMode::FpgaOnly));
  const double frac =
      hybrid.run.gflops() / (cpu.run.gflops() + fpga.run.gflops());
  EXPECT_GT(frac, 0.60);
  EXPECT_LT(frac, 1.00);
}

TEST(LuAnalytic, GflopsGrowWithBlockCount) {
  // Fig. 8: performance increases with n/b because opMM's share grows.
  double prev = 0.0;
  for (long long nb : {2, 4, 6, 8, 10}) {
    const auto rep =
        core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid, 3000 * nb));
    EXPECT_GT(rep.run.gflops(), prev) << "n/b = " << nb;
    prev = rep.run.gflops();
  }
}

TEST(LuAnalytic, Fig5CurveIsUShaped) {
  // Latency of one block MM falls from b_f = 0 to the optimum, then rises
  // past it; FPGA-only (b_f = b) is worse than processor-only (b_f = 0).
  const auto at = [&](long long bf) {
    return core::lu_single_opmm_latency(xd1(), 3000, bf,
                                        core::SendFanout::SerialAll);
  };
  const long long opt = core::solve_mm_partition(xd1(), 3000).b_f;
  EXPECT_LT(at(opt), at(0));
  EXPECT_LT(at(opt), at(3000));
  EXPECT_LT(at(0), at(3000));
  // Monotone decrease towards the optimum from both sides (sampled).
  EXPECT_GT(at(256), at(512));
  EXPECT_GT(at(512), at(opt));
  EXPECT_LT(at(opt), at(2048));
  EXPECT_LT(at(2048), at(2944));
}

TEST(LuAnalytic, Fig6InterleaveSweepHasInteriorMinimum) {
  // Fig. 6: iteration-0 latency falls from l = 0, bottoms out around the
  // Eq. 5 solution, and does not blow up through l = 5.
  auto iter0 = [&](int l) {
    core::LuConfig cfg = lu_cfg(DesignMode::Hybrid);
    cfg.l = l;
    cfg.max_iterations = 1;
    return core::lu_analytic(xd1(), cfg).run.seconds;
  };
  const double l0 = iter0(0);
  const auto li = core::solve_lu_interleave(
      xd1(), 3000, core::solve_mm_partition(xd1(), 3000),
      core::SendFanout::SerialAll);
  const double lopt = iter0(li.l);
  EXPECT_LT(lopt, l0);          // interleaving helps
  EXPECT_LT(iter0(1), l0);      // even a little helps
  EXPECT_GE(iter0(1), lopt - 1e-9);
  // Past the optimum the curve stays within a few percent (paper: "the
  // increase is not noticeable until l = 5").
  EXPECT_LT(iter0(li.l + 2), lopt * 1.10);
}

TEST(LuAnalytic, IterationLatenciesShrinkOverTime) {
  const auto rep = core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid));
  ASSERT_EQ(rep.iteration_seconds.size(), 10u);
  // The trailing matrix shrinks every iteration.
  EXPECT_GT(rep.iteration_seconds.front(), rep.iteration_seconds[8]);
  // The last iteration is just the final opLU.
  EXPECT_NEAR(rep.iteration_seconds.back(), 4.9, 0.1);
}

TEST(LuAnalytic, FlopAccountingMatchesClosedForm) {
  const auto rep = core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid));
  // Task-decomposed flops approach (2/3) n^3 (the opMS term adds O(n^2 b)).
  const double n = 30000.0;
  EXPECT_NEAR(rep.run.total_flops, (2.0 / 3.0) * n * n * n,
              0.02 * (2.0 / 3.0) * n * n * n);
}

TEST(LuAnalytic, ProcessorOnlyHasNoFpgaWork) {
  const auto rep =
      core::lu_analytic(xd1(), lu_cfg(DesignMode::ProcessorOnly));
  EXPECT_EQ(rep.run.fpga_flops, 0.0);
  EXPECT_EQ(rep.run.coordination_events, 0u);
}

TEST(LuAnalytic, RequiresDivisibleBlocks) {
  EXPECT_THROW(core::lu_analytic(xd1(), lu_cfg(DesignMode::Hybrid, 30001)),
               rcs::Error);
}

TEST(LuAnalytic, LookaheadNeverSlower) {
  const auto cfg = lu_cfg(DesignMode::Hybrid);
  auto ahead = cfg;
  ahead.lookahead = true;
  const auto barriered = core::lu_analytic(xd1(), cfg);
  const auto look = core::lu_analytic(xd1(), ahead);
  EXPECT_LE(look.run.seconds, barriered.run.seconds * 1.0001);
  // With the paper's parameters the barrier costs real time.
  EXPECT_LT(look.run.seconds, barriered.run.seconds * 0.99);
  // Lookahead closes part of the gap to the §4.5 prediction.
  const auto pred = core::predict_lu(xd1(), cfg);
  EXPECT_GT(look.run.gflops() / pred.gflops(),
            barriered.run.gflops() / pred.gflops());
}

TEST(LuAnalytic, LookaheadStillBoundedByPrediction) {
  auto cfg = lu_cfg(DesignMode::Hybrid);
  cfg.lookahead = true;
  const auto look = core::lu_analytic(xd1(), cfg);
  const auto pred = core::predict_lu(xd1(), cfg);
  EXPECT_LE(pred.latency_seconds(), look.run.seconds * 1.01);
}

// ---------------------------------------------------------------------------
// Floyd–Warshall

TEST(FwAnalytic, HybridReachesPaperScaleGflops) {
  const auto rep = core::fw_analytic(xd1(), fw_cfg(DesignMode::Hybrid));
  // Paper: 6.6 GFLOPS at n = 92160, b = 256.
  EXPECT_GT(rep.run.gflops(), 5.0);
  EXPECT_LT(rep.run.gflops(), 8.0);
}

TEST(FwAnalytic, SpeedupsMatchFig9Shape) {
  const auto hybrid = core::fw_analytic(xd1(), fw_cfg(DesignMode::Hybrid));
  const auto cpu =
      core::fw_analytic(xd1(), fw_cfg(DesignMode::ProcessorOnly));
  const auto fpga = core::fw_analytic(xd1(), fw_cfg(DesignMode::FpgaOnly));
  // FPGA-only beats processor-only for FW (1.92 vs 0.19 GFLOPS per node).
  EXPECT_GT(fpga.run.gflops(), cpu.run.gflops());
  // Paper: 5.8x over processor-only, 1.15x over FPGA-only.
  const double s_cpu = cpu.run.seconds / hybrid.run.seconds;
  const double s_fpga = fpga.run.seconds / hybrid.run.seconds;
  EXPECT_GT(s_cpu, 4.0);
  EXPECT_LT(s_cpu, 8.0);
  EXPECT_GT(s_fpga, 1.02);
  EXPECT_LT(s_fpga, 1.5);
}

TEST(FwAnalytic, HybridCapturesMostOfBaselineSum) {
  // Section 6.2: >= 95% of the baselines' sum for FW.
  const auto hybrid = core::fw_analytic(xd1(), fw_cfg(DesignMode::Hybrid));
  const auto cpu =
      core::fw_analytic(xd1(), fw_cfg(DesignMode::ProcessorOnly));
  const auto fpga = core::fw_analytic(xd1(), fw_cfg(DesignMode::FpgaOnly));
  const double frac =
      hybrid.run.gflops() / (cpu.run.gflops() + fpga.run.gflops());
  EXPECT_GT(frac, 0.85);
  EXPECT_LT(frac, 1.05);
}

TEST(FwAnalytic, GflopsRoughlyConstantInN) {
  // Section 6.2: FW performance is nearly independent of problem size.
  const auto small = core::fw_analytic(
      xd1(), fw_cfg(DesignMode::Hybrid, 256 * 6 * 6));
  const auto large = core::fw_analytic(
      xd1(), fw_cfg(DesignMode::Hybrid, 256 * 6 * 24));
  EXPECT_NEAR(small.run.gflops() / large.run.gflops(), 1.0, 0.25);
}

TEST(FwAnalytic, Fig7SweepShapes) {
  // Fig. 7 at n = 18432, b = 256: minimum at l1 = 2; l1 = 1 overloads the
  // FPGA; FPGA-only (l1 = 0) beats several hybrid points.
  auto iter1 = [&](long long l1) {
    core::FwConfig cfg = fw_cfg(DesignMode::Hybrid, 18432);
    cfg.l1 = l1;
    cfg.max_iterations = 1;
    return core::fw_analytic(xd1(), cfg).run.seconds;
  };
  const double at2 = iter1(2);
  EXPECT_LT(at2, iter1(12));  // far better than CPU-only
  EXPECT_LT(at2, iter1(6));
  EXPECT_LT(at2, iter1(4));
  EXPECT_LT(at2, iter1(1));   // l1 = 1 overloads the FPGA
  EXPECT_LT(at2, iter1(0));   // and beats FPGA-only, slightly
  // FPGA-only beats mid-range hybrid splits (paper's observation).
  EXPECT_LT(iter1(0), iter1(4));
  // Latency decreases monotonically from l1 = 12 down to the optimum.
  EXPECT_GT(iter1(12), iter1(8));
  EXPECT_GT(iter1(8), iter1(4));
  EXPECT_GT(iter1(4), iter1(2));
}

TEST(FwAnalytic, FlopAccountingIs2NCubed) {
  const auto rep = core::fw_analytic(xd1(), fw_cfg(DesignMode::Hybrid));
  const double n = 92160.0;
  EXPECT_NEAR(rep.run.total_flops, 2.0 * n * n * n, 1e-6 * 2.0 * n * n * n);
}

TEST(FwAnalytic, ProcessorOnlyHasNoFpgaWork) {
  const auto rep =
      core::fw_analytic(xd1(), fw_cfg(DesignMode::ProcessorOnly));
  EXPECT_EQ(rep.run.fpga_flops, 0.0);
}

TEST(FwAnalytic, TreeBcastHelpsAndPreservesShape) {
  auto cfg = fw_cfg(DesignMode::Hybrid);
  auto tree = cfg;
  tree.tree_bcast = true;
  const auto serial = core::fw_analytic(xd1(), cfg);
  const auto treed = core::fw_analytic(xd1(), tree);
  EXPECT_LT(treed.run.seconds, serial.run.seconds);
  // Broadcast is a small share of an FW phase: the gain is modest.
  EXPECT_GT(treed.run.seconds, serial.run.seconds * 0.9);
}

// ---------------------------------------------------------------------------
// Predictor (§4.5)

TEST(Predictor, LuPredictionBoundsSimulatedRun) {
  const auto cfg = lu_cfg(DesignMode::Hybrid);
  const auto pred = core::predict_lu(xd1(), cfg);
  const auto rep = core::lu_analytic(xd1(), cfg);
  // The prediction assumes perfect overlap, so it is optimistic; Section 6.2
  // reports the implementation reaching >= 86% of it.
  EXPECT_LE(pred.latency_seconds(), rep.run.seconds * 1.001);
  EXPECT_GT(rep.run.gflops() / pred.gflops(), 0.70);
}

TEST(Predictor, FwPredictionBoundsSimulatedRun) {
  const auto cfg = fw_cfg(DesignMode::Hybrid);
  const auto pred = core::predict_fw(xd1(), cfg);
  const auto rep = core::fw_analytic(xd1(), cfg);
  EXPECT_LE(pred.latency_seconds(), rep.run.seconds * 1.001);
  // Section 6.2: ~96% of the prediction for FW.
  EXPECT_GT(rep.run.gflops() / pred.gflops(), 0.85);
}

TEST(Predictor, LatencyIsMaxOfSides) {
  const auto pred = core::predict_fw(xd1(), fw_cfg(DesignMode::Hybrid));
  EXPECT_DOUBLE_EQ(pred.latency_seconds(), std::max(pred.t_tp, pred.t_tf));
  EXPECT_GT(pred.t_tp, 0.0);
  EXPECT_GT(pred.t_tf, 0.0);
}

TEST(Predictor, FpgaOnlyLuIsFpgaBound) {
  const auto pred = core::predict_lu(xd1(), lu_cfg(DesignMode::FpgaOnly));
  EXPECT_GT(pred.t_tf, 0.0);
}

}  // namespace
