// Tests for MiniMPI: point-to-point messaging, collectives, virtual-time
// semantics (§4.3 accounting), determinism, and the matrix channel.

#include <atomic>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/generate.hpp"
#include "net/matrix_channel.hpp"
#include "net/minimpi.hpp"
#include "sim/faults.hpp"

namespace net = rcs::net;
namespace sim = rcs::sim;
using rcs::linalg::Matrix;

namespace {

net::NetworkParams fast_net() {
  net::NetworkParams np;
  np.bytes_per_s = 1e9;
  np.latency_s = 0.0;
  return np;
}

TEST(MiniMpi, SendRecvMovesBytes) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      const double payload[3] = {1.0, 2.0, 3.0};
      comm.send_doubles(1, 7, payload, 3);
    } else {
      net::Message m = comm.recv(0, 7);
      auto vals = m.as_doubles();
      ASSERT_EQ(vals.size(), 3u);
      EXPECT_EQ(vals[1], 2.0);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 7);
    }
  });
}

TEST(MiniMpi, TagMatchingIsSelective) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 111);
      comm.send_value(1, 2, 222);
    } else {
      // Receive out of send order: tag matching must pick the right one.
      EXPECT_EQ(comm.recv(0, 2).as<int>(), 222);
      EXPECT_EQ(comm.recv(0, 1).as<int>(), 111);
    }
  });
}

TEST(MiniMpi, SendChargesSenderClock) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000'000 / 8, 1.0);  // 125 MB -> 0.125 s
      comm.send_doubles(1, 3, big.data(), big.size());
      EXPECT_NEAR(comm.clock().now(), 0.125, 1e-9);
    } else {
      net::Message m = comm.recv(0, 3);
      EXPECT_NEAR(m.arrival, 0.125, 1e-9);
      EXPECT_NEAR(comm.clock().now(), 0.125, 1e-9);
    }
  });
}

TEST(MiniMpi, RecvNeverMovesClockBackwards) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 1);  // tiny: arrives almost immediately
    } else {
      comm.clock().advance(10.0);  // receiver was busy computing
      comm.recv(0, 1);
      EXPECT_GE(comm.clock().now(), 10.0);
    }
  });
}

TEST(MiniMpi, BcastDeliversToAll) {
  net::World world(4, fast_net());
  std::atomic<int> sum{0};
  world.run([&](net::Comm& comm) {
    std::vector<double> v;
    if (comm.rank() == 2) v = {5.0, 6.0};
    v = comm.bcast_doubles(2, 9, std::move(v));
    ASSERT_EQ(v.size(), 2u);
    sum += static_cast<int>(v[0] + v[1]);
  });
  EXPECT_EQ(sum.load(), 4 * 11);
}

TEST(MiniMpi, BcastIsRootSerialized) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s so costs are visible
  net::World world(3, np);
  world.run([](net::Comm& comm) {
    std::vector<double> v(125'000, 1.0);  // 1 MB -> 1 s per destination
    if (comm.rank() == 0) {
      comm.bcast_doubles(0, 1, std::move(v));
      EXPECT_NEAR(comm.clock().now(), 2.0, 1e-9);  // two serialized sends
    } else {
      comm.bcast_doubles(0, 1, {});
      // rank 1 gets it after 1 s, rank 2 after 2 s.
      EXPECT_NEAR(comm.clock().now(), comm.rank() == 1 ? 1.0 : 2.0, 1e-9);
    }
  });
}

TEST(MiniMpi, BarrierSynchronizesClocks) {
  net::World world(3, fast_net());
  world.run([](net::Comm& comm) {
    comm.clock().advance(comm.rank() * 2.0);  // 0, 2, 4 seconds
    comm.barrier();
    EXPECT_GE(comm.clock().now(), 4.0);
    EXPECT_LT(comm.clock().now(), 4.1);  // only tiny control traffic on top
  });
}

TEST(MiniMpi, GatherCollectsFromEveryRank) {
  net::World world(4, fast_net());
  world.run([](net::Comm& comm) {
    auto all = comm.gather_double(0, 5, comm.rank() * 1.5);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(all[r], r * 1.5);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MiniMpi, AllreduceMaxAgreesEverywhere) {
  net::World world(5, fast_net());
  world.run([](net::Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(m, 4.0);
  });
}

TEST(MiniMpi, MakespanReflectsLatestClock) {
  net::World world(3, fast_net());
  world.run([](net::Comm& comm) {
    comm.clock().advance(comm.rank() == 1 ? 7.0 : 1.0);
  });
  EXPECT_DOUBLE_EQ(world.makespan(), 7.0);
}

TEST(MiniMpi, RankExceptionPropagates) {
  net::World world(2, fast_net());
  EXPECT_THROW(world.run([](net::Comm& comm) {
    if (comm.rank() == 1) throw rcs::Error("boom");
  }),
               rcs::Error);
}

TEST(MiniMpi, SelfSendRejected) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value(0, 1, 1), rcs::Error);
    }
  });
}

TEST(MiniMpi, DeterministicTimingAcrossRuns) {
  auto run_once = [] {
    net::World world(4, fast_net());
    world.run([](net::Comm& comm) {
      // Ring exchange with growing payloads.
      std::vector<double> v(1000 * (comm.rank() + 1), 1.0);
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + 3) % comm.size();
      comm.send_doubles(next, 1, v.data(), v.size());
      comm.recv(prev, 1);
      comm.barrier();
    });
    return world.makespan();
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(MiniMpi, BytesSentAccounted) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 1.0;
      comm.send_doubles(1, 1, &v, 1);
      EXPECT_EQ(comm.bytes_sent(), 8u);
    } else {
      comm.recv(0, 1);
      EXPECT_EQ(comm.bytes_sent(), 0u);
    }
  });
}

TEST(MiniMpi, IsendOverlapsCpu) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s: transfers are slow and visible
  np.latency_s = 1e-6;
  net::World world(2, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000, 1.0);  // 1 MB -> 1 s on the wire
      comm.isend_bytes(1, 3, big.data(), big.size() * 8);
      // The CPU paid only the setup latency.
      EXPECT_NEAR(comm.clock().now(), 1e-6, 1e-9);
      EXPECT_NEAR(comm.nic_free_at(), 1.0 + 1e-6, 1e-6);
    } else {
      net::Message m = comm.recv(0, 3);
      EXPECT_NEAR(m.arrival, 1.0, 1e-3);  // arrival gated on the NIC
      EXPECT_EQ(m.payload.size(), 1'000'000u);
    }
  });
}

TEST(MiniMpi, IsendsSerializeOnTheNic) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;
  net::World world(3, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(500'000);  // 0.5 s each
      comm.isend_bytes(1, 1, buf.data(), buf.size());
      comm.isend_bytes(2, 1, buf.data(), buf.size());
      EXPECT_NEAR(comm.nic_free_at(), 1.0, 1e-6);
    } else if (comm.rank() == 1) {
      EXPECT_NEAR(comm.recv(0, 1).arrival, 0.5, 1e-3);
    } else {
      EXPECT_NEAR(comm.recv(0, 1).arrival, 1.0, 1e-3);
    }
  });
}

TEST(MiniMpi, TreeBcastDeliversToAll) {
  for (int p : {2, 3, 4, 5, 7, 8}) {
    net::World world(p, fast_net());
    world.run([](net::Comm& comm) {
      std::vector<std::byte> payload;
      if (comm.rank() == 1 % comm.size()) payload.resize(64, std::byte{42});
      payload = comm.bcast_tree(1 % comm.size(), 9, std::move(payload));
      ASSERT_EQ(payload.size(), 64u);
      EXPECT_EQ(payload[10], std::byte{42});
    });
  }
}

TEST(MiniMpi, TreeBcastBeatsSerialBcastInSimTime) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s
  const std::size_t bytes = 1'000'000;
  auto last_arrival = [&](bool tree) {
    net::World world(8, np);
    world.run([&](net::Comm& comm) {
      std::vector<std::byte> payload;
      if (comm.rank() == 0) payload.resize(bytes);
      if (tree) {
        comm.bcast_tree(0, 1, std::move(payload));
      } else {
        comm.bcast(0, 1, std::move(payload));
      }
    });
    return world.makespan();
  };
  const double serial = last_arrival(false);
  const double tree = last_arrival(true);
  EXPECT_NEAR(serial, 7.0, 0.01);  // root sends 7 copies back to back
  EXPECT_NEAR(tree, 3.0, 0.01);    // log2(8) rounds
}

TEST(MiniMpi, AllgatherConcatenatesInRankOrder) {
  net::World world(4, fast_net());
  world.run([](net::Comm& comm) {
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                             static_cast<double>(comm.rank()));
    const auto all = comm.allgather_doubles(11, mine);
    ASSERT_EQ(all.size(), 1u + 2u + 3u + 4u);
    EXPECT_EQ(all[0], 0.0);
    EXPECT_EQ(all[1], 1.0);
    EXPECT_EQ(all[2], 1.0);
    EXPECT_EQ(all[3], 2.0);
    EXPECT_EQ(all.back(), 3.0);
  });
}

TEST(MiniMpi, ReduceSumCollects) {
  net::World world(5, fast_net());
  world.run([](net::Comm& comm) {
    const double s = comm.reduce_sum(2, 13, comm.rank() * 1.0);
    if (comm.rank() == 2) {
      EXPECT_DOUBLE_EQ(s, 0.0 + 1 + 2 + 3 + 4);
    } else {
      EXPECT_DOUBLE_EQ(s, 0.0);
    }
  });
}

TEST(MatrixChannel, RoundTripsStridedViews) {
  net::World world(2, fast_net());
  Matrix src = rcs::linalg::random_matrix(8, 8, 5);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      net::send_matrix(comm, 1, 4, src.block(2, 3, 4, 5));
    } else {
      Matrix got = net::recv_matrix(comm, 0, 4);
      ASSERT_EQ(got.rows(), 4u);
      ASSERT_EQ(got.cols(), 5u);
      EXPECT_TRUE(rcs::linalg::bit_equal(got.view(), src.block(2, 3, 4, 5)));
    }
  });
}

TEST(MatrixChannel, BcastMatrix) {
  net::World world(3, fast_net());
  Matrix src = rcs::linalg::random_matrix(4, 4, 6);
  world.run([&](net::Comm& comm) {
    Matrix m = comm.rank() == 1 ? src : Matrix();
    m = net::bcast_matrix(comm, 1, 2, std::move(m));
    EXPECT_TRUE(rcs::linalg::bit_equal(m.view(), src.view()));
  });
}

TEST(MatrixChannel, WireBytesFormula) {
  EXPECT_EQ(net::matrix_wire_bytes(3, 4), 16u + 96u);
}

TEST(NetworkParams, TransferTime) {
  net::NetworkParams np;
  np.bytes_per_s = 2e9;
  np.latency_s = 1e-6;
  EXPECT_DOUBLE_EQ(np.transfer_time(2'000'000'000ull), 1.0 + 1e-6);
}

// --- Nonblocking receives -------------------------------------------------

TEST(MiniMpiIrecv, DeliversAndAdvancesClock) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s
  np.latency_s = 0.0;
  net::World world(2, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000, 1.0);  // 1 MB -> 1 s on the wire
      comm.send_doubles(1, 3, big.data(), big.size());
    } else {
      net::Request req = comm.irecv(0, 3);
      ASSERT_TRUE(req.valid());
      net::Message m = req.wait();
      EXPECT_EQ(m.payload.size(), 1'000'000u);
      EXPECT_NEAR(m.arrival, 1.0, 1e-9);
      // The wait advanced the receiver to the arrival, like a blocking recv.
      EXPECT_NEAR(comm.clock().now(), 1.0, 1e-9);
      // The completed request stays valid: wait() is idempotent.
      EXPECT_TRUE(req.valid());
    }
  });
}

TEST(MiniMpiIrecv, OverlapAccountingHidesTransferBehindCompute) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;
  np.latency_s = 0.0;
  net::World world(2, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000, 1.0);  // depart 0.0, arrival 1.0
      comm.send_doubles(1, 3, big.data(), big.size());
    } else {
      net::Request req = comm.irecv(0, 3, "phaseA");
      comm.clock().advance(2.0);  // compute past the transfer's arrival
      req.wait();
      EXPECT_NEAR(comm.clock().now(), 2.0, 1e-9);  // nothing left to wait on
      const auto& st = comm.overlap_stats().at("phaseA");
      EXPECT_NEAR(st.total_s, 1.0, 1e-9);
      EXPECT_NEAR(st.hidden_s, 1.0, 1e-9);
      EXPECT_NEAR(st.visible_s, 0.0, 1e-9);
      EXPECT_NEAR(st.efficiency(), 1.0, 1e-9);
    }
  });
}

TEST(MiniMpiIrecv, OverlapAccountingChargesEagerWaitAsVisible) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;
  np.latency_s = 0.0;
  net::World world(2, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000, 1.0);
      comm.send_doubles(1, 3, big.data(), big.size());
    } else {
      // Waiting immediately exposes the whole transfer.
      comm.recv(0, 3, "phaseB");
      const auto& st = comm.overlap_stats().at("phaseB");
      EXPECT_NEAR(st.total_s, 1.0, 1e-9);
      EXPECT_NEAR(st.visible_s, 1.0, 1e-9);
      EXPECT_NEAR(st.efficiency(), 0.0, 1e-9);
    }
  });
}

TEST(MiniMpiIrecv, TestDoesNotConsumeMessage) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, 42);
      comm.send_value(1, 8, 1);  // "go": guarantees tag 7 is delivered first
    } else {
      net::Request req = comm.irecv(0, 7);
      comm.recv(0, 8);  // blocks until "go"; tag-7 message arrived before it
      EXPECT_TRUE(req.test());
      EXPECT_TRUE(req.test());  // polling is repeatable, nothing consumed
      EXPECT_EQ(req.wait().as<int>(), 42);
    }
  });
}

// The lookahead schedules mix isend (NIC timeline) and send (CPU timeline)
// toward the same destination. Matching is FIFO by delivery order, so an
// isend posted first is received first even if a later CPU send's payload
// "arrives" earlier on its own timeline — and the receiver's clock never
// moves backwards across the two waits.
TEST(MiniMpi, MixedIsendSendSameTagKeepsDeliveryOrder) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;
  np.latency_s = 0.0;
  net::World world(2, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> big(1'000'000);   // NIC: depart 0, arrival 1.0
      std::vector<std::byte> small(1'000);     // CPU: depart 0, arrival 1e-3
      comm.isend_bytes(1, 5, big.data(), big.size());
      comm.send_bytes(1, 5, small.data(), small.size());
      EXPECT_NEAR(comm.clock().now(), 1e-3, 1e-9);  // CPU paid only the send
      EXPECT_NEAR(comm.nic_free_at(), 1.0, 1e-9);
    } else {
      net::Message first = comm.recv(0, 5);
      net::Message second = comm.recv(0, 5);
      EXPECT_EQ(first.payload.size(), 1'000'000u);
      EXPECT_NEAR(first.arrival, 1.0, 1e-9);
      EXPECT_EQ(second.payload.size(), 1'000u);
      EXPECT_NEAR(second.arrival, 1e-3, 1e-9);
      // Clock gated on the slow NIC transfer, then held (never backwards).
      EXPECT_NEAR(comm.clock().now(), 1.0, 1e-9);
    }
  });
}

TEST(MiniMpi, TreeBcastStaggersArrivalsNonPowerOfTwo) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB payload -> 1 s per hop
  np.latency_s = 0.0;
  const std::size_t bytes = 1'000'000;
  // Binomial tree, root 0, p = 6: rank 4 hears at 1.0 and relays to 5
  // (arrival 2.0); rank 2 hears at 2.0 and relays to 3 (3.0); rank 1 hears
  // last at 3.0. Final clocks include each rank's own forwarding sends.
  std::vector<double> finish(6, -1.0);
  net::World world(6, np);
  world.run([&](net::Comm& comm) {
    std::vector<std::byte> payload;
    if (comm.rank() == 0) payload.resize(bytes);
    payload = comm.bcast_tree(0, 1, std::move(payload));
    EXPECT_EQ(payload.size(), bytes);
    finish[static_cast<std::size_t>(comm.rank())] = comm.clock().now();
  });
  const double expected[6] = {3.0, 3.0, 3.0, 3.0, 2.0, 2.0};
  for (int r = 0; r < 6; ++r) {
    EXPECT_NEAR(finish[static_cast<std::size_t>(r)], expected[r], 1e-9)
        << "rank " << r;
  }
  EXPECT_NEAR(world.makespan(), 3.0, 1e-9);  // ceil(log2 6) rounds

  // p = 3: root serializes children 2 then 1; rank 2 has no one to relay to.
  std::vector<double> finish3(3, -1.0);
  net::World world3(3, np);
  world3.run([&](net::Comm& comm) {
    std::vector<std::byte> payload;
    if (comm.rank() == 0) payload.resize(bytes);
    payload = comm.bcast_tree(0, 1, std::move(payload));
    finish3[static_cast<std::size_t>(comm.rank())] = comm.clock().now();
  });
  EXPECT_NEAR(finish3[0], 2.0, 1e-9);
  EXPECT_NEAR(finish3[1], 2.0, 1e-9);
  EXPECT_NEAR(finish3[2], 1.0, 1e-9);
}

// --- Failure propagation and world reuse ----------------------------------

// Regression: a throwing rank used to leave peers blocked in take() forever
// (World::run joined all threads before rethrowing). The failure must poison
// every mailbox so blocked receives abort and the original error surfaces.
TEST(MiniMpi, ThrowingRankDoesNotHangBlockedPeers) {
  net::World world(3, fast_net());
  try {
    world.run([](net::Comm& comm) {
      if (comm.rank() == 0) throw rcs::Error("boom");
      comm.recv(0, 1);  // never satisfied: only the poison can wake this
    });
    FAIL() << "expected World::run to throw";
  } catch (const rcs::Error& e) {
    // The original failure wins over the induced WorldAborted ones.
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(MiniMpi, ThrowingRankWakesBarrier) {
  net::World world(4, fast_net());
  EXPECT_THROW(world.run([](net::Comm& comm) {
    if (comm.rank() == 2) throw rcs::Error("rank 2 died");
    comm.barrier();
  }),
               rcs::Error);
}

TEST(MiniMpi, RunTwiceStartsFromCleanState) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 5, 111);
      comm.send_value(1, 5, 333);  // left undelivered in rank 1's mailbox
      comm.clock().advance(10.0);
    } else {
      EXPECT_EQ(comm.recv(0, 5).as<int>(), 111);
    }
  });
  EXPECT_GE(world.makespan(), 10.0);

  // Second run: clocks, byte counters, and mailboxes must start fresh — the
  // stale 333 from run one must not satisfy run two's receive.
  world.run([](net::Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.clock().now(), 0.0);
    EXPECT_EQ(comm.bytes_sent(), 0u);
    if (comm.rank() == 0) {
      comm.send_value(1, 5, 222);
    } else {
      EXPECT_EQ(comm.recv(0, 5).as<int>(), 222);
    }
    comm.clock().advance(1.0);
  });
  EXPECT_NEAR(world.makespan(), 1.0, 1e-6);
}

TEST(MiniMpi, RunAfterFailureRecovers) {
  net::World world(2, fast_net());
  EXPECT_THROW(world.run([](net::Comm& comm) {
    if (comm.rank() == 0) throw rcs::Error("first run dies");
    comm.recv(0, 1);
  }),
               rcs::Error);
  // The poison from the failed run must not leak into the next one.
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 7);
    } else {
      EXPECT_EQ(comm.recv(0, 1).as<int>(), 7);
    }
  });
}

// --- Argument validation ---------------------------------------------------

// Point-to-point operations must reject out-of-range ranks, self-messaging,
// and reserved (negative) user tags with a descriptive Error instead of
// indexing mailboxes out of bounds.
TEST(MiniMpi, ValidatesRanksAndTags) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() != 0) return;
    const double v = 1.0;
    EXPECT_THROW(comm.send_doubles(2, 1, &v, 1), rcs::Error);   // dst too big
    EXPECT_THROW(comm.send_doubles(-1, 1, &v, 1), rcs::Error);  // dst negative
    EXPECT_THROW(comm.send_doubles(0, 1, &v, 1), rcs::Error);   // self-send
    EXPECT_THROW(comm.send_doubles(1, -5, &v, 1), rcs::Error);  // reserved tag
    EXPECT_THROW(comm.isend_bytes(1, -1, &v, 8), rcs::Error);
    EXPECT_THROW(comm.recv(7, 1), rcs::Error);
    EXPECT_THROW(comm.recv(0, 1), rcs::Error);  // self-receive
    EXPECT_THROW(comm.recv(1, -2), rcs::Error);
    EXPECT_THROW(comm.irecv(1, -2), rcs::Error);
    bool timed_out = false;
    EXPECT_THROW(comm.recv_deadline(3, 1, 1.0, &timed_out), rcs::Error);
    // None of the rejected calls may have charged the clock or sent bytes.
    EXPECT_DOUBLE_EQ(comm.clock().now(), 0.0);
    EXPECT_EQ(comm.bytes_sent(), 0u);
  });
}

// --- Request lifecycle -----------------------------------------------------

TEST(MiniMpiIrecv, WaitIsIdempotent) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 4, 99);
      return;
    }
    net::Request req = comm.irecv(0, 4);
    const net::Message first = req.wait();
    EXPECT_EQ(first.as<int>(), 99);
    EXPECT_TRUE(req.valid());  // completed requests stay valid
    EXPECT_TRUE(req.test());   // test after completion reports true
    const double t_after = comm.clock().now();
    const net::Message again = req.wait();  // second wait: cached copy
    EXPECT_EQ(again.as<int>(), 99);
    EXPECT_EQ(again.src, first.src);
    EXPECT_DOUBLE_EQ(comm.clock().now(), t_after);  // no further clock effect
  });
}

TEST(MiniMpiIrecv, MovedFromRequestIsInert) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 4, 42);
      return;
    }
    net::Request req = comm.irecv(0, 4);
    net::Request moved = std::move(req);
    EXPECT_FALSE(req.valid());  // NOLINT(bugprone-use-after-move): the point
    EXPECT_FALSE(req.test());
    EXPECT_THROW(req.wait(), rcs::Error);
    EXPECT_EQ(moved.wait().as<int>(), 42);
    // Moving a completed request carries the cached message along.
    net::Request adopted = std::move(moved);
    EXPECT_TRUE(adopted.test());
    EXPECT_EQ(adopted.wait().as<int>(), 42);
  });
  // An empty (default-constructed) request behaves like a moved-from one.
  net::Request empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.test());
  EXPECT_THROW(empty.wait(), rcs::Error);
}

// --- Deadline receives -----------------------------------------------------

TEST(MiniMpiDeadline, InTimeMessageBehavesLikeRecv) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 3, 5);
      return;
    }
    bool timed_out = true;
    const net::Message m = comm.recv_deadline(0, 3, 2.0, &timed_out);
    EXPECT_FALSE(timed_out);
    EXPECT_EQ(m.as<int>(), 5);
    EXPECT_EQ(comm.fault_stats().straggler_timeouts, 0u);
  });
}

// A late arrival: the receiver's clock stops exactly at the deadline (not at
// the straggler's arrival) and the drained late payload is still returned so
// the caller can use it for diagnostics.
TEST(MiniMpiDeadline, TimeoutStopsClockAtDeadline) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(5.0);  // busy: the send departs late
      comm.send_value(1, 3, 77);
      return;
    }
    bool timed_out = false;
    const net::Message m = comm.recv_deadline(0, 3, 1.0, &timed_out);
    EXPECT_TRUE(timed_out);
    EXPECT_DOUBLE_EQ(comm.clock().now(), 1.0);
    EXPECT_EQ(m.as<int>(), 77);  // late message is drained, not re-queued
    EXPECT_EQ(comm.fault_stats().straggler_timeouts, 1u);
  });
}

// Retry/backoff deadline math: timeout 1.0 with backoff 2.0 grants deadlines
// 1.0, then 3.0, then 7.0. An arrival at 2.5 is caught by the first retry.
TEST(MiniMpiDeadline, RetryExtensionCatchesLateMessage) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(2.5);
      comm.send_value(1, 3, 9);
      return;
    }
    bool gave_up = true;
    const net::Message m = comm.recv_retry(0, 3, 1.0, 2, 2.0, &gave_up);
    EXPECT_FALSE(gave_up);
    EXPECT_EQ(m.as<int>(), 9);
    // Clock at the arrival: depart 2.5 plus the 4-byte wire time.
    EXPECT_DOUBLE_EQ(comm.clock().now(), 2.5 + 4.0 / 1e9);
  });
}

// An arrival past every extension: the receiver exhausts the whole budget
// and its clock lands on the final extended deadline (7.0).
TEST(MiniMpiDeadline, RetryGivesUpAfterFullBudget) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(20.0);
      comm.send_value(1, 3, 9);
      return;
    }
    bool gave_up = false;
    const net::Message m = comm.recv_retry(0, 3, 1.0, 2, 2.0, &gave_up);
    EXPECT_TRUE(gave_up);
    EXPECT_DOUBLE_EQ(comm.clock().now(), 7.0);  // 1.0 + 2.0 + 4.0
    EXPECT_EQ(m.as<int>(), 9);  // drained late payload still returned
    EXPECT_GE(comm.fault_stats().straggler_timeouts, 1u);
  });
}

// --- Fault plans: crashes and link degradation -----------------------------

// A crashed rank's RankFailed propagates out of World::run when no one
// handles it, and the failure is distinct from WorldAborted.
TEST(MiniMpiFaults, UncaughtCrashPropagatesRankFailed) {
  sim::FaultPlan plan(1);
  plan.add_crash({0, 1.0});
  net::World world(2, fast_net());
  world.set_fault_plan(&plan);
  try {
    world.run([](net::Comm& comm) {
      if (comm.rank() == 0) {
        comm.clock().advance(2.0);     // sail past the crash time...
        comm.send_value(1, 1, 7);      // ...and die at the first comm op
        ADD_FAILURE() << "rank 0 should have fail-stopped";
      } else {
        comm.recv(0, 1);  // peer died: RankFailed escapes unhandled
      }
    });
    FAIL() << "expected RankFailed to propagate";
  } catch (const net::RankFailed& rf) {
    EXPECT_EQ(rf.rank, 0);
  }
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{0});
}

// Survivors that catch RankFailed (or use deadline receives) let the run
// complete normally — graceful degradation instead of a world abort.
TEST(MiniMpiFaults, CaughtCrashLetsSurvivorsFinish) {
  sim::FaultPlan plan(1);
  plan.add_crash({0, 1.0});
  net::World world(2, fast_net());
  world.set_fault_plan(&plan);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(2.0);
      EXPECT_THROW(comm.send_value(1, 1, 7), net::RankFailed);
      EXPECT_EQ(comm.fault_stats().crashes, 1u);
      return;  // the dead rank stops participating
    }
    bool timed_out = false;
    const net::Message m = comm.recv_deadline(0, 1, 0.5, &timed_out);
    EXPECT_TRUE(timed_out);
    EXPECT_TRUE(m.payload.empty());  // peer died without sending
    EXPECT_EQ(m.src, -1);
    EXPECT_DOUBLE_EQ(comm.clock().now(), 0.5);
  });
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{0});
  // Clearing the plan restores a fault-free, reusable world.
  world.set_fault_plan(nullptr);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 8);
    } else {
      EXPECT_EQ(comm.recv(0, 1).as<int>(), 8);
    }
  });
  EXPECT_TRUE(world.failed_ranks().empty());
}

// Link degradation is deterministic and exactly reflects the plan: halving
// the bandwidth doubles the (latency-free) transfer time, and replaying the
// same plan reproduces the same makespan bit-for-bit.
TEST(MiniMpiFaults, LinkFaultDegradesDeterministically) {
  sim::LinkFault lf;
  lf.src = 0;
  lf.dst = 1;
  lf.begin = 0.0;
  lf.end = 100.0;
  lf.bw_factor = 0.5;
  sim::FaultPlan plan(7);
  plan.add_link_fault(lf);

  const auto makespan = [](const sim::FaultPlan* p) {
    net::World world(2, fast_net());
    world.set_fault_plan(p);
    std::uint64_t link_hits = 0;
    world.run([&](net::Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<double> big(1'000'000 / 8, 1.0);  // 1 MB -> 1 ms nominal
        comm.send_doubles(1, 2, big.data(), big.size());
        link_hits = comm.fault_stats().link_hits;
      } else {
        comm.recv(0, 2);
      }
    });
    EXPECT_EQ(link_hits, p != nullptr ? 1u : 0u);
    return world.makespan();
  };

  const double clean = makespan(nullptr);
  const double faulty = makespan(&plan);
  EXPECT_DOUBLE_EQ(faulty, makespan(&plan));  // byte-identical replay
  EXPECT_DOUBLE_EQ(faulty, 2.0 * clean);      // bw_factor 0.5, no jitter
}

// Zero-cost default: an installed-but-empty plan (and no plan at all) leave
// the timing of a run bit-identical.
TEST(MiniMpiFaults, EmptyPlanIsZeroCost) {
  const auto makespan = [](const sim::FaultPlan* p) {
    net::World world(2, fast_net());
    world.set_fault_plan(p);
    world.run([](net::Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<double> big(1'000'000 / 8, 1.0);
        comm.send_doubles(1, 2, big.data(), big.size());
      } else {
        comm.recv(0, 2);
        comm.clock().advance(0.25);
      }
    });
    return world.makespan();
  };
  sim::FaultPlan empty(3);
  EXPECT_DOUBLE_EQ(makespan(nullptr), makespan(&empty));
}

// Regression for the mark_failed wakeup protocol (see the proof comment in
// minimpi.cpp): rank 1 is already blocked in recv when rank 0 fail-stops,
// so every iteration exercises the check-to-block window where a missed
// wakeup would hang the receiver until the suite TIMEOUT. Hammered in both
// scheduling modes — cv.wait waiters (thread-per-rank) and parked fibers.
TEST(MiniMpiFaults, CrashDuringBlockedRecvStress) {
  for (const int mode : {net::World::kThreadPerRank, 2}) {
    for (int iter = 0; iter < 120; ++iter) {
      sim::FaultPlan plan(static_cast<unsigned>(iter + 1));
      plan.add_crash({0, 0.0});
      net::World world(2, fast_net());
      world.set_fault_plan(&plan);
      world.set_max_workers(mode);
      try {
        world.run([](net::Comm& comm) {
          if (comm.rank() == 0) {
            comm.clock().advance(1.0);  // crash due at the next comm op
            comm.send_value(1, 1, 7);   // fail-stop fires here
            ADD_FAILURE() << "rank 0 should have fail-stopped";
          } else {
            comm.recv(0, 1);  // blocked when rank 0 dies: must wake + throw
          }
        });
        FAIL() << "expected RankFailed (mode " << mode << ", iter " << iter
               << ")";
      } catch (const net::RankFailed& rf) {
        EXPECT_EQ(rf.rank, 0);
      }
      EXPECT_EQ(world.failed_ranks(), std::vector<int>{0});
    }
  }
}

// p=256 smoke for the fiber rank scheduler (auto mode switches to fibers
// above World::kAutoFiberThreshold ranks): ring send/recv, barrier, and
// bcast_tree all complete in one process, then a second run on the same
// world injects one fail-stop and every survivor observes it. The suite
// TIMEOUT is the hang guard.
TEST(MiniMpiScale, P256RingBarrierBcastTreeWithFailStop) {
  constexpr int kP = 256;
  net::World world(kP, fast_net());
  ASSERT_GT(kP, net::World::kAutoFiberThreshold);  // auto => fiber scheduler

  world.run([](net::Comm& comm) {
    const int p = comm.size();
    const int r = comm.rank();
    // Ring: pass each rank's id one hop clockwise (send is non-blocking).
    comm.send_value((r + 1) % p, 1, r);
    EXPECT_EQ(comm.recv((r + p - 1) % p, 1).as<int>(), (r + p - 1) % p);
    comm.barrier();
    // Binomial-tree broadcast from a non-zero root.
    std::vector<std::byte> payload;
    if (r == 3) payload = {std::byte{0xAB}, std::byte{0xCD}};
    const auto got = comm.bcast_tree(3, 2, std::move(payload));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], std::byte{0xAB});
    EXPECT_EQ(got[1], std::byte{0xCD});
  });
  EXPECT_TRUE(world.failed_ranks().empty());

  // Same world, one injected fail-stop: rank 17 dies at its first comm op,
  // all 255 blocked survivors must wake with RankFailed (not hang).
  sim::FaultPlan plan(99);
  plan.add_crash({17, 0.0});
  world.set_fault_plan(&plan);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 17) {
      comm.clock().advance(1.0);
      EXPECT_THROW(comm.send_value(0, 3, 1), net::RankFailed);
      return;  // the dead rank stops participating
    }
    EXPECT_THROW(comm.recv(17, 3), net::RankFailed);
  });
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{17});
}

}  // namespace
