// Tests for MiniMPI: point-to-point messaging, collectives, virtual-time
// semantics (§4.3 accounting), determinism, and the matrix channel.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/generate.hpp"
#include "net/matrix_channel.hpp"
#include "net/minimpi.hpp"

namespace net = rcs::net;
using rcs::linalg::Matrix;

namespace {

net::NetworkParams fast_net() {
  net::NetworkParams np;
  np.bytes_per_s = 1e9;
  np.latency_s = 0.0;
  return np;
}

TEST(MiniMpi, SendRecvMovesBytes) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      const double payload[3] = {1.0, 2.0, 3.0};
      comm.send_doubles(1, 7, payload, 3);
    } else {
      net::Message m = comm.recv(0, 7);
      auto vals = m.as_doubles();
      ASSERT_EQ(vals.size(), 3u);
      EXPECT_EQ(vals[1], 2.0);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 7);
    }
  });
}

TEST(MiniMpi, TagMatchingIsSelective) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 111);
      comm.send_value(1, 2, 222);
    } else {
      // Receive out of send order: tag matching must pick the right one.
      EXPECT_EQ(comm.recv(0, 2).as<int>(), 222);
      EXPECT_EQ(comm.recv(0, 1).as<int>(), 111);
    }
  });
}

TEST(MiniMpi, SendChargesSenderClock) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000'000 / 8, 1.0);  // 125 MB -> 0.125 s
      comm.send_doubles(1, 3, big.data(), big.size());
      EXPECT_NEAR(comm.clock().now(), 0.125, 1e-9);
    } else {
      net::Message m = comm.recv(0, 3);
      EXPECT_NEAR(m.arrival, 0.125, 1e-9);
      EXPECT_NEAR(comm.clock().now(), 0.125, 1e-9);
    }
  });
}

TEST(MiniMpi, RecvNeverMovesClockBackwards) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 1);  // tiny: arrives almost immediately
    } else {
      comm.clock().advance(10.0);  // receiver was busy computing
      comm.recv(0, 1);
      EXPECT_GE(comm.clock().now(), 10.0);
    }
  });
}

TEST(MiniMpi, BcastDeliversToAll) {
  net::World world(4, fast_net());
  std::atomic<int> sum{0};
  world.run([&](net::Comm& comm) {
    std::vector<double> v;
    if (comm.rank() == 2) v = {5.0, 6.0};
    v = comm.bcast_doubles(2, 9, std::move(v));
    ASSERT_EQ(v.size(), 2u);
    sum += static_cast<int>(v[0] + v[1]);
  });
  EXPECT_EQ(sum.load(), 4 * 11);
}

TEST(MiniMpi, BcastIsRootSerialized) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s so costs are visible
  net::World world(3, np);
  world.run([](net::Comm& comm) {
    std::vector<double> v(125'000, 1.0);  // 1 MB -> 1 s per destination
    if (comm.rank() == 0) {
      comm.bcast_doubles(0, 1, std::move(v));
      EXPECT_NEAR(comm.clock().now(), 2.0, 1e-9);  // two serialized sends
    } else {
      comm.bcast_doubles(0, 1, {});
      // rank 1 gets it after 1 s, rank 2 after 2 s.
      EXPECT_NEAR(comm.clock().now(), comm.rank() == 1 ? 1.0 : 2.0, 1e-9);
    }
  });
}

TEST(MiniMpi, BarrierSynchronizesClocks) {
  net::World world(3, fast_net());
  world.run([](net::Comm& comm) {
    comm.clock().advance(comm.rank() * 2.0);  // 0, 2, 4 seconds
    comm.barrier();
    EXPECT_GE(comm.clock().now(), 4.0);
    EXPECT_LT(comm.clock().now(), 4.1);  // only tiny control traffic on top
  });
}

TEST(MiniMpi, GatherCollectsFromEveryRank) {
  net::World world(4, fast_net());
  world.run([](net::Comm& comm) {
    auto all = comm.gather_double(0, 5, comm.rank() * 1.5);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(all[r], r * 1.5);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MiniMpi, AllreduceMaxAgreesEverywhere) {
  net::World world(5, fast_net());
  world.run([](net::Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(m, 4.0);
  });
}

TEST(MiniMpi, MakespanReflectsLatestClock) {
  net::World world(3, fast_net());
  world.run([](net::Comm& comm) {
    comm.clock().advance(comm.rank() == 1 ? 7.0 : 1.0);
  });
  EXPECT_DOUBLE_EQ(world.makespan(), 7.0);
}

TEST(MiniMpi, RankExceptionPropagates) {
  net::World world(2, fast_net());
  EXPECT_THROW(world.run([](net::Comm& comm) {
    if (comm.rank() == 1) throw rcs::Error("boom");
  }),
               rcs::Error);
}

TEST(MiniMpi, SelfSendRejected) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value(0, 1, 1), rcs::Error);
    }
  });
}

TEST(MiniMpi, DeterministicTimingAcrossRuns) {
  auto run_once = [] {
    net::World world(4, fast_net());
    world.run([](net::Comm& comm) {
      // Ring exchange with growing payloads.
      std::vector<double> v(1000 * (comm.rank() + 1), 1.0);
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + 3) % comm.size();
      comm.send_doubles(next, 1, v.data(), v.size());
      comm.recv(prev, 1);
      comm.barrier();
    });
    return world.makespan();
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(MiniMpi, BytesSentAccounted) {
  net::World world(2, fast_net());
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 1.0;
      comm.send_doubles(1, 1, &v, 1);
      EXPECT_EQ(comm.bytes_sent(), 8u);
    } else {
      comm.recv(0, 1);
      EXPECT_EQ(comm.bytes_sent(), 0u);
    }
  });
}

TEST(MiniMpi, IsendOverlapsCpu) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s: transfers are slow and visible
  np.latency_s = 1e-6;
  net::World world(2, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(125'000, 1.0);  // 1 MB -> 1 s on the wire
      comm.isend_bytes(1, 3, big.data(), big.size() * 8);
      // The CPU paid only the setup latency.
      EXPECT_NEAR(comm.clock().now(), 1e-6, 1e-9);
      EXPECT_NEAR(comm.nic_free_at(), 1.0 + 1e-6, 1e-6);
    } else {
      net::Message m = comm.recv(0, 3);
      EXPECT_NEAR(m.arrival, 1.0, 1e-3);  // arrival gated on the NIC
      EXPECT_EQ(m.payload.size(), 1'000'000u);
    }
  });
}

TEST(MiniMpi, IsendsSerializeOnTheNic) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;
  net::World world(3, np);
  world.run([](net::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(500'000);  // 0.5 s each
      comm.isend_bytes(1, 1, buf.data(), buf.size());
      comm.isend_bytes(2, 1, buf.data(), buf.size());
      EXPECT_NEAR(comm.nic_free_at(), 1.0, 1e-6);
    } else if (comm.rank() == 1) {
      EXPECT_NEAR(comm.recv(0, 1).arrival, 0.5, 1e-3);
    } else {
      EXPECT_NEAR(comm.recv(0, 1).arrival, 1.0, 1e-3);
    }
  });
}

TEST(MiniMpi, TreeBcastDeliversToAll) {
  for (int p : {2, 3, 4, 5, 7, 8}) {
    net::World world(p, fast_net());
    world.run([](net::Comm& comm) {
      std::vector<std::byte> payload;
      if (comm.rank() == 1 % comm.size()) payload.resize(64, std::byte{42});
      payload = comm.bcast_tree(1 % comm.size(), 9, std::move(payload));
      ASSERT_EQ(payload.size(), 64u);
      EXPECT_EQ(payload[10], std::byte{42});
    });
  }
}

TEST(MiniMpi, TreeBcastBeatsSerialBcastInSimTime) {
  net::NetworkParams np;
  np.bytes_per_s = 1e6;  // 1 MB/s
  const std::size_t bytes = 1'000'000;
  auto last_arrival = [&](bool tree) {
    net::World world(8, np);
    world.run([&](net::Comm& comm) {
      std::vector<std::byte> payload;
      if (comm.rank() == 0) payload.resize(bytes);
      if (tree) {
        comm.bcast_tree(0, 1, std::move(payload));
      } else {
        comm.bcast(0, 1, std::move(payload));
      }
    });
    return world.makespan();
  };
  const double serial = last_arrival(false);
  const double tree = last_arrival(true);
  EXPECT_NEAR(serial, 7.0, 0.01);  // root sends 7 copies back to back
  EXPECT_NEAR(tree, 3.0, 0.01);    // log2(8) rounds
}

TEST(MiniMpi, AllgatherConcatenatesInRankOrder) {
  net::World world(4, fast_net());
  world.run([](net::Comm& comm) {
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                             static_cast<double>(comm.rank()));
    const auto all = comm.allgather_doubles(11, mine);
    ASSERT_EQ(all.size(), 1u + 2u + 3u + 4u);
    EXPECT_EQ(all[0], 0.0);
    EXPECT_EQ(all[1], 1.0);
    EXPECT_EQ(all[2], 1.0);
    EXPECT_EQ(all[3], 2.0);
    EXPECT_EQ(all.back(), 3.0);
  });
}

TEST(MiniMpi, ReduceSumCollects) {
  net::World world(5, fast_net());
  world.run([](net::Comm& comm) {
    const double s = comm.reduce_sum(2, 13, comm.rank() * 1.0);
    if (comm.rank() == 2) {
      EXPECT_DOUBLE_EQ(s, 0.0 + 1 + 2 + 3 + 4);
    } else {
      EXPECT_DOUBLE_EQ(s, 0.0);
    }
  });
}

TEST(MatrixChannel, RoundTripsStridedViews) {
  net::World world(2, fast_net());
  Matrix src = rcs::linalg::random_matrix(8, 8, 5);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      net::send_matrix(comm, 1, 4, src.block(2, 3, 4, 5));
    } else {
      Matrix got = net::recv_matrix(comm, 0, 4);
      ASSERT_EQ(got.rows(), 4u);
      ASSERT_EQ(got.cols(), 5u);
      EXPECT_TRUE(rcs::linalg::bit_equal(got.view(), src.block(2, 3, 4, 5)));
    }
  });
}

TEST(MatrixChannel, BcastMatrix) {
  net::World world(3, fast_net());
  Matrix src = rcs::linalg::random_matrix(4, 4, 6);
  world.run([&](net::Comm& comm) {
    Matrix m = comm.rank() == 1 ? src : Matrix();
    m = net::bcast_matrix(comm, 1, 2, std::move(m));
    EXPECT_TRUE(rcs::linalg::bit_equal(m.view(), src.view()));
  });
}

TEST(MatrixChannel, WireBytesFormula) {
  EXPECT_EQ(net::matrix_wire_bytes(3, 4), 16u + 96u);
}

TEST(NetworkParams, TransferTime) {
  net::NetworkParams np;
  np.bytes_per_s = 2e9;
  np.latency_s = 1e-6;
  EXPECT_DOUBLE_EQ(np.transfer_time(2'000'000'000ull), 1.0 + 1e-6);
}

}  // namespace
