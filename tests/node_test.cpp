// Tests for the node layer: the GPP sustained-rate model and the
// ComputeNode CPU/FPGA coordination semantics of §4.4 (transfer blocking,
// FPGA overlap, start/notify counting, read-permission protocol).

#include <gtest/gtest.h>

#include "net/minimpi.hpp"
#include "node/compute_node.hpp"
#include "node/gpp.hpp"
#include "sim/trace.hpp"

namespace node = rcs::node;
using node::CpuKernel;

namespace {

node::NodeParams test_params(double coord_latency = 0.0) {
  node::NodeParams p;
  p.gpp = node::GppModel(1e9);  // 1 GFLOP/s for easy numbers
  p.fpga = rcs::fpga::DeviceConfig::xc2vp50_matmul();
  p.fpga.clock_hz = 1e8;            // 10 ns per cycle
  p.fpga.dram_bytes_per_s = 1e9;    // 1 GB/s
  p.coordination_latency_s = coord_latency;
  return p;
}

TEST(GppModel, PerKernelRates) {
  node::GppModel m(1e9);
  m.set_rate(CpuKernel::Dgemm, 4e9);
  EXPECT_DOUBLE_EQ(m.sustained(CpuKernel::Dgemm), 4e9);
  EXPECT_DOUBLE_EQ(m.sustained(CpuKernel::Dtrsm), 1e9);  // default
  EXPECT_DOUBLE_EQ(m.seconds_for(CpuKernel::Dgemm, 8e9), 2.0);
}

TEST(GppModel, RejectsNonPositiveRates) {
  node::GppModel m(1e9);
  EXPECT_THROW(m.set_rate(CpuKernel::Dgemm, 0.0), rcs::Error);
  EXPECT_THROW(node::GppModel{-1.0}, rcs::Error);
  EXPECT_THROW(m.seconds_for(CpuKernel::Dgemm, -5.0), rcs::Error);
}

TEST(GppModel, OpteronMatchesPaperMeasurements) {
  const auto m = node::GppModel::opteron_2p2ghz();
  // dgemm: 3.9 GFLOPS (Section 6.1).
  EXPECT_DOUBLE_EQ(m.sustained(CpuKernel::Dgemm), 3.9e9);
  // Table 1: opLU on b = 3000 takes 4.9 s, opL/opU take 7.1 s.
  const double b3 = 3000.0 * 3000.0 * 3000.0;
  EXPECT_NEAR(m.seconds_for(CpuKernel::Dgetrf, (2.0 / 3.0) * b3), 4.9, 1e-9);
  EXPECT_NEAR(m.seconds_for(CpuKernel::Dtrsm, b3), 7.1, 1e-9);
  // Floyd–Warshall block rate: 190 MFLOPS.
  EXPECT_DOUBLE_EQ(m.sustained(CpuKernel::FwBlock), 190e6);
}

TEST(GppModel, KernelNames) {
  EXPECT_STREQ(node::to_string(CpuKernel::Dgemm), "dgemm");
  EXPECT_STREQ(node::to_string(CpuKernel::FwBlock), "fw-block");
}

TEST(ComputeNode, CpuComputeAdvancesClock) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.cpu_compute(CpuKernel::Dgemm, 2e9, "work");
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_DOUBLE_EQ(n.cpu_busy_total(), 2.0);
  EXPECT_DOUBLE_EQ(n.cpu_flops_total(), 2e9);
}

TEST(ComputeNode, DramTransferBlocksCpu) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.dram_to_fpga(500'000'000);  // 0.5 s at 1 GB/s
  EXPECT_DOUBLE_EQ(clock.now(), 0.5);  // Eq. 1: the CPU cannot compute
}

TEST(ComputeNode, FpgaRunsConcurrentlyWithCpu) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.fpga_submit(3e8, "kernel");  // 3 s of FPGA work at 100 MHz
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // submission is asynchronous
  n.cpu_compute(CpuKernel::Dgemm, 1e9, "overlap");  // 1 s of CPU work
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
  n.fpga_wait();
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);  // CPU waited for the FPGA
  EXPECT_DOUBLE_EQ(n.fpga_busy_total(), 3.0);
}

TEST(ComputeNode, FpgaFasterThanCpuMeansNoWait) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.fpga_submit(1e8, "kernel");                      // 1 s
  n.cpu_compute(CpuKernel::Dgemm, 5e9, "longer");    // 5 s
  n.fpga_wait();
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(ComputeNode, BackToBackSubmissionsQueue) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  const double t1 = n.fpga_submit(1e8, "a");  // [0, 1)
  const double t2 = n.fpga_submit(1e8, "b");  // [1, 2)
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 2.0);
  n.fpga_wait();
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(ComputeNode, CoordinationEventsCounted) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.fpga_submit(1e6, "a");
  n.fpga_submit(1e6, "b");
  n.fpga_wait();
  EXPECT_EQ(n.coordination_events(), 3u);  // 2 starts + 1 notification
}

TEST(ComputeNode, CoordinationLatencyCharged) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(1e-3), clock, nullptr, "n0");
  n.fpga_submit(0.0, "a");
  n.fpga_wait();
  EXPECT_DOUBLE_EQ(clock.now(), 2e-3);  // start + notify checks
}

TEST(ComputeNode, ReadPermissionProtocolEnforced) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  EXPECT_TRUE(n.fpga_results_visible());  // nothing outstanding
  n.fpga_submit(1e6, "a");
  EXPECT_FALSE(n.fpga_results_visible());
  EXPECT_THROW(n.read_fpga_results("partial product"), rcs::Error);
  n.fpga_wait();
  EXPECT_TRUE(n.fpga_results_visible());
  EXPECT_NO_THROW(n.read_fpga_results("partial product"));
}

TEST(ComputeNode, DramContentionDeratesOverlappedCompute) {
  auto params = test_params();
  params.dram_contention_factor = 0.5;
  rcs::net::VirtualClock clock;
  node::ComputeNode n(params, clock, nullptr, "n0");
  n.fpga_submit(5e8, "long kernel");  // FPGA busy [0, 5)
  // 1 s of CPU work at half rate while the FPGA runs: takes 2 s.
  n.cpu_compute(CpuKernel::Dgemm, 1e9, "overlapped");
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  // 4 s of work: 3 s remain in the window (1.5 s of work done there), the
  // other 2.5 s of work runs at full rate after the FPGA finishes.
  n.cpu_compute(CpuKernel::Dgemm, 4e9, "straddles");
  EXPECT_DOUBLE_EQ(clock.now(), 2.0 + 3.0 + 2.5);
}

TEST(ComputeNode, NoContentionByDefault) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.fpga_submit(5e8, "kernel");
  n.cpu_compute(CpuKernel::Dgemm, 1e9, "overlapped");
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);  // full rate, paper assumption
}

TEST(ComputeNode, TraceRecordsSpans) {
  rcs::net::VirtualClock clock;
  rcs::sim::TraceRecorder trace(true);
  node::ComputeNode n(test_params(), clock, &trace, "n3");
  n.cpu_compute(CpuKernel::Dgemm, 1e9, "gemm");
  n.dram_to_fpga(1'000'000'000);
  n.fpga_submit(1e8, "mm");
  n.fpga_wait();
  auto busy = trace.busy_by_resource();
  EXPECT_DOUBLE_EQ(busy["n3.cpu"], 1.0);
  EXPECT_DOUBLE_EQ(busy["n3.dram"], 1.0);
  EXPECT_DOUBLE_EQ(busy["n3.fpga"], 1.0);
}

TEST(ComputeNode, FpgaStartsAfterSubmissionTime) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  n.cpu_compute(CpuKernel::Dgemm, 2e9, "first");  // clock at 2 s
  n.fpga_submit(1e8, "late");                     // runs [2, 3)
  n.fpga_wait();
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(ComputeNode, NegativeCyclesRejected) {
  rcs::net::VirtualClock clock;
  node::ComputeNode n(test_params(), clock, nullptr, "n0");
  EXPECT_THROW(n.fpga_submit(-1.0, "bad"), rcs::Error);
}

}  // namespace
