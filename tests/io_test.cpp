// Tests for Matrix Market I/O: round trips, format variants, symmetric
// expansion, sparse densification, and error reporting.

#include <sstream>

#include <gtest/gtest.h>

#include "graph/floyd_warshall.hpp"
#include "linalg/generate.hpp"
#include "linalg/io.hpp"

namespace la = rcs::linalg;

namespace {

TEST(MatrixMarket, DenseRoundTripIsBitExact) {
  const la::Matrix m = la::random_matrix(7, 5, 42, -1e3, 1e3);
  std::stringstream ss;
  la::write_matrix_market(ss, m.view());
  const la::Matrix back = la::read_matrix_market(ss);
  EXPECT_TRUE(la::bit_equal(m.view(), back.view()));
}

TEST(MatrixMarket, RoundTripsExtremeValues) {
  la::Matrix m(2, 2);
  m(0, 0) = 1e-308;
  m(0, 1) = -1.7976931348623157e308;
  m(1, 0) = 3.141592653589793;
  m(1, 1) = -0.0;
  std::stringstream ss;
  la::write_matrix_market(ss, m.view());
  const la::Matrix back = la::read_matrix_market(ss);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(m(i, j), back(i, j));
}

TEST(MatrixMarket, ReadsCoordinateFormat) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "2 3 -1.0\n"
      "3 4 7\n");
  const la::Matrix m = la::read_matrix_market(ss);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 0), 2.5);
  EXPECT_EQ(m(1, 2), -1.0);
  EXPECT_EQ(m(2, 3), 7.0);
  EXPECT_EQ(m(1, 1), 0.0);  // default missing
}

TEST(MatrixMarket, MissingValueForGraphs) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 2 3.5\n");
  const la::Matrix m = la::read_matrix_market(ss, rcs::graph::kNoEdge);
  EXPECT_EQ(m(0, 1), 3.5);
  EXPECT_EQ(m(1, 0), rcs::graph::kNoEdge);
}

TEST(MatrixMarket, SymmetricCoordinateExpands) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 4.0\n"
      "3 3 1.0\n");
  const la::Matrix m = la::read_matrix_market(ss);
  EXPECT_EQ(m(1, 0), 4.0);
  EXPECT_EQ(m(0, 1), 4.0);
  EXPECT_EQ(m(2, 2), 1.0);
}

TEST(MatrixMarket, SymmetricArrayExpands) {
  // Lower triangle, column-major: columns (1..3): c1: m11 m21 m31, c2: m22
  // m32, c3: m33.
  std::stringstream ss(
      "%%MatrixMarket matrix array real symmetric\n"
      "3 3\n"
      "1\n2\n3\n4\n5\n6\n");
  const la::Matrix m = la::read_matrix_market(ss);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(1, 0), 2.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 1), 5.0);
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m(2, 2), 6.0);
}

TEST(MatrixMarket, IntegerFieldAccepted) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 2 9\n");
  EXPECT_EQ(la::read_matrix_market(ss)(1, 1), 9.0);
}

TEST(MatrixMarket, RejectsBadInput) {
  {
    std::stringstream ss("not a matrix market file\n");
    EXPECT_THROW(la::read_matrix_market(ss), rcs::Error);
  }
  {
    std::stringstream ss("%%MatrixMarket matrix coordinate complex general\n");
    EXPECT_THROW(la::read_matrix_market(ss), rcs::Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");  // second entry missing
    EXPECT_THROW(la::read_matrix_market(ss), rcs::Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");  // out of range
    EXPECT_THROW(la::read_matrix_market(ss), rcs::Error);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const la::Matrix m = la::diagonally_dominant(6, 77);
  const std::string path = ::testing::TempDir() + "/rcs_io_test.mtx";
  la::save_matrix_market(path, m.view());
  const la::Matrix back = la::load_matrix_market(path);
  EXPECT_TRUE(la::bit_equal(m.view(), back.view()));
  EXPECT_THROW(la::load_matrix_market("/nonexistent/dir/x.mtx"), rcs::Error);
}

}  // namespace
