// Tests for the common utilities: error macros, RNG, Span2D, statistics,
// tables, and the CLI parser.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/span2d.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace rcs {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(RCS_CHECK(1 + 1 == 2));
  try {
    RCS_CHECK_MSG(false, "n = " << 42);
    FAIL() << "expected rcs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("n = 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(9);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.uniform_index(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.uniform());
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
}

TEST(Span2D, IndexingAndBlocks) {
  std::vector<double> buf(12);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = double(i);
  Span2D<double> v(buf.data(), 3, 4);
  EXPECT_EQ(v(0, 0), 0.0);
  EXPECT_EQ(v(2, 3), 11.0);
  auto blk = v.block(1, 1, 2, 2);
  EXPECT_EQ(blk(0, 0), 5.0);
  EXPECT_EQ(blk(1, 1), 10.0);
  EXPECT_EQ(blk.stride(), 4u);
  blk(0, 0) = -1.0;
  EXPECT_EQ(v(1, 1), -1.0);
}

TEST(Span2D, ConstConversion) {
  std::vector<double> buf(4, 1.0);
  Span2D<double> v(buf.data(), 2, 2);
  Span2D<const double> cv = v;
  EXPECT_EQ(cv(1, 1), 1.0);
}

TEST(RunningStats, MeanVarianceExtrema) {
  RunningStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats st;
  st.add(3.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.min(), 3.0);
  EXPECT_EQ(st.max(), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile({1.0}, 120), Error);
}

TEST(Geomean, Basics) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_THROW(geomean({1.0, -1.0}), Error);
  EXPECT_THROW(geomean({}), Error);
}

TEST(Table, AsciiLayout) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t;
  t.set_header({"x", "y"});
  t.add_row({"has,comma", "has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Table, RowWidthEnforced) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::num(1234567LL), "1234567");
  EXPECT_EQ(Table::seconds(2.5), "2.5 s");
  EXPECT_EQ(Table::seconds(2.5e-3), "2.5 ms");
  EXPECT_EQ(Table::seconds(2.5e-6), "2.5 us");
}

TEST(Cli, ParsesTypedFlags) {
  Cli cli("test");
  cli.add_int("n", 10, "size");
  cli.add_double("rate", 1.5, "rate");
  cli.add_string("mode", "hybrid", "mode");
  cli.add_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--n", "20", "--rate=2.5", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.5);
  EXPECT_EQ(cli.get_string("mode"), "hybrid");
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli;
  cli.add_int("n", 1, "");
  const char* argv[] = {"prog", "--bogus", "3"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsBadValue) {
  Cli cli;
  cli.add_int("n", 1, "");
  const char* argv[] = {"prog", "--n", "abc"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.get_int("n"), Error);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli;
  cli.add_int("n", 1, "");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ExplicitBoolValue) {
  Cli cli;
  cli.add_bool("flag", true, "");
  const char* argv[] = {"prog", "--flag", "false"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_FALSE(cli.get_bool("flag"));
}

}  // namespace
}  // namespace rcs
