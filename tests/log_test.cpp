// Tests for the leveled logger: RCS_LOG_LEVEL parsing, enabled() gating,
// and set_level round-trips.

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace rcs {
namespace {

using log::Level;

TEST(LogParse, AllLevelNames) {
  EXPECT_EQ(log::parse_level("trace"), Level::Trace);
  EXPECT_EQ(log::parse_level("debug"), Level::Debug);
  EXPECT_EQ(log::parse_level("info"), Level::Info);
  EXPECT_EQ(log::parse_level("warn"), Level::Warn);
  EXPECT_EQ(log::parse_level("error"), Level::Error);
  EXPECT_EQ(log::parse_level("off"), Level::Off);
}

TEST(LogParse, GarbageFallsBack) {
  EXPECT_EQ(log::parse_level(nullptr), Level::Warn);
  EXPECT_EQ(log::parse_level(""), Level::Warn);
  EXPECT_EQ(log::parse_level("verbose"), Level::Warn);
  EXPECT_EQ(log::parse_level("WARN"), Level::Warn);   // case-sensitive
  EXPECT_EQ(log::parse_level("Trace"), Level::Warn);
  EXPECT_EQ(log::parse_level("trace "), Level::Warn);  // no trimming
  EXPECT_EQ(log::parse_level("2"), Level::Warn);
}

TEST(LogParse, ExplicitFallback) {
  EXPECT_EQ(log::parse_level(nullptr, Level::Error), Level::Error);
  EXPECT_EQ(log::parse_level("bogus", Level::Off), Level::Off);
  EXPECT_EQ(log::parse_level("debug", Level::Off), Level::Debug);
}

TEST(LogLevel, SetLevelRoundTrip) {
  const Level saved = log::level();
  for (Level lvl : {Level::Trace, Level::Debug, Level::Info, Level::Warn,
                    Level::Error, Level::Off}) {
    log::set_level(lvl);
    EXPECT_EQ(log::level(), lvl);
  }
  log::set_level(saved);
}

TEST(LogLevel, EnabledGatesAtOrAboveThreshold) {
  const Level saved = log::level();

  log::set_level(Level::Warn);
  EXPECT_FALSE(log::enabled(Level::Trace));
  EXPECT_FALSE(log::enabled(Level::Debug));
  EXPECT_FALSE(log::enabled(Level::Info));
  EXPECT_TRUE(log::enabled(Level::Warn));
  EXPECT_TRUE(log::enabled(Level::Error));

  log::set_level(Level::Trace);
  EXPECT_TRUE(log::enabled(Level::Trace));
  EXPECT_TRUE(log::enabled(Level::Error));

  log::set_level(Level::Off);
  EXPECT_FALSE(log::enabled(Level::Error));
  // Only Level::Off itself clears the Off threshold; RCS_LOG never emits
  // at Off, so everything is silenced.
  EXPECT_TRUE(log::enabled(Level::Off));

  log::set_level(saved);
}

TEST(LogMacro, SuppressedMessageDoesNotEvaluateStream) {
  const Level saved = log::level();
  log::set_level(Level::Off);
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  RCS_LOG(Error) << "never emitted " << count();
  EXPECT_EQ(evaluations, 0);
  log::set_level(saved);
}

}  // namespace
}  // namespace rcs
