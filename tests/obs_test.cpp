// Tests for the telemetry layer: metrics registry semantics and concurrency,
// wall-clock trace export, the simulated-trace exporters, provenance, drift
// reports, and the telemetry-on-vs-off determinism guard.

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/drift.hpp"
#include "core/lu_functional.hpp"
#include "core/predict.hpp"
#include "linalg/generate.hpp"
#include "net/minimpi.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "sim/trace.hpp"

namespace core = rcs::core;
namespace common = rcs::common;
namespace la = rcs::linalg;
namespace obs = rcs::obs;

namespace {

/// Saves and restores the global telemetry switches around a test.
class TelemetryGuard {
 public:
  TelemetryGuard()
      : metrics_(obs::metrics_enabled()), trace_(obs::trace_enabled()) {}
  ~TelemetryGuard() {
    obs::set_metrics_enabled(metrics_);
    obs::set_trace_enabled(trace_);
  }

 private:
  bool metrics_;
  bool trace_;
};

TEST(Metrics, CounterGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramBucketsAndPercentiles) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 1000.0 * 1001.0 / 2.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Buckets are log-spaced powers of two: the percentile estimate is coarse
  // but must bracket the true value's bucket.
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = h.percentile(99.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(Metrics, HistogramPercentileEdgeCases) {
  obs::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);

  // Single sample in bucket [4, 8): every percentile stays in that bucket.
  obs::Histogram one;
  one.record(5.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(one.percentile(50.0), 6.0);
  EXPECT_DOUBLE_EQ(one.percentile(100.0), 8.0);
  // Regression: p > 100 used to fall through to the histogram's global
  // upper bound (~4.6e18); it must clamp to the last non-empty bucket.
  EXPECT_DOUBLE_EQ(one.percentile(150.0), 8.0);

  // Sub-1.0 samples land in bucket 0 = [0, 1).
  obs::Histogram small;
  small.record(0.25);
  EXPECT_DOUBLE_EQ(small.percentile(0.0), 0.0);
  EXPECT_LE(small.percentile(100.0), 1.0);

  // The overflow bucket has no finite upper bound: percentiles clamp to
  // twice its lower bound instead of returning infinity.
  obs::Histogram overflow;
  overflow.record(1e300);
  overflow.record(1e301);
  const double top = std::ldexp(1.0, 63);  // 2 * the last bucket's lo
  EXPECT_DOUBLE_EQ(overflow.percentile(100.0), top);
  EXPECT_DOUBLE_EQ(overflow.percentile(150.0), top);
  EXPECT_FALSE(std::isinf(overflow.percentile(99.0)));
}

TEST(Metrics, HistogramMinMaxTrackExtrema) {
  obs::Histogram h;
  // Zero-count guard: an empty histogram must export zeros, not the ±inf
  // tracking sentinels.
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);

  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  h.record(0.25);
  h.record(300.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 300.0);

  h.reset();
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(Metrics, HistogramExportCarriesBucketsAndExtrema) {
  auto& reg = obs::Registry::global();
  obs::Histogram& h = reg.histogram("obs_test.export_hist");
  h.reset();
  h.record(3.0);    // bucket (2, 4]
  h.record(3.5);    // same bucket
  h.record(100.0);  // bucket (64, 128]
  h.record(1e300);  // unbounded overflow bucket

  const auto snap = reg.snapshot();
  const auto it = snap.find("obs_test.export_hist");
  ASSERT_NE(it, snap.end());
  const obs::MetricValue& v = it->second;
  EXPECT_EQ(v.count, 4u);
  EXPECT_DOUBLE_EQ(v.min, 3.0);
  EXPECT_DOUBLE_EQ(v.max, 1e300);
  ASSERT_EQ(v.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(v.buckets[0].le, 4.0);
  EXPECT_EQ(v.buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(v.buckets[1].le, 128.0);
  EXPECT_EQ(v.buckets[1].count, 1u);
  EXPECT_TRUE(std::isinf(v.buckets[2].le));
  EXPECT_EQ(v.buckets[2].count, 1u);
  std::uint64_t bucket_total = 0;
  for (const obs::HistogramBucket& b : v.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, v.count);

  std::ostringstream json;
  reg.write_json(json);
  const std::string js = json.str();
  EXPECT_NE(js.find("\"min\": 3"), std::string::npos);
  EXPECT_NE(js.find("\"max\": 1e+300"), std::string::npos);
  EXPECT_NE(js.find("{\"le\": 4, \"count\": 2}"), std::string::npos);
  // The unbounded last bucket exports "le": null — "inf" is not JSON.
  EXPECT_NE(js.find("{\"le\": null, \"count\": 1}"), std::string::npos);
  EXPECT_EQ(js.find("inf"), std::string::npos);

  std::ostringstream text;
  reg.write_text(text);
  const std::string tx = text.str();
  EXPECT_NE(tx.find("min=3"), std::string::npos);
  EXPECT_NE(tx.find("max=1e+300"), std::string::npos);
  EXPECT_NE(tx.find("le=4:2"), std::string::npos);
  EXPECT_NE(tx.find("le_inf:1"), std::string::npos);
  h.reset();
}

TEST(Metrics, EmptyHistogramExportsZeros) {
  auto& reg = obs::Registry::global();
  reg.histogram("obs_test.empty_hist").reset();
  const auto snap = reg.snapshot();
  const auto it = snap.find("obs_test.empty_hist");
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->second.count, 0u);
  EXPECT_DOUBLE_EQ(it->second.min, 0.0);
  EXPECT_DOUBLE_EQ(it->second.max, 0.0);
  EXPECT_TRUE(it->second.buckets.empty());
  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"buckets\": []"), std::string::npos);
}

TEST(Metrics, RegistryReturnsStableInstancesAndRejectsKindCollisions) {
  auto& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("obs_test.stable");
  obs::Counter& b = reg.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.histogram("obs_test.stable"), std::logic_error);
  EXPECT_THROW(reg.gauge("obs_test.stable"), std::logic_error);
}

TEST(Metrics, PoolHammeredCountersAreExact) {
  auto& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.hammer");
  obs::Histogram& h = reg.histogram("obs_test.hammer_hist");
  c.reset();
  h.reset();

  constexpr std::size_t kItems = 200000;
  common::ThreadPool::set_global_threads(8);
  common::parallel_for(0, kItems, 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      c.add(1);
      h.record(static_cast<double>(i % 64 + 1));
    }
  });
  common::ThreadPool::set_global_threads(1);

  EXPECT_EQ(c.value(), kItems);
  EXPECT_EQ(h.count(), kItems);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kItems; ++i) {
    expected_sum += static_cast<double>(i % 64 + 1);
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
}

TEST(Metrics, SnapshotAndExports) {
  auto& reg = obs::Registry::global();
  reg.counter("obs_test.snap").reset();
  reg.counter("obs_test.snap").add(5);

  const auto snap = reg.snapshot();
  const auto it = snap.find("obs_test.snap");
  ASSERT_NE(it, snap.end());
  EXPECT_DOUBLE_EQ(it->second.value, 5.0);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"obs_test.snap\""), std::string::npos);

  std::ostringstream text;
  reg.write_text(text);
  EXPECT_NE(text.str().find("obs_test.snap"), std::string::npos);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  TelemetryGuard guard;
  obs::set_trace_enabled(true);
  obs::clear_trace();
  obs::set_thread_lane("obs_test main");
  { obs::ScopedTimer t("unit \"quoted\"", "test"); }
  { obs::ScopedTimer t("second", "test"); }
  obs::set_trace_enabled(false);

  EXPECT_GE(obs::trace_event_count(), 2u);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["), 0u);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("obs_test main"), std::string::npos);
  EXPECT_NE(s.find("unit \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  // Balanced braces/brackets (no JSON parser in the test deps; structural
  // balance plus the exact prefix is a solid smoke check).
  long braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char ch = s[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
      continue;
    }
    if (ch == '"') in_str = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  obs::clear_trace();
}

TEST(Trace, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak"), "line\\nbreak");
}

/// Structural JSON balance check (brace/bracket depth outside strings, with
/// escape handling) — the test deps have no JSON parser, and an exporter
/// that truncates mid-escape breaks exactly this.
bool json_balanced(const std::string& s) {
  long braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char ch = s[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
      continue;
    }
    if (ch == '"') in_str = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_str;
}

TEST(Trace, ChromeTraceSurvivesLongAndHostileNames) {
  TelemetryGuard guard;
  obs::set_trace_enabled(true);
  obs::clear_trace();
  // Regression: the exporter used to snprintf whole events into a 256-byte
  // buffer, so a long escaped name truncated mid-escape into invalid JSON.
  static std::string long_name;
  long_name = "hostile \"name\" with \\ and \n controls ";
  for (int i = 0; i < 40; ++i) long_name += "padding-" + std::to_string(i);
  static std::string long_lane(400, 'L');
  obs::set_thread_lane(long_lane);
  obs::record_span(long_name.c_str(), "test", 0, 1000);
  obs::set_trace_enabled(false);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_TRUE(json_balanced(s)) << s.substr(0, 400);
  // The full escaped name must be present, not a truncated prefix.
  EXPECT_NE(s.find(obs::json_escape(long_name)), std::string::npos);
  EXPECT_NE(s.find(long_lane), std::string::npos);
  EXPECT_NE(s.find("padding-39"), std::string::npos);
  obs::clear_trace();
  obs::set_thread_lane("obs_test main");
}

/// Extract the integer after the first `"tid": ` that follows `anchor`.
long tid_after(const std::string& s, const std::string& anchor) {
  const std::size_t at = s.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t tid = s.find("\"tid\": ", at);
  if (tid == std::string::npos) return -1;
  return std::strtol(s.c_str() + tid + 7, nullptr, 10);
}

/// Extract the tid of the thread_name metadata event naming `lane`.
long lane_tid(const std::string& s, const std::string& lane) {
  const std::string anchor = "\"args\": {\"name\": \"" + lane + "\"}";
  const std::size_t at = s.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t tid = s.rfind("\"tid\": ", at);
  if (tid == std::string::npos) return -1;
  return std::strtol(s.c_str() + tid + 7, nullptr, 10);
}

// Regression: trace lanes used to be pinned to OS threads
// (set_thread_lane), so two ranks multiplexed onto one fiber worker wrote
// into a single shared lane. Lane identity now lives on the rank context
// (saved/restored on every fiber switch): with p=2 ranks forced onto ONE
// worker loop, each rank's span must land in its own "rank N" lane, on
// distinct tids, even though both executed on the same OS thread.
TEST(Trace, FiberRanksSharingAWorkerKeepDistinctLanes) {
  TelemetryGuard guard;
  obs::set_trace_enabled(true);
  obs::clear_trace();

  rcs::net::NetworkParams np;
  np.bytes_per_s = 1e9;
  np.latency_s = 0.0;
  rcs::net::World world(2, np);
  world.set_max_workers(1);  // both ranks share a single worker loop
  world.run([](rcs::net::Comm& comm) {
    if (comm.rank() == 0) {
      // Park first (recv blocks), so the worker switches to rank 1 and
      // back — the span below is recorded after a lane save/restore.
      comm.recv(1, 1);
      obs::record_span("probe rank 0", "test", 0, 10);
      comm.send_value(1, 2, 1);
    } else {
      obs::record_span("probe rank 1", "test", 0, 10);
      comm.send_value(0, 1, 1);
      comm.recv(0, 2);
    }
  });
  obs::set_trace_enabled(false);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_TRUE(json_balanced(s)) << s.substr(0, 400);
  const long lane0 = lane_tid(s, "rank 0");
  const long lane1 = lane_tid(s, "rank 1");
  ASSERT_GE(lane0, 0) << "missing lane metadata for rank 0";
  ASSERT_GE(lane1, 0) << "missing lane metadata for rank 1";
  EXPECT_NE(lane0, lane1);
  EXPECT_EQ(tid_after(s, "\"name\": \"probe rank 0\""), lane0);
  EXPECT_EQ(tid_after(s, "\"name\": \"probe rank 1\""), lane1);
  obs::clear_trace();
}

TEST(SimTrace, ChromeJsonEscapesHostileLabels) {
  rcs::sim::TraceRecorder rec(true);
  std::string label = "wave \"0\" back\\slash\nnewline\ttab ";
  label.append(300, 'x');  // well past any fixed formatting buffer
  rec.add("node0.cpu", 0.0, 1.0, label);
  rec.add("node0.\"odd\".resource", 1.0, 2.0, "plain");

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string s = os.str();
  EXPECT_TRUE(json_balanced(s)) << s.substr(0, 400);
  EXPECT_NE(s.find(obs::json_escape(label)), std::string::npos);
  EXPECT_NE(s.find("node0.\\\"odd\\\".resource"), std::string::npos);
  EXPECT_EQ(s.find('\n', 0), s.find("\n{"));  // no raw newline inside strings
}

TEST(SimTrace, ChromeJsonKeepsTimestampPrecision) {
  rcs::sim::TraceRecorder rec(true);
  // Distinct microsecond-scale events late in a long run: default 6-digit
  // stream precision would collapse these to the same "ts".
  rec.add("node0.cpu", 123.4567891, 123.4567892, "a");
  rec.add("node0.cpu", 123.4567893, 123.4567894, "b");
  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("123456789.1"), std::string::npos);
  EXPECT_NE(s.find("123456789.3"), std::string::npos);
  // The recorder restores the stream's precision afterwards.
  EXPECT_EQ(os.precision(), std::ostringstream().precision());
}

TEST(SimTrace, CommEventsRecordedMergedAndCleared) {
  rcs::sim::TraceRecorder rec(true);
  rcs::sim::CommEvent ev;
  ev.kind = rcs::sim::CommEvent::Kind::Send;
  ev.rank = 0;
  ev.peer = 1;
  ev.t0 = 1.0;
  ev.t1 = 2.0;
  ev.depart = 1.0;
  ev.arrival = 2.0;
  ev.bytes = 64;
  ev.phase = "send";
  rec.add_comm(ev);
  ASSERT_EQ(rec.comm_events().size(), 1u);
  EXPECT_EQ(rec.comm_events()[0].peer, 1);

  rcs::sim::TraceRecorder other(true);
  ev.rank = 1;
  ev.kind = rcs::sim::CommEvent::Kind::Recv;
  other.add_comm(ev);
  rec.merge_from(std::move(other));
  EXPECT_EQ(rec.comm_events().size(), 2u);

  // Disabled recorders drop comm events like they drop spans.
  rcs::sim::TraceRecorder off(false);
  off.add_comm(ev);
  EXPECT_TRUE(off.comm_events().empty());

  rec.clear();
  EXPECT_TRUE(rec.comm_events().empty());
  EXPECT_TRUE(rec.spans().empty());
}

TEST(Trace, PhaseSpanAccumulatesWallCounter) {
  TelemetryGuard guard;
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::Registry::global().counter("test.wall.spin_ns");
  const std::uint64_t before = c.value();
  {
    obs::PhaseSpan span("test", "spin");
    // Burn a little real time so the counter must move.
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) {
      x = x + std::sqrt(static_cast<double>(i));
    }
  }
  EXPECT_GT(c.value(), before);
}

TEST(SimTrace, CsvEscapesSeparatorsAndQuotes) {
  rcs::sim::TraceRecorder rec(true);
  rec.add("node0.cpu", 0.0, 1.0, "plain");
  rec.add("net.0->1", 1.0, 2.0, "bcast D_tt, wave \"0\"");
  rec.add("node1.cpu", 2.0, 3.0, "multi\nline");
  std::ostringstream os;
  rec.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("resource,start,end,label"), std::string::npos);
  EXPECT_NE(s.find("\"bcast D_tt, wave \"\"0\"\"\""), std::string::npos);
  EXPECT_NE(s.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(s.find("node0.cpu,0,1,plain"), std::string::npos);
}

TEST(SimTrace, BusyByLabelAndChromeExport) {
  rcs::sim::TraceRecorder rec(true);
  rec.add("node0.cpu", 0.0, 1.0, "opMM");
  rec.add("node0.fpga", 0.5, 2.5, "opMM");
  rec.add("node1.cpu", 0.0, 0.25, "opMS");
  const auto busy = rec.busy_by_label();
  EXPECT_DOUBLE_EQ(busy.at("opMM"), 3.0);
  EXPECT_DOUBLE_EQ(busy.at("opMS"), 0.25);

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["), 0u);
  EXPECT_NE(s.find("node0.fpga"), std::string::npos);
  EXPECT_NE(s.find("\"cat\": \"sim\""), std::string::npos);
}

TEST(Provenance, CollectsNonEmptyFields) {
  const obs::Provenance p = obs::Provenance::collect();
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_FALSE(p.hostname.empty());
  std::ostringstream os;
  p.write_json(os);
  EXPECT_NE(os.str().find("\"git_sha\""), std::string::npos);
  EXPECT_NE(os.str().find("\"compiler\""), std::string::npos);
}

core::LuConfig small_lu_cfg() {
  core::LuConfig cfg;
  cfg.n = 64;
  cfg.b = 16;
  cfg.mode = core::DesignMode::Hybrid;
  return cfg;
}

core::SystemParams xd1_p3() {
  core::SystemParams sys = core::SystemParams::cray_xd1();
  sys.p = 3;
  return sys;
}

TEST(Determinism, TelemetryOnVsOffIsByteIdentical) {
  TelemetryGuard guard;
  const la::Matrix a = la::diagonally_dominant(64, 99);
  const core::LuConfig cfg = small_lu_cfg();

  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  const auto off = core::lu_functional(xd1_p3(), cfg, a);

  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const auto on = core::lu_functional(xd1_p3(), cfg, a);
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(false);

  EXPECT_EQ(on.run.seconds, off.run.seconds);
  EXPECT_EQ(on.run.bytes_on_network, off.run.bytes_on_network);
  EXPECT_EQ(on.run.cpu_busy_seconds, off.run.cpu_busy_seconds);
  EXPECT_EQ(on.run.fpga_busy_seconds, off.run.fpga_busy_seconds);
  EXPECT_TRUE(la::bit_equal(on.factored.view(), off.factored.view()));
  obs::clear_trace();
}

TEST(Drift, LuReportLinesUpModelSimulationAndWallClock) {
  TelemetryGuard guard;
  const la::Matrix a = la::diagonally_dominant(64, 7);
  const core::DriftReport rep =
      core::lu_drift_report(xd1_p3(), small_lu_cfg(), a);

  ASSERT_EQ(rep.phases.size(), 5u);
  EXPECT_GT(rep.predicted_latency_s, 0.0);
  EXPECT_GT(rep.simulated_makespan_s, 0.0);
  EXPECT_GT(rep.measured_wall_s, 0.0);
  EXPECT_FALSE(rep.utilization.empty());
  for (const auto& ph : rep.phases) {
    EXPECT_GT(ph.predicted_s, 0.0) << ph.phase;
    EXPECT_GT(ph.simulated_s, 0.0) << ph.phase;
    EXPECT_GT(ph.measured_s, 0.0) << ph.phase;
    // Predicted and simulated share the machine model; per-phase busy time
    // should agree tightly for LU (the schedule follows the model).
    EXPECT_LT(ph.drift_simulated(), 0.05) << ph.phase;
  }

  std::ostringstream os;
  rep.write_json(os);
  EXPECT_NE(os.str().find("\"design\""), std::string::npos);
  EXPECT_NE(os.str().find("\"drift_measured\""), std::string::npos);
}

TEST(Predict, LuPhaseAggregatesMatchWholeModelFlops) {
  // The per-phase CPU+FPGA aggregates and the critical-path prediction are
  // views of one model; the phase sum must be >= the latency (resource-
  // seconds across p ranks can't beat the critical path).
  const auto sys = xd1_p3();
  const auto cfg = small_lu_cfg();
  const auto phases = core::predict_lu_phase_seconds(sys, cfg);
  double total = 0.0;
  for (const auto& [name, secs] : phases) total += secs;
  const core::Prediction pr = core::predict_lu(sys, cfg);
  EXPECT_GT(total, 0.0);
  EXPECT_GE(total, pr.latency_seconds() * 0.99);
}

}  // namespace
