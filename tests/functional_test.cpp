// Tests for the functional plane: the distributed hybrid designs must
// produce results bit-identical to the sequential references while their
// virtual-time reports stay self-consistent.

#include <gtest/gtest.h>

#include "core/fw_functional.hpp"
#include "core/lu_functional.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/generate.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"

namespace core = rcs::core;
namespace la = rcs::linalg;
namespace gr = rcs::graph;
using core::DesignMode;
using core::SystemParams;

namespace {

/// XD1-parameterized system scaled to p nodes (tests use small worlds).
SystemParams xd1_p(int p) {
  SystemParams sys = SystemParams::cray_xd1();
  sys.p = p;
  return sys;
}

core::LuConfig lu_cfg(long long n, long long b, DesignMode mode) {
  core::LuConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = mode;
  return cfg;
}

core::FwConfig fw_cfg(long long n, long long b, DesignMode mode) {
  core::FwConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.mode = mode;
  return cfg;
}

// ---------------------------------------------------------------------------
// LU functional correctness

class LuFunctional
    : public ::testing::TestWithParam<std::tuple<int, int, int, DesignMode>> {
};

TEST_P(LuFunctional, BitIdenticalToSequentialBlockedLu) {
  const auto [n, b, p, mode] = GetParam();
  const la::Matrix a = la::diagonally_dominant(n, 100 + n + b + p);
  la::Matrix ref = a;
  la::getrf_blocked(ref.view(), b);

  const auto res = core::lu_functional(xd1_p(p), lu_cfg(n, b, mode), a);
  EXPECT_TRUE(la::bit_equal(res.factored.view(), ref.view()))
      << "n=" << n << " b=" << b << " p=" << p << " mode="
      << core::to_string(mode)
      << " max-diff=" << la::max_abs_diff(res.factored.view(), ref.view());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LuFunctional,
    ::testing::Values(
        std::tuple{32, 8, 2, DesignMode::Hybrid},
        std::tuple{48, 16, 3, DesignMode::Hybrid},
        std::tuple{64, 16, 4, DesignMode::Hybrid},
        std::tuple{96, 24, 6, DesignMode::Hybrid},
        std::tuple{64, 16, 4, DesignMode::ProcessorOnly},
        std::tuple{64, 16, 4, DesignMode::FpgaOnly},
        std::tuple{40, 8, 5, DesignMode::Hybrid},
        std::tuple{16, 16, 2, DesignMode::Hybrid}),  // single block
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "b" +
             std::to_string(std::get<1>(pinfo.param)) + "p" +
             std::to_string(std::get<2>(pinfo.param)) +
             std::string(core::to_string(std::get<3>(pinfo.param)))
                 .substr(0, 4);
    });

TEST(LuFunctionalDetail, AllModesProduceIdenticalNumbers) {
  const la::Matrix a = la::diagonally_dominant(48, 7);
  const auto h =
      core::lu_functional(xd1_p(3), lu_cfg(48, 16, DesignMode::Hybrid), a);
  const auto c = core::lu_functional(
      xd1_p(3), lu_cfg(48, 16, DesignMode::ProcessorOnly), a);
  const auto f =
      core::lu_functional(xd1_p(3), lu_cfg(48, 16, DesignMode::FpgaOnly), a);
  EXPECT_TRUE(la::bit_equal(h.factored.view(), c.factored.view()));
  EXPECT_TRUE(la::bit_equal(h.factored.view(), f.factored.view()));
}

TEST(LuFunctionalDetail, LookaheadMatchesBlockingBitExact) {
  for (const auto [n, b, p] : {std::tuple{64LL, 16LL, 3}, {96LL, 16LL, 4},
                               {48LL, 8LL, 5}}) {
    const la::Matrix a = la::diagonally_dominant(
        static_cast<std::size_t>(n), 200 + static_cast<int>(n));
    core::LuConfig cfg = lu_cfg(n, b, DesignMode::Hybrid);
    const auto blocking = core::lu_functional(xd1_p(p), cfg, a);
    cfg.lookahead = true;
    const auto ahead = core::lu_functional(xd1_p(p), cfg, a);
    // The pipeline moves the schedule, never the data.
    EXPECT_TRUE(
        la::bit_equal(blocking.factored.view(), ahead.factored.view()))
        << "n=" << n << " p=" << p;
    // Barrier elimination + overlap must not slow the simulated run.
    EXPECT_LE(ahead.run.seconds, blocking.run.seconds + 1e-12)
        << "n=" << n << " p=" << p;
    ASSERT_TRUE(ahead.overlap.count("opMM"));
    EXPECT_NE(ahead.run.design.find("+lookahead"), std::string::npos);
  }

  // At b = 64 each opMM task computes longer than its stripes take to
  // transfer, so the double-buffering hides a strictly positive share of
  // the stripe time. (At tiny b the stream is producer-bound — the panel's
  // CPU gates the stripe departs — and nothing can be hidden; that is the
  // model's physics, not a pipeline defect.)
  const la::Matrix a = la::diagonally_dominant(256, 456);
  core::LuConfig cfg = lu_cfg(256, 64, DesignMode::Hybrid);
  cfg.lookahead = true;
  const auto ahead = core::lu_functional(xd1_p(3), cfg, a);
  ASSERT_TRUE(ahead.overlap.count("opMM"));
  EXPECT_GT(ahead.overlap.at("opMM").efficiency(), 0.0);
}

TEST(LuFunctionalDetail, SoftFpMatchesNative) {
  const la::Matrix a = la::diagonally_dominant(32, 9);
  const auto native =
      core::lu_functional(xd1_p(3), lu_cfg(32, 8, DesignMode::Hybrid), a,
                          /*use_soft_fp=*/false);
  const auto soft =
      core::lu_functional(xd1_p(3), lu_cfg(32, 8, DesignMode::Hybrid), a,
                          /*use_soft_fp=*/true);
  EXPECT_TRUE(la::bit_equal(native.factored.view(), soft.factored.view()));
}

TEST(LuFunctionalDetail, ResidualIsTiny) {
  const la::Matrix a = la::diagonally_dominant(64, 11);
  const auto res =
      core::lu_functional(xd1_p(4), lu_cfg(64, 16, DesignMode::Hybrid), a);
  EXPECT_LT(la::lu_residual(a.view(), res.factored.view()), 1e-12);
}

TEST(LuFunctionalDetail, ReportIsSelfConsistent) {
  const la::Matrix a = la::diagonally_dominant(64, 13);
  core::LuConfig cfg = lu_cfg(64, 16, DesignMode::Hybrid);
  cfg.b_f = 8;  // force a genuine split (Eq. 4 picks all-CPU at tiny b)
  const auto res = core::lu_functional(xd1_p(4), cfg, a);
  EXPECT_GT(res.run.seconds, 0.0);
  EXPECT_GT(res.run.total_flops, 0.0);
  EXPECT_GT(res.run.cpu_flops, 0.0);
  EXPECT_GT(res.run.fpga_flops, 0.0);  // hybrid used both sides
  EXPECT_GT(res.run.bytes_on_network, 0u);
  EXPECT_GT(res.run.coordination_events, 0u);
  EXPECT_GT(res.run.gflops(), 0.0);
  EXPECT_EQ(res.partition.b_f + res.partition.b_p, 16);
  EXPECT_GE(res.l, 1);
}

TEST(LuFunctionalDetail, ProcessorOnlyNeverTouchesFpga) {
  const la::Matrix a = la::diagonally_dominant(48, 17);
  const auto res = core::lu_functional(
      xd1_p(3), lu_cfg(48, 16, DesignMode::ProcessorOnly), a);
  EXPECT_EQ(res.run.fpga_flops, 0.0);
  EXPECT_EQ(res.run.coordination_events, 0u);
  EXPECT_EQ(res.run.fpga_busy_seconds, 0.0);
}

TEST(LuFunctionalDetail, HybridIsFasterThanBaselinesInSimTime) {
  // Use a block size large enough that opMM dominates.
  const la::Matrix a = la::diagonally_dominant(96, 19);
  const auto h =
      core::lu_functional(xd1_p(4), lu_cfg(96, 24, DesignMode::Hybrid), a);
  const auto f =
      core::lu_functional(xd1_p(4), lu_cfg(96, 24, DesignMode::FpgaOnly), a);
  EXPECT_LT(h.run.seconds, f.run.seconds);
}

TEST(LuFunctionalDetail, ExplicitPartitionOverridesSolver) {
  const la::Matrix a = la::diagonally_dominant(32, 23);
  core::LuConfig cfg = lu_cfg(32, 16, DesignMode::Hybrid);
  cfg.b_f = 8;
  cfg.l = 2;
  const auto res = core::lu_functional(xd1_p(3), cfg, a);
  EXPECT_EQ(res.partition.b_f, 8);
  EXPECT_EQ(res.l, 2);
  la::Matrix ref = a;
  la::getrf_blocked(ref.view(), 16);
  EXPECT_TRUE(la::bit_equal(res.factored.view(), ref.view()));
}

TEST(LuFunctionalDetail, DmaFanoutSameResultLessSenderTime) {
  const la::Matrix a = la::diagonally_dominant(96, 21);
  core::LuConfig cfg = lu_cfg(96, 24, DesignMode::Hybrid);
  cfg.b_f = 8;
  cfg.l = 2;
  core::LuConfig dma = cfg;
  dma.fanout = core::SendFanout::PaperSingle;
  const auto serial = core::lu_functional(xd1_p(4), cfg, a);
  const auto viadma = core::lu_functional(xd1_p(4), dma, a);
  EXPECT_TRUE(la::bit_equal(serial.factored.view(), viadma.factored.view()));
  // DMA distribution frees the panel CPU: never slower end to end.
  EXPECT_LE(viadma.run.seconds, serial.run.seconds * 1.0001);
}

TEST(LuFunctionalDetail, TraceCapturesAllNodes) {
  const la::Matrix a = la::diagonally_dominant(48, 23);
  core::LuConfig cfg = lu_cfg(48, 16, DesignMode::Hybrid);
  cfg.b_f = 8;
  rcs::sim::TraceRecorder trace(true);
  core::lu_functional(xd1_p(3), cfg, a, false, &trace);
  const auto busy = trace.busy_by_resource();
  EXPECT_GT(busy.count("node0.cpu"), 0u);
  EXPECT_GT(busy.count("node1.cpu"), 0u);
  EXPECT_GT(busy.count("node2.fpga"), 0u);
  for (const auto& [res, t] : busy) EXPECT_GT(t, 0.0) << res;
}

TEST(LuFunctionalDetail, RejectsBadShapes) {
  const la::Matrix a = la::diagonally_dominant(30, 29);
  EXPECT_THROW(
      core::lu_functional(xd1_p(3), lu_cfg(30, 8, DesignMode::Hybrid), a),
      rcs::Error);
  EXPECT_THROW(
      core::lu_functional(xd1_p(1), lu_cfg(32, 8, DesignMode::Hybrid),
                          la::diagonally_dominant(32, 1)),
      rcs::Error);
}

// ---------------------------------------------------------------------------
// Floyd–Warshall functional correctness

class FwFunctional
    : public ::testing::TestWithParam<std::tuple<int, int, int, DesignMode>> {
};

TEST_P(FwFunctional, BitIdenticalToSequentialBlockedFw) {
  const auto [n, b, p, mode] = GetParam();
  const la::Matrix d0 = gr::random_digraph(n, 200 + n + b + p, 0.5);
  la::Matrix ref = d0;
  gr::blocked_floyd_warshall(ref, b);

  const auto res = core::fw_functional(xd1_p(p), fw_cfg(n, b, mode), d0);
  EXPECT_TRUE(la::bit_equal(res.distances.view(), ref.view()))
      << "n=" << n << " b=" << b << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FwFunctional,
    ::testing::Values(
        std::tuple{32, 8, 2, DesignMode::Hybrid},
        std::tuple{48, 8, 3, DesignMode::Hybrid},
        std::tuple{64, 8, 4, DesignMode::Hybrid},
        std::tuple{96, 8, 6, DesignMode::Hybrid},
        std::tuple{48, 8, 3, DesignMode::ProcessorOnly},
        std::tuple{48, 8, 3, DesignMode::FpgaOnly},
        std::tuple{80, 16, 5, DesignMode::Hybrid},
        std::tuple{32, 16, 2, DesignMode::Hybrid}),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "b" +
             std::to_string(std::get<1>(pinfo.param)) + "p" +
             std::to_string(std::get<2>(pinfo.param)) +
             std::string(core::to_string(std::get<3>(pinfo.param)))
                 .substr(0, 4);
    });

TEST(FwFunctionalDetail, MatchesTextbookFloydWarshall) {
  // vs the *unblocked* textbook algorithm equality holds to rounding only
  // (cross-block path sums associate differently); the bitwise check against
  // the sequential blocked implementation is in the parameterized suite.
  const la::Matrix d0 = gr::random_digraph(48, 55, 0.4);
  la::Matrix ref = d0;
  gr::floyd_warshall(ref);
  const auto res =
      core::fw_functional(xd1_p(3), fw_cfg(48, 8, DesignMode::Hybrid), d0);
  EXPECT_LT(la::max_abs_diff(res.distances.view(), ref.view()), 1e-9);
}

TEST(FwFunctionalDetail, AllModesProduceIdenticalNumbers) {
  const la::Matrix d0 = gr::random_digraph(48, 57, 0.6);
  const auto h =
      core::fw_functional(xd1_p(3), fw_cfg(48, 8, DesignMode::Hybrid), d0);
  const auto c = core::fw_functional(
      xd1_p(3), fw_cfg(48, 8, DesignMode::ProcessorOnly), d0);
  const auto f =
      core::fw_functional(xd1_p(3), fw_cfg(48, 8, DesignMode::FpgaOnly), d0);
  EXPECT_TRUE(la::bit_equal(h.distances.view(), c.distances.view()));
  EXPECT_TRUE(la::bit_equal(h.distances.view(), f.distances.view()));
}

TEST(FwFunctionalDetail, LookaheadMatchesBlockingBitExact) {
  for (const auto [n, b, p] : {std::tuple{64LL, 16LL, 2}, {96LL, 16LL, 3},
                               {64LL, 8LL, 4}}) {
    const la::Matrix d0 =
        gr::random_digraph(static_cast<std::size_t>(n), 5, 0.35);
    core::FwConfig cfg = fw_cfg(n, b, DesignMode::Hybrid);
    const auto blocking = core::fw_functional(xd1_p(p), cfg, d0);
    cfg.lookahead = true;
    const auto ahead = core::fw_functional(xd1_p(p), cfg, d0);
    EXPECT_TRUE(
        la::bit_equal(blocking.distances.view(), ahead.distances.view()))
        << "n=" << n << " p=" << p;
    EXPECT_LE(ahead.run.seconds, blocking.run.seconds + 1e-12)
        << "n=" << n << " p=" << p;
    // The per-wave pivot-block prefetch hides the op3 transfers entirely.
    ASSERT_TRUE(ahead.overlap.count("op3"));
    EXPECT_GT(ahead.overlap.at("op3").efficiency(), 0.0);
    EXPECT_NE(ahead.run.design.find("+lookahead"), std::string::npos);
  }
}

TEST(FwFunctionalDetail, SoftFpMatchesNative) {
  const la::Matrix d0 = gr::random_digraph(32, 59, 0.5);
  const auto native = core::fw_functional(
      xd1_p(2), fw_cfg(32, 8, DesignMode::Hybrid), d0, false);
  const auto soft = core::fw_functional(
      xd1_p(2), fw_cfg(32, 8, DesignMode::Hybrid), d0, true);
  EXPECT_TRUE(la::bit_equal(native.distances.view(), soft.distances.view()));
}

TEST(FwFunctionalDetail, DisconnectedGraphKeepsInfinities) {
  la::Matrix d0(32, 32, gr::kNoEdge);
  for (int i = 0; i < 32; ++i) d0(i, i) = 0.0;
  // Two 16-vertex cliques with no inter-clique edges.
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      if (i != j) {
        d0(i, j) = 1.0;
        d0(16 + i, 16 + j) = 1.0;
      }
  const auto res =
      core::fw_functional(xd1_p(2), fw_cfg(32, 8, DesignMode::Hybrid), d0);
  EXPECT_EQ(res.distances(0, 20), gr::kNoEdge);
  EXPECT_EQ(res.distances(20, 0), gr::kNoEdge);
  EXPECT_EQ(res.distances(0, 5), 1.0);
}

TEST(FwFunctionalDetail, ReportIsSelfConsistent) {
  const la::Matrix d0 = gr::random_digraph(64, 61, 0.5);
  const auto res =
      core::fw_functional(xd1_p(4), fw_cfg(64, 8, DesignMode::Hybrid), d0);
  EXPECT_GT(res.run.seconds, 0.0);
  EXPECT_GT(res.run.total_flops, 0.0);
  EXPECT_GT(res.run.bytes_on_network, 0u);
  EXPECT_GT(res.run.fpga_flops, 0.0);
  EXPECT_GT(res.run.coordination_events, 0u);
}

TEST(FwFunctionalDetail, TotalFlopsAre2NCubed) {
  const la::Matrix d0 = gr::random_digraph(64, 63, 0.5);
  const auto res =
      core::fw_functional(xd1_p(4), fw_cfg(64, 8, DesignMode::Hybrid), d0);
  const double n = 64.0;
  EXPECT_NEAR(res.run.total_flops, 2.0 * n * n * n, 1e-6);
}

TEST(FwFunctionalDetail, ExplicitSplitOverridesSolver) {
  const la::Matrix d0 = gr::random_digraph(64, 65, 0.5);
  core::FwConfig cfg = fw_cfg(64, 8, DesignMode::Hybrid);
  cfg.l1 = 1;
  const auto res = core::fw_functional(xd1_p(4), cfg, d0);
  EXPECT_EQ(res.partition.l1, 1);
  EXPECT_EQ(res.partition.l2, 1);  // L = 64/(8*4) = 2
  la::Matrix ref = d0;
  gr::blocked_floyd_warshall(ref, 8);
  EXPECT_TRUE(la::bit_equal(res.distances.view(), ref.view()));
}

TEST(FwFunctionalDetail, RejectsBadLayout) {
  const la::Matrix d0 = gr::random_digraph(60, 67, 0.5);
  EXPECT_THROW(
      core::fw_functional(xd1_p(4), fw_cfg(60, 8, DesignMode::Hybrid), d0),
      rcs::Error);
}

}  // namespace
