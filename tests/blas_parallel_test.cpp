// The parallel compute runtime must be invisible in the numbers: the packed
// parallel gemm and the parallelized MatMulArray emulation have to produce
// results bit-identical to their naive/serial counterparts at every thread
// count, including ragged shapes that exercise the microkernel edge paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/system.hpp"
#include "fpga/matmul_array.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"

namespace la = rcs::linalg;
namespace common = rcs::common;
using rcs::fpga::MatMulArray;

namespace {

// Thread counts the whole suite sweeps: serial, small, and a deliberately
// oversubscribed odd count (the issue's RCS_THREADS ∈ {1, 2, 7}).
const int kThreadCounts[] = {1, 2, 7};

// Shapes with non-multiple-of-tile m/n/k (MR=4, NR=8, KC=256, MC=64) plus
// aligned ones, degenerate edges, and a size big enough to cross panel
// boundaries.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 2},    {4, 8, 8},     {37, 53, 29},
    {64, 64, 64}, {65, 63, 66}, {70, 300, 17}, {128, 260, 130},
};

la::Matrix seeded(std::size_t r, std::size_t c, int seed) {
  return la::random_matrix(r, c, seed);
}

class BlasParallel : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    common::ThreadPool::set_global_threads(GetParam());
  }
  static void TearDownTestSuite() {
    common::ThreadPool::set_global_threads(1);
  }
};

TEST_P(BlasParallel, GemmBitIdenticalToNaive) {
  int seed = 1;
  for (const Shape& s : kShapes) {
    const la::Matrix a = seeded(s.m, s.k, seed++);
    const la::Matrix b = seeded(s.k, s.n, seed++);
    la::Matrix c_ref = seeded(s.m, s.n, 99);  // nonzero C: gemm accumulates
    la::Matrix c = c_ref;
    la::gemm_naive(a.view(), b.view(), c_ref.view());
    la::gemm(a.view(), b.view(), c.view());
    EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " threads=" << GetParam();
  }
}

TEST_P(BlasParallel, GemmTiledBitIdenticalToNaive) {
  const la::Matrix a = seeded(65, 77, 5);
  const la::Matrix b = seeded(77, 41, 6);
  la::Matrix c_ref = seeded(65, 41, 7);
  la::Matrix c = c_ref;
  la::gemm_naive(a.view(), b.view(), c_ref.view());
  la::gemm_tiled(a.view(), b.view(), c.view());
  EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()));
}

TEST_P(BlasParallel, GemmStridedViewsBitIdentical) {
  // The functional plane calls gemm on strided sub-blocks; cover that path.
  const la::Matrix a = seeded(96, 96, 11);
  const la::Matrix b = seeded(96, 96, 12);
  la::Matrix c_ref = seeded(96, 96, 13);
  la::Matrix c = c_ref;
  la::gemm_naive(a.block(5, 3, 70, 50), b.block(3, 7, 50, 61),
                 c_ref.block(9, 20, 70, 61));
  la::gemm(a.block(5, 3, 70, 50), b.block(3, 7, 50, 61),
           c.block(9, 20, 70, 61));
  EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()));
}

TEST_P(BlasParallel, MatMulArrayBitIdenticalToNaive) {
  const MatMulArray array(rcs::core::SystemParams::cray_xd1().mm_fpga);
  int seed = 40;
  for (const Shape& s : kShapes) {
    const la::Matrix c = seeded(s.m, s.k, seed++);
    const la::Matrix d = seeded(s.k, s.n, seed++);
    la::Matrix e_ref = seeded(s.m, s.n, 77);
    la::Matrix e = e_ref;
    // NativeFp::mac is acc + a*b — the same per-entry update, in the same
    // ascending-l order, as gemm_naive.
    la::gemm_naive(c.view(), d.view(), e_ref.view());
    array.multiply_accumulate(c.view(), d.view(), e.view());
    EXPECT_TRUE(la::bit_equal(e.view(), e_ref.view()))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " threads=" << GetParam();
  }
}

TEST_P(BlasParallel, MatMulArraySoftMatchesSerialSoft) {
  const MatMulArray array(rcs::core::SystemParams::cray_xd1().mm_fpga);
  const la::Matrix c = seeded(13, 9, 81);
  const la::Matrix d = seeded(9, 11, 82);
  la::Matrix e_serial = seeded(13, 11, 83);
  la::Matrix e_par = e_serial;

  common::ThreadPool::set_global_threads(1);
  array.multiply_accumulate_soft(c.view(), d.view(), e_serial.view());
  common::ThreadPool::set_global_threads(GetParam());
  array.multiply_accumulate_soft(c.view(), d.view(), e_par.view());
  EXPECT_TRUE(la::bit_equal(e_par.view(), e_serial.view()));

  // NT form, both backends.
  const la::Matrix dt = seeded(11, 9, 84);
  la::Matrix f_serial = seeded(13, 11, 85);
  la::Matrix f_par = f_serial;
  common::ThreadPool::set_global_threads(1);
  array.multiply_accumulate_nt_soft(c.view(), dt.view(), f_serial.view());
  common::ThreadPool::set_global_threads(GetParam());
  array.multiply_accumulate_nt_soft(c.view(), dt.view(), f_par.view());
  EXPECT_TRUE(la::bit_equal(f_par.view(), f_serial.view()));
}

INSTANTIATE_TEST_SUITE_P(Threads, BlasParallel,
                         ::testing::ValuesIn(kThreadCounts));

// ---------------------------------------------------------------------------
// ThreadPool primitive behavior

TEST(ThreadPool, ChunksPartitionTheRange) {
  for (int threads : {1, 2, 3, 8}) {
    common::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  common::ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(0, 10, 6, [&](std::size_t, std::size_t) { ++chunks; });
  EXPECT_EQ(chunks.load(), 1);  // 10 items, grain 6 -> one chunk
}

TEST(ThreadPool, NestedCallsRunSerially) {
  common::ThreadPool::set_global_threads(4);
  std::atomic<int> total{0};
  common::parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // Nested: must degrade to serial, not deadlock.
      common::parallel_for(0, 10, 1,
                           [&](std::size_t nb, std::size_t ne) {
                             total.fetch_add(static_cast<int>(ne - nb));
                           });
    }
  });
  EXPECT_EQ(total.load(), 80);
  common::ThreadPool::set_global_threads(1);
}

TEST(ThreadPool, PropagatesBodyException) {
  common::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  common::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
