// The parallel compute runtime must be invisible in the numbers: the packed
// parallel gemm and the parallelized MatMulArray emulation have to produce
// results bit-identical to their naive/serial counterparts at every thread
// count, including ragged shapes that exercise the microkernel edge paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/system.hpp"
#include "fpga/matmul_array.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "net/minimpi.hpp"

namespace la = rcs::linalg;
namespace simd = rcs::linalg::simd;
namespace common = rcs::common;
using rcs::fpga::MatMulArray;

namespace {

// Thread counts the whole suite sweeps: serial, small, and a deliberately
// oversubscribed odd count (the issue's RCS_THREADS ∈ {1, 2, 7}).
const int kThreadCounts[] = {1, 2, 7};

// Shapes with non-multiple-of-tile m/n/k (MR=4, NR=8, KC=256, MC=64) plus
// aligned ones, degenerate edges, and a size big enough to cross panel
// boundaries.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 2},    {4, 8, 8},     {37, 53, 29},
    {64, 64, 64}, {65, 63, 66}, {70, 300, 17}, {128, 260, 130},
};

// Ragged sweep from {1, 7, 63, 257, 1000}: every extent class (unit, tiny,
// one-under-tile, panel-crossing, above-NC slab) in non-square mixes, each
// kept small enough (m*k*n <= ~2e7) that the naive reference stays fast.
const Shape kRaggedShapes[] = {
    {1, 1000, 7},   {7, 257, 63},  {63, 63, 257},  {257, 1000, 1},
    {1000, 7, 257}, {63, 1000, 63}, {1000, 63, 63}, {257, 257, 257},
};

la::Matrix seeded(std::size_t r, std::size_t c, int seed) {
  return la::random_matrix(r, c, seed);
}

/// Run `body(level)` once per SIMD level this CPU supports, restoring the
/// previously active level afterwards.
template <typename Body>
void for_each_simd_level(const Body& body) {
  const simd::Level saved = simd::active_level();
  for (int lv = 0; lv <= static_cast<int>(simd::max_supported_level());
       ++lv) {
    body(static_cast<simd::Level>(lv));
  }
  simd::set_level(saved);
}

class BlasParallel : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    common::ThreadPool::set_global_threads(GetParam());
  }
  static void TearDownTestSuite() {
    common::ThreadPool::set_global_threads(1);
  }
};

TEST_P(BlasParallel, GemmBitIdenticalToNaive) {
  int seed = 1;
  for (const Shape& s : kShapes) {
    const la::Matrix a = seeded(s.m, s.k, seed++);
    const la::Matrix b = seeded(s.k, s.n, seed++);
    la::Matrix c_ref = seeded(s.m, s.n, 99);  // nonzero C: gemm accumulates
    la::Matrix c = c_ref;
    la::gemm_naive(a.view(), b.view(), c_ref.view());
    la::gemm(a.view(), b.view(), c.view());
    EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " threads=" << GetParam();
  }
}

TEST_P(BlasParallel, GemmTiledBitIdenticalToNaive) {
  const la::Matrix a = seeded(65, 77, 5);
  const la::Matrix b = seeded(77, 41, 6);
  la::Matrix c_ref = seeded(65, 41, 7);
  la::Matrix c = c_ref;
  la::gemm_naive(a.view(), b.view(), c_ref.view());
  la::gemm_tiled(a.view(), b.view(), c.view());
  EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()));
}

TEST_P(BlasParallel, GemmStridedViewsBitIdentical) {
  // The functional plane calls gemm on strided sub-blocks; cover that path.
  const la::Matrix a = seeded(96, 96, 11);
  const la::Matrix b = seeded(96, 96, 12);
  la::Matrix c_ref = seeded(96, 96, 13);
  la::Matrix c = c_ref;
  la::gemm_naive(a.block(5, 3, 70, 50), b.block(3, 7, 50, 61),
                 c_ref.block(9, 20, 70, 61));
  la::gemm(a.block(5, 3, 70, 50), b.block(3, 7, 50, 61),
           c.block(9, 20, 70, 61));
  EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()));
}

TEST_P(BlasParallel, MatMulArrayBitIdenticalToNaive) {
  const MatMulArray array(rcs::core::SystemParams::cray_xd1().mm_fpga);
  int seed = 40;
  for (const Shape& s : kShapes) {
    const la::Matrix c = seeded(s.m, s.k, seed++);
    const la::Matrix d = seeded(s.k, s.n, seed++);
    la::Matrix e_ref = seeded(s.m, s.n, 77);
    la::Matrix e = e_ref;
    // NativeFp::mac is acc + a*b — the same per-entry update, in the same
    // ascending-l order, as gemm_naive.
    la::gemm_naive(c.view(), d.view(), e_ref.view());
    array.multiply_accumulate(c.view(), d.view(), e.view());
    EXPECT_TRUE(la::bit_equal(e.view(), e_ref.view()))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " threads=" << GetParam();
  }
}

TEST_P(BlasParallel, MatMulArraySoftMatchesSerialSoft) {
  const MatMulArray array(rcs::core::SystemParams::cray_xd1().mm_fpga);
  const la::Matrix c = seeded(13, 9, 81);
  const la::Matrix d = seeded(9, 11, 82);
  la::Matrix e_serial = seeded(13, 11, 83);
  la::Matrix e_par = e_serial;

  common::ThreadPool::set_global_threads(1);
  array.multiply_accumulate_soft(c.view(), d.view(), e_serial.view());
  common::ThreadPool::set_global_threads(GetParam());
  array.multiply_accumulate_soft(c.view(), d.view(), e_par.view());
  EXPECT_TRUE(la::bit_equal(e_par.view(), e_serial.view()));

  // NT form, both backends.
  const la::Matrix dt = seeded(11, 9, 84);
  la::Matrix f_serial = seeded(13, 11, 85);
  la::Matrix f_par = f_serial;
  common::ThreadPool::set_global_threads(1);
  array.multiply_accumulate_nt_soft(c.view(), dt.view(), f_serial.view());
  common::ThreadPool::set_global_threads(GetParam());
  array.multiply_accumulate_nt_soft(c.view(), dt.view(), f_par.view());
  EXPECT_TRUE(la::bit_equal(f_par.view(), f_serial.view()));
}

TEST_P(BlasParallel, GemmRaggedSweepAcrossSimdPaths) {
  int seed = 200;
  for (const Shape& s : kRaggedShapes) {
    const la::Matrix a = seeded(s.m, s.k, seed++);
    const la::Matrix b = seeded(s.k, s.n, seed++);
    la::Matrix c_ref = seeded(s.m, s.n, 201);
    const la::Matrix c0 = c_ref;
    la::gemm_naive(a.view(), b.view(), c_ref.view());
    for_each_simd_level([&](simd::Level level) {
      simd::set_level(level);
      la::Matrix c = c0;
      la::gemm(a.view(), b.view(), c.view());
      EXPECT_TRUE(la::bit_equal(c.view(), c_ref.view()))
          << "m=" << s.m << " k=" << s.k << " n=" << s.n
          << " threads=" << GetParam()
          << " simd=" << simd::level_name(level);
    });
  }
}

TEST_P(BlasParallel, MatMulArrayStreamedRaggedSweepAcrossSimdPaths) {
  const MatMulArray array(rcs::core::SystemParams::cray_xd1().mm_fpga);
  int seed = 300;
  for (const Shape& s : kRaggedShapes) {
    const la::Matrix c = seeded(s.m, s.k, seed++);
    const la::Matrix d = seeded(s.k, s.n, seed++);
    const la::Matrix dt = seeded(s.n, s.k, seed++);
    la::Matrix e_ref = seeded(s.m, s.n, 301);
    la::Matrix ent_ref = e_ref;
    const la::Matrix e0 = e_ref;
    la::gemm_naive(c.view(), d.view(), e_ref.view());
    // Ascending-l naive NT reference.
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        double acc = ent_ref(i, j);
        for (std::size_t l = 0; l < s.k; ++l) acc += c(i, l) * dt(j, l);
        ent_ref(i, j) = acc;
      }
    }
    for_each_simd_level([&](simd::Level level) {
      simd::set_level(level);
      la::Matrix e = e0;
      array.multiply_accumulate(c.view(), d.view(), e.view());
      EXPECT_TRUE(la::bit_equal(e.view(), e_ref.view()))
          << "nn m=" << s.m << " k=" << s.k << " n=" << s.n
          << " threads=" << GetParam()
          << " simd=" << simd::level_name(level);
      la::Matrix ent = e0;
      array.multiply_accumulate_nt(c.view(), dt.view(), ent.view());
      EXPECT_TRUE(la::bit_equal(ent.view(), ent_ref.view()))
          << "nt m=" << s.m << " k=" << s.k << " n=" << s.n
          << " threads=" << GetParam()
          << " simd=" << simd::level_name(level);
    });
  }
}

TEST_P(BlasParallel, MatMulArraySoftRaggedMatchesSerial) {
  // Soft-float stays on the scalar row loop; two small ragged shapes keep
  // the bit-accurate cores affordable.
  const MatMulArray array(rcs::core::SystemParams::cray_xd1().mm_fpga);
  const Shape soft_shapes[] = {{7, 63, 1}, {63, 7, 7}};
  int seed = 400;
  for (const Shape& s : soft_shapes) {
    const la::Matrix c = seeded(s.m, s.k, seed++);
    const la::Matrix d = seeded(s.k, s.n, seed++);
    const la::Matrix dt = seeded(s.n, s.k, seed++);
    la::Matrix e_ref = seeded(s.m, s.n, 401);
    la::Matrix ent_ref = e_ref;
    const la::Matrix e0 = e_ref;
    common::ThreadPool::set_global_threads(1);
    array.multiply_accumulate_soft(c.view(), d.view(), e_ref.view());
    array.multiply_accumulate_nt_soft(c.view(), dt.view(), ent_ref.view());
    common::ThreadPool::set_global_threads(GetParam());
    la::Matrix e = e0;
    array.multiply_accumulate_soft(c.view(), d.view(), e.view());
    EXPECT_TRUE(la::bit_equal(e.view(), e_ref.view()));
    la::Matrix ent = e0;
    array.multiply_accumulate_nt_soft(c.view(), dt.view(), ent.view());
    EXPECT_TRUE(la::bit_equal(ent.view(), ent_ref.view()));
  }
}

TEST_P(BlasParallel, GemmNtBitIdenticalAcrossSimdPaths) {
  // gemm_nt routes through the engine's NT path above the small-product
  // threshold; 70x300x70 crosses it.
  const la::Matrix a = seeded(70, 300, 501);
  const la::Matrix b = seeded(70, 300, 502);
  la::Matrix ref(70, 70);
  for (std::size_t i = 0; i < 70; ++i) {
    for (std::size_t j = 0; j < 70; ++j) {
      double acc = ref(i, j);
      for (std::size_t l = 0; l < 300; ++l) acc += a(i, l) * b(j, l);
      ref(i, j) = acc;
    }
  }
  for_each_simd_level([&](simd::Level level) {
    simd::set_level(level);
    la::Matrix c(70, 70);
    la::gemm_nt(a.view(), b.view(), c.view());
    EXPECT_TRUE(la::bit_equal(c.view(), ref.view()))
        << "threads=" << GetParam() << " simd=" << simd::level_name(level);
  });
}

TEST_P(BlasParallel, TrsmLeftLowerUnitBitIdenticalToSerial) {
  // Column-strip parallel solve vs the single-thread result, including a
  // single-column B (fully serial by the grain heuristic).
  for (std::size_t rhs_cols : {std::size_t{1}, std::size_t{7},
                               std::size_t{257}}) {
    la::Matrix l = seeded(129, 129, 601);
    for (std::size_t i = 0; i < 129; ++i) l(i, i) = 1.0;
    const la::Matrix b0 = seeded(129, rhs_cols, 602);
    common::ThreadPool::set_global_threads(1);
    la::Matrix ref = b0;
    la::trsm_left_lower_unit(l.view(), ref.view());
    common::ThreadPool::set_global_threads(GetParam());
    la::Matrix b = b0;
    la::trsm_left_lower_unit(l.view(), b.view());
    EXPECT_TRUE(la::bit_equal(b.view(), ref.view()))
        << "rhs_cols=" << rhs_cols << " threads=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BlasParallel,
                         ::testing::ValuesIn(kThreadCounts));

// ---------------------------------------------------------------------------
// Minimum-grain heuristic

TEST(GrainHeuristic, FloorsChunksAtMinWork) {
  // 20 us floor at 10 ns/item -> 2000 items per chunk.
  EXPECT_EQ(common::grain_for_cost(10.0), 2000u);
  // Items already >= the floor run at grain 1 (full parallelism).
  EXPECT_EQ(common::grain_for_cost(common::kMinChunkNs), 1u);
  EXPECT_EQ(common::grain_for_cost(1e9), 1u);
  // Degenerate costs never divide by zero or overflow.
  EXPECT_EQ(common::grain_for_cost(0.0), 1u);
  EXPECT_EQ(common::grain_for_cost(-5.0), 1u);
  EXPECT_EQ(common::grain_for_cost(1e-12), static_cast<std::size_t>(1e9));
  // Flop variant: 100 flops/item at 0.05 ns/flop = 5 ns/item -> 4000.
  EXPECT_EQ(common::grain_for_flops(100.0), 4000u);
}

TEST(GrainHeuristic, SmallJobsStaySerial) {
  common::ThreadPool pool(8);
  std::atomic<int> chunks{0};
  // 100 items at 10 ns each is far below one 20 us chunk -> 1 chunk.
  pool.parallel_for(0, 100, common::grain_for_cost(10.0),
                    [&](std::size_t, std::size_t) { ++chunks; });
  EXPECT_EQ(chunks.load(), 1);
}

// ---------------------------------------------------------------------------
// ThreadPool primitive behavior

TEST(ThreadPool, ChunksPartitionTheRange) {
  for (int threads : {1, 2, 3, 8}) {
    common::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  common::ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(0, 10, 6, [&](std::size_t, std::size_t) { ++chunks; });
  EXPECT_EQ(chunks.load(), 1);  // 10 items, grain 6 -> one chunk
}

TEST(ThreadPool, NestedCallsRunSerially) {
  common::ThreadPool::set_global_threads(4);
  std::atomic<int> total{0};
  common::parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // Nested: must degrade to serial, not deadlock.
      common::parallel_for(0, 10, 1,
                           [&](std::size_t nb, std::size_t ne) {
                             total.fetch_add(static_cast<int>(ne - nb));
                           });
    }
  });
  EXPECT_EQ(total.load(), 80);
  common::ThreadPool::set_global_threads(1);
}

TEST(ThreadPool, PropagatesBodyException) {
  common::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  common::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// Regression: the nested-parallelism cap used to serialize any parallel_for
// issued from a pool-hosted context. MiniMPI rank fibers are hosted inside a
// pool parallel_for (the worker loops), but a rank's GEMM must still fan
// out — the fiber scheduler clears the in-parallel-body flag while a fiber
// runs and restores it on yield. A serialized call runs its body exactly
// once over the whole range; the pool path partitions into
// min(threads, count/grain) chunks, so with 3 pool threads the rank must
// observe 3 chunks. Rank 0 parks in recv before its parallel_for to prove
// the flag also survives a suspend/resume cycle.
TEST(ThreadPool, RankFiberParallelForIsNotSerialized) {
  common::ThreadPool::set_global_threads(3);
  rcs::net::NetworkParams np;
  np.bytes_per_s = 1e9;
  np.latency_s = 0.0;
  rcs::net::World world(2, np);
  world.set_max_workers(2);  // fiber mode, worker loops hosted on the pool
  std::atomic<int> chunks0{0}, chunks1{0};
  world.run([&](rcs::net::Comm& comm) {
    auto& chunks = comm.rank() == 0 ? chunks0 : chunks1;
    if (comm.rank() == 0) comm.recv(1, 1);  // park + resume before computing
    common::parallel_for(0, 300, 1, [&](std::size_t, std::size_t) {
      chunks.fetch_add(1);
      // True nested parallelism from inside a chunk body must still
      // degrade to serial (one invocation), fiber or not.
      std::atomic<int> inner{0};
      common::parallel_for(0, 300, 1,
                           [&](std::size_t, std::size_t) { ++inner; });
      EXPECT_EQ(inner.load(), 1);
    });
    if (comm.rank() == 1) comm.send_value(0, 1, 1);
  });
  EXPECT_EQ(chunks0.load(), 3);
  EXPECT_EQ(chunks1.load(), 3);
  common::ThreadPool::set_global_threads(1);
}

}  // namespace
